/**
 * @file
 * A five-minute tour of the paper, end to end, on one workload:
 *
 *   1. classify misses and score the MCT against the oracle (§3)
 *   2. filter a victim cache with the classification (§5.1)
 *   3. filter a next-line prefetcher (§5.2)
 *   4. exclude capacity misses (§5.3)
 *   5. combine everything in the Adaptive Miss Buffer (§5.5)
 *
 *   $ ./paper_tour [workload]
 */

#include <iostream>
#include <string>

#include "mct/classify_run.hh"
#include "sim/experiment.hh"
#include "trace/vector_trace.hh"
#include "workloads/registry.hh"

int
main(int argc, char **argv)
{
    using namespace ccm;

    std::string name = argc > 1 ? argv[1] : "tomcatv";
    auto wl = makeWorkload(name, 400'000, 42);
    if (!wl) {
        std::cerr << "unknown workload '" << name << "'\n";
        return 1;
    }
    VectorTrace trace = VectorTrace::capture(*wl);

    std::cout << "=== the paper in five steps, on '" << name
              << "' ===\n\n";

    // 1. Classification (§3 / Figure 1).
    ClassifyConfig ccfg;
    ClassifyResult cls = classifyRun(trace, ccfg);
    std::cout << "1. classification: " << cls.misses << " misses ("
              << 100.0 * cls.missRate << "%), "
              << 100.0 * cls.scorer.conflictFraction()
              << "% conflicts; MCT agrees with the classic oracle "
              << "on " << cls.scorer.overallAccuracy()
              << "% of them\n";

    RunOutput base = runTiming(trace, baselineConfig());
    std::cout << "   baseline machine: " << base.sim.cycles
              << " cycles, IPC " << base.sim.ipc << "\n\n";

    auto report = [&](const char *what, const SystemConfig &cfg) {
        RunOutput r = runTiming(trace, cfg);
        std::cout << what << speedup(base, r)
                  << "x  (miss rate " << r.mem.missRatePct()
                  << "%)\n";
        return r;
    };

    // 2. Victim cache (§5.1).
    report("2. victim cache, traditional:        ",
           victimConfig(false, false));
    report("   victim cache, conflict-filtered:  ",
           victimConfig(true, true));

    // 3. Prefetching (§5.2).
    std::cout << "\n";
    RunOutput pf = report("3. next-line prefetch, unfiltered:   ",
                          prefetchConfig(false));
    RunOutput pff = report("   next-line prefetch, or-filtered:  ",
                           prefetchConfig(true, ConflictFilter::Or));
    std::cout << "   prefetch accuracy " << pf.mem.prefAccuracyPct()
              << "% -> " << pff.mem.prefAccuracyPct()
              << "% with filtering\n\n";

    // 4. Exclusion (§5.3).
    report("4. exclusion, capacity filter:       ",
           excludeConfig(ExcludeAlgo::Capacity));

    // 5. The AMB (§5.5).
    std::cout << "\n";
    report("5. adaptive miss buffer (VictPref):  ",
           ambConfig(true, true, false));
    report("   adaptive miss buffer (all three): ",
           ambConfig(true, true, true));

    std::cout << "\nsame 8-entry structure throughout: only the "
              << "*policy per miss class* changed — the paper's "
              << "thesis in one run.\n";
    return 0;
}
