/**
 * @file
 * Explore the Adaptive Miss Buffer (§5.5): run every single and
 * combined policy on one workload across buffer sizes, reporting
 * speedup and the hit-rate breakdown by entry source — how the AMB
 * targets each miss class with the right optimization.
 *
 *   $ ./amb_explorer [workload] [refs]
 *   $ ./amb_explorer applu
 */

#include <iostream>
#include <string>

#include "common/table.hh"
#include "sim/experiment.hh"
#include "trace/vector_trace.hh"
#include "workloads/registry.hh"

int
main(int argc, char **argv)
{
    using namespace ccm;

    std::string name = argc > 1 ? argv[1] : "tomcatv";
    std::size_t refs = argc > 2 ? std::atol(argv[2]) : 400'000;
    auto wl = makeWorkload(name, refs, 42);
    if (!wl) {
        std::cerr << "unknown workload '" << name << "'\n";
        return 1;
    }
    VectorTrace trace = VectorTrace::capture(*wl);
    RunOutput base = runTiming(trace, baselineConfig());

    std::cout << "adaptive miss buffer on '" << name << "' ("
              << refs << " refs; speedups vs no buffer)\n";

    for (unsigned entries : {4u, 8u, 16u, 32u}) {
        std::cout << "\n--- " << entries << " entries ---\n";
        TextTable t({"policy", "speedup", "D$%", "vict%", "pref%",
                     "bypass%", "miss%"});

        auto add = [&](const char *label, SystemConfig cfg) {
            cfg.mem.bufEntries = entries;
            RunOutput r = runTiming(trace, cfg);
            auto row = t.addRow(label);
            t.setNum(row, 1, speedup(base, r), 3);
            t.setNum(row, 2, r.mem.l1HitRatePct(), 1);
            t.setNum(row, 3, pct(r.mem.bufHitVictim, r.mem.accesses),
                     1);
            t.setNum(row, 4,
                     pct(r.mem.bufHitPrefetch, r.mem.accesses), 1);
            t.setNum(row, 5, pct(r.mem.bufHitBypass, r.mem.accesses),
                     1);
            t.setNum(row, 6, r.mem.missRatePct(), 1);
        };

        add("Vict", ambSingleVict(entries));
        add("Pref", ambSinglePref(entries));
        add("Excl", ambSingleExcl(entries));
        add("VictPref", ambConfig(true, true, false, entries));
        add("PrefExcl", ambConfig(false, true, true, entries));
        add("VicPreExc", ambConfig(true, true, true, entries));
        t.print(std::cout);
    }
    return 0;
}
