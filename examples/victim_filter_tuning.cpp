/**
 * @file
 * Tune a victim cache with miss classification (the §5.1 scenario):
 * run one workload under every (filter-swaps, filter-fills, filter
 * flavour) combination and report speedup, hit rates, swaps and
 * fills — the full policy space of which Figure 3 shows a subset.
 *
 *   $ ./victim_filter_tuning [workload]
 *   $ ./victim_filter_tuning vortex
 */

#include <iostream>
#include <string>

#include "common/table.hh"
#include "sim/experiment.hh"
#include "trace/vector_trace.hh"
#include "workloads/registry.hh"

int
main(int argc, char **argv)
{
    using namespace ccm;

    std::string name = argc > 1 ? argv[1] : "tomcatv";
    auto wl = makeWorkload(name, 400'000, 42);
    if (!wl) {
        std::cerr << "unknown workload '" << name << "'\n";
        return 1;
    }
    VectorTrace trace = VectorTrace::capture(*wl);

    RunOutput base = runTiming(trace, baselineConfig());
    std::cout << "victim-cache policy sweep on '" << name
              << "' (speedup vs no victim cache, "
              << base.sim.cycles << " baseline cycles)\n\n";

    TextTable t({"policy", "filter", "speedup", "D$%", "V$%",
                 "swaps%", "fills%"});

    auto add = [&](const std::string &label, bool fs, bool ff,
                   ConflictFilter filter) {
        RunOutput r = runTiming(trace, victimConfig(fs, ff, filter));
        auto row = t.addRow(label);
        t.set(row, 1, fs || ff ? toString(filter) : "-");
        t.setNum(row, 2, speedup(base, r), 3);
        t.setNum(row, 3, r.mem.l1HitRatePct(), 1);
        t.setNum(row, 4, r.mem.bufHitRatePct(), 1);
        t.setNum(row, 5, r.mem.swapRatePct(), 2);
        t.setNum(row, 6, r.mem.fillRatePct(), 2);
    };

    add("traditional", false, false, ConflictFilter::Or);
    for (ConflictFilter f : {ConflictFilter::In, ConflictFilter::Out,
                             ConflictFilter::And, ConflictFilter::Or}) {
        add("no-swap", true, false, f);
        add("no-fill", false, true, f);
        add("both", true, true, f);
    }

    t.print(std::cout);
    std::cout << "\nReading guide: no-swap shifts hits from D$ to the"
              << " buffer and kills swap traffic; no-fill cuts fill"
              << " traffic; or-conflict is the most liberal filter.\n";
    return 0;
}
