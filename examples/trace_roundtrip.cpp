/**
 * @file
 * Trace tooling example: capture a synthetic workload to a binary
 * trace file, replay it from disk, and verify the classification
 * results are identical — the workflow for plugging in externally
 * captured traces (e.g. converted ChampSim/Pin traces).
 *
 *   $ ./trace_roundtrip [workload] [path]
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "mct/classify_run.hh"
#include "trace/file_trace.hh"
#include "workloads/registry.hh"

int
main(int argc, char **argv)
{
    using namespace ccm;

    std::string name = argc > 1 ? argv[1] : "compress";
    std::string path = argc > 2 ? argv[2] : "/tmp/ccm_example.trace";

    auto wl = makeWorkload(name, 200'000, 42);
    if (!wl) {
        std::cerr << "unknown workload '" << name << "'\n";
        return 1;
    }

    // 1. Capture to disk.
    std::size_t written;
    {
        TraceFileWriter writer(path);
        written = writer.writeAll(*wl);
    }
    std::cout << "wrote " << written << " records to " << path
              << "\n";

    // 2. Classify the generator directly...
    ClassifyConfig cfg;
    ClassifyResult live = classifyRun(*wl, cfg);

    // 3. ...and the file replay.
    TraceFileReader reader(path);
    ClassifyResult replay = classifyRun(reader, cfg);

    std::cout << "live:   misses=" << live.misses << " overall acc="
              << live.scorer.overallAccuracy() << "%\n"
              << "replay: misses=" << replay.misses
              << " overall acc="
              << replay.scorer.overallAccuracy() << "%\n";

    bool ok = live.misses == replay.misses &&
              live.scorer.totalMisses() ==
                  replay.scorer.totalMisses();
    std::cout << (ok ? "round trip OK\n" : "MISMATCH\n");
    std::remove(path.c_str());
    return ok ? 0 : 1;
}
