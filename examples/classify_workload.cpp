/**
 * @file
 * Classify every miss of one workload against one cache
 * configuration, scoring the MCT against the classic-definition
 * oracle — the per-benchmark view behind Figure 1.
 *
 *   $ ./classify_workload [workload] [cache_kb] [assoc] [tag_bits]
 *   $ ./classify_workload tomcatv 16 1 8
 */

#include <cstdlib>
#include <iostream>

#include "mct/classify_run.hh"
#include "workloads/registry.hh"

int
main(int argc, char **argv)
{
    using namespace ccm;

    std::string name = argc > 1 ? argv[1] : "tomcatv";
    std::size_t kb = argc > 2 ? std::atol(argv[2]) : 16;
    unsigned assoc = argc > 3 ? std::atoi(argv[3]) : 1;
    unsigned tag_bits = argc > 4 ? std::atoi(argv[4]) : 0;

    auto wl = makeWorkload(name, 1'000'000, 42);
    if (!wl) {
        std::cerr << "unknown workload '" << name << "'; choose from:";
        for (const auto &n : workloadNames())
            std::cerr << " " << n;
        std::cerr << "\n";
        return 1;
    }

    ClassifyConfig cfg;
    cfg.cacheBytes = kb * 1024;
    cfg.assoc = assoc;
    cfg.mctTagBits = tag_bits;

    ClassifyResult res = classifyRun(*wl, cfg);
    const AccuracyScorer &s = res.scorer;

    std::cout << "workload " << name << " on " << kb << "KB "
              << assoc << "-way cache, MCT tag bits = "
              << (tag_bits == 0 ? std::string("full")
                                : std::to_string(tag_bits))
              << "\n\n"
              << "references        " << res.references << "\n"
              << "misses            " << res.misses << " ("
              << 100.0 * res.missRate << "%)\n"
              << "oracle conflicts  " << s.oracleConflicts() << " ("
              << 100.0 * s.conflictFraction() << "% of misses)\n"
              << "oracle capacity   " << s.oracleCapacities()
              << " (incl. " << s.compulsoryMisses()
              << " compulsory)\n\n"
              << "conflict accuracy " << s.conflictAccuracy() << "%\n"
              << "capacity accuracy " << s.capacityAccuracy() << "%\n"
              << "overall accuracy  " << s.overallAccuracy() << "%\n";
    return 0;
}
