/**
 * @file
 * Quickstart: the Miss Classification Table in thirty lines.
 *
 * Builds a 16 KB direct-mapped cache plus an MCT, replays the paper's
 * §3 scenario (line B evicts line A; the next miss on A is a conflict
 * miss), and prints each classification.
 *
 *   $ ./quickstart
 */

#include <iostream>

#include "cache/cache.hh"
#include "mct/mct.hh"

int
main()
{
    using namespace ccm;

    CacheGeometry geom(16 * 1024, 1, 64);
    Cache cache(geom);
    MissClassificationTable mct(geom.numSets());

    // Two addresses exactly one cache-size apart: same set, different
    // tags — the canonical conflict pair.
    const ByteAddr line_a{0x100040};
    const ByteAddr line_b = line_a.advancedBy(16 * 1024);

    auto access = [&](const char *label, ByteAddr addr) {
        if (cache.access(addr, false)) {
            std::cout << label << ": hit\n";
            return;
        }
        SetIndex set = geom.setOf(addr);
        MissClass cls = mct.classify(set, geom.tagOf(addr));
        std::cout << label << ": miss, classified "
                  << toString(cls) << "\n";

        // Fill, remembering the evicted tag exactly as the hardware
        // would — the MCT is only ever written with evicted tags.
        FillResult ev = cache.fill(addr, isConflict(cls), false);
        if (ev.valid)
            mct.recordEviction(set, geom.tagOf(ev.lineAddr));
    };

    access("A (cold)     ", line_a);  // capacity (compulsory)
    access("B (evicts A) ", line_b);  // capacity
    access("A (again)    ", line_a);  // conflict!  MCT remembers A
    access("B (again)    ", line_b);  // conflict
    access("A (again)    ", line_a);  // conflict

    std::cout << "\nMCT storage for this cache: "
              << mct.storageBits() / 8 << " bytes ("
              << geom.numSets() << " sets x "
              << (mct.tagBits() == 0 ? 64 : mct.tagBits())
              << "+1 bits)\n";
    return 0;
}
