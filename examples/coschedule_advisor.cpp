/**
 * @file
 * Co-scheduling advisor (§5.6 "Multithreaded architectures"): share a
 * 2-thread L1 between two chosen workloads, attribute conflict misses
 * across threads with the MCT, and advise whether the pair should be
 * co-scheduled.
 *
 *   $ ./coschedule_advisor [jobA] [jobB]
 *   $ ./coschedule_advisor go vortex
 */

#include <iostream>
#include <string>

#include "mt/interleave.hh"
#include "mt/shared_cache.hh"
#include "workloads/registry.hh"

int
main(int argc, char **argv)
{
    using namespace ccm;

    std::string ja = argc > 1 ? argv[1] : "go";
    std::string jb = argc > 2 ? argv[2] : "vortex";

    auto a = makeWorkload(ja, 200'000, 1);
    auto b = makeWorkload(jb, 200'000, 2);
    if (!a || !b) {
        std::cerr << "unknown workload\n";
        return 1;
    }

    std::vector<TraceSource *> pair = {a.get(), b.get()};
    InterleavedTrace shared(pair, 4);
    SharedCacheStudy study(16 * 1024, 1, 64);
    SharedCacheResult res = study.run(shared);

    std::cout << "co-schedule study: " << ja << " + " << jb
              << " on a shared 16KB DM L1\n\n";
    for (std::size_t t = 0; t < res.perThread.size(); ++t) {
        const auto &ts = res.perThread[t];
        std::cout << "thread " << t << " (" << (t ? jb : ja)
                  << "): refs=" << ts.references
                  << " miss%=" << 100.0 * ts.missRate()
                  << " conflicts=" << ts.conflictMisses
                  << " cross-thread=" << ts.crossThreadConflicts
                  << "\n";
    }
    double badness = 100.0 * res.coScheduleBadness();
    std::cout << "\ncombined miss%: " << 100.0 * res.missRate()
              << "\ncross-thread conflict rate: " << badness
              << "% of references\n"
              << "advice: "
              << (badness > 3.0
                      ? "do NOT co-schedule these jobs"
                      : "co-scheduling this pair looks fine")
              << "\n";
    return 0;
}
