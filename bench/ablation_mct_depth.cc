/**
 * @file
 * Ablation — shadow-directory depth (§2/§3 extension).
 *
 * The MCT stores one evicted tag per set; Stone/Pomerene's shadow
 * directory stores several ("we could store multiple evicted tags
 * per set to identify higher-order conflict misses, but we do not
 * consider that optimization").  This bench sweeps the depth and
 * reports classification accuracy against the classic oracle plus
 * storage cost, quantifying what the paper left on the table.
 */

#include <iostream>

#include "common/table.hh"
#include "mct/classify_run.hh"
#include "workloads/registry.hh"

namespace
{

constexpr std::size_t memRefs = 500'000;
constexpr std::uint64_t seed = 42;

} // namespace

int
main()
{
    using namespace ccm;

    std::cout << "Ablation: shadow-directory depth "
              << "(16KB DM cache, 10-bit stored tags; depth 1 = the "
              << "paper's MCT)\n\n";

    TextTable table({"depth", "conflict acc %", "capacity acc %",
                     "overall acc %", "storage (KB)"});

    for (unsigned depth : {1u, 2u, 3u, 4u, 8u}) {
        AccuracyScorer pooled;
        for (const auto &spec : workloadSuite()) {
            auto wl = spec.make(memRefs, seed);
            ClassifyConfig cfg;
            cfg.mctTagBits = 10;
            cfg.mctDepth = depth;
            ClassifyResult res = classifyRun(*wl, cfg);
            pooled.merge(res.scorer);
        }
        auto row = table.addRow(std::to_string(depth));
        table.setNum(row, 1, pooled.conflictAccuracy(), 1);
        table.setNum(row, 2, pooled.capacityAccuracy(), 1);
        table.setNum(row, 3, pooled.overallAccuracy(), 1);
        // 256 sets x depth x (10 tag + 1 valid) bits.
        table.setNum(row, 4, 256.0 * depth * 11 / 8.0 / 1024.0, 2);
    }

    table.print(std::cout);
    std::cout << "\nexpected shape: deeper directories identify more "
              << "higher-order conflicts (conflict accuracy rises), "
              << "at linear storage cost; capacity accuracy dips "
              << "slightly as marginal reuses get relabelled\n";
    return 0;
}
