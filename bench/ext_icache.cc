/**
 * @file
 * Extension — miss classification on the instruction cache.
 *
 * §4: the techniques "should, in general, also apply to the
 * instruction cache."  This bench demonstrates it: synthetic
 * instruction-fetch streams (hot loop / colliding calls / huge code /
 * a mixed program) run through a 16KB DM I-cache with the MCT and the
 * oracle, then through a victim-buffered configuration with and
 * without conflict filtering.
 */

#include <iostream>

#include "common/table.hh"
#include "mct/classify_run.hh"
#include "sim/experiment.hh"
#include "trace/vector_trace.hh"
#include "workloads/code_stream.hh"

int
main()
{
    using namespace ccm;

    constexpr std::size_t instrs = 400'000;

    std::cout << "Extension: the MCT on instruction-fetch streams "
              << "(16KB DM I-cache)\n\n";

    TextTable cls({"program", "miss%", "conflict share%",
                   "conf acc%", "cap acc%"});
    TextTable timing({"program", "victim speedup",
                      "filtered-victim speedup", "V$ hit%"});

    CodeStreamWorkload programs[] = {
        CodeStreamWorkload::hotLoop(instrs),
        CodeStreamWorkload::collidingCalls(instrs),
        CodeStreamWorkload::hugeCode(instrs),
        CodeStreamWorkload::mixed(instrs),
    };

    for (auto &prog : programs) {
        // Classification accuracy.
        ClassifyConfig ccfg;
        ClassifyResult cres = classifyRun(prog, ccfg);
        auto row = cls.addRow(prog.name());
        cls.setNum(row, 1, 100.0 * cres.missRate, 2);
        cls.setNum(row, 2,
                   100.0 * cres.scorer.conflictFraction(), 1);
        if (cres.scorer.oracleConflicts() > 0)
            cls.setNum(row, 3, cres.scorer.conflictAccuracy(), 1);
        else
            cls.set(row, 3, "-");
        if (cres.scorer.oracleCapacities() > 0)
            cls.setNum(row, 4, cres.scorer.capacityAccuracy(), 1);
        else
            cls.set(row, 4, "-");

        // Timing with a victim buffer on the fetch path.
        VectorTrace trace = VectorTrace::capture(prog);
        RunOutput base = runTiming(trace, baselineConfig());
        RunOutput vict = runTiming(trace, victimConfig(false, false));
        RunOutput filt = runTiming(trace, victimConfig(true, true));
        auto trow = timing.addRow(prog.name());
        timing.setNum(trow, 1, speedup(base, vict), 3);
        timing.setNum(trow, 2, speedup(base, filt), 3);
        timing.setNum(trow, 3, filt.mem.bufHitRatePct(), 1);
    }

    cls.print(std::cout);
    std::cout << "\n";
    timing.print(std::cout);
    std::cout << "\nshape: the colliding-call program is pure "
              << "conflict, fully identified and fully covered by a "
              << "victim buffer; the huge-code program is pure "
              << "capacity (correctly left alone).  Note the policy "
              << "inversion vs the data cache: with 16 sequential "
              << "fetches per line, *swapping* on a victim hit wins "
              << "(the promoted line serves the next 15 fetches at "
              << "L1 latency), so the no-swap filter that helped the "
              << "D-cache hurts the I-cache — policy still wants to "
              << "be per-structure, which is exactly the kind of "
              << "decision the MCT's classification enables\n";
    return 0;
}
