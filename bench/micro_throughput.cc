/**
 * @file
 * Hot-path throughput benchmarks, in two layers:
 *
 *  - an explicit chrono-measured "hotpath" table covering the paths
 *    the simulator spends its time on (trace delivery unbatched vs
 *    batched, the flat fully-associative LRU, the end-to-end
 *    classification / sharded-classification / timing pipelines, and
 *    zero-copy mmap ingestion), emitted as BENCH_hotpath.json so runs
 *    can be compared against the committed baseline in
 *    bench/baselines/;
 *  - google-benchmark microbenchmarks for the individual structures
 *    (MCT classification, cache access, FaLru, assist buffer,
 *    memory-system access).
 *
 * `--hotpath-only` runs just the first layer (the CI perf smoke);
 * `--shards N` sets the shard count for classify_sharded_e2e; any
 * other flags are handed to google-benchmark.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "assist/buffer.hh"
#include "bench_common.hh"
#include "cache/cache.hh"
#include "cache/fa_lru.hh"
#include "common/random.hh"
#include "common/table.hh"
#include "cpu/core.hh"
#include "mct/classify_run.hh"
#include "mct/mct.hh"
#include "sim/experiment.hh"
#include "sim/sharded.hh"
#include "trace/batch_reader.hh"
#include "trace/file_trace.hh"
#include "trace/mmap_trace.hh"
#include "trace/vector_trace.hh"
#include "workloads/registry.hh"

namespace
{

using namespace ccm;

// ---- explicit hotpath table -----------------------------------------

/** Best-of-three wall rate, in million units per second. */
template <typename Fn>
double
bestRate(std::size_t units, Fn &&fn)
{
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const double secs =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        const double rate =
            secs > 0 ? static_cast<double>(units) / secs / 1e6 : 0.0;
        if (rate > best)
            best = rate;
    }
    return best;
}

/** Consume the whole trace through the record-at-a-time interface. */
double
measureDeliveryNext(VectorTrace &trace)
{
    return bestRate(trace.size(), [&] {
        trace.reset();
        MemRecord r;
        std::size_t sink = 0;
        while (trace.next(r))
            sink += r.isMem() ? 1 : 0;
        benchmark::DoNotOptimize(sink);
    });
}

/** Same stream, through the batched delivery path. */
double
measureDeliveryBatched(VectorTrace &trace)
{
    return bestRate(trace.size(), [&] {
        trace.reset();
        BatchReader reader(trace, maxTraceBatch);
        MemRecord r;
        std::size_t sink = 0;
        while (reader.next(r))
            sink += r.isMem() ? 1 : 0;
        benchmark::DoNotOptimize(sink);
    });
}

/** Mixed touch/insert at the oracle's capacity. */
double
measureFaLruMixed()
{
    constexpr std::size_t ops = 10'000'000;
    return bestRate(ops, [&] {
        FaLru fa(256);
        Pcg32 rng(1);
        std::size_t hits = 0;
        for (std::size_t i = 0; i < ops; ++i) {
            LineAddr a{Addr(rng.next() & 0x3FF) * 64};
            if (fa.touch(a))
                ++hits;
            else
                fa.insert(a);
        }
        benchmark::DoNotOptimize(hits);
    });
}

/** The fig1/fig2 classification pipeline, end to end. */
double
measureClassifyE2e(VectorTrace &trace)
{
    return bestRate(trace.size(), [&] {
        ClassifyConfig cfg;
        ClassifyResult res = classifyRun(trace, cfg);
        benchmark::DoNotOptimize(res.misses);
    });
}

/** The fig3..7 timing pipeline, end to end. */
double
measureTimingE2e(VectorTrace &trace)
{
    const SystemConfig cfg = baselineConfig();
    return bestRate(trace.size(), [&] {
        RunOutput r = runTiming(trace, cfg);
        benchmark::DoNotOptimize(r.sim.cycles);
    });
}

/** The sharded (oracle-free) classification engine over a raw span. */
double
measureClassifySharded(VectorTrace &trace, unsigned shards)
{
    ShardedClassifyConfig cfg;
    cfg.shards = shards;
    return bestRate(trace.size(), [&] {
        ShardedClassifyResult res = runShardedClassify(
            trace.records().data(), trace.records().size(), cfg);
        benchmark::DoNotOptimize(res.misses);
    });
}

/** Zero-copy mapped ingestion: decode every record from the map. */
double
measureMmapIngest(VectorTrace &trace)
{
    const char *tmpdir = std::getenv("TMPDIR");
    const std::string path = std::string(tmpdir != nullptr ? tmpdir
                                                           : "/tmp") +
                             "/ccm_bench_mmap.bin";
    {
        TraceFileWriter writer(path);
        writer.writeAll(trace);
        trace.reset();
    }
    double rate = 0.0;
    {
        auto rd = MappedTraceReader::open(path);
        if (!rd.ok()) {
            std::cerr << "mmap_ingest: " << rd.status().toString()
                      << "\n";
            std::remove(path.c_str());
            return 0.0;
        }
        // Open (and its validation scan) is a one-time cost per
        // trace; the steady-state rate is reset-and-consume.
        rate = bestRate(trace.size(), [&] {
            rd.value()->reset();
            std::vector<MemRecord> buf(maxTraceBatch);
            std::size_t n = 0, sink = 0;
            while ((n = rd.value()->nextBatch(buf.data(),
                                              buf.size())) > 0)
                sink += n;
            benchmark::DoNotOptimize(sink);
        });
    }
    std::remove(path.c_str());
    return rate;
}

int
runHotpathTable(unsigned shards)
{
    std::cout << "Hot-path throughput (best of 3, Mrec/s or Mops/s; "
              << "classify_sharded_e2e at --shards " << shards << ")\n"
              << "compare against bench/baselines/BENCH_hotpath.json"
              << "\n\n";

    VectorTrace delivery = bench::captureWorkload("compress",
                                                  2'000'000);
    VectorTrace classify = bench::captureWorkload("gcc", 1'000'000);
    VectorTrace timing = bench::captureWorkload("compress", 300'000);

    TextTable table({"case", "Mops", "measures"});

    auto row = [&](const std::string &label, double rate,
                   const std::string &what) {
        const std::size_t r = table.addRow(label);
        table.setNum(r, 1, rate, 1);
        table.set(r, 2, what);
    };

    row("trace_delivery_next", measureDeliveryNext(delivery),
        "records/s via per-record virtual next()");
    row("trace_delivery_batched", measureDeliveryBatched(delivery),
        "records/s via nextBatch through BatchReader");
    row("falru_mixed_256", measureFaLruMixed(),
        "mixed touch/insert ops/s at oracle capacity");
    row("classify_e2e", measureClassifyE2e(classify),
        "records/s through the full classification pipeline");
    row("classify_sharded_e2e",
        measureClassifySharded(classify, shards),
        "records/s through runShardedClassify (oracle-free)");
    row("mmap_ingest", measureMmapIngest(delivery),
        "records/s via zero-copy MappedTraceReader batches");
    row("timing_e2e", measureTimingE2e(timing),
        "records/s through the full timing pipeline");

    table.print(std::cout);
    bench::emitBenchJson(
        "hotpath", table,
        "hot-path throughput; baseline for comparison lives in "
        "bench/baselines/BENCH_hotpath.json");
    return 0;
}

// ---- google-benchmark structure microbenchmarks ---------------------

void
BM_MctClassify(benchmark::State &state)
{
    MissClassificationTable mct(256,
                                static_cast<unsigned>(state.range(0)));
    for (std::size_t s = 0; s < 256; ++s)
        mct.recordEviction(SetIndex{s}, Tag{s * 31});
    Pcg32 rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            mct.classify(SetIndex{rng.next() & 255},
                         Tag{rng.next()}));
    }
}
BENCHMARK(BM_MctClassify)->Arg(0)->Arg(8);

void
BM_CacheAccess(benchmark::State &state)
{
    CacheGeometry g(16 * 1024, static_cast<unsigned>(state.range(0)),
                    64);
    Cache cache(g);
    Pcg32 rng(1);
    for (auto _ : state) {
        Addr a = (rng.next() & 0xFFFFF) << 3;
        if (!cache.access(ByteAddr{a}, false))
            cache.fill(ByteAddr{a}, false, false);
    }
}
BENCHMARK(BM_CacheAccess)->Arg(1)->Arg(2)->Arg(8);

void
BM_FaLruTouch(benchmark::State &state)
{
    FaLru fa(static_cast<std::size_t>(state.range(0)));
    Pcg32 rng(1);
    for (auto _ : state) {
        LineAddr a{rng.next() & 0x3FF};
        if (!fa.touch(a))
            fa.insert(a);
    }
}
BENCHMARK(BM_FaLruTouch)->Arg(8)->Arg(256);

void
BM_FaLruTouchOrInsert(benchmark::State &state)
{
    // The combined single-probe access the oracle uses.
    FaLru fa(static_cast<std::size_t>(state.range(0)));
    Pcg32 rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            fa.touchOrInsert(LineAddr{rng.next() & 0x3FF}));
    }
}
BENCHMARK(BM_FaLruTouchOrInsert)->Arg(8)->Arg(256);

void
BM_TraceDelivery(benchmark::State &state)
{
    // range(0) = batch size; 1 approximates the historical
    // record-at-a-time pull, maxTraceBatch is the batched path.
    auto wl = makeWorkload("compress", 100'000, 42);
    VectorTrace trace = VectorTrace::capture(*wl);
    const auto batch = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        trace.reset();
        BatchReader reader(trace, batch);
        MemRecord r;
        std::size_t sink = 0;
        while (reader.next(r))
            sink += r.isMem() ? 1 : 0;
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_TraceDelivery)
    ->Arg(1)
    ->Arg(static_cast<int>(maxTraceBatch));

void
BM_AssistBufferProbe(benchmark::State &state)
{
    AssistBuffer buf(static_cast<unsigned>(state.range(0)));
    for (unsigned i = 0; i < buf.entries(); ++i)
        buf.insert(LineAddr{i * 64}, BufSource::Victim, false,
                   false, 0);
    Pcg32 rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            buf.find(LineAddr{(rng.next() & 31) * 64}));
    }
}
BENCHMARK(BM_AssistBufferProbe)->Arg(8)->Arg(16);

void
BM_MemSysAccess(benchmark::State &state)
{
    SystemConfig cfg = ambConfig(true, true, true);
    MemorySystem mem(cfg.mem);
    Pcg32 rng(1);
    Cycle now = 0;
    for (auto _ : state) {
        Addr a = (rng.next() & 0x7FFFF) << 3;
        benchmark::DoNotOptimize(
            mem.access(ByteAddr{0}, ByteAddr{a}, false, now));
        now += 2;
    }
}
BENCHMARK(BM_MemSysAccess);

void
BM_EndToEndSim(benchmark::State &state)
{
    auto wl = makeWorkload("compress", 50'000, 42);
    VectorTrace trace = VectorTrace::capture(*wl);
    SystemConfig cfg = baselineConfig();
    for (auto _ : state) {
        RunOutput r = runTiming(trace, cfg);
        benchmark::DoNotOptimize(r.sim.cycles);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_EndToEndSim)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    bool hotpath_only = false;
    unsigned shards = 1;
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--hotpath-only") == 0) {
            hotpath_only = true;
        } else if (std::strcmp(argv[i], "--shards") == 0 &&
                   i + 1 < argc) {
            shards = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else {
            argv[kept++] = argv[i];
        }
    }
    argc = kept;

    const int rc = runHotpathTable(shards == 0 ? 1 : shards);
    if (rc != 0 || hotpath_only)
        return rc;

    std::cout << "\n";
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
