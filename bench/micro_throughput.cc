/**
 * @file
 * google-benchmark microbenchmarks for the simulator's hot paths:
 * MCT classification, cache access, the fully-associative LRU, the
 * assist buffer, and end-to-end simulated-instruction throughput.
 * These guard the simulation speed that keeps every figure bench
 * runnable in seconds.
 */

#include <benchmark/benchmark.h>

#include "assist/buffer.hh"
#include "cache/cache.hh"
#include "cache/fa_lru.hh"
#include "common/random.hh"
#include "cpu/core.hh"
#include "mct/mct.hh"
#include "sim/experiment.hh"
#include "trace/vector_trace.hh"
#include "workloads/registry.hh"

namespace
{

using namespace ccm;

void
BM_MctClassify(benchmark::State &state)
{
    MissClassificationTable mct(256,
                                static_cast<unsigned>(state.range(0)));
    for (std::size_t s = 0; s < 256; ++s)
        mct.recordEviction(SetIndex{s}, Tag{s * 31});
    Pcg32 rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            mct.classify(SetIndex{rng.next() & 255},
                         Tag{rng.next()}));
    }
}
BENCHMARK(BM_MctClassify)->Arg(0)->Arg(8);

void
BM_CacheAccess(benchmark::State &state)
{
    CacheGeometry g(16 * 1024, static_cast<unsigned>(state.range(0)),
                    64);
    Cache cache(g);
    Pcg32 rng(1);
    for (auto _ : state) {
        Addr a = (rng.next() & 0xFFFFF) << 3;
        if (!cache.access(ByteAddr{a}, false))
            cache.fill(ByteAddr{a}, false, false);
    }
}
BENCHMARK(BM_CacheAccess)->Arg(1)->Arg(2)->Arg(8);

void
BM_FaLruTouch(benchmark::State &state)
{
    FaLru fa(static_cast<std::size_t>(state.range(0)));
    Pcg32 rng(1);
    for (auto _ : state) {
        LineAddr a{rng.next() & 0x3FF};
        if (!fa.touch(a))
            fa.insert(a);
    }
}
BENCHMARK(BM_FaLruTouch)->Arg(8)->Arg(256);

void
BM_AssistBufferProbe(benchmark::State &state)
{
    AssistBuffer buf(static_cast<unsigned>(state.range(0)));
    for (unsigned i = 0; i < buf.entries(); ++i)
        buf.insert(LineAddr{i * 64}, BufSource::Victim, false,
                   false, 0);
    Pcg32 rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            buf.find(LineAddr{(rng.next() & 31) * 64}));
    }
}
BENCHMARK(BM_AssistBufferProbe)->Arg(8)->Arg(16);

void
BM_MemSysAccess(benchmark::State &state)
{
    SystemConfig cfg = ambConfig(true, true, true);
    MemorySystem mem(cfg.mem);
    Pcg32 rng(1);
    Cycle now = 0;
    for (auto _ : state) {
        Addr a = (rng.next() & 0x7FFFF) << 3;
        benchmark::DoNotOptimize(
            mem.access(ByteAddr{0}, ByteAddr{a}, false, now));
        now += 2;
    }
}
BENCHMARK(BM_MemSysAccess);

void
BM_EndToEndSim(benchmark::State &state)
{
    auto wl = makeWorkload("compress", 50'000, 42);
    VectorTrace trace = VectorTrace::capture(*wl);
    SystemConfig cfg = baselineConfig();
    for (auto _ : state) {
        RunOutput r = runTiming(trace, cfg);
        benchmark::DoNotOptimize(r.sim.cycles);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_EndToEndSim)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
