/**
 * @file
 * Figure 7 — Average data-cache and buffer hit-rate components for
 * the adaptive-miss-buffer policies (suite averages, % of accesses).
 *
 * The stacked components: D$ hits, buffer hits by entry source
 * (victim / prefetch / bypass), and the residual miss rate.  Paper:
 * the AMB derives its win by covering each miss class with the right
 * mechanism — about a 1.4x improvement (30% reduction) in total miss
 * rate over the best individual policy.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"
#include "sim/experiment.hh"

int
main()
{
    using namespace ccm;
    using namespace ccm::bench;

    struct Policy
    {
        const char *label;
        SystemConfig cfg;
    };
    const Policy policies[] = {
        {"none", baselineConfig()},
        {"Vict", ambSingleVict(8)},
        {"Pref", ambSinglePref(8)},
        {"Excl", ambSingleExcl(8)},
        {"VictPref", ambConfig(true, true, false, 8)},
        {"PrefExcl", ambConfig(false, true, true, 8)},
        {"VicPreExc", ambConfig(true, true, true, 8)},
    };

    std::cout << "Figure 7: hit-rate components "
              << "(% of all accesses, suite averages)\n\n";

    TextTable table({"policy", "D$", "victim", "prefetch", "bypass",
                     "total", "miss"});

    std::vector<VectorTrace> traces;
    for (const auto &name : timingSuite())
        traces.push_back(captureWorkload(name));
    const double n = double(traces.size());

    for (const auto &p : policies) {
        double d = 0, v = 0, pf = 0, by = 0, tot = 0, miss = 0;
        for (auto &trace : traces) {
            RunOutput r = runTiming(trace, p.cfg);
            d += r.mem.l1HitRatePct();
            v += pct(r.mem.bufHitVictim, r.mem.accesses);
            pf += pct(r.mem.bufHitPrefetch, r.mem.accesses);
            by += pct(r.mem.bufHitBypass, r.mem.accesses);
            tot += r.mem.totalHitRatePct();
            miss += r.mem.missRatePct();
        }
        auto row = table.addRow(p.label);
        table.setNum(row, 1, d / n, 1);
        table.setNum(row, 2, v / n, 1);
        table.setNum(row, 3, pf / n, 1);
        table.setNum(row, 4, by / n, 1);
        table.setNum(row, 5, tot / n, 1);
        table.setNum(row, 6, miss / n, 1);
    }
    table.print(std::cout);

    std::cout << "\npaper: the AMB optimizes the coverage of each "
              << "miss type; ~30% total miss-rate reduction over the "
              << "best individual policy\n";
    return 0;
}
