/**
 * @file
 * Figure 5 — Cache-exclusion policies.
 *
 * Six configurations over the timing suite: no extra buffer
 * (baseline), Johnson & Hwu's memory access table (MAT), and four
 * MCT-based filters — conflict, conflict-history, capacity,
 * capacity-history — each steering excluded lines into a 16-entry
 * bypass buffer.
 *
 * Paper: simply excluding MCT-capacity misses performs best, beating
 * the MAT with a far simpler structure that is only touched on
 * misses; it yields both a higher overall hit rate and higher
 * performance.
 */

#include <array>
#include <cmath>
#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"
#include "sim/experiment.hh"

int
main(int argc, char **argv)
{
    using namespace ccm;
    using namespace ccm::bench;

    const std::size_t jobs = parseJobs(argc, argv);

    struct Policy
    {
        const char *label;
        ExcludeAlgo algo;
    };
    const Policy policies[] = {
        {"MAT", ExcludeAlgo::Mat},
        {"TysonPC", ExcludeAlgo::TysonPc},
        {"conflict", ExcludeAlgo::Conflict},
        {"conf-hist", ExcludeAlgo::ConflictHistory},
        {"capacity", ExcludeAlgo::Capacity},
        {"cap-hist", ExcludeAlgo::CapacityHistory},
    };
    constexpr std::size_t n_pol = 6;

    std::cout << "Figure 5: cache-exclusion policies "
              << "(speedup over no exclusion; 16-entry bypass "
              << "buffer)\n\n";

    std::vector<std::string> headers = {"workload"};
    for (const auto &p : policies)
        headers.push_back(p.label);
    TextTable table(headers);

    struct Cell
    {
        double baseHr = 0;
        std::array<double, n_pol> sp;
        std::array<double, n_pol> hr;
    };
    const auto &suite = timingSuite();
    std::vector<Cell> cells(suite.size());
    forEachIndex(suite.size(), jobs, [&](std::size_t w) {
        VectorTrace trace = captureWorkload(suite[w]);
        RunOutput base = runTiming(trace, baselineConfig());
        cells[w].baseHr = base.mem.totalHitRatePct();
        for (std::size_t p = 0; p < n_pol; ++p) {
            RunOutput r =
                runTiming(trace, excludeConfig(policies[p].algo));
            cells[w].sp[p] = speedup(base, r);
            cells[w].hr[p] = r.mem.totalHitRatePct();
        }
    });

    double geo[n_pol] = {1, 1, 1, 1, 1, 1};
    double hr_sum[n_pol] = {};
    double base_hr = 0;
    std::size_t n = 0;

    for (std::size_t w = 0; w < suite.size(); ++w) {
        base_hr += cells[w].baseHr;
        auto row = table.addRow(suite[w]);
        for (std::size_t p = 0; p < n_pol; ++p) {
            table.setNum(row, p + 1, cells[w].sp[p], 3);
            geo[p] *= cells[w].sp[p];
            hr_sum[p] += cells[w].hr[p];
        }
        ++n;
    }

    auto avg = table.addRow("GEOMEAN");
    for (std::size_t p = 0; p < n_pol; ++p)
        table.setNum(avg, p + 1, std::pow(geo[p], 1.0 / double(n)), 3);
    table.print(std::cout);
    emitBenchJson("fig5_exclusion", table);

    std::cout << "\naverage total hit rate (% of accesses): no-buffer "
              << base_hr / n;
    for (std::size_t p = 0; p < n_pol; ++p)
        std::cout << ", " << policies[p].label << " "
                  << hr_sum[p] / n;
    std::cout << "\n\npaper: the plain capacity filter wins, beating "
              << "the MAT and the history variants with the simplest "
              << "structure\n";
    return 0;
}
