/**
 * @file
 * Table 1 — Hit rates and rate of swaps and fills (as a percentage of
 * all accesses) for the victim-cache configurations.
 *
 * Paper row reference (suite averages):
 *   no V cache:   D$ 88.2, V$ 0,    total 88.2, swaps 0,   fills 0
 *   V cache:      D$ 88.2, V$ 6.4,  total 94.7, swaps 1.7, fills 6.6
 *   filter swaps: D$ 82.5, V$ 12.1, total 94.6, swaps 0.1, fills 6.6
 *   filter fills: D$ 88.1, V$ 6.2,  total 94.3, swaps 1.7, fills 2.6
 *   filter both:  D$ 80.8, V$ 13.6, total 94.4, swaps 0.1, fills 2.6
 *
 * The shapes to reproduce: no-swap shifts hits from D$ to V$ with the
 * total nearly unchanged; filtering fills cuts fills by more than
 * half; filtering swaps all but eliminates swaps.
 */

#include <array>
#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"
#include "sim/experiment.hh"

int
main(int argc, char **argv)
{
    using namespace ccm;
    using namespace ccm::bench;

    const std::size_t jobs = parseJobs(argc, argv);

    struct Policy
    {
        const char *label;
        bool enabled;           // false = no victim cache at all
        SystemConfig cfg;
    };
    const Policy policies[] = {
        {"no V cache", false, baselineConfig()},
        {"V cache", true, victimConfig(false, false)},
        {"filter swaps", true, victimConfig(true, false)},
        {"filter fills", true, victimConfig(false, true)},
        {"filter both", true, victimConfig(true, true)},
    };

    std::cout << "Table 1: hit rates and rate of swaps and fills "
              << "(% of all accesses), suite averages\n\n";

    TextTable table({"policy", "D$ HR", "V$ HR", "Total", "swaps",
                     "fills"});

    // One task per workload: capture its trace once, replay it
    // against every policy, write only this workload's result slot.
    constexpr std::size_t n_pol = 5;
    struct Rates
    {
        double d = 0, v = 0, tot = 0, sw = 0, fi = 0;
    };
    const auto &suite = timingSuite();
    std::vector<std::array<Rates, n_pol>> cells(suite.size());
    forEachIndex(suite.size(), jobs, [&](std::size_t w) {
        VectorTrace trace = captureWorkload(suite[w]);
        for (std::size_t p = 0; p < n_pol; ++p) {
            RunOutput r = runTiming(trace, policies[p].cfg);
            cells[w][p] = {r.mem.l1HitRatePct(), r.mem.bufHitRatePct(),
                           r.mem.totalHitRatePct(), r.mem.swapRatePct(),
                           r.mem.fillRatePct()};
        }
    });

    for (std::size_t p = 0; p < n_pol; ++p) {
        double d = 0, v = 0, tot = 0, sw = 0, fi = 0;
        for (std::size_t w = 0; w < suite.size(); ++w) {
            d += cells[w][p].d;
            v += cells[w][p].v;
            tot += cells[w][p].tot;
            sw += cells[w][p].sw;
            fi += cells[w][p].fi;
        }
        double n = double(suite.size());
        auto row = table.addRow(policies[p].label);
        table.setNum(row, 1, d / n, 1);
        table.setNum(row, 2, v / n, 1);
        table.setNum(row, 3, tot / n, 1);
        table.setNum(row, 4, sw / n, 1);
        table.setNum(row, 5, fi / n, 1);
    }

    table.print(std::cout);
    emitBenchJson("table1_victim_rates", table);
    std::cout << "\npaper: 88.2/6.4/94.7/1.7/6.6 for the traditional "
              << "victim cache; no-fill cuts fills by more than half; "
              << "no-swap nearly eliminates swaps\n";
    return 0;
}
