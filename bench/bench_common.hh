/**
 * @file
 * Shared scaffolding for the per-figure benchmark binaries: the
 * timing workload suite and its parameters.
 *
 * The paper measures 300M-instruction windows of SPEC95; we use
 * smaller deterministic synthetic traces (DESIGN.md substitutions) so
 * every binary finishes in seconds.  Following §4, the timing
 * sections carry forward the subset of the suite with an interesting
 * conflict/capacity mix (the classification study in fig1/fig2 keeps
 * all twelve).
 */

#ifndef CCM_BENCH_COMMON_HH
#define CCM_BENCH_COMMON_HH

#include <cstdlib>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.hh"
#include "obs/sink.hh"
#include "trace/vector_trace.hh"
#include "workloads/registry.hh"

namespace ccm::bench
{

/** Memory references per workload in timing runs. */
constexpr std::size_t timingRefs = 400'000;

/** Seed shared by every experiment. */
constexpr std::uint64_t seed = 42;

/** Workloads carried into the timing sections (§5). */
inline const std::vector<std::string> &
timingSuite()
{
    // The paper keeps benchmarks with "at least a somewhat
    // interesting mix of conflict and capacity behavior"; swim and
    // mgrid stay (they anchor the capacity/prefetch side, and swim is
    // discussed in §5.2).
    static const std::vector<std::string> names = {
        "tomcatv", "swim", "mgrid", "applu", "turb3d", "wave5",
        "go", "gcc", "compress", "li", "perl", "vortex",
    };
    return names;
}

/** Materialize one timing workload as a replayable in-memory trace. */
inline VectorTrace
captureWorkload(const std::string &name,
                std::size_t refs = timingRefs)
{
    auto wl = makeWorkload(name, refs, seed);
    return VectorTrace::capture(*wl);
}

/**
 * Leave a machine-readable BENCH_<name>.json record of the table a
 * bench binary just printed (destination: $CCM_BENCH_JSON_DIR, else
 * the working directory).  Failure to write is a warning, not an
 * error — the printed table is still the primary output.
 */
inline void
emitBenchJson(const std::string &name, const TextTable &table,
              const std::string &note = "")
{
    Expected<std::string> path = obs::writeBenchJson(name, table, note);
    if (path.ok())
        std::cout << "(wrote " << path.value() << ")\n";
    else
        std::cerr << "warning: " << path.status().toString() << "\n";
}

/**
 * Parse the one flag the figure/table binaries accept: `--jobs N`
 * (default 1 = the historical single-threaded behaviour, 0 = one
 * worker per hardware thread).  Anything else is rejected so the
 * binaries stay honest about taking no other arguments.
 */
inline std::size_t
parseJobs(int argc, char **argv)
{
    std::size_t jobs = 1;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--jobs" && i + 1 < argc) {
            jobs = std::strtoull(argv[++i], nullptr, 10);
        } else {
            std::cerr << "usage: " << argv[0] << " [--jobs N]\n";
            std::exit(1);
        }
    }
    return jobs;
}

/**
 * Run fn(0..n-1) on @p jobs workers (resolveJobCount semantics) and
 * wait for all of them.  Calls must be independent: each bench
 * parallelizes over workloads, with every task owning its trace and
 * writing only its own result slot, so per-cell results — and hence
 * the printed tables — are identical for every jobs value.
 */
inline void
forEachIndex(std::size_t n, std::size_t jobs,
             const std::function<void(std::size_t)> &fn)
{
    jobs = resolveJobCount(jobs);
    if (jobs <= 1 || n <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    ThreadPool pool(jobs < n ? jobs : n);
    for (std::size_t i = 0; i < n; ++i)
        pool.submit([&fn, i] { fn(i); });
    pool.waitIdle();
}

} // namespace ccm::bench

#endif // CCM_BENCH_COMMON_HH
