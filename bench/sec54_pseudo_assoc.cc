/**
 * @file
 * §5.4 (text results) — Pseudo-associative cache with MCT-guided
 * replacement.
 *
 * Three machines per workload: the baseline column-associative cache
 * (LRU between the two candidate lines), the MCT-modified version
 * (conflict bit vetoes LRU once), and a true 2-way set-associative
 * cache of the same size.
 *
 * Paper: the MCT modification improves the pseudo-associative cache
 * by 1.5% on average (up to 7%); the modified cache runs only 0.9%
 * slower than a true 2-way cache, and tomcatv/turb3d/wave5 beat the
 * 2-way cache; average miss rate improves from 10.22% to 9.83%.
 */

#include <cmath>
#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"
#include "sim/experiment.hh"

int
main()
{
    using namespace ccm;
    using namespace ccm::bench;

    std::cout << "Section 5.4: pseudo-associative cache "
              << "(speedups relative to the base pseudo-associative "
              << "cache)\n\n";

    TextTable table({"workload", "MCT speedup", "2-way speedup",
                     "base miss%", "MCT miss%", "2way miss%"});

    double geo_mct = 1, geo_2w = 1;
    double mr_base = 0, mr_mct = 0, mr_2w = 0;
    std::size_t n = 0;

    for (const auto &name : timingSuite()) {
        VectorTrace trace = captureWorkload(name);
        RunOutput base = runTiming(trace, pseudoConfig(false));
        RunOutput mct = runTiming(trace, pseudoConfig(true));
        RunOutput twoway = runTiming(trace, twoWayConfig());

        auto miss_pct = [](const RunOutput &r) {
            return pct(r.mem.l1Misses, r.mem.accesses);
        };

        auto row = table.addRow(name);
        double s_mct = speedup(base, mct);
        double s_2w = speedup(base, twoway);
        table.setNum(row, 1, s_mct, 3);
        table.setNum(row, 2, s_2w, 3);
        table.setNum(row, 3, miss_pct(base), 2);
        table.setNum(row, 4, miss_pct(mct), 2);
        table.setNum(row, 5, miss_pct(twoway), 2);

        geo_mct *= s_mct;
        geo_2w *= s_2w;
        mr_base += miss_pct(base);
        mr_mct += miss_pct(mct);
        mr_2w += miss_pct(twoway);
        ++n;
    }

    auto avg = table.addRow("AVG/GEO");
    table.setNum(avg, 1, std::pow(geo_mct, 1.0 / double(n)), 3);
    table.setNum(avg, 2, std::pow(geo_2w, 1.0 / double(n)), 3);
    table.setNum(avg, 3, mr_base / n, 2);
    table.setNum(avg, 4, mr_mct / n, 2);
    table.setNum(avg, 5, mr_2w / n, 2);
    table.print(std::cout);

    std::cout << "\npaper: MCT replacement +1.5% avg (up to 7%); "
              << "within 0.9% of a true 2-way cache; average miss "
              << "rate 10.22% -> 9.83%\n";
    return 0;
}
