/**
 * @file
 * Parallel suite runner speedup record (not a paper figure): sweep
 * the full 16-workload suite through runSuiteParallel at 1, 2, and
 * all-hardware-threads workers, verify the reports agree cell by
 * cell, and record the wall-time trajectory as
 * BENCH_suite_parallel.json.
 *
 * This is the perf win of the parallel execution engine, tracked the
 * same way the figure benches track the paper's numbers: committed
 * baselines under bench/baselines/ diff against fresh runs.
 */

#include <chrono>
#include <iostream>
#include <vector>

#include "bench_common.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"
#include "sim/parallel.hh"

int
main(int argc, char **argv)
{
    using namespace ccm;
    using namespace ccm::bench;

    // --jobs caps the largest sweep (default 0 = hardware threads).
    std::size_t max_jobs = 0;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--jobs" && i + 1 < argc) {
            max_jobs = std::strtoull(argv[++i], nullptr, 10);
        } else {
            std::cerr << "usage: " << argv[0] << " [--jobs N]\n";
            return 1;
        }
    }
    max_jobs = resolveJobCount(max_jobs);

    constexpr std::size_t refs = 200'000;
    const SystemConfig cfg = ambConfig(true, true, true);

    std::cout << "Suite parallel execution: 16 workloads x AMB, "
              << refs << " refs each\n\n";

    std::vector<std::size_t> ladder = {1};
    if (max_jobs >= 2)
        ladder.push_back(2);
    if (max_jobs > 2)
        ladder.push_back(max_jobs);

    TextTable table({"jobs", "wall s", "speedup", "rows ok"});

    double seq_wall = 0.0;
    SuiteReport reference;
    for (std::size_t jobs : ladder) {
        ParallelSuiteOptions popts;
        popts.jobs = jobs;
        const auto t0 = std::chrono::steady_clock::now();
        SuiteReport report = runSuiteParallel(
            workloadNames(),
            [&](const std::string &name) {
                return makeWorkloadChecked(name, refs, seed);
            },
            cfg, popts);
        const double wall =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();

        if (jobs == 1) {
            seq_wall = wall;
            reference = report;
        } else {
            // Bit-identical stats regardless of worker count.
            for (std::size_t i = 0; i < report.rows.size(); ++i) {
                if (report.rows[i].out.sim.cycles !=
                    reference.rows[i].out.sim.cycles) {
                    std::cerr << "MISMATCH: row " << i
                              << " differs from sequential run\n";
                    return 1;
                }
            }
        }

        auto row = table.addRow(std::to_string(jobs));
        table.setNum(row, 1, wall, 2);
        table.setNum(row, 2, wall > 0 ? seq_wall / wall : 0.0, 2);
        table.set(row, 3,
                  std::to_string(report.rows.size() -
                                 report.failures()) +
                      "/" + std::to_string(report.rows.size()));
    }

    table.print(std::cout);
    emitBenchJson("suite_parallel", table,
                  "wall-clock trajectory of runSuiteParallel; stats "
                  "verified identical across jobs");
    std::cout << "\nevery parallel report matched the sequential "
              << "sweep cell for cell\n";
    return 0;
}
