/**
 * @file
 * Sensitivity study — how robust is the AMB's headline result to the
 * machine parameters the paper fixed in §4?
 *
 * Sweeps, one axis at a time around the paper's default machine:
 * L1 size (8-64KB), L1<->L2 bus occupancy, MSHR count, and L2
 * latency, reporting the geomean speedup of the AMB (VictPref, 8
 * entries) over the no-buffer baseline at each point.
 */

#include <cmath>
#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"
#include "sim/experiment.hh"

namespace
{

using namespace ccm;
using namespace ccm::bench;

double
geomeanSpeedup(std::vector<VectorTrace> &traces,
               const SystemConfig &base, const SystemConfig &test)
{
    double geo = 1;
    for (auto &t : traces)
        geo *= speedup(runTiming(t, base), runTiming(t, test));
    return std::pow(geo, 1.0 / double(traces.size()));
}

} // namespace

int
main()
{
    std::cout << "Sensitivity: AMB (VictPref, 8 entries) speedup vs "
              << "machine parameters (geomean over the timing "
              << "suite)\n\n";

    std::vector<VectorTrace> traces;
    for (const auto &name : timingSuite())
        traces.push_back(captureWorkload(name, 200'000));

    auto sweep = [&](const char *title,
                     const std::vector<std::pair<std::string,
                         void (*)(MemSysConfig &)>> &points) {
        TextTable t({title, "AMB speedup"});
        for (const auto &[label, mutate] : points) {
            SystemConfig base = baselineConfig();
            SystemConfig amb = ambConfig(true, true, false);
            mutate(base.mem);
            mutate(amb.mem);
            auto row = t.addRow(label);
            t.setNum(row, 1, geomeanSpeedup(traces, base, amb), 3);
        }
        t.print(std::cout);
        std::cout << "\n";
    };

    sweep("L1 size",
          {{"8KB", [](MemSysConfig &m) { m.l1Bytes = 8 * 1024; }},
           {"16KB (paper)", [](MemSysConfig &m) {
                m.l1Bytes = 16 * 1024;
            }},
           {"32KB", [](MemSysConfig &m) { m.l1Bytes = 32 * 1024; }},
           {"64KB", [](MemSysConfig &m) { m.l1Bytes = 64 * 1024; }}});

    sweep("bus cycles/line",
          {{"2", [](MemSysConfig &m) { m.busCyclesPerTransfer = 2; }},
           {"4 (default)", [](MemSysConfig &m) {
                m.busCyclesPerTransfer = 4;
            }},
           {"8", [](MemSysConfig &m) { m.busCyclesPerTransfer = 8; }},
           {"16", [](MemSysConfig &m) {
                m.busCyclesPerTransfer = 16;
            }}});

    sweep("MSHRs",
          {{"2", [](MemSysConfig &m) { m.mshrs = 2; }},
           {"4", [](MemSysConfig &m) { m.mshrs = 4; }},
           {"16 (paper)", [](MemSysConfig &m) { m.mshrs = 16; }},
           {"64", [](MemSysConfig &m) { m.mshrs = 64; }}});

    sweep("L2 latency",
          {{"10", [](MemSysConfig &m) { m.l2Latency = 10; }},
           {"20 (paper)", [](MemSysConfig &m) { m.l2Latency = 20; }},
           {"40", [](MemSysConfig &m) { m.l2Latency = 40; }},
           {"80", [](MemSysConfig &m) { m.l2Latency = 80; }}});

    std::cout << "reading the shapes: the AMB's gain is robust "
              << "across every axis (>= 1.2 everywhere the paper's "
              << "machine is perturbed).  It grows with L1 size "
              << "(capacity misses fade, leaving exactly the "
              << "conflict near-misses the buffer covers), shrinks "
              << "as the bus slows (the prefetch half is "
              << "bandwidth-hungry), needs only a handful of MSHRs "
              << "(prefetches are dropped when they're full), and "
              << "is nearly flat in L2 latency (buffer hits bypass "
              << "the L2 path entirely)\n";
    return 0;
}
