/**
 * @file
 * §5.6 "Runtime conflict avoidance" — CML-buffer page recoloring.
 *
 * The cache-miss-lookaside approach (Bershad/Romer) re-colors pages
 * with high miss counts.  The paper's addition: count only conflict
 * misses, so "reallocation could be avoided when the majority of
 * misses are capacity misses (in which case reallocation typically
 * would not help)."
 *
 * For each workload: misses and page moves when the OS counts all
 * misses vs conflict misses only.  The shape to see: conflict-only
 * keeps (or improves) the miss reduction while performing far fewer
 * remaps — dramatically so on capacity-dominated programs like swim.
 */

#include <iostream>

#include "common/table.hh"
#include "remap/remap_sim.hh"
#include "workloads/registry.hh"

namespace
{

constexpr std::size_t memRefs = 500'000;
constexpr std::uint64_t seed = 42;

} // namespace

int
main()
{
    using namespace ccm;

    std::cout << "Section 5.6: page recoloring driven by the CML "
              << "buffer (16KB DM cache, 4KB pages)\n\n";

    TextTable table({"workload", "static miss%", "all-miss miss%",
                     "all-miss remaps", "conflict miss%",
                     "conflict remaps"});

    double s0 = 0, s1 = 0, s2 = 0;
    Count r1 = 0, r2 = 0;
    std::size_t n = 0;

    for (const auto &spec : workloadSuite()) {
        auto wl = spec.make(memRefs, seed);

        RemapConfig none;
        none.hotThreshold = ~0u;     // never remap: static coloring
        RemapResult base = PageRemapSim(none).run(*wl);

        RemapConfig all;
        all.conflictOnly = false;
        RemapResult ra = PageRemapSim(all).run(*wl);

        RemapConfig conf;
        conf.conflictOnly = true;
        RemapResult rc = PageRemapSim(conf).run(*wl);

        auto row = table.addRow(spec.name);
        table.setNum(row, 1, 100.0 * base.missRate, 2);
        table.setNum(row, 2, 100.0 * ra.missRate, 2);
        table.set(row, 3, std::to_string(ra.remaps));
        table.setNum(row, 4, 100.0 * rc.missRate, 2);
        table.set(row, 5, std::to_string(rc.remaps));

        s0 += 100.0 * base.missRate;
        s1 += 100.0 * ra.missRate;
        s2 += 100.0 * rc.missRate;
        r1 += ra.remaps;
        r2 += rc.remaps;
        ++n;
    }

    auto avg = table.addRow("AVG/SUM");
    table.setNum(avg, 1, s0 / n, 2);
    table.setNum(avg, 2, s1 / n, 2);
    table.set(avg, 3, std::to_string(r1));
    table.setNum(avg, 4, s2 / n, 2);
    table.set(avg, 5, std::to_string(r2));
    table.print(std::cout);

    std::cout << "\nshape: conflict-only counting performs far fewer "
              << "page moves for a similar miss-rate benefit — "
              << "classification filters out remaps that could not "
              << "have helped\n";
    return 0;
}
