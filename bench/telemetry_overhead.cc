/**
 * @file
 * Telemetry overhead gate: proves the observability layer keeps its
 * "strictly observational, < 2% on the classify hot path" promise
 * (docs/OBSERVABILITY.md).
 *
 * The serve layer's only steady-state classify cost is
 * QueueSource::nextBatch's telemetry: a relaxed counter add per batch
 * plus a sampled gap-timing (two steady-clock reads one batch in
 * kClassifySampleEvery, src/serve/stream.cc).  This bench replays the
 * same captured traces through runTiming() twice — once raw, once
 * through a decorator doing exactly that per-batch telemetry — with
 * interleaved repetitions so clock drift and frequency scaling hit
 * both sides equally, and compares per-workload minima.
 *
 * Exit status: 0 when the median overhead across the suite is under
 * the 2% budget, 1 when it is not (CI fails the PR), so the gate is
 * enforced rather than aspirational.
 */

#include <algorithm>
#include <chrono>
#include <iostream>
#include <vector>

#include "bench_common.hh"
#include "obs/metrics.hh"
#include "sim/experiment.hh"

namespace
{

using namespace ccm;
using namespace ccm::bench;

constexpr double overheadBudgetPct = 2.0;
constexpr int repetitions = 9;
constexpr std::size_t overheadRefs = 200'000;

/**
 * The per-batch instrument work QueueSource does in the daemon:
 * count the records through a counter and gap-time one batch handoff
 * in kSampleEvery into a histogram.  Forwarding decorator, zero
 * per-record work — mirroring src/serve/stream.cc exactly (same
 * sampling rate) is the point.
 */
class InstrumentedSource : public TraceSource
{
  public:
    explicit InstrumentedSource(TraceSource &inner)
        : inner_(inner),
          classifyUs_(obs::MetricsRegistry::global().histogram(
              "bench_classify_us", "per-batch classify gap")),
          classified_(obs::MetricsRegistry::global().counter(
              "bench_classified_total", "records classified"))
    {
    }

    bool next(MemRecord &out) override { return inner_.next(out); }

    /** QueueSource::kClassifySampleEvery, mirrored. */
    static constexpr unsigned kSampleEvery = 8;

    std::size_t
    nextBatch(MemRecord *out, std::size_t n) override
    {
        if (lastHandoffUs_ != 0) {
            classifyUs_.observe(
                static_cast<std::uint64_t>(nowUs() - lastHandoffUs_));
            lastHandoffUs_ = 0;
        }
        const std::size_t got = inner_.nextBatch(out, n);
        classified_.inc(got);
        if (got > 0 && ++tick_ % kSampleEvery == 0)
            lastHandoffUs_ = nowUs();
        return got;
    }

    void
    reset() override
    {
        tick_ = 0;
        lastHandoffUs_ = 0;
        inner_.reset();
    }

    std::string name() const override { return inner_.name(); }

  private:
    static std::int64_t
    nowUs()
    {
        return std::chrono::duration_cast<std::chrono::microseconds>(
                   std::chrono::steady_clock::now()
                       .time_since_epoch())
            .count();
    }

    TraceSource &inner_;
    obs::Histogram &classifyUs_;
    obs::Counter &classified_;
    unsigned tick_ = 0;
    std::int64_t lastHandoffUs_ = 0;
};

double
timedRun(TraceSource &src)
{
    src.reset();
    const auto start = std::chrono::steady_clock::now();
    (void)runTiming(src, baselineConfig());
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

double
median(std::vector<double> v)
{
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
}

/**
 * Noise-robust per-side estimate: the fastest repetition.  The
 * telemetry cost is a constant add per batch, so it survives in the
 * minimum, while scheduler and frequency noise (which only ever slow
 * a run down) do not.
 */
double
best(const std::vector<double> &v)
{
    return *std::min_element(v.begin(), v.end());
}

} // namespace

int
main(int argc, char **argv)
{
    (void)parseJobs(argc, argv);

    TextTable table(
        {"workload", "base_ms", "instr_ms", "overhead_%"});
    std::vector<double> overheads;

    for (const std::string &wl : timingSuite()) {
        VectorTrace trace = captureWorkload(wl, overheadRefs);
        InstrumentedSource instrumented(trace);

        (void)timedRun(trace); // warm caches and the branch state

        std::vector<double> base, instr;
        for (int rep = 0; rep < repetitions; ++rep) {
            // Interleave A/B so machine noise is shared, not biased.
            base.push_back(timedRun(trace));
            instr.push_back(timedRun(instrumented));
        }
        const double b = best(base), in = best(instr);
        const double pct = (in - b) / b * 100.0;
        overheads.push_back(pct);

        auto row = table.addRow(wl);
        table.setNum(row, 1, b * 1e3, 2);
        table.setNum(row, 2, in * 1e3, 2);
        table.setNum(row, 3, pct, 2);
    }

    const double suite = median(overheads);
    auto row = table.addRow("suite-median");
    table.setNum(row, 3, suite, 2);

    table.print(std::cout);
    emitBenchJson("telemetry", table,
                  "per-batch telemetry overhead on the classify hot "
                  "path; budget " +
                      std::to_string(overheadBudgetPct) + "%");

    std::cout << "\nsuite-median overhead " << suite << "% (budget "
              << overheadBudgetPct << "%)\n";
    if (suite >= overheadBudgetPct) {
        std::cout << "FAIL: telemetry overhead exceeds the budget\n";
        return 1;
    }
    std::cout << "PASS\n";
    return 0;
}
