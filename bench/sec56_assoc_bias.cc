/**
 * @file
 * §5.6 "Highly associative caches" — MCT-biased replacement.
 *
 * For 2/4/8-way caches, compare plain LRU against replacement biased
 * against capacity-miss lines ("a bias against capacity misses will
 * ensure that accesses that stride through memory ... move out of
 * the cache set quickly once they are no longer being used"), the
 * application Stone and Pomerene suggested for the shadow directory.
 * Functional study: miss rates over the workload suite.
 */

#include <iostream>

#include "assoc/biased_cache.hh"
#include "common/table.hh"
#include "trace/source.hh"
#include "workloads/registry.hh"

namespace
{

constexpr std::size_t memRefs = 500'000;
constexpr std::uint64_t seed = 42;

double
runMissRate(ccm::TraceSource &trace, unsigned assoc, bool bias,
            ccm::Count *overrides = nullptr)
{
    using namespace ccm;
    CacheGeometry g(16 * 1024, assoc, 64);
    BiasedAssocCache cache(g, bias);
    trace.reset();
    MemRecord r;
    while (trace.next(r)) {
        if (r.isMem())
            cache.access(r.dataAddr(), r.isStore());
    }
    if (overrides)
        *overrides = cache.biasOverrides();
    return 100.0 * cache.missRate();
}

} // namespace

int
main()
{
    using namespace ccm;

    std::cout << "Section 5.6: MCT-biased replacement in associative "
              << "caches (miss %, 16KB cache)\n\n";

    TextTable table({"workload", "2w LRU", "2w bias", "4w LRU",
                     "4w bias", "8w LRU", "8w bias"});

    const unsigned assocs[] = {2, 4, 8};
    double sum[6] = {};
    std::size_t n = 0;

    for (const auto &spec : workloadSuite()) {
        auto wl = spec.make(memRefs, seed);
        auto row = table.addRow(spec.name);
        std::size_t col = 1;
        for (unsigned a : assocs) {
            double lru = runMissRate(*wl, a, false);
            double bias = runMissRate(*wl, a, true);
            table.setNum(row, col, lru, 2);
            table.setNum(row, col + 1, bias, 2);
            sum[col - 1] += lru;
            sum[col] += bias;
            col += 2;
        }
        ++n;
    }

    auto avg = table.addRow("AVG");
    for (std::size_t i = 0; i < 6; ++i)
        table.setNum(avg, i + 1, sum[i] / n, 2);
    table.print(std::cout);

    std::cout << "\nthe paper's suggestion targets workloads that "
              << "still conflict at 4+ ways; where (like most of this "
              << "suite) conflicts are pairwise, the bias should be "
              << "close to neutral\n";
    return 0;
}
