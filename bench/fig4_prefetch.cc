/**
 * @file
 * Figure 4 — Next-line prefetch strategies.
 *
 * Five configurations: an unfiltered next-line prefetcher, then
 * capacity-only prefetching using each conflict filter (in / out /
 * and / or).  Reports prefetch accuracy (useful/issued), coverage
 * (prefetch-buffer hits / L1 misses), and speedup over no prefetching
 * on the paper's slow L1<->L2 bus variant ("The speedup results shown
 * are for a system with a slower memory bus ... than modeled in the
 * rest of the paper").
 *
 * Paper: filtering raises accuracy ~25% by eliminating low-
 * probability prefetches; speedups are roughly flat — the payoff of
 * classification is *doing something better* with conflict misses
 * (§5.5), not merely skipping them.
 */

#include <cmath>
#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"
#include "sim/experiment.hh"

int
main()
{
    using namespace ccm;
    using namespace ccm::bench;

    struct Strategy
    {
        const char *label;
        bool filtered;
        ConflictFilter filter;
    };
    const Strategy strategies[] = {
        {"nextline", false, ConflictFilter::Out},
        {"in-filter", true, ConflictFilter::In},
        {"out-filter", true, ConflictFilter::Out},
        {"and-filter", true, ConflictFilter::And},
        {"or-filter", true, ConflictFilter::Or},
    };
    constexpr std::size_t n_strat = 5;

    auto slow_bus = [](SystemConfig cfg) {
        cfg.mem.busCyclesPerTransfer = 6;
        return cfg;
    };

    std::cout << "Figure 4: next-line prefetch strategies\n\n";

    TextTable acc({"workload", "nextline acc%", "in acc%", "out acc%",
                   "and acc%", "or acc%", "nextline cov%", "or cov%"});

    double acc_sum[n_strat] = {};
    double cov_sum[n_strat] = {};
    double geo[n_strat] = {1, 1, 1, 1, 1};
    std::size_t n = 0;

    for (const auto &name : timingSuite()) {
        VectorTrace trace = captureWorkload(name);
        RunOutput base = runTiming(trace, slow_bus(baselineConfig()));

        auto row = acc.addRow(name);
        double covs[n_strat];
        for (std::size_t s = 0; s < n_strat; ++s) {
            SystemConfig cfg = slow_bus(prefetchConfig(
                strategies[s].filtered, strategies[s].filter));
            RunOutput r = runTiming(trace, cfg);
            double a = r.mem.prefAccuracyPct();
            covs[s] = r.mem.prefCoveragePct();
            acc_sum[s] += a;
            cov_sum[s] += covs[s];
            geo[s] *= speedup(base, r);
            if (s < n_strat)
                acc.setNum(row, s + 1, a, 1);
        }
        acc.setNum(row, 6, covs[0], 1);
        acc.setNum(row, 7, covs[4], 1);
        ++n;
    }

    auto avg = acc.addRow("AVG");
    for (std::size_t s = 0; s < n_strat; ++s)
        acc.setNum(avg, s + 1, acc_sum[s] / n, 1);
    acc.setNum(avg, 6, cov_sum[0] / n, 1);
    acc.setNum(avg, 7, cov_sum[4] / n, 1);
    acc.print(std::cout);
    emitBenchJson("fig4_prefetch_accuracy", acc);

    std::cout << "\n(b) average speedup over no prefetching "
              << "(slow L1<->L2 bus):\n";
    TextTable sp({"strategy", "geomean speedup"});
    for (std::size_t s = 0; s < n_strat; ++s) {
        auto row = sp.addRow(strategies[s].label);
        sp.setNum(row, 1, std::pow(geo[s], 1.0 / double(n)), 3);
    }
    sp.print(std::cout);
    emitBenchJson("fig4_prefetch_speedup", sp);

    std::cout << "\npaper: filtered prefetching raises accuracy by "
              << "~25%; or-conflict is the most discriminating; "
              << "speedup differences are not significant\n";
    return 0;
}
