/**
 * @file
 * Figure 4 — Next-line prefetch strategies.
 *
 * Five configurations: an unfiltered next-line prefetcher, then
 * capacity-only prefetching using each conflict filter (in / out /
 * and / or).  Reports prefetch accuracy (useful/issued), coverage
 * (prefetch-buffer hits / L1 misses), and speedup over no prefetching
 * on the paper's slow L1<->L2 bus variant ("The speedup results shown
 * are for a system with a slower memory bus ... than modeled in the
 * rest of the paper").
 *
 * Paper: filtering raises accuracy ~25% by eliminating low-
 * probability prefetches; speedups are roughly flat — the payoff of
 * classification is *doing something better* with conflict misses
 * (§5.5), not merely skipping them.
 */

#include <array>
#include <cmath>
#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"
#include "sim/experiment.hh"

int
main(int argc, char **argv)
{
    using namespace ccm;
    using namespace ccm::bench;

    const std::size_t jobs = parseJobs(argc, argv);

    struct Strategy
    {
        const char *label;
        bool filtered;
        ConflictFilter filter;
    };
    const Strategy strategies[] = {
        {"nextline", false, ConflictFilter::Out},
        {"in-filter", true, ConflictFilter::In},
        {"out-filter", true, ConflictFilter::Out},
        {"and-filter", true, ConflictFilter::And},
        {"or-filter", true, ConflictFilter::Or},
    };
    constexpr std::size_t n_strat = 5;

    auto slow_bus = [](SystemConfig cfg) {
        cfg.mem.busCyclesPerTransfer = 6;
        return cfg;
    };

    std::cout << "Figure 4: next-line prefetch strategies\n\n";

    TextTable acc({"workload", "nextline acc%", "in acc%", "out acc%",
                   "and acc%", "or acc%", "nextline cov%", "or cov%"});

    // Per-workload cells computed in parallel, aggregated in suite
    // order below so the printed tables are jobs-invariant.
    struct Cell
    {
        std::array<double, n_strat> acc;
        std::array<double, n_strat> cov;
        std::array<double, n_strat> sp;
    };
    const auto &suite = timingSuite();
    std::vector<Cell> cells(suite.size());
    forEachIndex(suite.size(), jobs, [&](std::size_t w) {
        VectorTrace trace = captureWorkload(suite[w]);
        RunOutput base = runTiming(trace, slow_bus(baselineConfig()));
        for (std::size_t s = 0; s < n_strat; ++s) {
            SystemConfig cfg = slow_bus(prefetchConfig(
                strategies[s].filtered, strategies[s].filter));
            RunOutput r = runTiming(trace, cfg);
            cells[w].acc[s] = r.mem.prefAccuracyPct();
            cells[w].cov[s] = r.mem.prefCoveragePct();
            cells[w].sp[s] = speedup(base, r);
        }
    });

    double acc_sum[n_strat] = {};
    double cov_sum[n_strat] = {};
    double geo[n_strat] = {1, 1, 1, 1, 1};
    std::size_t n = 0;

    for (std::size_t w = 0; w < suite.size(); ++w) {
        auto row = acc.addRow(suite[w]);
        for (std::size_t s = 0; s < n_strat; ++s) {
            acc_sum[s] += cells[w].acc[s];
            cov_sum[s] += cells[w].cov[s];
            geo[s] *= cells[w].sp[s];
            acc.setNum(row, s + 1, cells[w].acc[s], 1);
        }
        acc.setNum(row, 6, cells[w].cov[0], 1);
        acc.setNum(row, 7, cells[w].cov[4], 1);
        ++n;
    }

    auto avg = acc.addRow("AVG");
    for (std::size_t s = 0; s < n_strat; ++s)
        acc.setNum(avg, s + 1, acc_sum[s] / n, 1);
    acc.setNum(avg, 6, cov_sum[0] / n, 1);
    acc.setNum(avg, 7, cov_sum[4] / n, 1);
    acc.print(std::cout);
    emitBenchJson("fig4_prefetch_accuracy", acc);

    std::cout << "\n(b) average speedup over no prefetching "
              << "(slow L1<->L2 bus):\n";
    TextTable sp({"strategy", "geomean speedup"});
    for (std::size_t s = 0; s < n_strat; ++s) {
        auto row = sp.addRow(strategies[s].label);
        sp.setNum(row, 1, std::pow(geo[s], 1.0 / double(n)), 3);
    }
    sp.print(std::cout);
    emitBenchJson("fig4_prefetch_speedup", sp);

    std::cout << "\npaper: filtered prefetching raises accuracy by "
              << "~25%; or-conflict is the most discriminating; "
              << "speedup differences are not significant\n";
    return 0;
}
