/**
 * @file
 * Figure 3 — Performance of victim-cache policies using conflict
 * classification.
 *
 * Four configurations over the timing suite, all speedups relative to
 * the no-victim-cache baseline:
 *   V cache       — traditional 8-entry victim cache
 *   filter swaps  — no swap on a victim hit when or-conflict fires
 *   filter fills  — no victim fill when the eviction is capacity
 *   filter both   — both filters
 *
 * Paper: the combined policy gains about 3% over the traditional
 * victim cache, mostly by relieving pressure (fewer swaps/fills), not
 * by higher hit rates.
 */

#include <array>
#include <cmath>
#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"
#include "sim/experiment.hh"

int
main(int argc, char **argv)
{
    using namespace ccm;
    using namespace ccm::bench;

    const std::size_t jobs = parseJobs(argc, argv);

    struct Policy
    {
        const char *label;
        SystemConfig cfg;
    };
    const Policy policies[] = {
        {"V cache", victimConfig(false, false)},
        {"filter swaps", victimConfig(true, false)},
        {"filter fills", victimConfig(false, true)},
        {"filter both", victimConfig(true, true)},
    };

    std::cout << "Figure 3: victim cache policies "
              << "(speedup over no victim cache)\n\n";

    TextTable table({"workload", "V cache", "filter swaps",
                     "filter fills", "filter both"});

    // One task per workload; each owns its trace and its result slot.
    const auto &suite = timingSuite();
    std::vector<std::array<double, 4>> sp(suite.size());
    forEachIndex(suite.size(), jobs, [&](std::size_t w) {
        VectorTrace trace = captureWorkload(suite[w]);
        RunOutput base = runTiming(trace, baselineConfig());
        for (std::size_t p = 0; p < 4; ++p)
            sp[w][p] = speedup(base, runTiming(trace, policies[p].cfg));
    });

    double geo[4] = {1, 1, 1, 1};
    std::size_t n = 0;

    for (std::size_t w = 0; w < suite.size(); ++w) {
        auto row = table.addRow(suite[w]);
        for (std::size_t p = 0; p < 4; ++p) {
            table.setNum(row, p + 1, sp[w][p], 3);
            geo[p] *= sp[w][p];
        }
        ++n;
    }

    auto avg = table.addRow("GEOMEAN");
    for (std::size_t p = 0; p < 4; ++p)
        table.setNum(avg, p + 1,
                     std::pow(geo[p], 1.0 / double(n)), 3);

    table.print(std::cout);
    emitBenchJson("fig3_victim", table);
    std::cout << "\npaper: combined policy ~3% over the traditional "
              << "victim cache, gained by reducing swaps and fills\n";
    return 0;
}
