/**
 * @file
 * Figure 2 — Accuracy of miss classification when fewer evicted-tag
 * bits are stored (16 KB direct-mapped cache, suite average).
 *
 * Sweeps the MCT stored-tag width from 1 bit to the full tag.  With
 * few bits, more misses match (false conflicts): conflict accuracy
 * starts artificially high and capacity accuracy low; by 8-12 bits
 * both converge to the full-tag values.
 */

#include <iostream>

#include "common/table.hh"
#include "mct/classify_run.hh"
#include "workloads/registry.hh"

namespace
{

constexpr std::size_t memRefs = 1'000'000;
constexpr std::uint64_t seed = 42;

} // namespace

int
main()
{
    using namespace ccm;

    const unsigned bit_sweep[] = {1, 2, 3, 4, 5, 6, 7, 8,
                                  10, 12, 14, 16, 20, 0};

    std::cout << "Figure 2: classification accuracy vs stored tag bits "
              << "(16KB DM cache, average over all workloads; 0 = full "
              << "tag)\n\n";

    TextTable table({"tag bits", "conflict acc %", "capacity acc %",
                     "overall acc %"});

    for (unsigned bits : bit_sweep) {
        double conf = 0, cap = 0, overall = 0;
        std::size_t n = 0;
        for (const auto &spec : workloadSuite()) {
            auto wl = spec.make(memRefs, seed);
            ClassifyConfig cfg;
            cfg.cacheBytes = 16 * 1024;
            cfg.assoc = 1;
            cfg.mctTagBits = bits;
            ClassifyResult res = classifyRun(*wl, cfg);
            conf += res.scorer.conflictAccuracy();
            cap += res.scorer.capacityAccuracy();
            overall += res.scorer.overallAccuracy();
            ++n;
        }
        auto row = table.addRow(bits == 0 ? "full"
                                          : std::to_string(bits));
        table.setNum(row, 1, conf / n, 1);
        table.setNum(row, 2, cap / n, 1);
        table.setNum(row, 3, overall / n, 1);
    }

    table.print(std::cout);
    std::cout << "\npaper: very little accuracy is lost with only 8 "
              << "bits stored; 10-12 bits sufficient; even 1 bit "
              << "excludes nearly half of capacity misses while "
              << "misidentifying few conflicts\n";
    return 0;
}
