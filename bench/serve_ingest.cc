/**
 * @file
 * Ingestion throughput of the ccm-serve stack (records/second), layer
 * by layer, so a regression can be blamed on the right one:
 *
 *  - frame-parse: FrameParser alone over an in-memory byte stream
 *  - queue:       RecordQueue producer/consumer hand-off alone
 *  - serve-N:     the whole daemon over unix-domain sockets with N
 *                 concurrent producers (simulation included — this is
 *                 the number a capacity plan actually needs)
 *
 * Emits BENCH_serve.json (obs::writeBenchJson); the committed
 * baseline lives at bench/baselines/BENCH_serve.json.
 */

#include <chrono>
#include <cstdio>
#include <thread>

#include "bench_common.hh"
#include "serve/client.hh"
#include "serve/daemon.hh"
#include "serve/frame.hh"
#include "serve/queue.hh"

namespace
{

using namespace ccm;
using namespace ccm::bench;

/** Records streamed per producer (smaller than timingRefs: each
 *  serve-N row simulates all of them through the full pipeline). */
constexpr std::size_t kRecordsPerStream = 200'000;

using Clock = std::chrono::steady_clock;

double
elapsedSeconds(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** All records of one captured workload, round-robin if short. */
std::vector<MemRecord>
materialize(std::size_t n)
{
    VectorTrace trace = captureWorkload("tomcatv");
    std::vector<MemRecord> out;
    out.reserve(n);
    MemRecord r;
    while (out.size() < n) {
        if (!trace.next(r))
            trace.reset();
        else
            out.push_back(r);
    }
    return out;
}

double
benchFrameParse(const std::vector<MemRecord> &recs)
{
    std::vector<std::uint8_t> wire;
    serve::appendHelloFrame(wire, "bench");
    serve::appendRecordsFrames(wire, recs.data(), recs.size());
    serve::appendEndFrame(wire);

    struct NullSink final : serve::FrameSink
    {
        void onHello(std::uint32_t, const std::string &) override {}
        void onRecords(const MemRecord *, std::size_t) override {}
        void onEnd() override {}
    } sink;

    const auto start = Clock::now();
    serve::FrameParser parser;
    // Feed in socket-read-sized chunks, as the daemon would see them.
    constexpr std::size_t chunk = 64 * 1024;
    for (std::size_t at = 0; at < wire.size(); at += chunk)
        parser.feed(wire.data() + at,
                    std::min(chunk, wire.size() - at), sink);
    parser.finish(sink);
    return elapsedSeconds(start);
}

double
benchQueue(const std::vector<MemRecord> &recs)
{
    serve::RecordQueue q(8192, serve::OverflowPolicy::Block);
    const auto start = Clock::now();
    std::thread producer([&] {
        constexpr std::size_t chunk = 256;
        for (std::size_t at = 0; at < recs.size(); at += chunk)
            q.push(recs.data() + at,
                   std::min(chunk, recs.size() - at));
        q.closeInput();
    });
    MemRecord buf[256];
    while (q.pop(buf, 256) != 0) {
    }
    producer.join();
    return elapsedSeconds(start);
}

double
benchServe(const std::vector<MemRecord> &recs, std::size_t streams)
{
    serve::ServeOptions opts;
    opts.socketPath = "/tmp/ccm_bench_serve.sock";
    opts.maxStreams = streams;
    serve::ServeDaemon daemon(opts);
    Status s = daemon.start();
    if (!s.isOk()) {
        std::cerr << "serve bench: " << s.toString() << "\n";
        std::exit(1);
    }

    const auto start = Clock::now();
    std::vector<std::thread> producers;
    producers.reserve(streams);
    for (std::size_t i = 0; i < streams; ++i) {
        producers.emplace_back([&, i] {
            auto client = serve::ServeClient::connect(
                opts.socketPath, "bench-" + std::to_string(i));
            if (!client.ok())
                return;
            constexpr std::size_t chunk = serve::kMaxRecordsPerFrame;
            for (std::size_t at = 0; at < recs.size(); at += chunk) {
                if (!client.value()
                         .sendRecords(recs.data() + at,
                                      std::min(chunk,
                                               recs.size() - at))
                         .isOk())
                    return;
            }
            (void)client.value().sendEnd();
        });
    }
    for (auto &t : producers)
        t.join();
    daemon.drainAndStop(); // joins every simulation to completion
    return elapsedSeconds(start);
}

} // namespace

int
main(int argc, char **argv)
{
    (void)parseJobs(argc, argv);

    const std::vector<MemRecord> recs = materialize(kRecordsPerStream);

    TextTable table({"stage", "streams", "records", "seconds",
                     "records/s"});
    auto addRow = [&](const std::string &stage, std::size_t streams,
                      double seconds) {
        const double total =
            double(recs.size()) * double(streams);
        auto row = table.addRow(stage);
        table.set(row, 1, std::to_string(streams));
        table.set(row, 2,
                  std::to_string(recs.size() * streams));
        table.setNum(row, 3, seconds, 3);
        table.setNum(row, 4, total / seconds, 0);
    };

    addRow("frame-parse", 1, benchFrameParse(recs));
    addRow("queue", 1, benchQueue(recs));
    for (std::size_t n : {std::size_t{1}, std::size_t{4},
                          std::size_t{8}})
        addRow("serve", n, benchServe(recs, n));

    table.print(std::cout);
    emitBenchJson("serve", table);
    std::cout << "\nframe-parse and queue bound the transport; the "
              << "serve rows include full per-stream simulation and "
              << "are the deployable ingest rate\n";
    return 0;
}
