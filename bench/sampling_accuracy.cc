/**
 * @file
 * Accuracy/speedup scorecard for the statistical sampling engine
 * (src/sample): for every workload in the suite, run the full sampled
 * analysis (1% SHARDS MRC + representative-interval replay) and the
 * brute-force work it replaces, then score the predictions.
 *
 * Two speedup columns, against the two exact procedures the sampled
 * pass substitutes for:
 *
 *  - `x_classify`: one exact classify per capacity-grid point plus
 *    the base-geometry classify (the sweep that locates the capacity
 *    knee and the counters the interval replay reconstructs);
 *  - `x_tuned`: the same, plus the geometry-tuning sweep `--auto-size`
 *    replaces — one timing run per candidate the recommender chooses
 *    from (4 buffer depths x every non-empty V/P/X assist partition,
 *    plus the no-assist baseline; 29 points).  A smarter search could
 *    prune the grid, but any exact tuner still pays multiple timing
 *    runs per workload where the sampler pays one cheap pass.
 *
 * The error columns score against exact references computed
 * separately — a rate-1.0 MRC pass (same fully-associative LRU model,
 * so MRC error is sampling error and nothing else) and the base
 * classify's counters.  Those references are timed outside both
 * speedup ratios: they are the measuring stick, not the workload
 * being replaced.
 *
 * Gates (CI runs this via ci.sh, with --gate-only to skip the
 * wall-clock sweeps):
 *   - MRC mean-absolute-error     <= 0.02  per workload
 *   - stat reconstruction error   <= 5%    per workload, per counter
 * The binary exits nonzero when either gate fails; the speedup
 * columns are informational (wall clock is machine-dependent).
 *
 * Emits BENCH_sampling.json; the committed reference lives in
 * bench/baselines/BENCH_sampling.json.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "common/table.hh"
#include "sample/engine.hh"
#include "sim/experiment.hh"
#include "sim/sharded.hh"

namespace
{

using namespace ccm;

/** The accuracy campaign's locked configuration (docs/PERFORMANCE.md
 * "Sampling ladder"): 8M references gives every synthetic workload
 * enough windows that the 50000-ref signatures separate phases, and
 * K=12 representatives keep the replay near 10% of the trace. */
constexpr std::size_t benchRefs = 8'000'000;
constexpr double benchRate = 0.01;
constexpr Count benchWindow = 50'000;
constexpr std::size_t benchIntervals = 12;

constexpr double mrcMaeGate = 0.02;
constexpr double statRelGate = 0.05;

struct Row
{
    std::string workload;
    double sampledSeconds = 0.0;
    double classifySweepSeconds = 0.0;
    double tuneSweepSeconds = 0.0;
    double finalRate = 0.0;
    bool boosted = false;
    double mrcMae = 0.0;
    double mrcMax = 0.0;
    double statRel = 0.0;
    bool pass = false;
    std::string error;
};

double
seconds(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Exact classify at every grid capacity + the base geometry. */
double
timeClassifySweep(const VectorTrace &trace,
                  const sample::SampleRunConfig &cfg)
{
    const std::vector<std::size_t> caps = sample::defaultCapacities();
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t cap : caps) {
        ShardedClassifyConfig c = cfg.classify;
        c.cacheBytes = cap;
        ShardedClassifyResult r = runShardedClassify(
            trace.records().data(), trace.records().size(), c);
        if (r.references == 0)
            std::cerr << "sweep produced no references?\n";
    }
    ShardedClassifyResult base = runShardedClassify(
        trace.records().data(), trace.records().size(), cfg.classify);
    if (base.references == 0)
        std::cerr << "base classify produced no references?\n";
    return seconds(t0);
}

/** The exact geometry tuner: one timing run per candidate the
 * recommender picks from (applyRecommendation builds each config, so
 * the sweep covers exactly the recommendation space). */
double
timeTuneSweep(VectorTrace &trace)
{
    const SystemConfig base = baselineConfig();
    const auto t0 = std::chrono::steady_clock::now();
    Cycle sink = 0;
    sink += runTiming(trace, base).sim.cycles;
    for (unsigned depth : {4u, 8u, 16u, 32u}) {
        for (unsigned mask = 1; mask < 8; ++mask) {
            sample::GeometryRecommendation rec;
            rec.bufEntries = depth;
            rec.victimConflicts = (mask & 1) != 0;
            rec.prefetchCapacity = (mask & 2) != 0;
            rec.excludeCapacity = (mask & 4) != 0;
            const SystemConfig cfg =
                sample::applyRecommendation(base, rec);
            sink += runTiming(trace, cfg).sim.cycles;
        }
    }
    if (sink == 0)
        std::cerr << "tuner sweep simulated no cycles?\n";
    return seconds(t0);
}

Row
runOne(const std::string &name, bool gate_only)
{
    Row row;
    row.workload = name;

    VectorTrace trace = bench::captureWorkload(name, benchRefs);

    sample::SampleRunConfig cfg;
    cfg.mrc.rate = benchRate;
    cfg.mrc.seed = bench::seed;
    cfg.mrc.windowRefs = benchWindow;
    cfg.intervals = benchIntervals;
    cfg.compareExact = true; // exact MRC + base classify references

    Expected<sample::SampleReport> rep = sample::runSampleAnalysis(
        trace.records().data(), trace.records().size(), cfg);
    if (!rep.ok()) {
        row.error = rep.status().toString();
        return row;
    }
    const sample::SampleReport &r = rep.value();

    row.sampledSeconds = r.wallSecondsSampled;
    row.finalRate = r.mrc.finalRate;
    row.boosted = r.mrc.minLinesBoost;
    row.mrcMae = r.mrcMae;
    row.mrcMax = r.mrcMaxError;
    row.statRel = r.maxStatRelError;
    row.pass = row.mrcMae <= mrcMaeGate && row.statRel <= statRelGate;

    if (!gate_only) {
        row.classifySweepSeconds = timeClassifySweep(trace, cfg);
        row.tuneSweepSeconds = timeTuneSweep(trace);
    }
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t jobs = 1;
    bool gate_only = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            jobs = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--gate-only") == 0) {
            gate_only = true;
        } else {
            std::cerr << "usage: " << argv[0]
                      << " [--jobs N] [--gate-only]\n";
            return 1;
        }
    }

    const std::vector<std::string> names = ccm::workloadNames();

    std::cout << "Sampling accuracy/speedup (refs " << benchRefs
              << ", rate " << benchRate << ", window " << benchWindow
              << ", K " << benchIntervals << ", seed "
              << ccm::bench::seed << ")\n"
              << "x_classify = exact capacity sweep / sampled pass; "
              << "x_tuned adds the 29-point geometry-timing sweep\n\n";

    std::vector<Row> rows(names.size());
    ccm::bench::forEachIndex(names.size(), jobs, [&](std::size_t i) {
        rows[i] = runOne(names[i], gate_only);
    });

    ccm::TextTable table({"workload", "x_classify", "x_tuned",
                          "sampled_s", "classify_s", "tune_s", "rate",
                          "mrc_mae", "mrc_max", "stat_err%", "gate"});
    bool all_pass = true;
    double log_classify = 0.0, log_tuned = 0.0;
    double worst_mae = 0.0, worst_stat = 0.0;
    std::size_t timed = 0;
    for (const Row &row : rows) {
        const std::size_t r = table.addRow(row.workload);
        if (!row.error.empty()) {
            table.set(r, 10, "ERROR " + row.error);
            all_pass = false;
            continue;
        }
        const double x_classify =
            row.sampledSeconds > 0.0
                ? row.classifySweepSeconds / row.sampledSeconds
                : 0.0;
        const double x_tuned =
            row.sampledSeconds > 0.0
                ? (row.classifySweepSeconds + row.tuneSweepSeconds) /
                      row.sampledSeconds
                : 0.0;
        table.setNum(r, 1, x_classify, 1);
        table.setNum(r, 2, x_tuned, 1);
        table.setNum(r, 3, row.sampledSeconds, 3);
        table.setNum(r, 4, row.classifySweepSeconds, 3);
        table.setNum(r, 5, row.tuneSweepSeconds, 3);
        char rate[32];
        std::snprintf(rate, sizeof rate, "%.3f%s", row.finalRate,
                      row.boosted ? "*" : "");
        table.set(r, 6, rate);
        table.setNum(r, 7, row.mrcMae, 4);
        table.setNum(r, 8, row.mrcMax, 4);
        table.setNum(r, 9, row.statRel * 100.0, 2);
        table.set(r, 10, row.pass ? "pass" : "FAIL");
        all_pass = all_pass && row.pass;
        if (x_classify > 0.0) {
            log_classify += std::log(x_classify);
            log_tuned += std::log(x_tuned);
            ++timed;
        }
        worst_mae = std::max(worst_mae, row.mrcMae);
        worst_stat = std::max(worst_stat, row.statRel);
    }
    {
        const std::size_t r = table.addRow("geomean");
        if (timed > 0) {
            table.setNum(r, 1,
                         std::exp(log_classify / double(timed)), 1);
            table.setNum(r, 2, std::exp(log_tuned / double(timed)),
                         1);
        }
        table.setNum(r, 7, worst_mae, 4);
        table.setNum(r, 9, worst_stat * 100.0, 2);
        table.set(r, 10, all_pass ? "pass" : "FAIL");
    }

    table.print(std::cout);
    std::cout << "\n* = min-sampled-lines guard boosted the rate "
              << "(small-footprint workload)\n"
              << "gates: mrc_mae <= " << mrcMaeGate
              << ", stat_err <= " << statRelGate * 100.0 << "%\n";

    if (!gate_only)
        ccm::bench::emitBenchJson(
            "sampling", table,
            "sampled analysis (SHARDS MRC + interval replay) vs the "
            "exact capacity sweep and the 29-point geometry-timing "
            "sweep it replaces; errors vs exact references; gates "
            "mrc_mae<=0.02, stat_err<=5%");

    if (!all_pass) {
        std::cerr << "sampling accuracy gate FAILED\n";
        return 1;
    }
    return 0;
}
