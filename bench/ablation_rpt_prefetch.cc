/**
 * @file
 * Ablation — next-line vs Chen & Baer RPT prefetching (§5.2).
 *
 * The paper examined both and reports that "for most of the
 * benchmarks we use, particularly the irregular applications, the
 * simple next-line prefetcher actually provides higher coverage ...
 * at the expense of a very large number of wasted prefetches"
 * (results not shown there).  This bench regenerates that comparison:
 * coverage, accuracy and speedup for both engines, each unfiltered
 * and with the out-conflict filter.
 */

#include <cmath>
#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"
#include "sim/experiment.hh"

int
main()
{
    using namespace ccm;
    using namespace ccm::bench;

    struct Engine
    {
        const char *label;
        PrefetchKind kind;
        bool filtered;
    };
    const Engine engines[] = {
        {"nextline", PrefetchKind::NextLine, false},
        {"nextline+filter", PrefetchKind::NextLine, true},
        {"rpt", PrefetchKind::Rpt, false},
        {"rpt+filter", PrefetchKind::Rpt, true},
    };
    constexpr std::size_t n_eng = 4;

    std::cout << "Ablation: next-line vs RPT prefetching "
              << "(suite averages; speedup vs no prefetching)\n\n";

    TextTable table({"engine", "coverage %", "accuracy %",
                     "geomean speedup"});

    double cov[n_eng] = {}, acc[n_eng] = {}, geo[n_eng] = {1, 1, 1, 1};
    std::size_t n = 0;

    for (const auto &name : timingSuite()) {
        VectorTrace trace = captureWorkload(name);
        RunOutput base = runTiming(trace, baselineConfig());
        for (std::size_t e = 0; e < n_eng; ++e) {
            SystemConfig cfg = prefetchConfig(engines[e].filtered);
            cfg.mem.prefetch.kind = engines[e].kind;
            RunOutput r = runTiming(trace, cfg);
            cov[e] += r.mem.prefCoveragePct();
            acc[e] += r.mem.prefAccuracyPct();
            geo[e] *= speedup(base, r);
        }
        ++n;
    }

    for (std::size_t e = 0; e < n_eng; ++e) {
        auto row = table.addRow(engines[e].label);
        table.setNum(row, 1, cov[e] / n, 1);
        table.setNum(row, 2, acc[e] / n, 1);
        table.setNum(row, 3, std::pow(geo[e], 1.0 / double(n)), 3);
    }
    table.print(std::cout);

    std::cout << "\npaper's observation: next-line gives higher "
              << "coverage on irregular code, RPT higher accuracy; "
              << "the RPT is read and updated on every access, the "
              << "next-line engine + MCT only on misses\n";
    return 0;
}
