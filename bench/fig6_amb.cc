/**
 * @file
 * Figure 6 — The Adaptive Miss Buffer: combined policies vs the best
 * single policies, at 8 and 16 buffer entries.  All speedups are over
 * the no-buffer baseline.
 *
 *   Vict      — victim cache, best filtered variant (§5.1)
 *   Pref      — next-line prefetcher, capacity-filtered (§5.2)
 *   Excl      — bypass buffer, capacity filter (§5.3)
 *   VictPref  — victim-cache conflict misses (no swap), prefetch
 *               capacity misses
 *   PrefExcl  — prefetch + exclude capacity misses
 *   VicPreExc — everything: exclude+prefetch capacity, victim
 *               conflicts
 *
 * Paper: at 8 entries VictPref is the best combination, more than
 * doubling the gain of any single policy (a 16% speedup over any
 * single technique); with 16 entries the do-everything VicPreExc
 * becomes more attractive.
 */

#include <array>
#include <cmath>
#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"
#include "sim/experiment.hh"

int
main(int argc, char **argv)
{
    using namespace ccm;
    using namespace ccm::bench;

    const std::size_t jobs = parseJobs(argc, argv);

    struct Policy
    {
        const char *label;
        SystemConfig cfg8;
        SystemConfig cfg16;
    };
    const Policy policies[] = {
        {"Vict", ambSingleVict(8), ambSingleVict(16)},
        {"Pref", ambSinglePref(8), ambSinglePref(16)},
        {"Excl", ambSingleExcl(8), ambSingleExcl(16)},
        {"VictPref", ambConfig(true, true, false, 8),
         ambConfig(true, true, false, 16)},
        {"PrefExcl", ambConfig(false, true, true, 8),
         ambConfig(false, true, true, 16)},
        {"VicPreExc", ambConfig(true, true, true, 8),
         ambConfig(true, true, true, 16)},
    };
    constexpr std::size_t n_pol = 6;

    std::cout << "Figure 6: adaptive miss buffer policies "
              << "(speedup over no buffer)\n\n";

    for (unsigned entries : {8u, 16u}) {
        std::cout << "--- " << entries << "-entry buffer ---\n";
        std::vector<std::string> headers = {"workload"};
        for (const auto &p : policies)
            headers.push_back(p.label);
        TextTable table(headers);

        const auto &suite = timingSuite();
        std::vector<std::array<double, n_pol>> sp(suite.size());
        forEachIndex(suite.size(), jobs, [&](std::size_t w) {
            VectorTrace trace = captureWorkload(suite[w]);
            RunOutput base = runTiming(trace, baselineConfig());
            for (std::size_t p = 0; p < n_pol; ++p) {
                const SystemConfig &cfg = entries == 8
                                              ? policies[p].cfg8
                                              : policies[p].cfg16;
                sp[w][p] = speedup(base, runTiming(trace, cfg));
            }
        });

        double geo[n_pol] = {1, 1, 1, 1, 1, 1};
        std::size_t n = 0;
        for (std::size_t w = 0; w < suite.size(); ++w) {
            auto row = table.addRow(suite[w]);
            for (std::size_t p = 0; p < n_pol; ++p) {
                table.setNum(row, p + 1, sp[w][p], 3);
                geo[p] *= sp[w][p];
            }
            ++n;
        }
        auto avg = table.addRow("GEOMEAN");
        for (std::size_t p = 0; p < n_pol; ++p)
            table.setNum(avg, p + 1,
                         std::pow(geo[p], 1.0 / double(n)), 3);
        table.print(std::cout);
        emitBenchJson("fig6_amb_" + std::to_string(entries), table);
        std::cout << "\n";
    }

    std::cout << "paper: VictPref best at 8 entries, more than "
              << "doubling any single policy's gain (16% over any "
              << "single technique); VicPreExc gains ground at 16 "
              << "entries\n";
    return 0;
}
