/**
 * @file
 * Ablation — victim-buffer organization and size (§5.1/§4).
 *
 * The paper's victim cache is "a FIFO from which entries can be taken
 * out of the middle", i.e. effectively LRU because hits consume
 * entries; a plain FIFO is the cheaper strawman.  The paper also
 * fixes the buffer at 8 entries "to ensure single-cycle access".
 * This bench quantifies both choices: LRU vs FIFO replacement at
 * 4/8/16/32 entries under the no-swap victim policy (where entries
 * persist across hits and the organization matters; with swaps every
 * hit consumes its entry and the two are identical), suite-geomean
 * speedup over no buffer.
 */

#include <cmath>
#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"
#include "sim/experiment.hh"

int
main()
{
    using namespace ccm;
    using namespace ccm::bench;

    std::cout << "Ablation: victim-buffer organization and size "
              << "(geomean speedup over no buffer)\n\n";

    TextTable table({"entries", "LRU", "FIFO"});

    for (unsigned entries : {4u, 8u, 16u, 32u}) {
        double geo_lru = 1, geo_fifo = 1;
        std::size_t n = 0;
        for (const auto &name : timingSuite()) {
            VectorTrace trace = captureWorkload(name, 200'000);
            RunOutput base = runTiming(trace, baselineConfig());

            // No-swap policy: hits leave entries resident, so the
            // replacement organization actually matters (with swaps,
            // every hit consumes its entry and LRU == FIFO).
            SystemConfig lru = victimConfig(true, false);
            lru.mem.bufEntries = entries;
            geo_lru *= speedup(base, runTiming(trace, lru));

            SystemConfig fifo = lru;
            fifo.mem.bufRepl = BufRepl::Fifo;
            geo_fifo *= speedup(base, runTiming(trace, fifo));
            ++n;
        }
        auto row = table.addRow(std::to_string(entries));
        table.setNum(row, 1, std::pow(geo_lru, 1.0 / double(n)), 3);
        table.setNum(row, 2, std::pow(geo_fifo, 1.0 / double(n)), 3);
    }

    table.print(std::cout);
    std::cout << "\nshape: LRU (the paper's consume-on-hit FIFO) "
              << "dominates plain FIFO at every size; beyond 8-16 "
              << "entries returns diminish, supporting the paper's "
              << "single-cycle-access sizing\n";
    return 0;
}
