/**
 * @file
 * Ablation — robustness to wrong-path memory traffic.
 *
 * SMTSIM "models an out-of-order processor pipeline, including
 * execution and memory access along wrong paths following branch
 * mispredictions" (§4); our default traces do not (DESIGN.md
 * substitutions).  This ablation injects squashed speculative loads
 * at increasing rates and checks that the headline results — victim-
 * policy ranking and the AMB's advantage — survive the pollution of
 * the caches and the MCT.
 */

#include <cmath>
#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"
#include "sim/experiment.hh"

namespace
{

using namespace ccm;
using namespace ccm::bench;

double
geomean(std::vector<VectorTrace> &traces, const CoreConfig &core,
        const SystemConfig &base, const SystemConfig &test)
{
    double geo = 1;
    for (auto &t : traces) {
        SystemConfig b = base, x = test;
        b.core = core;
        x.core = core;
        geo *= speedup(runTiming(t, b), runTiming(t, x));
    }
    return std::pow(geo, 1.0 / double(traces.size()));
}

} // namespace

int
main()
{
    std::cout << "Ablation: wrong-path traffic vs the headline "
              << "results (geomean speedups over no buffer)\n\n";

    std::vector<VectorTrace> traces;
    for (const auto &name : timingSuite())
        traces.push_back(captureWorkload(name, 200'000));

    TextTable table({"wrong-path rate", "victim(filtered)",
                     "AMB VictPref"});

    struct Point
    {
        const char *label;
        unsigned rate;   // 1-in-N non-memory instructions
    };
    const Point points[] = {
        {"none", 0},
        {"1/256 (light)", 256},
        {"1/64 (realistic)", 64},
        {"1/16 (extreme)", 16},
    };

    for (const auto &p : points) {
        CoreConfig core;
        core.wrongPathRate = p.rate;
        auto row = table.addRow(p.label);
        table.setNum(row, 1,
                     geomean(traces, core, baselineConfig(),
                             victimConfig(true, true)),
                     3);
        table.setNum(row, 2,
                     geomean(traces, core, baselineConfig(),
                             ambConfig(true, true, false)),
                     3);
    }

    table.print(std::cout);
    std::cout << "\nshape: the victim-filtering result is essentially "
              << "immune to wrong-path pollution; the AMB's gain is "
              << "diluted (its prefetch half competes with the "
              << "speculative traffic for bus/buffer) but remains "
              << "clearly positive at realistic misprediction rates "
              << "— only the extreme setting, with speculative "
              << "traffic rivalling demand traffic, erases it.  This "
              << "supports DESIGN.md's claim that omitting wrong "
              << "paths by default is second-order for the paper's "
              << "comparisons\n";
    return 0;
}
