/**
 * @file
 * Figure 1 — The accuracy of miss classification.
 *
 * For each workload and each of four cache configurations (16KB DM,
 * 16KB 2-way, 64KB DM, 64KB 2-way), replay the trace through a
 * functional cache, classify every miss with both the MCT (full tags)
 * and the classic-definition oracle, and report the percentage of
 * oracle-conflict misses the MCT called conflict and of
 * oracle-capacity misses it called capacity.
 *
 * Paper reference points: 88%/86% (16KB DM), 91%/92% (64KB DM);
 * "correctly identifies 87% of misses in the worst case".  Cells are
 * "-" when a workload produced no miss of that oracle class; the AVG
 * row pools the confusion matrices over the whole suite.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"
#include "mct/classify_run.hh"
#include "workloads/registry.hh"

namespace
{

constexpr std::size_t memRefs = 1'000'000;
constexpr std::uint64_t seed = 42;

} // namespace

int
main()
{
    using namespace ccm;

    struct Config
    {
        const char *label;
        std::size_t bytes;
        unsigned assoc;
    };
    const Config configs[] = {
        {"16KB-DM", 16 * 1024, 1},
        {"16KB-2W", 16 * 1024, 2},
        {"64KB-DM", 64 * 1024, 1},
        {"64KB-2W", 64 * 1024, 2},
    };
    constexpr std::size_t n_cfg = 4;

    std::cout << "Figure 1: accuracy of miss classification "
              << "(full tags stored in the MCT)\n"
              << "conf% = oracle-conflict misses labelled conflict, "
              << "cap% = oracle-capacity labelled capacity,\n"
              << "miss% = cache miss rate\n\n";

    std::vector<std::string> headers = {"workload"};
    for (const auto &c : configs) {
        headers.push_back(std::string(c.label) + " conf%");
        headers.push_back(std::string(c.label) + " cap%");
        headers.push_back(std::string(c.label) + " miss%");
    }
    TextTable table(headers);

    AccuracyScorer pooled[n_cfg];
    double miss_sum[n_cfg] = {};
    std::size_t n_wl = 0;

    for (const auto &spec : workloadSuite()) {
        auto wl = spec.make(memRefs, seed);
        auto row = table.addRow(spec.name);
        std::size_t col = 1;
        for (std::size_t ci = 0; ci < n_cfg; ++ci) {
            ClassifyConfig cfg;
            cfg.cacheBytes = configs[ci].bytes;
            cfg.assoc = configs[ci].assoc;
            ClassifyResult res = classifyRun(*wl, cfg);

            if (res.scorer.oracleConflicts() > 0)
                table.setNum(row, col, res.scorer.conflictAccuracy(), 1);
            else
                table.set(row, col, "-");
            ++col;
            if (res.scorer.oracleCapacities() > 0)
                table.setNum(row, col, res.scorer.capacityAccuracy(), 1);
            else
                table.set(row, col, "-");
            ++col;
            table.setNum(row, col++, 100.0 * res.missRate, 1);

            pooled[ci].merge(res.scorer);
            miss_sum[ci] += 100.0 * res.missRate;
        }
        ++n_wl;
    }

    auto avg = table.addRow("ALL (pooled)");
    for (std::size_t ci = 0; ci < n_cfg; ++ci) {
        table.setNum(avg, 1 + ci * 3, pooled[ci].conflictAccuracy(), 1);
        table.setNum(avg, 2 + ci * 3, pooled[ci].capacityAccuracy(), 1);
        table.setNum(avg, 3 + ci * 3, miss_sum[ci] / n_wl, 1);
    }

    table.print(std::cout);
    bench::emitBenchJson("fig1_accuracy", table);

    std::cout << "\nconflict share of all misses (pooled): ";
    for (std::size_t ci = 0; ci < n_cfg; ++ci) {
        std::cout << configs[ci].label << "="
                  << static_cast<int>(
                         100.0 * pooled[ci].conflictFraction() + 0.5)
                  << "% ";
    }
    std::cout << "\npaper: 16KB-DM 88/86, 64KB-DM 91/92; worst case "
              << ">= 87% of misses correctly identified\n";
    return 0;
}
