/**
 * @file
 * Extension — the AMB under simultaneous multithreading.
 *
 * §5.6: "All of the techniques described in this paper would apply to
 * an even greater extent with multithreaded caches" — threads sharing
 * an L1 manufacture inter-thread conflict misses that no software
 * layout can remove.  This bench runs workload pairs on a 2-context
 * SMT core sharing one memory system, comparing the no-buffer
 * baseline against the AMB (VictPref), and contrasts the AMB's gain
 * under SMT with its single-thread gain on the same workloads.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"
#include "cpu/smt_core.hh"
#include "sim/experiment.hh"

namespace
{

using namespace ccm;
using namespace ccm::bench;

double
smtSpeedup(VectorTrace &a, VectorTrace &b, const SystemConfig &base,
           const SystemConfig &test)
{
    CoreConfig cc;
    auto run = [&](const SystemConfig &cfg) {
        MemorySystem mem(cfg.mem);
        SmtCore core(cc, 2);
        a.reset();
        b.reset();
        std::vector<TraceSource *> traces = {&a, &b};
        return core.run(traces, mem).cycles;
    };
    return double(run(base)) / double(run(test));
}

double
soloSpeedup(VectorTrace &t, const SystemConfig &base,
            const SystemConfig &test)
{
    RunOutput rb = runTiming(t, base);
    RunOutput rt = runTiming(t, test);
    return speedup(rb, rt);
}

} // namespace

int
main()
{
    const std::pair<const char *, const char *> pairs[] = {
        {"tomcatv", "swim"},     {"go", "vortex"},
        {"compress", "gcc"},     {"tomcatv", "vortex"},
        {"perl", "li"},
    };

    std::cout << "Extension: AMB (VictPref) under 2-thread SMT "
              << "(shared 16KB DM L1)\n\n";

    TextTable table({"pair", "solo-avg AMB-8", "SMT AMB-8",
                     "SMT AMB-16", "scaled amplification"});

    SystemConfig base = baselineConfig();
    SystemConfig amb8 = ambConfig(true, true, false, 8);
    SystemConfig amb16 = ambConfig(true, true, false, 16);

    for (const auto &[na, nb] : pairs) {
        VectorTrace a = captureWorkload(na, 150'000);
        VectorTrace b = captureWorkload(nb, 150'000);

        double solo_a = soloSpeedup(a, base, amb8);
        double solo_b = soloSpeedup(b, base, amb8);
        double solo_avg = (solo_a + solo_b) / 2.0;
        double smt8 = smtSpeedup(a, b, base, amb8);
        double smt16 = smtSpeedup(a, b, base, amb16);

        auto row = table.addRow(std::string(na) + "+" + nb);
        table.setNum(row, 1, solo_avg, 3);
        table.setNum(row, 2, smt8, 3);
        table.setNum(row, 3, smt16, 3);
        // Fair scaling: per-thread buffer capacity held constant.
        table.setNum(row, 4, smt16 / solo_avg, 3);
    }

    table.print(std::cout);
    std::cout << "\nfindings: (1) two threads sharing one L1 do "
              << "manufacture extra inter-thread conflicts (§5.6) "
              << "and the AMB still helps under SMT; (2) but the "
              << "shared 8-entry buffer saturates, and scaling it "
              << "with the thread count (AMB-16) recovers only part "
              << "of the gap — the remainder is MCT-entry churn: the "
              << "single evicted-tag entry per set now interleaves "
              << "two threads' evictions, degrading classification.  "
              << "Assist structures must scale with sharing degree, "
              << "and a deeper shadow directory (see "
              << "ablation_mct_depth) is the natural fix — a "
              << "quantitative refinement of the paper's qualitative "
              << "§5.6 claim.\n";
    return 0;
}
