/**
 * @file
 * §5.6 "Multithreaded architectures" — conflict classification for
 * co-scheduling.
 *
 * Pairs of workloads share the L1 of a 2-thread processor.  The MCT
 * attributes each conflict miss to the thread that forced the
 * eviction; pairs with a high cross-thread conflict rate are "bad
 * candidates for co-scheduling".  The bench prints the pairwise
 * badness matrix plus the miss-rate inflation of sharing
 * (shared-miss-rate vs the average of the two solo runs).
 */

#include <iostream>
#include <memory>

#include "common/table.hh"
#include "mt/interleave.hh"
#include "mt/shared_cache.hh"
#include "workloads/registry.hh"

namespace
{

constexpr std::size_t memRefs = 200'000;
constexpr std::uint64_t seed = 42;

} // namespace

int
main()
{
    using namespace ccm;

    const std::vector<std::string> jobs = {"tomcatv", "swim", "go",
                                           "compress", "vortex"};

    std::cout << "Section 5.6: shared-L1 conflict attribution for "
              << "co-scheduling (2 threads, 16KB DM shared L1)\n\n";

    // Solo miss rates for reference.
    std::vector<double> solo(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        auto wl = makeWorkload(jobs[i], memRefs, seed);
        std::vector<TraceSource *> one = {wl.get()};
        InterleavedTrace trace(one, 4);
        SharedCacheStudy study;
        SharedCacheResult r = study.run(trace);
        solo[i] = 100.0 * r.missRate();
    }

    std::vector<std::string> headers = {"pair"};
    headers.insert(headers.end(),
                   {"shared miss%", "solo-avg miss%",
                    "x-thread confl%", "verdict"});
    TextTable table(headers);

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        for (std::size_t j = i + 1; j < jobs.size(); ++j) {
            auto a = makeWorkload(jobs[i], memRefs, seed);
            auto b = makeWorkload(jobs[j], memRefs, seed + 1);
            std::vector<TraceSource *> pair = {a.get(), b.get()};
            InterleavedTrace trace(pair, 4);
            SharedCacheStudy study;
            SharedCacheResult r = study.run(trace);

            double shared = 100.0 * r.missRate();
            double solo_avg = (solo[i] + solo[j]) / 2.0;
            double badness = 100.0 * r.coScheduleBadness();

            auto row = table.addRow(jobs[i] + "+" + jobs[j]);
            table.setNum(row, 1, shared, 2);
            table.setNum(row, 2, solo_avg, 2);
            table.setNum(row, 3, badness, 2);
            table.set(row, 4, badness > 3.0 ? "avoid" : "ok");
        }
    }

    table.print(std::cout);
    std::cout << "\nshape: pairs of conflict-prone jobs (e.g. "
              << "tomcatv+vortex) show high cross-thread conflict "
              << "rates and big shared-vs-solo inflation; pairing a "
              << "conflict-prone job with a streaming one is "
              << "comparatively benign\n";
    return 0;
}
