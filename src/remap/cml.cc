#include "remap/cml.hh"

#include <algorithm>

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace ccm
{

CmlBuffer::CmlBuffer(std::size_t page_bytes)
    : pageShift(floorLog2(page_bytes))
{
    if (!isPowerOfTwo(page_bytes))
        ccm_fatal("page size must be a power of two: ", page_bytes);
    // Pre-size for a typical hot-page working set so epoch-steady
    // recording does not rehash.
    counts.reserve(1024);
}

void
CmlBuffer::recordMiss(ByteAddr vaddr)
{
    ++counts[pageOf(vaddr)];
}

std::uint32_t
CmlBuffer::count(ByteAddr vaddr) const
{
    auto it = counts.find(pageOf(vaddr));
    return it == counts.end() ? 0 : it->second;
}

std::vector<Addr>
CmlBuffer::hotPages(std::uint32_t threshold) const
{
    std::vector<std::pair<Addr, std::uint32_t>> hot;
    for (const auto &[page, n] : counts) {
        if (n >= threshold)
            hot.emplace_back(page, n);
    }
    std::sort(hot.begin(), hot.end(),
              [](const auto &a, const auto &b) {
                  return a.second > b.second;
              });
    std::vector<Addr> pages;
    pages.reserve(hot.size());
    for (const auto &[page, n] : hot)
        pages.push_back(page);
    return pages;
}

void
CmlBuffer::newEpoch()
{
    counts.clear();
}

} // namespace ccm
