/**
 * @file
 * Cache miss lookaside (CML) buffer — the OS-page-remapping
 * application of paper §5.6 ("Runtime conflict avoidance"), after
 * Bershad et al. [2] and Romer et al. [13].
 *
 * The CML buffer counts cache misses by the page that suffered them;
 * the OS polls it each epoch and re-colors pages whose miss counts
 * are high.  The paper's addition: "Miss classification would allow
 * this technique to only count conflict misses.  Reallocation could
 * be avoided when the majority of misses are capacity misses (in
 * which case reallocation typically would not help)."  This class
 * supports both counting modes so the bench can compare them.
 */

#ifndef CCM_REMAP_CML_HH
#define CCM_REMAP_CML_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/addr_types.hh"
#include "common/types.hh"

namespace ccm
{

/** Per-page miss counter with epoch-based harvesting. */
class CmlBuffer
{
  public:
    /** @param page_bytes page size (power of two) */
    explicit CmlBuffer(std::size_t page_bytes = 4096);

    /** Record a miss by @p vaddr's page. */
    void recordMiss(ByteAddr vaddr);

    /** Miss count of @p vaddr's page this epoch. */
    std::uint32_t count(ByteAddr vaddr) const;

    /** Virtual page number of @p vaddr (its own raw domain). */
    Addr pageOf(ByteAddr vaddr) const
    {
        return vaddr.value() >> pageShift;
    }

    /** Pages whose count is at least @p threshold, hottest first. */
    std::vector<Addr> hotPages(std::uint32_t threshold) const;

    /** Zero every counter (start of a new epoch). */
    void newEpoch();

    unsigned pageShiftBits() const { return pageShift; }

  private:
    unsigned pageShift;
    /** Mixed hash: page numbers are sequential and would cluster
     *  under the identity hash. */
    std::unordered_map<Addr, std::uint32_t, AddrMixHash> counts;
};

} // namespace ccm

#endif // CCM_REMAP_CML_HH
