/**
 * @file
 * Dynamic page-recoloring simulation (§5.6 "Runtime conflict
 * avoidance"): a virtually-addressed workload runs against a
 * physically-indexed cache through a page table whose color bits the
 * "OS" may rewrite when the CML buffer reports hot pages.
 *
 * Each epoch, pages whose (optionally conflict-only) miss count
 * crosses a threshold are re-colored to the currently least-loaded
 * cache color, at a configurable page-copy cost.  Comparing
 * count-all-misses against count-conflict-misses-only reproduces the
 * paper's argument: classification avoids useless reallocations when
 * the misses are capacity misses.
 */

#ifndef CCM_REMAP_REMAP_SIM_HH
#define CCM_REMAP_REMAP_SIM_HH

#include <unordered_map>
#include <vector>

#include "cache/cache.hh"
#include "common/addr_types.hh"
#include "common/types.hh"
#include "mct/mct.hh"
#include "remap/cml.hh"
#include "trace/source.hh"

namespace ccm
{

/** Configuration of the recoloring experiment. */
struct RemapConfig
{
    std::size_t cacheBytes = 16 * 1024;
    unsigned lineBytes = 64;
    std::size_t pageBytes = 4096;
    /** Poll the CML buffer every this many references. */
    Count epochRefs = 50'000;
    /** Page miss count that triggers a remap candidate. */
    std::uint32_t hotThreshold = 256;
    /** Count only MCT-conflict misses in the CML buffer. */
    bool conflictOnly = true;
    /** Approximate cycles to copy one page on a remap. */
    Cycle remapCostCycles = 4096;
};

/** Results of one recoloring run. */
struct RemapResult
{
    Count references = 0;
    Count misses = 0;
    Count remaps = 0;
    double missRate = 0.0;
    /** Misses plus amortized remap cost, in "miss equivalents"
     *  (remap cost / 100-cycle miss): the figure of merit. */
    double effectiveMissRate = 0.0;
};

/** The recoloring simulator. */
class PageRemapSim
{
  public:
    explicit PageRemapSim(const RemapConfig &config);

    /** Replay @p trace (reset first) with recoloring active. */
    RemapResult run(TraceSource &trace);

    /** Number of distinct cache colors. */
    unsigned colors() const { return numColors; }

  private:
    ByteAddr translate(ByteAddr vaddr);
    void pollAndRemap();

    RemapConfig cfg;
    CacheGeometry geom;
    Cache cache;
    MissClassificationTable mct;
    CmlBuffer cml;

    unsigned numColors;
    /** vpage -> assigned color (mixed hash; see AddrMixHash). */
    std::unordered_map<Addr, unsigned, AddrMixHash> colorOf;
    /** Live page count per color (for least-loaded choice). */
    std::vector<Count> colorLoad;

    Count remaps = 0;
};

} // namespace ccm

#endif // CCM_REMAP_REMAP_SIM_HH
