#include "remap/remap_sim.hh"

#include <algorithm>
#include <array>

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "trace/batch_reader.hh"

namespace ccm
{

PageRemapSim::PageRemapSim(const RemapConfig &config)
    : cfg(config),
      geom(config.cacheBytes, 1, config.lineBytes),
      cache(geom),
      mct(geom.numSets()),
      cml(config.pageBytes),
      numColors(static_cast<unsigned>(config.cacheBytes /
                                      config.pageBytes)),
      colorLoad(numColors, 0)
{
    if (numColors < 2)
        ccm_fatal("cache must span >= 2 pages for recoloring to "
                  "mean anything");
    if (!isPowerOfTwo(numColors))
        ccm_fatal("colors must be a power of two: ", numColors);
    // Pre-size for a typical page working set so the per-reference
    // translate() lookup does not rehash mid-run.
    colorOf.reserve(4096);
}

ByteAddr
PageRemapSim::translate(ByteAddr vaddr)
{
    const unsigned page_shift = floorLog2(cfg.pageBytes);
    const unsigned color_bits = floorLog2(numColors);
    Addr vpage = vaddr.value() >> page_shift;

    auto it = colorOf.find(vpage);
    if (it == colorOf.end()) {
        // Default OS policy: page coloring (color = vpage mod
        // colors), the standard conflict-avoiding static layout.
        unsigned color =
            static_cast<unsigned>(vpage & (numColors - 1));
        it = colorOf.emplace(vpage, color).first;
        ++colorLoad[color];
    }

    // Synthesize a unique physical frame whose index bits inside the
    // cache equal the assigned color.
    Addr frame = (vpage << color_bits) | it->second;
    return ByteAddr{(frame << page_shift) |
                    (vaddr.value() & (cfg.pageBytes - 1))};
}

void
PageRemapSim::pollAndRemap()
{
    std::vector<Addr> hot = cml.hotPages(cfg.hotThreshold);
    cml.newEpoch();
    if (hot.size() < 2)
        return;

    // Group hot pages by their current color; where two or more hot
    // pages share a color, keep the hottest and move the rest each
    // to the least-loaded color.
    std::vector<bool> color_has_hot(numColors, false);
    for (Addr page : hot) {            // hottest first
        unsigned color = colorOf[page];
        if (!color_has_hot[color]) {
            color_has_hot[color] = true;
            continue;
        }
        // Contended: move this page to the least-loaded color.
        unsigned target = 0;
        for (unsigned c = 1; c < numColors; ++c) {
            if (colorLoad[c] < colorLoad[target])
                target = c;
        }
        if (target == color)
            continue;
        --colorLoad[color];
        ++colorLoad[target];
        colorOf[page] = target;
        ++remaps;
        // The moved page's lines are effectively invalidated (its
        // physical frame changed); the old frame's lines age out
        // naturally, which is close enough functionally.
        if (!color_has_hot[target])
            color_has_hot[target] = true;
    }
}

RemapResult
PageRemapSim::run(TraceSource &trace)
{
    RemapResult res;
    remaps = 0;

    trace.reset();
    // Loop-driven pipeline: batches are walked in place, same shape
    // as classifyRun.
    std::array<MemRecord, maxTraceBatch> buf;
    const std::size_t batch = traceBatchSize();
    Count since_epoch = 0;
    for (std::size_t n; (n = trace.nextBatch(buf.data(), batch)) > 0;) {
        for (std::size_t i = 0; i < n; ++i) {
            const MemRecord &r = buf[i];
            if (!r.isMem())
                continue;
            ++res.references;

            ByteAddr paddr = translate(r.dataAddr());
            if (!cache.access(paddr, r.isStore())) {
                ++res.misses;
                SetIndex set = geom.setOf(paddr);
                bool conflict =
                    mct.isConflictMiss(set, geom.tagOf(paddr));
                if (conflict || !cfg.conflictOnly)
                    cml.recordMiss(r.dataAddr());
                FillResult ev =
                    cache.fill(paddr, conflict, r.isStore());
                if (ev.valid)
                    mct.recordEviction(set, geom.tagOf(ev.lineAddr));
            }

            if (++since_epoch >= cfg.epochRefs) {
                since_epoch = 0;
                pollAndRemap();
            }
        }
    }

    res.remaps = remaps;
    res.missRate = safeRatio(res.misses, res.references);
    double remap_miss_equiv =
        static_cast<double>(remaps) *
        (static_cast<double>(cfg.remapCostCycles) / 100.0);
    res.effectiveMissRate =
        safeRatio(res.misses, res.references) +
        remap_miss_equiv / static_cast<double>(
                               std::max<Count>(res.references, 1));
    return res;
}

} // namespace ccm
