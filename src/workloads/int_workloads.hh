/**
 * @file
 * Integer SPEC95-inspired synthetic workloads: the "messier",
 * irregular applications the paper deliberately keeps in its suite.
 * See fp_workloads.hh for layout conventions.
 */

#ifndef CCM_WORKLOADS_INT_WORKLOADS_HH
#define CCM_WORKLOADS_INT_WORKLOADS_HH

#include "workloads/synthetic.hh"

namespace ccm
{

/**
 * go: game tree search.  A small hot board (cache-resident), random
 * tree-node touches over a medium region, and two evaluation tables
 * that collide in the L1 and are probed alternately — a modest miss
 * rate with a genuine conflict component.
 */
class GoLike : public SyntheticWorkload
{
  public:
    GoLike(std::size_t mem_refs, std::uint64_t seed,
           std::size_t tree_bytes = 128 * 1024);

  protected:
    MemRecord genMem() override;
    void restart() override;

  private:
    std::size_t treeBytes;
    unsigned evalPhase = 0;
    Addr evalIdx = 0;
    Addr treeCursor = 0;
};

/**
 * gcc: compiler passes.  Allocation-frontier stores, short pointer
 * chains through the allocated heap (dependent loads), and random
 * symbol-table probes.
 */
class GccLike : public SyntheticWorkload
{
  public:
    GccLike(std::size_t mem_refs, std::uint64_t seed,
            std::size_t heap_bytes = 192 * 1024,
            std::size_t symtab_bytes = 48 * 1024);

  protected:
    MemRecord genMem() override;
    void restart() override;

  private:
    std::size_t heapBytes, symtabBytes;
    Addr frontier = 0;
    Addr chasePtr = 0;
    Addr optIdx = 0;
    unsigned burst = 0;
    unsigned mode = 0;
};

/**
 * compress: LZW.  Random hash-table probes over a table far larger
 * than the L1 (capacity misses with no spatial locality), fed by a
 * sequentially scanned input and output buffer.
 */
class CompressLike : public SyntheticWorkload
{
  public:
    CompressLike(std::size_t mem_refs, std::uint64_t seed,
                 std::size_t table_bytes = 512 * 1024);

  protected:
    MemRecord genMem() override;
    void restart() override;

  private:
    std::size_t tableBytes;
    Addr in = 0, out = 0;
    unsigned phase = 0;
    Addr probeAddr = 0;
};

/**
 * li: lisp interpreter.  Dependent-load cons-cell chases through a
 * shuffled heap (latency-bound), punctuated by sequential GC sweeps.
 */
class LiLike : public SyntheticWorkload
{
  public:
    LiLike(std::size_t mem_refs, std::uint64_t seed,
           std::size_t heap_bytes = 96 * 1024,
           unsigned chase_len = 32, unsigned sweep_every = 48);

  protected:
    MemRecord genMem() override;
    void restart() override;

  private:
    Addr cellAddr(std::uint64_t idx) const;

    std::size_t heapBytes;
    unsigned chaseLen, sweepEvery;
    std::uint64_t cur = 0;
    unsigned chaseLeft = 0;
    unsigned chases = 0;
    std::size_t sweepLeft = 0;
    Addr sweepCursor = 0;
};

/**
 * perl: interpreter.  Random probes into a hash a few times the L1
 * size, sequential string scans, and a hot, cache-resident dispatch
 * table.
 */
class PerlLike : public SyntheticWorkload
{
  public:
    PerlLike(std::size_t mem_refs, std::uint64_t seed,
             std::size_t hash_bytes = 48 * 1024,
             std::size_t string_bytes = 256 * 1024);

  protected:
    MemRecord genMem() override;
    void restart() override;

  private:
    std::size_t hashBytes, stringBytes;
    Addr scan = 0;
    Addr hashCursor = 0;
    unsigned phase = 0;
};

/**
 * m88ksim: microprocessor simulator.  A small, hot simulated machine
 * state (register file, decode tables) plus bursty accesses into the
 * simulated memory image — the classic low-miss-rate SPECint member.
 */
class M88ksimLike : public SyntheticWorkload
{
  public:
    M88ksimLike(std::size_t mem_refs, std::uint64_t seed,
                std::size_t image_bytes = 256 * 1024);

  protected:
    MemRecord genMem() override;
    void restart() override;

  private:
    std::size_t imageBytes;
    Addr imgCursor = 0;
    unsigned burst = 0;
    unsigned phase = 0;
};

/**
 * ijpeg: image compression.  8x8-blocked DCT sweeps over an image
 * whose row stride spreads each block over eight cache sets, with
 * hot quantization tables and a sequential output stream.
 */
class IjpegLike : public SyntheticWorkload
{
  public:
    IjpegLike(std::size_t mem_refs, std::uint64_t seed,
              std::size_t image_rows = 512,
              std::size_t image_cols = 1024);

  protected:
    MemRecord genMem() override;
    void restart() override;

  private:
    std::size_t imgRows, imgCols;
    std::size_t blockRow = 0, blockCol = 0;
    unsigned px = 0;       ///< pixel within the 8x8 block
    unsigned phase = 0;
    Addr out = 0;
};

/**
 * vortex: object database.  Random two-line object reads over a large
 * store, plus a metadata index and a transaction log laid out to
 * collide in the L1 and touched alternately per transaction — the
 * kind of structural conflict a victim cache eats for breakfast.
 */
class VortexLike : public SyntheticWorkload
{
  public:
    VortexLike(std::size_t mem_refs, std::uint64_t seed,
               std::size_t store_bytes = 4 * 1024 * 1024,
               std::size_t meta_bytes = 32 * 1024);

  protected:
    MemRecord genMem() override;
    void restart() override;

  private:
    std::size_t storeBytes, metaBytes;
    unsigned phase = 0;
    Addr objAddr = 0;
    Addr metaIdx = 0;
};

} // namespace ccm

#endif // CCM_WORKLOADS_INT_WORKLOADS_HH
