#include "workloads/fp_workloads.hh"

namespace ccm
{

namespace
{

constexpr Addr elemSize = 8;            // double
constexpr Addr l1Span = 16 * 1024;      // the L1 size arrays collide mod
constexpr Addr lineSize = 64;

/** Base of array @p k inside region @p reg, colliding with array 0. */
Addr
collidingBase(unsigned reg, unsigned k, Addr array_bytes)
{
    // Round the array up to a multiple of the L1 span so equal indices
    // in different arrays map to the same set.
    Addr span = (array_bytes + l1Span - 1) / l1Span * l1Span;
    return wl::region(reg) + k * span;
}

/** Base of array @p k offset by odd line counts (no collisions). */
Addr
skewedBase(unsigned reg, unsigned k, Addr array_bytes)
{
    Addr span = (array_bytes + l1Span - 1) / l1Span * l1Span;
    return wl::region(reg) + k * span + (2 * k + 1) * 13 * lineSize;
}

} // namespace

// TomcatvLike ------------------------------------------------------
//
// Arrays 0,1,2 collide mod the L1; 3..6 are skewed.  Most rows access
// the colliding arrays as an a0/a1 ping-pong (conflict near-misses the
// MCT identifies); every eighth row rotates a0->a1->a2 in a 3-cycle,
// which a direct-mapped MCT cannot catch (it needs 2 extra ways) but a
// 2-way cache's MCT can — reproducing the paper's imperfect-but-high
// accuracy on both configurations.

TomcatvLike::TomcatvLike(std::size_t mem_refs, std::uint64_t seed,
                         std::size_t rows, std::size_t cols,
                         unsigned ping_sweeps)
    : SyntheticWorkload("tomcatv", mem_refs, 2, seed),
      rows_(rows), cols_(cols), pingSweeps(ping_sweeps)
{
    restart();
}

void
TomcatvLike::restart()
{
    r = 1;
    c = 1;
    phase = 0;
    sweep = 0;
    tailMode = false;
}

MemRecord
TomcatvLike::genMem()
{
    const Addr bytes = rows_ * cols_ * elemSize;
    const std::size_t idx = r * cols_ + c;
    const bool triple_row = (r % 16) == 15;

    // The colliding arrays are row-shaped workspace arrays re-swept
    // pingSweeps times per row (the real program's relaxation loop
    // runs several sweeps per time step), so their conflicts recur at
    // the same addresses all run long.  The relaxation sweeps and the
    // streaming-array loop are separate program phases, as in the
    // original Fortran.  256 KB spacing keeps the arrays colliding in
    // every cache configuration of Figure 1 (16-64 KB).
    auto coll = [&](unsigned arr, std::size_t i) {
        return wl::region(0) + arr * 16 * l1Span + i * elemSize;
    };
    auto skew = [&](unsigned arr, std::size_t i) {
        return skewedBase(0, arr, bytes) + i * elemSize;
    };

    MemRecord rec;
    const Addr pc = 0x1000 + phase * 4 + (tailMode ? 0x200 : 0) +
                    (triple_row ? 0x100 : 0);

    if (!tailMode) {
        // Relaxation sweep: A, B, A load + A store (A, B, C on
        // 3-cycle rows) over the colliding row-arrays.
        switch (phase) {
          case 0: rec = load(pc, coll(0, c)); break;
          case 1: rec = load(pc, coll(1, c)); break;
          case 2:
            rec = triple_row ? load(pc, coll(2, c))   // 3-cycle
                             : load(pc, coll(0, c));  // ping-pong
            break;
          default:
            rec = triple_row ? store(pc, coll(2, c))
                             : store(pc, coll(0, c));
            break;
        }
        if (++phase == 4) {
            phase = 0;
            if (++c >= cols_ - 1) {
                c = 1;
                if (++sweep >= pingSweeps) {
                    sweep = 0;
                    tailMode = true;
                }
            }
        }
        return rec;
    }

    // Streaming stencil phase over the big 2D arrays.
    switch (phase) {
      case 0: rec = load(pc, skew(3, idx - cols_)); break;
      case 1: rec = load(pc, skew(4, idx)); break;
      case 2: rec = store(pc, skew(5, idx)); break;
      default: rec = load(pc, skew(6, idx + 1)); break;
    }
    if (++phase == 4) {
        phase = 0;
        if (++c >= cols_ - 1) {
            c = 1;
            tailMode = false;
            if (++r >= rows_ - 1)
                r = 1;
        }
    }
    return rec;
}

// SwimLike ---------------------------------------------------------

SwimLike::SwimLike(std::size_t mem_refs, std::uint64_t seed,
                   std::size_t elems)
    : SyntheticWorkload("swim", mem_refs, 2, seed), elems_(elems)
{
    restart();
}

void
SwimLike::restart()
{
    i = 0;
    phase = 0;
}

MemRecord
SwimLike::genMem()
{
    const Addr bytes = elems_ * elemSize;
    const Addr pc = 0x2000 + phase * 4;

    MemRecord rec;
    switch (phase) {
      case 0: rec = load(pc, skewedBase(1, 0, bytes) + i * elemSize);
              break;
      case 1: rec = load(pc, skewedBase(1, 1, bytes) + i * elemSize);
              break;
      case 2: rec = load(pc, skewedBase(1, 2, bytes) + i * elemSize);
              break;
      default: rec = store(pc, skewedBase(1, 3, bytes) + i * elemSize);
              break;
    }

    if (++phase == 4) {
        phase = 0;
        if (++i >= elems_)
            i = 0;
    }
    return rec;
}

// MgridLike --------------------------------------------------------
//
// Long unit-stride smoothing sweeps (capacity misses, 1 in 8) are
// punctuated by a short restriction phase whose x[k] / x[k + plane]
// operands sit exactly 32 KB apart — the same L1 set — producing a
// burst of MCT-identifiable conflict misses.

MgridLike::MgridLike(std::size_t mem_refs, std::uint64_t seed,
                     std::size_t dim)
    : SyntheticWorkload("mgrid", mem_refs, 2, seed), dim_(dim)
{
    restart();
}

void
MgridLike::restart()
{
    idx = 0;
    phase = 0;
    phaseLeft = 8 * dim_ * dim_;
    planeCursor = 0;
}

MemRecord
MgridLike::genMem()
{
    const std::size_t plane = dim_ * dim_;
    const std::size_t elems = plane * dim_;
    const Addr base = wl::region(2);
    const Addr pc = 0x3000 + phase * 4;

    if (phase == 0) {
        // Unit-stride smoothing sweep.
        MemRecord rec = load(pc, base + idx * elemSize);
        idx = (idx + 1) % elems;
        if (--phaseLeft == 0) {
            phase = 1;
            phaseLeft = 3 * (plane / 4);
        }
        return rec;
    }

    // Restriction: x[k] / x[k + plane] ping-pong (the plane is 32 KB,
    // an even multiple of the 16 KB L1: same set).
    const std::size_t sub = phaseLeft % 3;   // 2,1,0 -> A, B, A-store
    MemRecord rec;
    std::size_t k = planeCursor % plane;
    switch (sub) {
      case 2: rec = load(pc, base + k * elemSize); break;
      case 1: rec = load(pc, base + (k + plane) * elemSize); break;
      default: rec = store(pc, base + k * elemSize);
               planeCursor = (planeCursor + 1) % plane;
               break;
    }
    if (--phaseLeft == 0) {
        phase = 0;
        phaseLeft = 8 * plane;
    }
    return rec;
}

// AppluLike --------------------------------------------------------
//
// Blocked SSOR: each 2 KB block is processed for several passes; the
// five arrays fit a block-working-set under the L1 except that arrays
// 0 and 1 collide, so the pass touching both thrashes that block.

AppluLike::AppluLike(std::size_t mem_refs, std::uint64_t seed,
                     std::size_t elems, std::size_t block,
                     unsigned passes)
    : SyntheticWorkload("applu", mem_refs, 2, seed),
      elems_(elems), block_(block), passes_(passes)
{
    restart();
}

void
AppluLike::restart()
{
    blockStart = 0;
    cursor = 0;
    pass = 0;
    arr = 0;
}

MemRecord
AppluLike::genMem()
{
    const Addr bytes = elems_ * elemSize;
    const Addr pc = 0x4000 + arr * 4;

    // Arrays 0 and 1 collide; 2..4 are skewed.
    auto at = [&](unsigned a, std::size_t i) {
        Addr base = (a < 2) ? collidingBase(3, a, bytes)
                            : skewedBase(3, a, bytes);
        return base + i * elemSize;
    };

    const std::size_t i = blockStart + cursor;
    MemRecord rec;
    switch (arr) {
      case 0: rec = load(pc, at(pass % 5, i)); break;
      case 1: rec = load(pc, at((pass + 1) % 5, i)); break;
      default: rec = store(pc, at(pass % 5, i)); break;
    }

    if (++arr == 3) {
        arr = 0;
        if (++cursor >= block_) {
            cursor = 0;
            if (++pass >= passes_) {
                pass = 0;
                blockStart += block_;
                if (blockStart + block_ > elems_)
                    blockStart = 0;
            }
        }
    }
    return rec;
}

// Turb3dLike -------------------------------------------------------
//
// Butterfly passes over a 16 K-element window; the stride doubles per
// pass.  Once stride*8 is a multiple of 16 KB the two operands share a
// set and ping-pong; small-stride passes stream through the window.

Turb3dLike::Turb3dLike(std::size_t mem_refs, std::uint64_t seed,
                       std::size_t elems)
    : SyntheticWorkload("turb3d", mem_refs, 2, seed), elems_(elems)
{
    restart();
}

void
Turb3dLike::restart()
{
    strideElems = 1;
    i = 0;
    phase = 0;
}

MemRecord
Turb3dLike::genMem()
{
    const Addr base = wl::region(4);
    const Addr pc = 0x5000 + phase * 4;
    // Butterflies per pass: a 16 K-element window, so every stride up
    // to elems_/2 is exercised within a reasonable trace length.
    const std::size_t window = 16 * 1024;

    // Twiddle-factor table: 2 KB, cache-resident.
    const Addr twiddle = wl::region(4) + 0x2000000 + 5 * 13 * lineSize;

    MemRecord rec;
    switch (phase) {
      case 0: rec = load(pc, base + i * elemSize); break;
      case 1: rec = load(pc, base + (i + strideElems) * elemSize);
              break;
      case 2: rec = load(pc, twiddle + (i % 256) * elemSize); break;
      case 3: rec = store(pc, base + i * elemSize); break;
      default: rec = store(pc,
                           base + (i + strideElems) * elemSize);
              break;
    }

    if (++phase == 5) {
        phase = 0;
        ++i;
        if (i >= window || i + strideElems >= elems_) {
            i = 0;
            strideElems *= 2;
            if (strideElems >= elems_ / 2)
                strideElems = 1;
        }
    }
    return rec;
}

// Su2corLike -------------------------------------------------------

Su2corLike::Su2corLike(std::size_t mem_refs, std::uint64_t seed,
                       std::size_t matrix_elems, std::size_t vec_block)
    : SyntheticWorkload("su2cor", mem_refs, 2, seed),
      matrixElems(matrix_elems), vecBlock(vec_block)
{
    restart();
}

void
Su2corLike::restart()
{
    mi = 0;
    vi = 0;
    phase = 0;
    updateLeft = 0;
    ui = 0;
}

MemRecord
Su2corLike::genMem()
{
    const Addr bytes = matrixElems * elemSize;
    const Addr matrix = skewedBase(7, 0, bytes);
    const Addr vec = skewedBase(7, 4, bytes);           // 4KB block
    // Lattice update pair: bases equal mod the L1 span.
    const Addr lat_a = wl::region(7) + 0x1000000;
    const Addr lat_b = lat_a + 16 * l1Span;
    const Addr pc = 0x1800 + phase * 4;

    if (updateLeft > 0) {
        // Lattice update: A, B, A ping-pong over a recurring row.
        MemRecord rec;
        std::size_t k = ui % (l1Span / elemSize);
        switch (updateLeft % 3) {
          case 2: rec = load(pc, lat_a + k * elemSize); break;
          case 1: rec = load(pc, lat_b + k * elemSize); break;
          default: rec = store(pc, lat_a + k * elemSize);
                   ++ui;
                   break;
        }
        --updateLeft;
        return rec;
    }

    MemRecord rec;
    switch (phase) {
      case 0:  // stream the matrix
        rec = load(pc, matrix + mi * elemSize);
        mi = (mi + 1) % matrixElems;
        break;
      case 1:  // reused vector block (4KB: cache-resident)
        rec = load(pc, vec + (vi % vecBlock) * elemSize);
        ++vi;
        break;
      default: // accumulate back into the vector block
        rec = store(pc, vec + (vi % vecBlock) * elemSize);
        break;
    }
    if (++phase == 3) {
        phase = 0;
        // Every matrix row (vecBlock elements), do a burst of
        // lattice updates.
        if (mi % vecBlock == 0)
            updateLeft = 96;
    }
    return rec;
}

// Hydro2dLike ------------------------------------------------------

Hydro2dLike::Hydro2dLike(std::size_t mem_refs, std::uint64_t seed,
                         std::size_t rows, std::size_t cols)
    : SyntheticWorkload("hydro2d", mem_refs, 2, seed),
      rows_(rows), cols_(cols)
{
    restart();
}

void
Hydro2dLike::restart()
{
    r = 1;
    c = 1;
    phase = 0;
}

MemRecord
Hydro2dLike::genMem()
{
    const Addr bytes = rows_ * cols_ * elemSize;
    const std::size_t idx = r * cols_ + c;
    const Addr pc = 0x1900 + phase * 4;

    auto at = [&](unsigned arr, std::size_t i) {
        return skewedBase(14, arr, bytes) + i * elemSize;
    };

    MemRecord rec;
    switch (phase) {
      case 0: rec = load(pc, at(0, idx)); break;
      case 1: rec = load(pc, at(0, idx - cols_)); break;  // north
      case 2: rec = load(pc, at(1, idx)); break;
      case 3: rec = load(pc, at(2, idx + 1)); break;      // east
      case 4: rec = store(pc, at(3, idx)); break;
      default: rec = load(pc, at(1, idx - 1)); break;     // west
    }

    if (++phase == 6) {
        phase = 0;
        if (++c >= cols_ - 1) {
            c = 1;
            if (++r >= rows_ - 1)
                r = 1;
        }
    }
    return rec;
}

// Wave5Like --------------------------------------------------------

Wave5Like::Wave5Like(std::size_t mem_refs, std::uint64_t seed,
                     std::size_t grid_bytes, std::size_t particles)
    : SyntheticWorkload("wave5", mem_refs, 2, seed),
      gridBytes(grid_bytes), particles_(particles)
{
    restart();
}

void
Wave5Like::restart()
{
    p = 0;
    phase = 0;
    gridAddr = 0;
}

MemRecord
Wave5Like::genMem()
{
    const Addr particle_base = wl::region(5);
    const Addr grid_base = wl::region(6) + 5 * 13 * lineSize;
    const Addr rec_bytes = 16;
    const Addr pc = 0x6000 + phase * 4;

    // Interpolation coefficients: 2 KB, cache-resident.
    const Addr coeffs = wl::region(6) + 0x2000000 + 7 * 13 * lineSize;

    MemRecord rec;
    switch (phase) {
      case 0:
        rec = load(pc, particle_base + p * rec_bytes);
        break;
      case 1:
        // Random gather into the big grid (fresh cell per particle).
        gridAddr = grid_base +
                   (rng.below(static_cast<std::uint32_t>(
                        gridBytes / elemSize))) * elemSize;
        rec = load(pc, gridAddr);
        break;
      case 2:
        rec = store(pc, gridAddr);
        break;
      case 3:
        // Field interpolation: neighbouring cell, usually same line.
        rec = load(pc, gridAddr + elemSize);
        break;
      case 4:
      case 5:
        rec = load(pc, coeffs + rng.below(2 * 1024 / 8) * 8);
        break;
      default:
        rec = load(pc, particle_base + p * rec_bytes + 8);
        break;
    }

    if (++phase == 7) {
        phase = 0;
        if (++p >= particles_)
            p = 0;
    }
    return rec;
}

} // namespace ccm
