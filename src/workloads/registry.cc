#include "workloads/registry.hh"

#include "workloads/fp_workloads.hh"
#include "workloads/int_workloads.hh"

namespace ccm
{

namespace
{

template <typename T>
WorkloadSpec
spec(const std::string &name, bool fp)
{
    return WorkloadSpec{
        name, fp,
        [](std::size_t refs, std::uint64_t seed)
            -> std::unique_ptr<TraceSource> {
            return std::make_unique<T>(refs, seed);
        }};
}

} // namespace

const std::vector<WorkloadSpec> &
workloadSuite()
{
    static const std::vector<WorkloadSpec> suite = {
        spec<TomcatvLike>("tomcatv", true),
        spec<SwimLike>("swim", true),
        spec<Su2corLike>("su2cor", true),
        spec<Hydro2dLike>("hydro2d", true),
        spec<MgridLike>("mgrid", true),
        spec<AppluLike>("applu", true),
        spec<Turb3dLike>("turb3d", true),
        spec<Wave5Like>("wave5", true),
        spec<GoLike>("go", false),
        spec<M88ksimLike>("m88ksim", false),
        spec<GccLike>("gcc", false),
        spec<CompressLike>("compress", false),
        spec<LiLike>("li", false),
        spec<IjpegLike>("ijpeg", false),
        spec<PerlLike>("perl", false),
        spec<VortexLike>("vortex", false),
    };
    return suite;
}

std::unique_ptr<TraceSource>
makeWorkload(const std::string &name, std::size_t mem_refs,
             std::uint64_t seed)
{
    for (const auto &s : workloadSuite()) {
        if (s.name == name)
            return s.make(mem_refs, seed);
    }
    return nullptr;
}

Status
validateWorkloadRequest(const std::string &name, std::size_t mem_refs)
{
    bool known = false;
    for (const auto &s : workloadSuite())
        known = known || s.name == name;
    if (!known)
        return Status::notFound("unknown workload '", name, "'");
    if (mem_refs == 0) {
        return Status::badConfig("workload '", name,
                                 "' needs mem_refs > 0");
    }
    return Status::ok();
}

Expected<std::unique_ptr<TraceSource>>
makeWorkloadChecked(const std::string &name, std::size_t mem_refs,
                    std::uint64_t seed)
{
    Status s = validateWorkloadRequest(name, mem_refs);
    if (!s.isOk())
        return s;
    return makeWorkload(name, mem_refs, seed);
}

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names;
    for (const auto &s : workloadSuite())
        names.push_back(s.name);
    return names;
}

} // namespace ccm
