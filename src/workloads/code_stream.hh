/**
 * @file
 * Synthetic instruction-fetch streams for the instruction-cache
 * application (paper §4: the techniques "should, in general, also
 * apply to the instruction cache").
 *
 * A CodeStreamWorkload emits one record per executed instruction
 * whose *address* is the instruction's PC (an I-fetch reference
 * stream).  Programs are built from straight-line functions laid out
 * at fixed addresses and called from a main loop; two functions laid
 * out a cache-size apart produce the classic I-cache conflict
 * ping-pong, and code footprints larger than the cache produce
 * capacity misses.
 */

#ifndef CCM_WORKLOADS_CODE_STREAM_HH
#define CCM_WORKLOADS_CODE_STREAM_HH

#include <string>
#include <vector>

#include "trace/source.hh"

namespace ccm
{

/** One function in the synthetic program. */
struct CodeFunction
{
    Addr entry;           ///< first instruction address
    std::size_t instrs;   ///< straight-line length (4-byte instrs)
};

/** Instruction-fetch stream over a fixed call sequence. */
class CodeStreamWorkload : public TraceSource
{
  public:
    /**
     * @param label workload name
     * @param functions the program's functions
     * @param call_sequence indices into @p functions, executed
     *        round-robin until @p total_instrs records are emitted
     * @param total_instrs trace length
     */
    CodeStreamWorkload(std::string label,
                       std::vector<CodeFunction> functions,
                       std::vector<unsigned> call_sequence,
                       std::size_t total_instrs);

    bool next(MemRecord &out) override;
    std::size_t nextBatch(MemRecord *out, std::size_t n) override;
    void reset() override;
    std::string name() const override { return label; }

    // ---- preset programs (16KB I-cache assumed) -------------------

    /** A hot loop that fits: near-zero miss rate. */
    static CodeStreamWorkload hotLoop(std::size_t instrs);

    /**
     * Two 2KB functions 16KB apart, called alternately: the classic
     * I-cache conflict ping-pong.
     */
    static CodeStreamWorkload collidingCalls(std::size_t instrs);

    /** 64KB of code executed round-robin: I-capacity misses. */
    static CodeStreamWorkload hugeCode(std::size_t instrs);

    /** Mixed: a hot loop + colliding helpers + a cold tail. */
    static CodeStreamWorkload mixed(std::size_t instrs);

  private:
    std::string label;
    std::vector<CodeFunction> funcs;
    std::vector<unsigned> seq;
    std::size_t total;

    std::size_t emitted = 0;
    std::size_t seqPos = 0;
    std::size_t instrInFunc = 0;
};

} // namespace ccm

#endif // CCM_WORKLOADS_CODE_STREAM_HH
