/**
 * @file
 * Base class for the synthetic SPEC95-inspired workload generators.
 *
 * Each generator is a deterministic function of (parameters, seed): it
 * emits a finite stream of dynamic instructions in which every
 * `nonMemPerMem`-th-ish record carries a memory reference produced by
 * the subclass.  The interleaved non-memory instructions give the
 * timing model a realistic memory-op density (~1/3 of instructions),
 * which matters for how much miss latency the out-of-order window can
 * hide.
 */

#ifndef CCM_WORKLOADS_SYNTHETIC_HH
#define CCM_WORKLOADS_SYNTHETIC_HH

#include <cstddef>
#include <string>

#include "common/random.hh"
#include "trace/source.hh"

namespace ccm
{

/** Deterministic synthetic trace generator. */
class SyntheticWorkload : public TraceSource
{
  public:
    /**
     * @param label workload name (row label in result tables)
     * @param mem_refs number of memory references to emit
     * @param non_mem_per_mem non-memory instructions between refs
     * @param seed RNG seed; same seed -> identical stream
     */
    SyntheticWorkload(std::string label, std::size_t mem_refs,
                      unsigned non_mem_per_mem, std::uint64_t seed);

    bool next(MemRecord &out) final;
    std::size_t nextBatch(MemRecord *out, std::size_t n) final;
    void reset() final;
    std::string name() const override { return label_; }

    std::size_t memRefs() const { return memRefs_; }

  protected:
    /**
     * Produce the next memory reference.  Called exactly memRefs()
     * times between resets, in order.
     */
    virtual MemRecord genMem() = 0;

    /** Re-initialize subclass state for a replay. */
    virtual void restart() = 0;

    /** Fresh, reproducible RNG; reseeded on every reset(). */
    Pcg32 rng;

    /** Helper: build a load record. */
    static MemRecord
    load(Addr pc, Addr addr, bool depends_on_prev = false)
    {
        MemRecord r;
        r.pc = pc;
        r.addr = addr;
        r.type = RecordType::Load;
        r.dependsOnPrevLoad = depends_on_prev;
        return r;
    }

    /** Helper: build a store record. */
    static MemRecord
    store(Addr pc, Addr addr)
    {
        MemRecord r;
        r.pc = pc;
        r.addr = addr;
        r.type = RecordType::Store;
        return r;
    }

  private:
    /** One generation step, shared by next()/nextBatch(). */
    bool emitOne(MemRecord &out);

    std::string label_;
    std::size_t memRefs_;
    unsigned gap;
    std::uint64_t seed_;

    std::size_t memEmitted = 0;
    unsigned sinceMem = 0;
    Addr fillerPc = 0;
};

} // namespace ccm

#endif // CCM_WORKLOADS_SYNTHETIC_HH
