#include "workloads/int_workloads.hh"

#include "workloads/fp_workloads.hh"  // wl::region

namespace ccm
{

namespace
{

constexpr Addr l1Span = 16 * 1024;
constexpr Addr lineSize = 64;

/** Skew an intra-region offset off the 16 KB grid by odd lines. */
constexpr Addr
skew(Addr offset, unsigned k)
{
    return offset + (2 * k + 1) * 13 * lineSize;
}

} // namespace

// GoLike -----------------------------------------------------------

GoLike::GoLike(std::size_t mem_refs, std::uint64_t seed,
               std::size_t tree_bytes)
    : SyntheticWorkload("go", mem_refs, 3, seed), treeBytes(tree_bytes)
{
    restart();
}

void
GoLike::restart()
{
    evalPhase = 0;
    evalIdx = 0;
    treeCursor = 0;
}

MemRecord
GoLike::genMem()
{
    const Addr board = wl::region(8) + skew(0, 3);    // 8 KB, hot
    const Addr stack = wl::region(8) + skew(0x80000, 4);  // 2 KB, hot
    const Addr tree = wl::region(8) + skew(0x100000, 1);
    // Two eval tables whose bases are equal mod 16 KB: same-set pairs.
    const Addr eval_a = wl::region(8) + 0x200000;
    const Addr eval_b = eval_a + 4 * l1Span;

    // Mix: 62% board (hits), 14% stack (hits), 7% tree (random),
    // 12% eval ping-pong, 5% pattern table.
    std::uint32_t pick = rng.below(100);
    if (pick < 62) {
        return load(0x7000, board + rng.below(8 * 1024 / 8) * 8);
    } else if (pick < 76) {
        return load(0x7004, stack + rng.below(2 * 1024 / 8) * 8);
    } else if (pick < 83) {
        // Tree nodes are laid out in allocation (DFS) order, so a
        // search frequently advances to the sequentially next node.
        if (rng.chance(0.5)) {
            treeCursor = (treeCursor + lineSize) % treeBytes;
        } else {
            treeCursor = rng.below(static_cast<std::uint32_t>(
                             treeBytes / lineSize)) * lineSize;
        }
        return load(0x7010, tree + treeCursor);
    } else if (pick < 95) {
        // Evaluation burst: A[i], B[i], A[i] at one set index.
        MemRecord rec;
        switch (evalPhase) {
          case 0: rec = load(0x7020, eval_a + evalIdx); break;
          case 1: rec = load(0x7024, eval_b + evalIdx); break;
          default: rec = load(0x7028, eval_a + evalIdx); break;
        }
        if (++evalPhase == 3) {
            evalPhase = 0;
            // Walk only a 4 KB window so the ping-pong pollutes a
            // quarter of the sets rather than all of them.
            evalIdx = (evalIdx + 8) % (4 * 1024);
        }
        return rec;
    }
    // Pattern library: 4 KB region, mostly resident.
    const Addr patterns = wl::region(8) + skew(0x300000, 2);
    return load(0x7030, patterns + rng.below(4 * 1024 / 8) * 8);
}

// GccLike ----------------------------------------------------------

GccLike::GccLike(std::size_t mem_refs, std::uint64_t seed,
                 std::size_t heap_bytes, std::size_t symtab_bytes)
    : SyntheticWorkload("gcc", mem_refs, 3, seed),
      heapBytes(heap_bytes), symtabBytes(symtab_bytes)
{
    restart();
}

void
GccLike::restart()
{
    frontier = 0;
    chasePtr = 0;
    optIdx = 0;
    burst = 0;
    mode = 0;
}

MemRecord
GccLike::genMem()
{
    const Addr heap = wl::region(9);
    const Addr symtab = wl::region(9) + skew(0x400000, 1);
    const Addr stack = wl::region(9) + skew(0x600000, 2);  // 4 KB hot
    // Insn list and its matching RTL templates collide mod the L1 and
    // are walked together during the optimize pass: A, B, A triples.
    const Addr insns = wl::region(9) + 0x800000;
    const Addr rtl = insns + 2 * l1Span;

    switch (mode) {
      case 0: {
        // Parse: stack traffic + allocation stores at the frontier.
        MemRecord rec;
        if (burst % 4 != 0) {
            rec = load(0x8000, stack + rng.below(4 * 1024 / 8) * 8);
        } else {
            rec = store(0x8004, heap + frontier);
            frontier = (frontier + 32) % heapBytes;
        }
        if (++burst >= 16) {
            burst = 0;
            mode = 1;
            chasePtr = rng.below(static_cast<std::uint32_t>(
                           heapBytes / 32)) * 32;
        }
        return rec;
      }
      case 1: {
        // Optimize: one A, B, A triple over colliding insn/RTL
        // regions per visit, walking a recurring 4 KB window (the
        // same IR is revisited by successive passes).
        Addr off = optIdx % (4 * 1024);
        MemRecord rec;
        switch (burst % 3) {
          case 0: rec = load(0x8010, insns + off); break;
          case 1: rec = load(0x8014, rtl + off); break;
          default: rec = load(0x8018, insns + off); break;
        }
        if (++burst >= 3) {
            burst = 0;
            mode = 2;
            optIdx += 64;
        }
        return rec;
      }
      default: {
        // Dataflow: short pointer chain + symbol probes + stack.
        MemRecord rec;
        if (burst % 3 == 0) {
            rec = load(0x8020, heap + chasePtr, true);
            chasePtr = (chasePtr + 40 + rng.below(4) * 24) % heapBytes;
        } else if (burst % 3 == 1) {
            rec = load(0x8024, symtab +
                       rng.below(static_cast<std::uint32_t>(
                           symtabBytes / 16)) * 16);
        } else {
            rec = load(0x8028, stack + rng.below(4 * 1024 / 8) * 8);
        }
        if (++burst >= 6) {
            burst = 0;
            mode = 0;
        }
        return rec;
      }
    }
}

// CompressLike -----------------------------------------------------

CompressLike::CompressLike(std::size_t mem_refs, std::uint64_t seed,
                           std::size_t table_bytes)
    : SyntheticWorkload("compress", mem_refs, 3, seed),
      tableBytes(table_bytes)
{
    restart();
}

void
CompressLike::restart()
{
    in = 0;
    out = 0;
    phase = 0;
    probeAddr = 0;
}

MemRecord
CompressLike::genMem()
{
    const Addr input = wl::region(10);
    const Addr table = wl::region(10) + skew(0x400000, 1);
    const Addr output = wl::region(10) + skew(0x800000, 2);
    const Addr codes = wl::region(10) + skew(0xc00000, 3);  // 4 KB hot

    MemRecord rec;
    switch (phase) {
      case 0:
        rec = load(0x9000, input + in);
        in = (in + 1) % 0x200000;
        break;
      case 1:
        // Hash with linear probing: collisions walk into the next
        // bucket (and frequently the next cache line).
        if (rng.chance(0.45)) {
            probeAddr = table +
                        (probeAddr - table + 64) % tableBytes;
        } else {
            probeAddr = table + rng.below(static_cast<std::uint32_t>(
                                    tableBytes / 8)) * 8;
        }
        rec = load(0x9010, probeAddr);
        break;
      case 2:
        rec = store(0x9014, probeAddr);
        break;
      case 3:
        rec = load(0x9018, probeAddr + 8);  // chain field, same line
        break;
      case 4:
      case 5:
        rec = load(0x901c, codes + rng.below(4 * 1024 / 8) * 8);
        break;
      default:
        rec = store(0x9020, output + out);
        out = (out + 1) % 0x200000;
        break;
    }
    phase = (phase + 1) % 7;
    return rec;
}

// LiLike -----------------------------------------------------------

LiLike::LiLike(std::size_t mem_refs, std::uint64_t seed,
               std::size_t heap_bytes, unsigned chase_len,
               unsigned sweep_every)
    : SyntheticWorkload("li", mem_refs, 3, seed),
      heapBytes(heap_bytes), chaseLen(chase_len),
      sweepEvery(sweep_every)
{
    restart();
}

void
LiLike::restart()
{
    cur = 0;
    chaseLeft = chaseLen;
    chases = 0;
    sweepLeft = 0;
    sweepCursor = 0;
}

Addr
LiLike::cellAddr(std::uint64_t idx) const
{
    // A fixed pseudo-random permutation of cell indices emulates a
    // heap shuffled by many allocations/collections.  80% of chases
    // land on a hot ~8 KB working set of cells that is *scattered*
    // through the heap (live cells interleave with garbage after
    // collections), so no 1 KB region is uniformly hot — the
    // heterogeneity that distinguishes per-line classification from
    // region-granularity schemes like the MAT.
    std::uint64_t x = idx * 2654435761ULL + 0x9e3779b9ULL;
    x ^= x >> 16;
    const std::uint64_t cells = heapBytes / 16;
    if (x % 10 < 8) {
        // Hot cells: 128-byte chunks scattered through the heap at
        // an odd-line stride (17 lines), so every 1 KB region mixes
        // hot and cold data and the chunks spread over all cache
        // sets.
        const std::uint64_t chunks = 48;
        std::uint64_t chunk = (x / 8) % chunks;
        std::uint64_t cell = x % 8;
        return wl::region(11) + chunk * (17 * 64) + cell * 16;
    }
    return wl::region(11) + (x % cells) * 16;
}

MemRecord
LiLike::genMem()
{
    const Addr env = wl::region(11) + skew(0x200000, 1);  // 4 KB hot

    if (sweepLeft > 0) {
        // GC sweep: sequential scan of the heap.
        MemRecord rec = load(0xa020, wl::region(11) + sweepCursor);
        sweepCursor = (sweepCursor + lineSize) % heapBytes;
        --sweepLeft;
        return rec;
    }

    // Interpreter: environment lookups dominate; every third access
    // chases a cons cell, whose address depends on the previous load.
    if (chaseLeft % 3 != 0) {
        --chaseLeft;
        if (chaseLeft == 0)
            chaseLeft = chaseLen;
        return load(0xa010, env + rng.below(4 * 1024 / 8) * 8);
    }

    MemRecord rec = load(0xa000, cellAddr(cur), true);
    cur = cur * 6364136223846793005ULL + 1442695040888963407ULL;
    if (--chaseLeft == 0) {
        chaseLeft = chaseLen;
        cur = rng.next();
        if (++chases % sweepEvery == 0)
            sweepLeft = heapBytes / lineSize / 8;
    }
    return rec;
}

// PerlLike ---------------------------------------------------------

PerlLike::PerlLike(std::size_t mem_refs, std::uint64_t seed,
                   std::size_t hash_bytes, std::size_t string_bytes)
    : SyntheticWorkload("perl", mem_refs, 3, seed),
      hashBytes(hash_bytes), stringBytes(string_bytes)
{
    restart();
}

void
PerlLike::restart()
{
    scan = 0;
    hashCursor = 0;
    phase = 0;
}

MemRecord
PerlLike::genMem()
{
    const Addr hash = wl::region(12);
    const Addr strings = wl::region(12) + skew(0x200000, 1);
    const Addr dispatch = wl::region(12) + skew(0x600000, 2);  // hot
    const Addr pad = wl::region(12) + skew(0x700000, 3);  // 2 KB hot

    MemRecord rec;
    switch (phase) {
      case 0:
      case 1:
        rec = load(0xb000, dispatch + rng.below(8 * 1024 / 8) * 8);
        break;
      case 2:
        // Hash probes with linear-probing spill-over.
        if (rng.chance(0.4)) {
            hashCursor = (hashCursor + 64) % hashBytes;
        } else {
            hashCursor = rng.below(static_cast<std::uint32_t>(
                             hashBytes / 16)) * 16;
        }
        rec = load(0xb010, hash + hashCursor);
        break;
      case 3:
      case 4:
        rec = load(0xb020, strings + scan);
        scan = (scan + 8) % stringBytes;
        break;
      case 5:
      case 6:
        rec = load(0xb024, pad + rng.below(2 * 1024 / 8) * 8);
        break;
      default:
        rec = store(0xb030, strings + scan);
        break;
    }
    phase = (phase + 1) % 8;
    return rec;
}

// M88ksimLike ------------------------------------------------------

M88ksimLike::M88ksimLike(std::size_t mem_refs, std::uint64_t seed,
                         std::size_t image_bytes)
    : SyntheticWorkload("m88ksim", mem_refs, 3, seed),
      imageBytes(image_bytes)
{
    restart();
}

void
M88ksimLike::restart()
{
    imgCursor = 0;
    burst = 0;
    phase = 0;
}

MemRecord
M88ksimLike::genMem()
{
    const Addr regs = wl::region(15) + skew(0, 1);       // 1 KB hot
    const Addr decode = wl::region(15) + skew(0x10000, 2);  // 4 KB
    const Addr image = wl::region(15) + skew(0x400000, 3);

    MemRecord rec;
    switch (phase) {
      case 0:
      case 1:
        rec = load(0xd000, regs + rng.below(1024 / 8) * 8);
        break;
      case 2:
        rec = store(0xd004, regs + rng.below(1024 / 8) * 8);
        break;
      case 3:
      case 4:
        rec = load(0xd010, decode + rng.below(4 * 1024 / 8) * 8);
        break;
      default:
        // Simulated program memory: short sequential bursts with
        // occasional jumps (the simulated PC).
        rec = load(0xd020, image + imgCursor);
        imgCursor += 4;
        if (++burst >= 24) {
            burst = 0;
            imgCursor = rng.below(static_cast<std::uint32_t>(
                            imageBytes / 64)) * 64;
        }
        imgCursor %= imageBytes;
        break;
    }
    phase = (phase + 1) % 7;
    return rec;
}

// IjpegLike --------------------------------------------------------

IjpegLike::IjpegLike(std::size_t mem_refs, std::uint64_t seed,
                     std::size_t image_rows, std::size_t image_cols)
    : SyntheticWorkload("ijpeg", mem_refs, 3, seed),
      imgRows(image_rows), imgCols(image_cols)
{
    restart();
}

void
IjpegLike::restart()
{
    blockRow = 0;
    blockCol = 0;
    px = 0;
    phase = 0;
    out = 0;
}

MemRecord
IjpegLike::genMem()
{
    const Addr image = wl::region(16) + skew(0, 1);
    const Addr quant = wl::region(16) + skew(0x400000, 2);  // 512 B
    const Addr output = wl::region(16) + skew(0x800000, 3);

    MemRecord rec;
    switch (phase) {
      case 0: {
        // One pixel of the current 8x8 block, row-major within the
        // block; rows are imgCols bytes apart.
        std::size_t py = px / 8, pxx = px % 8;
        Addr a = image + (blockRow * 8 + py) * imgCols +
                 blockCol * 8 + pxx;
        rec = load(0xe000, a);
        if (++px == 64) {
            px = 0;
            if (++blockCol >= imgCols / 8) {
                blockCol = 0;
                if (++blockRow >= imgRows / 8)
                    blockRow = 0;
            }
        }
        break;
      }
      case 1:
        rec = load(0xe010, quant + rng.below(512 / 8) * 8);
        break;
      default:
        rec = store(0xe020, output + out);
        out = (out + 2) % 0x100000;
        break;
    }
    phase = (phase + 1) % 3;
    return rec;
}

// VortexLike -------------------------------------------------------

VortexLike::VortexLike(std::size_t mem_refs, std::uint64_t seed,
                       std::size_t store_bytes, std::size_t meta_bytes)
    : SyntheticWorkload("vortex", mem_refs, 3, seed),
      storeBytes(store_bytes), metaBytes(meta_bytes)
{
    restart();
}

void
VortexLike::restart()
{
    phase = 0;
    objAddr = 0;
    metaIdx = 0;
}

MemRecord
VortexLike::genMem()
{
    const Addr objects = wl::region(13);
    // Metadata index and transaction log: bases equal mod 16 KB, so
    // entry i of each maps to the same L1 set — alternating accesses
    // ping-pong in a direct-mapped cache.
    const Addr meta = wl::region(13) + 0x800000;
    const Addr log = meta + 8 * l1Span;
    const Addr cache_region = wl::region(13) + skew(0xc00000, 1);

    // A "transaction" is 12 references; the metadata/log ping-pong
    // fires on one transaction in two, object reads on one in two.
    const bool ping_txn = (metaIdx / 8) % 2 == 0;

    MemRecord rec;
    switch (phase) {
      case 0:
        rec = load(0xc000, meta + metaIdx);           // index lookup
        break;
      case 1:
        rec = ping_txn ? store(0xc004, log + metaIdx) // log append
                       : load(0xc005, cache_region +
                              rng.below(8 * 1024 / 8) * 8);
        break;
      case 2:
        rec = load(0xc008, meta + metaIdx);           // index re-read
        metaIdx = (metaIdx + 8) % metaBytes;
        break;
      case 3:
        if (!ping_txn) {
            objAddr = objects +
                      rng.below(static_cast<std::uint32_t>(
                          storeBytes / 128)) * 128;
        }
        rec = load(0xc010, objAddr);                  // object header
        break;
      case 4:
        rec = load(0xc014, objAddr + 8);              // object field
        break;
      case 5:
      case 6:
      case 7:
      case 8:
      case 9:
        // Hot in-memory object cache, 8 KB.
        rec = load(0xc020, cache_region + rng.below(8 * 1024 / 8) * 8);
        break;
      case 10:
        rec = load(0xc024, objAddr + lineSize);       // object body
        break;
      default:
        rec = load(0xc028, objAddr + lineSize + 8);   // body, same line
        break;
    }
    phase = (phase + 1) % 12;
    return rec;
}

} // namespace ccm
