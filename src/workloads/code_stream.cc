#include "workloads/code_stream.hh"

#include "common/logging.hh"

namespace ccm
{

namespace
{

constexpr Addr codeBase = 0x00400000;   // classic text-segment base
constexpr Addr l1Span = 16 * 1024;

} // namespace

CodeStreamWorkload::CodeStreamWorkload(
    std::string label_, std::vector<CodeFunction> functions,
    std::vector<unsigned> call_sequence, std::size_t total_instrs)
    : label(std::move(label_)), funcs(std::move(functions)),
      seq(std::move(call_sequence)), total(total_instrs)
{
    if (funcs.empty() || seq.empty() || total == 0)
        ccm_fatal("code stream needs functions, a call sequence and "
                  "a length");
    for (unsigned idx : seq) {
        if (idx >= funcs.size())
            ccm_fatal("call sequence references function ", idx,
                      " of ", funcs.size());
    }
}

bool
CodeStreamWorkload::next(MemRecord &out)
{
    if (emitted >= total)
        return false;

    const CodeFunction &f = funcs[seq[seqPos]];
    Addr pc = f.entry + instrInFunc * 4;

    out = MemRecord{};
    out.pc = pc;
    out.addr = pc;              // an I-fetch of this instruction
    out.type = RecordType::Load;

    ++emitted;
    if (++instrInFunc >= f.instrs) {
        instrInFunc = 0;
        seqPos = (seqPos + 1) % seq.size();
    }
    return true;
}

std::size_t
CodeStreamWorkload::nextBatch(MemRecord *out, std::size_t n)
{
    std::size_t got = 0;
    while (got < n && emitted < total) {
        const CodeFunction &f = funcs[seq[seqPos]];
        Addr pc = f.entry + instrInFunc * 4;

        out[got] = MemRecord{};
        out[got].pc = pc;
        out[got].addr = pc;
        out[got].type = RecordType::Load;
        ++got;

        ++emitted;
        if (++instrInFunc >= f.instrs) {
            instrInFunc = 0;
            seqPos = (seqPos + 1) % seq.size();
        }
    }
    return got;
}

void
CodeStreamWorkload::reset()
{
    emitted = 0;
    seqPos = 0;
    instrInFunc = 0;
}

CodeStreamWorkload
CodeStreamWorkload::hotLoop(std::size_t instrs)
{
    // One 4KB loop body.
    return CodeStreamWorkload(
        "icache-hotloop", {{codeBase, 1024}}, {0}, instrs);
}

CodeStreamWorkload
CodeStreamWorkload::collidingCalls(std::size_t instrs)
{
    // Caller and callee whose bodies alias in a 16KB DM I-cache.
    // 96-instruction bodies (6 lines) keep the ping-pong within an
    // 8-entry victim buffer's reach.
    return CodeStreamWorkload(
        "icache-colliding",
        {{codeBase, 96}, {codeBase + 8 * l1Span, 96}}, {0, 1},
        instrs);
}

CodeStreamWorkload
CodeStreamWorkload::hugeCode(std::size_t instrs)
{
    // Four 16KB functions: 64KB of code, executed round-robin.
    std::vector<CodeFunction> fs;
    std::vector<unsigned> seq;
    for (unsigned i = 0; i < 4; ++i) {
        fs.push_back({codeBase + i * (l1Span + 13 * 64), 4096});
        seq.push_back(i);
    }
    return CodeStreamWorkload("icache-huge", std::move(fs),
                              std::move(seq), instrs);
}

CodeStreamWorkload
CodeStreamWorkload::mixed(std::size_t instrs)
{
    // A hot 2KB loop calling two colliding 1KB helpers and, less
    // often, a cold 24KB initialization-style routine.
    std::vector<CodeFunction> fs = {
        {codeBase, 512},                        // 0: hot loop body
        {codeBase + 0x100000, 64},              // 1: helper A
        {codeBase + 0x100000 + 4 * l1Span, 64},   // 2: helper B
        {codeBase + 0x200000 + 13 * 64, 6144},  // 3: cold tail, 24KB
    };
    std::vector<unsigned> seq = {0, 1, 0, 2, 0, 1, 0, 2,
                                 0, 1, 0, 2, 0, 3};
    return CodeStreamWorkload("icache-mixed", std::move(fs),
                              std::move(seq), instrs);
}

} // namespace ccm
