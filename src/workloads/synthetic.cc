#include "workloads/synthetic.hh"

#include "common/logging.hh"

namespace ccm
{

SyntheticWorkload::SyntheticWorkload(std::string label,
                                     std::size_t mem_refs,
                                     unsigned non_mem_per_mem,
                                     std::uint64_t seed)
    : rng(seed), label_(std::move(label)), memRefs_(mem_refs),
      gap(non_mem_per_mem), seed_(seed)
{
    if (mem_refs == 0)
        ccm_fatal("workload '", label_, "' needs mem_refs > 0");
}

bool
SyntheticWorkload::emitOne(MemRecord &out)
{
    if (memEmitted >= memRefs_)
        return false;

    if (sinceMem < gap) {
        ++sinceMem;
        out = MemRecord{};
        out.pc = 0x100000 + (fillerPc++ % 4096) * 4;
        out.type = RecordType::NonMem;
        return true;
    }

    sinceMem = 0;
    out = genMem();
    ++memEmitted;
    return true;
}

bool
SyntheticWorkload::next(MemRecord &out)
{
    return emitOne(out);
}

std::size_t
SyntheticWorkload::nextBatch(MemRecord *out, std::size_t n)
{
    // Tight generation loop: one virtual call per batch instead of
    // per record (genMem() stays virtual but runs only once per
    // gap+1 records).
    std::size_t got = 0;
    while (got < n && emitOne(out[got]))
        ++got;
    return got;
}

void
SyntheticWorkload::reset()
{
    rng = Pcg32(seed_);
    memEmitted = 0;
    sinceMem = 0;
    fillerPc = 0;
    restart();
}

} // namespace ccm
