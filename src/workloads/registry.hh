/**
 * @file
 * The workload registry: named factories for the full SPEC95-inspired
 * suite, so benches/examples can iterate "every workload" the way the
 * paper iterates its benchmark suite.
 */

#ifndef CCM_WORKLOADS_REGISTRY_HH
#define CCM_WORKLOADS_REGISTRY_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hh"
#include "trace/source.hh"

namespace ccm
{

/** Factory signature: (memory references, seed) -> generator. */
using WorkloadFactory = std::function<
    std::unique_ptr<TraceSource>(std::size_t mem_refs,
                                 std::uint64_t seed)>;

/** One registered workload. */
struct WorkloadSpec
{
    std::string name;
    bool floatingPoint;
    WorkloadFactory make;
};

/** The full suite, in canonical (paper-style) order: FP then INT. */
const std::vector<WorkloadSpec> &workloadSuite();

/**
 * Instantiate a workload by name.
 * @return nullptr when the name is unknown
 */
std::unique_ptr<TraceSource> makeWorkload(const std::string &name,
                                          std::size_t mem_refs,
                                          std::uint64_t seed);

/** Reject an unknown name or invalid parameters without dying. */
Status validateWorkloadRequest(const std::string &name,
                               std::size_t mem_refs);

/**
 * Validating factory: the generator, or a NotFound/BadConfig status
 * explaining why the request is unservable.
 */
Expected<std::unique_ptr<TraceSource>>
makeWorkloadChecked(const std::string &name, std::size_t mem_refs,
                    std::uint64_t seed);

/** Names of every workload in suite order. */
std::vector<std::string> workloadNames();

} // namespace ccm

#endif // CCM_WORKLOADS_REGISTRY_HH
