/**
 * @file
 * Floating-point SPEC95-inspired synthetic workloads.
 *
 * Each class reproduces the *structural* memory behaviour of the
 * benchmark it is named after — the array layouts and sweep patterns
 * that generate its characteristic conflict/capacity miss mix on a
 * 16 KB direct-mapped L1 — not its computation.  See DESIGN.md.
 *
 * Conventions: element size 8 B (double), arrays live in disjoint 64 MB
 * address regions, and "colliding" arrays have bases that are equal
 * modulo the 16 KB L1 size so equal indices map to the same cache set.
 * Subclass constructors call restart(); callers should still reset()
 * before use (all drivers in this repo do).
 */

#ifndef CCM_WORKLOADS_FP_WORKLOADS_HH
#define CCM_WORKLOADS_FP_WORKLOADS_HH

#include "workloads/synthetic.hh"

namespace ccm
{

namespace wl
{
/** Base address of workload region @p k (64 MB apart). */
constexpr Addr
region(unsigned k)
{
    return 0x40000000ULL + static_cast<Addr>(k) * 0x04000000ULL;
}
} // namespace wl

/**
 * tomcatv: vectorized mesh generation.  Seven 2 MB arrays; two of them
 * deliberately collide modulo the L1 size and are accessed
 * alternately per grid point (pairwise ping-pong the MCT can catch),
 * while row-sized stencil reuse distances generate capacity misses.
 * The paper reports a 38% L1 miss rate for tomcatv.
 */
class TomcatvLike : public SyntheticWorkload
{
  public:
    TomcatvLike(std::size_t mem_refs, std::uint64_t seed,
                std::size_t rows = 128, std::size_t cols = 2048,
                unsigned ping_sweeps = 2);

  protected:
    MemRecord genMem() override;
    void restart() override;

  private:
    std::size_t rows_, cols_;
    unsigned pingSweeps;
    std::size_t r = 1, c = 1;
    unsigned phase = 0;
    unsigned sweep = 0;      ///< which ping sweep of the row
    bool tailMode = false;   ///< ping sweeps done; streaming arrays
};

/**
 * swim: shallow-water streaming.  Four large arrays swept with unit
 * stride, bases offset by odd line counts so they do not collide:
 * almost pure capacity misses, ideal next-line prefetch territory.
 */
class SwimLike : public SyntheticWorkload
{
  public:
    SwimLike(std::size_t mem_refs, std::uint64_t seed,
             std::size_t elems = 512 * 1024);

  protected:
    MemRecord genMem() override;
    void restart() override;

  private:
    std::size_t elems_;
    std::size_t i = 0;
    unsigned phase = 0;
};

/**
 * mgrid: 3D multigrid.  Unit-stride smoothing phases alternate with
 * plane-stride (32 KB jump) phases whose consecutive accesses collide
 * pairwise in the L1 — a clean source of conflict near-misses.
 */
class MgridLike : public SyntheticWorkload
{
  public:
    MgridLike(std::size_t mem_refs, std::uint64_t seed,
              std::size_t dim = 64);

  protected:
    MemRecord genMem() override;
    void restart() override;

  private:
    std::size_t dim_;
    std::size_t idx = 0;
    unsigned phase = 0;       ///< 0 = unit stride, 1 = plane stride
    std::size_t phaseLeft = 0;
    std::size_t planeCursor = 0;
};

/**
 * applu: blocked SSOR solver.  Five arrays, two colliding mod L1,
 * processed in 4 KB blocks with multiple passes per block: in-block
 * reuse hits, inter-array conflicts, block-boundary capacity misses.
 */
class AppluLike : public SyntheticWorkload
{
  public:
    AppluLike(std::size_t mem_refs, std::uint64_t seed,
              std::size_t elems = 256 * 1024, std::size_t block = 256,
              unsigned passes = 6);

  protected:
    MemRecord genMem() override;
    void restart() override;

  private:
    std::size_t elems_, block_;
    unsigned passes_;
    std::size_t blockStart = 0;
    std::size_t cursor = 0;
    unsigned pass = 0;
    unsigned arr = 0;
};

/**
 * turb3d: FFT-style butterflies.  Pass strides grow by powers of two;
 * once the stride is a multiple of the 16 KB L1 size the two butterfly
 * operands ping-pong in one set (textbook conflict misses), while the
 * small-stride passes stream (capacity).
 */
class Turb3dLike : public SyntheticWorkload
{
  public:
    Turb3dLike(std::size_t mem_refs, std::uint64_t seed,
               std::size_t elems = 256 * 1024);

  protected:
    MemRecord genMem() override;
    void restart() override;

  private:
    std::size_t elems_;
    std::size_t strideElems = 1;
    std::size_t i = 0;
    unsigned phase = 0;   ///< 0: load x[i], 1: load x[i+s], 2: store x[i]
};

/**
 * su2cor: quantum chromodynamics.  Blocked matrix-vector products: a
 * streaming gauge-field matrix (capacity misses) against a
 * cache-resident vector block (hits), plus a pair of colliding
 * lattice arrays ping-ponged during the update phase.
 */
class Su2corLike : public SyntheticWorkload
{
  public:
    Su2corLike(std::size_t mem_refs, std::uint64_t seed,
               std::size_t matrix_elems = 256 * 1024,
               std::size_t vec_block = 512);

  protected:
    MemRecord genMem() override;
    void restart() override;

  private:
    std::size_t matrixElems, vecBlock;
    std::size_t mi = 0;       ///< matrix cursor
    std::size_t vi = 0;       ///< vector cursor within the block
    unsigned phase = 0;
    std::size_t updateLeft = 0;
    std::size_t ui = 0;
};

/**
 * hydro2d: hydrodynamics stencil.  Row sweeps over several skewed 2D
 * arrays: capacity-dominated with row-distance reuse, the
 * low-conflict FP counterpoint to tomcatv.
 */
class Hydro2dLike : public SyntheticWorkload
{
  public:
    Hydro2dLike(std::size_t mem_refs, std::uint64_t seed,
                std::size_t rows = 128, std::size_t cols = 1024);

  protected:
    MemRecord genMem() override;
    void restart() override;

  private:
    std::size_t rows_, cols_;
    std::size_t r = 1, c = 1;
    unsigned phase = 0;
};

/**
 * wave5: particle-in-cell.  Sequential particle records drive random
 * gather/scatter into a grid far larger than the cache — dominated by
 * capacity misses with poor spatial locality.
 */
class Wave5Like : public SyntheticWorkload
{
  public:
    Wave5Like(std::size_t mem_refs, std::uint64_t seed,
              std::size_t grid_bytes = 1024 * 1024,
              std::size_t particles = 128 * 1024);

  protected:
    MemRecord genMem() override;
    void restart() override;

  private:
    std::size_t gridBytes, particles_;
    std::size_t p = 0;
    unsigned phase = 0;
    Addr gridAddr = 0;
};

} // namespace ccm

#endif // CCM_WORKLOADS_FP_WORKLOADS_HH
