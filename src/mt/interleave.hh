/**
 * @file
 * Round-robin interleaving of several traces — the instruction
 * streams of threads sharing a cache on a multithreaded processor
 * (paper §5.6, "Multithreaded architectures").
 */

#ifndef CCM_MT_INTERLEAVE_HH
#define CCM_MT_INTERLEAVE_HH

#include <memory>
#include <string>
#include <vector>

#include "trace/source.hh"

namespace ccm
{

/**
 * Interleaves N child traces, @c granularity records at a time,
 * until every child is exhausted.  The id of the thread that produced
 * the most recent record is exposed so consumers can attribute
 * misses.
 */
class InterleavedTrace : public TraceSource
{
  public:
    /**
     * @param sources child traces (ownership shared with caller)
     * @param granularity consecutive records taken per thread turn
     */
    InterleavedTrace(std::vector<TraceSource *> sources,
                     unsigned granularity = 4);

    bool next(MemRecord &out) override;
    void reset() override;
    std::string name() const override;

    /** Thread index of the record most recently returned. */
    unsigned lastThread() const { return lastProducer; }

    unsigned threads() const { return unsigned(children.size()); }

  private:
    void advanceTurn();

    std::vector<TraceSource *> children;
    std::vector<bool> exhausted;
    unsigned gran;
    unsigned current = 0;
    unsigned taken = 0;
    unsigned lastProducer = 0;
};

} // namespace ccm

#endif // CCM_MT_INTERLEAVE_HH
