#include "mt/shared_cache.hh"

namespace ccm
{

SharedCacheStudy::SharedCacheStudy(std::size_t cache_bytes,
                                   unsigned assoc,
                                   unsigned line_bytes)
    : geom(cache_bytes, assoc, line_bytes)
{
}

SharedCacheResult
SharedCacheStudy::run(InterleavedTrace &trace)
{
    Cache cache(geom);
    MissClassificationTable mct(geom.numSets());
    // Which thread forced the most recent eviction in each set
    // (parallels the MCT entry).
    std::vector<unsigned> evictorThread(geom.numSets(), 0);

    SharedCacheResult res;
    res.perThread.assign(trace.threads(), ThreadShareStats{});

    trace.reset();
    MemRecord r;
    while (trace.next(r)) {
        if (!r.isMem())
            continue;
        unsigned tid = trace.lastThread();
        ThreadShareStats &ts = res.perThread[tid];
        ++ts.references;
        ++res.references;

        const ByteAddr addr = r.dataAddr();
        if (cache.access(addr, r.isStore()))
            continue;

        ++ts.misses;
        ++res.misses;
        const SetIndex set = geom.setOf(addr);
        const Tag tag = geom.tagOf(addr);

        bool conflict = mct.isConflictMiss(set, tag);
        if (conflict) {
            ++ts.conflictMisses;
            if (evictorThread[set.value()] != tid) {
                ++ts.crossThreadConflicts;
                ++res.crossThreadConflicts;
            }
        }

        FillResult ev = cache.fill(addr, conflict, r.isStore());
        if (ev.valid) {
            mct.recordEviction(set, geom.tagOf(ev.lineAddr));
            // Remember who forced the line out: when its owner later
            // re-misses on it (the MCT match), a different evictor
            // marks the conflict as inter-thread interference.
            evictorThread[set.value()] = tid;
        }
    }
    return res;
}

} // namespace ccm
