/**
 * @file
 * Shared-cache conflict study for multithreaded processors
 * (paper §5.6): threads dynamically sharing an L1 "are particularly
 * prone to high levels of conflict ... this problem cannot be solved
 * with software techniques because the conflicts are produced by
 * competition with other threads."
 *
 * The study runs an interleaved multi-thread trace through a shared
 * cache + MCT, attributing each conflict miss to the thread whose
 * line the matching evicted tag belonged to.  Cross-thread conflict
 * misses are exactly the co-scheduling signal the paper proposes:
 * "Jobs which produce an inordinate number of conflict misses when
 * scheduled together can be identified as bad candidates for
 * co-scheduling in the future."
 */

#ifndef CCM_MT_SHARED_CACHE_HH
#define CCM_MT_SHARED_CACHE_HH

#include <vector>

#include "cache/cache.hh"
#include "common/stats.hh"
#include "mct/mct.hh"
#include "mt/interleave.hh"

namespace ccm
{

/** Per-thread tallies from a shared-cache run. */
struct ThreadShareStats
{
    Count references = 0;
    Count misses = 0;
    Count conflictMisses = 0;
    /** Conflict misses whose matching evicted line belonged to
     *  another thread: inter-thread interference. */
    Count crossThreadConflicts = 0;

    double missRate() const { return safeRatio(misses, references); }
    double
    crossConflictRate() const
    {
        return safeRatio(crossThreadConflicts, references);
    }
};

/** Whole-run results. */
struct SharedCacheResult
{
    std::vector<ThreadShareStats> perThread;
    Count references = 0;
    Count misses = 0;
    Count crossThreadConflicts = 0;

    double missRate() const { return safeRatio(misses, references); }

    /**
     * The paper's co-scheduling badness signal: the fraction of all
     * references that miss due to cross-thread conflicts.
     */
    double
    coScheduleBadness() const
    {
        return safeRatio(crossThreadConflicts, references);
    }
};

/** Functional shared-L1 conflict-attribution study. */
class SharedCacheStudy
{
  public:
    /**
     * @param cache_bytes shared L1 size
     * @param assoc shared L1 associativity
     * @param line_bytes line size
     */
    SharedCacheStudy(std::size_t cache_bytes = 16 * 1024,
                     unsigned assoc = 1, unsigned line_bytes = 64);

    /** Run @p trace (reset first) to completion. */
    SharedCacheResult run(InterleavedTrace &trace);

  private:
    CacheGeometry geom;
};

} // namespace ccm

#endif // CCM_MT_SHARED_CACHE_HH
