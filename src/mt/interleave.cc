#include "mt/interleave.hh"

#include "common/logging.hh"

namespace ccm
{

InterleavedTrace::InterleavedTrace(std::vector<TraceSource *> sources,
                                   unsigned granularity)
    : children(std::move(sources)),
      exhausted(children.size(), false),
      gran(granularity)
{
    if (children.empty())
        ccm_fatal("InterleavedTrace needs at least one child");
    if (granularity == 0)
        ccm_fatal("interleave granularity must be >= 1");
}

void
InterleavedTrace::advanceTurn()
{
    taken = 0;
    for (std::size_t i = 1; i <= children.size(); ++i) {
        unsigned cand =
            static_cast<unsigned>((current + i) % children.size());
        if (!exhausted[cand]) {
            current = cand;
            return;
        }
    }
    // All exhausted: current stays; next() will return false.
}

bool
InterleavedTrace::next(MemRecord &out)
{
    for (std::size_t attempts = 0; attempts <= children.size();
         ++attempts) {
        if (exhausted[current]) {
            advanceTurn();
            if (exhausted[current])
                return false;
        }
        if (children[current]->next(out)) {
            lastProducer = current;
            if (++taken >= gran)
                advanceTurn();
            return true;
        }
        exhausted[current] = true;
    }
    return false;
}

void
InterleavedTrace::reset()
{
    for (auto *c : children)
        c->reset();
    std::fill(exhausted.begin(), exhausted.end(), false);
    current = 0;
    taken = 0;
    lastProducer = 0;
}

std::string
InterleavedTrace::name() const
{
    std::string n;
    for (std::size_t i = 0; i < children.size(); ++i) {
        if (i)
            n += "+";
        n += children[i]->name();
    }
    return n;
}

} // namespace ccm
