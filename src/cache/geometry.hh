/**
 * @file
 * Cache geometry: size/associativity/line-size plus the derived
 * address decomposition (offset | set index | tag) used by the cache,
 * the MCT and the pseudo-associative rehash function.
 */

#ifndef CCM_CACHE_GEOMETRY_HH
#define CCM_CACHE_GEOMETRY_HH

#include <cstddef>
#include <string>

#include "common/status.hh"
#include "common/types.hh"

namespace ccm
{

/**
 * Immutable description of a cache's shape.  All fields must be powers
 * of two; construction validates and precomputes shift/mask values so
 * the hot-path address math is two shifts and a mask.
 */
class CacheGeometry
{
  public:
    /**
     * @param size_bytes total capacity in bytes
     * @param associativity ways per set (>= 1)
     * @param line_bytes cache line size in bytes
     *
     * Fatal on invalid parameters; use validate()/make() to reject
     * a bad configuration without dying.
     */
    CacheGeometry(std::size_t size_bytes, unsigned associativity,
                  unsigned line_bytes);

    /** Check the parameters the constructor would reject. */
    static Status validate(std::size_t size_bytes,
                           unsigned associativity,
                           unsigned line_bytes);

    /** Validating factory: a geometry, or why there isn't one. */
    static Expected<CacheGeometry> make(std::size_t size_bytes,
                                        unsigned associativity,
                                        unsigned line_bytes);

    std::size_t sizeBytes() const { return size_; }
    unsigned assoc() const { return assoc_; }
    unsigned lineBytes() const { return line_; }
    std::size_t numSets() const { return sets_; }
    std::size_t numLines() const { return sets_ * assoc_; }

    unsigned offsetBits() const { return offBits; }
    unsigned setBits() const { return idxBits; }

    /** Line-aligned address (offset bits cleared). */
    Addr lineAddr(Addr a) const { return a & ~Addr{line_ - 1}; }

    /** Set index of @p a. */
    std::size_t
    setIndex(Addr a) const
    {
        return static_cast<std::size_t>((a >> offBits) & idxMask);
    }

    /** Full tag of @p a (address above offset+index bits). */
    Addr tag(Addr a) const { return a >> (offBits + idxBits); }

    /** Rebuild a line address from (tag, set) — inverse of the above. */
    Addr
    buildLineAddr(Addr tag_v, std::size_t set) const
    {
        return (tag_v << (offBits + idxBits)) |
               (static_cast<Addr>(set) << offBits);
    }

    /** "16KB/1way/64B" style description. */
    std::string describe() const;

  private:
    std::size_t size_;
    unsigned assoc_;
    unsigned line_;
    std::size_t sets_;
    unsigned offBits;
    unsigned idxBits;
    Addr idxMask;
};

} // namespace ccm

#endif // CCM_CACHE_GEOMETRY_HH
