/**
 * @file
 * Cache geometry: size/associativity/line-size plus the derived
 * address decomposition (offset | set index | tag) used by the cache,
 * the MCT and the pseudo-associative rehash function.
 *
 * The decomposition helpers are the only blessed way to move between
 * address domains (see common/addr_types.hh): byte address -> line
 * address -> (set index, tag) -> line address.  Ad-hoc shifting and
 * masking at call sites is exactly the bug class the strong types
 * exist to kill.
 */

#ifndef CCM_CACHE_GEOMETRY_HH
#define CCM_CACHE_GEOMETRY_HH

#include <cstddef>
#include <string>

#include "common/addr_types.hh"
#include "common/status.hh"
#include "common/types.hh"

namespace ccm
{

/**
 * Immutable description of a cache's shape.  All fields must be powers
 * of two; construction validates and precomputes shift/mask values so
 * the hot-path address math is two shifts and a mask.
 */
class CacheGeometry
{
  public:
    /**
     * @param size_bytes total capacity in bytes
     * @param associativity ways per set (>= 1)
     * @param line_bytes cache line size in bytes
     *
     * Fatal on invalid parameters; use validate()/make() to reject
     * a bad configuration without dying.
     */
    CacheGeometry(std::size_t size_bytes, unsigned associativity,
                  unsigned line_bytes);

    /** Check the parameters the constructor would reject. */
    static Status validate(std::size_t size_bytes,
                           unsigned associativity,
                           unsigned line_bytes);

    /** Validating factory: a geometry, or why there isn't one. */
    static Expected<CacheGeometry> make(std::size_t size_bytes,
                                        unsigned associativity,
                                        unsigned line_bytes);

    std::size_t sizeBytes() const { return size_; }
    unsigned assoc() const { return assoc_; }
    unsigned lineBytes() const { return line_; }
    std::size_t numSets() const { return sets_; }
    std::size_t numLines() const { return sets_ * assoc_; }

    unsigned offsetBits() const { return offBits; }
    unsigned setBits() const { return idxBits; }

    /** Line-aligned address of @p a (offset bits cleared). */
    LineAddr
    lineOf(ByteAddr a) const
    {
        return LineAddr{a.value() & ~Addr{line_ - 1u}};
    }

    /** Set index of the line containing @p a. */
    SetIndex
    setOf(ByteAddr a) const
    {
        return SetIndex{
            static_cast<std::size_t>((a.value() >> offBits) & idxMask)};
    }

    /** Set index of line @p a. */
    SetIndex
    setOf(LineAddr a) const
    {
        return SetIndex{
            static_cast<std::size_t>((a.value() >> offBits) & idxMask)};
    }

    /** Full tag of @p a (address above offset+index bits). */
    Tag
    tagOf(ByteAddr a) const
    {
        return Tag{a.value() >> (offBits + idxBits)};
    }

    /** Full tag of line @p a. */
    Tag
    tagOf(LineAddr a) const
    {
        return Tag{a.value() >> (offBits + idxBits)};
    }

    /**
     * Rebuild a line address from (tag, set) — the inverse of
     * tagOf/setOf, used by eviction paths, the pseudo-associative
     * rehash and the MCT: recompose(tagOf(a), setOf(a)) == lineOf(a).
     */
    LineAddr
    recompose(Tag tag, SetIndex set) const
    {
        return LineAddr{(tag.value() << (offBits + idxBits)) |
                        (static_cast<Addr>(set.value()) << offBits)};
    }

    /** The line after @p a (next-line prefetch target). */
    LineAddr
    nextLineOf(LineAddr a) const
    {
        return LineAddr{a.value() + line_};
    }

    /** "16KB/1way/64B" style description. */
    std::string describe() const;

  private:
    std::size_t size_;
    unsigned assoc_;
    unsigned line_;
    std::size_t sets_;
    unsigned offBits;
    unsigned idxBits;
    Addr idxMask;
};

} // namespace ccm

#endif // CCM_CACHE_GEOMETRY_HH
