/**
 * @file
 * A functional set-associative cache with pluggable replacement, line
 * conflict bits, and explicit victim-selection/fill hooks.
 *
 * The cache is purely functional (tags only; no data payloads — the
 * simulation never needs values).  Timing lives in the hierarchy
 * layer, which decides *when* to call these methods.
 */

#ifndef CCM_CACHE_CACHE_HH
#define CCM_CACHE_CACHE_HH

#include <optional>
#include <vector>

#include "cache/geometry.hh"
#include "cache/line.hh"
#include "common/stats.hh"

namespace ccm
{

/** Replacement policy selector. */
enum class ReplPolicy
{
    Lru,
    Fifo,
    Random,
};

/** What a fill pushed out of the cache. */
struct EvictedLine
{
    bool valid = false;      ///< false when the fill used an empty way
    Addr lineAddr = 0;       ///< line-aligned address of the victim
    bool dirty = false;
    bool conflictBit = false;
};

/** Result of a fill: the victim (if any). */
using FillResult = EvictedLine;

/** Functional set-associative cache. */
class Cache
{
  public:
    Cache(const CacheGeometry &geometry, ReplPolicy policy = ReplPolicy::Lru,
          std::uint32_t random_seed = 1);

    const CacheGeometry &geometry() const { return geom; }

    /**
     * Look up @p addr without disturbing replacement state.
     * @return the line, or nullptr on miss
     */
    const CacheLine *probe(Addr addr) const;

    /**
     * Access @p addr: on a hit, update replacement state and the dirty
     * bit (for stores).
     *
     * @retval true hit
     * @retval false miss — caller decides whether/where to fill
     */
    bool access(Addr addr, bool is_store);

    /**
     * The line a fill of @p addr would evict (replacement choice), or
     * nullptr if the set still has an invalid way.  Does not modify
     * any state; a subsequent fill() makes the same choice.
     */
    const CacheLine *victimFor(Addr addr) const;

    /**
     * Install the line containing @p addr, evicting victimFor(addr).
     *
     * @param addr address being filled (any byte in the line)
     * @param conflict_bit value for the new line's conflict bit
     * @param is_store whether the triggering access was a store
     * @return description of the evicted line (valid=false if none)
     */
    FillResult fill(Addr addr, bool conflict_bit, bool is_store);

    /**
     * Install into an explicit way of the set (used by the
     * pseudo-associative cache, which makes its own victim choice).
     */
    FillResult fillWay(Addr addr, unsigned way, bool conflict_bit,
                       bool is_store);

    /** Remove the line containing @p addr; @return it existed. */
    bool invalidate(Addr addr);

    /** Direct set access for policy code (pseudo-assoc, tests). */
    CacheLine &lineAt(std::size_t set, unsigned way);
    const CacheLine &lineAt(std::size_t set, unsigned way) const;

    /** Mutable lookup (used to flip conflict bits on resident lines). */
    CacheLine *findLine(Addr addr);

    /** Line-aligned address of the line in (set, way). */
    Addr lineAddrAt(std::size_t set, unsigned way) const;

    /** Number of valid lines currently resident. */
    std::size_t occupancy() const;

    /** Clear all lines and statistics. */
    void clear();

    // Statistics ----------------------------------------------------
    Count hits() const { return nHits; }
    Count misses() const { return nMisses; }
    Count accesses() const { return nHits + nMisses; }
    Count fills() const { return nFills; }
    Count evictions() const { return nEvictions; }
    double missRate() const { return safeRatio(nMisses, accesses()); }

  private:
    CacheLine *lookupMutable(Addr addr);
    unsigned chooseVictimWay(std::size_t set) const;

    CacheGeometry geom;
    ReplPolicy repl;
    std::vector<CacheLine> lines;   ///< sets_ * assoc_, set-major
    Count tick = 0;                 ///< logical access clock for LRU/FIFO
    mutable std::uint64_t rngState; ///< for ReplPolicy::Random

    Count nHits = 0;
    Count nMisses = 0;
    Count nFills = 0;
    Count nEvictions = 0;
};

} // namespace ccm

#endif // CCM_CACHE_CACHE_HH
