/**
 * @file
 * A functional set-associative cache with pluggable replacement, line
 * conflict bits, and explicit victim-selection/fill hooks.
 *
 * The cache is purely functional (tags only; no data payloads — the
 * simulation never needs values).  Timing lives in the hierarchy
 * layer, which decides *when* to call these methods.
 */

#ifndef CCM_CACHE_CACHE_HH
#define CCM_CACHE_CACHE_HH

#include <optional>
#include <vector>

#include "cache/geometry.hh"
#include "cache/line.hh"
#include "common/stats.hh"

namespace ccm
{

/** Replacement policy selector. */
enum class ReplPolicy
{
    Lru,
    Fifo,
    Random,
};

/** What a fill pushed out of the cache. */
struct EvictedLine
{
    bool valid = false;      ///< false when the fill used an empty way
    LineAddr lineAddr{};     ///< line-aligned address of the victim
    bool dirty = false;
    bool conflictBit = false;
};

/** Result of a fill: the victim (if any). */
using FillResult = EvictedLine;

/** Functional set-associative cache. */
class Cache
{
  public:
    Cache(const CacheGeometry &geometry, ReplPolicy policy = ReplPolicy::Lru,
          std::uint32_t random_seed = 1);

    const CacheGeometry &geometry() const { return geom; }

    /**
     * Look up @p addr without disturbing replacement state.
     * @return the line, or nullptr on miss
     */
    const CacheLine *probe(ByteAddr addr) const;

    /**
     * Access @p addr: on a hit, update replacement state and the dirty
     * bit (for stores).
     *
     * @retval true hit
     * @retval false miss — caller decides whether/where to fill
     */
    bool access(ByteAddr addr, bool is_store);

    /**
     * The line a fill of @p addr would evict (replacement choice), or
     * nullptr if the set still has an invalid way.  Does not modify
     * any state; a subsequent fill() makes the same choice.
     */
    const CacheLine *victimFor(ByteAddr addr) const;

    /**
     * Install the line containing @p addr, evicting victimFor(addr).
     *
     * @param addr address being filled (any byte in the line)
     * @param conflict_bit value for the new line's conflict bit
     * @param is_store whether the triggering access was a store
     * @return description of the evicted line (valid=false if none)
     */
    FillResult fill(ByteAddr addr, bool conflict_bit, bool is_store);

    /**
     * Install into an explicit way of the set (used by the
     * pseudo-associative cache, which makes its own victim choice).
     */
    FillResult fillWay(ByteAddr addr, WayIndex way, bool conflict_bit,
                       bool is_store);

    /** Remove the line containing @p addr; @return it existed. */
    bool invalidate(ByteAddr addr);

    /** Direct set access for policy code (pseudo-assoc, tests). */
    CacheLine &lineAt(SetIndex set, WayIndex way);
    const CacheLine &lineAt(SetIndex set, WayIndex way) const;

    /** Mutable lookup (used to flip conflict bits on resident lines). */
    CacheLine *findLine(ByteAddr addr);

    /** Line-aligned address of the line in (set, way). */
    LineAddr lineAddrAt(SetIndex set, WayIndex way) const;

    /** Number of valid lines currently resident (O(1)). */
    std::size_t occupancy() const { return nResident; }

    /** Clear all lines and statistics. */
    void clear();

    // Statistics ----------------------------------------------------
    Count hits() const { return nHits; }
    Count misses() const { return nMisses; }
    Count accesses() const { return nHits + nMisses; }
    Count fills() const { return nFills; }
    Count evictions() const { return nEvictions; }
    double missRate() const { return safeRatio(nMisses, accesses()); }

    /** Misses observed by access() in @p set. */
    Count
    setMisses(SetIndex set) const
    {
        return setMisses_[set.value()];
    }

    /** Evictions (valid-line replacements) in @p set. */
    Count
    setEvictions(SetIndex set) const
    {
        return setEvictions_[set.value()];
    }

    /** Whole per-set miss histogram, indexed by set. */
    const std::vector<Count> &setMissHistogram() const
    {
        return setMisses_;
    }

    /** Whole per-set eviction histogram, indexed by set. */
    const std::vector<Count> &setEvictionHistogram() const
    {
        return setEvictions_;
    }

  private:
    CacheLine *lookupMutable(ByteAddr addr);
    WayIndex chooseVictimWay(SetIndex set) const;

    /** Flat index of (set, way) in the set-major line array. */
    std::size_t
    slotOf(SetIndex set, WayIndex way) const
    {
        return set.value() * geom.assoc() + way.value();
    }

    CacheGeometry geom;
    ReplPolicy repl;
    std::vector<CacheLine> lines;   ///< sets_ * assoc_, set-major
    Count tick = 0;                 ///< logical access clock for LRU/FIFO
    mutable std::uint64_t rngState; ///< for ReplPolicy::Random
    Count nHits = 0;
    Count nMisses = 0;
    Count nFills = 0;
    Count nEvictions = 0;
    /** Valid-line count, maintained by fillWay/invalidate/clear. */
    std::size_t nResident = 0;
    std::vector<Count> setMisses_;    ///< per-set miss histogram
    std::vector<Count> setEvictions_; ///< per-set eviction histogram
};

} // namespace ccm

#endif // CCM_CACHE_CACHE_HH
