#include "cache/geometry.hh"

#include <sstream>

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace ccm
{

Status
CacheGeometry::validate(std::size_t size_bytes,
                        unsigned associativity, unsigned line_bytes)
{
    if (!isPowerOfTwo(size_bytes)) {
        return Status::badConfig(
            "cache size must be a power of two: ", size_bytes);
    }
    if (!isPowerOfTwo(line_bytes)) {
        return Status::badConfig(
            "line size must be a power of two: ", line_bytes);
    }
    if (associativity == 0)
        return Status::badConfig("associativity must be >= 1");
    if (size_bytes % (static_cast<std::size_t>(line_bytes) *
                      associativity) != 0) {
        return Status::badConfig("cache size ", size_bytes,
                                 " not divisible by line*assoc");
    }
    std::size_t sets = size_bytes / line_bytes / associativity;
    if (!isPowerOfTwo(sets)) {
        return Status::badConfig(
            "number of sets must be a power of two: ", sets);
    }
    return Status::ok();
}

Expected<CacheGeometry>
CacheGeometry::make(std::size_t size_bytes, unsigned associativity,
                    unsigned line_bytes)
{
    Status s = validate(size_bytes, associativity, line_bytes);
    if (!s.isOk())
        return s;
    return CacheGeometry(size_bytes, associativity, line_bytes);
}

CacheGeometry::CacheGeometry(std::size_t size_bytes,
                             unsigned associativity,
                             unsigned line_bytes)
    : size_(size_bytes), assoc_(associativity), line_(line_bytes)
{
    fatalIfError(validate(size_bytes, associativity, line_bytes));

    sets_ = size_bytes / line_bytes / associativity;
    offBits = floorLog2(line_bytes);
    idxBits = floorLog2(sets_);
    idxMask = lowMask(idxBits);
}

std::string
CacheGeometry::describe() const
{
    std::ostringstream os;
    if (size_ >= 1024 && size_ % 1024 == 0)
        os << (size_ / 1024) << "KB";
    else
        os << size_ << "B";
    os << "/" << assoc_ << "way/" << line_ << "B";
    return os.str();
}

} // namespace ccm
