/**
 * @file
 * Per-line cache state, including the paper's one-bit conflict
 * annotation that preserves a line's miss classification while it
 * resides in the cache (paper §3).
 */

#ifndef CCM_CACHE_LINE_HH
#define CCM_CACHE_LINE_HH

#include "common/addr_types.hh"
#include "common/types.hh"

namespace ccm
{

/** State of one cache line frame. */
struct CacheLine
{
    Tag tag{};
    bool valid = false;
    bool dirty = false;
    /**
     * Conflict bit (paper §3): set iff this line was brought into the
     * cache by a miss the MCT classified as a conflict miss.
     */
    bool conflictBit = false;
    /** Global timestamp of last access; drives LRU. */
    Count lastUse = 0;
    /** Global timestamp of insertion; drives FIFO. */
    Count insertTime = 0;
};

} // namespace ccm

#endif // CCM_CACHE_LINE_HH
