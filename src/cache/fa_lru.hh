/**
 * @file
 * A fully-associative LRU cache over line addresses.
 *
 * Two roles in this repo:
 *  - the oracle in the classic (Hill) conflict/capacity classifier: a
 *    miss is a conflict miss iff a fully-associative LRU cache of the
 *    same capacity would have hit;
 *  - the tag store of small fully-associative assist structures.
 *
 * This sits on the hottest loop in the repo (one touch-or-insert per
 * classified reference), so it is deliberately flat: an intrusive
 * doubly-linked LRU list threaded through a contiguous node array by
 * 32-bit indices, found through an open-addressed hash table.  No
 * per-operation allocation ever happens after construction, nodes are
 * recycled in place, and every operation is O(1) expected.
 *
 * The table hashes with a Fibonacci multiplier before taking the
 * power-of-two slot index, so the line-aligned, power-of-two-strided
 * addresses the workload generators emit (all sharing their low and
 * middle bits) spread over the whole table instead of clustering the
 * way identity hashing would.
 */

#ifndef CCM_CACHE_FA_LRU_HH
#define CCM_CACHE_FA_LRU_HH

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/addr_types.hh"
#include "common/types.hh"

namespace ccm
{

/** Fully-associative LRU set of line addresses. */
class FaLru
{
  public:
    /** @param num_lines capacity in cache lines (> 0) */
    explicit FaLru(std::size_t num_lines);

    /** @return true iff @p line is resident (no LRU update). */
    bool contains(LineAddr line) const;

    /**
     * Access @p line: on hit, move to MRU.
     * @retval true hit
     */
    bool touch(LineAddr line);

    /**
     * Insert @p line (must not be resident) as MRU.
     * @return the evicted LRU line, if the cache was full
     */
    std::optional<LineAddr> insert(LineAddr line);

    /**
     * Combined access: touch @p line if resident, insert it (evicting
     * the LRU line if full) otherwise.  Equivalent to
     * `touch(line) || (insert(line), false)` but with a single hash
     * probe on the hit path — the shape of the oracle's per-reference
     * update.
     *
     * @retval true @p line was resident before the call
     */
    bool touchOrInsert(LineAddr line);

    /** Remove @p line if resident; @return it was resident. */
    bool erase(LineAddr line);

    /** Least-recently-used resident line (empty if none). */
    std::optional<LineAddr> lruLine() const;

    std::size_t size() const { return size_; }
    std::size_t capacity() const { return cap; }
    bool full() const { return size_ == cap; }

    void clear();

  private:
    /** Intrusive LRU-list node; prev/next are node indices. */
    struct Node
    {
        Addr line = 0;
        std::uint32_t prev = nil;
        std::uint32_t next = nil;
    };

    /** Null node index (list ends, free-list end). */
    static constexpr std::uint32_t nil = 0xFFFFFFFFu;

    /** Fibonacci mix; high bits select the slot. */
    std::size_t
    slotOf(Addr line) const
    {
        return static_cast<std::size_t>(
            (line * 0x9E3779B97F4A7C15ull) >> hashShift);
    }

    /**
     * Slot holding @p line, or the empty slot where a probe for it
     * ends (load factor <= 1/2 guarantees one exists).
     */
    std::size_t findSlot(Addr line) const;

    /** Remove @p line's table entry (backward-shift deletion). */
    void tableErase(Addr line);

    /** Shift-close the hole at occupied slot @p hole. */
    void tableEraseAt(std::size_t hole);

    /** Detach node @p idx from the LRU list. */
    void listUnlink(std::uint32_t idx);

    /** Attach node @p idx at the MRU end. */
    void listPushFront(std::uint32_t idx);

    std::size_t cap;
    std::size_t size_ = 0;
    std::size_t slotMask;     ///< slots.size() - 1 (power of two)
    unsigned hashShift;       ///< 64 - log2(slots.size())
    std::uint32_t head = nil; ///< MRU
    std::uint32_t tail = nil; ///< LRU
    std::uint32_t freeHead = 0;
    std::vector<Node> nodes;  ///< cap nodes, recycled in place
    /** Open-addressed table of node index + 1; 0 = empty slot. */
    std::vector<std::uint32_t> slots;
};

} // namespace ccm

#endif // CCM_CACHE_FA_LRU_HH
