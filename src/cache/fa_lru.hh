/**
 * @file
 * A fully-associative LRU cache over line addresses.
 *
 * Two roles in this repo:
 *  - the oracle in the classic (Hill) conflict/capacity classifier: a
 *    miss is a conflict miss iff a fully-associative LRU cache of the
 *    same capacity would have hit;
 *  - the tag store of small fully-associative assist buffers.
 *
 * Implemented as an intrusive doubly-linked LRU list over a hash map,
 * so every operation is O(1) expected.
 */

#ifndef CCM_CACHE_FA_LRU_HH
#define CCM_CACHE_FA_LRU_HH

#include <cstddef>
#include <list>
#include <optional>
#include <unordered_map>

#include "common/addr_types.hh"
#include "common/types.hh"

namespace ccm
{

/** Fully-associative LRU set of line addresses. */
class FaLru
{
  public:
    /** @param num_lines capacity in cache lines (> 0) */
    explicit FaLru(std::size_t num_lines);

    /** @return true iff @p line is resident (no LRU update). */
    bool contains(LineAddr line) const;

    /**
     * Access @p line: on hit, move to MRU.
     * @retval true hit
     */
    bool touch(LineAddr line);

    /**
     * Insert @p line (must not be resident) as MRU.
     * @return the evicted LRU line, if the cache was full
     */
    std::optional<LineAddr> insert(LineAddr line);

    /** Remove @p line if resident; @return it was resident. */
    bool erase(LineAddr line);

    /** Least-recently-used resident line (empty if none). */
    std::optional<LineAddr> lruLine() const;

    std::size_t size() const { return map.size(); }
    std::size_t capacity() const { return cap; }
    bool full() const { return map.size() == cap; }

    void clear();

  private:
    std::size_t cap;
    std::list<LineAddr> order;  ///< front = MRU, back = LRU
    std::unordered_map<LineAddr, std::list<LineAddr>::iterator> map;
};

} // namespace ccm

#endif // CCM_CACHE_FA_LRU_HH
