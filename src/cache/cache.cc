#include "cache/cache.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ccm
{

Cache::Cache(const CacheGeometry &geometry, ReplPolicy policy,
             std::uint32_t random_seed)
    : geom(geometry), repl(policy),
      lines(geometry.numLines()),
      rngState(random_seed == 0 ? 1 : random_seed),
      setMisses_(geometry.numSets(), 0),
      setEvictions_(geometry.numSets(), 0)
{
}

const CacheLine *
Cache::probe(ByteAddr addr) const
{
    SetIndex set = geom.setOf(addr);
    Tag t = geom.tagOf(addr);
    for (unsigned w = 0; w < geom.assoc(); ++w) {
        const CacheLine &l = lines[slotOf(set, WayIndex{w})];
        if (l.valid && l.tag == t)
            return &l;
    }
    return nullptr;
}

CacheLine *
Cache::lookupMutable(ByteAddr addr)
{
    SetIndex set = geom.setOf(addr);
    Tag t = geom.tagOf(addr);
    for (unsigned w = 0; w < geom.assoc(); ++w) {
        CacheLine &l = lines[slotOf(set, WayIndex{w})];
        if (l.valid && l.tag == t)
            return &l;
    }
    return nullptr;
}

CacheLine *
Cache::findLine(ByteAddr addr)
{
    return lookupMutable(addr);
}

bool
Cache::access(ByteAddr addr, bool is_store)
{
    ++tick;
    CacheLine *l = lookupMutable(addr);
    if (l) {
        l->lastUse = tick;
        if (is_store)
            l->dirty = true;
        ++nHits;
        return true;
    }
    ++nMisses;
    ++setMisses_[geom.setOf(addr).value()];
    return false;
}

WayIndex
Cache::chooseVictimWay(SetIndex set) const
{
    const CacheLine *base = &lines[slotOf(set, WayIndex{0})];

    // An invalid way always wins.
    for (unsigned w = 0; w < geom.assoc(); ++w) {
        if (!base[w].valid)
            return WayIndex{w};
    }

    switch (repl) {
      case ReplPolicy::Lru: {
        unsigned victim = 0;
        for (unsigned w = 1; w < geom.assoc(); ++w) {
            if (base[w].lastUse < base[victim].lastUse)
                victim = w;
        }
        return WayIndex{victim};
      }
      case ReplPolicy::Fifo: {
        unsigned victim = 0;
        for (unsigned w = 1; w < geom.assoc(); ++w) {
            if (base[w].insertTime < base[victim].insertTime)
                victim = w;
        }
        return WayIndex{victim};
      }
      case ReplPolicy::Random: {
        // xorshift64*; mutable state so probe/victimFor stay const.
        std::uint64_t x = rngState;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        rngState = x;
        return WayIndex{static_cast<unsigned>(
            (x * 2685821657736338717ULL) % geom.assoc())};
      }
    }
    ccm_panic("unreachable replacement policy");
}

const CacheLine *
Cache::victimFor(ByteAddr addr) const
{
    SetIndex set = geom.setOf(addr);
    const CacheLine *base = &lines[slotOf(set, WayIndex{0})];
    for (unsigned w = 0; w < geom.assoc(); ++w) {
        if (!base[w].valid)
            return nullptr;
    }
    // Note: for ReplPolicy::Random this advances the RNG; the paper's
    // configurations all use LRU, where this is stateless.
    return &base[chooseVictimWay(set).value()];
}

FillResult
Cache::fill(ByteAddr addr, bool conflict_bit, bool is_store)
{
    SetIndex set = geom.setOf(addr);
    return fillWay(addr, chooseVictimWay(set), conflict_bit, is_store);
}

FillResult
Cache::fillWay(ByteAddr addr, WayIndex way, bool conflict_bit,
               bool is_store)
{
    if (way.value() >= geom.assoc())
        ccm_panic("fillWay: way ", way.value(), " out of range");

    SetIndex set = geom.setOf(addr);
    CacheLine &l = lines[slotOf(set, way)];

    FillResult evicted;
    if (l.valid) {
        evicted.valid = true;
        evicted.lineAddr = geom.recompose(l.tag, set);
        evicted.dirty = l.dirty;
        evicted.conflictBit = l.conflictBit;
        ++nEvictions;
        ++setEvictions_[set.value()];
    } else {
        ++nResident;
    }

    ++tick;
    l.valid = true;
    l.tag = geom.tagOf(addr);
    l.dirty = is_store;
    l.conflictBit = conflict_bit;
    l.lastUse = tick;
    l.insertTime = tick;
    ++nFills;
    return evicted;
}

bool
Cache::invalidate(ByteAddr addr)
{
    CacheLine *l = lookupMutable(addr);
    if (!l)
        return false;
    l->valid = false;
    l->dirty = false;
    l->conflictBit = false;
    --nResident;
    return true;
}

CacheLine &
Cache::lineAt(SetIndex set, WayIndex way)
{
    if (set.value() >= geom.numSets() || way.value() >= geom.assoc())
        ccm_panic("lineAt(", set.value(), ",", way.value(),
                  ") out of range");
    return lines[slotOf(set, way)];
}

const CacheLine &
Cache::lineAt(SetIndex set, WayIndex way) const
{
    if (set.value() >= geom.numSets() || way.value() >= geom.assoc())
        ccm_panic("lineAt(", set.value(), ",", way.value(),
                  ") out of range");
    return lines[slotOf(set, way)];
}

LineAddr
Cache::lineAddrAt(SetIndex set, WayIndex way) const
{
    const CacheLine &l = lineAt(set, way);
    if (!l.valid)
        return invalidLineAddr;
    return geom.recompose(l.tag, set);
}

void
Cache::clear()
{
    for (auto &l : lines)
        l = CacheLine{};
    tick = 0;
    nHits = nMisses = nFills = nEvictions = 0;
    nResident = 0;
    std::fill(setMisses_.begin(), setMisses_.end(), 0);
    std::fill(setEvictions_.begin(), setEvictions_.end(), 0);
}

} // namespace ccm
