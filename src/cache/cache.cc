#include "cache/cache.hh"

#include "common/logging.hh"

namespace ccm
{

Cache::Cache(const CacheGeometry &geometry, ReplPolicy policy,
             std::uint32_t random_seed)
    : geom(geometry), repl(policy),
      lines(geometry.numLines()),
      rngState(random_seed == 0 ? 1 : random_seed)
{
}

const CacheLine *
Cache::probe(Addr addr) const
{
    std::size_t set = geom.setIndex(addr);
    Addr t = geom.tag(addr);
    for (unsigned w = 0; w < geom.assoc(); ++w) {
        const CacheLine &l = lines[set * geom.assoc() + w];
        if (l.valid && l.tag == t)
            return &l;
    }
    return nullptr;
}

CacheLine *
Cache::lookupMutable(Addr addr)
{
    std::size_t set = geom.setIndex(addr);
    Addr t = geom.tag(addr);
    for (unsigned w = 0; w < geom.assoc(); ++w) {
        CacheLine &l = lines[set * geom.assoc() + w];
        if (l.valid && l.tag == t)
            return &l;
    }
    return nullptr;
}

CacheLine *
Cache::findLine(Addr addr)
{
    return lookupMutable(addr);
}

bool
Cache::access(Addr addr, bool is_store)
{
    ++tick;
    CacheLine *l = lookupMutable(addr);
    if (l) {
        l->lastUse = tick;
        if (is_store)
            l->dirty = true;
        ++nHits;
        return true;
    }
    ++nMisses;
    return false;
}

unsigned
Cache::chooseVictimWay(std::size_t set) const
{
    const CacheLine *base = &lines[set * geom.assoc()];

    // An invalid way always wins.
    for (unsigned w = 0; w < geom.assoc(); ++w) {
        if (!base[w].valid)
            return w;
    }

    switch (repl) {
      case ReplPolicy::Lru: {
        unsigned victim = 0;
        for (unsigned w = 1; w < geom.assoc(); ++w) {
            if (base[w].lastUse < base[victim].lastUse)
                victim = w;
        }
        return victim;
      }
      case ReplPolicy::Fifo: {
        unsigned victim = 0;
        for (unsigned w = 1; w < geom.assoc(); ++w) {
            if (base[w].insertTime < base[victim].insertTime)
                victim = w;
        }
        return victim;
      }
      case ReplPolicy::Random: {
        // xorshift64*; mutable state so probe/victimFor stay const.
        std::uint64_t x = rngState;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        rngState = x;
        return static_cast<unsigned>(
            (x * 2685821657736338717ULL) % geom.assoc());
      }
    }
    ccm_panic("unreachable replacement policy");
}

const CacheLine *
Cache::victimFor(Addr addr) const
{
    std::size_t set = geom.setIndex(addr);
    const CacheLine *base = &lines[set * geom.assoc()];
    for (unsigned w = 0; w < geom.assoc(); ++w) {
        if (!base[w].valid)
            return nullptr;
    }
    // Note: for ReplPolicy::Random this advances the RNG; the paper's
    // configurations all use LRU, where this is stateless.
    return &base[chooseVictimWay(set)];
}

FillResult
Cache::fill(Addr addr, bool conflict_bit, bool is_store)
{
    std::size_t set = geom.setIndex(addr);
    return fillWay(addr, chooseVictimWay(set), conflict_bit, is_store);
}

FillResult
Cache::fillWay(Addr addr, unsigned way, bool conflict_bit, bool is_store)
{
    if (way >= geom.assoc())
        ccm_panic("fillWay: way ", way, " out of range");

    std::size_t set = geom.setIndex(addr);
    CacheLine &l = lines[set * geom.assoc() + way];

    FillResult evicted;
    if (l.valid) {
        evicted.valid = true;
        evicted.lineAddr = geom.buildLineAddr(l.tag, set);
        evicted.dirty = l.dirty;
        evicted.conflictBit = l.conflictBit;
        ++nEvictions;
    }

    ++tick;
    l.valid = true;
    l.tag = geom.tag(addr);
    l.dirty = is_store;
    l.conflictBit = conflict_bit;
    l.lastUse = tick;
    l.insertTime = tick;
    ++nFills;
    return evicted;
}

bool
Cache::invalidate(Addr addr)
{
    CacheLine *l = lookupMutable(addr);
    if (!l)
        return false;
    l->valid = false;
    l->dirty = false;
    l->conflictBit = false;
    return true;
}

CacheLine &
Cache::lineAt(std::size_t set, unsigned way)
{
    if (set >= geom.numSets() || way >= geom.assoc())
        ccm_panic("lineAt(", set, ",", way, ") out of range");
    return lines[set * geom.assoc() + way];
}

const CacheLine &
Cache::lineAt(std::size_t set, unsigned way) const
{
    if (set >= geom.numSets() || way >= geom.assoc())
        ccm_panic("lineAt(", set, ",", way, ") out of range");
    return lines[set * geom.assoc() + way];
}

Addr
Cache::lineAddrAt(std::size_t set, unsigned way) const
{
    const CacheLine &l = lineAt(set, way);
    if (!l.valid)
        return invalidAddr;
    return geom.buildLineAddr(l.tag, set);
}

std::size_t
Cache::occupancy() const
{
    std::size_t n = 0;
    for (const auto &l : lines)
        n += l.valid ? 1 : 0;
    return n;
}

void
Cache::clear()
{
    for (auto &l : lines)
        l = CacheLine{};
    tick = 0;
    nHits = nMisses = nFills = nEvictions = 0;
}

} // namespace ccm
