#include "cache/fa_lru.hh"

#include <algorithm>

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace ccm
{

namespace
{

/**
 * Smallest power of two >= 4 * cap (and >= 8): load factor <= 1/4,
 * keeping probe chains near one slot and backward shifts rare.  The
 * capacities this class is built with (a cache's line count) make
 * the table a few KB; trading that for shorter chains is free.
 */
std::size_t
tableSizeFor(std::size_t cap)
{
    std::size_t n = 8;
    while (n < cap * 4)
        n <<= 1;
    return n;
}

} // namespace

FaLru::FaLru(std::size_t num_lines)
    : cap(num_lines), slotMask(0), hashShift(0)
{
    if (num_lines == 0)
        ccm_fatal("FaLru capacity must be > 0");
    if (num_lines >= nil)
        ccm_fatal("FaLru capacity ", num_lines,
                  " exceeds the 32-bit node index space");

    nodes.resize(cap);
    const std::size_t table = tableSizeFor(cap);
    slots.assign(table, 0);
    slotMask = table - 1;
    hashShift = 64 - floorLog2(table);

    // Thread the free list through next.
    for (std::size_t i = 0; i + 1 < cap; ++i)
        nodes[i].next = static_cast<std::uint32_t>(i + 1);
    nodes[cap - 1].next = nil;
}

std::size_t
FaLru::findSlot(Addr line) const
{
    std::size_t i = slotOf(line);
    while (slots[i] != 0 && nodes[slots[i] - 1].line != line)
        i = (i + 1) & slotMask;
    return i;
}

void
FaLru::tableErase(Addr line)
{
    const std::size_t hole = findSlot(line);
    if (slots[hole] != 0)
        tableEraseAt(hole);
}

void
FaLru::tableEraseAt(std::size_t hole)
{
    slots[hole] = 0;

    // Backward-shift deletion: walk the probe chain after the hole
    // and pull back every entry whose home slot lies at or before the
    // hole, so lookups never need tombstones.
    std::size_t i = (hole + 1) & slotMask;
    while (slots[i] != 0) {
        const std::size_t home = slotOf(nodes[slots[i] - 1].line);
        if (((i - home) & slotMask) >= ((i - hole) & slotMask)) {
            slots[hole] = slots[i];
            slots[i] = 0;
            hole = i;
        }
        i = (i + 1) & slotMask;
    }
}

void
FaLru::listUnlink(std::uint32_t idx)
{
    Node &n = nodes[idx];
    if (n.prev != nil)
        nodes[n.prev].next = n.next;
    else
        head = n.next;
    if (n.next != nil)
        nodes[n.next].prev = n.prev;
    else
        tail = n.prev;
}

void
FaLru::listPushFront(std::uint32_t idx)
{
    Node &n = nodes[idx];
    n.prev = nil;
    n.next = head;
    if (head != nil)
        nodes[head].prev = idx;
    head = idx;
    if (tail == nil)
        tail = idx;
}

bool
FaLru::contains(LineAddr line) const
{
    return slots[findSlot(line.value())] != 0;
}

bool
FaLru::touch(LineAddr line)
{
    const std::uint32_t slot = slots[findSlot(line.value())];
    if (slot == 0)
        return false;
    const std::uint32_t idx = slot - 1;
    if (head != idx) {
        listUnlink(idx);
        listPushFront(idx);
    }
    return true;
}

std::optional<LineAddr>
FaLru::insert(LineAddr line)
{
    std::size_t slot = findSlot(line.value());
    if (slots[slot] != 0)
        ccm_panic("FaLru::insert of resident line");

    std::optional<LineAddr> evicted;
    std::uint32_t idx;
    if (size_ == cap) {
        // Recycle the LRU node in place.  The victim's slot is
        // located while its node still holds the victim's line; the
        // node is then rewritten and the hole shift-closed last, so
        // the shift sees only consistent entries.  The table briefly
        // holds cap + 1 entries (the 1/4 load factor leaves ample
        // room).
        idx = tail;
        const Addr victim = nodes[idx].line;
        const std::size_t vslot = findSlot(victim);
        listUnlink(idx);
        evicted = LineAddr{victim};
        nodes[idx].line = line.value();
        slots[slot] = idx + 1;
        tableEraseAt(vslot);
    } else {
        idx = freeHead;
        freeHead = nodes[idx].next;
        ++size_;
        nodes[idx].line = line.value();
        slots[slot] = idx + 1;
    }

    listPushFront(idx);
    return evicted;
}

bool
FaLru::touchOrInsert(LineAddr line)
{
    std::size_t slot = findSlot(line.value());
    if (slots[slot] != 0) {
        const std::uint32_t idx = slots[slot] - 1;
        if (head != idx) {
            listUnlink(idx);
            listPushFront(idx);
        }
        return true;
    }

    std::uint32_t idx;
    if (size_ == cap) {
        // Same recycle-in-place shape as insert(): locate the
        // victim's slot first, rewrite the node, shift-close last.
        idx = tail;
        const std::size_t vslot = findSlot(nodes[idx].line);
        listUnlink(idx);
        nodes[idx].line = line.value();
        slots[slot] = idx + 1;
        tableEraseAt(vslot);
    } else {
        idx = freeHead;
        freeHead = nodes[idx].next;
        ++size_;
        nodes[idx].line = line.value();
        slots[slot] = idx + 1;
    }

    listPushFront(idx);
    return false;
}

bool
FaLru::erase(LineAddr line)
{
    const std::uint32_t slot = slots[findSlot(line.value())];
    if (slot == 0)
        return false;
    const std::uint32_t idx = slot - 1;
    tableErase(line.value());
    listUnlink(idx);
    nodes[idx].next = freeHead;
    freeHead = idx;
    --size_;
    return true;
}

std::optional<LineAddr>
FaLru::lruLine() const
{
    if (tail == nil)
        return std::nullopt;
    return LineAddr{nodes[tail].line};
}

void
FaLru::clear()
{
    std::fill(slots.begin(), slots.end(), 0);
    size_ = 0;
    head = tail = nil;
    for (std::size_t i = 0; i + 1 < cap; ++i)
        nodes[i].next = static_cast<std::uint32_t>(i + 1);
    nodes[cap - 1].next = nil;
    freeHead = 0;
}

} // namespace ccm
