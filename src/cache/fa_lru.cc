#include "cache/fa_lru.hh"

#include "common/logging.hh"

namespace ccm
{

FaLru::FaLru(std::size_t num_lines) : cap(num_lines)
{
    if (num_lines == 0)
        ccm_fatal("FaLru capacity must be > 0");
    map.reserve(num_lines * 2);
}

bool
FaLru::contains(Addr line) const
{
    return map.find(line) != map.end();
}

bool
FaLru::touch(Addr line)
{
    auto it = map.find(line);
    if (it == map.end())
        return false;
    order.splice(order.begin(), order, it->second);
    return true;
}

std::optional<Addr>
FaLru::insert(Addr line)
{
    if (map.find(line) != map.end())
        ccm_panic("FaLru::insert of resident line");

    std::optional<Addr> evicted;
    if (map.size() == cap) {
        Addr victim = order.back();
        order.pop_back();
        map.erase(victim);
        evicted = victim;
    }
    order.push_front(line);
    map[line] = order.begin();
    return evicted;
}

bool
FaLru::erase(Addr line)
{
    auto it = map.find(line);
    if (it == map.end())
        return false;
    order.erase(it->second);
    map.erase(it);
    return true;
}

std::optional<Addr>
FaLru::lruLine() const
{
    if (order.empty())
        return std::nullopt;
    return order.back();
}

void
FaLru::clear()
{
    order.clear();
    map.clear();
}

} // namespace ccm
