#include "cache/fa_lru.hh"

#include "common/logging.hh"

namespace ccm
{

FaLru::FaLru(std::size_t num_lines) : cap(num_lines)
{
    if (num_lines == 0)
        ccm_fatal("FaLru capacity must be > 0");
    map.reserve(num_lines * 2);
}

bool
FaLru::contains(LineAddr line) const
{
    return map.find(line) != map.end();
}

bool
FaLru::touch(LineAddr line)
{
    auto it = map.find(line);
    if (it == map.end())
        return false;
    order.splice(order.begin(), order, it->second);
    return true;
}

std::optional<LineAddr>
FaLru::insert(LineAddr line)
{
    if (map.find(line) != map.end())
        ccm_panic("FaLru::insert of resident line");

    std::optional<LineAddr> evicted;
    if (map.size() == cap) {
        LineAddr victim = order.back();
        order.pop_back();
        map.erase(victim);
        evicted = victim;
    }
    order.push_front(line);
    map[line] = order.begin();
    return evicted;
}

bool
FaLru::erase(LineAddr line)
{
    auto it = map.find(line);
    if (it == map.end())
        return false;
    order.erase(it->second);
    map.erase(it);
    return true;
}

std::optional<LineAddr>
FaLru::lruLine() const
{
    if (order.empty())
        return std::nullopt;
    return order.back();
}

void
FaLru::clear()
{
    order.clear();
    map.clear();
}

} // namespace ccm
