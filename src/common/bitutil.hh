/**
 * @file
 * Small bit-manipulation helpers used throughout the cache models.
 */

#ifndef CCM_COMMON_BITUTIL_HH
#define CCM_COMMON_BITUTIL_HH

#include <bit>
#include <cstdint>

#include "common/types.hh"

namespace ccm
{

/** @return true iff @p v is a power of two (0 is not). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/**
 * Integer log base 2 of a power of two.
 *
 * @param v a power of two
 * @return floor(log2(v))
 */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned l = 0;
    while (v > 1) {
        v >>= 1;
        ++l;
    }
    return l;
}

/** @return a mask with the low @p bits bits set. */
constexpr std::uint64_t
lowMask(unsigned bits)
{
    return bits >= 64 ? ~std::uint64_t{0}
                      : ((std::uint64_t{1} << bits) - 1);
}

/** Extract bit field [lo, lo+len) of @p v. */
constexpr std::uint64_t
bitField(std::uint64_t v, unsigned lo, unsigned len)
{
    return (v >> lo) & lowMask(len);
}

} // namespace ccm

#endif // CCM_COMMON_BITUTIL_HH
