/**
 * @file
 * A small fixed-size worker pool: std::thread + a mutex-guarded task
 * queue, no external dependencies.
 *
 * This is the execution substrate for the parallel suite runner
 * (src/sim/parallel.hh): suite sweeps are embarrassingly parallel —
 * every (workload, config) cell is an independent deterministic
 * simulation — so a plain job pool buys near-linear speedup without
 * touching the simulation code.  The pool is deliberately minimal:
 * submit() fire-and-forget closures, wait for them with waitIdle(),
 * and the destructor drains and joins.  Anything fancier (futures,
 * work stealing, priorities) is left to callers.
 *
 * Locking contract: one LockRank::ThreadPool mutex guards the task
 * queue and the busy/stopping flags; it is a leaf lock — tasks run
 * with it released, so a task may take any other lock in the program.
 */

#ifndef CCM_COMMON_THREAD_POOL_HH
#define CCM_COMMON_THREAD_POOL_HH

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/sync.hh"

namespace ccm
{

/**
 * Resolve a user-facing --jobs value: 0 means "one worker per
 * hardware thread" (with a sane fallback when the runtime cannot
 * report concurrency), anything else is taken literally.
 */
std::size_t resolveJobCount(std::size_t jobs);

/** Fixed-size worker pool over a FIFO task queue. */
class ThreadPool
{
  public:
    /**
     * Start @p workers threads (resolved via resolveJobCount, so 0 =
     * hardware concurrency).  The pool runs until destruction.
     */
    explicit ThreadPool(std::size_t workers);

    /** Drains remaining tasks, then joins every worker. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads actually running. */
    std::size_t workers() const { return threads.size(); }

    /**
     * Enqueue @p task for execution on some worker.  Tasks must not
     * throw — a task that lets an exception escape terminates the
     * process (catch and record failures inside the task; the suite
     * runner turns them into errored rows).
     */
    void submit(std::function<void()> task) CCM_EXCLUDES(mtx);

    /** Block until the queue is empty and every worker is idle. */
    void waitIdle() CCM_EXCLUDES(mtx);

  private:
    void workerLoop() CCM_EXCLUDES(mtx);

    std::vector<std::thread> threads;

    Mutex mtx{LockRank::ThreadPool, "thread-pool"};
    CondVar workAvailable; ///< workers wait here
    CondVar allDone;       ///< waitIdle waits here

    std::deque<std::function<void()>> queue CCM_GUARDED_BY(mtx);
    /** Tasks currently running. */
    std::size_t busy CCM_GUARDED_BY(mtx) = 0;
    bool stopping CCM_GUARDED_BY(mtx) = false;
};

} // namespace ccm

#endif // CCM_COMMON_THREAD_POOL_HH
