/**
 * @file
 * Capability-annotated synchronization layer: the only place in the
 * repository allowed to name std::mutex or std::condition_variable
 * (enforced by the `ccm-lint` raw-primitive ban).
 *
 * Two machine-checked contracts ride on these wrappers:
 *
 *  1. **Clang Thread Safety Analysis.**  ccm::Mutex is a CAPABILITY,
 *     ccm::MutexLock / ccm::ReaderLock are SCOPED_CAPABILITYs, and the
 *     CCM_GUARDED_BY / CCM_REQUIRES / CCM_EXCLUDES macros below put
 *     locking preconditions into function signatures.  Under Clang the
 *     strict build compiles with `-Werror=thread-safety-analysis`, so
 *     touching a guarded field without its mutex is a build break.  On
 *     GCC (and any compiler without the attributes) every macro
 *     expands to nothing — zero cost, identical code.
 *
 *  2. **Runtime lock-rank checking.**  Every Mutex carries a LockRank.
 *     When CCM_LOCK_RANK_CHECK is on (the default; see CMakeLists),
 *     each thread tracks the ranks it holds, and acquiring a mutex
 *     whose rank is <= the highest held rank is a ccm_fatal — the
 *     whole-program acquisition order is the ranks in ascending
 *     order, so any cycle (the deadlock precondition) trips the
 *     checker on the first inverted acquisition, deterministically,
 *     on any single test run.  docs/STATIC_ANALYSIS.md has the rank
 *     table and the conventions.
 *
 * Waiting on a CondVar releases the underlying mutex but *keeps its
 * rank held*: a blocked waiter acquires nothing, and on wakeup it
 * re-acquires the same mutex, so its ordering position is unchanged.
 */

#ifndef CCM_COMMON_SYNC_HH
#define CCM_COMMON_SYNC_HH

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// ---- Clang Thread Safety Analysis attribute macros -----------------
//
// The canonical macro set from the Clang thread-safety documentation,
// CCM_-prefixed.  GNU-style attributes so they can annotate lambdas
// (predicates passed to CondVar::wait are annotated
// `[&]() CCM_REQUIRES(mu) { ... }`).

#if defined(__clang__) && !defined(SWIG)
#define CCM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define CCM_THREAD_ANNOTATION(x) // no-op outside Clang
#endif

/** Marks a class as a lockable capability ("mutex"). */
#define CCM_CAPABILITY(x) CCM_THREAD_ANNOTATION(capability(x))

/** Marks an RAII class that acquires in ctor / releases in dtor. */
#define CCM_SCOPED_CAPABILITY CCM_THREAD_ANNOTATION(scoped_lockable)

/** Field may only be touched while holding @p x. */
#define CCM_GUARDED_BY(x) CCM_THREAD_ANNOTATION(guarded_by(x))

/** Pointee may only be touched while holding @p x. */
#define CCM_PT_GUARDED_BY(x) CCM_THREAD_ANNOTATION(pt_guarded_by(x))

/** Declares static acquisition order between capabilities. */
#define CCM_ACQUIRED_BEFORE(...) \
    CCM_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define CCM_ACQUIRED_AFTER(...) \
    CCM_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/** Caller must hold the capability (exclusively / shared). */
#define CCM_REQUIRES(...) \
    CCM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define CCM_REQUIRES_SHARED(...) \
    CCM_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/** Function acquires the capability and holds it on return. */
#define CCM_ACQUIRE(...) \
    CCM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define CCM_ACQUIRE_SHARED(...) \
    CCM_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/** Function releases the capability (held on entry). */
#define CCM_RELEASE(...) \
    CCM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define CCM_RELEASE_SHARED(...) \
    CCM_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/** Function acquires the capability iff it returns @p ... (bool). */
#define CCM_TRY_ACQUIRE(...) \
    CCM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Caller must NOT hold the capability (deadlock prevention). */
#define CCM_EXCLUDES(...) \
    CCM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Runtime assertion that the capability is held (trust-me edge). */
#define CCM_ASSERT_CAPABILITY(x) \
    CCM_THREAD_ANNOTATION(assert_capability(x))

/** Function returns a reference to the named capability. */
#define CCM_RETURN_CAPABILITY(x) CCM_THREAD_ANNOTATION(lock_returned(x))

/** Opt a function body out of the analysis (rare; justify inline). */
#define CCM_NO_THREAD_SAFETY_ANALYSIS \
    CCM_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace ccm
{

/**
 * The whole-program mutex acquisition order, ascending: a thread may
 * acquire a mutex only if its rank is strictly greater than every
 * rank it already holds.  Unranked mutexes opt out of the check (for
 * genuinely leaf, never-nested locks — prefer a rank).
 *
 * Keep this table in sync with docs/STATIC_ANALYSIS.md ("Concurrency
 * contracts"); gaps are deliberate so new locks can slot in between
 * existing layers without renumbering.
 */
enum class LockRank : int
{
    Unranked = 0,           ///< exempt from ordering checks
    ServeDaemon = 10,       ///< ServeDaemon::mu (admission/reports)
    ServeDaemonReaders = 20,///< ServeDaemon::readersMu (reader slots)
    ServeStream = 30,       ///< StreamPipeline::mu (state machine)
    ObsLive = 40,           ///< obs::LiveStatsCell (live snapshots)
    ServeQueue = 50,        ///< serve::RecordQueue (ring + condvars)
    SuiteInstrumentGate = 60,   ///< runSuiteParallel instrument serializer
    SuiteRowDone = 70,      ///< runSuiteParallel row-done handshake
    ShardMerge = 75,        ///< runShardedClassify result merge
    ThreadPool = 80,        ///< ThreadPool task queue (leaf)
    ObsMetrics = 90,        ///< obs::MetricsRegistry (register/render)
    ObsSpans = 92,          ///< obs::SpanTracer event buffer (leaf)
};

/** True when this build enforces lock ranks (CCM_LOCK_RANK_CHECK). */
bool lockRankChecksEnabled();

namespace detail
{

/**
 * Record an acquisition of @p rank by this thread; ccm_fatal on a
 * rank inversion (<= any held rank).  Called *before* the underlying
 * lock is taken so the process dies pointing at the inversion instead
 * of deadlocking in it.  No-op for rank 0 or when checks are off.
 */
void noteLockAcquired(int rank, const char *name);

/** Forget one held acquisition of @p rank (reverse of the above). */
void noteLockReleased(int rank);

} // namespace detail

/**
 * Exclusive mutex capability.  Same cost as std::mutex outside the
 * optional rank bookkeeping; prefer the MutexLock RAII wrapper over
 * calling lock()/unlock() directly.
 */
class CCM_CAPABILITY("mutex") Mutex
{
  public:
    explicit Mutex(LockRank rank = LockRank::Unranked,
                   const char *name = "mutex")
        : rank_(static_cast<int>(rank)), name_(name)
    {
    }

    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void
    lock() CCM_ACQUIRE()
    {
        detail::noteLockAcquired(rank_, name_);
        mu_.lock();
    }

    void
    unlock() CCM_RELEASE()
    {
        mu_.unlock();
        detail::noteLockReleased(rank_);
    }

    /** @return true iff the lock was taken (rank rules still apply). */
    bool
    tryLock() CCM_TRY_ACQUIRE(true)
    {
        detail::noteLockAcquired(rank_, name_);
        if (mu_.try_lock())
            return true;
        detail::noteLockReleased(rank_);
        return false;
    }

    LockRank rank() const { return static_cast<LockRank>(rank_); }
    const char *name() const { return name_; }

  private:
    friend class CondVar;

    std::mutex mu_;
    const int rank_;
    const char *name_;
};

/**
 * Reader/writer mutex capability for read-mostly state.  ReaderLock
 * takes it shared, MutexLock-style exclusive access goes through
 * lock()/unlock().
 */
class CCM_CAPABILITY("shared_mutex") SharedMutex
{
  public:
    explicit SharedMutex(LockRank rank = LockRank::Unranked,
                         const char *name = "shared_mutex")
        : rank_(static_cast<int>(rank)), name_(name)
    {
    }

    SharedMutex(const SharedMutex &) = delete;
    SharedMutex &operator=(const SharedMutex &) = delete;

    void
    lock() CCM_ACQUIRE()
    {
        detail::noteLockAcquired(rank_, name_);
        mu_.lock();
    }

    void
    unlock() CCM_RELEASE()
    {
        mu_.unlock();
        detail::noteLockReleased(rank_);
    }

    void
    lockShared() CCM_ACQUIRE_SHARED()
    {
        detail::noteLockAcquired(rank_, name_);
        mu_.lock_shared();
    }

    void
    unlockShared() CCM_RELEASE_SHARED()
    {
        mu_.unlock_shared();
        detail::noteLockReleased(rank_);
    }

  private:
    std::shared_mutex mu_;
    const int rank_;
    const char *name_;
};

/** RAII exclusive lock over a ccm::Mutex (scoped capability). */
class CCM_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) CCM_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }

    ~MutexLock() CCM_RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mu_;
};

/** RAII shared (reader) lock over a ccm::SharedMutex. */
class CCM_SCOPED_CAPABILITY ReaderLock
{
  public:
    explicit ReaderLock(SharedMutex &mu) CCM_ACQUIRE_SHARED(mu)
        : mu_(mu)
    {
        mu_.lockShared();
    }

    ~ReaderLock() CCM_RELEASE() { mu_.unlockShared(); }

    ReaderLock(const ReaderLock &) = delete;
    ReaderLock &operator=(const ReaderLock &) = delete;

  private:
    SharedMutex &mu_;
};

/** RAII exclusive (writer) lock over a ccm::SharedMutex. */
class CCM_SCOPED_CAPABILITY WriterLock
{
  public:
    explicit WriterLock(SharedMutex &mu) CCM_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }

    ~WriterLock() CCM_RELEASE() { mu_.unlock(); }

    WriterLock(const WriterLock &) = delete;
    WriterLock &operator=(const WriterLock &) = delete;

  private:
    SharedMutex &mu_;
};

/**
 * Condition variable bound to ccm::Mutex.  Callers hold the mutex
 * (typically via MutexLock) and pass it explicitly, so the analysis
 * can see the precondition; predicates read guarded state and must be
 * annotated: `cv.wait(mu, [&]() CCM_REQUIRES(mu) { ... });`.
 *
 * Internally the wait adopts/releases the raw std::mutex, which the
 * analysis cannot follow — the bodies are CCM_NO_THREAD_SAFETY_ANALYSIS
 * and the contract is carried entirely by the REQUIRES signature.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    void
    wait(Mutex &mu) CCM_REQUIRES(mu) CCM_NO_THREAD_SAFETY_ANALYSIS
    {
        std::unique_lock<std::mutex> ul(mu.mu_, std::adopt_lock);
        cv_.wait(ul);
        ul.release();
    }

    template <typename Pred>
    void
    wait(Mutex &mu, Pred pred)
        CCM_REQUIRES(mu) CCM_NO_THREAD_SAFETY_ANALYSIS
    {
        std::unique_lock<std::mutex> ul(mu.mu_, std::adopt_lock);
        cv_.wait(ul, std::move(pred));
        ul.release();
    }

    template <typename Rep, typename Period, typename Pred>
    bool
    waitFor(Mutex &mu,
            const std::chrono::duration<Rep, Period> &timeout,
            Pred pred) CCM_REQUIRES(mu) CCM_NO_THREAD_SAFETY_ANALYSIS
    {
        std::unique_lock<std::mutex> ul(mu.mu_, std::adopt_lock);
        const bool satisfied =
            cv_.wait_for(ul, timeout, std::move(pred));
        ul.release();
        return satisfied;
    }

    void notifyOne() { cv_.notify_one(); }
    void notifyAll() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

} // namespace ccm

#endif // CCM_COMMON_SYNC_HH
