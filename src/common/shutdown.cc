#include "common/shutdown.hh"

#include <csignal>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "common/logging.hh"

namespace ccm
{

namespace
{

/**
 * The one latch allowed to own process signal handlers.  Plain
 * pointer loads/stores are fine for the handler side because the
 * pointer is published before sigaction() and cleared after the
 * handlers are restored.
 */
std::atomic<ShutdownLatch *> installedLatch{nullptr};

struct sigaction savedActions[3];

} // namespace

ShutdownLatch::ShutdownLatch()
{
    if (::pipe(pipeFds) != 0)
        ccm_fatal("ShutdownLatch: pipe() failed: ",
                  errnoString(errno));
    // Nonblocking on both ends: the handler must never block in
    // write() and drainWake() must never block in read().
    for (int fd : pipeFds)
        ::fcntl(fd, F_SETFL, O_NONBLOCK);
}

ShutdownLatch::~ShutdownLatch()
{
    if (installed) {
        for (int i = 0; i < 3; ++i) {
            if (sigs[i] != 0)
                ::sigaction(sigs[i], &savedActions[i], nullptr);
        }
        installedLatch.store(nullptr, std::memory_order_release);
    }
    ::close(pipeFds[0]);
    ::close(pipeFds[1]);
}

Status
ShutdownLatch::installSignalHandlers(int stop_sig, int stop_sig2,
                                     int reload_sig)
{
    // Write the routing table BEFORE the CAS publishes `this`: the
    // release CAS is what hands the latch to handleSignal (possibly
    // running on another thread that already had a handler pending),
    // and the handler reads sigs[2] to route reload vs stop.  Filling
    // sigs afterwards would let a handler observe a half-initialized
    // table.
    sigs[0] = stop_sig;
    sigs[1] = stop_sig2;
    sigs[2] = reload_sig;

    ShutdownLatch *expected = nullptr;
    if (!installedLatch.compare_exchange_strong(
            expected, this, std::memory_order_acq_rel)) {
        sigs[0] = sigs[1] = sigs[2] = 0;
        return Status::internal(
            "another ShutdownLatch already owns the signal handlers");
    }

    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = &ShutdownLatch::handleSignal;
    ::sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    for (int i = 0; i < 3; ++i) {
        if (sigs[i] == 0)
            continue;
        if (::sigaction(sigs[i], &sa, &savedActions[i]) != 0) {
            installedLatch.store(nullptr, std::memory_order_release);
            return Status::ioError("sigaction(", sigs[i],
                                   ") failed: ",
                                   errnoString(errno));
        }
    }
    installed = true;
    return Status::ok();
}

void
ShutdownLatch::handleSignal(int sig)
{
    ShutdownLatch *latch =
        installedLatch.load(std::memory_order_acquire);
    if (!latch)
        return;
    if (sig == latch->sigs[2] && sig != 0)
        latch->requestReload();
    else
        latch->requestStop();
}

void
ShutdownLatch::requestStop()
{
    stop_.store(true, std::memory_order_release);
    const char byte = 's';
    // Best effort: a full pipe already guarantees wakeFd() is
    // readable, so a failed write loses nothing.
    [[maybe_unused]] ssize_t n = ::write(pipeFds[1], &byte, 1);
}

void
ShutdownLatch::requestReload()
{
    reload_.store(true, std::memory_order_release);
    const char byte = 'r';
    [[maybe_unused]] ssize_t n = ::write(pipeFds[1], &byte, 1);
}

void
ShutdownLatch::drainWake()
{
    char buf[64];
    while (::read(pipeFds[0], buf, sizeof(buf)) > 0) {
    }
    // A latched stop must keep wakeFd() readable so every poller —
    // present and future — notices it; re-arm the pipe.
    if (stop_.load(std::memory_order_acquire)) {
        const char byte = 's';
        [[maybe_unused]] ssize_t n = ::write(pipeFds[1], &byte, 1);
    }
}

} // namespace ccm
