#include "common/logging.hh"

#include <cstdlib>
#include <iostream>

namespace ccm
{

namespace
{

thread_local int fatalThrowDepth = 0;

} // namespace

ScopedFatalThrow::ScopedFatalThrow()
{
    ++fatalThrowDepth;
}

ScopedFatalThrow::~ScopedFatalThrow()
{
    --fatalThrowDepth;
}

namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << " @ " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    if (fatalThrowDepth > 0)
        throw FatalError(msg);
    std::cerr << "fatal: " << msg << " @ " << file << ":" << line
              << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    std::cout << "info: " << msg << std::endl;
}

} // namespace detail

} // namespace ccm
