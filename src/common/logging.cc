#include "common/logging.hh"

#include <cstdlib>

#include "common/log.hh"

namespace ccm
{

namespace
{

thread_local int fatalThrowDepth = 0;

} // namespace

ScopedFatalThrow::ScopedFatalThrow()
{
    ++fatalThrowDepth;
}

ScopedFatalThrow::~ScopedFatalThrow()
{
    --fatalThrowDepth;
}

namespace detail
{

// panic/fatal terminate the process, so they bypass the threshold:
// the one line explaining the exit must never be filtered out.

void
panicImpl(const char *file, int line, const std::string &msg)
{
    logWrite(LogLevel::Error, concat("panic: ", msg, " @ ", file, ":",
                                     line));
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    if (fatalThrowDepth > 0)
        throw FatalError(msg);
    logWrite(LogLevel::Error, concat("fatal: ", msg, " @ ", file, ":",
                                     line));
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    CCM_LOG_WARN("warn: ", msg);
}

void
informImpl(const std::string &msg)
{
    CCM_LOG_INFO(msg);
}

} // namespace detail

} // namespace ccm
