#include "common/sync.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"

namespace ccm
{

bool
lockRankChecksEnabled()
{
#ifdef CCM_LOCK_RANK_CHECK
    return true;
#else
    return false;
#endif
}

namespace detail
{

#ifdef CCM_LOCK_RANK_CHECK

namespace
{

/**
 * Ranks this thread currently holds, in acquisition order.  A plain
 * vector: depth is the nesting depth of locks (2-3 in practice), and
 * the checker is per-thread so no synchronization is needed.
 */
thread_local std::vector<int> heldRanks;

} // namespace

void
noteLockAcquired(int rank, const char *name)
{
    if (rank == 0)
        return;
    for (int held : heldRanks) {
        if (held >= rank) {
            ccm_fatal(
                "lock-rank inversion: acquiring '", name, "' (rank ",
                rank, ") while already holding rank ", held,
                "; the global order is ascending LockRank — see the "
                "rank table in docs/STATIC_ANALYSIS.md");
        }
    }
    heldRanks.push_back(rank);
}

void
noteLockReleased(int rank)
{
    if (rank == 0)
        return;
    const auto it =
        std::find(heldRanks.rbegin(), heldRanks.rend(), rank);
    if (it != heldRanks.rend())
        heldRanks.erase(std::next(it).base());
}

#else // !CCM_LOCK_RANK_CHECK

void
noteLockAcquired(int, const char *)
{
}

void
noteLockReleased(int)
{
}

#endif // CCM_LOCK_RANK_CHECK

} // namespace detail
} // namespace ccm
