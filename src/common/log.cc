#include "common/log.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace ccm
{

namespace
{

using Clock = std::chrono::steady_clock;

/** Process epoch for the line timestamps (first use wins). */
Clock::time_point
processEpoch()
{
    static const Clock::time_point epoch = Clock::now();
    return epoch;
}

std::atomic<int> thresholdOverride{-1};

/** Next dense thread id to hand out. */
std::atomic<int> nextThreadId{0};

thread_local int cachedThreadId = -1;

thread_local std::uint64_t currentStream = 0;
thread_local bool currentStreamActive = false;

LogLevel
thresholdFromEnv()
{
    // The env is read once, before any thread could call setenv; the
    // tools never mutate the environment.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    const char *env = std::getenv("CCM_LOG_LEVEL");
    if (env == nullptr || *env == '\0')
        return LogLevel::Info;
    Expected<LogLevel> parsed = parseLogLevel(env);
    if (parsed.ok())
        return parsed.value();
    detail::logWrite(LogLevel::Error,
                     "CCM_LOG_LEVEL: " + parsed.status().toString() +
                         "; defaulting to info");
    return LogLevel::Info;
}

char
levelLetter(LogLevel level)
{
    switch (level) {
      case LogLevel::Trace: return 'T';
      case LogLevel::Debug: return 'D';
      case LogLevel::Info: return 'I';
      case LogLevel::Warn: return 'W';
      case LogLevel::Error: return 'E';
      case LogLevel::Off: return '?';
    }
    return '?';
}

} // namespace

const char *
toString(LogLevel level)
{
    switch (level) {
      case LogLevel::Trace: return "trace";
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Error: return "error";
      case LogLevel::Off: return "off";
    }
    return "?";
}

Expected<LogLevel>
parseLogLevel(std::string_view name)
{
    for (LogLevel level :
         {LogLevel::Trace, LogLevel::Debug, LogLevel::Info,
          LogLevel::Warn, LogLevel::Error, LogLevel::Off}) {
        if (name == toString(level))
            return level;
    }
    return Status::badConfig("unknown log level '", name,
                             "' (expected trace, debug, info, warn, "
                             "error or off)");
}

LogLevel
logThreshold()
{
    const int forced = thresholdOverride.load(std::memory_order_relaxed);
    if (forced >= 0)
        return static_cast<LogLevel>(forced);
    static const LogLevel fromEnv = thresholdFromEnv();
    return fromEnv;
}

void
setLogThreshold(LogLevel level)
{
    thresholdOverride.store(static_cast<int>(level),
                            std::memory_order_relaxed);
}

int
logThreadId()
{
    if (cachedThreadId < 0)
        cachedThreadId =
            nextThreadId.fetch_add(1, std::memory_order_relaxed);
    return cachedThreadId;
}

double
logUptimeSeconds()
{
    return std::chrono::duration<double>(Clock::now() - processEpoch())
        .count();
}

LogStreamScope::LogStreamScope(std::uint64_t stream_id)
    : saved_(currentStream), savedActive_(currentStreamActive)
{
    currentStream = stream_id;
    currentStreamActive = true;
}

LogStreamScope::~LogStreamScope()
{
    currentStream = saved_;
    currentStreamActive = savedActive_;
}

namespace detail
{

void
logWrite(LogLevel level, const std::string &msg)
{
    char prefix[64];
    int n;
    if (currentStreamActive) {
        n = std::snprintf(prefix, sizeof(prefix),
                          "[%c %.6f t%d s%llu] ", levelLetter(level),
                          logUptimeSeconds(), logThreadId(),
                          static_cast<unsigned long long>(
                              currentStream));
    } else {
        n = std::snprintf(prefix, sizeof(prefix), "[%c %.6f t%d] ",
                          levelLetter(level), logUptimeSeconds(),
                          logThreadId());
    }
    if (n < 0)
        n = 0;

    // One buffer, one write: lines from concurrent threads never
    // interleave (POSIX stdio streams lock per call).
    std::string line;
    line.reserve(static_cast<std::size_t>(n) + msg.size() + 1);
    line.append(prefix, static_cast<std::size_t>(n));
    line.append(msg);
    line.push_back('\n');
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
}

} // namespace detail

} // namespace ccm
