/**
 * @file
 * Signal-safe shutdown latch for long-running binaries.
 *
 * A daemon that wants graceful SIGTERM drain and SIGHUP config reload
 * needs a way to get those requests out of an async-signal context
 * and into threads blocked in poll()/condition waits.  ShutdownLatch
 * is that bridge: the signal handler only touches a sig_atomic_t flag
 * and writes one byte to a self-pipe (both async-signal-safe), and
 * everything else — threads polling wakeFd(), threads checking
 * stopRequested() — runs on the normal side with ordinary atomics.
 *
 * The latch is also usable without signals (tests call requestStop()
 * / requestReload() directly), so drain logic is testable in-process.
 */

#ifndef CCM_COMMON_SHUTDOWN_HH
#define CCM_COMMON_SHUTDOWN_HH

#include <atomic>

#include "common/status.hh"

namespace ccm
{

/** One-way stop/reload latch with a pollable wake descriptor. */
class ShutdownLatch
{
  public:
    /** Creates the self-pipe; fatal only on fd exhaustion. */
    ShutdownLatch();
    ~ShutdownLatch();

    ShutdownLatch(const ShutdownLatch &) = delete;
    ShutdownLatch &operator=(const ShutdownLatch &) = delete;

    /**
     * Route @p stop_sig (typically SIGTERM and/or SIGINT) to
     * requestStop() and @p reload_sig (typically SIGHUP, 0 = none) to
     * requestReload().  Only one latch per process may install
     * handlers; installing from a second live latch is an error.
     * Handlers are uninstalled by the destructor.
     */
    Status installSignalHandlers(int stop_sig, int stop_sig2 = 0,
                                 int reload_sig = 0);

    /** Latch a stop request and wake pollers.  Async-signal-safe. */
    void requestStop();

    /** Latch a reload request and wake pollers.  Async-signal-safe. */
    void requestReload();

    bool stopRequested() const
    {
        return stop_.load(std::memory_order_acquire);
    }

    /** True exactly once per latched reload request (consumes it). */
    bool takeReloadRequest()
    {
        return reload_.exchange(false, std::memory_order_acq_rel);
    }

    /**
     * Readable whenever a stop or reload has been requested since the
     * last drainWake(); poll() this alongside sockets so blocked I/O
     * loops notice requests promptly.
     */
    int wakeFd() const { return pipeFds[0]; }

    /** Swallow pending wake bytes (reload handled, keep polling). */
    void drainWake();

  private:
    static void handleSignal(int sig);

    std::atomic<bool> stop_{false};
    std::atomic<bool> reload_{false};
    int pipeFds[2] = {-1, -1};
    int sigs[3] = {0, 0, 0};
    bool installed = false;
};

} // namespace ccm

#endif // CCM_COMMON_SHUTDOWN_HH
