/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * All workload generators draw from this PCG32 implementation so that a
 * given (workload, seed) pair always produces the identical address
 * stream, on any host, which keeps every experiment reproducible.
 */

#ifndef CCM_COMMON_RANDOM_HH
#define CCM_COMMON_RANDOM_HH

#include <cstdint>

namespace ccm
{

/**
 * PCG32 generator (O'Neill, 2014): small state, good statistical
 * quality, and fully deterministic across platforms.
 */
class Pcg32
{
  public:
    /** Seed with a stream-selector so parallel streams don't correlate. */
    explicit Pcg32(std::uint64_t seed, std::uint64_t stream = 1)
        : state(0), inc((stream << 1) | 1)
    {
        next();
        state += seed;
        next();
    }

    /** @return the next 32 uniformly distributed bits. */
    std::uint32_t
    next()
    {
        std::uint64_t old = state;
        state = old * 6364136223846793005ULL + inc;
        std::uint32_t xorshifted =
            static_cast<std::uint32_t>(((old >> 18) ^ old) >> 27);
        std::uint32_t rot = static_cast<std::uint32_t>(old >> 59);
        return (xorshifted >> rot) | (xorshifted << ((-rot) & 31));
    }

    /** @return a uniform integer in [0, bound); bound must be nonzero. */
    std::uint32_t
    below(std::uint32_t bound)
    {
        // Debiased modulo via rejection sampling.
        std::uint32_t threshold = (-bound) % bound;
        for (;;) {
            std::uint32_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** @return a uniform double in [0, 1). */
    double
    uniform()
    {
        return next() * (1.0 / 4294967296.0);
    }

    /** @return true with probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    std::uint64_t state;
    std::uint64_t inc;
};

} // namespace ccm

#endif // CCM_COMMON_RANDOM_HH
