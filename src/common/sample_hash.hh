/**
 * @file
 * Deterministic, seedable spatial-sampling predicate.
 *
 * SHARDS-style spatial sampling (src/sample) keeps a reference iff
 *
 *     hash(line) mod P < T
 *
 * so that the sampled subset is a fixed, pseudo-random R = T/P
 * fraction of the *line population* — every access to a sampled line
 * is kept, which preserves per-line reuse behaviour exactly.  The
 * hash therefore has to be
 *
 *  - uniform over the line-aligned, power-of-two-strided addresses the
 *    workload generators emit (an identity hash would alias whole
 *    strides into or out of the sample);
 *  - bit-reproducible across platforms, processes and shard counts —
 *    which rules out std::hash (implementation-defined) and rand()
 *    (stateful).  Everything here is fixed-width uint64 arithmetic.
 *
 * The mixer is the splitmix64 finalizer seeded AddrMixHash-style: the
 * seed enters through a golden-ratio multiply (the same constant
 * AddrMixHash uses) before the two multiply-xorshift rounds, so
 * different seeds select statistically independent sample sets while
 * seed 0 still mixes well.  Uniformity is property-tested in
 * tests/test_common.cc.
 */

#ifndef CCM_COMMON_SAMPLE_HASH_HH
#define CCM_COMMON_SAMPLE_HASH_HH

#include <cstdint>

#include "common/addr_types.hh"
#include "common/status.hh"
#include "common/types.hh"

namespace ccm
{

/** Seedable 64-bit mixer; same value on every platform. */
class SampleHash
{
  public:
    explicit constexpr SampleHash(std::uint64_t seed = 0)
        : seedMix(seed * 0x9E3779B97F4A7C15ull + 0x2545F4914F6CDD1Dull)
    {}

    /** Mix @p v (splitmix64 finalizer over the seed-offset value). */
    constexpr std::uint64_t
    mix(Addr v) const
    {
        std::uint64_t x = v + seedMix;
        x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
        x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
        return x ^ (x >> 31);
    }

  private:
    std::uint64_t seedMix;
};

/**
 * The SHARDS admission test over line addresses: a line is sampled
 * iff hash(line) mod P < T, with P fixed at 2^24 (the resolution
 * floor: the lowest expressible nonzero rate is 1/P ≈ 6e-8, far
 * below the 0.1% the sampling engine supports).
 *
 * The threshold is mutable by design — the fixed-size (SHARDS-adj)
 * variant lowers it as the tracked-line budget fills — but only ever
 * downward, so a line's bucket never re-enters the sample.
 */
class SamplingPredicate
{
  public:
    /** Fixed modulus P (power of two: mod is a mask). */
    static constexpr std::uint64_t kModulus = std::uint64_t{1} << 24;

    /**
     * @param rate   target sampling rate in (0, 1]
     * @param seed   sample-set selector (same rate, different lines)
     */
    static Expected<SamplingPredicate>
    make(double rate, std::uint64_t seed)
    {
        if (!(rate > 0.0) || rate > 1.0)
            return Status::badConfig("sampling rate ", rate,
                                     " out of (0, 1]");
        auto threshold = static_cast<std::uint64_t>(
            rate * static_cast<double>(kModulus) + 0.5);
        if (threshold == 0)
            threshold = 1;
        if (threshold > kModulus)
            threshold = kModulus;
        return SamplingPredicate(threshold, seed);
    }

    /** hash(line) mod P — the line's fixed admission bucket. */
    std::uint64_t
    bucketOf(LineAddr line) const
    {
        return hash.mix(line.value()) & (kModulus - 1);
    }

    /** The SHARDS test: bucket < threshold. */
    bool sampled(LineAddr line) const { return bucketOf(line) < thr; }

    /** Current threshold T. */
    std::uint64_t threshold() const { return thr; }

    /** Effective sampling rate T/P. */
    double
    rate() const
    {
        return static_cast<double>(thr) /
               static_cast<double>(kModulus);
    }

    /**
     * Lower the threshold (SHARDS-adj).  Raising it would re-admit
     * lines whose history was never tracked, so that is refused.
     */
    void
    lowerThreshold(std::uint64_t new_threshold)
    {
        if (new_threshold < thr && new_threshold > 0)
            thr = new_threshold;
    }

  private:
    SamplingPredicate(std::uint64_t threshold, std::uint64_t seed)
        : hash(seed), thr(threshold)
    {}

    SampleHash hash;
    std::uint64_t thr;
};

} // namespace ccm

#endif // CCM_COMMON_SAMPLE_HASH_HH
