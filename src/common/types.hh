/**
 * @file
 * Fundamental type aliases shared by every subsystem.
 */

#ifndef CCM_COMMON_TYPES_HH
#define CCM_COMMON_TYPES_HH

#include <cstdint>

namespace ccm
{

/** A byte address in the simulated 64-bit address space. */
using Addr = std::uint64_t;

/** A simulated clock cycle count. */
using Cycle = std::uint64_t;

/** A monotonically increasing event/instruction counter. */
using Count = std::uint64_t;

/** Sentinel for "no address". */
constexpr Addr invalidAddr = ~static_cast<Addr>(0);

} // namespace ccm

#endif // CCM_COMMON_TYPES_HH
