/**
 * @file
 * Leveled structured logging: the one sanctioned path to stderr.
 *
 * Every line carries the same prefix —
 *
 *   [E 12.345678 t3 s7] message
 *
 * level letter (T/D/I/W/E), monotonic seconds since process start,
 * a dense per-thread id (t0 is the first thread that ever logged),
 * and, inside a LogStreamScope, the serve stream id the thread is
 * working on.  The whole line is formatted into one buffer and
 * written with a single fwrite, so concurrent writers cannot
 * interleave mid-line — no lock is taken and no LockRank is involved,
 * which means logging is safe while holding any mutex.
 *
 * The threshold comes from the CCM_LOG_LEVEL environment variable
 * (trace | debug | info | warn | error | off; default info), read
 * once.  The CCM_LOG_* macros evaluate their arguments only when the
 * level is enabled, so a disabled debug line costs one atomic load.
 *
 * Raw `std::cerr` / `fprintf(stderr, ...)` anywhere else in src/ or
 * tools/ is a lint error (tools/ccm-lint), mirroring the raw-sync ban:
 * ad-hoc writes would bypass the prefix, the threshold, and the
 * atomicity guarantee.  gem5-flavoured ccm_panic/ccm_fatal/ccm_warn/
 * ccm_inform (common/logging.hh) route through this layer too.
 */

#ifndef CCM_COMMON_LOG_HH
#define CCM_COMMON_LOG_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "common/logging.hh"
#include "common/status.hh"

namespace ccm
{

/** Severity levels, ascending; Off disables everything. */
enum class LogLevel : int
{
    Trace = 0,
    Debug = 1,
    Info = 2,
    Warn = 3,
    Error = 4,
    Off = 5,
};

/** Stable lower-case name ("trace", ..., "off"). */
const char *toString(LogLevel level);

/** Parse a CCM_LOG_LEVEL value (lower-case level names). */
Expected<LogLevel> parseLogLevel(std::string_view name);

/** The active threshold (CCM_LOG_LEVEL, cached at first use). */
LogLevel logThreshold();

/** Override the threshold at runtime (tools' --log-level, tests). */
void setLogThreshold(LogLevel level);

/** True when a message at @p level would be written. */
inline bool
logEnabled(LogLevel level)
{
    return level != LogLevel::Off && level >= logThreshold();
}

/**
 * Dense id of the calling thread: 0, 1, 2, ... in first-log order.
 * Stable for the thread's lifetime; also stamped into span traces so
 * log lines and trace rows correlate.
 */
int logThreadId();

/** Monotonic seconds since process start (the line timestamps). */
double logUptimeSeconds();

/**
 * While alive, log lines from this thread carry "s<id>" — used by the
 * serve daemon so per-stream work is attributable in shared logs.
 * Nests; the innermost scope wins.
 */
class LogStreamScope
{
  public:
    explicit LogStreamScope(std::uint64_t stream_id);
    ~LogStreamScope();

    LogStreamScope(const LogStreamScope &) = delete;
    LogStreamScope &operator=(const LogStreamScope &) = delete;

  private:
    std::uint64_t saved_;
    bool savedActive_;
};

namespace detail
{

/** Format the prefix and write one complete line (no level check). */
void logWrite(LogLevel level, const std::string &msg);

} // namespace detail

} // namespace ccm

/** Log at an explicit level; arguments are streamed like ccm_warn. */
#define CCM_LOG(level, ...) \
    do { \
        if (::ccm::logEnabled(level)) \
            ::ccm::detail::logWrite( \
                level, ::ccm::detail::concat(__VA_ARGS__)); \
    } while (false)

#define CCM_LOG_TRACE(...) CCM_LOG(::ccm::LogLevel::Trace, __VA_ARGS__)
#define CCM_LOG_DEBUG(...) CCM_LOG(::ccm::LogLevel::Debug, __VA_ARGS__)
#define CCM_LOG_INFO(...) CCM_LOG(::ccm::LogLevel::Info, __VA_ARGS__)
#define CCM_LOG_WARN(...) CCM_LOG(::ccm::LogLevel::Warn, __VA_ARGS__)
#define CCM_LOG_ERROR(...) CCM_LOG(::ccm::LogLevel::Error, __VA_ARGS__)

#endif // CCM_COMMON_LOG_HH
