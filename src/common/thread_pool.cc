#include "common/thread_pool.hh"

namespace ccm
{

std::size_t
resolveJobCount(std::size_t jobs)
{
    if (jobs != 0)
        return jobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 4;
}

ThreadPool::ThreadPool(std::size_t workers)
{
    const std::size_t n = resolveJobCount(workers);
    threads.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        threads.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    waitIdle();
    {
        MutexLock lock(mtx);
        stopping = true;
    }
    workAvailable.notifyAll();
    for (std::thread &t : threads)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        MutexLock lock(mtx);
        queue.push_back(std::move(task));
    }
    workAvailable.notifyOne();
}

void
ThreadPool::waitIdle()
{
    MutexLock lock(mtx);
    allDone.wait(mtx, [this]() CCM_REQUIRES(mtx) {
        return queue.empty() && busy == 0;
    });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            MutexLock lock(mtx);
            workAvailable.wait(mtx, [this]() CCM_REQUIRES(mtx) {
                return stopping || !queue.empty();
            });
            if (queue.empty())
                return; // stopping and drained
            task = std::move(queue.front());
            queue.pop_front();
            ++busy;
        }
        task();
        {
            MutexLock lock(mtx);
            --busy;
            if (queue.empty() && busy == 0)
                allDone.notifyAll();
        }
    }
}

} // namespace ccm
