#include "common/thread_pool.hh"

namespace ccm
{

std::size_t
resolveJobCount(std::size_t jobs)
{
    if (jobs != 0)
        return jobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 4;
}

ThreadPool::ThreadPool(std::size_t workers)
{
    const std::size_t n = resolveJobCount(workers);
    threads.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        threads.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    waitIdle();
    {
        std::lock_guard<std::mutex> lock(mtx);
        stopping = true;
    }
    workAvailable.notify_all();
    for (std::thread &t : threads)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        queue.push_back(std::move(task));
    }
    workAvailable.notify_one();
}

void
ThreadPool::waitIdle()
{
    std::unique_lock<std::mutex> lock(mtx);
    allDone.wait(lock, [this] { return queue.empty() && busy == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mtx);
            workAvailable.wait(
                lock, [this] { return stopping || !queue.empty(); });
            if (queue.empty())
                return; // stopping and drained
            task = std::move(queue.front());
            queue.pop_front();
            ++busy;
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mtx);
            --busy;
            if (queue.empty() && busy == 0)
                allDone.notify_all();
        }
    }
}

} // namespace ccm
