#include "common/stats.hh"

#include <iomanip>

namespace ccm
{

Counter &
StatGroup::add(const std::string &stat_name)
{
    auto *e = new Entry{stat_name, Counter{}, nullptr};
    entries.push_back(e);
    return e->counter;
}

void
StatGroup::addExternal(const std::string &stat_name,
                       const std::uint64_t *value)
{
    auto *e = new Entry{stat_name, Counter{}, value};
    entries.push_back(e);
}

void
StatGroup::resetAll()
{
    for (auto *e : entries) {
        if (!e->external)
            e->counter.reset();
    }
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto *e : entries) {
        os << name_ << "." << e->name << " " << e->currentValue()
           << "\n";
    }
}

StatSnapshot
StatGroup::snapshot() const
{
    StatSnapshot snap;
    snap.reserve(entries.size());
    for (const auto *e : entries)
        snap.push_back({e->name, e->currentValue()});
    return snap;
}

StatGroup::~StatGroup()
{
    for (auto *e : entries)
        delete e;
}

double
safeRatio(std::uint64_t a, std::uint64_t b)
{
    return b == 0 ? 0.0 : static_cast<double>(a) / static_cast<double>(b);
}

double
pct(std::uint64_t a, std::uint64_t b)
{
    return 100.0 * safeRatio(a, b);
}

} // namespace ccm
