#include "common/status.hh"

namespace ccm
{

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Ok:
        return "ok";
      case ErrorCode::BadConfig:
        return "bad-config";
      case ErrorCode::CorruptTrace:
        return "corrupt-trace";
      case ErrorCode::IoError:
        return "io-error";
      case ErrorCode::NotFound:
        return "not-found";
      case ErrorCode::Unsupported:
        return "unsupported";
      case ErrorCode::Internal:
        return "internal";
      case ErrorCode::Aborted:
        return "aborted";
      case ErrorCode::Unavailable:
        return "unavailable";
    }
    return "unknown";
}

std::string
Status::toString() const
{
    if (isOk())
        return "ok";
    return std::string(errorCodeName(code_)) + ": " + msg;
}

void
fatalIfError(const Status &s)
{
    if (!s.isOk())
        ccm_fatal(s.message());
}

} // namespace ccm
