#include "common/status.hh"

#include <cstring>

namespace ccm
{

namespace
{

/**
 * Overload dispatch over the two strerror_r flavours: glibc's GNU
 * variant returns the message pointer, the XSI variant returns an
 * int and fills the buffer.  Overloading sidesteps the #ifdef soup;
 * exactly one overload is used per libc, hence maybe_unused.
 */
[[maybe_unused]] const char *
sysErrorText(char *returned, const char *)
{
    return returned;
}

[[maybe_unused]] const char *
sysErrorText(int rc, const char *buf)
{
    return rc == 0 ? buf : nullptr;
}

} // namespace

std::string
errnoString(int err)
{
    char buf[128] = {};
    const char *text =
        sysErrorText(::strerror_r(err, buf, sizeof(buf)), buf);
    if (text != nullptr && text[0] != '\0')
        return text;
    return "errno " + std::to_string(err);
}

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Ok:
        return "ok";
      case ErrorCode::BadConfig:
        return "bad-config";
      case ErrorCode::CorruptTrace:
        return "corrupt-trace";
      case ErrorCode::IoError:
        return "io-error";
      case ErrorCode::NotFound:
        return "not-found";
      case ErrorCode::Unsupported:
        return "unsupported";
      case ErrorCode::Internal:
        return "internal";
      case ErrorCode::Aborted:
        return "aborted";
      case ErrorCode::Unavailable:
        return "unavailable";
    }
    return "unknown";
}

std::string
Status::toString() const
{
    if (isOk())
        return "ok";
    return std::string(errorCodeName(code_)) + ": " + msg;
}

void
fatalIfError(const Status &s)
{
    if (!s.isOk())
        ccm_fatal(s.message());
}

} // namespace ccm
