#include "common/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace ccm
{

TextTable::TextTable(std::vector<std::string> column_headers)
    : headers(std::move(column_headers))
{
    if (headers.empty())
        ccm_fatal("TextTable needs at least one column");
}

std::size_t
TextTable::addRow(const std::string &label)
{
    body.emplace_back(headers.size());
    body.back()[0] = label;
    return body.size() - 1;
}

void
TextTable::set(std::size_t row, std::size_t col, const std::string &v)
{
    if (row >= body.size() || col >= headers.size())
        ccm_panic("TextTable cell (", row, ",", col, ") out of range");
    body[row][col] = v;
}

void
TextTable::setNum(std::size_t row, std::size_t col, double v,
                  int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    set(row, col, os.str());
}

const std::string &
TextTable::header(std::size_t col) const
{
    if (col >= headers.size())
        ccm_panic("TextTable header ", col, " out of range");
    return headers[col];
}

const std::string &
TextTable::cell(std::size_t row, std::size_t col) const
{
    if (row >= body.size() || col >= headers.size())
        ccm_panic("TextTable cell (", row, ",", col, ") out of range");
    return body[row][col];
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> width(headers.size());
    for (std::size_t c = 0; c < headers.size(); ++c) {
        width[c] = headers[c].size();
        for (const auto &row : body)
            width[c] = std::max(width[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "" : "  ");
            if (c == 0)
                os << std::left;
            else
                os << std::right;
            os << std::setw(static_cast<int>(width[c])) << row[c];
        }
        os << "\n";
    };

    print_row(headers);
    std::vector<std::string> rule(headers.size());
    for (std::size_t c = 0; c < headers.size(); ++c)
        rule[c] = std::string(width[c], '-');
    print_row(rule);
    for (const auto &row : body)
        print_row(row);
}

} // namespace ccm
