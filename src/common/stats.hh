/**
 * @file
 * Lightweight statistics package: named scalar counters and derived
 * ratios, grouped per component, with text dumping.
 *
 * Modelled loosely on gem5's stats but kept minimal: each simulated
 * component owns a StatGroup; counters register themselves by name so a
 * whole-system dump is one call.
 */

#ifndef CCM_COMMON_STATS_HH
#define CCM_COMMON_STATS_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace ccm
{

/** A single named 64-bit event counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * A group of related counters belonging to one component; supports
 * registration and formatted dumping.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Register a counter under @p stat_name; returns the counter. */
    Counter &add(const std::string &stat_name);

    /** Zero every registered counter. */
    void resetAll();

    /** Write "group.stat value" lines to @p os. */
    void dump(std::ostream &os) const;

    const std::string &name() const { return name_; }

  private:
    struct Entry
    {
        std::string name;
        Counter counter;
    };

    std::string name_;
    // Deque-like stability: entries are never removed, and we hand out
    // references, so store pointers.
    std::vector<Entry *> entries;

  public:
    ~StatGroup();
    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;
};

/** @return a / b as a double, or 0.0 when b == 0. */
double safeRatio(std::uint64_t a, std::uint64_t b);

/** @return a / b as a percentage, or 0.0 when b == 0. */
double pct(std::uint64_t a, std::uint64_t b);

} // namespace ccm

#endif // CCM_COMMON_STATS_HH
