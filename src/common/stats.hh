/**
 * @file
 * Lightweight statistics package: named scalar counters and derived
 * ratios, grouped per component, with text dumping.
 *
 * Modelled loosely on gem5's stats but kept minimal: each simulated
 * component owns a StatGroup; counters register themselves by name so a
 * whole-system dump is one call.
 */

#ifndef CCM_COMMON_STATS_HH
#define CCM_COMMON_STATS_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace ccm
{

/** A single named 64-bit event counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** One named counter value in a programmatic stats snapshot. */
struct StatEntry
{
    std::string name;
    std::uint64_t value = 0;
};

/** Ordered name/value dump of a whole group. */
using StatSnapshot = std::vector<StatEntry>;

/**
 * A group of related counters belonging to one component; supports
 * registration and formatted dumping.
 *
 * Counters come in two flavours: owned (add(), the group allocates
 * the Counter) and external (addExternal(), the group records a
 * pointer to a std::uint64_t that lives elsewhere — e.g. a MemStats
 * field).  Both appear in dump()/snapshot() under the registered
 * name, so one mechanism owns naming regardless of where the storage
 * lives.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Register a counter under @p stat_name; returns the counter. */
    Counter &add(const std::string &stat_name);

    /**
     * Register an externally-owned counter under @p stat_name.  The
     * pointee must outlive the group; resetAll() leaves it untouched
     * (its owner is responsible for resetting).
     */
    void addExternal(const std::string &stat_name,
                     const std::uint64_t *value);

    /** Zero every owned counter (external counters are untouched). */
    void resetAll();

    /** Write "group.stat value" lines to @p os. */
    void dump(std::ostream &os) const;

    /** Current name/value pairs, registration-ordered. */
    StatSnapshot snapshot() const;

    const std::string &name() const { return name_; }

    std::size_t numStats() const { return entries.size(); }

  private:
    struct Entry
    {
        std::string name;
        Counter counter;                        ///< owned storage
        const std::uint64_t *external = nullptr; ///< external storage

        std::uint64_t
        currentValue() const
        {
            return external ? *external : counter.value();
        }
    };

    std::string name_;
    // Deque-like stability: entries are never removed, and we hand out
    // references, so store pointers.
    std::vector<Entry *> entries;

  public:
    ~StatGroup();
    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;
};

/** @return a / b as a double, or 0.0 when b == 0. */
double safeRatio(std::uint64_t a, std::uint64_t b);

/** @return a / b as a percentage, or 0.0 when b == 0. */
double pct(std::uint64_t a, std::uint64_t b);

} // namespace ccm

#endif // CCM_COMMON_STATS_HH
