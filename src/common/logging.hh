/**
 * @file
 * gem5-flavoured status/error reporting: panic for simulator bugs,
 * fatal for user configuration errors, warn/inform for status.
 */

#ifndef CCM_COMMON_LOGGING_HH
#define CCM_COMMON_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace ccm
{

/**
 * Thrown instead of exiting when a ScopedFatalThrow is active, so a
 * harness sweeping many runs can record one run's fatal error and
 * carry on with the rest.
 */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/**
 * While an instance is alive, ccm_fatal throws FatalError rather than
 * calling std::exit, making user-input errors recoverable for the
 * duration of a guarded region (e.g. one row of a suite sweep).
 * Nests; ccm_panic (simulator bugs) still aborts.
 */
class ScopedFatalThrow
{
  public:
    ScopedFatalThrow();
    ~ScopedFatalThrow();

    ScopedFatalThrow(const ScopedFatalThrow &) = delete;
    ScopedFatalThrow &operator=(const ScopedFatalThrow &) = delete;
};

namespace detail
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Concatenate arbitrary streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

} // namespace ccm

/**
 * Abort the simulation: something happened that should never happen
 * regardless of user input (a simulator bug).
 */
#define ccm_panic(...) \
    ::ccm::detail::panicImpl(__FILE__, __LINE__, \
                             ::ccm::detail::concat(__VA_ARGS__))

/**
 * Terminate the simulation due to a user error (bad configuration,
 * invalid arguments).
 */
#define ccm_fatal(...) \
    ::ccm::detail::fatalImpl(__FILE__, __LINE__, \
                             ::ccm::detail::concat(__VA_ARGS__))

/** Report a suspicious-but-survivable condition. */
#define ccm_warn(...) \
    ::ccm::detail::warnImpl(::ccm::detail::concat(__VA_ARGS__))

/** Report normal operating status. */
#define ccm_inform(...) \
    ::ccm::detail::informImpl(::ccm::detail::concat(__VA_ARGS__))

#endif // CCM_COMMON_LOGGING_HH
