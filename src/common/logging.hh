/**
 * @file
 * gem5-flavoured status/error reporting: panic for simulator bugs,
 * fatal for user configuration errors, warn/inform for status.
 */

#ifndef CCM_COMMON_LOGGING_HH
#define CCM_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace ccm
{

namespace detail
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Concatenate arbitrary streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

} // namespace ccm

/**
 * Abort the simulation: something happened that should never happen
 * regardless of user input (a simulator bug).
 */
#define ccm_panic(...) \
    ::ccm::detail::panicImpl(__FILE__, __LINE__, \
                             ::ccm::detail::concat(__VA_ARGS__))

/**
 * Terminate the simulation due to a user error (bad configuration,
 * invalid arguments).
 */
#define ccm_fatal(...) \
    ::ccm::detail::fatalImpl(__FILE__, __LINE__, \
                             ::ccm::detail::concat(__VA_ARGS__))

/** Report a suspicious-but-survivable condition. */
#define ccm_warn(...) \
    ::ccm::detail::warnImpl(::ccm::detail::concat(__VA_ARGS__))

/** Report normal operating status. */
#define ccm_inform(...) \
    ::ccm::detail::informImpl(::ccm::detail::concat(__VA_ARGS__))

#endif // CCM_COMMON_LOGGING_HH
