/**
 * @file
 * Flat open-addressed hash set of Addr keys.
 *
 * Built for hot-loop membership bookkeeping (the oracle consults and
 * extends its ever-seen set once per classified reference): probing
 * walks one contiguous array, slots are selected by a Fibonacci mix
 * of the key so line-aligned power-of-two-strided addresses spread
 * instead of clustering, and the table doubles at load factor 1/2 so
 * probe chains stay short.  A combined insertCheck() answers "was it
 * already present?" with the same probe that performs the insert.
 */

#ifndef CCM_COMMON_FLAT_SET_HH
#define CCM_COMMON_FLAT_SET_HH

#include <cstddef>
#include <vector>

#include "common/types.hh"

namespace ccm
{

/** Unbounded flat hash set of addresses. */
class FlatAddrSet
{
  public:
    FlatAddrSet() { slots.assign(minSlots, emptyMark); }

    /**
     * Insert @p v if absent.
     * @return true iff @p v was already a member.
     */
    bool
    insertCheck(Addr v)
    {
        if (v == emptyMark) {
            // The all-ones key doubles as the empty-slot marker, so
            // its membership lives in a side flag.
            const bool had = hasMark;
            hasMark = true;
            return had;
        }
        std::size_t i = slotOf(v);
        while (slots[i] != emptyMark) {
            if (slots[i] == v)
                return true;
            i = (i + 1) & mask();
        }
        slots[i] = v;
        ++stored;
        if (stored * 2 >= slots.size())
            grow();
        return false;
    }

    /** @return true iff @p v is a member (no insert). */
    bool
    contains(Addr v) const
    {
        if (v == emptyMark)
            return hasMark;
        std::size_t i = slotOf(v);
        while (slots[i] != emptyMark) {
            if (slots[i] == v)
                return true;
            i = (i + 1) & mask();
        }
        return false;
    }

    std::size_t size() const { return stored + (hasMark ? 1 : 0); }

    void
    clear()
    {
        slots.assign(minSlots, emptyMark);
        stored = 0;
        hasMark = false;
    }

  private:
    /** Empty-slot marker; the value itself is tracked in hasMark. */
    static constexpr Addr emptyMark = ~Addr{0};
    static constexpr std::size_t minSlots = 1024;

    std::size_t mask() const { return slots.size() - 1; }

    /** Fibonacci mix; high bits select the slot. */
    std::size_t
    slotOf(Addr v) const
    {
        return static_cast<std::size_t>(
            (v * 0x9E3779B97F4A7C15ull) >> hashShift);
    }

    void
    grow()
    {
        std::vector<Addr> old = std::move(slots);
        slots.assign(old.size() * 2, emptyMark);
        --hashShift;
        for (Addr v : old) {
            if (v == emptyMark)
                continue;
            std::size_t i = slotOf(v);
            while (slots[i] != emptyMark)
                i = (i + 1) & mask();
            slots[i] = v;
        }
    }

    /** 64 - log2(slots.size()), kept in sync by grow(). */
    unsigned hashShift = 54;
    std::size_t stored = 0;
    bool hasMark = false;
    std::vector<Addr> slots;
};

} // namespace ccm

#endif // CCM_COMMON_FLAT_SET_HH
