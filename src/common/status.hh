/**
 * @file
 * Recoverable error handling: a lightweight Status / Expected<T>
 * result type.
 *
 * ccm_fatal is the right tool when a bench binary hits a bad
 * configuration — but a harness sweeping a whole suite, or a server
 * ingesting traces from many producers, must survive one corrupt
 * input and keep going.  Fallible operations therefore return a
 * Status (or an Expected<T> carrying either a value or a Status);
 * thin fatal-on-error wrappers keep the one-liner ergonomics for the
 * binaries that do want to die.
 */

#ifndef CCM_COMMON_STATUS_HH
#define CCM_COMMON_STATUS_HH

#include <optional>
#include <string>
#include <utility>

#include "common/logging.hh"

namespace ccm
{

/** Broad failure category carried by a Status. */
enum class ErrorCode
{
    Ok = 0,
    BadConfig,    ///< invalid user-supplied parameters
    CorruptTrace, ///< malformed trace-file contents
    IoError,      ///< the OS refused an open/read/write/close
    NotFound,     ///< named entity (workload, file) does not exist
    Unsupported,  ///< recognized but unhandled (e.g. future version)
    Internal,     ///< invariant violation escaped as an error
    Aborted,      ///< operation cut short (disconnect, drain, reap)
    Unavailable,  ///< resource refused: backpressure shed, draining
};

/** Stable lower-case name of @p code (e.g. "corrupt-trace"). */
const char *errorCodeName(ErrorCode code);

/**
 * Thread-safe strerror replacement for building Status messages.
 * std::strerror writes into shared static storage and is flagged by
 * clang-tidy's concurrency-mt-unsafe — daemon error paths run on many
 * threads, so errno formatting goes through strerror_r here instead.
 */
std::string errnoString(int err);

/** The result of a fallible operation: Ok, or a code plus message. */
class Status
{
  public:
    /** Default-constructed status is Ok. */
    Status() = default;

    static Status ok() { return Status(); }

    static Status
    error(ErrorCode code, std::string msg)
    {
        Status s;
        s.code_ = code;
        s.msg = std::move(msg);
        return s;
    }

    template <typename... Args>
    static Status
    badConfig(Args &&...args)
    {
        return error(ErrorCode::BadConfig,
                     detail::concat(std::forward<Args>(args)...));
    }

    template <typename... Args>
    static Status
    corruptTrace(Args &&...args)
    {
        return error(ErrorCode::CorruptTrace,
                     detail::concat(std::forward<Args>(args)...));
    }

    template <typename... Args>
    static Status
    ioError(Args &&...args)
    {
        return error(ErrorCode::IoError,
                     detail::concat(std::forward<Args>(args)...));
    }

    template <typename... Args>
    static Status
    notFound(Args &&...args)
    {
        return error(ErrorCode::NotFound,
                     detail::concat(std::forward<Args>(args)...));
    }

    template <typename... Args>
    static Status
    unsupported(Args &&...args)
    {
        return error(ErrorCode::Unsupported,
                     detail::concat(std::forward<Args>(args)...));
    }

    template <typename... Args>
    static Status
    internal(Args &&...args)
    {
        return error(ErrorCode::Internal,
                     detail::concat(std::forward<Args>(args)...));
    }

    template <typename... Args>
    static Status
    aborted(Args &&...args)
    {
        return error(ErrorCode::Aborted,
                     detail::concat(std::forward<Args>(args)...));
    }

    template <typename... Args>
    static Status
    unavailable(Args &&...args)
    {
        return error(ErrorCode::Unavailable,
                     detail::concat(std::forward<Args>(args)...));
    }

    bool isOk() const { return code_ == ErrorCode::Ok; }
    ErrorCode code() const { return code_; }

    /** Failure message; empty for Ok. */
    const std::string &message() const { return msg; }

    /**
     * Prepend a context frame: "<ctx>: <message>".  Chains, so the
     * outermost caller's context reads first, e.g.
     * "loading suite: workload 'gcc': bad trace magic in gcc.bin".
     */
    Status
    withContext(const std::string &ctx) const
    {
        if (isOk())
            return *this;
        return error(code_, ctx + ": " + msg);
    }

    /** "corrupt-trace: bad trace magic in foo.bin" (or "ok"). */
    std::string toString() const;

  private:
    ErrorCode code_ = ErrorCode::Ok;
    std::string msg;
};

/** Die (ccm_fatal-style) if @p s is an error; no-op otherwise. */
void fatalIfError(const Status &s);

/**
 * Either a value or the Status explaining why there is none.
 * Accessing value() on an error is a programming bug (panics).
 */
template <typename T>
class Expected
{
  public:
    Expected(T v) : val(std::move(v)) {}

    Expected(Status s) : err(std::move(s))
    {
        if (err.isOk())
            ccm_panic("Expected constructed from an Ok status");
    }

    bool ok() const { return val.has_value(); }

    /** Ok status when a value is present, the error otherwise. */
    const Status &status() const { return err; }

    T &
    value()
    {
        if (!ok())
            ccm_panic("Expected::value() on error: ", err.toString());
        return *val;
    }

    const T &
    value() const
    {
        if (!ok())
            ccm_panic("Expected::value() on error: ", err.toString());
        return *val;
    }

    /** Move the value out (e.g. into a unique_ptr variable). */
    T &&
    take()
    {
        if (!ok())
            ccm_panic("Expected::take() on error: ", err.toString());
        return std::move(*val);
    }

    /** The value, or @p fallback when this holds an error. */
    T
    valueOr(T fallback) const
    {
        return ok() ? *val : std::move(fallback);
    }

    /** The value; dies with the error message when there is none. */
    T &&
    valueOrDie()
    {
        fatalIfError(err);
        return std::move(*val);
    }

  private:
    std::optional<T> val;
    Status err;
};

} // namespace ccm

#endif // CCM_COMMON_STATUS_HH
