/**
 * @file
 * Strongly-typed address domains.
 *
 * Every quantity derived from a memory address lives in its own
 * domain — byte address, line-aligned address, set index, tag, way —
 * and the classic cache-simulator bug is silently crossing domains
 * (e.g. passing a byte address where a line address is expected: an
 * off-by-log2(lineBytes) error that corrupts conflict/capacity
 * classification without crashing anything).  These zero-overhead
 * wrapper structs make such mix-ups compile errors: construction from
 * a raw integer is explicit, and no two domains convert into each
 * other.  CacheGeometry owns the only blessed conversions
 * (lineOf/setOf/tagOf/recompose).
 *
 * The raw value is recoverable via value(); treat that as the escape
 * hatch for serialization and for arithmetic that genuinely has no
 * domain-typed form.
 */

#ifndef CCM_COMMON_ADDR_TYPES_HH
#define CCM_COMMON_ADDR_TYPES_HH

#include <cstddef>
#include <functional>
#include <type_traits>

#include "common/types.hh"

namespace ccm
{

namespace detail
{

/**
 * CRTP base of a strongly-typed integral wrapper: explicit
 * construction from the representation, full comparison set, and
 * nothing else.  Derived types opt into domain-specific operations.
 */
template <typename Derived, typename Rep>
class StrongValue
{
  public:
    using rep_type = Rep;

    constexpr StrongValue() = default;

    /** Explicit: raw integers never silently enter a domain. */
    explicit constexpr StrongValue(Rep raw) : v(raw) {}

    /** The raw untyped value — the escape hatch. */
    constexpr Rep value() const { return v; }

    friend constexpr bool
    operator==(Derived a, Derived b)
    {
        return a.v == b.v;
    }

    friend constexpr bool
    operator!=(Derived a, Derived b)
    {
        return a.v != b.v;
    }

    friend constexpr bool
    operator<(Derived a, Derived b)
    {
        return a.v < b.v;
    }

    friend constexpr bool
    operator<=(Derived a, Derived b)
    {
        return a.v <= b.v;
    }

    friend constexpr bool
    operator>(Derived a, Derived b)
    {
        return a.v > b.v;
    }

    friend constexpr bool
    operator>=(Derived a, Derived b)
    {
        return a.v >= b.v;
    }

  private:
    Rep v{};
};

} // namespace detail

/** A byte address in the simulated 64-bit address space. */
struct ByteAddr : detail::StrongValue<ByteAddr, Addr>
{
    using StrongValue::StrongValue;

    /** This address displaced by @p bytes (wraps like Addr). */
    constexpr ByteAddr
    advancedBy(Addr bytes) const
    {
        return ByteAddr{value() + bytes};
    }
};

/**
 * A line-aligned byte address (offset bits zero).  Produced only by
 * CacheGeometry::lineOf / recompose, never by ad-hoc masking.
 */
struct LineAddr : detail::StrongValue<LineAddr, Addr>
{
    using StrongValue::StrongValue;

    /**
     * A line address is itself a (line-aligned) byte address, so this
     * direction is always safe; the reverse conversion requires a
     * CacheGeometry (lineOf) because it must drop the offset bits.
     */
    constexpr ByteAddr
    asByte() const
    {
        return ByteAddr{value()};
    }
};

/** Index of a set within one cache's set array. */
struct SetIndex : detail::StrongValue<SetIndex, std::size_t>
{
    using StrongValue::StrongValue;
};

/** The tag of a line: address bits above offset + index. */
struct Tag : detail::StrongValue<Tag, Addr>
{
    using StrongValue::StrongValue;
};

/** A way within a set (0 .. assoc-1). */
struct WayIndex : detail::StrongValue<WayIndex, unsigned>
{
    using StrongValue::StrongValue;
};

/** Sentinels for "no address" in each address-valued domain. */
inline constexpr ByteAddr invalidByteAddr{invalidAddr};
inline constexpr LineAddr invalidLineAddr{invalidAddr};

/**
 * Fibonacci-mix hash for raw Addr keys in hash containers.  The
 * standard library's integer hash is the identity on common
 * implementations, which clusters the page numbers and line
 * addresses this repo keys maps with (sequential and power-of-two
 * strided); multiplying by the golden-ratio constant and folding the
 * high half down spreads them.
 */
struct AddrMixHash
{
    std::size_t
    operator()(Addr v) const noexcept
    {
        const Addr x = v * 0x9E3779B97F4A7C15ull;
        return static_cast<std::size_t>(x ^ (x >> 32));
    }
};

// The wrappers are free abstractions: same size, trivially copyable,
// and (unlike the raw integers) mutually non-convertible.
static_assert(sizeof(ByteAddr) == sizeof(Addr));
static_assert(sizeof(LineAddr) == sizeof(Addr));
static_assert(std::is_trivially_copyable_v<ByteAddr>);
static_assert(std::is_trivially_copyable_v<LineAddr>);
static_assert(std::is_trivially_copyable_v<SetIndex>);
static_assert(std::is_trivially_copyable_v<Tag>);
static_assert(std::is_trivially_copyable_v<WayIndex>);
static_assert(!std::is_convertible_v<ByteAddr, LineAddr>);
static_assert(!std::is_convertible_v<LineAddr, ByteAddr>);
static_assert(!std::is_convertible_v<Addr, ByteAddr>);
static_assert(!std::is_convertible_v<ByteAddr, Addr>);

} // namespace ccm

// Hash support so line addresses and tags can key hash containers.
template <>
struct std::hash<ccm::ByteAddr>
{
    std::size_t
    operator()(ccm::ByteAddr a) const noexcept
    {
        return std::hash<ccm::Addr>{}(a.value());
    }
};

template <>
struct std::hash<ccm::LineAddr>
{
    std::size_t
    operator()(ccm::LineAddr a) const noexcept
    {
        return std::hash<ccm::Addr>{}(a.value());
    }
};

template <>
struct std::hash<ccm::Tag>
{
    std::size_t
    operator()(ccm::Tag t) const noexcept
    {
        return std::hash<ccm::Addr>{}(t.value());
    }
};

template <>
struct std::hash<ccm::SetIndex>
{
    std::size_t
    operator()(ccm::SetIndex s) const noexcept
    {
        return std::hash<std::size_t>{}(s.value());
    }
};

#endif // CCM_COMMON_ADDR_TYPES_HH
