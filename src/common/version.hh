/**
 * @file
 * The one place the release version string lives.  Surfaced by the
 * ccm-serve control plane (stats "version" field) so monitors can
 * detect upgrades across daemon restarts without parsing logs.
 */

#ifndef CCM_COMMON_VERSION_HH
#define CCM_COMMON_VERSION_HH

namespace ccm
{

/** Repository release version ("major.minor.patch"). */
inline constexpr const char *kCcmVersion = "0.8.0";

} // namespace ccm

#endif // CCM_COMMON_VERSION_HH
