/**
 * @file
 * Plain-text result tables used by the benchmark harness to print the
 * rows/series the paper's figures and tables report.
 */

#ifndef CCM_COMMON_TABLE_HH
#define CCM_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace ccm
{

/**
 * A simple column-aligned text table.  Cells are strings; numeric
 * convenience setters format with fixed precision.
 */
class TextTable
{
  public:
    /** @param column_headers header row, first cell names the row label */
    explicit TextTable(std::vector<std::string> column_headers);

    /** Begin a new row with the given label; returns the row index. */
    std::size_t addRow(const std::string &label);

    /** Set cell (row, col) to a string; col 0 is the label column. */
    void set(std::size_t row, std::size_t col, const std::string &v);

    /** Set cell to a fixed-precision number. */
    void setNum(std::size_t row, std::size_t col, double v,
                int precision = 2);

    /** Append a column-aligned rendering to @p os. */
    void print(std::ostream &os) const;

    std::size_t rows() const { return body.size(); }
    std::size_t cols() const { return headers.size(); }

    /** Header of column @p col (panics out of range). */
    const std::string &header(std::size_t col) const;

    /** Cell contents (panics out of range); col 0 is the label. */
    const std::string &cell(std::size_t row, std::size_t col) const;

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> body;
};

} // namespace ccm

#endif // CCM_COMMON_TABLE_HH
