/**
 * @file
 * Occupancy-based timing resources: cache banks, buffer ports, the
 * L1<->L2 bus.  Each unit tracks a busy-until cycle; an acquisition
 * starts at the later of the requested cycle and the earliest unit's
 * free cycle.
 */

#ifndef CCM_HIERARCHY_RESOURCE_HH
#define CCM_HIERARCHY_RESOURCE_HH

#include <algorithm>
#include <vector>

#include "common/types.hh"

namespace ccm
{

/**
 * A pool of identical units (banks/ports).  acquire() picks the unit
 * that frees earliest.
 *
 * Each unit keeps a single busy-until value, so occupancy must be
 * charged at (or near) the request's initiation time: charging far in
 * the future would block every earlier request on the same unit.
 * Callers therefore charge bandwidth when an operation *starts*
 * (fetch issue, fill initiation) and account latency separately —
 * the classic trace-simulator throughput/latency split.
 */
class ResourcePool
{
  public:
    explicit ResourcePool(unsigned units) : busy(units, 0) {}

    /**
     * Occupy the earliest-free unit for @p duration cycles, no
     * earlier than @p start.
     *
     * @return the cycle the occupancy actually begins
     */
    Cycle
    acquire(Cycle start, Cycle duration)
    {
        auto it = std::min_element(busy.begin(), busy.end());
        Cycle begin = std::max(start, *it);
        *it = begin + duration;
        return begin;
    }

    /**
     * Occupy a *specific* unit (e.g. the bank an address maps to).
     */
    Cycle
    acquireUnit(unsigned unit, Cycle start, Cycle duration)
    {
        Cycle begin = std::max(start, busy[unit]);
        busy[unit] = begin + duration;
        return begin;
    }

    unsigned units() const { return unsigned(busy.size()); }

    void reset() { std::fill(busy.begin(), busy.end(), 0); }

  private:
    std::vector<Cycle> busy;
};

} // namespace ccm

#endif // CCM_HIERARCHY_RESOURCE_HH
