#include "hierarchy/memstats.hh"

namespace ccm
{

void
MemStats::dump(std::ostream &os, const char *prefix) const
{
    forEachField([&](const char *name, Count MemStats::*field) {
        os << prefix << "." << name << " " << this->*field << "\n";
    });
    forEachDerived([&](const char *name, double v) {
        os << prefix << "." << name << " " << v << "\n";
    });
}

MemStats
MemStats::minus(const MemStats &prev) const
{
    MemStats d;
    forEachField([&](const char *, Count MemStats::*field) {
        d.*field = this->*field - prev.*field;
    });
    return d;
}

void
MemStats::registerCounters(StatGroup &group) const
{
    forEachField([&](const char *name, Count MemStats::*field) {
        group.addExternal(name, &(this->*field));
    });
}

StatSnapshot
MemStats::snapshot() const
{
    StatSnapshot snap;
    forEachField([&](const char *name, Count MemStats::*field) {
        snap.push_back({name, this->*field});
    });
    return snap;
}

} // namespace ccm
