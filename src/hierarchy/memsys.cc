#include "hierarchy/memsys.hh"

#include "common/logging.hh"

namespace ccm
{

namespace
{

/** Bank selection: low line-address bits (paper: 8-way banking). */
unsigned
bankOf(const CacheGeometry &g, ByteAddr addr, unsigned banks)
{
    return static_cast<unsigned>((addr.value() >> g.offsetBits()) &
                                 (banks - 1));
}

} // namespace

MemorySystem::MemorySystem(const MemSysConfig &config)
    : cfg(config),
      l1Geom(config.l1Bytes, config.l1Assoc, config.lineBytes),
      l2(CacheGeometry(config.l2Bytes, config.l2Assoc,
                       config.lineBytes)),
      mct_(l1Geom.numSets(), config.mctTagBits),
      nextLine(config.lineBytes),
      mshrs(config.mshrs),
      banks(config.l1Banks),
      bufReadPorts(config.bufReadPorts),
      bufWritePorts(config.bufWritePorts),
      bus(1)
{
    if (cfg.mode == AssistMode::PseudoAssoc) {
        pseudo = std::make_unique<PseudoAssocCache>(
            l1Geom, cfg.pseudoUseMct, cfg.mctTagBits);
    } else {
        l1 = std::make_unique<Cache>(l1Geom);
    }

    if (hasBuffer())
        buf = std::make_unique<AssistBuffer>(cfg.bufEntries,
                                             cfg.bufRepl);

    if (cfg.mode == AssistMode::PrefetchBuffer &&
        cfg.prefetch.kind == PrefetchKind::Rpt) {
        rpt = std::make_unique<RptPrefetcher>(cfg.prefetch.rptEntries);
    }

    if (cfg.mode == AssistMode::BypassBuffer) {
        if (cfg.exclude.algo == ExcludeAlgo::Mat)
            mat = std::make_unique<MemoryAccessTable>();
        if (cfg.exclude.algo == ExcludeAlgo::TysonPc)
            pcTable = std::make_unique<PcMissTable>();
        if (cfg.exclude.algo == ExcludeAlgo::CapacityHistory ||
            cfg.exclude.algo == ExcludeAlgo::ConflictHistory) {
            history = std::make_unique<MissHistoryTable>();
        }
    }
}

bool
MemorySystem::hasBuffer() const
{
    switch (cfg.mode) {
      case AssistMode::VictimCache:
      case AssistMode::PrefetchBuffer:
      case AssistMode::BypassBuffer:
      case AssistMode::Amb:
        return true;
      default:
        return false;
    }
}

std::optional<Cycle>
MemorySystem::fetchLine(LineAddr line_addr, Cycle start,
                        bool is_prefetch)
{
    mshrs.expire(start);

    if (auto ready = mshrs.inFlight(line_addr))
        return *ready;   // merged into the in-flight miss

    if (mshrs.full()) {
        if (is_prefetch)
            return std::nullopt;  // "prefetches are discarded"
        Cycle wait = mshrs.earliestReady();
        if (wait > start) {
            st.mshrStallCycles += wait - start;
            start = wait;
        }
        mshrs.expire(start);
    }

    Cycle bus_start = bus.acquire(start, cfg.busCyclesPerTransfer);

    Cycle ready;
    if (l2.access(line_addr.asByte(), false)) {
        ++st.l2Hits;
        ready = bus_start + cfg.l2Latency;
    } else {
        ++st.l2Misses;
        l2.fill(line_addr.asByte(), false, false);
        ready = bus_start + cfg.memLatency;
    }

    mshrs.allocate(line_addr, ready);
    return ready;
}

void
MemorySystem::writeback(LineAddr line_addr, Cycle when)
{
    ++st.writebacks;
    bus.acquire(when, cfg.busCyclesPerTransfer);
    if (!l2.access(line_addr.asByte(), true))
        l2.fill(line_addr.asByte(), false, true);
}

void
MemorySystem::bufferInsert(LineAddr line_addr, BufSource source,
                           bool conflict_bit, bool dirty, Cycle ready,
                           Cycle when)
{
    bufWritePorts.acquire(when, 2);  // full line write: a port, 2 cyc
    BufEvicted disp = buf->insert(line_addr, source, conflict_bit,
                                  dirty, ready);
    if (disp.valid) {
        if (disp.source == BufSource::Prefetch && !disp.wasUsed)
            ++st.prefWasted;
        if (disp.dirty)
            writeback(disp.lineAddr, when);
    }
}

void
MemorySystem::fillL1(ByteAddr addr, bool miss_is_conflict,
                     bool is_store, Cycle when,
                     bool allow_victim_fill)
{
    banks.acquireUnit(bankOf(l1Geom, addr, cfg.l1Banks), when, 1);
    FillResult ev = l1->fill(addr, miss_is_conflict, is_store);
    if (!ev.valid)
        return;

    mct_.recordEviction(l1Geom.setOf(addr),
                        l1Geom.tagOf(ev.lineAddr));

    bool to_buffer = false;
    if (allow_victim_fill) {
        if (cfg.mode == AssistMode::VictimCache) {
            to_buffer = !cfg.victim.filterFills ||
                        filterSaysConflict(cfg.victim.filter,
                                           miss_is_conflict,
                                           ev.conflictBit);
        } else if (cfg.mode == AssistMode::Amb) {
            // AMB victim-caches conflict misses (out-conflict).
            to_buffer = miss_is_conflict;
        }
    }

    if (to_buffer) {
        ++st.victimFills;
        bufferInsert(ev.lineAddr, BufSource::Victim, ev.conflictBit,
                     ev.dirty, when, when);
    } else if (ev.dirty) {
        writeback(ev.lineAddr, when);
    }
}

void
MemorySystem::issuePrefetch(LineAddr line_addr, Cycle start)
{
    issuePrefetchLine(nextLine.nextLine(line_addr), start);
}

void
MemorySystem::issuePrefetchLine(LineAddr target, Cycle start)
{
    if (l1->probe(target.asByte()) || buf->find(target))
        return;
    if (mshrs.inFlight(target))
        return;

    auto ready = fetchLine(target, start, true);
    if (!ready) {
        ++st.prefDropped;
        nextLine.countDropped();
        return;
    }

    ++st.prefIssued;
    nextLine.countIssued();
    bufferInsert(target, BufSource::Prefetch, false, false, *ready,
                 start);
}

bool
MemorySystem::shouldExclude(ByteAddr pc, ByteAddr addr,
                            bool miss_is_conflict)
{
    switch (cfg.exclude.algo) {
      case ExcludeAlgo::TysonPc:
        return pcTable->shouldBypass(pc);
      case ExcludeAlgo::Mat: {
        const CacheLine *victim = l1->victimFor(addr);
        if (!victim)
            return false;   // empty way: no one to protect
        LineAddr victim_line =
            l1Geom.recompose(victim->tag, l1Geom.setOf(addr));
        return mat->shouldBypass(addr, victim_line);
      }
      case ExcludeAlgo::Capacity:
        return !miss_is_conflict;
      case ExcludeAlgo::Conflict:
        return miss_is_conflict;
      case ExcludeAlgo::CapacityHistory:
        return history->capacityHistory(addr);
      case ExcludeAlgo::ConflictHistory:
        return history->conflictHistory(addr);
    }
    ccm_panic("unreachable exclusion algorithm");
}

SetHistograms
MemorySystem::setHistograms() const
{
    SetHistograms h;
    if (!l1)
        return h;   // pseudo-associative mode: no conventional L1
    h.sets = l1Geom.numSets();
    h.l1Misses = l1->setMissHistogram();
    h.l1Evictions = l1->setEvictionHistogram();
    h.mctLookups = mct_.setLookupHistogram();
    h.mctConflicts = mct_.setConflictHistogram();
    return h;
}

AccessResult
MemorySystem::accessImpl(ByteAddr pc, ByteAddr addr, bool is_store,
                         Cycle now)
{
    ++st.accesses;
    if (is_store)
        ++st.stores;
    else
        ++st.loads;

    if (cfg.mode == AssistMode::PseudoAssoc)
        return accessPseudo(addr, is_store, now);

    if (mat)
        mat->recordAccess(addr);

    AccessResult out;
    unsigned bank = bankOf(l1Geom, addr, cfg.l1Banks);
    Cycle t0 = banks.acquireUnit(bank, now, 1);

    // The RPT is read and updated on *every* access (the structural
    // cost the paper contrasts with the misses-only MCT).
    std::optional<ByteAddr> rpt_target;
    if (rpt)
        rpt_target = rpt->observe(pc, addr);

    if (l1->access(addr, is_store)) {
        ++st.l1Hits;
        out.l1Hit = true;
        out.ready = t0 + cfg.l1HitLatency;
        if (pcTable)
            pcTable->recordOutcome(pc, false);
        if (rpt_target)
            issuePrefetchLine(l1Geom.lineOf(*rpt_target), t0 + 1);
        return out;
    }

    // ---- L1 miss ----------------------------------------------------
    ++st.l1Misses;
    const LineAddr line = l1Geom.lineOf(addr);
    const SetIndex set = l1Geom.setOf(addr);
    const Tag tag = l1Geom.tagOf(addr);

    const MissClass miss_class = mct_.classify(set, tag);
    const bool is_conflict = isConflict(miss_class);
    out.missClass = miss_class;
    if (is_conflict)
        ++st.conflictMisses;
    else
        ++st.capacityMisses;

    if (history)
        history->recordMiss(addr, miss_class);
    if (pcTable)
        pcTable->recordOutcome(pc, true);

    // ---- Assist-buffer probe ----------------------------------------
    if (buf) {
        if (BufEntry *e = buf->find(line)) {
            out.bufHit = true;
            Cycle port = bufReadPorts.acquire(t0 + 1, 1);
            Cycle ready = std::max(port + cfg.bufHitLatency, e->ready);
            out.ready = ready;

            switch (e->source) {
              case BufSource::Victim: {
                buf->recordHit(*e);
                ++st.bufHitVictim;
                bool swap = cfg.mode == AssistMode::VictimCache;
                if (swap && cfg.victim.filterSwaps) {
                    const CacheLine *cand = l1->victimFor(addr);
                    bool cand_bit = cand && cand->conflictBit;
                    if (filterSaysConflict(cfg.victim.filter,
                                           is_conflict, cand_bit))
                        swap = false;
                }
                if (swap) {
                    // Line swap: both structures busy for 2 cycles.
                    ++st.swaps;
                    banks.acquireUnit(bank, ready, 2);
                    bufReadPorts.acquire(ready, 2);
                    bufWritePorts.acquire(ready, 2);
                    bool dirty = e->dirty || is_store;
                    buf->erase(line);
                    // A victim-buffer hit is a conflict near-miss by
                    // construction (the line left this set within the
                    // last bufEntries evictions), so the promoted
                    // line's conflict bit is set even when the
                    // one-entry MCT has since been overwritten.
                    FillResult ev = l1->fill(addr, true, dirty);
                    if (ev.valid) {
                        mct_.recordEviction(set,
                                            l1Geom.tagOf(ev.lineAddr));
                        ++st.victimFills;
                        bufferInsert(ev.lineAddr, BufSource::Victim,
                                     ev.conflictBit, ev.dirty, ready,
                                     ready);
                    }
                } else {
                    if (is_store)
                        e->dirty = true;
                }
                break;
              }
              case BufSource::Prefetch: {
                buf->recordHit(*e);
                ++st.bufHitPrefetch;
                ++st.prefUseful;
                nextLine.countUseful();
                bool exclude_transition =
                    cfg.mode == AssistMode::Amb &&
                    cfg.amb.excludeCapacity;
                if (exclude_transition) {
                    // Leave in the buffer, re-marked as an exclusion
                    // line (paper §5.5 transition).
                    e->source = BufSource::Bypass;
                    if (is_store)
                        e->dirty = true;
                } else {
                    // Promote into the cache.  Bandwidth is charged
                    // at initiation time (see ResourcePool); the
                    // data-arrival wait is already in `ready`.
                    bool dirty = e->dirty || is_store;
                    buf->erase(line);
                    bufReadPorts.acquire(port, 2);
                    bool allow_victim =
                        cfg.mode == AssistMode::Amb &&
                        cfg.amb.victimConflicts;
                    fillL1(addr, is_conflict, dirty, port,
                           allow_victim);
                }
                // Stream onward (charged at initiation time).  The
                // RPT engine issues from its own per-access
                // observations instead of chaining.
                bool chains =
                    (cfg.mode == AssistMode::PrefetchBuffer &&
                     cfg.prefetch.kind == PrefetchKind::NextLine) ||
                    (cfg.mode == AssistMode::Amb &&
                     cfg.amb.prefetchCapacity);
                if (chains)
                    issuePrefetch(line, port);
                else if (rpt_target)
                    issuePrefetchLine(l1Geom.lineOf(*rpt_target),
                                      port);
                break;
              }
              case BufSource::Bypass: {
                buf->recordHit(*e);
                ++st.bufHitBypass;
                if (is_store)
                    e->dirty = true;
                break;
              }
            }
            return out;
        }
    }

    // ---- Full miss: fetch from L2/memory ----------------------------
    bool exclude = false;
    if (cfg.mode == AssistMode::BypassBuffer)
        exclude = shouldExclude(pc, addr, is_conflict);
    else if (cfg.mode == AssistMode::Amb)
        exclude = cfg.amb.excludeCapacity && !is_conflict;

    // Capture the would-be victim's conflict bit before the fill so
    // the In/And/Or prefetch filters can see the eviction side.
    const CacheLine *would_evict = l1->victimFor(addr);
    const bool evicted_bit = would_evict && would_evict->conflictBit;

    auto fetched = fetchLine(line, t0 + 1, false);
    Cycle ready = *fetched;  // demand fetches always complete
    out.ready = ready;
    out.l2Hit = false;

    if (exclude) {
        ++st.excluded;
        bufferInsert(line, BufSource::Bypass, is_conflict, is_store,
                     ready, t0 + 1);
        if (cfg.exclude.mctInsertFix)
            mct_.recordEviction(set, tag);
    } else {
        bool allow_victim =
            cfg.mode == AssistMode::VictimCache ||
            (cfg.mode == AssistMode::Amb && cfg.amb.victimConflicts);
        fillL1(addr, is_conflict, is_store, t0 + 1, allow_victim);
    }

    // ---- Prefetch trigger -------------------------------------------
    if (cfg.mode == AssistMode::PrefetchBuffer) {
        bool blocked =
            cfg.prefetch.filtered &&
            filterSaysConflict(cfg.prefetch.filter, is_conflict,
                               evicted_bit);
        if (blocked) {
            ++st.prefFiltered;
            nextLine.countFiltered();
        } else if (cfg.prefetch.kind == PrefetchKind::NextLine) {
            // Charged at issue time, after the demand transfer, so
            // speculative traffic queues behind demand traffic.
            issuePrefetch(line, t0 + 1);
        } else if (rpt_target) {
            issuePrefetchLine(l1Geom.lineOf(*rpt_target), t0 + 1);
        }
    } else if (cfg.mode == AssistMode::Amb &&
               cfg.amb.prefetchCapacity && !is_conflict) {
        issuePrefetch(line, t0 + 1);
    }

    return out;
}

AccessResult
MemorySystem::accessPseudo(ByteAddr addr, bool is_store, Cycle now)
{
    AccessResult out;
    unsigned bank = bankOf(l1Geom, addr, cfg.l1Banks);
    Cycle t0 = banks.acquireUnit(bank, now, 1);

    PseudoAccess res = pseudo->access(addr, is_store);
    switch (res.kind) {
      case PseudoAccess::Kind::PrimaryHit:
        ++st.l1Hits;
        ++st.pseudoPrimaryHits;
        out.l1Hit = true;
        out.ready = t0 + cfg.l1HitLatency;
        return out;

      case PseudoAccess::Kind::SecondaryHit:
        ++st.l1Hits;
        ++st.pseudoSecondaryHits;
        ++st.swaps;
        out.l1Hit = true;
        out.ready = t0 + cfg.l1HitLatency + cfg.pseudoSecondaryPenalty;
        banks.acquireUnit(bank, out.ready, 2);  // the swap
        return out;

      default:
        break;
    }

    ++st.l1Misses;
    if (res.wasConflict)
        ++st.conflictMisses;
    else
        ++st.capacityMisses;
    out.missClass = res.wasConflict ? MissClass::Conflict
                                    : MissClass::Capacity;
    Cycle probe_done = t0 + cfg.l1HitLatency + cfg.pseudoSecondaryPenalty;
    auto fetched = fetchLine(l1Geom.lineOf(addr), probe_done, false);
    out.ready = *fetched;
    banks.acquireUnit(bank, probe_done, 1);  // the fill
    if (res.evictedValid && res.evictedDirty)
        writeback(res.evictedLineAddr, probe_done);

    st.pseudoOverrides = pseudo->replacementOverrides();
    return out;
}

} // namespace ccm
