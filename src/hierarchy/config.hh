/**
 * @file
 * Configuration of the simulated memory system: the paper's §4
 * machine by default, plus the policy knobs of every architecture
 * studied in §5.
 */

#ifndef CCM_HIERARCHY_CONFIG_HH
#define CCM_HIERARCHY_CONFIG_HH

#include <cstddef>

#include "assist/buffer.hh"
#include "common/types.hh"
#include "mct/miss_class.hh"

namespace ccm
{

/** Which cache-assist architecture the memory system runs. */
enum class AssistMode
{
    None,            ///< plain L1/L2/memory (baseline)
    VictimCache,     ///< §5.1
    PrefetchBuffer,  ///< §5.2 next-line prefetcher
    BypassBuffer,    ///< §5.3 cache exclusion
    Amb,             ///< §5.5 adaptive miss buffer
    PseudoAssoc,     ///< §5.4 column-associative L1
};

/** Victim-cache policy (§5.1, Figure 3 / Table 1). */
struct VictimPolicy
{
    /** Don't swap on a victim hit when the filter says conflict. */
    bool filterSwaps = false;
    /** Don't fill the victim buffer when the filter says capacity. */
    bool filterFills = false;
    /** Paper uses the most liberal filter here. */
    ConflictFilter filter = ConflictFilter::Or;
};

/** Which prefetch engine drives the prefetch buffer. */
enum class PrefetchKind
{
    NextLine,  ///< §5.2's simple next-line prefetcher
    Rpt,       ///< Chen & Baer reference prediction table (examined
               ///< as the comparator in §5.2, results not shown)
};

/** Prefetch policy (§5.2, Figure 4). */
struct PrefetchPolicy
{
    PrefetchKind kind = PrefetchKind::NextLine;
    /** Suppress the prefetch when the filter says conflict. */
    bool filtered = false;
    ConflictFilter filter = ConflictFilter::Out;
    /** RPT table entries (power of two). */
    std::size_t rptEntries = 512;
};

/** Exclusion algorithm selector (§5.3, Figure 5). */
enum class ExcludeAlgo
{
    Mat,              ///< Johnson & Hwu memory access table
    TysonPc,          ///< Tyson et al. PC-indexed miss predictor
    Capacity,         ///< bypass MCT-capacity misses (paper's best)
    CapacityHistory,  ///< bypass regions with capacity-miss history
    Conflict,         ///< bypass MCT-conflict misses
    ConflictHistory,  ///< bypass regions with conflict-miss history
};

/** Cache-exclusion policy. */
struct ExcludePolicy
{
    ExcludeAlgo algo = ExcludeAlgo::Capacity;
    /**
     * §5.3 modification: when a line is diverted to the bypass
     * buffer, install its tag in the MCT entry of the set it would
     * have occupied, so a later miss on it can classify as conflict.
     */
    bool mctInsertFix = true;
};

/** Adaptive-miss-buffer policy (§5.5, Figures 6/7). */
struct AmbPolicy
{
    bool victimConflicts = false;   ///< victim-cache conflict misses
    bool prefetchCapacity = false;  ///< next-line prefetch capacity
    bool excludeCapacity = false;   ///< bypass capacity misses
};

/** Full memory-system configuration (defaults = paper §4). */
struct MemSysConfig
{
    // L1 data cache
    std::size_t l1Bytes = 16 * 1024;
    unsigned l1Assoc = 1;
    unsigned lineBytes = 64;
    unsigned l1Banks = 8;
    Cycle l1HitLatency = 1;

    // L2 unified cache and main memory
    std::size_t l2Bytes = 1024 * 1024;
    unsigned l2Assoc = 2;
    Cycle l2Latency = 20;    ///< from the processor, uncontended
    Cycle memLatency = 100;  ///< from the processor, uncontended

    /** Outstanding misses; beyond this demand misses stall and
     *  prefetches are discarded. */
    unsigned mshrs = 16;

    /** L1<->L2 bus occupancy per line transfer (64 B over a 16 B-wide
     *  bus).  Figure 4's speedups use a slower bus than the rest of
     *  the paper. */
    Cycle busCyclesPerTransfer = 4;

    // Assist buffer (victim/prefetch/bypass/AMB)
    unsigned bufEntries = 8;
    /** LRU ("FIFO with middle removal", §5.1) or plain FIFO. */
    BufRepl bufRepl = BufRepl::Lru;
    Cycle bufHitLatency = 1;      ///< extra cycle after the L1 miss
    unsigned bufReadPorts = 2;
    unsigned bufWritePorts = 2;

    // Miss classification table
    unsigned mctTagBits = 0;      ///< 0 = full tag (§5 default)

    // Pseudo-associative cache (§5.4)
    Cycle pseudoSecondaryPenalty = 1;  ///< extra cycles, secondary hit
    bool pseudoUseMct = true;

    // Architecture selection
    AssistMode mode = AssistMode::None;
    VictimPolicy victim;
    PrefetchPolicy prefetch;
    ExcludePolicy exclude;
    AmbPolicy amb;
};

} // namespace ccm

#endif // CCM_HIERARCHY_CONFIG_HH
