#include "hierarchy/mshr.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ccm
{

Status
MshrFile::validate(unsigned entries)
{
    if (entries == 0)
        return Status::badConfig("MSHR file needs at least one entry");
    return Status::ok();
}

MshrFile::MshrFile(unsigned entries) : cap(entries)
{
    fatalIfError(validate(entries));
    active.reserve(entries);
}

void
MshrFile::expire(Cycle now)
{
    std::erase_if(active,
                  [now](const Entry &e) { return e.ready <= now; });
}

std::optional<Cycle>
MshrFile::inFlight(LineAddr line_addr) const
{
    for (const auto &e : active) {
        if (e.lineAddr == line_addr)
            return e.ready;
    }
    return std::nullopt;
}

Cycle
MshrFile::earliestReady() const
{
    Cycle best = 0;
    for (const auto &e : active)
        best = best == 0 ? e.ready : std::min(best, e.ready);
    return best;
}

void
MshrFile::allocate(LineAddr line_addr, Cycle ready)
{
    if (full())
        ccm_panic("MSHR allocate while full");
    active.push_back({line_addr, ready});
}

} // namespace ccm
