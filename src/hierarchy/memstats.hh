/**
 * @file
 * Event counters collected by the memory system — the raw numbers
 * behind Table 1 and Figures 3-7.
 */

#ifndef CCM_HIERARCHY_MEMSTATS_HH
#define CCM_HIERARCHY_MEMSTATS_HH

#include <ostream>

#include "common/stats.hh"
#include "common/types.hh"

namespace ccm
{

/** Memory-system event counters. */
struct MemStats
{
    Count accesses = 0;
    Count loads = 0;
    Count stores = 0;

    Count l1Hits = 0;
    Count l1Misses = 0;

    /** Assist-buffer hits by entry source. */
    Count bufHitVictim = 0;
    Count bufHitPrefetch = 0;
    Count bufHitBypass = 0;

    Count l2Hits = 0;
    Count l2Misses = 0;

    /** MCT classification of misses that reached the fetch path. */
    Count conflictMisses = 0;
    Count capacityMisses = 0;

    /** Victim-cache accounting (Table 1). */
    Count swaps = 0;       ///< cache<->buffer line swaps
    Count victimFills = 0; ///< evicted lines inserted into the buffer

    /** Prefetch accounting (Figure 4). */
    Count prefIssued = 0;
    Count prefUseful = 0;
    Count prefDropped = 0;   ///< MSHRs full
    Count prefFiltered = 0;  ///< suppressed by conflict filter
    Count prefWasted = 0;    ///< evicted from the buffer unused

    /** Exclusion accounting (Figure 5). */
    Count excluded = 0;

    Count writebacks = 0;
    Count mshrStallCycles = 0;

    /** Pseudo-associative cache (§5.4). */
    Count pseudoPrimaryHits = 0;
    Count pseudoSecondaryHits = 0;
    Count pseudoOverrides = 0;

    // Derived --------------------------------------------------------
    Count bufHits() const
    {
        return bufHitVictim + bufHitPrefetch + bufHitBypass;
    }

    /** D$ hit rate, % of all accesses (Table 1 convention). */
    double l1HitRatePct() const { return pct(l1Hits, accesses); }

    /** Buffer hit rate, % of all accesses. */
    double bufHitRatePct() const { return pct(bufHits(), accesses); }

    /** Combined hit rate, % of all accesses. */
    double totalHitRatePct() const
    {
        return pct(l1Hits + bufHits(), accesses);
    }

    /** Misses that go to L2, % of all accesses. */
    double missRatePct() const
    {
        return pct(accesses - l1Hits - bufHits(), accesses);
    }

    double swapRatePct() const { return pct(swaps, accesses); }
    double fillRatePct() const { return pct(victimFills, accesses); }

    /** Prefetch accuracy: useful / issued. */
    double prefAccuracyPct() const
    {
        return pct(prefUseful, prefIssued);
    }

    /** Write "mem.<stat> <value>" lines (gem5-style stats dump). */
    void
    dump(std::ostream &os, const char *prefix = "mem") const
    {
        auto line = [&](const char *name, Count v) {
            os << prefix << "." << name << " " << v << "\n";
        };
        line("accesses", accesses);
        line("loads", loads);
        line("stores", stores);
        line("l1_hits", l1Hits);
        line("l1_misses", l1Misses);
        line("buf_hit_victim", bufHitVictim);
        line("buf_hit_prefetch", bufHitPrefetch);
        line("buf_hit_bypass", bufHitBypass);
        line("l2_hits", l2Hits);
        line("l2_misses", l2Misses);
        line("conflict_misses", conflictMisses);
        line("capacity_misses", capacityMisses);
        line("swaps", swaps);
        line("victim_fills", victimFills);
        line("pref_issued", prefIssued);
        line("pref_useful", prefUseful);
        line("pref_dropped", prefDropped);
        line("pref_filtered", prefFiltered);
        line("pref_wasted", prefWasted);
        line("excluded", excluded);
        line("writebacks", writebacks);
        line("mshr_stall_cycles", mshrStallCycles);
        line("pseudo_primary_hits", pseudoPrimaryHits);
        line("pseudo_secondary_hits", pseudoSecondaryHits);
        line("pseudo_overrides", pseudoOverrides);
    }

    /** Prefetch coverage: buffer prefetch hits / all L1 misses. */
    double prefCoveragePct() const
    {
        return pct(bufHitPrefetch, l1Misses);
    }
};

} // namespace ccm

#endif // CCM_HIERARCHY_MEMSTATS_HH
