/**
 * @file
 * Event counters collected by the memory system — the raw numbers
 * behind Table 1 and Figures 3-7.
 *
 * MemStats::forEachField is the single authoritative (name, field)
 * enumeration: the text dump, the JSON sink, StatGroup registration
 * and interval-delta arithmetic all derive from it, so a counter
 * added there automatically appears in every output path under one
 * canonical name.
 */

#ifndef CCM_HIERARCHY_MEMSTATS_HH
#define CCM_HIERARCHY_MEMSTATS_HH

#include <cstddef>
#include <ostream>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace ccm
{

/** Memory-system event counters. */
struct MemStats
{
    Count accesses = 0;
    Count loads = 0;
    Count stores = 0;

    Count l1Hits = 0;
    Count l1Misses = 0;

    /** Assist-buffer hits by entry source. */
    Count bufHitVictim = 0;
    Count bufHitPrefetch = 0;
    Count bufHitBypass = 0;

    Count l2Hits = 0;
    Count l2Misses = 0;

    /** MCT classification of misses that reached the fetch path. */
    Count conflictMisses = 0;
    Count capacityMisses = 0;

    /** Victim-cache accounting (Table 1). */
    Count swaps = 0;       ///< cache<->buffer line swaps
    Count victimFills = 0; ///< evicted lines inserted into the buffer

    /** Prefetch accounting (Figure 4). */
    Count prefIssued = 0;
    Count prefUseful = 0;
    Count prefDropped = 0;   ///< MSHRs full
    Count prefFiltered = 0;  ///< suppressed by conflict filter
    Count prefWasted = 0;    ///< evicted from the buffer unused

    /** Exclusion accounting (Figure 5). */
    Count excluded = 0;

    Count writebacks = 0;
    Count mshrStallCycles = 0;

    /** Pseudo-associative cache (§5.4). */
    Count pseudoPrimaryHits = 0;
    Count pseudoSecondaryHits = 0;
    Count pseudoOverrides = 0;

    /**
     * The one authoritative counter enumeration.  @p fn is called as
     * fn(const char *name, Count MemStats::*field) once per counter,
     * in dump order.
     */
    template <typename Fn>
    static void
    forEachField(Fn &&fn)
    {
        fn("accesses", &MemStats::accesses);
        fn("loads", &MemStats::loads);
        fn("stores", &MemStats::stores);
        fn("l1_hits", &MemStats::l1Hits);
        fn("l1_misses", &MemStats::l1Misses);
        fn("buf_hit_victim", &MemStats::bufHitVictim);
        fn("buf_hit_prefetch", &MemStats::bufHitPrefetch);
        fn("buf_hit_bypass", &MemStats::bufHitBypass);
        fn("l2_hits", &MemStats::l2Hits);
        fn("l2_misses", &MemStats::l2Misses);
        fn("conflict_misses", &MemStats::conflictMisses);
        fn("capacity_misses", &MemStats::capacityMisses);
        fn("swaps", &MemStats::swaps);
        fn("victim_fills", &MemStats::victimFills);
        fn("pref_issued", &MemStats::prefIssued);
        fn("pref_useful", &MemStats::prefUseful);
        fn("pref_dropped", &MemStats::prefDropped);
        fn("pref_filtered", &MemStats::prefFiltered);
        fn("pref_wasted", &MemStats::prefWasted);
        fn("excluded", &MemStats::excluded);
        fn("writebacks", &MemStats::writebacks);
        fn("mshr_stall_cycles", &MemStats::mshrStallCycles);
        fn("pseudo_primary_hits", &MemStats::pseudoPrimaryHits);
        fn("pseudo_secondary_hits", &MemStats::pseudoSecondaryHits);
        fn("pseudo_overrides", &MemStats::pseudoOverrides);
    }

    /**
     * Derived-ratio enumeration: fn(const char *name, double value).
     * Same contract as forEachField — every consumer (text dump, JSON
     * sink) gets the ratios from here instead of recomputing them.
     */
    template <typename Fn>
    void
    forEachDerived(Fn &&fn) const
    {
        fn("l1_hit_rate_pct", l1HitRatePct());
        fn("buf_hit_rate_pct", bufHitRatePct());
        fn("total_hit_rate_pct", totalHitRatePct());
        fn("miss_rate_pct", missRatePct());
        fn("conflict_share_pct", pct(conflictMisses, l1Misses));
        fn("swap_rate_pct", swapRatePct());
        fn("fill_rate_pct", fillRatePct());
        fn("pref_accuracy_pct", prefAccuracyPct());
        fn("pref_coverage_pct", prefCoveragePct());
    }

    // Derived --------------------------------------------------------
    Count bufHits() const
    {
        return bufHitVictim + bufHitPrefetch + bufHitBypass;
    }

    /** D$ hit rate, % of all accesses (Table 1 convention). */
    double l1HitRatePct() const { return pct(l1Hits, accesses); }

    /** Buffer hit rate, % of all accesses. */
    double bufHitRatePct() const { return pct(bufHits(), accesses); }

    /** Combined hit rate, % of all accesses. */
    double totalHitRatePct() const
    {
        return pct(l1Hits + bufHits(), accesses);
    }

    /** Misses that go to L2, % of all accesses. */
    double missRatePct() const
    {
        return pct(accesses - l1Hits - bufHits(), accesses);
    }

    double swapRatePct() const { return pct(swaps, accesses); }
    double fillRatePct() const { return pct(victimFills, accesses); }

    /** Prefetch accuracy: useful / issued. */
    double prefAccuracyPct() const
    {
        return pct(prefUseful, prefIssued);
    }

    /** Prefetch coverage: buffer prefetch hits / all L1 misses. */
    double prefCoveragePct() const
    {
        return pct(bufHitPrefetch, l1Misses);
    }

    /**
     * Write "mem.<stat> <value>" lines (gem5-style stats dump),
     * including every derived ratio so downstream consumers never
     * recompute them.
     */
    void dump(std::ostream &os, const char *prefix = "mem") const;

    /** Counter-wise this - prev (interval deltas). */
    MemStats minus(const MemStats &prev) const;

    /**
     * Register every counter with @p group as an external stat, under
     * its canonical forEachField name.  This object must outlive the
     * group.
     */
    void registerCounters(StatGroup &group) const;

    /** Name/value pairs in dump order (counters only). */
    StatSnapshot snapshot() const;
};

/**
 * Per-set activity histograms harvested from the cache and the MCT at
 * the end of a run — the raw data behind the hotspot/heatmap section
 * of the stats JSON.  Empty vectors mean the run had no L1 in the
 * classic sense (pseudo-associative mode) or histograms were not
 * collected.
 */
struct SetHistograms
{
    std::size_t sets = 0;              ///< number of L1 sets
    std::vector<Count> l1Misses;       ///< per-set L1 misses
    std::vector<Count> l1Evictions;    ///< per-set L1 evictions
    std::vector<Count> mctLookups;     ///< per-set MCT classifications
    std::vector<Count> mctConflicts;   ///< per-set conflict verdicts

    bool empty() const { return sets == 0; }
};

} // namespace ccm

#endif // CCM_HIERARCHY_MEMSTATS_HH
