/**
 * @file
 * The simulated memory system: banked non-blocking L1D, the
 * configurable assist buffer (victim / prefetch / bypass / AMB), a
 * 1 MB 2-way L2, main memory, the MCT, and contention for banks,
 * buffer ports, the L1<->L2 bus and MSHRs.
 *
 * The CPU model calls access() once per memory instruction with the
 * cycle the access issues; the return value says when the data is
 * available.  All policy behaviour from paper §5 lives here.
 */

#ifndef CCM_HIERARCHY_MEMSYS_HH
#define CCM_HIERARCHY_MEMSYS_HH

#include <functional>
#include <memory>

#include "assist/buffer.hh"
#include "cache/cache.hh"
#include "exclude/history.hh"
#include "exclude/mat.hh"
#include "exclude/tyson.hh"
#include "hierarchy/config.hh"
#include "hierarchy/memstats.hh"
#include "hierarchy/mshr.hh"
#include "hierarchy/resource.hh"
#include "mct/mct.hh"
#include "prefetch/nextline.hh"
#include "prefetch/rpt.hh"
#include "pseudo/pseudo_cache.hh"

namespace ccm
{

/** What one access did and when its data arrives. */
struct AccessResult
{
    /** Cycle the requested word is available to the CPU. */
    Cycle ready = 0;
    bool l1Hit = false;
    bool bufHit = false;
    bool l2Hit = false;
    /** MCT classification (valid when the L1 missed). */
    MissClass missClass = MissClass::Capacity;
};

/**
 * Observer invoked after every completed access with the result and
 * the running counters (the obs-layer interval sampler hangs off
 * this).  Off by default; cost when unset is one branch.
 */
using MemAccessHook =
    std::function<void(const AccessResult &, const MemStats &)>;

/** The paper's three-level memory system with pluggable assists. */
class MemorySystem
{
  public:
    explicit MemorySystem(const MemSysConfig &config);

    /**
     * Perform one data access.
     *
     * @param pc instruction address (drives PC-indexed predictors)
     * @param addr effective address
     * @param is_store store vs load
     * @param now issue cycle (approximately nondecreasing)
     */
    AccessResult
    access(ByteAddr pc, ByteAddr addr, bool is_store, Cycle now)
    {
        AccessResult r = accessImpl(pc, addr, is_store, now);
        if (accessHook)
            accessHook(r, st);
        return r;
    }

    /** Attach @p hook, called after every access; empty detaches. */
    void
    setAccessHook(MemAccessHook hook)
    {
        accessHook = std::move(hook);
    }

    const MemStats &stats() const { return st; }
    const MemSysConfig &config() const { return cfg; }

    /** The L1 (null in pseudo-associative mode). */
    const Cache *l1Cache() const { return l1.get(); }
    const PseudoAssocCache *pseudoCache() const { return pseudo.get(); }
    const AssistBuffer *buffer() const { return buf.get(); }
    const MissClassificationTable &mct() const { return mct_; }

    /** Mutable MCT access for instrumentation (lookup hooks). */
    MissClassificationTable &mct() { return mct_; }

    /**
     * Per-set activity histograms (heatmap source).  Empty in
     * pseudo-associative mode, which has no conventional L1.
     */
    SetHistograms setHistograms() const;

  private:
    AccessResult accessImpl(ByteAddr pc, ByteAddr addr, bool is_store,
                            Cycle now);
    bool hasBuffer() const;

    /**
     * Fetch a line from L2/memory through the MSHRs and bus.
     *
     * @param line_addr line to fetch
     * @param start earliest start cycle
     * @param is_prefetch prefetches are dropped when MSHRs are full
     * @return data-ready cycle, or nullopt for a dropped prefetch
     */
    std::optional<Cycle> fetchLine(LineAddr line_addr, Cycle start,
                                   bool is_prefetch);

    /** Write back a dirty line (bus occupancy + accounting). */
    void writeback(LineAddr line_addr, Cycle when);

    /**
     * Install @p addr into the L1, updating the MCT with the evicted
     * tag and routing the evicted line per the active victim policy.
     *
     * @param miss_is_conflict MCT class of the triggering miss
     * @param when fill time (for buffer-port occupancy)
     * @param to_buffer whether an evicted line may enter the buffer
     */
    void fillL1(ByteAddr addr, bool miss_is_conflict, bool is_store,
                Cycle when, bool allow_victim_fill);

    /** Insert a line into the assist buffer, handling displacement. */
    void bufferInsert(LineAddr line_addr, BufSource source,
                      bool conflict_bit, bool dirty, Cycle ready,
                      Cycle when);

    /** Issue a next-line prefetch for the line after @p line_addr. */
    void issuePrefetch(LineAddr line_addr, Cycle start);

    /** Issue a prefetch of @p target_line itself (RPT targets). */
    void issuePrefetchLine(LineAddr target_line, Cycle start);

    /** Exclusion decision for a miss (BypassBuffer / AMB modes). */
    bool shouldExclude(ByteAddr pc, ByteAddr addr,
                       bool miss_is_conflict);

    AccessResult accessPseudo(ByteAddr addr, bool is_store,
                              Cycle now);

    MemSysConfig cfg;
    CacheGeometry l1Geom;

    std::unique_ptr<Cache> l1;
    std::unique_ptr<PseudoAssocCache> pseudo;
    Cache l2;
    MissClassificationTable mct_;
    std::unique_ptr<AssistBuffer> buf;
    NextLinePrefetcher nextLine;
    std::unique_ptr<RptPrefetcher> rpt;
    std::unique_ptr<MemoryAccessTable> mat;
    std::unique_ptr<PcMissTable> pcTable;
    std::unique_ptr<MissHistoryTable> history;

    MshrFile mshrs;
    ResourcePool banks;
    ResourcePool bufReadPorts;
    ResourcePool bufWritePorts;
    ResourcePool bus;

    MemStats st;
    MemAccessHook accessHook;
};

} // namespace ccm

#endif // CCM_HIERARCHY_MEMSYS_HH
