/**
 * @file
 * Miss status holding registers: the non-blocking cache's bookkeeping
 * of in-flight line fetches.  "The caches are non-blocking with up to
 * 16 misses in-flight at once.  When the miss limit is exceeded,
 * further misses stall the pipeline, but prefetches are discarded."
 *
 * Misses to a line already in flight merge into the existing entry.
 */

#ifndef CCM_HIERARCHY_MSHR_HH
#define CCM_HIERARCHY_MSHR_HH

#include <optional>
#include <vector>

#include "common/addr_types.hh"
#include "common/status.hh"
#include "common/types.hh"

namespace ccm
{

/** The in-flight miss file. */
class MshrFile
{
  public:
    explicit MshrFile(unsigned entries);

    /** Check the parameters the constructor would reject. */
    static Status validate(unsigned entries);

    /** Retire every entry whose fetch completed by @p now. */
    void expire(Cycle now);

    /** @return the completion cycle of an in-flight fetch of
     *          @p line_addr, if one exists (a merge opportunity). */
    std::optional<Cycle> inFlight(LineAddr line_addr) const;

    /** @return true when no entry is free (call expire() first). */
    bool full() const { return active.size() >= cap; }

    /** Earliest completion among active entries (0 if none). */
    Cycle earliestReady() const;

    /** Track a new in-flight fetch completing at @p ready. */
    void allocate(LineAddr line_addr, Cycle ready);

    std::size_t occupancy() const { return active.size(); }
    unsigned capacity() const { return cap; }

    void clear() { active.clear(); }

  private:
    struct Entry
    {
        LineAddr lineAddr;
        Cycle ready;
    };

    unsigned cap;
    std::vector<Entry> active;
};

} // namespace ccm

#endif // CCM_HIERARCHY_MSHR_HH
