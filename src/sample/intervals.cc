#include "sample/intervals.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cache/cache.hh"
#include "cache/geometry.hh"
#include "common/random.hh"
#include "mct/shadow.hh"

namespace ccm::sample
{

namespace
{

/** z-scored feature vectors, one per window. */
std::vector<std::vector<double>>
windowFeatures(const MrcResult &mrc)
{
    const std::size_t n = mrc.windows.size();
    const std::size_t pts = mrc.points.size();
    const std::size_t dims = pts + 3;

    std::vector<std::vector<double>> feat(
        n, std::vector<double>(dims, 0.0));
    for (std::size_t w = 0; w < n; ++w) {
        const WindowSignature &sig = mrc.windows[w];
        const double sampled =
            std::max<double>(1.0, static_cast<double>(sig.sampledRefs));
        const double len = std::max<double>(
            1.0,
            static_cast<double>(sig.lastRef - sig.firstRef + 1));
        for (std::size_t p = 0; p < pts; ++p)
            feat[w][p] =
                static_cast<double>(sig.sampledMisses[p]) / sampled;
        feat[w][pts] = static_cast<double>(sig.sampledRefs) / len;
        feat[w][pts + 1] =
            static_cast<double>(sig.sampledNewLines) / sampled;
        feat[w][pts + 2] =
            static_cast<double>(sig.sampledUniqueLines) / sampled;
    }

    // z-score each dimension; constant dimensions carry no signal
    // and are zeroed rather than divided by ~0.
    for (std::size_t d = 0; d < dims; ++d) {
        double mean = 0.0;
        for (std::size_t w = 0; w < n; ++w)
            mean += feat[w][d];
        mean /= static_cast<double>(n);
        double var = 0.0;
        for (std::size_t w = 0; w < n; ++w) {
            const double dd = feat[w][d] - mean;
            var += dd * dd;
        }
        const double sd = std::sqrt(var / static_cast<double>(n));
        for (std::size_t w = 0; w < n; ++w)
            feat[w][d] = sd > 1e-12 ? (feat[w][d] - mean) / sd : 0.0;
    }
    return feat;
}

double
dist2(const std::vector<double> &a, const std::vector<double> &b)
{
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        s += d * d;
    }
    return s;
}

/**
 * One deterministic Lloyd's k-means run: Pcg32-seeded distinct
 * initial centers, lowest-index tie-breaks, fixed iteration cap.
 * @return per-window cluster assignment in [0, k).
 */
std::vector<std::size_t>
kmeansOnce(const std::vector<std::vector<double>> &feat,
           std::size_t k, const IntervalConfig &cfg,
           std::uint64_t stream)
{
    const std::size_t n = feat.size();
    Pcg32 rng(cfg.seed, stream);

    // Distinct initial centers (k <= n guaranteed by caller).
    std::vector<std::size_t> center_idx;
    while (center_idx.size() < k) {
        const std::size_t pick =
            rng.below(static_cast<std::uint32_t>(n));
        if (std::find(center_idx.begin(), center_idx.end(), pick) ==
            center_idx.end())
            center_idx.push_back(pick);
    }
    std::vector<std::vector<double>> centers;
    centers.reserve(k);
    for (std::size_t c : center_idx)
        centers.push_back(feat[c]);

    std::vector<std::size_t> assign(n, 0);
    for (unsigned iter = 0; iter < cfg.maxIters; ++iter) {
        bool changed = false;
        for (std::size_t w = 0; w < n; ++w) {
            std::size_t best = 0;
            double best_d = std::numeric_limits<double>::infinity();
            for (std::size_t c = 0; c < k; ++c) {
                const double d = dist2(feat[w], centers[c]);
                if (d < best_d) {
                    best_d = d;
                    best = c;
                }
            }
            if (assign[w] != best) {
                assign[w] = best;
                changed = true;
            }
        }
        if (!changed && iter > 0)
            break;

        // Recompute centroids; re-seed an emptied cluster with the
        // window farthest from its current center (lowest index on
        // ties) so k clusters survive.
        std::vector<std::size_t> sizes(k, 0);
        std::vector<std::vector<double>> sums(
            k, std::vector<double>(feat[0].size(), 0.0));
        for (std::size_t w = 0; w < n; ++w) {
            ++sizes[assign[w]];
            for (std::size_t d = 0; d < feat[w].size(); ++d)
                sums[assign[w]][d] += feat[w][d];
        }
        for (std::size_t c = 0; c < k; ++c) {
            if (sizes[c] == 0) {
                std::size_t far_w = 0;
                double far_d = -1.0;
                for (std::size_t w = 0; w < n; ++w) {
                    const double d =
                        dist2(feat[w], centers[assign[w]]);
                    if (d > far_d) {
                        far_d = d;
                        far_w = w;
                    }
                }
                centers[c] = feat[far_w];
                continue;
            }
            for (std::size_t d = 0; d < sums[c].size(); ++d)
                centers[c][d] =
                    sums[c][d] / static_cast<double>(sizes[c]);
        }
    }
    return assign;
}

/** Total within-cluster squared distance of an assignment. */
double
inertia(const std::vector<std::vector<double>> &feat,
        const std::vector<std::size_t> &assign, std::size_t k)
{
    std::vector<std::vector<double>> mean(
        k, std::vector<double>(feat[0].size(), 0.0));
    std::vector<std::size_t> sizes(k, 0);
    for (std::size_t w = 0; w < feat.size(); ++w) {
        ++sizes[assign[w]];
        for (std::size_t d = 0; d < feat[w].size(); ++d)
            mean[assign[w]][d] += feat[w][d];
    }
    for (std::size_t c = 0; c < k; ++c)
        if (sizes[c] > 0)
            for (double &v : mean[c])
                v /= static_cast<double>(sizes[c]);
    double total = 0.0;
    for (std::size_t w = 0; w < feat.size(); ++w)
        total += dist2(feat[w], mean[assign[w]]);
    return total;
}

/**
 * Multi-restart k-means: Lloyd's is sensitive to its initial centers
 * on sparse sampled signatures — a single unlucky init merges distinct
 * phases and silently biases the whole reconstruction.  Run a fixed
 * set of deterministic restarts (distinct Pcg32 streams) and keep the
 * lowest-inertia assignment; first wins on ties.
 */
std::vector<std::size_t>
kmeansAssign(const std::vector<std::vector<double>> &feat,
             std::size_t k, const IntervalConfig &cfg)
{
    constexpr std::uint64_t kRestarts = 8;
    std::vector<std::size_t> best;
    double best_inertia = std::numeric_limits<double>::infinity();
    for (std::uint64_t r = 0; r < kRestarts; ++r) {
        std::vector<std::size_t> assign =
            kmeansOnce(feat, k, cfg, 7 + r);
        const double in = inertia(feat, assign, k);
        if (in < best_inertia) {
            best_inertia = in;
            best = std::move(assign);
        }
    }
    return best;
}

/** Scalar signature of one window: total sampled miss rate. */
double
windowScalar(const WindowSignature &sig)
{
    Count total = 0;
    for (Count m : sig.sampledMisses)
        total += m;
    const double sampled =
        std::max<double>(1.0, static_cast<double>(sig.sampledRefs));
    return static_cast<double>(total) / sampled;
}

/**
 * Replay records [warm_begin, end) exactly; counters accrue only
 * from @p count_begin on (the prefix is cache/MCT warmup).
 * @return memory references simulated, warmup included.
 */
Count
replayWindow(const MemRecord *records, std::size_t warm_begin,
             std::size_t count_begin, std::size_t end,
             const ShardedClassifyConfig &cache_cfg, MemStats &out)
{
    CacheGeometry geom(cache_cfg.cacheBytes, cache_cfg.assoc,
                       cache_cfg.lineBytes);
    Cache cache(geom);
    ShadowDirectory mct(geom.numSets(), cache_cfg.mctDepth,
                        cache_cfg.mctTagBits);

    Count simulated = 0;
    for (std::size_t i = warm_begin; i < end; ++i) {
        const MemRecord &r = records[i];
        if (!r.isMem())
            continue;
        ++simulated;
        const bool counted = i >= count_begin;

        const ByteAddr addr = r.dataAddr();
        const SetIndex set = geom.setOf(addr);
        if (counted) {
            ++out.accesses;
            if (r.isStore())
                ++out.stores;
            else
                ++out.loads;
        }
        if (cache.access(addr, r.isStore())) {
            if (counted)
                ++out.l1Hits;
        } else {
            const Tag tag = geom.tagOf(addr);
            const MissClass cls = mct.classify(set, tag);
            if (counted) {
                ++out.l1Misses;
                if (isConflict(cls))
                    ++out.conflictMisses;
                else
                    ++out.capacityMisses;
            }
            FillResult ev =
                cache.fill(addr, isConflict(cls), r.isStore());
            if (ev.valid)
                mct.recordEviction(set, geom.tagOf(ev.lineAddr));
        }
    }
    return simulated;
}

/** Record index that puts ~@p warmup memory refs before @p begin. */
std::size_t
warmupStart(const MemRecord *records, std::size_t begin, Count warmup)
{
    std::size_t i = begin;
    Count seen = 0;
    while (i > 0 && seen < warmup) {
        --i;
        if (records[i].isMem())
            ++seen;
    }
    return i;
}

} // namespace

const StatEstimate *
IntervalResult::find(const std::string &name) const
{
    for (const StatEstimate &s : stats) {
        if (s.name == name)
            return &s;
    }
    return nullptr;
}

Expected<IntervalResult>
reconstructFromIntervals(const MemRecord *records, std::size_t count,
                         const MrcResult &mrc,
                         const ShardedClassifyConfig &cache_cfg,
                         const IntervalConfig &cfg)
{
    if (mrc.windowRefs == 0 || mrc.windows.empty())
        return Status::badConfig(
            "interval selection needs an MRC pass with windowRefs > "
            "0 (no window signatures present)");
    if (cfg.k == 0)
        return Status::badConfig("interval count k must be >= 1");
    Status geom_ok =
        CacheGeometry::validate(cache_cfg.cacheBytes, cache_cfg.assoc,
                                cache_cfg.lineBytes);
    if (!geom_ok.isOk())
        return geom_ok.withContext("interval replay geometry");
    for (const WindowSignature &sig : mrc.windows) {
        if (sig.recordEnd > count || sig.recordBegin > sig.recordEnd)
            return Status::internal(
                "window record span [", sig.recordBegin, ", ",
                sig.recordEnd, ") exceeds the ", count,
                "-record trace — was the MRC built on this span?");
    }

    const std::size_t n = mrc.windows.size();
    const std::size_t k = std::min(cfg.k, n);

    IntervalResult res;
    res.windows = n;
    res.clusters = k;
    res.windowRefs = mrc.windowRefs;
    res.totalRefs = mrc.totalRefs;

    // Cluster the cheap signatures (every window its own cluster
    // when k == n — degenerate but exact).  Window 0 is always its
    // own singleton cluster: the cold-start window carries the
    // trace's first-touch misses (all classified capacity by an
    // empty shadow directory), and averaging it into a steady-state
    // cluster systematically underpredicts capacity misses.
    const std::vector<std::vector<double>> feat =
        windowFeatures(mrc);
    std::vector<std::size_t> assign;
    if (k == n) {
        assign.resize(n);
        for (std::size_t w = 0; w < n; ++w)
            assign[w] = w;
    } else if (k >= 2) {
        const std::vector<std::vector<double>> rest(
            feat.begin() + 1, feat.end());
        const std::vector<std::size_t> sub =
            kmeansAssign(rest, k - 1, cfg);
        assign.resize(n);
        assign[0] = 0;
        for (std::size_t w = 1; w < n; ++w)
            assign[w] = sub[w - 1] + 1;
    } else {
        assign.assign(n, 0);
    }
    for (std::size_t c = 0; c < k; ++c) {
        std::vector<std::size_t> members;
        for (std::size_t w = 0; w < n; ++w)
            if (assign[w] == c)
                members.push_back(w);
        if (members.empty())
            continue;

        // Within-cluster mean and relative spread of the scalar
        // signature (total sampled miss rate).
        double mean = 0.0;
        for (std::size_t w : members)
            mean += windowScalar(mrc.windows[w]);
        mean /= static_cast<double>(members.size());
        double var = 0.0;
        for (std::size_t w : members) {
            const double d = windowScalar(mrc.windows[w]) - mean;
            var += d * d;
        }
        const double sd =
            std::sqrt(var / static_cast<double>(members.size()));
        const double rel =
            mean > 1e-12 ? std::min(1.0, sd / mean) : 0.0;

        // The representative is the member whose RAW per-capacity
        // sampled miss-rate vector is closest to the cluster mean
        // (lowest index on ties).  The stratified estimator weights
        // the medoid's replayed rates by the whole cluster, so the
        // medoid must match the cluster's mean intensity at every
        // capacity — z-scored feature distance (what k-means itself
        // uses) lets profile *shape* dominate and systematically
        // picks quiet windows, biasing miss counters low.
        const std::size_t pts = mrc.points.size();
        auto raw_rates = [&](std::size_t w,
                             std::vector<double> &out) {
            const WindowSignature &s = mrc.windows[w];
            const double sampled = std::max<double>(
                1.0, static_cast<double>(s.sampledRefs));
            for (std::size_t p = 0; p < pts; ++p)
                out[p] =
                    static_cast<double>(s.sampledMisses[p]) / sampled;
            out[pts] =
                static_cast<double>(s.sampledNewLines) / sampled;
            out[pts + 1] =
                static_cast<double>(s.sampledUniqueLines) / sampled;
        };
        std::vector<double> rate_mean(pts + 2, 0.0);
        std::vector<double> rates(pts + 2, 0.0);
        for (std::size_t w : members) {
            raw_rates(w, rates);
            for (std::size_t p = 0; p < rate_mean.size(); ++p)
                rate_mean[p] += rates[p];
        }
        for (double &v : rate_mean)
            v /= static_cast<double>(members.size());

        std::size_t medoid = members[0];
        double best = std::numeric_limits<double>::infinity();
        for (std::size_t w : members) {
            raw_rates(w, rates);
            double d = 0.0;
            for (std::size_t p = 0; p < rate_mean.size(); ++p) {
                const double dd = rates[p] - rate_mean[p];
                d += dd * dd;
            }
            if (d < best) {
                best = d;
                medoid = w;
            }
        }

        RepresentativeWindow rep;
        rep.windowIndex = medoid;
        rep.clusterSize = members.size();
        // Weight by references covered, not window count — the tail
        // window is short, and counting it as a full window skews
        // every reconstructed counter by the shortfall.
        Count covered = 0;
        for (std::size_t w : members)
            covered += mrc.windows[w].lastRef -
                       mrc.windows[w].firstRef + 1;
        rep.weight = static_cast<double>(covered) /
                     static_cast<double>(res.totalRefs);
        rep.relSpread = rel;

        const WindowSignature &sig = mrc.windows[medoid];
        rep.firstRef = sig.firstRef;
        rep.lastRef = sig.lastRef;
        rep.refs = sig.lastRef - sig.firstRef + 1;

        const std::size_t warm = warmupStart(
            records, sig.recordBegin, cfg.warmupRefs);
        res.replayedRefs +=
            replayWindow(records, warm, sig.recordBegin,
                         sig.recordEnd, cache_cfg, rep.delta);
        res.reps.push_back(std::move(rep));
    }

    // Stratified reconstruction per counter, with error bars.
    const double total = static_cast<double>(res.totalRefs);
    MemStats::forEachField([&](const char *name,
                               Count MemStats::*f) {
        StatEstimate est;
        est.name = name;
        double var = 0.0;
        for (const RepresentativeWindow &rep : res.reps) {
            if (rep.refs == 0)
                continue;
            const double rate =
                static_cast<double>(rep.delta.*f) /
                static_cast<double>(rep.refs);
            const double part = rep.weight * rate * total;
            est.predicted += part;
            var += (part * rep.relSpread) * (part * rep.relSpread);
        }
        est.errorBar = 1.96 * std::sqrt(var);
        res.predicted.*f =
            static_cast<Count>(std::llround(est.predicted));
        res.stats.push_back(std::move(est));
    });

    return res;
}

} // namespace ccm::sample
