/**
 * @file
 * Top-level sampling analysis: one call runs the SHARDS MRC pass,
 * optionally the representative-interval selection + replay, the
 * geometry recommendation, and — when asked — the exact reference
 * runs (rate-1.0 MRC, full exact classify) the predictions are
 * scored against.  The CLI (ccm-sample), the ccm-sim flags and the
 * sampling bench all sit on this one entry point so they can't
 * disagree about what a "sampled analysis" is.
 */

#ifndef CCM_SAMPLE_ENGINE_HH
#define CCM_SAMPLE_ENGINE_HH

#include <cstddef>

#include "common/status.hh"
#include "sample/intervals.hh"
#include "sample/mrc.hh"
#include "sample/recommend.hh"
#include "sim/sharded.hh"
#include "trace/record.hh"

namespace ccm::sample
{

/** Parameters of one full sampling analysis. */
struct SampleRunConfig
{
    /** MRC pass parameters (rate, seed, variant, grid, windows). */
    MrcConfig mrc;

    /**
     * Representative windows to select and replay; 0 skips the
     * interval pillar entirely.  When > 0 and mrc.windowRefs == 0, a
     * default window of 1/32 of the trace (min 4096 refs) is used.
     */
    std::size_t intervals = 0;

    /** Selection/replay knobs (k is overridden by `intervals`). */
    IntervalConfig interval;

    /** Replay geometry; also the exact-classify configuration. */
    ShardedClassifyConfig classify;

    /**
     * Also run the exact references (rate-1.0 MRC + exact classify)
     * and fill the error fields.  Costs what sampling saves — used
     * by the accuracy bench and the CI gate, not production sweeps.
     */
    bool compareExact = false;
};

/** Everything one sampling analysis produces. */
struct SampleReport
{
    MrcResult mrc;
    GeometryRecommendation recommendation;

    /** Interval pillar (valid iff hasIntervals). */
    bool hasIntervals = false;
    IntervalResult intervals;

    // ---- exact references (valid iff compareExact was set) -------
    bool hasExact = false;
    MrcResult exactMrc;
    ShardedClassifyResult exactClassify;

    /** Mean/max |sampled - exact| miss-ratio over the grid. */
    double mrcMae = 0.0;
    double mrcMaxError = 0.0;

    /**
     * Max relative reconstruction error over the classify counters
     * that are nonzero in the exact run (0 when intervals are off).
     */
    double maxStatRelError = 0.0;

    // Wall clock, named so ci.sh's wall_seconds strip catches the
    // JSON lines derived from them (nondeterministic by nature).
    double wallSecondsSampled = 0.0;
    double wallSecondsExact = 0.0;
};

/**
 * Run the analysis over @p count records.  Deterministic except the
 * wallSeconds* fields.
 */
Expected<SampleReport> runSampleAnalysis(const MemRecord *records,
                                         std::size_t count,
                                         const SampleRunConfig &cfg);

} // namespace ccm::sample

#endif // CCM_SAMPLE_ENGINE_HH
