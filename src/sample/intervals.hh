/**
 * @file
 * Representative-interval selection and replay (Bueno et al.,
 * "Improving the Representativeness of Simulation Intervals for the
 * Cache Memory System" — see PAPERS.md).
 *
 * A long trace is cut into fixed-length windows of W memory
 * references.  The MRC pass (mrc.hh, MrcConfig::windowRefs = W)
 * already produces a cheap per-window feature vector — the sampled
 * miss counts per curve point, i.e. the window's reuse/miss
 * signature — so phase detection costs nothing beyond the sampled
 * scan.  The windows are clustered k-means-style in z-scored feature
 * space (deterministic: Pcg32-seeded init, fixed iteration cap,
 * lowest-index tie-breaks) and each cluster elects its medoid as the
 * representative window, weighted by the cluster's share of all
 * windows.
 *
 * Only the K representative windows are then replayed *exactly*
 * (Cache + ShadowDirectory, the same loop as sim/sharded.cc, with an
 * uncounted warmup prefix to populate the cold cache), and every
 * whole-trace classification counter is reconstructed as
 *
 *     predicted = sum_c weight_c * rate_c * totalRefs
 *
 * with rate_c the counter's per-reference rate inside cluster c's
 * representative.  The stratified-sampling error bar reported per
 * stat is 1.96 * sqrt(sum_c (weight_c * rate_c * N * relsd_c)^2)
 * where relsd_c is the within-cluster relative spread of the window
 * signatures — clusters whose windows disagree contribute wide bars,
 * tight phases contribute narrow ones.
 *
 * Determinism: same records + MrcResult + config => identical
 * IntervalResult on every platform (Pcg32 is seedable and fixed;
 * the replay is the exact simulator).
 */

#ifndef CCM_SAMPLE_INTERVALS_HH
#define CCM_SAMPLE_INTERVALS_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hh"
#include "common/types.hh"
#include "hierarchy/memstats.hh"
#include "sample/mrc.hh"
#include "sim/sharded.hh"
#include "trace/record.hh"

namespace ccm::sample
{

/** Parameters of interval selection + replay. */
struct IntervalConfig
{
    /** Representative windows to keep (clamped to window count). */
    std::size_t k = 4;

    /**
     * Uncounted warmup prefix replayed before each representative
     * window, in memory references, to populate the cold cache/MCT.
     */
    Count warmupRefs = 16 * 1024;

    /** k-means init / tie-break stream. */
    std::uint64_t seed = 42;

    /** Lloyd iteration cap (assignments usually settle in < 10). */
    unsigned maxIters = 32;
};

/** One elected representative window and its exact replay. */
struct RepresentativeWindow
{
    std::size_t windowIndex = 0; ///< index into MrcResult::windows
    double weight = 0.0;         ///< cluster share of all windows
    std::size_t clusterSize = 0; ///< windows in this cluster

    Count firstRef = 0; ///< 1-based, inclusive
    Count lastRef = 0;
    Count refs = 0; ///< memory references inside the window

    /** Exact classify counters measured inside the window. */
    MemStats delta;

    /** Within-cluster relative spread of window signatures. */
    double relSpread = 0.0;
};

/** One reconstructed whole-trace statistic with its error bar. */
struct StatEstimate
{
    std::string name;      ///< MemStats field name
    double predicted = 0.0; ///< reconstructed whole-trace count
    double errorBar = 0.0;  ///< +/- absolute, at `confidence`
};

/** Everything interval selection + replay produces. */
struct IntervalResult
{
    std::size_t windows = 0;  ///< windows the trace was cut into
    std::size_t clusters = 0; ///< K actually used (<= windows)
    Count windowRefs = 0;     ///< window length W
    Count totalRefs = 0;      ///< whole-trace memory references
    Count replayedRefs = 0;   ///< refs simulated, warmup included
    double confidence = 0.95; ///< level of the error bars

    std::vector<RepresentativeWindow> reps;

    /** Per-counter reconstruction, MemStats::forEachField order. */
    std::vector<StatEstimate> stats;

    /** The reconstruction rounded back onto the counter schema. */
    MemStats predicted;

    /** Estimate by field name; nullptr when absent. */
    const StatEstimate *find(const std::string &name) const;
};

/**
 * Cluster @p mrc's window signatures, replay the K representatives
 * exactly against @p cache_cfg's geometry, and reconstruct the
 * whole-trace classify stats.  @p records must be the same span the
 * MRC pass scanned; @p mrc must carry windows (windowRefs > 0).
 */
Expected<IntervalResult> reconstructFromIntervals(
    const MemRecord *records, std::size_t count, const MrcResult &mrc,
    const ShardedClassifyConfig &cache_cfg, const IntervalConfig &cfg);

} // namespace ccm::sample

#endif // CCM_SAMPLE_INTERVALS_HH
