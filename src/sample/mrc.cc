#include "sample/mrc.hh"

#include <algorithm>
#include <chrono>
#include <limits>
#include <memory>
#include <unordered_map>

#include "cache/fa_lru.hh"
#include "cache/geometry.hh"
#include "common/sample_hash.hh"
#include "obs/metrics.hh"

namespace ccm::sample
{

namespace
{

/** Distinct lines ever admitted into a sample set. */
obs::Counter &
linesSampledCounter()
{
    static obs::Counter &c = obs::MetricsRegistry::global().counter(
        "ccm_sample_lines_sampled_total",
        "Distinct lines admitted by the SHARDS sampling predicate");
    return c;
}

/** Final sampling rate of the most recent MRC pass, in ppm. */
obs::Gauge &
sampleRateGauge()
{
    static obs::Gauge &g = obs::MetricsRegistry::global().gauge(
        "ccm_sample_rate",
        "Effective sampling rate of the last MRC pass (parts per "
        "million)");
    return g;
}

/** Wall time of each MRC construction pass. */
obs::Histogram &
mrcBuildHistogram()
{
    static obs::Histogram &h = obs::MetricsRegistry::global().histogram(
        "ccm_sample_mrc_build_us",
        "Wall time of one SHARDS miss-ratio-curve construction pass");
    return h;
}

/**
 * One curve point's threshold test: an FaLru holding the top
 * floor(capacityLines * rate) entries of the sampled LRU stack.  A
 * sampled reference misses at true capacity C iff its sampled stack
 * distance d satisfies d > C*R; distances are integers, so the test
 * is exactly "not within the top floor(C*R)" — bank capacity 0 means
 * every reference misses (C*R < 1: the scaled cache can't hold even
 * one line).
 */
struct Bank
{
    std::size_t capacityLines = 0;
    std::size_t effLines = 0; ///< current scaled capacity
    Count sampledMisses = 0;
    double weightedMisses = 0.0;
    /** Hard capacity = scaled size at the initial (highest) rate. */
    std::unique_ptr<FaLru> lru;

    /** Access @p line with weight @p w; count the miss if any. */
    void
    access(LineAddr line, double w)
    {
        const bool hit =
            effLines > 0 && lru != nullptr && lru->touchOrInsert(line);
        if (!hit) {
            ++sampledMisses;
            weightedMisses += w;
        }
        trim();
    }

    /** Drop LRU entries beyond the current scaled capacity. */
    void
    trim()
    {
        if (lru == nullptr)
            return;
        while (lru->size() > effLines) {
            auto victim = lru->lruLine();
            if (!victim)
                break;
            lru->erase(*victim);
        }
    }

    /** Remove one purged line (threshold halving). */
    void
    drop(LineAddr line)
    {
        if (lru != nullptr)
            lru->erase(line);
    }
};

/** floor(lines * T / P), in exact integer arithmetic. */
std::size_t
scaledLines(std::size_t lines, std::uint64_t threshold)
{
    return static_cast<std::size_t>(
        (static_cast<std::uint64_t>(lines) * threshold) /
        SamplingPredicate::kModulus);
}

Status
validateConfig(const MrcConfig &cfg,
               const std::vector<std::size_t> &capacities)
{
    Status geom = CacheGeometry::validate(cfg.lineBytes, 1,
                                          cfg.lineBytes);
    if (!geom.isOk())
        return geom.withContext("mrc line size");
    if (capacities.empty())
        return Status::badConfig("mrc capacity grid is empty");
    std::size_t prev = 0;
    for (std::size_t c : capacities) {
        if (c < cfg.lineBytes || c % cfg.lineBytes != 0)
            return Status::badConfig(
                "mrc capacity ", c,
                " is not a positive multiple of the ", cfg.lineBytes,
                "-byte line");
        if (c <= prev)
            return Status::badConfig(
                "mrc capacities must be strictly ascending (", c,
                " after ", prev, ")");
        prev = c;
    }
    if (cfg.variant == ShardsVariant::FixedSize &&
        cfg.maxSampledLines == 0)
        return Status::badConfig(
            "fixed-size sampling needs maxSampledLines > 0");
    return Status::ok();
}

} // namespace

const char *
toString(ShardsVariant v)
{
    switch (v) {
      case ShardsVariant::FixedRate: return "fixed-rate";
      case ShardsVariant::FixedSize: return "fixed-size";
    }
    return "?";
}

std::vector<std::size_t>
defaultCapacities()
{
    std::vector<std::size_t> sizes;
    for (std::size_t kb = 16; kb <= 8192; kb *= 2)
        sizes.push_back(kb * 1024);
    return sizes;
}

double
MrcResult::missRatioAt(std::size_t capacity_bytes) const
{
    for (const MrcPoint &p : points) {
        if (p.capacityBytes >= capacity_bytes)
            return p.missRatio;
    }
    return points.empty() ? 0.0 : points.back().missRatio;
}

void
touchSampleMetrics()
{
    linesSampledCounter();
    sampleRateGauge();
    mrcBuildHistogram();
}

namespace
{

/** One sampling pass with @p sampler; cfg pre-validated. */
MrcResult
buildMrcPass(const MemRecord *records, std::size_t count,
             const MrcConfig &cfg,
             const std::vector<std::size_t> &capacities,
             SamplingPredicate sampler)
{
    const CacheGeometry line_geom(cfg.lineBytes, 1, cfg.lineBytes);

    std::vector<Bank> banks(capacities.size());
    for (std::size_t i = 0; i < capacities.size(); ++i) {
        Bank &b = banks[i];
        b.capacityLines = capacities[i] / cfg.lineBytes;
        b.effLines = scaledLines(b.capacityLines, sampler.threshold());
        if (b.effLines > 0)
            b.lru = std::make_unique<FaLru>(b.effLines);
    }

    MrcResult res;
    res.configuredRate = sampler.rate();
    res.seed = cfg.seed;
    res.lineBytes = cfg.lineBytes;
    res.variant = cfg.variant;
    res.rateCorrected = cfg.rateCorrection;
    res.windowRefs = cfg.windowRefs;

    // Tracked sampled lines -> admission bucket (so a threshold
    // halving can purge exactly the lines that fell out of the
    // sample) + last-window stamp (per-window footprint counting).
    // AddrMixHash spreads the line-strided keys.
    struct TrackedLine
    {
        std::uint32_t bucket;
        std::uint32_t window; ///< 1-based stamp; 0 = not this window
    };
    std::unordered_map<Addr, TrackedLine, AddrMixHash> tracked;

    // Window bookkeeping (cfg.windowRefs > 0 only).
    std::vector<Count> window_base(banks.size(), 0);
    Count last_boundary = 0;
    std::size_t window_record_begin = 0;
    Count window_new_lines = 0;
    Count window_unique_lines = 0;
    auto emitWindow = [&](Count upto, std::size_t record_end) {
        WindowSignature w;
        w.firstRef = last_boundary + 1;
        w.lastRef = upto;
        w.recordBegin = window_record_begin;
        w.recordEnd = record_end;
        w.sampledMisses.reserve(banks.size());
        for (std::size_t i = 0; i < banks.size(); ++i) {
            w.sampledMisses.push_back(banks[i].sampledMisses -
                                      window_base[i]);
            window_base[i] = banks[i].sampledMisses;
        }
        w.sampledNewLines = window_new_lines;
        w.sampledUniqueLines = window_unique_lines;
        window_new_lines = 0;
        window_unique_lines = 0;
        res.windows.push_back(std::move(w));
        last_boundary = upto;
        window_record_begin = record_end;
    };
    Count window_sampled_base = 0;
    // 0 disables windows; the sentinel never equals a ref count.
    Count next_window_boundary =
        cfg.windowRefs != 0 ? cfg.windowRefs
                            : std::numeric_limits<Count>::max();

    double weight = 1.0 / sampler.rate();

    for (std::size_t i = 0; i < count; ++i) {
        const MemRecord &r = records[i];
        if (!r.isMem())
            continue;
        ++res.totalRefs;

        const LineAddr line = line_geom.lineOf(r.dataAddr());
        if (sampler.sampled(line)) {
            ++res.sampledRefs;
            res.weightedRefs += weight;

            const std::uint32_t stamp = static_cast<std::uint32_t>(
                res.windows.size() + 1);
            auto [it, inserted] = tracked.emplace(
                line.value(),
                TrackedLine{static_cast<std::uint32_t>(
                                sampler.bucketOf(line)),
                            stamp});
            if (inserted) {
                ++res.linesSampled;
                ++window_new_lines;
                ++window_unique_lines;
            } else if (it->second.window != stamp) {
                it->second.window = stamp;
                ++window_unique_lines;
            }

            for (Bank &b : banks)
                b.access(line, weight);

            // Fixed-size: over budget -> halve the threshold, purge
            // the lines that fell out of the sample, shrink the
            // banks to the new scaled capacities.
            if (cfg.variant == ShardsVariant::FixedSize &&
                tracked.size() > cfg.maxSampledLines &&
                sampler.threshold() > 1) {
                const std::uint64_t new_thr = sampler.threshold() / 2;
                sampler.lowerThreshold(new_thr);
                ++res.thresholdHalvings;
                weight = 1.0 / sampler.rate();
                for (auto it2 = tracked.begin();
                     it2 != tracked.end();) {
                    if (it2->second.bucket >= new_thr) {
                        for (Bank &b : banks)
                            b.drop(LineAddr{it2->first});
                        it2 = tracked.erase(it2);
                    } else {
                        ++it2;
                    }
                }
                for (Bank &b : banks) {
                    b.effLines = scaledLines(b.capacityLines,
                                             sampler.threshold());
                    b.trim();
                }
            }
        }

        if (res.totalRefs == next_window_boundary) {
            emitWindow(res.totalRefs, i + 1);
            res.windows.back().sampledRefs =
                res.sampledRefs - window_sampled_base;
            window_sampled_base = res.sampledRefs;
            next_window_boundary += cfg.windowRefs;
        }
    }
    if (cfg.windowRefs != 0 && res.totalRefs > last_boundary) {
        emitWindow(res.totalRefs, count);
        res.windows.back().sampledRefs =
            res.sampledRefs - window_sampled_base;
    }

    res.finalRate = sampler.rate();

    // Rate correction: misses are measured; the reference mass is
    // corrected to its expectation (N for weighted units), so an
    // unlucky sample shifts hits, not the measured miss weight.
    const double total = static_cast<double>(res.totalRefs);
    for (std::size_t i = 0; i < banks.size(); ++i) {
        MrcPoint p;
        p.capacityBytes = capacities[i];
        p.capacityLines = banks[i].capacityLines;
        p.bankLines = banks[i].effLines;
        p.sampledMisses = banks[i].sampledMisses;
        const double denom =
            cfg.rateCorrection ? total : res.weightedRefs;
        const double mr =
            denom > 0.0 ? banks[i].weightedMisses / denom : 0.0;
        p.missRatio = std::clamp(mr, 0.0, 1.0);
        res.points.push_back(p);
    }
    return res;
}

} // namespace

Expected<MrcResult>
buildMrc(const MemRecord *records, std::size_t count,
         const MrcConfig &cfg)
{
    const std::vector<std::size_t> capacities =
        cfg.capacitiesBytes.empty() ? defaultCapacities()
                                    : cfg.capacitiesBytes;
    Status ok = validateConfig(cfg, capacities);
    if (!ok.isOk())
        return ok;
    auto pred = SamplingPredicate::make(cfg.rate, cfg.seed);
    if (!pred.ok())
        return pred.status();

    const auto t0 = std::chrono::steady_clock::now();
    MrcResult res =
        buildMrcPass(records, count, cfg, capacities, pred.value());

    // Degenerate-footprint guard: spatial sampling is only sound
    // when the sample holds enough distinct lines.  A pass that lands
    // under the floor re-runs once at a proportionally boosted rate —
    // deterministic, and cheap precisely when it triggers (a small
    // footprint means small banks either way).
    if (cfg.minSampledLines > 0 &&
        res.linesSampled < cfg.minSampledLines &&
        res.finalRate < 1.0) {
        const double grow = std::max(
            2.0, 2.0 * static_cast<double>(cfg.minSampledLines) /
                     static_cast<double>(
                         std::max<Count>(1, res.linesSampled)));
        const double cap = std::max(cfg.rate, cfg.maxBoostedRate);
        auto boosted = SamplingPredicate::make(
            std::min({1.0, cfg.rate * grow, cap}), cfg.seed);
        if (boosted.ok()) {
            res = buildMrcPass(records, count, cfg, capacities,
                               boosted.value());
            res.configuredRate = pred.value().rate();
            res.minLinesBoost = true;
        }
    }

    linesSampledCounter().inc(res.linesSampled);
    sampleRateGauge().set(
        static_cast<std::int64_t>(res.finalRate * 1e6));
    mrcBuildHistogram().observe(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
    return res;
}

} // namespace ccm::sample
