#include "sample/recommend.hh"

#include <sstream>

namespace ccm::sample
{

namespace
{

/** Steepness ladder: deeper buffers for steeper curves. */
unsigned
bufferDepthFor(double gain_double)
{
    if (gain_double < 0.005)
        return 4;
    if (gain_double < 0.02)
        return 8;
    if (gain_double < 0.05)
        return 16;
    return 32;
}

} // namespace

GeometryRecommendation
recommendGeometry(const MrcResult &mrc, std::size_t l1_bytes)
{
    GeometryRecommendation rec;
    rec.missRatioAtL1 = mrc.missRatioAt(l1_bytes);
    rec.gainDouble =
        rec.missRatioAtL1 - mrc.missRatioAt(l1_bytes * 2);
    rec.gainQuad = rec.missRatioAtL1 - mrc.missRatioAt(l1_bytes * 4);
    rec.missRatioAtMax = mrc.points.empty()
                             ? 0.0
                             : mrc.points.back().missRatio;

    rec.bufEntries = bufferDepthFor(rec.gainDouble);

    // Steep just past C: near-capacity reuse a small buffer catches.
    rec.victimConflicts = rec.gainDouble >= 0.005;
    // Still missing hard at the largest capacity: streaming access
    // no capacity fixes — prefetch the next line instead.
    rec.prefetchCapacity = rec.missRatioAtMax > 0.2;
    // Big gains only far beyond C: capacity thrash — bypass the
    // never-reused fills to protect the resident set.
    rec.excludeCapacity = rec.gainQuad > 0.05;

    std::ostringstream why;
    why << "mr(C)=" << rec.missRatioAtL1
        << " gain2x=" << rec.gainDouble << " gain4x=" << rec.gainQuad
        << " mr(max)=" << rec.missRatioAtMax << " -> buf="
        << rec.bufEntries;
    if (rec.useAssist()) {
        why << " amb=";
        if (rec.victimConflicts)
            why << "V";
        if (rec.prefetchCapacity)
            why << "P";
        if (rec.excludeCapacity)
            why << "X";
    } else {
        why << " (no assist indicated)";
    }
    rec.rationale = why.str();
    return rec;
}

SystemConfig
applyRecommendation(const SystemConfig &base,
                    const GeometryRecommendation &rec)
{
    SystemConfig cfg = base;
    cfg.mem.bufEntries = rec.bufEntries;
    if (rec.useAssist()) {
        cfg.mem.mode = AssistMode::Amb;
        cfg.mem.amb.victimConflicts = rec.victimConflicts;
        cfg.mem.amb.prefetchCapacity = rec.prefetchCapacity;
        cfg.mem.amb.excludeCapacity = rec.excludeCapacity;
    }
    return cfg;
}

} // namespace ccm::sample
