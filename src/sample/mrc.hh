/**
 * @file
 * Single-pass miss-ratio-curve construction with SHARDS spatial
 * sampling (Byrne, "A Survey of Miss-Ratio Curve Construction
 * Techniques"; Waldspurger et al.'s SHARDS — see PAPERS.md).
 *
 * ## What one pass computes
 *
 * A fully-associative LRU cache of capacity c hits a reference iff
 * the reference's *stack distance* (its line's 1-based position in
 * the LRU stack) is <= c — Mattson's inclusion property.  So the miss
 * ratio at every capacity in a fixed grid falls out of one scan: the
 * profiler keeps one flat FaLru "bank" per curve point and counts the
 * references each bank misses.  Each bank operation is O(1) expected
 * (open-addressed hash + intrusive list; src/cache/fa_lru.hh), and
 * the grid has a fixed handful of points, so the per-reference cost
 * is O(points) = O(1) — not the naive O(N) Mattson list walk.
 *
 * ## SHARDS sampling
 *
 * A line is sampled iff hash(line) mod P < T (common/sample_hash.hh),
 * giving rate R = T/P.  Sampling lines (not references) preserves
 * per-line reuse exactly; the sampled trace behaves like the full
 * trace shrunk by R, so a sampled stack distance d estimates a true
 * distance d/R and the bank for true capacity C holds floor(C*R)
 * lines (a miss at capacity C is "d > C*R", and distances are
 * integers, so the test is exact — no capacity rounding error beyond
 * the floor).  Two variants:
 *
 *  - fixed-rate: T is constant; memory grows with the sampled
 *    working set;
 *  - fixed-size (SHARDS-adj): when the tracked-line set exceeds
 *    maxSampledLines, T halves and lines with bucket >= T are evicted
 *    from every bank, bounding memory at the cost of a coarser early
 *    history.  Each kept reference is weighted by 1/R_at_sample-time.
 *
 * The standard rate correction ("SHARDS-adj" in the literature) adds
 * the difference between expected (N*R) and actual weighted sampled
 * references to the hit side of every point — misses are measured,
 * total mass is corrected — which removes most of the bias of an
 * unlucky sample at low rates.
 *
 * Everything is deterministic: same records + config => identical
 * MrcResult bytes, any platform (the sampling hash is seedable and
 * bit-reproducible; no rand()/std::hash anywhere).
 */

#ifndef CCM_SAMPLE_MRC_HH
#define CCM_SAMPLE_MRC_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.hh"
#include "common/types.hh"
#include "trace/record.hh"

namespace ccm::sample
{

/** Which SHARDS flavour bounds the profiler's memory. */
enum class ShardsVariant
{
    FixedRate, ///< constant threshold, unbounded tracked set
    FixedSize, ///< threshold halves to cap the tracked set
};

/** @return "fixed-rate" / "fixed-size". */
const char *toString(ShardsVariant v);

/** Parameters of one MRC construction pass. */
struct MrcConfig
{
    /** Reuse granularity (power of two). */
    unsigned lineBytes = 64;

    /**
     * Cache capacities (bytes) the curve is evaluated at, ascending.
     * Empty = defaultCapacities().
     */
    std::vector<std::size_t> capacitiesBytes;

    /** Initial sampling rate in (0, 1]; 1.0 = exact (no sampling). */
    double rate = 0.01;

    /** Sample-set selector (common/sample_hash.hh). */
    std::uint64_t seed = 42;

    ShardsVariant variant = ShardsVariant::FixedRate;

    /** FixedSize only: tracked-line budget before T halves. */
    std::size_t maxSampledLines = 8192;

    /** Apply the standard expected-vs-actual mass correction. */
    bool rateCorrection = true;

    /**
     * Also record a per-window miss signature every this many memory
     * references (0 = off) — the cheap feature vectors the
     * representative-interval selector (intervals.hh) clusters.
     */
    Count windowRefs = 0;

    /**
     * Degenerate-footprint guard (0 = off).  Spatial sampling is only
     * sound when the sample holds enough distinct lines; a pass that
     * finishes with fewer than this many re-runs once at a
     * proportionally boosted rate (MrcResult::minLinesBoost reports
     * it).  The retry is deterministic and cheap exactly when it
     * triggers: a small footprint means small banks at any rate.
     */
    std::size_t minSampledLines = 512;

    /**
     * Ceiling for the boosted retry rate (the guard never exceeds
     * max(rate, maxBoostedRate)).  Tiny footprints would otherwise
     * demand near-exact rates and forfeit the sampling speedup; a
     * capped boost already multiplies the sample severalfold.
     */
    double maxBoostedRate = 0.08;
};

/** The default 16KB..8MB power-of-two capacity grid. */
std::vector<std::size_t> defaultCapacities();

/** One point of the curve. */
struct MrcPoint
{
    std::size_t capacityBytes = 0;
    std::size_t capacityLines = 0;
    /** Scaled bank size actually simulated: floor(lines * rate). */
    std::size_t bankLines = 0;
    /** Raw sampled references that missed this bank. */
    Count sampledMisses = 0;
    /** Rate-corrected miss-ratio estimate in [0, 1]. */
    double missRatio = 0.0;
};

/**
 * Per-window reuse/miss signature — the feature vector of one
 * fixed-length interval, produced when MrcConfig::windowRefs > 0.
 */
struct WindowSignature
{
    Count firstRef = 0; ///< 1-based, inclusive
    Count lastRef = 0;  ///< inclusive
    /** Record-span [begin, end) covering the window. */
    std::size_t recordBegin = 0;
    std::size_t recordEnd = 0;
    Count sampledRefs = 0;
    /** Sampled misses per curve point within this window. */
    std::vector<Count> sampledMisses;
    /**
     * Exact (not miss-estimate) phase discriminators: sampled lines
     * first seen in this window, and distinct sampled lines touched.
     * Cold/streaming phases show high first-touch rates; tight
     * conflict loops show small footprints — signals the sparse
     * per-capacity miss counts alone cannot separate.
     */
    Count sampledNewLines = 0;
    Count sampledUniqueLines = 0;
};

/** Everything one MRC pass produces. */
struct MrcResult
{
    std::vector<MrcPoint> points;

    Count totalRefs = 0;    ///< memory references scanned
    Count sampledRefs = 0;  ///< references past the admission test
    Count linesSampled = 0; ///< distinct sampled lines seen
    /** Weighted sampled references (each 1/R at sample time). */
    double weightedRefs = 0.0;

    double configuredRate = 0.0;
    /** Final threshold rate (== configuredRate for fixed-rate). */
    double finalRate = 0.0;
    std::uint64_t seed = 0;
    unsigned lineBytes = 64;
    ShardsVariant variant = ShardsVariant::FixedRate;
    bool rateCorrected = true;
    /** Times the fixed-size variant halved the threshold. */
    unsigned thresholdHalvings = 0;
    /** MrcConfig::minSampledLines triggered a boosted re-run. */
    bool minLinesBoost = false;

    /** Window series (empty unless cfg.windowRefs > 0). */
    Count windowRefs = 0;
    std::vector<WindowSignature> windows;

    /** Curve value at the smallest point >= @p capacity_bytes. */
    double missRatioAt(std::size_t capacity_bytes) const;
};

/**
 * Build the miss-ratio curve of @p count records in one pass.
 * Deterministic for a given (records, cfg).
 */
Expected<MrcResult> buildMrc(const MemRecord *records,
                             std::size_t count, const MrcConfig &cfg);

/**
 * Pre-register the sampling instruments (ccm_sample_lines_sampled
 * _total, ccm_sample_rate, ccm_sample_mrc_build_us) with the global
 * metrics registry so telemetry consumers (ccm-top) see them at
 * their zero values before the first pass runs.
 */
void touchSampleMetrics();

} // namespace ccm::sample

#endif // CCM_SAMPLE_MRC_HH
