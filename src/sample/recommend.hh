/**
 * @file
 * Per-workload geometry recommendations derived from a miss-ratio
 * curve — the planning half of the sampling engine: one cheap
 * sampled pass (mrc.hh) suggests the victim-buffer depth and AMB
 * partition to sweep, instead of brute-forcing every combination.
 *
 * The mapping is a documented heuristic, not a guarantee (an MRC is
 * fully associative, so it sees capacity pressure, not mapping
 * conflicts directly):
 *
 *  - a steep curve just past the L1 capacity (mr(C) - mr(2C) large)
 *    means the working set barely exceeds the cache, so the lines a
 *    small victim/assist buffer can hold are exactly the ones about
 *    to be re-referenced — deeper buffers for steeper curves;
 *  - a curve still high at the largest grid capacity means streaming
 *    reuse the cache can never capture — prefetching is the only
 *    lever that helps;
 *  - gains that only materialize at several times the capacity mean
 *    capacity-bound thrash — cache exclusion (bypassing the
 *    never-reused fills) protects the resident set.
 *
 * The suite's --auto-size mode applies these per workload via
 * applyRecommendation; EXPERIMENTS.md has the recipe.
 */

#ifndef CCM_SAMPLE_RECOMMEND_HH
#define CCM_SAMPLE_RECOMMEND_HH

#include <cstddef>
#include <string>

#include "sample/mrc.hh"
#include "sim/experiment.hh"

namespace ccm::sample
{

/** MRC-derived geometry suggestion for one workload. */
struct GeometryRecommendation
{
    /** Suggested assist-buffer depth (4/8/16/32 entries). */
    unsigned bufEntries = 8;

    /** Suggested AMB allocation partition. */
    bool victimConflicts = false;
    bool prefetchCapacity = false;
    bool excludeCapacity = false;

    /** True when any partition flag is set (assist worth running). */
    bool useAssist() const
    {
        return victimConflicts || prefetchCapacity || excludeCapacity;
    }

    // Curve evidence the suggestion was read from.
    double missRatioAtL1 = 0.0; ///< mr(C)
    double gainDouble = 0.0;    ///< mr(C) - mr(2C)
    double gainQuad = 0.0;      ///< mr(C) - mr(4C)
    double missRatioAtMax = 0.0;

    /** One-line human-readable justification. */
    std::string rationale;
};

/**
 * Read a recommendation off @p mrc for an L1 of @p l1_bytes.
 * Pure function of the curve — deterministic.
 */
GeometryRecommendation recommendGeometry(const MrcResult &mrc,
                                         std::size_t l1_bytes);

/**
 * @p base with the recommendation applied: buffer depth, and — when
 * the curve argues for an assist at all — AssistMode::Amb with the
 * suggested partition.  A flat curve leaves @p base untouched except
 * for the buffer depth.
 */
SystemConfig applyRecommendation(const SystemConfig &base,
                                 const GeometryRecommendation &rec);

} // namespace ccm::sample

#endif // CCM_SAMPLE_RECOMMEND_HH
