#include "sample/engine.hh"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace ccm::sample
{

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

Expected<SampleReport>
runSampleAnalysis(const MemRecord *records, std::size_t count,
                  const SampleRunConfig &cfg)
{
    SampleReport rep;
    MrcConfig mrc_cfg = cfg.mrc;

    // The interval pillar needs window signatures; default the
    // window to 1/32 of the trace when the caller didn't pick one.
    if (cfg.intervals > 0 && mrc_cfg.windowRefs == 0) {
        Count mem_refs = 0;
        for (std::size_t i = 0; i < count; ++i)
            if (records[i].isMem())
                ++mem_refs;
        mrc_cfg.windowRefs = std::max<Count>(4096, mem_refs / 32);
    }

    const auto t0 = std::chrono::steady_clock::now();
    auto mrc = buildMrc(records, count, mrc_cfg);
    if (!mrc.ok())
        return mrc.status().withContext("sampled MRC pass");
    rep.mrc = mrc.take();

    rep.recommendation =
        recommendGeometry(rep.mrc, cfg.classify.cacheBytes);

    if (cfg.intervals > 0) {
        IntervalConfig icfg = cfg.interval;
        icfg.k = cfg.intervals;
        auto ivl = reconstructFromIntervals(records, count, rep.mrc,
                                            cfg.classify, icfg);
        if (!ivl.ok())
            return ivl.status().withContext("interval selection");
        rep.intervals = ivl.take();
        rep.hasIntervals = true;
    }
    rep.wallSecondsSampled = secondsSince(t0);

    if (cfg.compareExact) {
        const auto t1 = std::chrono::steady_clock::now();

        MrcConfig exact_cfg = mrc_cfg;
        exact_cfg.rate = 1.0;
        exact_cfg.variant = ShardsVariant::FixedRate;
        exact_cfg.windowRefs = 0;
        auto exact = buildMrc(records, count, exact_cfg);
        if (!exact.ok())
            return exact.status().withContext("exact MRC pass");
        rep.exactMrc = exact.take();

        rep.exactClassify =
            runShardedClassify(records, count, cfg.classify);
        rep.wallSecondsExact = secondsSince(t1);
        rep.hasExact = true;

        double sum = 0.0;
        for (std::size_t i = 0; i < rep.mrc.points.size(); ++i) {
            const double err =
                std::fabs(rep.mrc.points[i].missRatio -
                          rep.exactMrc.points[i].missRatio);
            sum += err;
            rep.mrcMaxError = std::max(rep.mrcMaxError, err);
        }
        rep.mrcMae =
            rep.mrc.points.empty()
                ? 0.0
                : sum / static_cast<double>(rep.mrc.points.size());

        if (rep.hasIntervals) {
            MemStats::forEachField([&](const char *name,
                                       Count MemStats::*f) {
                const Count exact_v = rep.exactClassify.mem.*f;
                if (exact_v == 0)
                    return;
                const StatEstimate *est =
                    rep.intervals.find(name);
                if (est == nullptr)
                    return;
                const double rel =
                    std::fabs(est->predicted -
                              static_cast<double>(exact_v)) /
                    static_cast<double>(exact_v);
                rep.maxStatRelError =
                    std::max(rep.maxStatRelError, rel);
            });
        }
    }

    return rep;
}

} // namespace ccm::sample
