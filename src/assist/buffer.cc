#include "assist/buffer.hh"

#include "common/logging.hh"

namespace ccm
{

AssistBuffer::AssistBuffer(unsigned num_entries, BufRepl repl_)
    : slots(num_entries), repl(repl_)
{
    if (num_entries == 0)
        ccm_fatal("assist buffer needs at least one entry");
}

BufEntry *
AssistBuffer::find(LineAddr line_addr)
{
    for (auto &e : slots) {
        if (e.valid && e.lineAddr == line_addr)
            return &e;
    }
    return nullptr;
}

const BufEntry *
AssistBuffer::find(LineAddr line_addr) const
{
    for (const auto &e : slots) {
        if (e.valid && e.lineAddr == line_addr)
            return &e;
    }
    return nullptr;
}

void
AssistBuffer::recordHit(BufEntry &e)
{
    e.lastUse = ++tick;
    e.used = true;
    ++nHits[idx(e.source)];
}

BufEntry *
AssistBuffer::victimSlot()
{
    BufEntry *victim = nullptr;
    for (auto &e : slots) {
        if (!e.valid)
            return &e;
        Count key = repl == BufRepl::Lru ? e.lastUse : e.insertedAt;
        Count best = !victim ? 0
                             : (repl == BufRepl::Lru
                                    ? victim->lastUse
                                    : victim->insertedAt);
        if (!victim || key < best)
            victim = &e;
    }
    return victim;
}

BufEvicted
AssistBuffer::insert(LineAddr line_addr, BufSource source,
                     bool conflict_bit, bool dirty, Cycle ready)
{
    if (find(line_addr))
        ccm_panic("AssistBuffer::insert of resident line");

    BufEntry *slot = victimSlot();
    BufEvicted out;
    if (slot->valid) {
        out.valid = true;
        out.lineAddr = slot->lineAddr;
        out.dirty = slot->dirty;
        out.source = slot->source;
        out.wasUsed = slot->used;
        if (slot->source == BufSource::Prefetch && !slot->used)
            ++nWastedPref;
    }

    slot->lineAddr = line_addr;
    slot->valid = true;
    slot->dirty = dirty;
    slot->source = source;
    slot->conflictBit = conflict_bit;
    slot->ready = ready;
    slot->used = false;
    slot->lastUse = ++tick;
    slot->insertedAt = tick;

    ++nFills;
    ++nIns[idx(source)];
    return out;
}

bool
AssistBuffer::erase(LineAddr line_addr)
{
    BufEntry *e = find(line_addr);
    if (!e)
        return false;
    e->valid = false;
    return true;
}

void
AssistBuffer::flush()
{
    for (auto &e : slots)
        e.valid = false;
}

unsigned
AssistBuffer::occupancy() const
{
    unsigned n = 0;
    for (const auto &e : slots)
        n += e.valid ? 1 : 0;
    return n;
}

Count
AssistBuffer::totalHits() const
{
    return nHits[0] + nHits[1] + nHits[2];
}

void
AssistBuffer::clearStats()
{
    nFills = 0;
    nHits[0] = nHits[1] = nHits[2] = 0;
    nIns[0] = nIns[1] = nIns[2] = 0;
    nWastedPref = 0;
}

} // namespace ccm
