/**
 * @file
 * The cache-assist buffer (paper §4): a small fully-associative
 * buffer that serves, depending on configuration, as a victim buffer,
 * prefetch buffer, cache-bypass buffer — or all three at once as the
 * Adaptive Miss Buffer.
 *
 * "In most cases it will have eight fully-associative entries and have
 * two read and two write ports.  It can produce a word to the CPU in
 * one cycle.  A full cache line read or write requires a port for two
 * cycles.  A line swap with the data cache requires two ports for two
 * cycles.  The buffer is only accessed after the data cache misses,
 * but can provide data with a single additional cycle of latency."
 *
 * Each entry remembers *how* it entered (victim / prefetch / bypass)
 * because the AMB treats hits differently per source, and entries can
 * transition (a prefetched line re-marked as an exclusion line).
 */

#ifndef CCM_ASSIST_BUFFER_HH
#define CCM_ASSIST_BUFFER_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/addr_types.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace ccm
{

/** How a line entered the assist buffer. */
enum class BufSource : std::uint8_t
{
    Victim,    ///< evicted from the data cache
    Prefetch,  ///< brought in speculatively by the prefetcher
    Bypass,    ///< excluded from the data cache
};

/**
 * Buffer replacement organization (paper §5.1): a plain FIFO evicts
 * in insertion order; the paper's victim cache behaves as "a FIFO
 * from which entries can be taken out of the middle", which "provides
 * LRU eviction because lines are consumed out of the victim cache as
 * soon as they are accessed" — modelled here as Lru.
 */
enum class BufRepl : std::uint8_t
{
    Lru,
    Fifo,
};

/** One assist-buffer entry. */
struct BufEntry
{
    LineAddr lineAddr = invalidLineAddr;
    bool valid = false;
    bool dirty = false;
    BufSource source = BufSource::Victim;
    /** The line's MCT classification when it entered the buffer. */
    bool conflictBit = false;
    /** Cycle at which the data is actually present (prefetches). */
    Cycle ready = 0;
    /** True once the entry has served at least one hit. */
    bool used = false;
    Count lastUse = 0;     ///< LRU stamp
    Count insertedAt = 0;  ///< FIFO stamp
};

/** What an insertion pushed out. */
struct BufEvicted
{
    bool valid = false;
    LineAddr lineAddr{};
    bool dirty = false;
    BufSource source = BufSource::Victim;
    bool wasUsed = false;
};

/** Fully-associative LRU assist buffer with per-source accounting. */
class AssistBuffer
{
  public:
    explicit AssistBuffer(unsigned num_entries,
                          BufRepl repl = BufRepl::Lru);

    /** Look up a line; no replacement-state update. */
    BufEntry *find(LineAddr line_addr);
    const BufEntry *find(LineAddr line_addr) const;

    /**
     * Record a hit on @p e: LRU update, per-source hit counters,
     * marks the entry used.
     */
    void recordHit(BufEntry &e);

    /**
     * Insert a line (must not already be resident), evicting LRU if
     * full.  Counts wasted prefetches (prefetched entries evicted
     * before any use).
     */
    BufEvicted insert(LineAddr line_addr, BufSource source,
                      bool conflict_bit, bool dirty, Cycle ready);

    /** Remove a line (e.g. promoted into the cache). */
    bool erase(LineAddr line_addr);

    /** Invalidate everything (statistics kept). */
    void flush();

    unsigned entries() const { return unsigned(slots.size()); }
    unsigned occupancy() const;

    // Accounting ----------------------------------------------------
    Count fills() const { return nFills; }
    Count hits(BufSource s) const { return nHits[idx(s)]; }
    Count totalHits() const;
    Count insertions(BufSource s) const { return nIns[idx(s)]; }
    /** Prefetched entries evicted before serving any hit. */
    Count wastedPrefetches() const { return nWastedPref; }

    void clearStats();

  private:
    static std::size_t idx(BufSource s) { return std::size_t(s); }
    BufEntry *victimSlot();

    std::vector<BufEntry> slots;
    BufRepl repl;
    Count tick = 0;

    Count nFills = 0;
    Count nHits[3] = {};
    Count nIns[3] = {};
    Count nWastedPref = 0;
};

} // namespace ccm

#endif // CCM_ASSIST_BUFFER_HH
