#include "serve/daemon.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <utility>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/log.hh"
#include "common/version.hh"
#include "obs/sink.hh"
#include "obs/span.hh"
#include "serve/telemetry.hh"

namespace ccm::serve
{

namespace
{

std::int64_t
nowMillis()
{
    using namespace std::chrono;
    return duration_cast<milliseconds>(
               steady_clock::now().time_since_epoch())
        .count();
}

/** Bind + listen a nonblocking unix-domain socket at @p path. */
Expected<int>
listenUnix(const std::string &path)
{
    if (path.empty())
        return Status::badConfig("socket path is empty");
    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path))
        return Status::badConfig("socket path too long: ", path);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return Status::ioError("socket(): ", errnoString(errno));

    ::unlink(path.c_str());
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) < 0) {
        Status s = Status::ioError("bind ", path, ": ",
                                   errnoString(errno));
        ::close(fd);
        return s;
    }
    if (::listen(fd, 64) < 0) {
        Status s = Status::ioError("listen ", path, ": ",
                                   errnoString(errno));
        ::close(fd);
        ::unlink(path.c_str());
        return s;
    }
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    return fd;
}

/** Blocking send-all with a poll timeout per chunk. */
bool
sendAll(int fd, const void *data, std::size_t n, int timeout_ms)
{
    const std::uint8_t *p = static_cast<const std::uint8_t *>(data);
    std::size_t off = 0;
    while (off < n) {
        pollfd pf{};
        pf.fd = fd;
        pf.events = POLLOUT;
        const int pr = ::poll(&pf, 1, timeout_ms);
        if (pr < 0 && errno == EINTR)
            continue;
        if (pr <= 0)
            return false;
        const ssize_t w =
            ::send(fd, p + off, n - off, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR || errno == EAGAIN ||
                errno == EWOULDBLOCK)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(w);
    }
    return true;
}

} // namespace

/**
 * Frame sink for one ingest connection: admits the stream at hello,
 * pushes records frames into its queue.  A connection that sends
 * records before a hello is a protocol violation and is dropped.
 */
struct ConnectionSink final : FrameSink
{
    ServeDaemon &daemon;
    int fd;
    std::shared_ptr<StreamPipeline> pipe;
    Status admitError;
    bool recordsBeforeHello = false;

    ConnectionSink(ServeDaemon &d, int fd_in) : daemon(d), fd(fd_in) {}

    void
    onHello(std::uint32_t, const std::string &name) override
    {
        if (pipe != nullptr || !admitError.isOk())
            return; // duplicate hello: first one wins
        auto admitted = daemon.admitStream(name, fd);
        if (admitted.ok())
            pipe = admitted.value();
        else
            admitError = admitted.status();
    }

    void
    onRecords(const MemRecord *recs, std::size_t n) override
    {
        if (pipe == nullptr) {
            recordsBeforeHello = true;
            return;
        }
        pipe->queue().push(recs, n);
    }

    void onEnd() override {}
};

ServeDaemon::ServeDaemon(ServeOptions opts_in)
    : opts(std::move(opts_in)), runtime(opts.runtime)
{
}

ServeDaemon::~ServeDaemon()
{
    drainAndStop();
}

Status
ServeDaemon::start()
{
    if (started_.load())
        return Status::internal("daemon already started");

    auto lf = listenUnix(opts.socketPath);
    if (!lf.ok())
        return lf.status().withContext("ingest socket");
    listenFd = lf.value();

    if (!opts.controlPath.empty()) {
        auto cf = listenUnix(opts.controlPath);
        if (!cf.ok()) {
            ::close(listenFd);
            ::unlink(opts.socketPath.c_str());
            listenFd = -1;
            return cf.status().withContext("control socket");
        }
        controlFd = cf.value();
    }

    startTime_ = std::chrono::steady_clock::now();
    {
        MutexLock lock(mu);
        serveMetrics().configGeneration.set(
            static_cast<std::int64_t>(generation_));
    }
    CCM_LOG_INFO("daemon listening on ", opts.socketPath,
                 opts.controlPath.empty()
                     ? ""
                     : " (control " + opts.controlPath + ")");

    stopAll.store(false);
    started_.store(true);
    acceptThread = std::thread([this] { acceptLoop(); });
    if (controlFd >= 0)
        controlThread = std::thread([this] { controlLoop(); });
    reaperThread = std::thread([this] { reaperLoop(); });
    return Status::ok();
}

void
ServeDaemon::requestDrain()
{
    bool expected = false;
    if (draining_.compare_exchange_strong(expected, true))
        drainDeadlineMs.store(nowMillis() + opts.drainGraceMs);
}

bool
ServeDaemon::draining() const
{
    return draining_.load();
}

Status
ServeDaemon::reload()
{
    if (opts.configPath.empty())
        return Status::unsupported(
            "reload: daemon was started without a config file");
    auto cfg = loadServeConfig(opts.configPath);
    if (!cfg.ok())
        return cfg.status().withContext(
            "reload rejected (previous configuration kept)");
    MutexLock lock(mu);
    runtime = cfg.take();
    ++generation_;
    serveMetrics().reloads.inc();
    serveMetrics().configGeneration.set(
        static_cast<std::int64_t>(generation_));
    CCM_LOG_INFO("config reloaded from ", opts.configPath,
                 " (generation ", generation_, ")");
    return Status::ok();
}

void
ServeDaemon::drainAndStop()
{
    if (!started_.load())
        return;
    requestDrain();
    stopAll.store(true);
    if (acceptThread.joinable())
        acceptThread.join();
    joinFinishedReaders(true);
    if (controlThread.joinable())
        controlThread.join();
    if (reaperThread.joinable())
        reaperThread.join();
    if (listenFd >= 0) {
        ::close(listenFd);
        listenFd = -1;
        ::unlink(opts.socketPath.c_str());
    }
    if (controlFd >= 0) {
        ::close(controlFd);
        controlFd = -1;
        ::unlink(opts.controlPath.c_str());
    }
    started_.store(false);
}

std::size_t
ServeDaemon::activeStreams() const
{
    MutexLock lock(mu);
    return active.size();
}

std::uint64_t
ServeDaemon::streamsAdmitted() const
{
    MutexLock lock(mu);
    return admitted_;
}

std::uint64_t
ServeDaemon::generation() const
{
    MutexLock lock(mu);
    return generation_;
}

Expected<std::shared_ptr<StreamPipeline>>
ServeDaemon::admitStream(const std::string &name, int fd)
{
    std::shared_ptr<StreamPipeline> pipe;
    {
        MutexLock lock(mu);
        if (draining_.load()) {
            ++refused_;
            serveMetrics().streamsRefused.inc();
            CCM_LOG_WARN("stream '", name,
                         "' refused: daemon is draining");
            return Status::unavailable("daemon is draining; stream '",
                                       name, "' refused");
        }
        if (active.size() >= opts.maxStreams) {
            ++refused_;
            serveMetrics().streamsRefused.inc();
            CCM_LOG_WARN("stream '", name, "' refused: stream limit ",
                         opts.maxStreams, " reached");
            return Status::unavailable(
                "stream limit ", opts.maxStreams,
                " reached; stream '", name, "' refused");
        }
        const std::uint64_t id = nextId++;
        std::string label =
            name.empty() ? "stream-" + std::to_string(id) : name;
        pipe = std::make_shared<StreamPipeline>(
            id, std::move(label), runtime.system, runtime.limits,
            generation_);
        active.emplace(id, ActiveStream{pipe, fd});
        ++admitted_;
        serveMetrics().streamsAdmitted.inc();
        serveMetrics().streamsActive.add(1);
    }
    CCM_LOG_INFO("stream '", pipe->name(), "' admitted (id ",
                 pipe->id(), ")");
    pipe->start();
    return pipe;
}

void
ServeDaemon::finishStream(std::uint64_t id)
{
    std::shared_ptr<StreamPipeline> pipe;
    {
        MutexLock lock(mu);
        auto it = active.find(id);
        if (it == active.end())
            return;
        pipe = it->second.pipe;
    }

    // Queue input is already closed, so the simulation thread is on
    // its way out; join outside the daemon lock.
    pipe->join();
    obs::JsonValue report = pipe->reportJson();
    const QueueStats qs = pipe->queue().stats();
    const bool ok = pipe->state() == StreamState::Done;

    ServeMetrics &sm = serveMetrics();
    (ok ? sm.streamsDone : sm.streamsFailed).inc();
    sm.streamsActive.add(-1);
    sm.records.inc(qs.pushed);
    sm.recordsShed.inc(qs.shed);
    obs::SpanTracer &tracer = obs::SpanTracer::global();
    if (tracer.enabled())
        tracer.record("stream:" + pipe->name(), "serve",
                      pipe->spanBeginMicros(), tracer.nowMicros());
    if (ok)
        CCM_LOG_INFO("stream '", pipe->name(), "' done (", qs.pushed,
                     " records)");
    else
        CCM_LOG_WARN("stream '", pipe->name(),
                     "' failed: ", pipe->status().toString());

    MutexLock lock(mu);
    active.erase(id);
    if (ok)
        ++done_;
    else
        ++failed_;
    recordsDone += qs.pushed;
    finishedReports.push_back(std::move(report));
    while (finishedReports.size() > opts.finishedReports)
        finishedReports.pop_front();
}

obs::JsonValue
ServeDaemon::statsDocument() const
{
    obs::JsonValue doc = obs::statsDocumentHeader("serve");

    MutexLock lock(mu);

    std::vector<obs::JsonValue> live;
    live.reserve(active.size());
    std::uint64_t live_active = 0, live_done = 0, live_failed = 0;
    Count live_records = 0;
    for (const auto &[id, as] : active) {
        (void)id;
        obs::JsonValue r = as.pipe->reportJson();
        const std::string &st = r.at("state").asString();
        if (st == "done")
            ++live_done;
        else if (st == "failed")
            ++live_failed;
        else
            ++live_active;
        live_records += as.pipe->queue().stats().pushed;
        live.push_back(std::move(r));
    }

    obs::JsonValue daemon = obs::JsonValue::object();
    daemon.set("generation", obs::JsonValue::uint(generation_));
    daemon.set("config_generation", obs::JsonValue::uint(generation_));
    daemon.set("version", obs::JsonValue::str(kCcmVersion));
    daemon.set("uptime_seconds",
               obs::JsonValue::real(
                   std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - startTime_)
                       .count()));
    daemon.set("arch", obs::JsonValue::str(runtime.arch));
    daemon.set("draining",
               obs::JsonValue::boolean(draining_.load()));
    daemon.set("streams_total", obs::JsonValue::uint(admitted_));
    daemon.set("streams_active", obs::JsonValue::uint(live_active));
    daemon.set("streams_done",
               obs::JsonValue::uint(done_ + live_done));
    daemon.set("streams_failed",
               obs::JsonValue::uint(failed_ + live_failed));
    daemon.set("streams_refused", obs::JsonValue::uint(refused_));
    daemon.set("records_total",
               obs::JsonValue::uint(recordsDone + live_records));
    doc.set("daemon", std::move(daemon));

    obs::JsonValue streams = obs::JsonValue::array();
    for (auto &r : live)
        streams.push(std::move(r));
    for (const auto &r : finishedReports)
        streams.push(r);
    doc.set("streams", std::move(streams));
    return doc;
}

void
ServeDaemon::joinFinishedReaders(bool all)
{
    MutexLock lock(readersMu);
    for (auto it = readers.begin(); it != readers.end();) {
        if (all || it->done.load()) {
            if (it->thread.joinable())
                it->thread.join();
            it = readers.erase(it);
        } else {
            ++it;
        }
    }
}

void
ServeDaemon::acceptLoop()
{
    for (;;) {
        if (stopAll.load() || draining_.load())
            break;
        joinFinishedReaders(false);

        pollfd pf{};
        pf.fd = listenFd;
        pf.events = POLLIN;
        const int pr =
            ::poll(&pf, 1, static_cast<int>(opts.pollMs));
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (pr == 0)
            continue;
        const int cfd = ::accept(listenFd, nullptr, nullptr);
        if (cfd < 0)
            continue; // EAGAIN / aborted handshake

        MutexLock lock(readersMu);
        ReaderSlot &slot = readers.emplace_back();
        std::atomic<bool> *done = &slot.done;
        slot.thread = std::thread(
            [this, cfd, done] { serveConnection(cfd, done); });
    }
}

void
ServeDaemon::serveConnection(int fd, std::atomic<bool> *done_flag)
{
    FrameParser parser;
    ConnectionSink sink(*this, fd);
    std::vector<std::uint8_t> buf(64 * 1024);
    bool cut_by_drain = false;

    for (;;) {
        if (draining_.load() &&
            nowMillis() >= drainDeadlineMs.load()) {
            cut_by_drain = true;
            break;
        }
        if (!sink.admitError.isOk() || sink.recordsBeforeHello)
            break;
        if (parser.sawEnd())
            break;
        // The simulation thread can end first (failed run, reap):
        // retire the stream now instead of pumping the rest of the
        // producer's trace into a dead pipeline.
        if (sink.pipe != nullptr && sink.pipe->finished())
            break;

        pollfd pf{};
        pf.fd = fd;
        pf.events = POLLIN;
        const int pr =
            ::poll(&pf, 1, static_cast<int>(opts.pollMs));
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (pr == 0)
            continue;
        const ssize_t n = ::recv(fd, buf.data(), buf.size(), 0);
        if (n == 0)
            break; // producer closed its end
        if (n < 0) {
            if (errno == EINTR || errno == EAGAIN ||
                errno == EWOULDBLOCK)
                continue;
            break; // reset / reaper shutdown
        }
        {
            using namespace std::chrono;
            const auto t0 = steady_clock::now();
            parser.feed(buf.data(), static_cast<std::size_t>(n),
                        sink);
            serveMetrics().frameDecodeUs.observe(
                static_cast<std::uint64_t>(
                    duration_cast<microseconds>(steady_clock::now() -
                                                t0)
                        .count()));
        }

        if (sink.pipe != nullptr) {
            sink.pipe->noteActivity();
            sink.pipe->setFrameStats(parser.stats());
            const Count budget =
                sink.pipe->streamLimits().defectBudget;
            if (parser.stats().defects() > budget) {
                sink.pipe->failWith(Status::corruptTrace(
                    "stream '", sink.pipe->name(), "': ",
                    parser.stats().defects(),
                    " frame defects exceed budget ", budget,
                    " (first: ",
                    frameDefectName(parser.stats().firstDefect),
                    ")"));
                break;
            }
        }
    }

    parser.finish(sink);
    if (sink.pipe != nullptr) {
        sink.pipe->setFrameStats(parser.stats());
        if (!parser.sawEnd()) {
            if (cut_by_drain)
                sink.pipe->failWith(Status::aborted(
                    "stream '", sink.pipe->name(),
                    "' cut by drain before its end frame"));
            else
                sink.pipe->failWith(Status::aborted(
                    "stream '", sink.pipe->name(),
                    "' disconnected before its end frame"));
        }
        sink.pipe->queue().closeInput();
        finishStream(sink.pipe->id());
    }
    ::close(fd);
    if (done_flag != nullptr)
        done_flag->store(true);
}

void
ServeDaemon::reaperLoop()
{
    while (!stopAll.load()) {
        ::poll(nullptr, 0, static_cast<int>(opts.pollMs));
        MutexLock lock(mu);
        std::size_t queued = 0;
        for (const auto &[id, as] : active) {
            (void)id;
            queued += as.pipe->queue().depth();
        }
        serveMetrics().queueDepth.set(
            static_cast<std::int64_t>(queued));
        for (auto &[id, as] : active) {
            (void)id;
            StreamPipeline &pipe = *as.pipe;
            if (pipe.finished()) {
                // The simulation ended but the reader still owns the
                // connection (e.g. a run that failed mid-stream):
                // make sure no producer is parked in push() and cut
                // the socket so the reader retires the stream.
                pipe.queue().abort();
                ::shutdown(as.fd, SHUT_RDWR);
                continue;
            }
            if (opts.idleTtlMs <= 0 ||
                pipe.idleMillis() <= opts.idleTtlMs)
                continue;
            pipe.failWith(Status::aborted(
                "stream '", pipe.name(), "' idle for ",
                pipe.idleMillis(), " ms (ttl ", opts.idleTtlMs,
                " ms), reaped"));
            pipe.queue().abort();
            // Kick the reader off its socket; it retires the stream.
            ::shutdown(as.fd, SHUT_RDWR);
        }
    }
}

void
ServeDaemon::controlLoop()
{
    for (;;) {
        if (stopAll.load())
            break;
        pollfd pf{};
        pf.fd = controlFd;
        pf.events = POLLIN;
        const int pr =
            ::poll(&pf, 1, static_cast<int>(opts.pollMs));
        if (pr <= 0)
            continue;
        const int cfd = ::accept(controlFd, nullptr, nullptr);
        if (cfd < 0)
            continue;
        handleControlClient(cfd);
    }
}

std::string
ServeDaemon::runControlCommand(const std::string &command)
{
    serveMetrics().controlRequests.inc();
    obs::ScopedSpan span("control:" + command, "control");
    if (command == "stats")
        return statsDocument().toString();
    if (command == "metrics")
        return obs::MetricsRegistry::global().prometheusText();
    if (command == "metrics json") {
        std::ostringstream os;
        obs::writeDocument(os, obs::metricsDocument(),
                           obs::StatsFormat::Json);
        return os.str();
    }
    if (command == "ping")
        return "pong\n";
    if (command == "drain") {
        CCM_LOG_INFO("drain requested via control socket");
        requestDrain();
        return "ok\n";
    }
    if (command == "reload") {
        Status s = reload();
        if (!s.isOk())
            CCM_LOG_WARN("reload failed: ", s.toString());
        return s.isOk() ? "ok\n" : "error: " + s.toString() + "\n";
    }
    return "error: unknown command '" + command + "'\n";
}

void
ServeDaemon::handleControlClient(int fd)
{
    // One short request line, then one response, then close.
    std::string command;
    const std::int64_t deadline = nowMillis() + 10 * opts.pollMs;
    while (nowMillis() < deadline && command.find('\n') ==
                                         std::string::npos &&
           command.size() < 256) {
        pollfd pf{};
        pf.fd = fd;
        pf.events = POLLIN;
        const int pr =
            ::poll(&pf, 1, static_cast<int>(opts.pollMs));
        if (pr < 0 && errno != EINTR)
            break;
        if (pr <= 0)
            continue;
        char chunk[256];
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n == 0)
            break;
        if (n < 0) {
            if (errno == EINTR || errno == EAGAIN ||
                errno == EWOULDBLOCK)
                continue;
            break;
        }
        command.append(chunk, static_cast<std::size_t>(n));
    }
    const std::size_t eol = command.find_first_of("\r\n");
    if (eol != std::string::npos)
        command.erase(eol);

    const std::string reply = runControlCommand(command);
    sendAll(fd, reply.data(), reply.size(), 1000);
    ::close(fd);
}

} // namespace ccm::serve
