/**
 * @file
 * Bounded per-stream record queue: the backpressure point between a
 * connection reader thread (producer) and a stream's simulation
 * thread (consumer).
 *
 * Capacity is fixed at construction — this is the daemon's per-stream
 * memory bound.  When the queue is full the overflow policy decides:
 *
 *  - Block: push() waits for space.  The reader stops reading the
 *    socket, the kernel buffer fills, and the producer blocks — full
 *    end-to-end backpressure, no records lost.
 *  - Shed: push() accepts what fits and drops the rest, counting
 *    every shed record.  The stream keeps flowing at the cost of a
 *    gap (surfaced in the stream's stats; a stream with shed records
 *    can no longer be byte-identical to its batch run).
 *
 * Lifecycle: closeInput() marks the clean end of input (consumers
 * drain the remainder, then pop() returns 0); abort() additionally
 * discards everything queued and unblocks both sides immediately
 * (drain kill and idle-TTL reaping).
 *
 * Locking contract (machine-checked, src/common/sync.hh): one
 * LockRank::ServeQueue mutex guards the ring and the counters; both
 * condvars wait on it.  Callers never hold the queue lock — every
 * entry point acquires and releases it internally (CCM_EXCLUDES).
 */

#ifndef CCM_SERVE_QUEUE_HH
#define CCM_SERVE_QUEUE_HH

#include <string_view>
#include <vector>

#include "common/status.hh"
#include "common/sync.hh"
#include "common/types.hh"
#include "trace/record.hh"

namespace ccm::serve
{

/** What to do with records arriving at a full queue. */
enum class OverflowPolicy
{
    Block, ///< stall the producer (lossless backpressure)
    Shed,  ///< drop the overflow (lossy, counted)
};

/** @return "block" / "shed". */
const char *toString(OverflowPolicy p);

/** Parse a --policy argument ("block" | "shed"). */
Expected<OverflowPolicy> parseOverflowPolicy(std::string_view name);

/** Counters snapshot; consistent (taken under the queue lock). */
struct QueueStats
{
    Count pushed = 0;   ///< records accepted into the queue
    Count popped = 0;   ///< records handed to the consumer
    Count shed = 0;     ///< records dropped by the Shed policy
    Count maxDepth = 0; ///< high-water mark of queued records
};

/** Fixed-capacity MPSC record ring (one lock, two condvars). */
class RecordQueue
{
  public:
    RecordQueue(std::size_t capacity, OverflowPolicy policy);

    std::size_t capacity() const { return cap; }
    OverflowPolicy policy() const { return policy_; }

    /**
     * Enqueue @p n records in order.  Blocks for space under the
     * Block policy; sheds the overflow otherwise.  @return records
     * accepted (always n for Block unless input was closed/aborted
     * mid-wait, in which case the rest is discarded).
     */
    std::size_t push(const MemRecord *recs, std::size_t n)
        CCM_EXCLUDES(mu);

    /**
     * Dequeue up to @p max records, blocking until at least one is
     * available or input has ended.  @return records produced; 0
     * means end-of-stream (input closed and drained, or aborted).
     */
    std::size_t pop(MemRecord *out, std::size_t max) CCM_EXCLUDES(mu);

    /** No more input; consumers drain the remainder. */
    void closeInput() CCM_EXCLUDES(mu);

    /** Discard queued records and unblock both sides immediately. */
    void abort() CCM_EXCLUDES(mu);

    bool
    aborted() const CCM_EXCLUDES(mu)
    {
        MutexLock lock(mu);
        return aborted_;
    }

    QueueStats
    stats() const CCM_EXCLUDES(mu)
    {
        MutexLock lock(mu);
        return stats_;
    }

    /** Records queued right now (the reaper's depth-gauge sample). */
    std::size_t
    depth() const CCM_EXCLUDES(mu)
    {
        MutexLock lock(mu);
        return count;
    }

  private:
    /** Copy a contiguous run of @p n records in at the tail. */
    void enqueueRun(const MemRecord *recs, std::size_t n)
        CCM_REQUIRES(mu);

    const std::size_t cap;
    const OverflowPolicy policy_;

    mutable Mutex mu{LockRank::ServeQueue, "serve-queue"};
    CondVar canPush;
    CondVar canPop;

    std::vector<MemRecord> ring CCM_GUARDED_BY(mu);
    /** Index of the oldest queued record. */
    std::size_t head CCM_GUARDED_BY(mu) = 0;
    /** Queued records. */
    std::size_t count CCM_GUARDED_BY(mu) = 0;

    bool inputClosed CCM_GUARDED_BY(mu) = false;
    bool aborted_ CCM_GUARDED_BY(mu) = false;
    QueueStats stats_ CCM_GUARDED_BY(mu);
};

} // namespace ccm::serve

#endif // CCM_SERVE_QUEUE_HH
