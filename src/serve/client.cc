#include "serve/client.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace ccm::serve
{

namespace
{

/** One blocking connect attempt. */
Expected<int>
connectOnce(const std::string &path)
{
    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path))
        return Status::badConfig("socket path too long: ", path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return Status::ioError("socket(): ", errnoString(errno));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        Status s = Status::unavailable("connect ", path, ": ",
                                       errnoString(errno));
        ::close(fd);
        return s;
    }
    return fd;
}

/**
 * Connect with retry + exponential backoff: attempt, sleep
 * backoffInitialMs, double, cap at backoffMaxMs, up to
 * connectRetries attempts in total.
 */
Expected<int>
connectWithRetry(const std::string &path, const ClientOptions &opts)
{
    const int attempts = std::max(1, opts.connectRetries);
    int backoff = std::max(1, opts.backoffInitialMs);
    Status last = Status::unavailable("no connect attempt made");
    for (int i = 0; i < attempts; ++i) {
        if (i > 0) {
            ::poll(nullptr, 0, backoff);
            backoff = std::min(backoff * 2,
                               std::max(1, opts.backoffMaxMs));
        }
        auto fd = connectOnce(path);
        if (fd.ok())
            return fd;
        last = fd.status();
    }
    return last.withContext("after " + std::to_string(attempts) +
                            " attempts");
}

} // namespace

Expected<ServeClient>
ServeClient::connect(const std::string &socket_path,
                     const std::string &stream_name,
                     const ClientOptions &opts)
{
    auto fd = connectWithRetry(socket_path, opts);
    if (!fd.ok())
        return fd.status().withContext("stream '" + stream_name +
                                       "'");
    ServeClient client(fd.value(), opts);
    std::vector<std::uint8_t> hello;
    appendHelloFrame(hello, stream_name);
    Status s = client.sendAllBytes(hello.data(), hello.size());
    if (!s.isOk())
        return s.withContext("hello for stream '" + stream_name +
                             "'");
    return client;
}

ServeClient::~ServeClient()
{
    if (fd >= 0)
        ::close(fd);
}

ServeClient::ServeClient(ServeClient &&other) noexcept
    : fd(other.fd), opts(other.opts)
{
    other.fd = -1;
}

ServeClient &
ServeClient::operator=(ServeClient &&other) noexcept
{
    if (this != &other) {
        if (fd >= 0)
            ::close(fd);
        fd = other.fd;
        opts = other.opts;
        other.fd = -1;
    }
    return *this;
}

Status
ServeClient::sendAllBytes(const std::uint8_t *data, std::size_t n)
{
    if (fd < 0)
        return Status::internal("client is not connected");
    std::size_t off = 0;
    while (off < n) {
        pollfd pf{};
        pf.fd = fd;
        pf.events = POLLOUT;
        const int pr = ::poll(&pf, 1, opts.ioTimeoutMs);
        if (pr < 0 && errno == EINTR)
            continue;
        if (pr == 0)
            return Status::unavailable(
                "send timed out after ", opts.ioTimeoutMs,
                " ms (daemon backpressure or stall)");
        if (pr < 0)
            return Status::ioError("poll(): ", errnoString(errno));
        const ssize_t w =
            ::send(fd, data + off, n - off, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR || errno == EAGAIN ||
                errno == EWOULDBLOCK)
                continue;
            return Status::ioError("send(): ", errnoString(errno));
        }
        off += static_cast<std::size_t>(w);
    }
    return Status::ok();
}

Status
ServeClient::sendRecords(const MemRecord *recs, std::size_t n)
{
    std::vector<std::uint8_t> bytes;
    appendRecordsFrames(bytes, recs, n);
    return sendAllBytes(bytes.data(), bytes.size());
}

Status
ServeClient::sendEnd()
{
    std::vector<std::uint8_t> bytes;
    appendEndFrame(bytes);
    return sendAllBytes(bytes.data(), bytes.size());
}

Status
ServeClient::sendRawBytes(const std::uint8_t *data, std::size_t n)
{
    return sendAllBytes(data, n);
}

void
ServeClient::closeAbrupt()
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

Status
ServeClient::streamAll(TraceSource &src)
{
    MemRecord batch[kMaxRecordsPerFrame];
    for (;;) {
        const std::size_t n =
            src.nextBatch(batch, kMaxRecordsPerFrame);
        if (n == 0)
            break;
        Status s = sendRecords(batch, n);
        if (!s.isOk())
            return s;
    }
    return sendEnd();
}

Expected<std::string>
controlRequest(const std::string &control_path,
               const std::string &command, const ClientOptions &opts)
{
    auto connected = connectWithRetry(control_path, opts);
    if (!connected.ok())
        return connected.status().withContext("control socket");
    const int fd = connected.value();

    auto fail = [fd](Status s) -> Expected<std::string> {
        ::close(fd);
        return s;
    };

    const std::string line = command + "\n";
    std::size_t off = 0;
    while (off < line.size()) {
        pollfd pf{};
        pf.fd = fd;
        pf.events = POLLOUT;
        const int pr = ::poll(&pf, 1, opts.ioTimeoutMs);
        if (pr < 0 && errno == EINTR)
            continue;
        if (pr == 0)
            return fail(Status::unavailable(
                "control send timed out after ", opts.ioTimeoutMs,
                " ms"));
        if (pr < 0)
            return fail(
                Status::ioError("poll(): ", errnoString(errno)));
        const ssize_t w = ::send(fd, line.data() + off,
                                 line.size() - off, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR || errno == EAGAIN ||
                errno == EWOULDBLOCK)
                continue;
            return fail(
                Status::ioError("send(): ", errnoString(errno)));
        }
        off += static_cast<std::size_t>(w);
    }
    ::shutdown(fd, SHUT_WR);

    std::string reply;
    char chunk[4096];
    for (;;) {
        pollfd pf{};
        pf.fd = fd;
        pf.events = POLLIN;
        const int pr = ::poll(&pf, 1, opts.ioTimeoutMs);
        if (pr < 0 && errno == EINTR)
            continue;
        if (pr == 0)
            return fail(Status::unavailable(
                "control reply timed out after ", opts.ioTimeoutMs,
                " ms"));
        if (pr < 0)
            return fail(
                Status::ioError("poll(): ", errnoString(errno)));
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n == 0)
            break;
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return fail(
                Status::ioError("recv(): ", errnoString(errno)));
        }
        reply.append(chunk, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return reply;
}

} // namespace ccm::serve
