#include "serve/queue.hh"

#include <algorithm>

namespace ccm::serve
{

const char *
toString(OverflowPolicy p)
{
    return p == OverflowPolicy::Block ? "block" : "shed";
}

Expected<OverflowPolicy>
parseOverflowPolicy(std::string_view name)
{
    if (name == "block")
        return OverflowPolicy::Block;
    if (name == "shed")
        return OverflowPolicy::Shed;
    return Status::badConfig("unknown overflow policy '", name,
                             "' (expected block or shed)");
}

RecordQueue::RecordQueue(std::size_t capacity, OverflowPolicy policy)
    : cap(capacity == 0 ? 1 : capacity), policy_(policy), ring(cap)
{
}

void
RecordQueue::enqueueRun(const MemRecord *recs, std::size_t n)
{
    const std::size_t tail = (head + count) % cap;
    std::copy(recs, recs + n,
              ring.begin() + static_cast<std::ptrdiff_t>(tail));
    count += n;
    stats_.pushed += n;
    stats_.maxDepth = std::max<Count>(stats_.maxDepth, count);
}

std::size_t
RecordQueue::push(const MemRecord *recs, std::size_t n)
{
    MutexLock lock(mu);
    std::size_t accepted = 0;
    while (accepted < n) {
        if (inputClosed || aborted_)
            break;
        if (count == cap) {
            if (policy_ == OverflowPolicy::Shed) {
                stats_.shed += n - accepted;
                break;
            }
            canPush.wait(mu, [this]() CCM_REQUIRES(mu) {
                return count < cap || inputClosed || aborted_;
            });
            continue;
        }
        const std::size_t tail = (head + count) % cap;
        const std::size_t run = std::min(
            {n - accepted, cap - count, cap - tail});
        enqueueRun(recs + accepted, run);
        accepted += run;
        canPop.notifyOne();
    }
    return accepted;
}

std::size_t
RecordQueue::pop(MemRecord *out, std::size_t max)
{
    MutexLock lock(mu);
    canPop.wait(mu, [this]() CCM_REQUIRES(mu) {
        return count > 0 || inputClosed || aborted_;
    });
    if (aborted_ || (count == 0 && inputClosed))
        return 0;
    const std::size_t take = std::min(max, count);
    for (std::size_t i = 0; i < take; ++i)
        out[i] = ring[(head + i) % cap];
    head = (head + take) % cap;
    count -= take;
    stats_.popped += take;
    canPush.notifyOne();
    return take;
}

void
RecordQueue::closeInput()
{
    MutexLock lock(mu);
    inputClosed = true;
    canPush.notifyAll();
    canPop.notifyAll();
}

void
RecordQueue::abort()
{
    MutexLock lock(mu);
    aborted_ = true;
    inputClosed = true;
    count = 0;
    head = 0;
    canPush.notifyAll();
    canPop.notifyAll();
}

} // namespace ccm::serve
