#include "serve/queue.hh"

#include <algorithm>

namespace ccm::serve
{

const char *
toString(OverflowPolicy p)
{
    return p == OverflowPolicy::Block ? "block" : "shed";
}

Expected<OverflowPolicy>
parseOverflowPolicy(std::string_view name)
{
    if (name == "block")
        return OverflowPolicy::Block;
    if (name == "shed")
        return OverflowPolicy::Shed;
    return Status::badConfig("unknown overflow policy '", name,
                             "' (expected block or shed)");
}

RecordQueue::RecordQueue(std::size_t capacity, OverflowPolicy policy)
    : cap(capacity == 0 ? 1 : capacity), policy_(policy), ring(cap)
{
}

std::size_t
RecordQueue::push(const MemRecord *recs, std::size_t n)
{
    std::unique_lock<std::mutex> lock(mu);
    std::size_t accepted = 0;
    while (accepted < n) {
        if (inputClosed || aborted_)
            break;
        if (count == cap) {
            if (policy_ == OverflowPolicy::Shed) {
                stats_.shed += n - accepted;
                break;
            }
            canPush.wait(lock, [&] {
                return count < cap || inputClosed || aborted_;
            });
            continue;
        }
        const std::size_t tail = (head + count) % cap;
        const std::size_t run = std::min(
            {n - accepted, cap - count, cap - tail});
        std::copy(recs + accepted, recs + accepted + run,
                  ring.begin() + static_cast<std::ptrdiff_t>(tail));
        count += run;
        accepted += run;
        stats_.pushed += run;
        stats_.maxDepth = std::max<Count>(stats_.maxDepth, count);
        canPop.notify_one();
    }
    return accepted;
}

std::size_t
RecordQueue::pop(MemRecord *out, std::size_t max)
{
    std::unique_lock<std::mutex> lock(mu);
    canPop.wait(lock, [&] {
        return count > 0 || inputClosed || aborted_;
    });
    if (aborted_ || (count == 0 && inputClosed))
        return 0;
    const std::size_t take = std::min(max, count);
    for (std::size_t i = 0; i < take; ++i)
        out[i] = ring[(head + i) % cap];
    head = (head + take) % cap;
    count -= take;
    stats_.popped += take;
    canPush.notify_one();
    return take;
}

void
RecordQueue::closeInput()
{
    std::lock_guard<std::mutex> lock(mu);
    inputClosed = true;
    canPush.notify_all();
    canPop.notify_all();
}

void
RecordQueue::abort()
{
    std::lock_guard<std::mutex> lock(mu);
    aborted_ = true;
    inputClosed = true;
    count = 0;
    head = 0;
    canPush.notify_all();
    canPop.notify_all();
}

} // namespace ccm::serve
