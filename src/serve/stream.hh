/**
 * @file
 * One live trace stream inside the ccm-serve daemon: a bounded
 * record queue fed by a connection reader, a simulation thread
 * running the exact batch pipeline (Core::run over a MemorySystem via
 * tryRunTiming), and a mutex-guarded stats snapshot the control
 * socket can read while the stream is in flight.
 *
 * Fault isolation is the design rule: everything that can go wrong
 * with one stream — corrupt frames, a producer vanishing mid-stream,
 * a bad geometry, an idle-TTL reap — lands in this object as a
 * Status and a Failed state.  Nothing here may take the daemon down.
 *
 * Determinism guarantee: a stream whose producer delivers trace T and
 * a clean end frame, with no records shed, finishes with sim/mem/heat
 * stats byte-identical to `runTiming(T, config)` — the simulation
 * thread runs that exact code over the queue.  Tests and the CI smoke
 * step hold the daemon to this.
 *
 * Locking contract (machine-checked, src/common/sync.hh): the
 * LockRank::ServeStream mutex guards the state machine (state,
 * failure Status, frame counters, final RunOutput); live mid-run
 * counters go through an obs::LiveStatsCell (LockRank::ObsLive); the
 * queue has its own LockRank::ServeQueue lock.  A caller of the
 * public interface never holds any of them (CCM_EXCLUDES), so the
 * daemon lock (rank 10) may be held across any call here.
 */

#ifndef CCM_SERVE_STREAM_HH
#define CCM_SERVE_STREAM_HH

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "common/sync.hh"
#include "obs/interval.hh"
#include "obs/json.hh"
#include "obs/live.hh"
#include "obs/metrics.hh"
#include "serve/frame.hh"
#include "serve/queue.hh"
#include "sim/experiment.hh"

namespace ccm::serve
{

/** Per-stream resource and observability knobs. */
struct StreamLimits
{
    /** Queue capacity in records (the per-stream memory bound). */
    std::size_t queueRecords = 8192;

    OverflowPolicy policy = OverflowPolicy::Block;

    /** Rolling-window sample length in refs; 0 disables the window. */
    Count windowEvery = 0;

    /** Samples retained in the rolling window. */
    std::size_t windowSamples = 32;

    /** Refs between live stats-snapshot refreshes. */
    Count snapshotEvery = 32768;

    /** Frame defects tolerated before the stream is declared failed. */
    Count defectBudget = 0;
};

/** Where a stream is in its life. */
enum class StreamState
{
    Admitted, ///< registered, simulation not yet started
    Running,  ///< simulation thread consuming the queue
    Done,     ///< clean end-of-stream, final stats available
    Failed,   ///< carries the Status explaining why
};

/** Stable lower-case name of @p s ("running", "done", ...). */
const char *toString(StreamState s);

/**
 * TraceSource adapter over the stream queue (blocking pulls).
 *
 * Also the serve layer's classify-latency probe: the wall time from
 * one nextBatch() return to the next call is the time the simulation
 * thread spent classifying that batch (queue wait inside pop() is
 * excluded), observed into ccm_serve_batch_classify_us.  The probe is
 * sampled — one in kClassifySampleEvery batches is gap-timed, so the
 * steady-state cost is one relaxed add per batch plus two clock reads
 * per sample window; the per-record classify path itself is untouched
 * (bench/telemetry_overhead holds the total to < 2%).
 */
class QueueSource : public TraceSource
{
  public:
    /** 1-in-N batch sampling rate of the classify-latency probe. */
    static constexpr unsigned kClassifySampleEvery = 8;

    QueueSource(RecordQueue &queue, std::string label);

    bool
    next(MemRecord &out) override
    {
        return q.pop(&out, 1) == 1;
    }

    std::size_t nextBatch(MemRecord *out, std::size_t n) override;

    /** Streams are not replayable; reset is the start-of-run no-op. */
    void reset() override {}

    std::string name() const override { return label_; }

  private:
    RecordQueue &q;
    std::string label_;

    obs::Histogram &classifyUs_;
    obs::Counter &classified_;
    /** Batch counter driving the 1-in-N sampling. */
    unsigned tick_ = 0;
    /** Handoff time of the sampled batch (0 = none armed). */
    std::int64_t lastHandoffUs_ = 0;
};

/** One stream: queue + simulation thread + live stats snapshot. */
class StreamPipeline
{
  public:
    StreamPipeline(std::uint64_t id, std::string name,
                   const SystemConfig &system,
                   const StreamLimits &limits,
                   std::uint64_t generation);

    /** Joins the simulation thread (after aborting input). */
    ~StreamPipeline();

    StreamPipeline(const StreamPipeline &) = delete;
    StreamPipeline &operator=(const StreamPipeline &) = delete;

    std::uint64_t id() const { return id_; }
    const std::string &name() const { return name_; }
    RecordQueue &queue() { return q; }
    const StreamLimits &streamLimits() const { return limits; }

    /** Spawn the simulation thread (Admitted -> Running). */
    void start() CCM_EXCLUDES(mu);

    /** Wait for the simulation thread to finish. */
    void join();

    /** True once the simulation thread has produced the final state. */
    bool finished() const CCM_EXCLUDES(mu);

    StreamState state() const CCM_EXCLUDES(mu);

    /** Failure reason; Ok unless state() == Failed. */
    Status status() const CCM_EXCLUDES(mu);

    /**
     * Record the first failure (disconnect, defect budget, reap).
     * Ignored once the stream already reached a final state; call
     * before closing/aborting the queue so the simulation thread's
     * final state sees it.
     */
    void failWith(const Status &why) CCM_EXCLUDES(mu);

    /** Reader-side: publish the connection's frame counters. */
    void setFrameStats(const FrameStats &fs) CCM_EXCLUDES(mu);

    /** Touch the activity clock (reader bytes / simulation pops). */
    void noteActivity();

    /** Milliseconds since the last activity touch. */
    std::int64_t idleMillis() const;

    /**
     * The stream's entry in the kind:"serve" stats document —
     * live counters while Running, full sim/mem/heatmap sections once
     * Done, the error string once Failed (docs/SERVING.md).
     */
    obs::JsonValue reportJson() const CCM_EXCLUDES(mu);

    /** Final output; valid only once state() == Done (tests). */
    const RunOutput &output() const CCM_EXCLUDES(mu);

    /**
     * SpanTracer::nowMicros() at admission — the daemon records one
     * span per stream, from here to retirement.
     */
    std::uint64_t spanBeginMicros() const { return spanBeginUs_; }

  private:
    void runBody() CCM_EXCLUDES(mu);

    /** Sim-thread side: push a mid-run snapshot into the live cell. */
    void refreshSnapshot(const MemStats &st);

    const std::uint64_t id_;
    const std::string name_;
    const SystemConfig system;
    const StreamLimits limits;
    const std::uint64_t generation;
    const std::uint64_t spanBeginUs_;

    RecordQueue q;
    std::thread simThread;

    /** Sim-thread-private observability (never touched elsewhere). */
    std::unique_ptr<obs::IntervalSampler> sampler;
    Count refsSinceSnap = 0;

    std::atomic<std::int64_t> lastActivityMs{0};

    /** Mid-run counters, published at the snapshot cadence. */
    obs::LiveStatsCell live;

    mutable Mutex mu{LockRank::ServeStream, "serve-stream"};
    StreamState state_ CCM_GUARDED_BY(mu) = StreamState::Admitted;
    Status failStatus CCM_GUARDED_BY(mu);
    FrameStats frames CCM_GUARDED_BY(mu);
    bool finished_ CCM_GUARDED_BY(mu) = false;
    /** Valid once Done. */
    RunOutput out CCM_GUARDED_BY(mu);
};

} // namespace ccm::serve

#endif // CCM_SERVE_STREAM_HH
