/**
 * @file
 * Producer-side client for the ccm-serve daemon: connects to the
 * ingest socket with retry + exponential backoff, frames records with
 * the CCMF protocol, and sends with a bounded I/O timeout so a stuck
 * daemon can never hang a producer forever.
 *
 * The client deliberately exposes the failure modes the daemon's
 * robustness tests need to provoke: sendRawBytes() injects arbitrary
 * (possibly corrupt) bytes into the stream, and closeAbrupt() drops
 * the connection without the end frame — a producer crash, as the
 * daemon sees it.
 *
 * controlRequest() is the one-shot control-plane counterpart: send a
 * command line ("stats", "drain", "reload", "ping"), read the reply.
 */

#ifndef CCM_SERVE_CLIENT_HH
#define CCM_SERVE_CLIENT_HH

#include <cstdint>
#include <string>

#include "common/status.hh"
#include "serve/frame.hh"
#include "trace/source.hh"

namespace ccm::serve
{

/** Connection + I/O policy for producers and control clients. */
struct ClientOptions
{
    /** Connect attempts before giving up (>= 1). */
    int connectRetries = 5;

    /** Backoff before the second attempt; doubles each retry. */
    int backoffInitialMs = 10;

    /** Backoff ceiling. */
    int backoffMaxMs = 1000;

    /** Per-send/receive progress timeout. */
    int ioTimeoutMs = 5000;
};

/** One producer connection streaming records to the daemon. */
class ServeClient
{
  public:
    /**
     * Connect to the daemon at @p socket_path (retrying with
     * exponential backoff) and introduce stream @p stream_name with a
     * hello frame.
     */
    static Expected<ServeClient> connect(const std::string &socket_path,
                                         const std::string &stream_name,
                                         const ClientOptions &opts = {});

    ~ServeClient();

    ServeClient(ServeClient &&other) noexcept;
    ServeClient &operator=(ServeClient &&other) noexcept;
    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /** Frame and send @p n records. */
    Status sendRecords(const MemRecord *recs, std::size_t n);

    /** Send the end-of-stream frame (the daemon marks the stream Done). */
    Status sendEnd();

    /**
     * Send raw bytes as-is — no framing, no checksum.  Fault-injection
     * territory: this is how tests corrupt a stream on the wire.
     */
    Status sendRawBytes(const std::uint8_t *data, std::size_t n);

    /**
     * Drop the connection without an end frame (simulated producer
     * crash; the daemon marks the stream Failed).
     */
    void closeAbrupt();

    /**
     * Drain @p src into the daemon in batches and finish with the end
     * frame.  Streams through a defect-injecting source just as well
     * as a clean one — the records themselves are packed faithfully.
     */
    Status streamAll(TraceSource &src);

    bool connected() const { return fd >= 0; }

  private:
    ServeClient(int fd_in, ClientOptions opts_in)
        : fd(fd_in), opts(opts_in)
    {
    }

    Status sendAllBytes(const std::uint8_t *data, std::size_t n);

    int fd = -1;
    ClientOptions opts;
};

/**
 * One-shot control request: connect to @p control_path (with the same
 * retry policy), send @p command, return the full reply.
 */
Expected<std::string> controlRequest(const std::string &control_path,
                                     const std::string &command,
                                     const ClientOptions &opts = {});

} // namespace ccm::serve

#endif // CCM_SERVE_CLIENT_HH
