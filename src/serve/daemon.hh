/**
 * @file
 * The ccm-serve daemon: accepts trace streams from many concurrent
 * producers on a unix-domain socket (the CCMF frame protocol of
 * serve/frame.hh), runs one simulation pipeline per stream with
 * bounded memory, and answers live stats queries on a control socket
 * with schema-versioned kind:"serve" ccm-stats JSON.
 *
 * Thread model (one daemon, docs/SERVING.md):
 *
 *  - one acceptor thread: accepts ingest connections and spawns one
 *    reader thread per connection;
 *  - one reader thread per connection: parses frames, feeds the
 *    stream's bounded queue, owns the stream lifecycle end to end
 *    (admit at hello, finish/fail at EOF, retire the report);
 *  - one simulation thread per stream (inside StreamPipeline);
 *  - one control thread: one-shot "stats" / "drain" / "reload" /
 *    "ping" request-response connections;
 *  - one reaper thread: fails and disconnects streams idle past the
 *    TTL.
 *
 * Fault isolation: any per-stream failure (corrupt frames past the
 * defect budget, producer disconnect without the end frame, idle-TTL
 * reap, a bad geometry) marks that stream Failed with a Status and
 * leaves every other stream — and the daemon — running.
 *
 * Lifecycle: requestDrain() (SIGTERM, or the control "drain" command)
 * stops admission, gives connected producers a grace period to send
 * their end frames, then cuts the stragglers; drainAndStop() joins
 * everything.  reload() (SIGHUP) re-reads the config file and swaps
 * the runtime configuration under the admission lock — streams in
 * flight finish on the configuration they were admitted with, marked
 * by their generation number.
 *
 * Locking contract (machine-checked, src/common/sync.hh): the daemon
 * lock (LockRank::ServeDaemon, the lowest-ranked lock in the serve
 * layer) guards admission state, the active-stream map, the retained
 * reports, and the aggregate counters; it may be held across calls
 * into a stream's public interface (reportJson, failWith, queue
 * abort), which take the higher-ranked stream/queue locks.  The
 * reader-thread registry has its own never-nested lock
 * (LockRank::ServeDaemonReaders).  Lifecycle flags are atomics so
 * signal-driven paths never block.
 */

#ifndef CCM_SERVE_DAEMON_HH
#define CCM_SERVE_DAEMON_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "common/sync.hh"
#include "obs/json.hh"
#include "serve/config.hh"
#include "serve/stream.hh"

namespace ccm::serve
{

/** Everything the daemon needs to run. */
struct ServeOptions
{
    /** Ingest socket path (unix-domain, created at start). */
    std::string socketPath;

    /** Control socket path; empty disables the control plane. */
    std::string controlPath;

    /** Config file reload() re-reads; empty disables reload. */
    std::string configPath;

    /** Initial machine configuration + per-stream limits. */
    ServeRuntimeConfig runtime;

    /** Admission cap on concurrently active streams. */
    std::size_t maxStreams = 64;

    /** Reap streams idle longer than this; 0 = never. */
    std::int64_t idleTtlMs = 0;

    /** Internal poll tick for all daemon threads. */
    std::int64_t pollMs = 100;

    /** Drain: how long producers get to deliver their end frames. */
    std::int64_t drainGraceMs = 2000;

    /** Finished-stream reports retained for the stats document. */
    std::size_t finishedReports = 64;
};

/** A multi-stream trace-serving daemon (see file comment). */
class ServeDaemon
{
  public:
    explicit ServeDaemon(ServeOptions opts);

    /** Drains and stops if still running. */
    ~ServeDaemon();

    ServeDaemon(const ServeDaemon &) = delete;
    ServeDaemon &operator=(const ServeDaemon &) = delete;

    /** Bind the sockets and spawn the service threads. */
    Status start();

    /**
     * Begin graceful drain: no new streams, connected producers get
     * drainGraceMs to finish, stragglers are cut and marked Failed.
     * Idempotent and async-signal-unsafe (call from the main loop on
     * a ShutdownLatch wakeup, not from a handler).
     */
    void requestDrain();

    /** True once a drain was requested (signal or control socket). */
    bool draining() const;

    /**
     * Re-read the config file and swap the runtime configuration for
     * subsequently admitted streams (generation() increments).
     * Streams in flight are not disturbed.  On error the old
     * configuration stays in force.
     */
    Status reload() CCM_EXCLUDES(mu);

    /** requestDrain(), wait for every stream to retire, join all. */
    void drainAndStop();

    /**
     * The live kind:"serve" ccm-stats document: daemon aggregates +
     * one entry per active stream + retained finished-stream reports
     * (passes obs::validateStatsDoc at any moment).
     */
    obs::JsonValue statsDocument() const CCM_EXCLUDES(mu);

    /** Streams currently admitted and not yet retired. */
    std::size_t activeStreams() const CCM_EXCLUDES(mu);

    /** Total streams ever admitted (tests). */
    std::uint64_t streamsAdmitted() const CCM_EXCLUDES(mu);

    /** Configuration generation (bumped by reload). */
    std::uint64_t generation() const CCM_EXCLUDES(mu);

    const ServeOptions &options() const { return opts; }

  private:
    struct ActiveStream
    {
        std::shared_ptr<StreamPipeline> pipe;
        int fd = -1; ///< connection fd (for reap-time shutdown)
    };

    struct ReaderSlot
    {
        std::thread thread;
        std::atomic<bool> done{false};
    };

    friend struct ConnectionSink;

    void acceptLoop();
    void controlLoop();
    void reaperLoop();
    void serveConnection(int fd, std::atomic<bool> *done_flag);
    void handleControlClient(int fd);
    std::string runControlCommand(const std::string &command);

    /** Register a new stream at hello time (or refuse admission). */
    Expected<std::shared_ptr<StreamPipeline>>
    admitStream(const std::string &name, int fd) CCM_EXCLUDES(mu);

    /** Retire a stream: join its simulation, keep its final report. */
    void finishStream(std::uint64_t id) CCM_EXCLUDES(mu);

    void joinFinishedReaders(bool all) CCM_EXCLUDES(readersMu);

    const ServeOptions opts;

    int listenFd = -1;
    int controlFd = -1;

    std::thread acceptThread;
    std::thread controlThread;
    std::thread reaperThread;

    Mutex readersMu{LockRank::ServeDaemonReaders,
                    "serve-daemon-readers"};
    std::list<ReaderSlot> readers CCM_GUARDED_BY(readersMu);

    /** For the stats document's uptime_seconds (reset by start()). */
    std::chrono::steady_clock::time_point startTime_ =
        std::chrono::steady_clock::now();

    std::atomic<bool> started_{false};
    std::atomic<bool> stopAll{false};
    std::atomic<bool> draining_{false};
    std::atomic<std::int64_t> drainDeadlineMs{0};

    mutable Mutex mu{LockRank::ServeDaemon, "serve-daemon"};
    /** Current config (reload swaps). */
    ServeRuntimeConfig runtime CCM_GUARDED_BY(mu);
    std::uint64_t generation_ CCM_GUARDED_BY(mu) = 1;
    std::uint64_t nextId CCM_GUARDED_BY(mu) = 1;
    std::map<std::uint64_t, ActiveStream> active CCM_GUARDED_BY(mu);
    std::deque<obs::JsonValue> finishedReports CCM_GUARDED_BY(mu);
    Count admitted_ CCM_GUARDED_BY(mu) = 0;
    Count refused_ CCM_GUARDED_BY(mu) = 0;
    Count done_ CCM_GUARDED_BY(mu) = 0;
    Count failed_ CCM_GUARDED_BY(mu) = 0;
    /** Records of retired streams. */
    Count recordsDone CCM_GUARDED_BY(mu) = 0;
};

} // namespace ccm::serve

#endif // CCM_SERVE_DAEMON_HH
