#include "serve/frame.hh"

#include <algorithm>
#include <cstring>

#include "trace/wire.hh"

namespace ccm::serve
{

namespace
{

constexpr std::uint8_t kMagic[4] = {'C', 'C', 'M', 'F'};

std::uint32_t
fnv1a(const std::uint8_t *data, std::size_t n,
      std::uint32_t h = 2166136261u)
{
    for (std::size_t i = 0; i < n; ++i) {
        h ^= data[i];
        h *= 16777619u;
    }
    return h;
}

void
putU16(std::uint8_t *buf, std::uint16_t v)
{
    buf[0] = static_cast<std::uint8_t>(v & 0xff);
    buf[1] = static_cast<std::uint8_t>(v >> 8);
}

void
putU32(std::uint8_t *buf, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf[i] = static_cast<std::uint8_t>((v >> (8 * i)) & 0xff);
}

std::uint16_t
getU16(const std::uint8_t *buf)
{
    return static_cast<std::uint16_t>(buf[0] |
                                      (std::uint16_t{buf[1]} << 8));
}

std::uint32_t
getU32(const std::uint8_t *buf)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= std::uint32_t{buf[i]} << (8 * i);
    return v;
}

void
appendFrame(std::vector<std::uint8_t> &out, FrameType type,
            const std::uint8_t *payload, std::size_t len)
{
    const std::size_t base = out.size();
    out.resize(base + kFrameHeaderBytes + len);
    std::uint8_t *hdr = out.data() + base;
    std::memcpy(hdr, kMagic, 4);
    hdr[4] = static_cast<std::uint8_t>(type);
    hdr[5] = 0;
    putU16(hdr + 6, static_cast<std::uint16_t>(len));
    if (len > 0)
        std::memcpy(hdr + kFrameHeaderBytes, payload, len);
    std::uint32_t sum = fnv1a(hdr + 4, 4);
    sum = fnv1a(hdr + kFrameHeaderBytes, len, sum);
    putU32(hdr + 8, sum);
}

/**
 * True when the 12 bytes at @p hdr could begin a real frame: known
 * type, zero flags, in-range length with the per-type shape
 * constraints.  Used both to validate the frame under the cursor and
 * to find a believable boundary during resync.
 */
bool
plausibleHeader(const std::uint8_t *hdr)
{
    if (std::memcmp(hdr, kMagic, 4) != 0)
        return false;
    const std::uint8_t type = hdr[4];
    if (type < static_cast<std::uint8_t>(FrameType::Hello) ||
        type > static_cast<std::uint8_t>(FrameType::End))
        return false;
    if (hdr[5] != 0)
        return false;
    const std::size_t len = getU16(hdr + 6);
    if (len > kMaxFramePayload)
        return false;
    switch (static_cast<FrameType>(type)) {
      case FrameType::Hello:
        return len >= 5 && len <= 5 + kMaxStreamName;
      case FrameType::Records:
        return len > 0 && len % wire::recordBytes == 0;
      case FrameType::End:
        return len == 0;
    }
    return false;
}

} // namespace

const char *
frameDefectName(FrameDefect d)
{
    switch (d) {
      case FrameDefect::None:
        return "none";
      case FrameDefect::BadMagic:
        return "bad-magic";
      case FrameDefect::BadHeader:
        return "bad-header";
      case FrameDefect::BadChecksum:
        return "bad-checksum";
      case FrameDefect::BadRecord:
        return "bad-record";
      case FrameDefect::BadHello:
        return "bad-hello";
      case FrameDefect::TruncatedTail:
        return "truncated-tail";
    }
    return "unknown";
}

// ---- Encoding -----------------------------------------------------

void
appendHelloFrame(std::vector<std::uint8_t> &out, const std::string &name)
{
    std::string clipped = name.substr(0, kMaxStreamName);
    std::vector<std::uint8_t> payload(5 + clipped.size());
    putU32(payload.data(), kFrameProtoVersion);
    payload[4] = static_cast<std::uint8_t>(clipped.size());
    std::memcpy(payload.data() + 5, clipped.data(), clipped.size());
    appendFrame(out, FrameType::Hello, payload.data(), payload.size());
}

void
appendRecordsFrames(std::vector<std::uint8_t> &out, const MemRecord *recs,
                    std::size_t n)
{
    std::uint8_t payload[kMaxFramePayload];
    std::size_t off = 0;
    while (off < n) {
        const std::size_t take =
            std::min(n - off, kMaxRecordsPerFrame);
        for (std::size_t i = 0; i < take; ++i)
            wire::packRecord(recs[off + i],
                             payload + i * wire::recordBytes);
        appendFrame(out, FrameType::Records, payload,
                    take * wire::recordBytes);
        off += take;
    }
}

void
appendEndFrame(std::vector<std::uint8_t> &out)
{
    appendFrame(out, FrameType::End, nullptr, 0);
}

// ---- Decoding -----------------------------------------------------

void
FrameParser::skipGarbage(std::size_t n, FrameDefect why, FrameSink &sink)
{
    if (!inGarbageRun) {
        inGarbageRun = true;
        ++stats_.resyncEvents;
        if (stats_.firstDefect == FrameDefect::None)
            stats_.firstDefect = why;
        sink.onDefect(why, std::string("resync: skipping bytes (") +
                               frameDefectName(why) + ")");
    }
    stats_.bytesSkipped += n;
    pos += n;
}

void
FrameParser::dispatchFrame(FrameType type, const std::uint8_t *payload,
                           std::size_t len, FrameSink &sink)
{
    switch (type) {
      case FrameType::Hello: {
        const std::uint32_t version = getU32(payload);
        const std::size_t name_len = payload[4];
        if (version != kFrameProtoVersion || name_len != len - 5) {
            ++stats_.malformedFrames;
            if (stats_.firstDefect == FrameDefect::None)
                stats_.firstDefect = FrameDefect::BadHello;
            sink.onDefect(FrameDefect::BadHello,
                          "hello frame with version " +
                              std::to_string(version));
            return;
        }
        ++stats_.frames;
        ++stats_.helloFrames;
        sink.onHello(version,
                     std::string(reinterpret_cast<const char *>(
                                     payload + 5),
                                 name_len));
        return;
      }
      case FrameType::Records: {
        const std::size_t n = len / wire::recordBytes;
        MemRecord recs[kMaxRecordsPerFrame];
        std::size_t good = 0;
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint8_t *r = payload + i * wire::recordBytes;
            if (wire::plausibleRecord(r)) {
                recs[good++] = wire::unpackRecord(r);
            } else {
                ++stats_.badRecords;
                if (stats_.firstDefect == FrameDefect::None)
                    stats_.firstDefect = FrameDefect::BadRecord;
            }
        }
        if (good < n)
            sink.onDefect(FrameDefect::BadRecord,
                          std::to_string(n - good) +
                              " implausible records dropped");
        ++stats_.frames;
        stats_.records += good;
        if (good > 0)
            sink.onRecords(recs, good);
        return;
      }
      case FrameType::End:
        ++stats_.frames;
        ++stats_.endFrames;
        sawEnd_ = true;
        sink.onEnd();
        return;
    }
}

void
FrameParser::parseBuffer(FrameSink &sink)
{
    while (buf.size() - pos >= kFrameHeaderBytes) {
        const std::uint8_t *hdr = buf.data() + pos;
        if (!plausibleHeader(hdr)) {
            const FrameDefect why = std::memcmp(hdr, kMagic, 4) == 0
                                        ? FrameDefect::BadHeader
                                        : FrameDefect::BadMagic;
            skipGarbage(1, why, sink);
            continue;
        }
        const std::size_t len = getU16(hdr + 6);
        if (buf.size() - pos < kFrameHeaderBytes + len)
            break; // incomplete frame: wait for more bytes
        std::uint32_t sum = fnv1a(hdr + 4, 4);
        sum = fnv1a(hdr + kFrameHeaderBytes, len, sum);
        if (sum != getU32(hdr + 8)) {
            // The header looked right but the contents are damaged;
            // resync rather than trust the claimed length.
            skipGarbage(1, FrameDefect::BadChecksum, sink);
            continue;
        }
        inGarbageRun = false;
        dispatchFrame(static_cast<FrameType>(hdr[4]),
                      hdr + kFrameHeaderBytes, len, sink);
        pos += kFrameHeaderBytes + len;
    }

    // Compact the consumed prefix so the buffer stays bounded by one
    // maximum-size frame plus one read chunk.
    if (pos > 0) {
        buf.erase(buf.begin(),
                  buf.begin() + static_cast<std::ptrdiff_t>(pos));
        pos = 0;
    }
}

void
FrameParser::feed(const std::uint8_t *data, std::size_t n,
                  FrameSink &sink)
{
    buf.insert(buf.end(), data, data + n);
    parseBuffer(sink);
}

void
FrameParser::finish(FrameSink &sink)
{
    parseBuffer(sink);
    const std::size_t left = buf.size() - pos;
    if (left > 0) {
        ++stats_.malformedFrames;
        stats_.bytesSkipped += left;
        if (stats_.firstDefect == FrameDefect::None)
            stats_.firstDefect = FrameDefect::TruncatedTail;
        sink.onDefect(FrameDefect::TruncatedTail,
                      "stream ended inside a frame (" +
                          std::to_string(left) + " bytes)");
        buf.clear();
        pos = 0;
    }
}

} // namespace ccm::serve
