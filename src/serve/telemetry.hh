/**
 * @file
 * The serve layer's instruments in the process-wide metrics registry
 * (docs/OBSERVABILITY.md "Metrics").  Every subsystem that updates a
 * counter on a hot path resolves its instrument once through
 * serveMetrics() and keeps the reference, so steady-state updates are
 * single relaxed atomic adds and never touch the registry lock.
 *
 * Strictly observational: these counters mirror (never replace) the
 * mutex-guarded daemon aggregates the stats document is built from.
 */

#ifndef CCM_SERVE_TELEMETRY_HH
#define CCM_SERVE_TELEMETRY_HH

#include "obs/metrics.hh"

namespace ccm::serve
{

/** References into MetricsRegistry::global(), resolved once. */
struct ServeMetrics
{
    obs::Counter &streamsAdmitted;
    obs::Counter &streamsRefused;
    obs::Counter &streamsDone;
    obs::Counter &streamsFailed;
    obs::Counter &records;
    obs::Counter &recordsShed;
    obs::Counter &classifiedRecords;
    obs::Counter &controlRequests;
    obs::Counter &reloads;
    obs::Gauge &streamsActive;
    obs::Gauge &queueDepth;
    obs::Gauge &configGeneration;
    obs::Histogram &frameDecodeUs;
    obs::Histogram &batchClassifyUs;
};

/** The serve instruments (registered on first use, then cached). */
ServeMetrics &serveMetrics();

} // namespace ccm::serve

#endif // CCM_SERVE_TELEMETRY_HH
