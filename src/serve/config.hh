/**
 * @file
 * Daemon runtime configuration: the architecture + geometry a stream
 * is simulated on and the per-stream resource limits, parsed from a
 * small "key value" config file.
 *
 * One parser serves both moments a configuration enters the daemon —
 * process start (`ccm-serve --config FILE`) and SIGHUP reload — so a
 * file that was valid at boot stays valid at reload, and a file that
 * is not comes back as a Status (the daemon keeps the old
 * configuration rather than dying mid-flight).
 *
 * Grammar: one `key value` pair per line; blank lines and `#`
 * comments ignored.  Keys mirror the ccm-sim flags they correspond
 * to (docs/SERVING.md lists them all):
 *
 *   arch baseline|victim|prefetch|exclude|pseudo|pseudo-lru|twoway|amb
 *   l1-kb N   l1-assoc N   l2-kb N   buf-entries N   mct-bits N
 *   queue-records N   policy block|shed
 *   window-every N    window-samples N   snapshot-every N
 *   defect-budget N
 */

#ifndef CCM_SERVE_CONFIG_HH
#define CCM_SERVE_CONFIG_HH

#include <string>
#include <string_view>

#include "serve/stream.hh"
#include "sim/experiment.hh"

namespace ccm::serve
{

/** Everything a reload swaps: machine config + stream limits. */
struct ServeRuntimeConfig
{
    std::string arch = "baseline";
    SystemConfig system = baselineConfig();
    StreamLimits limits;
};

/**
 * The named §5 architecture @p arch with default policy settings, or
 * why the name is unknown.  (Per-policy flags — filters, exclusion
 * algorithms — stay batch-CLI territory; the daemon picks the named
 * defaults.)
 */
Expected<SystemConfig> buildArchConfig(const std::string &arch);

/** Parse config-file @p text (see the grammar above). */
Expected<ServeRuntimeConfig> parseServeConfig(std::string_view text);

/** parseServeConfig over the contents of @p path. */
Expected<ServeRuntimeConfig> loadServeConfig(const std::string &path);

} // namespace ccm::serve

#endif // CCM_SERVE_CONFIG_HH
