#include "serve/telemetry.hh"

namespace ccm::serve
{

ServeMetrics &
serveMetrics()
{
    auto &reg = obs::MetricsRegistry::global();
    static ServeMetrics metrics{
        reg.counter("ccm_serve_streams_admitted_total",
                    "Streams admitted at hello"),
        reg.counter("ccm_serve_streams_refused_total",
                    "Streams refused admission (drain or limit)"),
        reg.counter("ccm_serve_streams_done_total",
                    "Streams retired with a clean end frame"),
        reg.counter("ccm_serve_streams_failed_total",
                    "Streams retired failed"),
        reg.counter("ccm_serve_records_total",
                    "Records accepted into stream queues"),
        reg.counter("ccm_serve_records_shed_total",
                    "Records dropped by the Shed overflow policy"),
        reg.counter("ccm_serve_classified_records_total",
                    "Records pulled by stream simulation threads"),
        reg.counter("ccm_serve_control_requests_total",
                    "Control-socket requests handled"),
        reg.counter("ccm_serve_reloads_total",
                    "Successful config reloads"),
        reg.gauge("ccm_serve_streams_active",
                  "Streams admitted and not yet retired"),
        reg.gauge("ccm_serve_queue_depth_records",
                  "Records queued across active streams"),
        reg.gauge("ccm_serve_config_generation",
                  "Current configuration generation"),
        reg.histogram("ccm_serve_frame_decode_us",
                      "Frame parse time per ingest read (us)"),
        reg.histogram("ccm_serve_batch_classify_us",
                      "Classify time per queue batch (us)"),
    };
    return metrics;
}

} // namespace ccm::serve
