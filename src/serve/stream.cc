#include "serve/stream.hh"

#include <chrono>

#include "common/log.hh"
#include "hierarchy/memsys.hh"
#include "obs/sink.hh"
#include "obs/span.hh"
#include "serve/telemetry.hh"

namespace ccm::serve
{

namespace
{

std::int64_t
nowMillis()
{
    using namespace std::chrono;
    return duration_cast<milliseconds>(
               steady_clock::now().time_since_epoch())
        .count();
}

std::int64_t
nowMicros()
{
    using namespace std::chrono;
    return duration_cast<microseconds>(
               steady_clock::now().time_since_epoch())
        .count();
}

obs::JsonValue
frameStatsToJson(const FrameStats &fs)
{
    obs::JsonValue j = obs::JsonValue::object();
    j.set("frames", obs::JsonValue::uint(fs.frames));
    j.set("records", obs::JsonValue::uint(fs.records));
    j.set("malformed_frames", obs::JsonValue::uint(fs.malformedFrames));
    j.set("resync_events", obs::JsonValue::uint(fs.resyncEvents));
    j.set("bytes_skipped", obs::JsonValue::uint(fs.bytesSkipped));
    j.set("bad_records", obs::JsonValue::uint(fs.badRecords));
    j.set("first_defect",
          obs::JsonValue::str(frameDefectName(fs.firstDefect)));
    return j;
}

} // namespace

QueueSource::QueueSource(RecordQueue &queue, std::string label)
    : q(queue), label_(std::move(label)),
      classifyUs_(serveMetrics().batchClassifyUs),
      classified_(serveMetrics().classifiedRecords)
{
}

std::size_t
QueueSource::nextBatch(MemRecord *out, std::size_t n)
{
    // The gap since the previous batch was handed out is the classify
    // time of that batch; the blocking pop below is queue wait and
    // deliberately not part of it.  An armed lastHandoffUs_ means the
    // previous batch was the 1-in-N sample to time.
    if (lastHandoffUs_ != 0) {
        classifyUs_.observe(
            static_cast<std::uint64_t>(nowMicros() - lastHandoffUs_));
        lastHandoffUs_ = 0;
    }

    const std::size_t got = q.pop(out, n);

    classified_.inc(got);
    if (got > 0 && ++tick_ % kClassifySampleEvery == 0)
        lastHandoffUs_ = nowMicros();
    return got;
}

const char *
toString(StreamState s)
{
    switch (s) {
      case StreamState::Admitted:
        return "admitted";
      case StreamState::Running:
        return "running";
      case StreamState::Done:
        return "done";
      case StreamState::Failed:
        return "failed";
    }
    return "unknown";
}

StreamPipeline::StreamPipeline(std::uint64_t id, std::string name,
                               const SystemConfig &system_in,
                               const StreamLimits &limits_in,
                               std::uint64_t generation_in)
    : id_(id), name_(std::move(name)), system(system_in),
      limits(limits_in), generation(generation_in),
      spanBeginUs_(obs::SpanTracer::global().nowMicros()),
      q(limits_in.queueRecords, limits_in.policy)
{
    lastActivityMs.store(nowMillis(), std::memory_order_relaxed);
}

StreamPipeline::~StreamPipeline()
{
    q.abort();
    join();
}

void
StreamPipeline::start()
{
    {
        MutexLock lock(mu);
        state_ = StreamState::Running;
    }
    simThread = std::thread([this] { runBody(); });
}

void
StreamPipeline::join()
{
    if (simThread.joinable())
        simThread.join();
}

bool
StreamPipeline::finished() const
{
    MutexLock lock(mu);
    return finished_;
}

StreamState
StreamPipeline::state() const
{
    MutexLock lock(mu);
    return state_;
}

Status
StreamPipeline::status() const
{
    MutexLock lock(mu);
    return failStatus;
}

void
StreamPipeline::failWith(const Status &why)
{
    if (why.isOk())
        return;
    MutexLock lock(mu);
    if (state_ == StreamState::Done || state_ == StreamState::Failed)
        return;
    if (failStatus.isOk())
        failStatus = why;
}

void
StreamPipeline::setFrameStats(const FrameStats &fs)
{
    MutexLock lock(mu);
    frames = fs;
}

void
StreamPipeline::noteActivity()
{
    lastActivityMs.store(nowMillis(), std::memory_order_relaxed);
}

std::int64_t
StreamPipeline::idleMillis() const
{
    return nowMillis() -
           lastActivityMs.load(std::memory_order_relaxed);
}

const RunOutput &
StreamPipeline::output() const
{
    MutexLock lock(mu);
    return out;
}

void
StreamPipeline::refreshSnapshot(const MemStats &st)
{
    noteActivity();
    if (sampler != nullptr)
        live.publish(st, obs::intervalsToJson(*sampler),
                     !sampler->samples().empty());
    else
        live.publish(st);
}

void
StreamPipeline::runBody()
{
    LogStreamScope log_scope(id_);
    CCM_LOG_DEBUG("stream '", name_, "': simulation thread started");

    if (limits.windowEvery > 0) {
        sampler =
            std::make_unique<obs::IntervalSampler>(limits.windowEvery);
        sampler->setRollingCapacity(limits.windowSamples);
    }

    QueueSource src(q, name_);
    const Count snap_every =
        limits.snapshotEvery == 0 ? 1 : limits.snapshotEvery;
    MemSysInstrument instrument = [this,
                                   snap_every](MemorySystem &mem) {
        mem.setAccessHook(
            [this, snap_every](const AccessResult &,
                               const MemStats &st) {
                if (sampler != nullptr)
                    sampler->onAccess(st);
                if (++refsSinceSnap >= snap_every) {
                    refsSinceSnap = 0;
                    refreshSnapshot(st);
                }
            });
    };

    // The exact batch code path: Core::run over a MemorySystem built
    // from this stream's config, with fatal user errors captured.
    Expected<RunOutput> run = tryRunTiming(src, system, instrument);

    if (run.ok()) {
        // Publish the final counters to the live cell first so a
        // reader racing the state flip below never sees Done with a
        // stale mid-run snapshot.
        const RunOutput &res = run.value();
        if (sampler != nullptr) {
            sampler->finish(res.mem);
            live.publish(res.mem, obs::intervalsToJson(*sampler),
                         !sampler->samples().empty());
        } else {
            live.publish(res.mem);
        }
    }

    {
        MutexLock lock(mu);
        if (run.ok()) {
            out = run.take();
        } else if (failStatus.isOk()) {
            failStatus = run.status();
        }
        state_ = failStatus.isOk() && run.ok() ? StreamState::Done
                                               : StreamState::Failed;
        finished_ = true;
    }

    // Once this thread is gone nothing will ever pop again, so the
    // queue must not take more input: a run that failed (e.g. a bad
    // geometry) leaves records in flight, and under the Block policy
    // the connection reader would otherwise wait in push() forever —
    // holding its admission slot and hanging drain.
    q.abort();
}

obs::JsonValue
StreamPipeline::reportJson() const
{
    // Three locks, taken strictly one after another (never nested):
    // queue stats (rank 50), the live cell (rank 40), then the stream
    // mutex (rank 30).
    const QueueStats qs = q.stats();
    const obs::LiveStatsCell::Snapshot snap = live.snapshot();

    MutexLock lock(mu);
    obs::JsonValue s = obs::JsonValue::object();
    s.set("name", obs::JsonValue::str(name_));
    s.set("id", obs::JsonValue::uint(id_));
    s.set("generation", obs::JsonValue::uint(generation));
    s.set("state", obs::JsonValue::str(toString(state_)));
    s.set("records", obs::JsonValue::uint(qs.pushed));
    s.set("refs", obs::JsonValue::uint(snap.stats.accesses));

    obs::JsonValue queue_j = obs::JsonValue::object();
    queue_j.set("capacity", obs::JsonValue::uint(q.capacity()));
    queue_j.set("policy",
                obs::JsonValue::str(toString(q.policy())));
    queue_j.set("shed_records", obs::JsonValue::uint(qs.shed));
    queue_j.set("max_depth", obs::JsonValue::uint(qs.maxDepth));
    s.set("queue", std::move(queue_j));

    s.set("frames", frameStatsToJson(frames));

    if (state_ == StreamState::Failed)
        s.set("error", obs::JsonValue::str(failStatus.toString()));

    if (state_ == StreamState::Done) {
        s.set("sim", obs::simResultToJson(out.sim));
        s.set("mem", obs::memStatsToJson(out.mem));
        s.set("heatmap", obs::setHistogramsToJson(out.heat));
    } else if (snap.stats.accesses > 0) {
        s.set("mem_live", obs::memStatsToJson(snap.stats));
    }

    if (snap.haveWindow)
        s.set("window", snap.window);

    return s;
}

} // namespace ccm::serve
