#include "serve/config.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "hierarchy/memsys.hh"

namespace ccm::serve
{

namespace
{

/**
 * Reject any machine configuration MemorySystem would fatal on at
 * stream start (zero associativity, non-power-of-two sizes, ...) by
 * probe-constructing one.  Catching this at parse time means a broken
 * file never becomes the running configuration: reload() keeps the
 * previous good one instead of accepting a config under which every
 * subsequent stream fails at simulation start.
 */
Status
validateSystem(const SystemConfig &system)
{
    try {
        ScopedFatalThrow guard;
        MemorySystem probe(system.mem);
    } catch (const FatalError &e) {
        return Status::badConfig(e.what());
    } catch (const std::exception &e) {
        return Status::badConfig("configuration rejected: ",
                                 e.what());
    }
    return Status::ok();
}

/** Strict unsigned parse: the whole token must be digits. */
Expected<std::uint64_t>
parseU64(const std::string &key, const std::string &value)
{
    if (value.empty())
        return Status::badConfig("key '", key, "' needs a number");
    for (char c : value) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return Status::badConfig("key '", key, "': '", value,
                                     "' is not a number");
    }
    return std::strtoull(value.c_str(), nullptr, 10);
}

} // namespace

Expected<SystemConfig>
buildArchConfig(const std::string &arch)
{
    if (arch == "baseline")
        return baselineConfig();
    if (arch == "victim")
        return victimConfig(false, false);
    if (arch == "prefetch")
        return prefetchConfig(false);
    if (arch == "exclude")
        return excludeConfig(ExcludeAlgo::Capacity);
    if (arch == "pseudo")
        return pseudoConfig(true);
    if (arch == "pseudo-lru")
        return pseudoConfig(false);
    if (arch == "twoway")
        return twoWayConfig();
    if (arch == "amb")
        return ambConfig(true, true, true);
    return Status::badConfig("unknown arch '", arch, "'");
}

Expected<ServeRuntimeConfig>
parseServeConfig(std::string_view text)
{
    ServeRuntimeConfig cfg;

    // Geometry keys are applied after the arch is known, in file
    // order, so "arch" may appear anywhere without being overridden
    // by defaults.
    std::vector<std::pair<std::string, std::string>> pairs;

    std::size_t line_no = 0;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t end = text.find('\n', start);
        if (end == std::string_view::npos)
            end = text.size();
        std::string line(text.substr(start, end - start));
        start = end + 1;
        ++line_no;

        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream ss(line);
        std::string key, value, extra;
        if (!(ss >> key))
            continue; // blank / comment-only line
        if (!(ss >> value) || (ss >> extra))
            return Status::badConfig("config line ", line_no,
                                     ": expected 'key value', got '",
                                     line, "'");
        pairs.emplace_back(std::move(key), std::move(value));
    }

    for (const auto &[key, value] : pairs) {
        if (key == "arch") {
            auto sys = buildArchConfig(value);
            if (!sys.ok())
                return sys.status();
            cfg.arch = value;
            cfg.system = sys.take();
            continue;
        }
        if (key == "policy") {
            auto p = parseOverflowPolicy(value);
            if (!p.ok())
                return p.status();
            cfg.limits.policy = p.value();
            continue;
        }
        auto n = parseU64(key, value);
        if (!n.ok())
            return n.status();
        const std::uint64_t v = n.value();
        if (key == "l1-kb") {
            cfg.system.mem.l1Bytes = v * 1024;
        } else if (key == "l1-assoc") {
            cfg.system.mem.l1Assoc = static_cast<unsigned>(v);
        } else if (key == "l2-kb") {
            cfg.system.mem.l2Bytes = v * 1024;
        } else if (key == "buf-entries") {
            cfg.system.mem.bufEntries = static_cast<unsigned>(v);
        } else if (key == "mct-bits") {
            cfg.system.mem.mctTagBits = static_cast<unsigned>(v);
        } else if (key == "queue-records") {
            cfg.limits.queueRecords = v;
        } else if (key == "window-every") {
            cfg.limits.windowEvery = v;
        } else if (key == "window-samples") {
            cfg.limits.windowSamples = v;
        } else if (key == "snapshot-every") {
            cfg.limits.snapshotEvery = v;
        } else if (key == "defect-budget") {
            cfg.limits.defectBudget = v;
        } else {
            return Status::badConfig("unknown config key '", key, "'");
        }
    }
    Status geom = validateSystem(cfg.system);
    if (!geom.isOk())
        return geom.withContext("invalid geometry");
    return cfg;
}

Expected<ServeRuntimeConfig>
loadServeConfig(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return Status::ioError("cannot open config file ", path);
    std::ostringstream ss;
    ss << in.rdbuf();
    auto cfg = parseServeConfig(ss.str());
    if (!cfg.ok())
        return cfg.status().withContext("config file " + path);
    return cfg;
}

} // namespace ccm::serve
