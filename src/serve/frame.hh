/**
 * @file
 * The ccm-serve stream frame protocol: length-prefixed, checksummed
 * frames carrying the 24-byte packed MemRecords of trace/wire.hh over
 * a byte stream (a unix-domain socket, or a capture file validated by
 * `tracecheck --frames`).
 *
 * Layout (little-endian, docs/SERVING.md):
 *
 *   [0..3]   magic "CCMF"
 *   [4]      u8  type      (1 = hello, 2 = records, 3 = end)
 *   [5]      u8  flags     (must be 0)
 *   [6..7]   u16 payload length   (<= kMaxFramePayload)
 *   [8..11]  u32 FNV-1a checksum over bytes [4..7] + payload
 *   [12..]   payload
 *
 * Payloads: hello = u32 protocol version, u8 name length, name bytes;
 * records = N x 24-byte packed records; end = empty.  A stream is
 * hello, any number of records frames, end; a connection that closes
 * without the end frame was cut off mid-stream.
 *
 * The parser is incremental and never fails hard: malformed bytes are
 * skipped with resync to the next believable frame boundary (the same
 * defect-tolerance posture as trace/file_trace), every defect is
 * counted in FrameStats with a first-defect taxonomy, and the
 * surviving frames still flow.  Per-stream robustness policy (how
 * many defects to tolerate before declaring the stream failed) lives
 * above the parser, in the daemon.
 */

#ifndef CCM_SERVE_FRAME_HH
#define CCM_SERVE_FRAME_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "trace/record.hh"

namespace ccm::serve
{

/** Protocol version carried by the hello frame. */
inline constexpr std::uint32_t kFrameProtoVersion = 1;

/** Frame header bytes preceding every payload. */
inline constexpr std::size_t kFrameHeaderBytes = 12;

/** Most records one frame may carry (one delivery batch). */
inline constexpr std::size_t kMaxRecordsPerFrame = 256;

/** Hard cap on any frame payload (records frames are the largest). */
inline constexpr std::size_t kMaxFramePayload = kMaxRecordsPerFrame * 24;

/** Longest stream name a hello frame can carry. */
inline constexpr std::size_t kMaxStreamName = 128;

enum class FrameType : std::uint8_t
{
    Hello = 1,   ///< stream introduction: proto version + name
    Records = 2, ///< N packed MemRecords
    End = 3,     ///< clean end-of-stream
};

/** What, if anything, is wrong with a frame stream. */
enum class FrameDefect
{
    None = 0,
    BadMagic,      ///< garbage bytes between frames (resynced past)
    BadHeader,     ///< magic found but type/flags/length implausible
    BadChecksum,   ///< well-formed header, corrupted payload
    BadRecord,     ///< records frame carrying implausible records
    BadHello,      ///< hello frame with bad version/name encoding
    TruncatedTail, ///< stream ended inside a frame
};

/** Stable lower-case name of @p d (e.g. "bad-checksum"). */
const char *frameDefectName(FrameDefect d);

/** Counters for one parsed stream, defects included. */
struct FrameStats
{
    Count frames = 0;       ///< intact frames delivered
    Count records = 0;      ///< records carried by intact frames
    Count helloFrames = 0;
    Count endFrames = 0;
    Count malformedFrames = 0; ///< frames rejected by any defect
    Count resyncEvents = 0;    ///< garbage runs skipped
    Count bytesSkipped = 0;    ///< total garbage bytes passed over
    Count badRecords = 0;      ///< implausible records dropped

    /** First defect seen (FrameDefect::None for a clean stream). */
    FrameDefect firstDefect = FrameDefect::None;

    bool clean() const { return firstDefect == FrameDefect::None; }

    /** Defect events relevant to a tolerance budget. */
    Count
    defects() const
    {
        return malformedFrames + resyncEvents + badRecords;
    }
};

// ---- Encoding -----------------------------------------------------

/** Append a hello frame for stream @p name (truncated to the cap). */
void appendHelloFrame(std::vector<std::uint8_t> &out,
                      const std::string &name);

/**
 * Append records frames carrying @p recs, split into frames of at
 * most kMaxRecordsPerFrame records each.
 */
void appendRecordsFrames(std::vector<std::uint8_t> &out,
                         const MemRecord *recs, std::size_t n);

/** Append the end-of-stream frame. */
void appendEndFrame(std::vector<std::uint8_t> &out);

// ---- Decoding -----------------------------------------------------

/** Receiver interface for parsed frames and tolerated defects. */
class FrameSink
{
  public:
    virtual ~FrameSink() = default;

    virtual void onHello(std::uint32_t version,
                         const std::string &name) = 0;
    virtual void onRecords(const MemRecord *recs, std::size_t n) = 0;
    virtual void onEnd() = 0;

    /** A tolerated defect (already counted in FrameStats). */
    virtual void
    onDefect(FrameDefect d, const std::string &detail)
    {
        (void)d;
        (void)detail;
    }
};

/**
 * Incremental frame-stream parser with resync.  feed() bytes as they
 * arrive; finish() once the stream ends so a trailing partial frame
 * is diagnosed.  Buffering is bounded by one maximum-size frame.
 */
class FrameParser
{
  public:
    /** Consume @p n bytes, dispatching whatever completes. */
    void feed(const std::uint8_t *data, std::size_t n,
              FrameSink &sink);

    /** End of input: flag any buffered partial frame. */
    void finish(FrameSink &sink);

    const FrameStats &stats() const { return stats_; }

    /** True once a clean end frame was parsed. */
    bool sawEnd() const { return sawEnd_; }

  private:
    void parseBuffer(FrameSink &sink);
    void skipGarbage(std::size_t n, FrameDefect why, FrameSink &sink);
    void dispatchFrame(FrameType type, const std::uint8_t *payload,
                       std::size_t len, FrameSink &sink);

    std::vector<std::uint8_t> buf;
    std::size_t pos = 0; ///< consumed prefix of buf
    bool inGarbageRun = false;
    bool sawEnd_ = false;
    FrameStats stats_;
};

} // namespace ccm::serve

#endif // CCM_SERVE_FRAME_HH
