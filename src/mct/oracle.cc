#include "mct/oracle.hh"

namespace ccm
{

OracleClassifier::OracleClassifier(std::size_t num_lines) : fa(num_lines)
{
}

MissClass
OracleClassifier::observe(LineAddr line_addr, bool real_cache_miss)
{
    // One probe answers membership-before-update and performs the
    // update; this runs once per classified reference.  A line
    // resident in the FA model is always already in the seen-set
    // (both are extended together below and the seen-set never
    // shrinks), so the probe into the large seen table is skipped on
    // the common FA-hit path.
    const bool fa_hit = fa.touchOrInsert(line_addr);
    const bool was_seen =
        fa_hit || seen.insertCheck(line_addr.value());

    if (!real_cache_miss)
        return MissClass::Capacity;
    if (!was_seen)
        return MissClass::Compulsory;
    return fa_hit ? MissClass::Conflict : MissClass::Capacity;
}

void
OracleClassifier::clear()
{
    fa.clear();
    seen.clear();
}

} // namespace ccm
