#include "mct/oracle.hh"

namespace ccm
{

OracleClassifier::OracleClassifier(std::size_t num_lines) : fa(num_lines)
{
}

MissClass
OracleClassifier::observe(LineAddr line_addr, bool real_cache_miss)
{
    MissClass cls = MissClass::Capacity;
    if (real_cache_miss) {
        if (!seen.count(line_addr))
            cls = MissClass::Compulsory;
        else if (fa.contains(line_addr))
            cls = MissClass::Conflict;
        else
            cls = MissClass::Capacity;
    }

    // Update the fully-associative model with this reference.
    if (!fa.touch(line_addr))
        fa.insert(line_addr);
    seen.insert(line_addr);
    return cls;
}

void
OracleClassifier::clear()
{
    fa.clear();
    seen.clear();
}

} // namespace ccm
