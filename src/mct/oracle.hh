/**
 * @file
 * Ground-truth miss classifier following the classic three-C
 * definition (Hill, 1987): for a reference that misses in the real
 * cache,
 *   - compulsory if the line has never been referenced before,
 *   - conflict if a fully-associative LRU cache of the same total
 *     capacity would have hit,
 *   - capacity otherwise.
 *
 * The paper scores the MCT against this oracle (Figures 1 and 2).
 * The oracle is simulation-only bookkeeping — no hardware analogue.
 */

#ifndef CCM_MCT_ORACLE_HH
#define CCM_MCT_ORACLE_HH

#include <cstddef>

#include "cache/fa_lru.hh"
#include "common/addr_types.hh"
#include "common/flat_set.hh"
#include "mct/miss_class.hh"

namespace ccm
{

/** Classic-definition conflict/capacity/compulsory classifier. */
class OracleClassifier
{
  public:
    /** @param num_lines capacity (in lines) of the cache being scored */
    explicit OracleClassifier(std::size_t num_lines);

    /**
     * Observe one reference to @p line_addr (every reference, hits and
     * misses alike, in program order) and, when @p real_cache_miss,
     * return its classic classification.
     *
     * @param line_addr line-aligned address of the reference
     * @param real_cache_miss whether the real cache missed
     * @return the classification (meaningful only on a miss; on a hit
     *         returns MissClass::Capacity as a don't-care)
     */
    MissClass observe(LineAddr line_addr, bool real_cache_miss);

    /** Reset both the FA model and the seen-set. */
    void clear();

    std::size_t faOccupancy() const { return fa.size(); }

  private:
    FaLru fa;
    FlatAddrSet seen;
};

} // namespace ccm

#endif // CCM_MCT_ORACLE_HH
