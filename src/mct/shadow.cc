#include "mct/shadow.hh"

#include <algorithm>

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace ccm
{

Status
ShadowDirectory::validate(std::size_t num_sets, unsigned depth,
                          unsigned tag_bits)
{
    if (num_sets == 0) {
        return Status::badConfig(
            "shadow directory needs at least one set");
    }
    if (depth == 0) {
        return Status::badConfig(
            "shadow directory depth must be >= 1");
    }
    if (tag_bits > 64) {
        return Status::badConfig("shadow tag bits out of range: ",
                                 tag_bits);
    }
    return Status::ok();
}

ShadowDirectory::ShadowDirectory(std::size_t num_sets, unsigned depth,
                                 unsigned tag_bits)
    : sets(num_sets), depth_(depth), tagBits(tag_bits),
      tagMask(tag_bits == 0 ? ~Addr{0} : lowMask(tag_bits)),
      slots(num_sets * depth),
      setLookups_(num_sets, 0), setConflicts_(num_sets, 0)
{
    fatalIfError(validate(num_sets, depth, tag_bits));
}

Addr
ShadowDirectory::maskTag(Tag tag) const
{
    return tag.value() & tagMask;
}

MissClass
ShadowDirectory::classify(SetIndex set, Tag tag) const
{
    bool conflict = matchDepth(set, tag) != 0;
    MissClass verdict =
        conflict ? MissClass::Conflict : MissClass::Capacity;
    ++setLookups_[set.value()];
    if (conflict)
        ++setConflicts_[set.value()];
    if (hook_) {
        const Slot &front = row(set.value())[0];
        hook_({set, front.tag, front.valid, tag, verdict});
    }
    return verdict;
}

unsigned
ShadowDirectory::matchDepth(SetIndex set, Tag tag) const
{
    const Slot *r = row(set.value());
    Addr t = maskTag(tag);
    for (unsigned d = 0; d < depth_; ++d) {
        if (r[d].valid && r[d].tag == t)
            return d + 1;
    }
    return 0;
}

void
ShadowDirectory::recordEviction(SetIndex set, Tag tag)
{
    Slot *r = row(set.value());
    Addr t = maskTag(tag);

    // If the tag is already remembered, move it to the front;
    // otherwise shift everything down and insert at the front.
    unsigned found = depth_ - 1;
    for (unsigned d = 0; d < depth_; ++d) {
        if (r[d].valid && r[d].tag == t) {
            found = d;
            break;
        }
    }
    for (unsigned d = found; d > 0; --d)
        r[d] = r[d - 1];
    r[0].tag = t;
    r[0].valid = true;
}

std::size_t
ShadowDirectory::storageBits() const
{
    unsigned per_slot = (tagBits == 0 ? 64u : tagBits) + 1u;
    return slots.size() * per_slot;
}

void
ShadowDirectory::clear()
{
    for (auto &s : slots)
        s = Slot{};
    std::fill(setLookups_.begin(), setLookups_.end(), 0);
    std::fill(setConflicts_.begin(), setConflicts_.end(), 0);
}

} // namespace ccm
