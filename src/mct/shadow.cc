#include "mct/shadow.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace ccm
{

Status
ShadowDirectory::validate(std::size_t num_sets, unsigned depth,
                          unsigned tag_bits)
{
    if (num_sets == 0) {
        return Status::badConfig(
            "shadow directory needs at least one set");
    }
    if (depth == 0) {
        return Status::badConfig(
            "shadow directory depth must be >= 1");
    }
    if (tag_bits > 64) {
        return Status::badConfig("shadow tag bits out of range: ",
                                 tag_bits);
    }
    return Status::ok();
}

ShadowDirectory::ShadowDirectory(std::size_t num_sets, unsigned depth,
                                 unsigned tag_bits)
    : sets(num_sets), depth_(depth), tagBits(tag_bits),
      tagMask(tag_bits == 0 ? ~Addr{0} : lowMask(tag_bits)),
      slots(num_sets * depth)
{
    fatalIfError(validate(num_sets, depth, tag_bits));
}

Addr
ShadowDirectory::maskTag(Tag tag) const
{
    return tag.value() & tagMask;
}

MissClass
ShadowDirectory::classify(SetIndex set, Tag tag) const
{
    return matchDepth(set, tag) != 0 ? MissClass::Conflict
                                     : MissClass::Capacity;
}

unsigned
ShadowDirectory::matchDepth(SetIndex set, Tag tag) const
{
    const Slot *r = row(set.value());
    Addr t = maskTag(tag);
    for (unsigned d = 0; d < depth_; ++d) {
        if (r[d].valid && r[d].tag == t)
            return d + 1;
    }
    return 0;
}

void
ShadowDirectory::recordEviction(SetIndex set, Tag tag)
{
    Slot *r = row(set.value());
    Addr t = maskTag(tag);

    // If the tag is already remembered, move it to the front;
    // otherwise shift everything down and insert at the front.
    unsigned found = depth_ - 1;
    for (unsigned d = 0; d < depth_; ++d) {
        if (r[d].valid && r[d].tag == t) {
            found = d;
            break;
        }
    }
    for (unsigned d = found; d > 0; --d)
        r[d] = r[d - 1];
    r[0].tag = t;
    r[0].valid = true;
}

std::size_t
ShadowDirectory::storageBits() const
{
    unsigned per_slot = (tagBits == 0 ? 64u : tagBits) + 1u;
    return slots.size() * per_slot;
}

void
ShadowDirectory::clear()
{
    for (auto &s : slots)
        s = Slot{};
}

} // namespace ccm
