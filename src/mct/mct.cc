#include "mct/mct.hh"

#include <algorithm>

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace ccm
{

Status
MissClassificationTable::validate(std::size_t num_sets,
                                  unsigned tag_bits)
{
    if (num_sets == 0)
        return Status::badConfig("MCT needs at least one set");
    if (tag_bits > 64) {
        return Status::badConfig("MCT tag bits out of range: ",
                                 tag_bits);
    }
    return Status::ok();
}

MissClassificationTable::MissClassificationTable(std::size_t num_sets,
                                                 unsigned tag_bits)
    : entries(num_sets), tagBits_(tag_bits),
      tagMask(tag_bits == 0 ? ~Addr{0} : lowMask(tag_bits)),
      setLookups_(num_sets, 0), setConflicts_(num_sets, 0)
{
    fatalIfError(validate(num_sets, tag_bits));
}

void
MissClassificationTable::clear()
{
    for (auto &e : entries)
        e = Entry{};
    std::fill(setLookups_.begin(), setLookups_.end(), 0);
    std::fill(setConflicts_.begin(), setConflicts_.end(), 0);
}

} // namespace ccm
