/**
 * @file
 * Confusion-matrix scorer comparing MCT classifications against the
 * oracle, producing the accuracy numbers of Figures 1 and 2.
 *
 * Following the paper, compulsory misses are grouped with capacity
 * misses on the oracle side ("we'll group compulsory and capacity
 * misses together and call them capacity misses").
 */

#ifndef CCM_MCT_ACCURACY_HH
#define CCM_MCT_ACCURACY_HH

#include <cstdint>

#include "common/stats.hh"
#include "mct/miss_class.hh"

namespace ccm
{

/** Per-miss agreement tally between the MCT and the oracle. */
class AccuracyScorer
{
  public:
    /** Record one classified miss. */
    void
    record(MissClass mct, MissClass oracle)
    {
        bool mct_conf = isConflict(mct);
        bool ora_conf = isConflict(oracle);
        if (ora_conf)
            ++(mct_conf ? confAsConf : confAsCap);
        else
            ++(mct_conf ? capAsConf : capAsCap);
        if (oracle == MissClass::Compulsory)
            ++compulsory;
    }

    /** % of oracle-conflict misses the MCT also called conflict. */
    double
    conflictAccuracy() const
    {
        return pct(confAsConf, confAsConf + confAsCap);
    }

    /** % of oracle-capacity misses the MCT also called capacity. */
    double
    capacityAccuracy() const
    {
        return pct(capAsCap, capAsCap + capAsConf);
    }

    /** % of all misses classified in agreement with the oracle. */
    double
    overallAccuracy() const
    {
        return pct(confAsConf + capAsCap, totalMisses());
    }

    std::uint64_t
    oracleConflicts() const
    {
        return confAsConf + confAsCap;
    }

    std::uint64_t
    oracleCapacities() const
    {
        return capAsCap + capAsConf;
    }

    std::uint64_t compulsoryMisses() const { return compulsory; }

    std::uint64_t
    totalMisses() const
    {
        return confAsConf + confAsCap + capAsConf + capAsCap;
    }

    /** Fraction of misses that are conflicts per the oracle. */
    double
    conflictFraction() const
    {
        return safeRatio(oracleConflicts(), totalMisses());
    }

    /** Pool another scorer's tallies into this one. */
    void
    merge(const AccuracyScorer &other)
    {
        confAsConf += other.confAsConf;
        confAsCap += other.confAsCap;
        capAsConf += other.capAsConf;
        capAsCap += other.capAsCap;
        compulsory += other.compulsory;
    }

    /**
     * Cell-wise this - prev (interval deltas; @p prev must be an
     * earlier snapshot of the same tally).
     */
    AccuracyScorer
    minus(const AccuracyScorer &prev) const
    {
        AccuracyScorer d;
        d.confAsConf = confAsConf - prev.confAsConf;
        d.confAsCap = confAsCap - prev.confAsCap;
        d.capAsConf = capAsConf - prev.capAsConf;
        d.capAsCap = capAsCap - prev.capAsCap;
        d.compulsory = compulsory - prev.compulsory;
        return d;
    }

    // Raw confusion-matrix cells (serialization).
    std::uint64_t conflictAsConflict() const { return confAsConf; }
    std::uint64_t conflictAsCapacity() const { return confAsCap; }
    std::uint64_t capacityAsConflict() const { return capAsConf; }
    std::uint64_t capacityAsCapacity() const { return capAsCap; }

    void
    clear()
    {
        confAsConf = confAsCap = capAsConf = capAsCap = compulsory = 0;
    }

  private:
    std::uint64_t confAsConf = 0;  ///< oracle conflict, MCT conflict
    std::uint64_t confAsCap = 0;   ///< oracle conflict, MCT capacity
    std::uint64_t capAsConf = 0;   ///< oracle capacity, MCT conflict
    std::uint64_t capAsCap = 0;    ///< oracle capacity, MCT capacity
    std::uint64_t compulsory = 0;  ///< subset of oracle capacity
};

} // namespace ccm

#endif // CCM_MCT_ACCURACY_HH
