/**
 * @file
 * The shadow directory: a k-deep generalization of the MCT.
 *
 * Stone attributes to Pomerene a structure keeping "some number of
 * evicted line addresses per cache set" (paper §2); the MCT is its
 * depth-1 special case.  The paper notes the extension ("we could
 * store multiple evicted tags per set to identify higher-order
 * conflict misses, but we do not consider that optimization", §3) —
 * this class implements it so the depth/accuracy trade-off can be
 * measured (see bench/ablation_mct_depth).
 *
 * Each set keeps the tags of its @c depth most recently evicted
 * lines, LRU-ordered; a miss matching any of them is a conflict miss
 * that depth extra ways would have caught.
 */

#ifndef CCM_MCT_SHADOW_HH
#define CCM_MCT_SHADOW_HH

#include <cstddef>
#include <vector>

#include "common/addr_types.hh"
#include "common/status.hh"
#include "common/types.hh"
#include "mct/mct.hh"
#include "mct/miss_class.hh"

namespace ccm
{

/** k-deep per-set table of recently evicted tags. */
class ShadowDirectory
{
  public:
    /**
     * @param num_sets one row per cache set
     * @param depth evicted tags remembered per set (>= 1)
     * @param tag_bits stored-tag width; 0 = full tag
     */
    ShadowDirectory(std::size_t num_sets, unsigned depth,
                    unsigned tag_bits = 0);

    /** Check the parameters the constructor would reject. */
    static Status validate(std::size_t num_sets, unsigned depth,
                           unsigned tag_bits);

    /** Classify a miss: conflict iff any remembered tag matches. */
    MissClass classify(SetIndex set, Tag tag) const;

    /**
     * Attach a lookup observer, as MissClassificationTable does; the
     * event's storedTag is the most recent eviction in the set (the
     * depth-1 MCT view of the row).
     */
    void setLookupHook(MctLookupHook hook) { hook_ = std::move(hook); }

    /** Conflict verdicts per set, indexed by set. */
    const std::vector<Count> &setConflictHistogram() const
    {
        return setConflicts_;
    }

    /** Lookups (classify calls) per set, indexed by set. */
    const std::vector<Count> &setLookupHistogram() const
    {
        return setLookups_;
    }

    /** Convenience: classify() == Conflict. */
    bool
    isConflictMiss(SetIndex set, Tag tag) const
    {
        return classify(set, tag) == MissClass::Conflict;
    }

    /**
     * Depth (1-based) at which @p tag matches, or 0 for no match —
     * i.e. how many extra ways would have been needed.
     */
    unsigned matchDepth(SetIndex set, Tag tag) const;

    /** Record an eviction: @p tag becomes the set's most recent. */
    void recordEviction(SetIndex set, Tag tag);

    unsigned depth() const { return depth_; }
    std::size_t numSets() const { return sets; }

    /** Storage cost in bits (tags + valid bits). */
    std::size_t storageBits() const;

    void clear();

  private:
    struct Slot
    {
        /** Truncated-tag domain: low maskTag() bits of a full Tag. */
        Addr tag = 0;
        bool valid = false;
    };

    Addr maskTag(Tag tag) const;
    Slot *row(std::size_t set) { return &slots[set * depth_]; }
    const Slot *
    row(std::size_t set) const
    {
        return &slots[set * depth_];
    }

    std::size_t sets;
    unsigned depth_;
    unsigned tagBits;
    Addr tagMask;
    /** sets x depth, row-major; index 0 = most recent eviction. */
    std::vector<Slot> slots;
    MctLookupHook hook_;
    mutable std::vector<Count> setLookups_;
    mutable std::vector<Count> setConflicts_;
};

} // namespace ccm

#endif // CCM_MCT_SHADOW_HH
