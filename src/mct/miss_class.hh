/**
 * @file
 * Miss classification vocabulary shared by the MCT, the oracle and
 * every consumer policy, plus the paper's four conflict filters.
 */

#ifndef CCM_MCT_MISS_CLASS_HH
#define CCM_MCT_MISS_CLASS_HH

#include <string>

namespace ccm
{

/**
 * Classification of a cache miss.  Following the paper, consumers
 * group Compulsory with Capacity ("we'll group compulsory and capacity
 * misses together and call them capacity misses"); the oracle keeps
 * them distinct for reporting.
 */
enum class MissClass
{
    Conflict,
    Capacity,
    Compulsory,
};

/** @return true iff @p c counts as a conflict miss. */
constexpr bool
isConflict(MissClass c)
{
    return c == MissClass::Conflict;
}

/** @return "conflict" / "capacity" / "compulsory". */
inline std::string
toString(MissClass c)
{
    switch (c) {
      case MissClass::Conflict: return "conflict";
      case MissClass::Capacity: return "capacity";
      case MissClass::Compulsory: return "compulsory";
    }
    return "?";
}

/**
 * The paper's four filters over (new-miss classification, evicted-line
 * conflict bit) — §3:
 *  - In: the evicted line originally came in as a conflict miss
 *  - Out: the evicted line is being forced out by a conflict miss
 *  - And: both
 *  - Or: either
 */
enum class ConflictFilter
{
    In,
    Out,
    And,
    Or,
};

/**
 * Evaluate a conflict filter.
 *
 * @param f the filter flavour
 * @param new_miss_is_conflict MCT classification of the incoming miss
 * @param evicted_conflict_bit conflict bit of the line being evicted
 * @return true iff the filter labels this eviction event "conflict"
 */
constexpr bool
filterSaysConflict(ConflictFilter f, bool new_miss_is_conflict,
                   bool evicted_conflict_bit)
{
    switch (f) {
      case ConflictFilter::In: return evicted_conflict_bit;
      case ConflictFilter::Out: return new_miss_is_conflict;
      case ConflictFilter::And:
        return new_miss_is_conflict && evicted_conflict_bit;
      case ConflictFilter::Or:
        return new_miss_is_conflict || evicted_conflict_bit;
    }
    return false;
}

/** @return "in" / "out" / "and" / "or". */
inline std::string
toString(ConflictFilter f)
{
    switch (f) {
      case ConflictFilter::In: return "in-conflict";
      case ConflictFilter::Out: return "out-conflict";
      case ConflictFilter::And: return "and-conflict";
      case ConflictFilter::Or: return "or-conflict";
    }
    return "?";
}

} // namespace ccm

#endif // CCM_MCT_MISS_CLASS_HH
