/**
 * @file
 * Functional (timing-free) classification experiment: run a trace
 * through a cache + MCT + oracle and score the MCT's accuracy.  This
 * is exactly the measurement behind Figures 1 and 2.
 */

#ifndef CCM_MCT_CLASSIFY_RUN_HH
#define CCM_MCT_CLASSIFY_RUN_HH

#include "cache/geometry.hh"
#include "mct/accuracy.hh"
#include "mct/mct.hh"
#include "trace/source.hh"

namespace ccm
{

/**
 * Per-reference observer for classification runs.  Implemented by the
 * obs layer (interval sampling, event tracing); classifyRun invokes
 * it in program order.  This is the only place MCT verdict and oracle
 * verdict are visible together, so oracle-agreement observability
 * hangs off it.
 */
class ClassifyObserver
{
  public:
    virtual ~ClassifyObserver() = default;

    /** Every memory reference; @p miss is the real cache's outcome. */
    virtual void onReference(bool miss) { (void)miss; }

    /** Every miss, with both classifications. */
    virtual void
    onMiss(SetIndex set, Tag tag, MissClass mct, MissClass oracle)
    {
        (void)set;
        (void)tag;
        (void)mct;
        (void)oracle;
    }
};

/** Parameters of one classification run. */
struct ClassifyConfig
{
    std::size_t cacheBytes = 16 * 1024;
    unsigned assoc = 1;
    unsigned lineBytes = 64;
    /** Stored-tag width; 0 = full tag. */
    unsigned mctTagBits = 0;
    /**
     * Evicted tags remembered per set.  1 = the paper's MCT; more
     * implements the Stone/Pomerene shadow directory (§2/§3), which
     * also identifies higher-order conflict misses.
     */
    unsigned mctDepth = 1;

    /** Optional observer (not owned); nullptr = no observation. */
    ClassifyObserver *observer = nullptr;

    /**
     * Optional lookup hook installed on the classifier table for the
     * duration of the run (stored-tag-level event tracing).
     */
    MctLookupHook lookupHook;
};

/** Outcome of a classification run. */
struct ClassifyResult
{
    AccuracyScorer scorer;
    Count references = 0;    ///< memory references simulated
    Count misses = 0;
    double missRate = 0.0;
};

/**
 * Replay @p trace (reset first) against the configured cache,
 * classifying every miss with both the MCT and the oracle.
 */
ClassifyResult classifyRun(TraceSource &trace, const ClassifyConfig &cfg);

} // namespace ccm

#endif // CCM_MCT_CLASSIFY_RUN_HH
