/**
 * @file
 * The Miss Classification Table — the paper's primary contribution.
 *
 * One entry per cache set, each holding (part of) the tag of the line
 * most recently evicted from that set.  A miss whose tag matches the
 * stored tag is classified as a conflict miss: the line would have hit
 * in a slightly more associative cache (a conflict "near-miss").
 *
 * The table is accessed only on cache misses and is therefore off the
 * cache's critical path.  Storing only the low @c tagBits bits of the
 * tag trades a little accuracy (false conflict matches) for storage;
 * the paper shows 8-12 bits is enough (Figure 2), and the Fig. 2 bench
 * in this repo sweeps exactly that parameter.
 */

#ifndef CCM_MCT_MCT_HH
#define CCM_MCT_MCT_HH

#include <cstddef>
#include <functional>
#include <vector>

#include "common/addr_types.hh"
#include "common/stats.hh"
#include "common/status.hh"
#include "common/types.hh"
#include "mct/miss_class.hh"

namespace ccm
{

/**
 * One MCT lookup, as seen by an attached classification event hook
 * (see MissClassificationTable::setLookupHook).  Oracle agreement is
 * not known at this layer; observers that also watch the oracle (the
 * obs-layer event trace) annotate it afterwards.
 */
struct MctLookupEvent
{
    SetIndex set{};
    /** Stored (possibly truncated) tag of the entry consulted. */
    Addr storedTag = 0;
    bool storedValid = false;
    /** Full incoming tag of the missing line. */
    Tag incomingTag{};
    MissClass verdict = MissClass::Capacity;
};

/**
 * Observer invoked on every classify() call.  Off by default; cost
 * when unset is one branch on an empty std::function.
 */
using MctLookupHook = std::function<void(const MctLookupEvent &)>;

/** Per-set table of most-recently-evicted tags. */
class MissClassificationTable
{
  public:
    /**
     * @param num_sets one entry per cache set
     * @param tag_bits how many low-order tag bits to store;
     *        0 means store the full tag
     */
    explicit MissClassificationTable(std::size_t num_sets,
                                     unsigned tag_bits = 0);

    /** Check the parameters the constructor would reject. */
    static Status validate(std::size_t num_sets, unsigned tag_bits);

    /**
     * Classify a miss to @p set with full tag @p tag.
     *
     * Pure lookup; does not modify the table.  Call on every cache
     * miss before the fill updates the table via recordEviction().
     */
    MissClass
    classify(SetIndex set, Tag tag) const
    {
        const Entry &e = entries[set.value()];
        bool conflict = e.valid && e.storedTag == maskTag(tag);
        MissClass verdict =
            conflict ? MissClass::Conflict : MissClass::Capacity;
        ++setLookups_[set.value()];
        if (conflict)
            ++setConflicts_[set.value()];
        if (hook_)
            hook_({set, e.storedTag, e.valid, tag, verdict});
        return verdict;
    }

    /** Convenience: classify(set, tag) == Conflict. */
    bool
    isConflictMiss(SetIndex set, Tag tag) const
    {
        return classify(set, tag) == MissClass::Conflict;
    }

    /**
     * Record that the line with full tag @p tag was evicted from
     * @p set (or, for the exclusion policy's modification in §5.3,
     * that it was diverted to the bypass buffer instead of being
     * cached — same table update either way).
     */
    void
    recordEviction(SetIndex set, Tag tag)
    {
        Entry &e = entries[set.value()];
        e.valid = true;
        e.storedTag = maskTag(tag);
    }

    /** Drop the entry for @p set (e.g. after an invalidate). */
    void
    invalidateEntry(SetIndex set)
    {
        entries[set.value()].valid = false;
    }

    /** @return the stored-tag width in bits (0 = full tag). */
    unsigned tagBits() const { return tagBits_; }

    std::size_t numSets() const { return entries.size(); }

    /**
     * Storage cost in bits: stored tag bits + a valid bit, per set.
     * (The optional per-line conflict bit is accounted by the cache.)
     */
    std::size_t
    storageBits() const
    {
        unsigned per_entry = (tagBits_ == 0 ? 64u : tagBits_) + 1u;
        return entries.size() * per_entry;
    }

    /** Forget everything (entries, histograms; the hook stays). */
    void clear();

    // Observability --------------------------------------------------

    /**
     * Attach @p hook, called on every classify() with the consulted
     * entry and the verdict.  Pass nullptr/empty to detach.  Intended
     * for the obs-layer event trace; keep the callback cheap.
     */
    void setLookupHook(MctLookupHook hook) { hook_ = std::move(hook); }

    /** Lookups (classify calls) per set, indexed by set. */
    const std::vector<Count> &setLookupHistogram() const
    {
        return setLookups_;
    }

    /** Conflict verdicts per set, indexed by set. */
    const std::vector<Count> &setConflictHistogram() const
    {
        return setConflicts_;
    }

  private:
    struct Entry
    {
        /** Truncated-tag domain: low maskTag() bits of a full Tag. */
        Addr storedTag = 0;
        bool valid = false;
    };

    Addr
    maskTag(Tag tag) const
    {
        return tagBits_ == 0 ? tag.value() : (tag.value() & tagMask);
    }

    std::vector<Entry> entries;
    unsigned tagBits_;
    Addr tagMask;
    MctLookupHook hook_;
    // Lookup-side statistics; mutable because classify() is logically
    // const (a pure lookup) but still counts itself.
    mutable std::vector<Count> setLookups_;
    mutable std::vector<Count> setConflicts_;
};

} // namespace ccm

#endif // CCM_MCT_MCT_HH
