#include "mct/classify_run.hh"

#include <array>

#include "cache/cache.hh"
#include "mct/oracle.hh"
#include "mct/shadow.hh"
#include "trace/batch_reader.hh"

namespace ccm
{

ClassifyResult
classifyRun(TraceSource &trace, const ClassifyConfig &cfg)
{
    CacheGeometry geom(cfg.cacheBytes, cfg.assoc, cfg.lineBytes);
    Cache cache(geom);
    // Depth 1 is exactly the MCT; deeper is the shadow directory.
    ShadowDirectory mct(geom.numSets(), cfg.mctDepth, cfg.mctTagBits);
    if (cfg.lookupHook)
        mct.setLookupHook(cfg.lookupHook);
    OracleClassifier oracle(geom.numLines());

    ClassifyResult res;

    trace.reset();
    // Loop-driven pipeline: pull fixed-size batches and walk them in
    // place (no per-record copy-out), the hot-path delivery shape.
    std::array<MemRecord, maxTraceBatch> buf;
    const std::size_t batch = traceBatchSize();
    for (std::size_t n; (n = trace.nextBatch(buf.data(), batch)) > 0;) {
        for (std::size_t i = 0; i < n; ++i) {
            const MemRecord &r = buf[i];
            if (!r.isMem())
                continue;
            ++res.references;

            const ByteAddr addr = r.dataAddr();
            LineAddr line = geom.lineOf(addr);
            bool hit = cache.access(addr, r.isStore());
            MissClass oracle_cls = oracle.observe(line, !hit);
            if (cfg.observer)
                cfg.observer->onReference(!hit);
            if (hit)
                continue;

            ++res.misses;
            SetIndex set = geom.setOf(addr);
            Tag tag = geom.tagOf(addr);

            MissClass mct_cls = mct.classify(set, tag);
            res.scorer.record(mct_cls, oracle_cls);
            if (cfg.observer)
                cfg.observer->onMiss(set, tag, mct_cls, oracle_cls);

            // Fill and remember the evicted tag, exactly as the
            // hardware would: MCT is written only with evicted-line
            // tags.
            FillResult ev = cache.fill(addr, isConflict(mct_cls),
                                       r.isStore());
            if (ev.valid)
                mct.recordEviction(set, geom.tagOf(ev.lineAddr));
        }
    }

    res.missRate = safeRatio(res.misses, res.references);
    return res;
}

} // namespace ccm
