/**
 * @file
 * Pseudo-associative (column-associative) cache — Agarwal & Pudar,
 * applied with MCT-guided replacement in paper §5.4.
 *
 * The cache is physically direct-mapped.  An address's *primary*
 * location is its normal set; its *secondary* location is the set with
 * the top index bit flipped.  Primary hits cost the direct-mapped hit
 * time; secondary hits cost extra and trigger a swap of the two lines
 * so the hot line moves to its primary slot.
 *
 * Replacement on a miss considers both candidate lines.  The paper's
 * MCT modification: the MCT entry at the *primary* index holds the tag
 * of the line most recently evicted from that index (even from the
 * secondary position); a new line's conflict bit is set only when it
 * matches at its primary location.  When exactly one of the two
 * eviction candidates has its conflict bit set, the *other* is evicted
 * and the survivor's bit is cleared (a one-shot reprieve); when both
 * are set, plain LRU picks and the survivor keeps its bit.
 */

#ifndef CCM_PSEUDO_PSEUDO_CACHE_HH
#define CCM_PSEUDO_PSEUDO_CACHE_HH

#include <vector>

#include "cache/geometry.hh"
#include "cache/line.hh"
#include "common/stats.hh"
#include "mct/mct.hh"

namespace ccm
{

/** Outcome of one pseudo-associative access. */
struct PseudoAccess
{
    enum class Kind
    {
        PrimaryHit,
        SecondaryHit,   ///< implies a line swap
        Miss,
    };
    Kind kind = Kind::Miss;
    /** For a miss: whether the MCT classified it as a conflict. */
    bool wasConflict = false;
    /** For a miss: the evicted line, if any. */
    bool evictedValid = false;
    LineAddr evictedLineAddr{};
    bool evictedDirty = false;
};

/** Column-associative cache with optional MCT-guided replacement. */
class PseudoAssocCache
{
  public:
    /**
     * @param geometry direct-mapped geometry (assoc must be 1)
     * @param use_mct_replacement false = baseline pseudo-associative
     *        cache (LRU between the two candidates)
     * @param mct_tag_bits stored-tag width (0 = full)
     */
    PseudoAssocCache(const CacheGeometry &geometry,
                     bool use_mct_replacement,
                     unsigned mct_tag_bits = 0);

    /**
     * Access @p addr, filling on a miss (this cache owns its fill
     * policy because placement and replacement are intertwined).
     */
    PseudoAccess access(ByteAddr addr, bool is_store);

    /** Probe only (no state change): is the line resident? */
    bool probe(ByteAddr addr) const;

    const CacheGeometry &geometry() const { return geom; }

    // Statistics -----------------------------------------------------
    Count primaryHits() const { return nPrimary; }
    Count secondaryHits() const { return nSecondary; }
    Count misses() const { return nMisses; }
    Count swaps() const { return nSwaps; }
    Count accesses() const { return nPrimary + nSecondary + nMisses; }
    double missRate() const { return safeRatio(nMisses, accesses()); }
    /** Misses where the conflict bit vetoed the LRU choice. */
    Count replacementOverrides() const { return nOverrides; }

    void clear();

  private:
    std::size_t secondaryIndex(std::size_t set) const;
    /** Line-aligned address of the line stored in @p set. */
    LineAddr residentLineAddr(std::size_t set) const;

    CacheGeometry geom;
    bool useMct;
    MissClassificationTable mct;
    std::vector<CacheLine> lines;   ///< one line per set (DM)
    Count tick = 0;

    Count nPrimary = 0;
    Count nSecondary = 0;
    Count nMisses = 0;
    Count nSwaps = 0;
    Count nOverrides = 0;
};

} // namespace ccm

#endif // CCM_PSEUDO_PSEUDO_CACHE_HH
