#include "pseudo/pseudo_cache.hh"

#include "common/logging.hh"

namespace ccm
{

namespace
{

/** Lines are identified by address >> offsetBits ("line tag"), which
 *  keeps tag+index together so a displaced line is unambiguous across
 *  its two candidate sets; the pseudo-associative MCT stores these
 *  line tags (tag+index), not plain tags. */
Tag
lineTagOf(const CacheGeometry &g, ByteAddr addr)
{
    return Tag{addr.value() >> g.offsetBits()};
}

/** Inverse of lineTagOf. */
LineAddr
lineAddrOfLineTag(const CacheGeometry &g, Tag line_tag)
{
    return LineAddr{line_tag.value() << g.offsetBits()};
}

} // namespace

PseudoAssocCache::PseudoAssocCache(const CacheGeometry &geometry,
                                   bool use_mct_replacement,
                                   unsigned mct_tag_bits)
    : geom(geometry), useMct(use_mct_replacement),
      mct(geometry.numSets(), mct_tag_bits),
      lines(geometry.numSets())
{
    if (geometry.assoc() != 1)
        ccm_fatal("pseudo-associative cache must be built on a "
                  "direct-mapped geometry");
    if (geometry.numSets() < 2)
        ccm_fatal("pseudo-associative cache needs >= 2 sets");
}

std::size_t
PseudoAssocCache::secondaryIndex(std::size_t set) const
{
    return set ^ (geom.numSets() >> 1);
}

LineAddr
PseudoAssocCache::residentLineAddr(std::size_t set) const
{
    return lineAddrOfLineTag(geom, lines[set].tag);
}

bool
PseudoAssocCache::probe(ByteAddr addr) const
{
    Tag lt = lineTagOf(geom, addr);
    std::size_t p = geom.setOf(addr).value();
    std::size_t s = secondaryIndex(p);
    return (lines[p].valid && lines[p].tag == lt) ||
           (lines[s].valid && lines[s].tag == lt);
}

PseudoAccess
PseudoAssocCache::access(ByteAddr addr, bool is_store)
{
    ++tick;
    const Tag lt = lineTagOf(geom, addr);
    const std::size_t p = geom.setOf(addr).value();
    const std::size_t s = secondaryIndex(p);

    PseudoAccess out;

    if (lines[p].valid && lines[p].tag == lt) {
        lines[p].lastUse = tick;
        if (is_store)
            lines[p].dirty = true;
        ++nPrimary;
        out.kind = PseudoAccess::Kind::PrimaryHit;
        return out;
    }

    if (lines[s].valid && lines[s].tag == lt) {
        // Secondary hit: swap so the hot line lands in its primary
        // slot (its conflict bit travels with it).
        std::swap(lines[p], lines[s]);
        lines[p].lastUse = tick;
        if (is_store)
            lines[p].dirty = true;
        ++nSecondary;
        ++nSwaps;
        out.kind = PseudoAccess::Kind::SecondaryHit;
        return out;
    }

    // Miss.  Classify at the primary location before any update.
    ++nMisses;
    out.kind = PseudoAccess::Kind::Miss;
    const bool new_conflict =
        useMct && mct.isConflictMiss(SetIndex{p}, lt);
    out.wasConflict = new_conflict;

    CacheLine &lp = lines[p];
    CacheLine &ls = lines[s];

    auto install_primary = [&](bool set_dirty) {
        lp.valid = true;
        lp.tag = lt;
        lp.dirty = set_dirty;
        lp.conflictBit = new_conflict;
        lp.lastUse = tick;
        lp.insertTime = tick;
    };

    auto record_eviction = [&](const CacheLine &victim,
                               std::size_t physical_set) {
        out.evictedValid = true;
        LineAddr victim_line = lineAddrOfLineTag(geom, victim.tag);
        out.evictedLineAddr = victim_line;
        out.evictedDirty = victim.dirty;
        // "The MCT entry at a particular index holds the tag of the
        // line most recently evicted from that index, even if the
        // line was in its secondary position": the line's index is
        // its *primary* index — that is where a later miss on it
        // looks — so a line evicted while sitting in its secondary
        // slot is still recorded at its primary entry.
        (void)physical_set;
        mct.recordEviction(geom.setOf(victim_line), victim.tag);
    };

    if (!lp.valid) {
        install_primary(is_store);
        return out;
    }
    if (!ls.valid) {
        // Demote the primary resident to the free secondary slot.
        ls = lp;
        install_primary(is_store);
        return out;
    }

    // Both candidates valid: pick a victim.
    bool evict_secondary;
    if (useMct && (lp.conflictBit != ls.conflictBit)) {
        // Exactly one is protected: evict the other and spend the
        // survivor's reprieve.
        evict_secondary = lp.conflictBit;
        (lp.conflictBit ? lp : ls).conflictBit = false;
        ++nOverrides;
    } else {
        evict_secondary = ls.lastUse < lp.lastUse;
    }

    if (evict_secondary) {
        record_eviction(ls, s);
        ls = lp;                    // demote primary resident
        install_primary(is_store);
    } else {
        record_eviction(lp, p);
        install_primary(is_store);  // secondary untouched
    }
    return out;
}

void
PseudoAssocCache::clear()
{
    for (auto &l : lines)
        l = CacheLine{};
    mct.clear();
    tick = 0;
    nPrimary = nSecondary = nMisses = nSwaps = nOverrides = 0;
}

} // namespace ccm
