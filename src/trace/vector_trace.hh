/**
 * @file
 * An in-memory trace: a vector of records replayed in order.  Useful
 * for tests (hand-written access patterns) and for capturing a
 * generator's output once and replaying it against many configurations.
 */

#ifndef CCM_TRACE_VECTOR_TRACE_HH
#define CCM_TRACE_VECTOR_TRACE_HH

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "trace/source.hh"

namespace ccm
{

/** TraceSource backed by a std::vector of records. */
class VectorTrace : public TraceSource
{
  public:
    VectorTrace() = default;

    VectorTrace(std::string trace_name, std::vector<MemRecord> recs)
        : records(std::move(recs)), label(std::move(trace_name))
    {}

    /** Capture every record of @p src (which is reset first). */
    static VectorTrace capture(TraceSource &src);

    bool next(MemRecord &out) override;
    std::size_t nextBatch(MemRecord *out, std::size_t n) override;
    void reset() override { pos = 0; }
    std::string name() const override { return label; }

    /** Append one record (builder-style use in tests). */
    void push(const MemRecord &r) { records.push_back(r); }

    /** Append a load to @p addr (pc defaults to the record index). */
    void pushLoad(Addr addr, Addr pc = invalidAddr);
    /** Append a store to @p addr. */
    void pushStore(Addr addr, Addr pc = invalidAddr);
    /** Append @p n non-memory instructions. */
    void pushNonMem(std::size_t n = 1);

    std::size_t size() const { return records.size(); }
    const MemRecord &at(std::size_t i) const { return records.at(i); }

    void setName(std::string n) { label = std::move(n); }

  private:
    std::vector<MemRecord> records;
    std::size_t pos = 0;
    std::string label = "vector";
};

} // namespace ccm

#endif // CCM_TRACE_VECTOR_TRACE_HH
