/**
 * @file
 * In-memory traces: VectorTrace owns a vector of records replayed in
 * order (hand-written test patterns, captured generator output), and
 * RecordSpanTrace replays a borrowed span of records without copying
 * — the shape the sharded classify engine uses to hand one captured
 * trace to K workers at once.
 */

#ifndef CCM_TRACE_VECTOR_TRACE_HH
#define CCM_TRACE_VECTOR_TRACE_HH

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "trace/source.hh"

namespace ccm
{

/** TraceSource backed by a std::vector of records. */
class VectorTrace : public TraceSource
{
  public:
    VectorTrace() = default;

    VectorTrace(std::string trace_name, std::vector<MemRecord> recs)
        : records_(std::move(recs)), label(std::move(trace_name))
    {}

    /** Capture every record of @p src (which is reset first). */
    static VectorTrace capture(TraceSource &src);

    bool next(MemRecord &out) override;
    std::size_t nextBatch(MemRecord *out, std::size_t n) override;
    void reset() override { pos = 0; }
    std::string name() const override { return label; }

    /** Append one record (builder-style use in tests). */
    void push(const MemRecord &r) { records_.push_back(r); }

    /** Append a load to @p addr (pc defaults to the record index). */
    void pushLoad(Addr addr, Addr pc = invalidAddr);
    /** Append a store to @p addr. */
    void pushStore(Addr addr, Addr pc = invalidAddr);
    /** Append @p n non-memory instructions. */
    void pushNonMem(std::size_t n = 1);

    std::size_t size() const { return records_.size(); }
    const MemRecord &at(std::size_t i) const { return records_.at(i); }

    /** The backing record sequence (span views, conversions). */
    const std::vector<MemRecord> &records() const { return records_; }

    void setName(std::string n) { label = std::move(n); }

  private:
    std::vector<MemRecord> records_;
    std::size_t pos = 0;
    std::string label = "vector";
};

/**
 * TraceSource view over records owned by someone else.  Copy-free:
 * the caller guarantees the span outlives the view.  Several views
 * over the same records are independent cursors, which is exactly
 * what the sharded classify engine needs — one captured trace, K
 * concurrent readers.
 */
class RecordSpanTrace : public TraceSource
{
  public:
    RecordSpanTrace(std::string trace_name, const MemRecord *data,
                    std::size_t count)
        : data_(data), count_(count), label(std::move(trace_name))
    {}

    RecordSpanTrace(std::string trace_name,
                    const std::vector<MemRecord> &recs)
        : RecordSpanTrace(std::move(trace_name), recs.data(),
                          recs.size())
    {}

    bool next(MemRecord &out) override;
    std::size_t nextBatch(MemRecord *out, std::size_t n) override;
    void reset() override { pos = 0; }
    std::string name() const override { return label; }

    std::size_t size() const { return count_; }

  private:
    const MemRecord *data_ = nullptr;
    std::size_t count_ = 0;
    std::size_t pos = 0;
    std::string label = "span";
};

} // namespace ccm

#endif // CCM_TRACE_VECTOR_TRACE_HH
