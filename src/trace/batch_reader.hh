/**
 * @file
 * Buffered, batch-pulling front end over a TraceSource.
 *
 * The simulation drivers (core timing loop, SMT core, classification
 * runs, the page-remap replay) consume tens of millions of records
 * per run; pulling them one virtual next() at a time makes the
 * indirect call and its branch the hottest instruction in the repo.
 * BatchReader pulls fixed-size batches through nextBatch() into a
 * local buffer and hands records out through a non-virtual inline
 * next(), so the virtual dispatch amortizes across ~256 records while
 * the record sequence stays exactly the one next() would produce.
 *
 * The batch size is a process-wide knob (default 256, env override
 * CCM_TRACE_BATCH, setTraceBatchSize() for benches/tests); 1 degrades
 * to the historical record-at-a-time behaviour, which tools/ci.sh
 * uses to prove the batched path is byte-identical.
 */

#ifndef CCM_TRACE_BATCH_READER_HH
#define CCM_TRACE_BATCH_READER_HH

#include <array>
#include <cstddef>

#include "trace/source.hh"

namespace ccm
{

/** Hard upper bound on any delivery batch (buffer size). */
inline constexpr std::size_t maxTraceBatch = 256;

/**
 * Process-wide delivery batch size in [1, maxTraceBatch].  First use
 * reads $CCM_TRACE_BATCH (clamped); 1 disables read-ahead.
 */
std::size_t traceBatchSize();

/** Override the batch size (clamped to [1, maxTraceBatch]). */
void setTraceBatchSize(std::size_t n);

/** Batch-buffered reader; does not reset() the source. */
class BatchReader
{
  public:
    explicit BatchReader(TraceSource &src,
                         std::size_t batch = traceBatchSize())
        : src_(src),
          batch_(batch == 0          ? 1
                 : batch > maxTraceBatch ? maxTraceBatch
                                         : batch)
    {
    }

    /** Same sequence and semantics as TraceSource::next(). */
    bool
    next(MemRecord &out)
    {
        if (pos == count && !refill())
            return false;
        out = buf[pos++];
        return true;
    }

  private:
    bool
    refill()
    {
        // A short batch is not end-of-trace (see the nextBatch
        // contract); only an empty one is, so a short refill simply
        // leads to another refill on a later next().
        count = src_.nextBatch(buf.data(), batch_);
        pos = 0;
        return count > 0;
    }

    TraceSource &src_;
    std::size_t batch_;
    std::size_t pos = 0;
    std::size_t count = 0;
    std::array<MemRecord, maxTraceBatch> buf;
};

} // namespace ccm

#endif // CCM_TRACE_BATCH_READER_HH
