/**
 * @file
 * Binary trace file I/O.
 *
 * Format: 16-byte header ("CCMTRACE", u32 version, u32 reserved)
 * followed by packed little-endian records:
 *   u64 pc | u64 addr | u8 type | u8 flags | 6 bytes padding
 * 24 bytes per record.  Simple enough to write from any tracer (e.g. a
 * Pin/DynamoRIO tool or a converted ChampSim trace) and replay here.
 */

#ifndef CCM_TRACE_FILE_TRACE_HH
#define CCM_TRACE_FILE_TRACE_HH

#include <cstdio>
#include <string>
#include <vector>

#include "trace/source.hh"

namespace ccm
{

/** Write records to a binary trace file. */
class TraceFileWriter
{
  public:
    /** Open @p path for writing; fatal on failure. */
    explicit TraceFileWriter(const std::string &path);
    ~TraceFileWriter();

    TraceFileWriter(const TraceFileWriter &) = delete;
    TraceFileWriter &operator=(const TraceFileWriter &) = delete;

    /** Append one record. */
    void write(const MemRecord &r);

    /** Drain @p src (reset first) into the file; @return record count. */
    std::size_t writeAll(TraceSource &src);

    /** Flush and close; implied by destruction. */
    void close();

  private:
    std::FILE *fp = nullptr;
    std::string path_;
};

/**
 * Replay a binary trace file.  The whole file is validated and loaded
 * at construction (traces here are small); fatal on malformed input.
 */
class TraceFileReader : public TraceSource
{
  public:
    explicit TraceFileReader(const std::string &path);

    bool next(MemRecord &out) override;
    void reset() override { pos = 0; }
    std::string name() const override { return label; }

    std::size_t size() const { return records.size(); }

  private:
    std::vector<MemRecord> records;
    std::size_t pos = 0;
    std::string label;
};

} // namespace ccm

#endif // CCM_TRACE_FILE_TRACE_HH
