/**
 * @file
 * Binary trace file I/O.
 *
 * Two on-disk encodings share the 16-byte header shape
 * (8-byte magic, u32 version, u32 reserved):
 *
 *  - "CCMTRACE": packed little-endian records,
 *      u64 pc | u64 addr | u8 type | u8 flags | 6 bytes padding
 *    24 bytes per record.  Simple enough to write from any tracer
 *    (e.g. a Pin/DynamoRIO tool or a converted ChampSim trace).
 *  - "CCMTRACD": delta-compressed records (control byte + zigzag
 *    LEB128 varints of pc/addr deltas; trace/delta.hh), a fraction of
 *    the packed size for real traces.
 *
 * Readers sniff the magic, so every consumer takes either encoding
 * transparently.  The full layouts and their error-recovery semantics
 * are documented in docs/TRACE_FORMAT.md.
 *
 * Reading comes in two flavours: the strict constructor (any defect
 * is fatal — unchanged legacy behaviour) and TraceFileReader::open,
 * which returns a Status instead of dying and can optionally tolerate
 * bounded corruption: garbage bytes are resynced past (up to a
 * configurable budget) and a truncated tail is demoted to a warning.
 * Resync only exists for the packed encoding — a delta stream decodes
 * relative to all earlier bytes, so mid-stream damage is fatal there
 * regardless of budget.
 */

#ifndef CCM_TRACE_FILE_TRACE_HH
#define CCM_TRACE_FILE_TRACE_HH

#include <cstdio>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.hh"
#include "trace/delta.hh"
#include "trace/source.hh"

namespace ccm
{

/** Which on-disk record encoding a trace file uses. */
enum class TraceEncoding
{
    Packed, ///< "CCMTRACE": fixed 24-byte records, resyncable
    Delta,  ///< "CCMTRACD": varint pc/addr deltas, not resyncable
};

/** Stable lower-case name ("packed" / "delta"). */
const char *toString(TraceEncoding e);

/** Write records to a binary trace file. */
class TraceFileWriter
{
  public:
    /** Open @p path for writing; fatal on failure. */
    explicit TraceFileWriter(const std::string &path,
                             TraceEncoding encoding =
                                 TraceEncoding::Packed);
    ~TraceFileWriter();

    TraceFileWriter(const TraceFileWriter &) = delete;
    TraceFileWriter &operator=(const TraceFileWriter &) = delete;

    /** Open @p path for writing; error status instead of dying. */
    static Expected<std::unique_ptr<TraceFileWriter>>
    create(const std::string &path,
           TraceEncoding encoding = TraceEncoding::Packed);

    /** Append one record; fatal on a short write. */
    void write(const MemRecord &r);

    /** Append one record; error status on a short write. */
    Status writeChecked(const MemRecord &r);

    /** Drain @p src (reset first) into the file; @return record count. */
    std::size_t writeAll(TraceSource &src);

    /**
     * Flush and close, reporting flush/close failures (a full disk
     * often only surfaces here).  Safe to call repeatedly; the
     * destructor calls it and warns on error.
     */
    Status close();

    TraceEncoding encoding() const { return encoding_; }

  private:
    struct Unchecked
    {
    };
    TraceFileWriter(Unchecked, const std::string &path,
                    TraceEncoding encoding);

    Status openFile();

    std::FILE *fp = nullptr;
    std::string path_;
    TraceEncoding encoding_ = TraceEncoding::Packed;
    /** Delta predictor state (unused for packed writes). */
    delta::Codec codec_;
};

/** What, if anything, is wrong with a trace file. */
enum class TraceDefect
{
    None = 0,
    IoError,         ///< cannot open/read the file
    ZeroLength,      ///< file is completely empty
    TruncatedHeader, ///< shorter than the 16-byte header
    BadMagic,        ///< leading bytes are not "CCMTRACE"
    BadVersion,      ///< recognized header, unsupported version
    PartialTail,     ///< trailing bytes form no complete record
    MidFileGarbage,  ///< implausible record bytes inside the body
    BadControlByte,  ///< delta record with an invalid control byte
    BadVarint,       ///< delta record with an overlong varint
};

/** Stable lower-case name of @p d (e.g. "bad-magic"). */
const char *traceDefectName(TraceDefect d);

/** Knobs for tolerant trace loading (defaults are fully strict). */
struct TraceReadOptions
{
    /**
     * Maximum number of resync events (runs of garbage bytes skipped
     * to the next plausible record boundary).  0 = any garbage is an
     * error.
     */
    std::size_t corruptionBudget = 0;

    /** Treat a trailing partial record as end-of-trace + warning. */
    bool tolerateTruncatedTail = false;

    /** Suppress the warnings normally emitted for tolerated defects. */
    bool quiet = false;
};

/** Diagnostics from one load, MemStats-style dumpable. */
struct TraceReadStats
{
    Count recordsRead = 0;
    Count resyncEvents = 0;   ///< garbage runs skipped (packed only)
    Count bytesSkipped = 0;   ///< total garbage bytes passed over
    bool truncatedTail = false;

    /** Which encoding the header announced (meaningful when read). */
    TraceEncoding encoding = TraceEncoding::Packed;

    /** First defect seen, including ones that were tolerated. */
    TraceDefect firstDefect = TraceDefect::None;

    bool clean() const
    {
        return firstDefect == TraceDefect::None;
    }

    /** Write "trace.<stat> <value>" lines (gem5-style stats dump). */
    void dump(std::ostream &os, const char *prefix = "trace") const;
};

/**
 * Load @p path into @p out according to @p opts.
 *
 * On error @p out is left empty; @p stats is always filled in (its
 * firstDefect identifies what went wrong or what was tolerated).
 */
Status loadTraceFile(const std::string &path,
                     const TraceReadOptions &opts,
                     std::vector<MemRecord> &out,
                     TraceReadStats &stats);

/**
 * Classify @p path without failing: loads with unlimited corruption
 * budget and tail tolerance and reports the first defect found
 * (TraceDefect::None for a clean file).  @p stats, when non-null,
 * receives the full load diagnostics.
 */
TraceDefect probeTraceFile(const std::string &path,
                           TraceReadStats *stats = nullptr);

/**
 * Replay a binary trace file.  The whole file is validated and loaded
 * up front (traces here are small); the legacy constructor is fatal
 * on malformed input, open() reports a Status instead.
 */
class TraceFileReader : public TraceSource
{
  public:
    /** Strict load; fatal on any defect. */
    explicit TraceFileReader(const std::string &path);

    /** Load according to @p opts; error status instead of dying. */
    static Expected<std::unique_ptr<TraceFileReader>>
    open(const std::string &path, const TraceReadOptions &opts = {});

    bool next(MemRecord &out) override;
    std::size_t nextBatch(MemRecord *out, std::size_t n) override;
    void reset() override { pos = 0; }
    std::string name() const override { return label; }

    std::size_t size() const { return records_.size(); }

    /** The decoded record sequence (shard views, conversions). */
    const std::vector<MemRecord> &records() const { return records_; }

    /** Diagnostics from the load (skips, resyncs, truncation). */
    const TraceReadStats &readStats() const { return stats_; }

  private:
    TraceFileReader() = default;

    std::vector<MemRecord> records_;
    std::size_t pos = 0;
    std::string label;
    TraceReadStats stats_;
};

} // namespace ccm

#endif // CCM_TRACE_FILE_TRACE_HH
