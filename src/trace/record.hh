/**
 * @file
 * The unit of work flowing from a workload into the simulated core:
 * one dynamic instruction, optionally carrying a memory reference.
 *
 * This replaces the paper's emulation-driven Alpha instruction stream
 * (see DESIGN.md, substitutions table).  All of the mechanisms studied
 * by the paper observe only (pc, address, load/store) on cache misses,
 * so this record carries exactly that, plus a dependence flag that lets
 * the timing model serialize pointer-chasing loads.
 */

#ifndef CCM_TRACE_RECORD_HH
#define CCM_TRACE_RECORD_HH

#include <cstdint>

#include "common/addr_types.hh"
#include "common/types.hh"

namespace ccm
{

/** Kind of dynamic instruction. */
enum class RecordType : std::uint8_t
{
    NonMem = 0,  ///< no data-memory access (ALU, branch, ...)
    Load = 1,
    Store = 2,
};

/**
 * One dynamic instruction in a trace.
 *
 * The pc/addr fields stay raw Addr because this struct is the wire
 * format (workload generators and trace files produce it with plain
 * integer arithmetic); consumers enter the typed address domains
 * through pcAddr()/dataAddr() at the simulation boundary.
 */
struct MemRecord
{
    Addr pc = 0;              ///< program counter of the instruction
    Addr addr = 0;            ///< effective address (loads/stores only)
    RecordType type = RecordType::NonMem;
    /**
     * True when this load's address depends on the value of the
     * previous load (linked-list traversal); the core may not issue it
     * until that load completes.
     */
    bool dependsOnPrevLoad = false;

    /** The instruction address as a typed byte address. */
    ByteAddr pcAddr() const { return ByteAddr{pc}; }

    /** The effective data address as a typed byte address. */
    ByteAddr dataAddr() const { return ByteAddr{addr}; }

    bool isMem() const { return type != RecordType::NonMem; }
    bool isLoad() const { return type == RecordType::Load; }
    bool isStore() const { return type == RecordType::Store; }
};

} // namespace ccm

#endif // CCM_TRACE_RECORD_HH
