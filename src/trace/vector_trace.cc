#include "trace/vector_trace.hh"

namespace ccm
{

VectorTrace
VectorTrace::capture(TraceSource &src)
{
    VectorTrace t;
    t.setName(src.name());
    src.reset();
    MemRecord r;
    while (src.next(r))
        t.push(r);
    return t;
}

bool
VectorTrace::next(MemRecord &out)
{
    if (pos >= records.size())
        return false;
    out = records[pos++];
    return true;
}

void
VectorTrace::pushLoad(Addr addr, Addr pc)
{
    MemRecord r;
    r.pc = pc == invalidAddr ? records.size() * 4 : pc;
    r.addr = addr;
    r.type = RecordType::Load;
    records.push_back(r);
}

void
VectorTrace::pushStore(Addr addr, Addr pc)
{
    MemRecord r;
    r.pc = pc == invalidAddr ? records.size() * 4 : pc;
    r.addr = addr;
    r.type = RecordType::Store;
    records.push_back(r);
}

void
VectorTrace::pushNonMem(std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        MemRecord r;
        r.pc = records.size() * 4;
        r.type = RecordType::NonMem;
        records.push_back(r);
    }
}

} // namespace ccm
