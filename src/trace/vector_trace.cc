#include "trace/vector_trace.hh"

#include <algorithm>

#include "trace/batch_reader.hh"

namespace ccm
{

VectorTrace
VectorTrace::capture(TraceSource &src)
{
    VectorTrace t;
    t.setName(src.name());
    src.reset();
    MemRecord chunk[maxTraceBatch];
    std::size_t got;
    while ((got = src.nextBatch(chunk, maxTraceBatch)) > 0)
        t.records_.insert(t.records_.end(), chunk, chunk + got);
    return t;
}

bool
VectorTrace::next(MemRecord &out)
{
    if (pos >= records_.size())
        return false;
    out = records_[pos++];
    return true;
}

std::size_t
VectorTrace::nextBatch(MemRecord *out, std::size_t n)
{
    const std::size_t got = std::min(n, records_.size() - pos);
    std::copy_n(records_.begin() +
                    static_cast<std::ptrdiff_t>(pos),
                got, out);
    pos += got;
    return got;
}

void
VectorTrace::pushLoad(Addr addr, Addr pc)
{
    MemRecord r;
    r.pc = pc == invalidAddr ? records_.size() * 4 : pc;
    r.addr = addr;
    r.type = RecordType::Load;
    records_.push_back(r);
}

void
VectorTrace::pushStore(Addr addr, Addr pc)
{
    MemRecord r;
    r.pc = pc == invalidAddr ? records_.size() * 4 : pc;
    r.addr = addr;
    r.type = RecordType::Store;
    records_.push_back(r);
}

void
VectorTrace::pushNonMem(std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        MemRecord r;
        r.pc = records_.size() * 4;
        r.type = RecordType::NonMem;
        records_.push_back(r);
    }
}

bool
RecordSpanTrace::next(MemRecord &out)
{
    if (pos >= count_)
        return false;
    out = data_[pos++];
    return true;
}

std::size_t
RecordSpanTrace::nextBatch(MemRecord *out, std::size_t n)
{
    const std::size_t got = std::min(n, count_ - pos);
    std::copy_n(data_ + pos, got, out);
    pos += got;
    return got;
}

} // namespace ccm
