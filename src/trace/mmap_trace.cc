#include "trace/mmap_trace.hh"

#include <cerrno>
#include <cstring>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "trace/wire.hh"

#if defined(__unix__) || defined(__APPLE__)
#define CCM_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define CCM_HAVE_MMAP 0
#endif

namespace ccm
{

namespace
{

constexpr char packedMagic[8] = {'C', 'C', 'M', 'T', 'R', 'A', 'C',
                                 'E'};
constexpr std::uint32_t traceVersion = 1;
constexpr std::size_t headerBytes = 16;

/** Bytes handed to simulation via the zero-copy lane, process-wide. */
obs::Counter &
ingestBytesCounter()
{
    static obs::Counter &c = obs::MetricsRegistry::global().counter(
        "ccm_ingest_bytes_total",
        "Trace bytes mapped for zero-copy ingestion");
    return c;
}

} // namespace

MappedTraceReader::~MappedTraceReader()
{
#if CCM_HAVE_MMAP
    if (map_)
        ::munmap(map_, mapBytes_);
#endif
}

Status
MappedTraceReader::validateBody(const std::string &path)
{
    if (stats_.encoding == TraceEncoding::Packed) {
        if (bodyBytes_ % wire::recordBytes != 0) {
            return Status::corruptTrace(
                "trailing partial record in mapped trace ", path, " (",
                bodyBytes_ % wire::recordBytes, " bytes)");
        }
        const std::size_t n = bodyBytes_ / wire::recordBytes;
        for (std::size_t i = 0; i < n; ++i) {
            if (!wire::plausibleRecord(body_ + i * wire::recordBytes)) {
                return Status::corruptTrace(
                    "implausible record bytes at offset ",
                    headerBytes + i * wire::recordBytes,
                    " in mapped trace ", path);
            }
        }
        count_ = n;
        stats_.recordsRead = n;
        return Status::ok();
    }

    // Delta: the only way to prove every byte decodes is to decode it.
    // One sequential pass touches each page exactly once, and after it
    // next()/nextBatch() can decode in place without a failure path.
    delta::Codec codec;
    const std::uint8_t *p = body_;
    const std::uint8_t *end = body_ + bodyBytes_;
    std::size_t n = 0;
    while (p < end) {
        MemRecord r;
        std::size_t used = 0;
        switch (delta::decodeRecord(codec, p, end, r, used)) {
          case delta::DecodeStatus::Ok:
            p += used;
            ++n;
            continue;
          case delta::DecodeStatus::NeedMore:
            return Status::corruptTrace(
                "trailing partial record in mapped delta trace ", path);
          case delta::DecodeStatus::BadControlByte:
            return Status::corruptTrace(
                "bad control byte at offset ",
                headerBytes + static_cast<std::size_t>(p - body_),
                " in mapped delta trace ", path);
          case delta::DecodeStatus::BadVarint:
            return Status::corruptTrace(
                "overlong varint at offset ",
                headerBytes + static_cast<std::size_t>(p - body_),
                " in mapped delta trace ", path);
        }
    }
    count_ = n;
    stats_.recordsRead = n;
    return Status::ok();
}

Expected<std::unique_ptr<MappedTraceReader>>
MappedTraceReader::open(const std::string &path,
                        const TraceReadOptions &opts)
{
    if (opts.corruptionBudget != 0 || opts.tolerateTruncatedTail) {
        return Status::unsupported(
            "mapped trace reader is strict: tolerant load options "
            "require TraceFileReader (", path, ")");
    }
#if !CCM_HAVE_MMAP
    return Status::unsupported("mmap is unavailable on this platform (",
                               path, ")");
#else
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        return Status::ioError("cannot open trace file: ", path, " (",
                               errnoString(errno), ")");
    }
    struct stat st = {};
    if (::fstat(fd, &st) != 0) {
        Status s = Status::ioError("cannot stat trace file: ", path,
                                   " (", errnoString(errno), ")");
        ::close(fd);
        return s;
    }
    const auto fileBytes = static_cast<std::size_t>(st.st_size);
    if (fileBytes == 0) {
        ::close(fd);
        return Status::corruptTrace("trace file is empty: ", path);
    }
    if (fileBytes < headerBytes) {
        ::close(fd);
        return Status::corruptTrace("truncated trace header in ", path,
                                    " (", fileBytes, " bytes)");
    }

    void *map = ::mmap(nullptr, fileBytes, PROT_READ, MAP_PRIVATE, fd,
                       0);
    // The mapping holds its own reference; the descriptor is done
    // either way.
    ::close(fd);
    if (map == MAP_FAILED) {
        return Status::ioError("mmap failed for trace file: ", path,
                               " (", errnoString(errno), ")");
    }

    std::unique_ptr<MappedTraceReader> rd(new MappedTraceReader());
    rd->map_ = map;
    rd->mapBytes_ = fileBytes;
    rd->label = path;

    const auto *base = static_cast<const std::uint8_t *>(map);
    if (std::memcmp(base, delta::magic, 8) == 0) {
        rd->stats_.encoding = TraceEncoding::Delta;
    } else if (std::memcmp(base, packedMagic, 8) == 0) {
        rd->stats_.encoding = TraceEncoding::Packed;
    } else {
        return Status::corruptTrace("bad trace magic in ", path);
    }
    const std::uint32_t ver = wire::loadLe32(base + 8);
    if (ver != traceVersion) {
        return Status::unsupported("unsupported trace version ", ver,
                                   " in ", path);
    }
    rd->body_ = base + headerBytes;
    rd->bodyBytes_ = fileBytes - headerBytes;

    Status s = rd->validateBody(path);
    if (!s.isOk())
        return s;

    ingestBytesCounter().inc(fileBytes);
    return rd;
#endif
}

void
MappedTraceReader::reset()
{
    nextIdx_ = 0;
    offset_ = 0;
    codec_.reset();
}

bool
MappedTraceReader::next(MemRecord &out)
{
    return nextBatch(&out, 1) == 1;
}

std::size_t
MappedTraceReader::nextBatch(MemRecord *out, std::size_t n)
{
    if (stats_.encoding == TraceEncoding::Packed) {
        const std::size_t got = std::min(n, count_ - nextIdx_);
        const std::uint8_t *p = body_ + nextIdx_ * wire::recordBytes;
        for (std::size_t i = 0; i < got; ++i) {
            out[i] = wire::unpackRecord(p);
            p += wire::recordBytes;
        }
        nextIdx_ += got;
        return got;
    }

    const std::uint8_t *end = body_ + bodyBytes_;
    std::size_t got = 0;
    while (got < n && offset_ < bodyBytes_) {
        std::size_t used = 0;
        // The validating open() decoded this exact byte sequence, so
        // anything but Ok here is memory corruption, not input.
        if (delta::decodeRecord(codec_, body_ + offset_, end, out[got],
                                used) != delta::DecodeStatus::Ok) {
            ccm_panic("validated delta trace failed to re-decode: ",
                      label);
        }
        offset_ += used;
        ++got;
    }
    return got;
}

Expected<std::unique_ptr<TraceSource>>
openTraceMappedOrFile(const std::string &path,
                      const TraceReadOptions &opts, bool *usedMmap)
{
    auto mapped = MappedTraceReader::open(path, opts);
    if (mapped.ok()) {
        if (usedMmap)
            *usedMmap = true;
        return std::unique_ptr<TraceSource>(mapped.take().release());
    }
    // Unsupported means "this lane can't apply" (tolerant options, no
    // mmap): fall back silently.  Real defects (corrupt-trace,
    // io-error) would hit the file reader too — let it produce the
    // canonical message so both lanes report identically.
    if (usedMmap)
        *usedMmap = false;
    auto file = TraceFileReader::open(path, opts);
    if (!file.ok())
        return file.status();
    return std::unique_ptr<TraceSource>(file.take().release());
}

} // namespace ccm
