#include "trace/batch_reader.hh"

#include <cstdlib>

namespace ccm
{

namespace
{

std::size_t
clampBatch(std::size_t n)
{
    if (n == 0)
        return 1;
    if (n > maxTraceBatch)
        return maxTraceBatch;
    return n;
}

std::size_t
initialBatchSize()
{
    // Read once before any worker thread exists; nothing in this
    // process calls setenv, so the lookup cannot race a mutation.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    if (const char *env = std::getenv("CCM_TRACE_BATCH")) {
        char *end = nullptr;
        unsigned long long v = std::strtoull(env, &end, 10);
        if (end != env && *end == '\0')
            return clampBatch(static_cast<std::size_t>(v));
    }
    return maxTraceBatch;
}

std::size_t &
batchSizeSlot()
{
    static std::size_t n = initialBatchSize();
    return n;
}

} // namespace

std::size_t
traceBatchSize()
{
    return batchSizeSlot();
}

void
setTraceBatchSize(std::size_t n)
{
    batchSizeSlot() = clampBatch(n);
}

} // namespace ccm
