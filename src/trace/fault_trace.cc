#include "trace/fault_trace.hh"

#include "common/logging.hh"

namespace ccm
{

namespace
{

// Distinct PCG32 stream selector so fault decisions never correlate
// with the workload generators (which use the default stream).
constexpr std::uint64_t faultStream = 0xfau;

} // namespace

FaultInjectingSource::FaultInjectingSource(TraceSource &inner,
                                           const FaultPlan &plan)
    : inner_(inner), plan_(plan), rng(plan.seed, faultStream)
{
    if (plan.bitFlipRate < 0 || plan.bitFlipRate > 1 ||
        plan.dropRate < 0 || plan.dropRate > 1 ||
        plan.duplicateRate < 0 || plan.duplicateRate > 1) {
        ccm_fatal("fault rates must be within [0, 1]");
    }
}

bool
FaultInjectingSource::innerNext(MemRecord &out)
{
    if (innerPos == innerCount) {
        innerCount = inner_.nextBatch(innerBuf.data(), maxTraceBatch);
        innerPos = 0;
        if (innerCount == 0)
            return false;
    }
    out = innerBuf[innerPos++];
    return true;
}

bool
FaultInjectingSource::next(MemRecord &out)
{
    return emitOne(out);
}

std::size_t
FaultInjectingSource::nextBatch(MemRecord *out, std::size_t n)
{
    std::size_t got = 0;
    while (got < n && emitOne(out[got]))
        ++got;
    return got;
}

bool
FaultInjectingSource::emitOne(MemRecord &out)
{
    if (plan_.truncateAfter > 0 && emitted >= plan_.truncateAfter) {
        // Drain nothing further: the dirty trace ends here even
        // though the clean source has more.
        if (!stats_.truncated) {
            MemRecord probe;
            stats_.truncated = innerNext(probe);
        }
        return false;
    }

    if (havePendingDup) {
        havePendingDup = false;
        out = pendingDup;
        ++emitted;
        return true;
    }

    MemRecord r;
    for (;;) {
        if (!innerNext(r))
            return false;
        if (plan_.dropRate > 0 && rng.chance(plan_.dropRate)) {
            ++stats_.drops;
            continue;
        }
        break;
    }

    if (plan_.bitFlipRate > 0 && rng.chance(plan_.bitFlipRate)) {
        // Flip one of the 128 pc/addr bits.
        std::uint32_t bit = rng.below(128);
        if (bit < 64)
            r.pc ^= Addr{1} << bit;
        else
            r.addr ^= Addr{1} << (bit - 64);
        ++stats_.bitFlips;
    }

    if (plan_.duplicateRate > 0 && rng.chance(plan_.duplicateRate)) {
        pendingDup = r;
        havePendingDup = true;
        ++stats_.duplicates;
    }

    out = r;
    ++emitted;
    return true;
}

void
FaultInjectingSource::reset()
{
    inner_.reset();
    rng = Pcg32(plan_.seed, faultStream);
    stats_ = FaultStats{};
    emitted = 0;
    havePendingDup = false;
    innerPos = 0;
    innerCount = 0;
}

} // namespace ccm
