/**
 * @file
 * Zero-copy trace ingestion: MappedTraceReader serves records
 * straight out of an mmap'd trace file.
 *
 * TraceFileReader slurps the whole file into a std::vector before the
 * first record is delivered — one full copy plus allocator traffic
 * that the classify fast path never needed.  The mapped reader
 * instead validates the file once at open() (header, encoding, every
 * record boundary) and then decodes each batch directly from the
 * mapping: the kernel pages bytes in on demand and nothing is staged
 * in between.  Decoding stays little-endian-safe because it goes
 * through the same wire.hh / delta.hh codecs as the copying reader,
 * so both lanes are byte-equivalent on any host.
 *
 * The mapped lane is strict by design: next() cannot return a Status,
 * so every defect must be caught while open() can still say no.
 * Tolerant options (corruption budget, truncated-tail tolerance)
 * therefore report Unsupported here — openTraceMappedOrFile() is the
 * convenience wrapper that tries the mapping first and silently falls
 * back to TraceFileReader when mmap is unavailable (no such syscall,
 * tolerant options requested, or the map itself failed).
 */

#ifndef CCM_TRACE_MMAP_TRACE_HH
#define CCM_TRACE_MMAP_TRACE_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.hh"
#include "trace/delta.hh"
#include "trace/file_trace.hh"
#include "trace/source.hh"

namespace ccm
{

/**
 * TraceSource decoding records in place from an mmap'd file.
 *
 * open() maps the file read-only and validates it end to end —
 * magic, version, and every record boundary (plausibility bytes for
 * the packed encoding, a full decode pass for delta) — returning a
 * Status instead of crashing on truncated or corrupt input.  After a
 * successful open, next()/nextBatch() are infallible.
 */
class MappedTraceReader : public TraceSource
{
  public:
    /**
     * Map and validate @p path.  @p opts must be fully strict
     * (corruptionBudget == 0, no tail tolerance): the mapped lane has
     * no way to report mid-stream defects after open, so tolerant
     * loads get ErrorCode::Unsupported and belong on TraceFileReader.
     */
    static Expected<std::unique_ptr<MappedTraceReader>>
    open(const std::string &path, const TraceReadOptions &opts = {});

    ~MappedTraceReader() override;

    MappedTraceReader(const MappedTraceReader &) = delete;
    MappedTraceReader &operator=(const MappedTraceReader &) = delete;

    bool next(MemRecord &out) override;
    std::size_t nextBatch(MemRecord *out, std::size_t n) override;
    void reset() override;
    std::string name() const override { return label; }

    /** Total records in the mapping (known from validation). */
    std::size_t size() const { return count_; }

    TraceEncoding encoding() const { return stats_.encoding; }

    /** Diagnostics from the validating open(). */
    const TraceReadStats &readStats() const { return stats_; }

  private:
    MappedTraceReader() = default;

    /** Validate the whole body; fills count_. */
    Status validateBody(const std::string &path);

    void *map_ = nullptr;        ///< whole-file mapping (munmap target)
    std::size_t mapBytes_ = 0;   ///< mapping length
    const std::uint8_t *body_ = nullptr; ///< first byte after header
    std::size_t bodyBytes_ = 0;

    std::size_t count_ = 0;   ///< validated record count
    std::size_t nextIdx_ = 0; ///< packed lane cursor (record index)
    std::size_t offset_ = 0;  ///< delta lane cursor (byte offset)
    delta::Codec codec_;      ///< delta lane predictor state

    std::string label;
    TraceReadStats stats_;
};

/**
 * Open @p path for replay, preferring the zero-copy mapped lane.
 *
 * Tries MappedTraceReader first; when the mapping is not an option —
 * tolerant @p opts, a platform without mmap, or the map call failing —
 * falls back to TraceFileReader::open with the same options.  Only
 * genuine trace defects propagate as errors; the fallback itself is
 * silent (@p usedMmap, when non-null, reports which lane won).
 */
Expected<std::unique_ptr<TraceSource>>
openTraceMappedOrFile(const std::string &path,
                      const TraceReadOptions &opts = {},
                      bool *usedMmap = nullptr);

} // namespace ccm

#endif // CCM_TRACE_MMAP_TRACE_HH
