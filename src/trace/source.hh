/**
 * @file
 * Abstract producer of MemRecords.  Workload generators, file readers
 * and in-memory traces all implement this interface; the core and the
 * functional experiment drivers consume it.
 */

#ifndef CCM_TRACE_SOURCE_HH
#define CCM_TRACE_SOURCE_HH

#include <string>

#include "trace/record.hh"

namespace ccm
{

/** A replayable, finite stream of dynamic instructions. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next record.
     *
     * @param out filled in on success
     * @retval true a record was produced
     * @retval false the trace is exhausted
     */
    virtual bool next(MemRecord &out) = 0;

    /** Rewind to the beginning so the trace can be replayed. */
    virtual void reset() = 0;

    /** Human-readable name (used as a row label in result tables). */
    virtual std::string name() const = 0;
};

} // namespace ccm

#endif // CCM_TRACE_SOURCE_HH
