/**
 * @file
 * Abstract producer of MemRecords.  Workload generators, file readers
 * and in-memory traces all implement this interface; the core and the
 * functional experiment drivers consume it.
 */

#ifndef CCM_TRACE_SOURCE_HH
#define CCM_TRACE_SOURCE_HH

#include <cstddef>
#include <string>

#include "trace/record.hh"

namespace ccm
{

/** A replayable, finite stream of dynamic instructions. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next record.
     *
     * @param out filled in on success
     * @retval true a record was produced
     * @retval false the trace is exhausted
     */
    virtual bool next(MemRecord &out) = 0;

    /**
     * Produce up to @p n records into @p out, in stream order.
     *
     * Contract: the concatenation of successive nextBatch() results is
     * the exact record sequence next() would have produced (mixing the
     * two styles on one source is also allowed).  A return value of 0
     * means the trace is exhausted; a short (nonzero) batch carries no
     * end-of-trace meaning by itself, callers must pull again.
     *
     * The default loops over next(); implementations on the hot path
     * override it to amortize the virtual call over the whole batch
     * (bulk copies for in-memory traces, tight generation loops for
     * the synthetic workloads).
     *
     * @return number of records produced (0 iff exhausted)
     */
    virtual std::size_t
    nextBatch(MemRecord *out, std::size_t n)
    {
        std::size_t got = 0;
        while (got < n && next(out[got]))
            ++got;
        return got;
    }

    /** Rewind to the beginning so the trace can be replayed. */
    virtual void reset() = 0;

    /** Human-readable name (used as a row label in result tables). */
    virtual std::string name() const = 0;
};

} // namespace ccm

#endif // CCM_TRACE_SOURCE_HH
