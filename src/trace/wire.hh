/**
 * @file
 * The 24-byte packed MemRecord wire codec shared by every byte-level
 * carrier of records: the CCMTRACE file format (file_trace) and the
 * ccm-serve stream frame protocol (serve/frame).
 *
 * Keeping pack/unpack/plausibility in one place means a record that
 * round-trips through a trace file and one that round-trips through a
 * stream frame are byte-for-byte the same 24 bytes, and both carriers
 * resync past garbage using the identical believability test.
 */

#ifndef CCM_TRACE_WIRE_HH
#define CCM_TRACE_WIRE_HH

#include <cstdint>
#include <cstring>

#include "trace/record.hh"

namespace ccm::wire
{

/** Packed size of one MemRecord on any byte carrier. */
inline constexpr std::size_t recordBytes = 24;

inline constexpr std::uint8_t flagDependsOnPrevLoad = 0x1;
inline constexpr std::uint8_t knownFlags = flagDependsOnPrevLoad;

/** Serialize @p r into 24 bytes at @p buf (little-endian fields). */
inline void
packRecord(const MemRecord &r, std::uint8_t *buf)
{
    std::memcpy(buf + 0, &r.pc, 8);
    std::memcpy(buf + 8, &r.addr, 8);
    buf[16] = static_cast<std::uint8_t>(r.type);
    buf[17] = r.dependsOnPrevLoad ? flagDependsOnPrevLoad : 0;
    std::memset(buf + 18, 0, 6);
}

/** Deserialize 24 bytes at @p buf (assumed plausible) into a record. */
inline MemRecord
unpackRecord(const std::uint8_t *buf)
{
    MemRecord r;
    std::memcpy(&r.pc, buf + 0, 8);
    std::memcpy(&r.addr, buf + 8, 8);
    r.type = static_cast<RecordType>(buf[16]);
    r.dependsOnPrevLoad = (buf[17] & flagDependsOnPrevLoad) != 0;
    return r;
}

/**
 * A 24-byte window can only be a record if the type is a known
 * RecordType, no unknown flag bits are set, and the padding is zero —
 * the invariants packRecord establishes.  Used to find the next
 * believable record boundary when resyncing past garbage.
 */
inline bool
plausibleRecord(const std::uint8_t *buf)
{
    if (buf[16] > static_cast<std::uint8_t>(RecordType::Store))
        return false;
    if ((buf[17] & ~knownFlags) != 0)
        return false;
    for (int i = 18; i < 24; ++i) {
        if (buf[i] != 0)
            return false;
    }
    return true;
}

} // namespace ccm::wire

#endif // CCM_TRACE_WIRE_HH
