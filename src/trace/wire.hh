/**
 * @file
 * The 24-byte packed MemRecord wire codec shared by every byte-level
 * carrier of records: the CCMTRACE file format (file_trace) and the
 * ccm-serve stream frame protocol (serve/frame).
 *
 * Keeping pack/unpack/plausibility in one place means a record that
 * round-trips through a trace file and one that round-trips through a
 * stream frame are byte-for-byte the same 24 bytes, and both carriers
 * resync past garbage using the identical believability test.
 */

#ifndef CCM_TRACE_WIRE_HH
#define CCM_TRACE_WIRE_HH

#include <cstdint>
#include <cstring>

#include "trace/record.hh"

namespace ccm::wire
{

/** Packed size of one MemRecord on any byte carrier. */
inline constexpr std::size_t recordBytes = 24;

inline constexpr std::uint8_t flagDependsOnPrevLoad = 0x1;
inline constexpr std::uint8_t knownFlags = flagDependsOnPrevLoad;

/** Store @p v at @p buf as 8 little-endian bytes. */
inline void
storeLe64(std::uint64_t v, std::uint8_t *buf)
{
    for (int i = 0; i < 8; ++i)
        buf[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

/** Read 8 little-endian bytes at @p buf. */
inline std::uint64_t
loadLe64(const std::uint8_t *buf)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= std::uint64_t{buf[i]} << (8 * i);
    return v;
}

/** Store @p v at @p buf as 4 little-endian bytes. */
inline void
storeLe32(std::uint32_t v, std::uint8_t *buf)
{
    for (int i = 0; i < 4; ++i)
        buf[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

/** Read 4 little-endian bytes at @p buf. */
inline std::uint32_t
loadLe32(const std::uint8_t *buf)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= std::uint32_t{buf[i]} << (8 * i);
    return v;
}

/**
 * Serialize @p r into 24 bytes at @p buf.  Fields are little-endian
 * by explicit byte packing, not host memcpy, so traces and stream
 * frames produced on any host decode identically everywhere
 * (docs/TRACE_FORMAT.md: "All integers are little-endian").
 */
inline void
packRecord(const MemRecord &r, std::uint8_t *buf)
{
    storeLe64(r.pc, buf + 0);
    storeLe64(r.addr, buf + 8);
    buf[16] = static_cast<std::uint8_t>(r.type);
    buf[17] = r.dependsOnPrevLoad ? flagDependsOnPrevLoad : 0;
    std::memset(buf + 18, 0, 6);
}

/** Deserialize 24 bytes at @p buf (assumed plausible) into a record. */
inline MemRecord
unpackRecord(const std::uint8_t *buf)
{
    MemRecord r;
    r.pc = loadLe64(buf + 0);
    r.addr = loadLe64(buf + 8);
    r.type = static_cast<RecordType>(buf[16]);
    r.dependsOnPrevLoad = (buf[17] & flagDependsOnPrevLoad) != 0;
    return r;
}

/**
 * A 24-byte window can only be a record if the type is a known
 * RecordType, no unknown flag bits are set, and the padding is zero —
 * the invariants packRecord establishes.  Used to find the next
 * believable record boundary when resyncing past garbage.
 */
inline bool
plausibleRecord(const std::uint8_t *buf)
{
    if (buf[16] > static_cast<std::uint8_t>(RecordType::Store))
        return false;
    if ((buf[17] & ~knownFlags) != 0)
        return false;
    for (int i = 18; i < 24; ++i) {
        if (buf[i] != 0)
            return false;
    }
    return true;
}

} // namespace ccm::wire

#endif // CCM_TRACE_WIRE_HH
