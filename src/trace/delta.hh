/**
 * @file
 * The CCMTRACD delta-compressed record codec.
 *
 * Consecutive trace records are strongly correlated: pcs advance by a
 * few bytes and data addresses stride through arrays, so storing
 * zigzag-encoded LEB128 varints of the *differences* shrinks a trace
 * to a fraction of the 24-byte packed form.  One record is
 *
 *   control byte | varint zz(pc - prev_pc) | [varint zz(addr - prev_mem_addr)]
 *
 * where the control byte carries the record type in bits 0-1 and the
 * dependsOnPrevLoad flag in bit 2 (bits 3-7 must be zero), the pc
 * delta is against the previous record of any type, and the address
 * delta — present only for loads/stores — is against the previous
 * *memory* record.  Both predictors start at zero, so the stream is
 * self-contained.  Varints are little-endian base-128 (7 payload bits
 * per byte, continuation in bit 7), at most 10 bytes; the 10th byte
 * of a maximal varint can only be 0x00 or 0x01, anything else is an
 * overlong encoding and a defect.
 *
 * Unlike the packed format there is no resync: a delta stream decodes
 * relative to everything before it, so any mid-stream damage
 * (bad-control-byte, bad-varint) is unrecoverable and loaders report
 * it regardless of the corruption budget.  Full layout and defect
 * taxonomy: docs/TRACE_FORMAT.md ("Delta encoding").
 *
 * This header is shared by the file loader (trace/file_trace), the
 * zero-copy mapped reader (trace/mmap_trace) and the conversion tools
 * (ccm-trace pack/unpack), so all of them agree byte-for-byte.
 */

#ifndef CCM_TRACE_DELTA_HH
#define CCM_TRACE_DELTA_HH

#include <cstddef>
#include <cstdint>

#include "trace/record.hh"

namespace ccm::delta
{

/** Leading 8 bytes of a delta trace file ("CCMTRACD"). */
inline constexpr char magic[8] = {'C', 'C', 'M', 'T', 'R', 'A',
                                  'C', 'D'};

/** Only version the codec speaks. */
inline constexpr std::uint32_t version = 1;

/** Control-byte layout. */
inline constexpr std::uint8_t typeMask = 0x03;       ///< bits 0-1
inline constexpr std::uint8_t flagDependsBit = 0x04; ///< bit 2
inline constexpr std::uint8_t reservedMask = 0xF8;   ///< bits 3-7

/** A u64 varint never exceeds 10 bytes. */
inline constexpr std::size_t maxVarintBytes = 10;

/** Upper bound on one encoded record (control + two varints). */
inline constexpr std::size_t maxRecordBytes = 1 + 2 * maxVarintBytes;

/** Map a signed delta to the unsigned varint domain (zigzag). */
inline std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

/** Inverse of zigzag(). */
inline std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

/** Append @p v to @p buf as a LEB128 varint; @return bytes written. */
inline std::size_t
putVarint(std::uint64_t v, std::uint8_t *buf)
{
    std::size_t n = 0;
    while (v >= 0x80) {
        buf[n++] = static_cast<std::uint8_t>(v) | 0x80;
        v >>= 7;
    }
    buf[n++] = static_cast<std::uint8_t>(v);
    return n;
}

/** Outcome of one incremental decode step. */
enum class DecodeStatus
{
    Ok,             ///< a record was produced
    NeedMore,       ///< input ends mid-record (truncated tail)
    BadControlByte, ///< reserved bits set or type out of range
    BadVarint,      ///< overlong varint (> 10 bytes or overflow)
};

/**
 * Read a varint at [@p p, @p end).  @return DecodeStatus::Ok and
 * advances @p p past it, NeedMore on truncation, BadVarint on an
 * overlong encoding.
 */
inline DecodeStatus
getVarint(const std::uint8_t *&p, const std::uint8_t *end,
          std::uint64_t &out)
{
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < maxVarintBytes; ++i) {
        if (p + i >= end)
            return DecodeStatus::NeedMore;
        const std::uint8_t b = p[i];
        // The 10th byte holds bits 63.. of the value: anything above
        // 0x01 (or a continuation bit) overflows u64.
        if (i == maxVarintBytes - 1 && b > 0x01)
            return DecodeStatus::BadVarint;
        v |= static_cast<std::uint64_t>(b & 0x7F) << (7 * i);
        if ((b & 0x80) == 0) {
            p += i + 1;
            out = v;
            return DecodeStatus::Ok;
        }
    }
    return DecodeStatus::BadVarint;
}

/**
 * Shared predictor state.  Encoder and decoder each keep one and feed
 * every record through it in stream order; the same freshly-default
 * state on both sides makes encode/decode exact inverses.
 */
struct Codec
{
    std::uint64_t prevPc = 0;
    std::uint64_t prevMemAddr = 0;

    void
    reset()
    {
        prevPc = 0;
        prevMemAddr = 0;
    }
};

/**
 * Serialize @p r against @p c into @p buf (>= maxRecordBytes).
 * @return bytes written
 */
inline std::size_t
encodeRecord(Codec &c, const MemRecord &r, std::uint8_t *buf)
{
    std::uint8_t control = static_cast<std::uint8_t>(r.type) & typeMask;
    if (r.dependsOnPrevLoad)
        control |= flagDependsBit;
    buf[0] = control;
    std::size_t n = 1;
    n += putVarint(zigzag(static_cast<std::int64_t>(r.pc - c.prevPc)),
                   buf + n);
    c.prevPc = r.pc;
    if (r.isMem()) {
        n += putVarint(zigzag(static_cast<std::int64_t>(
                           r.addr - c.prevMemAddr)),
                       buf + n);
        c.prevMemAddr = r.addr;
    }
    return n;
}

/**
 * Decode one record at [@p p, @p end) against @p c.
 *
 * On Ok, @p out is filled, @p c advanced, and @p used is the encoded
 * size.  On any other status @p c and @p used are untouched, so a
 * NeedMore at end-of-buffer can be retried with more bytes (the
 * streaming shape the mapped reader uses).
 */
inline DecodeStatus
decodeRecord(Codec &c, const std::uint8_t *p, const std::uint8_t *end,
             MemRecord &out, std::size_t &used)
{
    const std::uint8_t *cur = p;
    if (cur >= end)
        return DecodeStatus::NeedMore;
    const std::uint8_t control = *cur++;
    if ((control & reservedMask) != 0 ||
        (control & typeMask) >
            static_cast<std::uint8_t>(RecordType::Store))
        return DecodeStatus::BadControlByte;

    std::uint64_t pc_zz = 0;
    DecodeStatus s = getVarint(cur, end, pc_zz);
    if (s != DecodeStatus::Ok)
        return s;

    MemRecord r;
    r.type = static_cast<RecordType>(control & typeMask);
    r.dependsOnPrevLoad = (control & flagDependsBit) != 0;
    r.pc = c.prevPc + static_cast<std::uint64_t>(unzigzag(pc_zz));
    if (r.isMem()) {
        std::uint64_t addr_zz = 0;
        s = getVarint(cur, end, addr_zz);
        if (s != DecodeStatus::Ok)
            return s;
        r.addr = c.prevMemAddr +
                 static_cast<std::uint64_t>(unzigzag(addr_zz));
        c.prevMemAddr = r.addr;
    }
    c.prevPc = r.pc;
    out = r;
    used = static_cast<std::size_t>(cur - p);
    return DecodeStatus::Ok;
}

} // namespace ccm::delta

#endif // CCM_TRACE_DELTA_HH
