#include "trace/file_trace.hh"

#include <array>
#include <cstring>

#include "common/logging.hh"

namespace ccm
{

namespace
{

constexpr char magic[8] = {'C', 'C', 'M', 'T', 'R', 'A', 'C', 'E'};
constexpr std::uint32_t traceVersion = 1;
constexpr std::size_t recordBytes = 24;

constexpr std::uint8_t flagDependsOnPrevLoad = 0x1;

void
packRecord(const MemRecord &r, std::uint8_t *buf)
{
    std::memcpy(buf + 0, &r.pc, 8);
    std::memcpy(buf + 8, &r.addr, 8);
    buf[16] = static_cast<std::uint8_t>(r.type);
    buf[17] = r.dependsOnPrevLoad ? flagDependsOnPrevLoad : 0;
    std::memset(buf + 18, 0, 6);
}

MemRecord
unpackRecord(const std::uint8_t *buf)
{
    MemRecord r;
    std::memcpy(&r.pc, buf + 0, 8);
    std::memcpy(&r.addr, buf + 8, 8);
    r.type = static_cast<RecordType>(buf[16]);
    r.dependsOnPrevLoad = (buf[17] & flagDependsOnPrevLoad) != 0;
    return r;
}

} // namespace

TraceFileWriter::TraceFileWriter(const std::string &path) : path_(path)
{
    fp = std::fopen(path.c_str(), "wb");
    if (!fp)
        ccm_fatal("cannot open trace file for writing: ", path);
    std::fwrite(magic, 1, 8, fp);
    std::uint32_t ver = traceVersion, reserved = 0;
    std::fwrite(&ver, 4, 1, fp);
    std::fwrite(&reserved, 4, 1, fp);
}

TraceFileWriter::~TraceFileWriter()
{
    close();
}

void
TraceFileWriter::write(const MemRecord &r)
{
    if (!fp)
        ccm_panic("write to closed trace file ", path_);
    std::uint8_t buf[recordBytes];
    packRecord(r, buf);
    if (std::fwrite(buf, 1, recordBytes, fp) != recordBytes)
        ccm_fatal("short write to trace file ", path_);
}

std::size_t
TraceFileWriter::writeAll(TraceSource &src)
{
    src.reset();
    MemRecord r;
    std::size_t n = 0;
    while (src.next(r)) {
        write(r);
        ++n;
    }
    return n;
}

void
TraceFileWriter::close()
{
    if (fp) {
        std::fclose(fp);
        fp = nullptr;
    }
}

TraceFileReader::TraceFileReader(const std::string &path) : label(path)
{
    std::FILE *fp = std::fopen(path.c_str(), "rb");
    if (!fp)
        ccm_fatal("cannot open trace file: ", path);

    char got_magic[8];
    std::uint32_t ver = 0, reserved = 0;
    if (std::fread(got_magic, 1, 8, fp) != 8 ||
        std::fread(&ver, 4, 1, fp) != 1 ||
        std::fread(&reserved, 4, 1, fp) != 1) {
        std::fclose(fp);
        ccm_fatal("truncated trace header: ", path);
    }
    if (std::memcmp(got_magic, magic, 8) != 0) {
        std::fclose(fp);
        ccm_fatal("bad trace magic in ", path);
    }
    if (ver != traceVersion) {
        std::fclose(fp);
        ccm_fatal("unsupported trace version ", ver, " in ", path);
    }

    std::uint8_t buf[recordBytes];
    std::size_t got;
    while ((got = std::fread(buf, 1, recordBytes, fp)) == recordBytes)
        records.push_back(unpackRecord(buf));
    bool partial = got != 0;
    std::fclose(fp);
    if (partial)
        ccm_fatal("trailing partial record in trace ", path);
}

bool
TraceFileReader::next(MemRecord &out)
{
    if (pos >= records.size())
        return false;
    out = records[pos++];
    return true;
}

} // namespace ccm
