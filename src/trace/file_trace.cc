#include "trace/file_trace.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/logging.hh"
#include "trace/batch_reader.hh"
#include "trace/delta.hh"
#include "trace/wire.hh"

namespace ccm
{

namespace
{

// The per-record codec (packRecord/unpackRecord/plausibleRecord,
// recordBytes) lives in trace/wire.hh, shared with the serve-stream
// frame protocol.
using wire::packRecord;
using wire::plausibleRecord;
using wire::recordBytes;
using wire::unpackRecord;

constexpr char magic[8] = {'C', 'C', 'M', 'T', 'R', 'A', 'C', 'E'};
constexpr std::uint32_t traceVersion = 1;
constexpr std::size_t headerBytes = 16;

std::string
errnoSuffix()
{
    return std::string(" (") + errnoString(errno) + ")";
}

} // namespace

// ---- Writer -------------------------------------------------------

const char *
toString(TraceEncoding e)
{
    return e == TraceEncoding::Delta ? "delta" : "packed";
}

TraceFileWriter::TraceFileWriter(const std::string &path,
                                 TraceEncoding encoding)
    : path_(path), encoding_(encoding)
{
    fatalIfError(openFile());
}

TraceFileWriter::TraceFileWriter(Unchecked, const std::string &path,
                                 TraceEncoding encoding)
    : path_(path), encoding_(encoding)
{
}

Expected<std::unique_ptr<TraceFileWriter>>
TraceFileWriter::create(const std::string &path, TraceEncoding encoding)
{
    std::unique_ptr<TraceFileWriter> w(
        new TraceFileWriter(Unchecked{}, path, encoding));
    Status s = w->openFile();
    if (!s.isOk())
        return s;
    return w;
}

Status
TraceFileWriter::openFile()
{
    fp = std::fopen(path_.c_str(), "wb");
    if (!fp) {
        return Status::ioError(
            "cannot open trace file for writing: ", path_,
            errnoSuffix());
    }
    std::fwrite(encoding_ == TraceEncoding::Delta ? delta::magic
                                                  : magic,
                1, 8, fp);
    std::uint8_t verbuf[8] = {}; // version LE, then 4 reserved bytes
    wire::storeLe32(traceVersion, verbuf);
    if (std::fwrite(verbuf, 1, 8, fp) != 8) {
        Status s = Status::ioError(
            "short write of trace header to ", path_, errnoSuffix());
        std::fclose(fp);
        fp = nullptr;
        return s;
    }
    return Status::ok();
}

TraceFileWriter::~TraceFileWriter()
{
    Status s = close();
    if (!s.isOk())
        ccm_warn(s.message());
}

void
TraceFileWriter::write(const MemRecord &r)
{
    if (!fp)
        ccm_panic("write to closed trace file ", path_);
    fatalIfError(writeChecked(r));
}

Status
TraceFileWriter::writeChecked(const MemRecord &r)
{
    if (!fp) {
        return Status::ioError("write to closed trace file ", path_);
    }
    // Scratch big enough for either encoding's worst case.
    constexpr std::size_t bufBytes =
        delta::maxRecordBytes > recordBytes ? delta::maxRecordBytes
                                            : recordBytes;
    std::uint8_t buf[bufBytes];
    std::size_t n;
    if (encoding_ == TraceEncoding::Delta) {
        n = delta::encodeRecord(codec_, r, buf);
    } else {
        packRecord(r, buf);
        n = recordBytes;
    }
    if (std::fwrite(buf, 1, n, fp) != n) {
        return Status::ioError("short write to trace file ", path_,
                               errnoSuffix());
    }
    return Status::ok();
}

std::size_t
TraceFileWriter::writeAll(TraceSource &src)
{
    src.reset();
    MemRecord chunk[maxTraceBatch];
    std::size_t got;
    std::size_t n = 0;
    while ((got = src.nextBatch(chunk, maxTraceBatch)) > 0) {
        for (std::size_t i = 0; i < got; ++i)
            write(chunk[i]);
        n += got;
    }
    return n;
}

Status
TraceFileWriter::close()
{
    if (!fp)
        return Status::ok();
    Status s = Status::ok();
    if (std::fflush(fp) != 0) {
        s = Status::ioError("flush failed for trace file ", path_,
                            errnoSuffix());
    }
    if (std::fclose(fp) != 0 && s.isOk()) {
        s = Status::ioError("close failed for trace file ", path_,
                            errnoSuffix());
    }
    fp = nullptr;
    return s;
}

// ---- Reader -------------------------------------------------------

const char *
traceDefectName(TraceDefect d)
{
    switch (d) {
      case TraceDefect::None:
        return "none";
      case TraceDefect::IoError:
        return "io-error";
      case TraceDefect::ZeroLength:
        return "zero-length";
      case TraceDefect::TruncatedHeader:
        return "truncated-header";
      case TraceDefect::BadMagic:
        return "bad-magic";
      case TraceDefect::BadVersion:
        return "bad-version";
      case TraceDefect::PartialTail:
        return "partial-tail";
      case TraceDefect::MidFileGarbage:
        return "mid-file-garbage";
      case TraceDefect::BadControlByte:
        return "bad-control-byte";
      case TraceDefect::BadVarint:
        return "bad-varint";
    }
    return "unknown";
}

void
TraceReadStats::dump(std::ostream &os, const char *prefix) const
{
    auto line = [&](const char *name, Count v) {
        os << prefix << "." << name << " " << v << "\n";
    };
    line("records_read", recordsRead);
    line("resync_events", resyncEvents);
    line("bytes_skipped", bytesSkipped);
    line("truncated_tail", truncatedTail ? 1 : 0);
    os << prefix << ".first_defect " << traceDefectName(firstDefect)
       << "\n";
}

namespace
{

/** Record the first (most significant) defect seen during a load. */
void
noteDefect(TraceReadStats &stats, TraceDefect d)
{
    if (stats.firstDefect == TraceDefect::None)
        stats.firstDefect = d;
}

/**
 * Decode a delta-encoded body.  No resync exists here (every record
 * depends on the ones before it), so the corruption budget does not
 * apply: a bad control byte or varint is an error even when a budget
 * is set, and only a clean truncation at end-of-body can be tolerated.
 */
Status
decodeDeltaBody(const std::string &path,
                const std::vector<std::uint8_t> &body,
                const TraceReadOptions &opts,
                std::vector<MemRecord> &out, TraceReadStats &stats)
{
    delta::Codec codec;
    const std::uint8_t *p = body.data();
    const std::uint8_t *end = body.data() + body.size();
    while (p < end) {
        MemRecord r;
        std::size_t used = 0;
        switch (delta::decodeRecord(codec, p, end, r, used)) {
          case delta::DecodeStatus::Ok:
            out.push_back(r);
            ++stats.recordsRead;
            p += used;
            continue;
          case delta::DecodeStatus::NeedMore:
            noteDefect(stats, TraceDefect::PartialTail);
            if (!opts.tolerateTruncatedTail) {
                out.clear();
                return Status::corruptTrace(
                    "trailing partial record in delta trace ", path);
            }
            stats.truncatedTail = true;
            stats.bytesSkipped += static_cast<Count>(end - p);
            if (!opts.quiet) {
                ccm_warn("trace ", path, ": truncated delta tail (",
                         end - p, " bytes); treating as end of trace");
            }
            return Status::ok();
          case delta::DecodeStatus::BadControlByte:
            noteDefect(stats, TraceDefect::BadControlByte);
            out.clear();
            return Status::corruptTrace(
                "bad control byte in delta trace ", path, " at byte ",
                headerBytes + static_cast<std::size_t>(p - body.data()),
                " (delta streams cannot be resynced)");
          case delta::DecodeStatus::BadVarint:
            noteDefect(stats, TraceDefect::BadVarint);
            out.clear();
            return Status::corruptTrace(
                "overlong varint in delta trace ", path, " at byte ",
                headerBytes + static_cast<std::size_t>(p - body.data()),
                " (delta streams cannot be resynced)");
        }
    }
    return Status::ok();
}

} // namespace

Status
loadTraceFile(const std::string &path, const TraceReadOptions &opts,
              std::vector<MemRecord> &out, TraceReadStats &stats)
{
    out.clear();
    stats = TraceReadStats{};

    std::FILE *fp = std::fopen(path.c_str(), "rb");
    if (!fp) {
        noteDefect(stats, TraceDefect::IoError);
        return Status::ioError("cannot open trace file: ", path,
                               errnoSuffix());
    }

    std::uint8_t header[headerBytes];
    std::size_t got = std::fread(header, 1, headerBytes, fp);
    if (got < headerBytes) {
        // A read error (e.g. the path is a directory, EISDIR) also
        // surfaces as a short read; don't mistake it for truncation.
        bool bad = std::ferror(fp) != 0;
        std::fclose(fp);
        if (bad) {
            noteDefect(stats, TraceDefect::IoError);
            return Status::ioError("cannot read trace file: ", path,
                                   errnoSuffix());
        }
        if (got == 0) {
            // Distinguish the completely empty file: it usually means
            // a producer crashed before writing anything.
            noteDefect(stats, TraceDefect::ZeroLength);
            return Status::corruptTrace("empty trace file: ", path);
        }
        noteDefect(stats, TraceDefect::TruncatedHeader);
        return Status::corruptTrace("truncated trace header: ", path);
    }
    bool is_delta = false;
    if (std::memcmp(header, delta::magic, 8) == 0) {
        is_delta = true;
        stats.encoding = TraceEncoding::Delta;
    } else if (std::memcmp(header, magic, 8) != 0) {
        std::fclose(fp);
        noteDefect(stats, TraceDefect::BadMagic);
        return Status::corruptTrace("bad trace magic in ", path);
    }
    const std::uint32_t ver = wire::loadLe32(header + 8);
    if (ver != traceVersion) {
        std::fclose(fp);
        noteDefect(stats, TraceDefect::BadVersion);
        return Status::unsupported("unsupported trace version ", ver,
                                   " in ", path);
    }

    // Slurp the record area so resync can scan byte-by-byte.
    std::vector<std::uint8_t> body;
    {
        std::uint8_t chunk[4096];
        std::size_t n;
        while ((n = std::fread(chunk, 1, sizeof chunk, fp)) > 0)
            body.insert(body.end(), chunk, chunk + n);
        bool bad = std::ferror(fp) != 0;
        std::fclose(fp);
        if (bad) {
            noteDefect(stats, TraceDefect::IoError);
            return Status::ioError("read failed for trace file ",
                                   path, errnoSuffix());
        }
    }

    if (is_delta)
        return decodeDeltaBody(path, body, opts, out, stats);

    std::size_t off = 0;
    while (off + recordBytes <= body.size()) {
        if (plausibleRecord(body.data() + off)) {
            out.push_back(unpackRecord(body.data() + off));
            ++stats.recordsRead;
            off += recordBytes;
            continue;
        }

        // Garbage: resync to the next plausible record boundary.
        noteDefect(stats, TraceDefect::MidFileGarbage);
        if (stats.resyncEvents >= opts.corruptionBudget) {
            out.clear();
            return Status::corruptTrace(
                "mid-file garbage in trace ", path, " at byte ",
                headerBytes + off,
                opts.corruptionBudget == 0
                    ? ""
                    : " (corruption budget exhausted)");
        }
        ++stats.resyncEvents;
        std::size_t start = off;
        ++off;
        while (off + recordBytes <= body.size() &&
               !plausibleRecord(body.data() + off)) {
            ++off;
        }
        stats.bytesSkipped += off - start;
        if (!opts.quiet) {
            ccm_warn("trace ", path, ": skipped ", off - start,
                     " garbage bytes at byte ", headerBytes + start);
        }
    }

    if (off < body.size()) {
        // Trailing bytes too short to form a record.
        noteDefect(stats, TraceDefect::PartialTail);
        if (!opts.tolerateTruncatedTail) {
            out.clear();
            return Status::corruptTrace(
                "trailing partial record in trace ", path);
        }
        stats.truncatedTail = true;
        stats.bytesSkipped += body.size() - off;
        if (!opts.quiet) {
            ccm_warn("trace ", path, ": truncated tail (",
                     body.size() - off,
                     " bytes); treating as end of trace");
        }
    }

    return Status::ok();
}

TraceDefect
probeTraceFile(const std::string &path, TraceReadStats *stats)
{
    TraceReadOptions opts;
    opts.corruptionBudget = ~std::size_t{0};
    opts.tolerateTruncatedTail = true;
    opts.quiet = true;

    std::vector<MemRecord> records;
    TraceReadStats local;
    loadTraceFile(path, opts, records, local);
    if (stats)
        *stats = local;
    return local.firstDefect;
}

TraceFileReader::TraceFileReader(const std::string &path) : label(path)
{
    fatalIfError(loadTraceFile(path, TraceReadOptions{}, records_,
                               stats_));
}

Expected<std::unique_ptr<TraceFileReader>>
TraceFileReader::open(const std::string &path,
                      const TraceReadOptions &opts)
{
    std::unique_ptr<TraceFileReader> rd(new TraceFileReader());
    rd->label = path;
    Status s = loadTraceFile(path, opts, rd->records_, rd->stats_);
    if (!s.isOk())
        return s;
    return rd;
}

bool
TraceFileReader::next(MemRecord &out)
{
    if (pos >= records_.size())
        return false;
    out = records_[pos++];
    return true;
}

std::size_t
TraceFileReader::nextBatch(MemRecord *out, std::size_t n)
{
    // Decode (and any resync past corruption) happened at load time,
    // so batch delivery is a bulk copy of already-validated records —
    // the defect semantics of docs/TRACE_FORMAT.md are unaffected by
    // where batch boundaries fall.
    const std::size_t got = std::min(n, records_.size() - pos);
    std::copy_n(records_.begin() +
                    static_cast<std::ptrdiff_t>(pos),
                got, out);
    pos += got;
    return got;
}

} // namespace ccm
