/**
 * @file
 * Deterministic fault injection over any TraceSource.
 *
 * Robustness work needs dirty inputs on demand: a tracer that drops
 * records under load, a copy that picked up bit errors, a file cut
 * short by a crashed producer.  FaultInjectingSource decorates a
 * clean source with exactly those defects, driven by a seeded PCG32
 * stream so a given (plan, seed) always yields the identical dirty
 * trace — tests and benches can measure classifier stability under
 * corruption and still be reproducible.
 *
 * Faults are injected at the record level (the decorator sits above
 * the serialization layer); bit flips target the pc/addr fields and
 * never produce a structurally invalid record.  For on-disk defects
 * (bad magic, partial tails, mid-file garbage) write a clean file and
 * damage the bytes — see tests/test_fault_trace.cc.
 */

#ifndef CCM_TRACE_FAULT_TRACE_HH
#define CCM_TRACE_FAULT_TRACE_HH

#include <array>
#include <string>

#include "common/random.hh"
#include "common/types.hh"
#include "trace/batch_reader.hh"
#include "trace/source.hh"

namespace ccm
{

/** What to inject, and how often.  Rates are per-record in [0, 1]. */
struct FaultPlan
{
    std::uint64_t seed = 1;

    /** Probability of flipping one random bit of pc or addr. */
    double bitFlipRate = 0.0;

    /** Probability of silently dropping a record. */
    double dropRate = 0.0;

    /** Probability of emitting a record twice. */
    double duplicateRate = 0.0;

    /** Stop after this many emitted records; 0 = no truncation. */
    std::size_t truncateAfter = 0;

    bool
    enabled() const
    {
        return bitFlipRate > 0 || dropRate > 0 || duplicateRate > 0 ||
               truncateAfter > 0;
    }
};

/** Counters for the faults actually injected since the last reset. */
struct FaultStats
{
    Count bitFlips = 0;
    Count drops = 0;
    Count duplicates = 0;
    bool truncated = false;
};

/** Decorator that replays @p inner with injected faults. */
class FaultInjectingSource : public TraceSource
{
  public:
    /** @p inner must outlive this decorator. */
    FaultInjectingSource(TraceSource &inner, const FaultPlan &plan);

    bool next(MemRecord &out) override;

    /**
     * Batch delivery: the clean source is drained in batches and the
     * fault plan applied record by record, so the dirty stream is
     * bit-identical to the next() path for any batch partitioning.
     */
    std::size_t nextBatch(MemRecord *out, std::size_t n) override;

    /** Rewind and reseed: the same dirty stream replays exactly. */
    void reset() override;

    std::string name() const override
    {
        return inner_.name() + "+faults";
    }

    const FaultStats &stats() const { return stats_; }
    const FaultPlan &plan() const { return plan_; }

  private:
    /** The per-record fault pipeline shared by next()/nextBatch(). */
    bool emitOne(MemRecord &out);

    /** Pull one clean record through the batched inner buffer. */
    bool innerNext(MemRecord &out);

    TraceSource &inner_;
    FaultPlan plan_;
    FaultStats stats_;
    Pcg32 rng;
    std::size_t emitted = 0;
    MemRecord pendingDup;
    bool havePendingDup = false;

    /** Read-ahead over the clean source (batched virtual pulls). */
    std::array<MemRecord, maxTraceBatch> innerBuf;
    std::size_t innerPos = 0;
    std::size_t innerCount = 0;
};

} // namespace ccm

#endif // CCM_TRACE_FAULT_TRACE_HH
