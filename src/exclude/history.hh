/**
 * @file
 * Region miss-classification history table — the "conflict history"
 * and "capacity history" exclusion variants of paper §5.3 ("a
 * structure somewhat similar to the MAT"): per memory region, a
 * saturating counter tracks whether recent misses from that region
 * were conflict or capacity misses; a line is excluded when its region
 * has a consistent history of the targeted miss class.
 */

#ifndef CCM_EXCLUDE_HISTORY_HH
#define CCM_EXCLUDE_HISTORY_HH

#include <cstdint>
#include <vector>

#include "common/addr_types.hh"
#include "common/types.hh"
#include "mct/miss_class.hh"

namespace ccm
{

/** Per-region conflict/capacity miss history. */
class MissHistoryTable
{
  public:
    /**
     * @param entries table size (power of two, direct-mapped)
     * @param region_bytes region granularity
     */
    explicit MissHistoryTable(std::size_t entries = 1024,
                              std::size_t region_bytes = 1024);

    /** Record a classified miss from @p addr's region. */
    void recordMiss(ByteAddr addr, MissClass cls);

    /**
     * @retval true the region's recent misses have mostly been
     *         conflict misses
     */
    bool conflictHistory(ByteAddr addr) const;

    /** @retval true the region's recent misses have mostly been
     *          capacity misses */
    bool capacityHistory(ByteAddr addr) const;

    void clear();

  private:
    // 3-bit saturating counter per region: 0 = strongly capacity,
    // 7 = strongly conflict; thresholds at the outer quarters so an
    // inconsistent region excludes nothing.
    struct Entry
    {
        Addr tag = 0;
        std::uint8_t counter = 4;
        bool valid = false;
    };

    std::size_t indexOf(Addr addr) const;
    Addr tagOf(Addr addr) const;
    const Entry *lookup(Addr addr) const;

    std::vector<Entry> table;
    std::size_t regionShift;
    std::size_t mask;
};

} // namespace ccm

#endif // CCM_EXCLUDE_HISTORY_HH
