/**
 * @file
 * Tyson et al. PC-indexed cache exclusion — the other exclusion
 * comparator the paper describes (§5.3): "Tyson uses a table, indexed
 * by program counter, to track hit/miss frequency, and excludes from
 * the cache accesses predicted to miss with high likelihood."
 *
 * Like the MAT (and unlike the MCT), the table must be read and
 * updated on every memory access.  Each entry is a tagged 2-bit
 * saturating counter of an instruction's recent miss behaviour;
 * instructions that usually miss are marked non-allocating.
 */

#ifndef CCM_EXCLUDE_TYSON_HH
#define CCM_EXCLUDE_TYSON_HH

#include <cstdint>
#include <vector>

#include "common/addr_types.hh"
#include "common/types.hh"

namespace ccm
{

/** Per-instruction miss-frequency predictor. */
class PcMissTable
{
  public:
    /** @param entries table size (power of two, direct-mapped) */
    explicit PcMissTable(std::size_t entries = 1024);

    /** Record the outcome of one access by instruction @p pc. */
    void recordOutcome(ByteAddr pc, bool missed);

    /**
     * @retval true @p pc's accesses are predicted to miss with high
     *         likelihood: exclude them from the cache
     */
    bool shouldBypass(ByteAddr pc) const;

    /** Current counter for @p pc (0..3; 0 on tag mismatch). */
    std::uint8_t counterFor(ByteAddr pc) const;

    void clear();

  private:
    struct Entry
    {
        Addr tag = 0;
        /** 0 = strongly hits ... 3 = strongly misses. */
        std::uint8_t counter = 0;
        bool valid = false;
    };

    std::size_t indexOf(Addr pc) const;
    Addr tagOf(Addr pc) const { return pc >> 2; }

    std::vector<Entry> table;
    std::size_t mask;
};

} // namespace ccm

#endif // CCM_EXCLUDE_TYSON_HH
