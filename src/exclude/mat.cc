#include "exclude/mat.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace ccm
{

MemoryAccessTable::MemoryAccessTable(std::size_t entries,
                                     std::size_t region_bytes,
                                     std::uint64_t decay_period)
    : table(entries), regionShift(floorLog2(region_bytes)),
      mask(entries - 1), decayPeriod(decay_period)
{
    if (!isPowerOfTwo(entries))
        ccm_fatal("MAT entries must be a power of two: ", entries);
    if (!isPowerOfTwo(region_bytes))
        ccm_fatal("MAT region must be a power of two: ", region_bytes);
}

std::size_t
MemoryAccessTable::indexOf(Addr addr) const
{
    // XOR-fold the region number so regions a power-of-two apart
    // (common with page-aligned allocations) don't all alias.
    Addr region = addr >> regionShift;
    return (region ^ (region >> 10) ^ (region >> 20)) & mask;
}

Addr
MemoryAccessTable::tagOf(Addr addr) const
{
    return addr >> regionShift;
}

void
MemoryAccessTable::recordAccess(ByteAddr baddr)
{
    const Addr addr = baddr.value();
    Entry &e = table[indexOf(addr)];
    if (!e.valid) {
        e.valid = true;
        e.tag = tagOf(addr);
        e.count = 1;
    } else if (e.tag != tagOf(addr)) {
        // Collision hysteresis: a contender must out-access the
        // incumbent region before it takes the entry, so a hot
        // region's count isn't destroyed by stray aliasing.
        if (e.count > 0) {
            --e.count;
        } else {
            e.tag = tagOf(addr);
            e.count = 1;
        }
    } else if (e.count < counterMax) {
        ++e.count;
    }

    if (++sinceDecay >= decayPeriod) {
        sinceDecay = 0;
        for (auto &t : table)
            t.count >>= 1;
    }
}

std::uint32_t
MemoryAccessTable::countForRaw(Addr addr) const
{
    const Entry &e = table[indexOf(addr)];
    if (!e.valid || e.tag != tagOf(addr))
        return 0;
    return e.count;
}

std::uint32_t
MemoryAccessTable::countFor(ByteAddr addr) const
{
    return countForRaw(addr.value());
}

bool
MemoryAccessTable::shouldBypass(ByteAddr incoming_addr,
                                LineAddr victim_addr) const
{
    return countForRaw(incoming_addr.value()) <
           countForRaw(victim_addr.value());
}

void
MemoryAccessTable::clear()
{
    for (auto &e : table)
        e = Entry{};
    sinceDecay = 0;
}

} // namespace ccm
