#include "exclude/history.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace ccm
{

MissHistoryTable::MissHistoryTable(std::size_t entries,
                                   std::size_t region_bytes)
    : table(entries), regionShift(floorLog2(region_bytes)),
      mask(entries - 1)
{
    if (!isPowerOfTwo(entries))
        ccm_fatal("history entries must be a power of two: ", entries);
    if (!isPowerOfTwo(region_bytes))
        ccm_fatal("history region must be a power of two: ",
                  region_bytes);
}

std::size_t
MissHistoryTable::indexOf(Addr addr) const
{
    // XOR-folded like the MAT (see mat.cc): avoids systematic
    // aliasing of regions a power-of-two apart.
    Addr region = addr >> regionShift;
    return (region ^ (region >> 10) ^ (region >> 20)) & mask;
}

Addr
MissHistoryTable::tagOf(Addr addr) const
{
    return addr >> regionShift;
}

const MissHistoryTable::Entry *
MissHistoryTable::lookup(Addr addr) const
{
    const Entry &e = table[indexOf(addr)];
    if (!e.valid || e.tag != tagOf(addr))
        return nullptr;
    return &e;
}

void
MissHistoryTable::recordMiss(ByteAddr baddr, MissClass cls)
{
    const Addr addr = baddr.value();
    Entry &e = table[indexOf(addr)];
    if (!e.valid || e.tag != tagOf(addr)) {
        e.valid = true;
        e.tag = tagOf(addr);
        e.counter = 4;
    }
    if (isConflict(cls)) {
        if (e.counter < 7)
            ++e.counter;
    } else {
        if (e.counter > 0)
            --e.counter;
    }
}

bool
MissHistoryTable::conflictHistory(ByteAddr addr) const
{
    const Entry *e = lookup(addr.value());
    return e && e->counter >= 6;
}

bool
MissHistoryTable::capacityHistory(ByteAddr addr) const
{
    const Entry *e = lookup(addr.value());
    return e && e->counter <= 1;
}

void
MissHistoryTable::clear()
{
    for (auto &e : table)
        e = Entry{};
}

} // namespace ccm
