/**
 * @file
 * Johnson & Hwu memory access table (MAT) — the comparator exclusion
 * scheme of paper §5.3.
 *
 * The MAT records access frequency per 1 KB region of memory in a
 * 1K-entry direct-mapped, tagged table of saturating counters, updated
 * on *every* access (the paper's point: a 4-load/store-unit processor
 * needs 4 reads + 4 increments + 4 writes per cycle into this table,
 * versus the MCT which is touched only on misses).  On a miss, the
 * incoming line's region count is compared with the victim line's
 * region count; if the incoming region is accessed less often, the
 * line bypasses the cache into the bypass buffer.
 *
 * Counter decay (periodic halving) keeps the table adaptive, in the
 * spirit of Johnson & Hwu's two-counter scheme.
 */

#ifndef CCM_EXCLUDE_MAT_HH
#define CCM_EXCLUDE_MAT_HH

#include <cstdint>
#include <vector>

#include "common/addr_types.hh"
#include "common/types.hh"

namespace ccm
{

/** Memory access table for frequency-based cache exclusion. */
class MemoryAccessTable
{
  public:
    /**
     * @param entries number of table entries (power of two)
     * @param region_bytes tracked region granularity
     * @param decay_period halve all counters every this many accesses
     */
    explicit MemoryAccessTable(std::size_t entries = 1024,
                               std::size_t region_bytes = 1024,
                               std::uint64_t decay_period = 64 * 1024);

    /** Record one access to @p addr (call on every reference). */
    void recordAccess(ByteAddr addr);

    /**
     * Exclusion decision on a miss.
     *
     * @param incoming_addr address of the missing line
     * @param victim_addr address of the line that would be replaced
     * @retval true bypass the cache (victim's region is hotter)
     */
    bool shouldBypass(ByteAddr incoming_addr,
                      LineAddr victim_addr) const;

    /** Current count for @p addr's region (0 on tag mismatch). */
    std::uint32_t countFor(ByteAddr addr) const;

    void clear();

  private:
    struct Entry
    {
        Addr tag = 0;
        std::uint32_t count = 0;
        bool valid = false;
    };

    std::size_t indexOf(Addr addr) const;
    Addr tagOf(Addr addr) const;
    std::uint32_t countForRaw(Addr addr) const;

    std::vector<Entry> table;
    std::size_t regionShift;
    std::size_t mask;
    std::uint64_t decayPeriod;
    std::uint64_t sinceDecay = 0;

    static constexpr std::uint32_t counterMax = 4095;
};

} // namespace ccm

#endif // CCM_EXCLUDE_MAT_HH
