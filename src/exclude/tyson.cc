#include "exclude/tyson.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace ccm
{

PcMissTable::PcMissTable(std::size_t entries)
    : table(entries), mask(entries - 1)
{
    if (!isPowerOfTwo(entries))
        ccm_fatal("PC table entries must be a power of two: ",
                  entries);
}

std::size_t
PcMissTable::indexOf(Addr pc) const
{
    Addr word = pc >> 2;
    // Fold so call-sites a power-of-two apart don't systematically
    // alias (same rationale as the MAT's index fold).
    return (word ^ (word >> 10) ^ (word >> 20)) & mask;
}

void
PcMissTable::recordOutcome(ByteAddr bpc, bool missed)
{
    const Addr pc = bpc.value();
    Entry &e = table[indexOf(pc)];
    if (!e.valid || e.tag != tagOf(pc)) {
        e.valid = true;
        e.tag = tagOf(pc);
        e.counter = missed ? 2 : 1;
        return;
    }
    if (missed) {
        if (e.counter < 3)
            ++e.counter;
    } else {
        if (e.counter > 0)
            --e.counter;
    }
}

bool
PcMissTable::shouldBypass(ByteAddr bpc) const
{
    const Addr pc = bpc.value();
    const Entry &e = table[indexOf(pc)];
    return e.valid && e.tag == tagOf(pc) && e.counter == 3;
}

std::uint8_t
PcMissTable::counterFor(ByteAddr bpc) const
{
    const Addr pc = bpc.value();
    const Entry &e = table[indexOf(pc)];
    if (!e.valid || e.tag != tagOf(pc))
        return 0;
    return e.counter;
}

void
PcMissTable::clear()
{
    for (auto &e : table)
        e = Entry{};
}

} // namespace ccm
