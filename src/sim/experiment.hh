/**
 * @file
 * Experiment driver shared by the benchmark binaries and examples:
 * whole-system configuration, single timing runs, suite sweeps, and
 * the named policy configurations of paper §5.
 */

#ifndef CCM_SIM_EXPERIMENT_HH
#define CCM_SIM_EXPERIMENT_HH

#include <string>
#include <vector>

#include "cpu/core.hh"
#include "hierarchy/config.hh"
#include "hierarchy/memstats.hh"
#include "trace/source.hh"

namespace ccm
{

/** A complete simulated machine. */
struct SystemConfig
{
    MemSysConfig mem;
    CoreConfig core;
};

/** Everything one timing run produces. */
struct RunOutput
{
    SimResult sim;
    MemStats mem;
};

/** Run @p trace (reset first) on a machine built from @p config. */
RunOutput runTiming(TraceSource &trace, const SystemConfig &config);

/** Speedup of @p test over @p base (cycles ratio). */
double speedup(const RunOutput &base, const RunOutput &test);

// ---- Named configurations from paper §5 ---------------------------

/** §4 baseline: no assist buffer. */
SystemConfig baselineConfig();

/** §5.1 victim cache variants (Figure 3 / Table 1). */
SystemConfig victimConfig(bool filter_swaps, bool filter_fills,
                          ConflictFilter filter = ConflictFilter::Or);

/** §5.2 next-line prefetcher variants (Figure 4). */
SystemConfig prefetchConfig(bool filtered,
                            ConflictFilter filter = ConflictFilter::Out);

/** §5.3 cache-exclusion variants (Figure 5); uses 16 buffer entries. */
SystemConfig excludeConfig(ExcludeAlgo algo);

/** §5.4 pseudo-associative cache (MCT-guided or baseline LRU). */
SystemConfig pseudoConfig(bool use_mct);

/** §5.4 comparison point: true 2-way set-associative L1. */
SystemConfig twoWayConfig();

/** §5.5 adaptive miss buffer. */
SystemConfig ambConfig(bool victim_conflicts, bool prefetch_capacity,
                       bool exclude_capacity, unsigned buf_entries = 8);

/** §5.5 single-policy reference points (best filtered variants). */
SystemConfig ambSingleVict(unsigned buf_entries = 8);
SystemConfig ambSinglePref(unsigned buf_entries = 8);
SystemConfig ambSingleExcl(unsigned buf_entries = 8);

} // namespace ccm

#endif // CCM_SIM_EXPERIMENT_HH
