/**
 * @file
 * Experiment driver shared by the benchmark binaries and examples:
 * whole-system configuration, single timing runs, suite sweeps, and
 * the named policy configurations of paper §5.
 */

#ifndef CCM_SIM_EXPERIMENT_HH
#define CCM_SIM_EXPERIMENT_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hh"
#include "cpu/core.hh"
#include "hierarchy/config.hh"
#include "hierarchy/memstats.hh"
#include "trace/source.hh"

namespace ccm
{

/** A complete simulated machine. */
struct SystemConfig
{
    MemSysConfig mem;
    CoreConfig core;
};

/** Everything one timing run produces. */
struct RunOutput
{
    SimResult sim;
    MemStats mem;
    /** Per-set activity histograms (heatmap source). */
    SetHistograms heat;
};

/**
 * Callback run against the freshly built machine before the timing
 * loop starts — the place to attach observability hooks (access
 * hooks, MCT lookup hooks) to internals that only exist during the
 * run.
 */
using MemSysInstrument = std::function<void(MemorySystem &)>;

/** Run @p trace (reset first) on a machine built from @p config. */
RunOutput runTiming(TraceSource &trace, const SystemConfig &config,
                    const MemSysInstrument &instrument = {});

/**
 * Like runTiming, but recoverable: a bad configuration (or any other
 * would-be-fatal user error raised while building and running the
 * machine) comes back as an error status instead of exiting.
 */
Expected<RunOutput> tryRunTiming(TraceSource &trace,
                                 const SystemConfig &config,
                                 const MemSysInstrument &instrument = {});

/** Speedup of @p test over @p base (cycles ratio). */
double speedup(const RunOutput &base, const RunOutput &test);

// ---- Suite sweeps with per-workload failure isolation -------------

/** One row of a suite sweep: a result, or why this run failed. */
struct SuiteRow
{
    std::string workload;
    Status status;
    RunOutput out; ///< meaningful only when status.isOk()

    /**
     * Wall-clock time spent producing this row (trace factory +
     * simulation), in seconds.  The only nondeterministic field: two
     * sweeps of the same suite agree on everything else bit-for-bit
     * regardless of --jobs (tested in test_parallel).
     */
    double wallSeconds = 0.0;

    bool ok() const { return status.isOk(); }
};

/** Every row of a sweep, failed runs included. */
struct SuiteReport
{
    std::vector<SuiteRow> rows;

    std::size_t
    failures() const
    {
        std::size_t n = 0;
        for (const auto &r : rows)
            if (!r.ok())
                ++n;
        return n;
    }

    bool allOk() const { return failures() == 0; }

    /** Row for @p name, or nullptr when absent. */
    const SuiteRow *row(const std::string &name) const;
};

/**
 * Produces the trace for one named suite entry — or the Status that
 * explains why it can't (unknown workload, corrupt trace file, ...).
 */
using SuiteTraceFactory = std::function<
    Expected<std::unique_ptr<TraceSource>>(const std::string &name)>;

/**
 * Per-run instrumentation for suite sweeps: called with the workload
 * name and the machine about to run it.
 */
using SuiteInstrument =
    std::function<void(const std::string &name, MemorySystem &)>;

/**
 * Produce the row for one suite cell: run the trace factory and the
 * simulation with every would-be-fatal error captured into the row's
 * status, and the cell's wall time measured.  This is the unit of
 * work shared by the sequential and parallel suite runners — both
 * paths execute exactly this, so their rows can only differ in
 * wallSeconds.
 */
SuiteRow runSuiteCell(const std::string &name,
                      const SuiteTraceFactory &factory,
                      const SystemConfig &config,
                      const SuiteInstrument &instrument = {});

/**
 * Sweep @p config over every workload in @p names, isolating
 * failures: a run whose trace can't be produced or whose simulation
 * dies on a user error is recorded as an errored row and the rest of
 * the suite still completes.  Row order matches @p names.
 */
SuiteReport runSuite(const std::vector<std::string> &names,
                     const SuiteTraceFactory &factory,
                     const SystemConfig &config,
                     const SuiteInstrument &instrument = {});

/** runSuite over the synthetic workload registry. */
SuiteReport runSuite(const std::vector<std::string> &names,
                     std::size_t mem_refs, std::uint64_t seed,
                     const SystemConfig &config);

// ---- Named configurations from paper §5 ---------------------------

/** §4 baseline: no assist buffer. */
SystemConfig baselineConfig();

/** §5.1 victim cache variants (Figure 3 / Table 1). */
SystemConfig victimConfig(bool filter_swaps, bool filter_fills,
                          ConflictFilter filter = ConflictFilter::Or);

/** §5.2 next-line prefetcher variants (Figure 4). */
SystemConfig prefetchConfig(bool filtered,
                            ConflictFilter filter = ConflictFilter::Out);

/** §5.3 cache-exclusion variants (Figure 5); uses 16 buffer entries. */
SystemConfig excludeConfig(ExcludeAlgo algo);

/** §5.4 pseudo-associative cache (MCT-guided or baseline LRU). */
SystemConfig pseudoConfig(bool use_mct);

/** §5.4 comparison point: true 2-way set-associative L1. */
SystemConfig twoWayConfig();

/** §5.5 adaptive miss buffer. */
SystemConfig ambConfig(bool victim_conflicts, bool prefetch_capacity,
                       bool exclude_capacity, unsigned buf_entries = 8);

/** §5.5 single-policy reference points (best filtered variants). */
SystemConfig ambSingleVict(unsigned buf_entries = 8);
SystemConfig ambSinglePref(unsigned buf_entries = 8);
SystemConfig ambSingleExcl(unsigned buf_entries = 8);

} // namespace ccm

#endif // CCM_SIM_EXPERIMENT_HH
