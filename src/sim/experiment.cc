#include "sim/experiment.hh"

#include <chrono>
#include <exception>

#include "common/logging.hh"
#include "hierarchy/memsys.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "workloads/registry.hh"

namespace ccm
{

RunOutput
runTiming(TraceSource &trace, const SystemConfig &config,
          const MemSysInstrument &instrument)
{
    MemorySystem mem(config.mem);
    if (instrument)
        instrument(mem);
    Core core(config.core);
    RunOutput out;
    out.sim = core.run(trace, mem);
    out.mem = mem.stats();
    out.heat = mem.setHistograms();
    return out;
}

Expected<RunOutput>
tryRunTiming(TraceSource &trace, const SystemConfig &config,
             const MemSysInstrument &instrument)
{
    try {
        ScopedFatalThrow guard;
        return runTiming(trace, config, instrument);
    } catch (const FatalError &e) {
        return Status::badConfig(e.what());
    } catch (const std::exception &e) {
        return Status::internal("run failed: ", e.what());
    }
}

const SuiteRow *
SuiteReport::row(const std::string &name) const
{
    for (const auto &r : rows) {
        if (r.workload == name)
            return &r;
    }
    return nullptr;
}

SuiteRow
runSuiteCell(const std::string &name, const SuiteTraceFactory &factory,
             const SystemConfig &config,
             const SuiteInstrument &instrument)
{
    // Suite telemetry: one span and one wall-time sample per row,
    // covering the sequential and thread-pool runners alike.
    static obs::Histogram &row_wall_us =
        obs::MetricsRegistry::global().histogram(
            "ccm_suite_row_wall_us", "Suite row wall time (us)");
    static obs::Counter &rows_total =
        obs::MetricsRegistry::global().counter(
            "ccm_suite_rows_total", "Suite rows executed");
    obs::ScopedSpan span("row:" + name, "suite");

    const auto start = std::chrono::steady_clock::now();
    SuiteRow row;
    row.workload = name;

    auto trace = [&]() -> Expected<std::unique_ptr<TraceSource>> {
        try {
            ScopedFatalThrow guard;
            return factory(name);
        } catch (const FatalError &e) {
            return Status::badConfig(e.what());
        } catch (const std::exception &e) {
            return Status::internal("trace factory failed: ",
                                    e.what());
        }
    }();

    if (!trace.ok()) {
        row.status =
            trace.status().withContext("workload '" + name + "'");
    } else if (!trace.value()) {
        row.status = Status::internal(
            "trace factory returned null for '", name, "'");
    } else {
        MemSysInstrument per_run;
        if (instrument) {
            per_run = [&](MemorySystem &m) {
                instrument(name, m);
            };
        }
        Expected<RunOutput> run =
            tryRunTiming(*trace.value(), config, per_run);
        if (run.ok()) {
            row.out = run.take();
        } else {
            row.status = run.status().withContext("workload '" +
                                                  name + "'");
        }
    }
    row.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    row_wall_us.observe(
        static_cast<std::uint64_t>(row.wallSeconds * 1e6));
    rows_total.inc();
    return row;
}

SuiteReport
runSuite(const std::vector<std::string> &names,
         const SuiteTraceFactory &factory, const SystemConfig &config,
         const SuiteInstrument &instrument)
{
    SuiteReport report;
    report.rows.reserve(names.size());
    for (const auto &name : names)
        report.rows.push_back(
            runSuiteCell(name, factory, config, instrument));
    return report;
}

SuiteReport
runSuite(const std::vector<std::string> &names, std::size_t mem_refs,
         std::uint64_t seed, const SystemConfig &config)
{
    return runSuite(
        names,
        [&](const std::string &name) {
            return makeWorkloadChecked(name, mem_refs, seed);
        },
        config);
}

double
speedup(const RunOutput &base, const RunOutput &test)
{
    if (test.sim.cycles == 0)
        return 0.0;
    return static_cast<double>(base.sim.cycles) /
           static_cast<double>(test.sim.cycles);
}

SystemConfig
baselineConfig()
{
    SystemConfig cfg;
    cfg.mem.mode = AssistMode::None;
    return cfg;
}

SystemConfig
victimConfig(bool filter_swaps, bool filter_fills, ConflictFilter filter)
{
    SystemConfig cfg;
    cfg.mem.mode = AssistMode::VictimCache;
    cfg.mem.victim.filterSwaps = filter_swaps;
    cfg.mem.victim.filterFills = filter_fills;
    cfg.mem.victim.filter = filter;
    return cfg;
}

SystemConfig
prefetchConfig(bool filtered, ConflictFilter filter)
{
    SystemConfig cfg;
    cfg.mem.mode = AssistMode::PrefetchBuffer;
    cfg.mem.prefetch.filtered = filtered;
    cfg.mem.prefetch.filter = filter;
    return cfg;
}

SystemConfig
excludeConfig(ExcludeAlgo algo)
{
    SystemConfig cfg;
    cfg.mem.mode = AssistMode::BypassBuffer;
    cfg.mem.exclude.algo = algo;
    // "The Johnson algorithm ... did poorly with an 8-entry buffer,
    // which is why we use the slightly larger structure here."
    cfg.mem.bufEntries = 16;
    return cfg;
}

SystemConfig
pseudoConfig(bool use_mct)
{
    SystemConfig cfg;
    cfg.mem.mode = AssistMode::PseudoAssoc;
    cfg.mem.pseudoUseMct = use_mct;
    return cfg;
}

SystemConfig
twoWayConfig()
{
    SystemConfig cfg;
    cfg.mem.mode = AssistMode::None;
    cfg.mem.l1Assoc = 2;
    return cfg;
}

SystemConfig
ambConfig(bool victim_conflicts, bool prefetch_capacity,
          bool exclude_capacity, unsigned buf_entries)
{
    SystemConfig cfg;
    cfg.mem.mode = AssistMode::Amb;
    cfg.mem.amb.victimConflicts = victim_conflicts;
    cfg.mem.amb.prefetchCapacity = prefetch_capacity;
    cfg.mem.amb.excludeCapacity = exclude_capacity;
    cfg.mem.bufEntries = buf_entries;
    return cfg;
}

SystemConfig
ambSingleVict(unsigned buf_entries)
{
    // Best single victim variant found in §5.1: filter both swaps and
    // fills with the or-conflict filter.
    SystemConfig cfg = victimConfig(true, true, ConflictFilter::Or);
    cfg.mem.bufEntries = buf_entries;
    return cfg;
}

SystemConfig
ambSinglePref(unsigned buf_entries)
{
    // Best single prefetch variant: capacity-only prefetching with
    // the out-conflict filter.
    SystemConfig cfg = prefetchConfig(true, ConflictFilter::Out);
    cfg.mem.bufEntries = buf_entries;
    return cfg;
}

SystemConfig
ambSingleExcl(unsigned buf_entries)
{
    // Best single exclusion variant: bypass MCT-capacity misses.
    SystemConfig cfg = excludeConfig(ExcludeAlgo::Capacity);
    cfg.mem.bufEntries = buf_entries;
    return cfg;
}

} // namespace ccm
