#include "sim/parallel.hh"

#include <exception>

#include "common/sync.hh"
#include "common/thread_pool.hh"

namespace ccm
{

namespace
{

/** Sequential fallback: the calling thread runs every cell. */
SuiteReport
runSequential(const std::vector<std::string> &names,
              const SuiteTraceFactory &factory,
              const SystemConfig &config,
              const ParallelSuiteOptions &opts)
{
    SuiteReport report;
    report.rows.reserve(names.size());
    for (const auto &name : names) {
        const SystemConfig cfg =
            opts.configFor ? opts.configFor(name, config) : config;
        report.rows.push_back(
            runSuiteCell(name, factory, cfg, opts.instrument));
        if (opts.onRowDone)
            opts.onRowDone(report.rows.back());
    }
    return report;
}

} // namespace

SuiteReport
runSuiteParallel(const std::vector<std::string> &names,
                 const SuiteTraceFactory &factory,
                 const SystemConfig &config,
                 const ParallelSuiteOptions &opts)
{
    const std::size_t jobs = resolveJobCount(opts.jobs);
    if (jobs <= 1 || names.size() <= 1)
        return runSequential(names, factory, config, opts);

    SuiteReport report;
    report.rows.resize(names.size());

    // Contract point 1: instrument invocations are mutually excluded.
    Mutex instrument_mtx(LockRank::SuiteInstrumentGate,
                         "suite-instrument");
    SuiteInstrument serialized;
    if (opts.instrument) {
        serialized = [&](const std::string &name, MemorySystem &m) {
            MutexLock lock(instrument_mtx);
            opts.instrument(name, m);
        };
    }

    // Row slots are disjoint, so workers write them unlocked; the
    // done-flag handshake under `mtx` publishes each slot to the
    // calling thread before it reads the row.
    Mutex mtx(LockRank::SuiteRowDone, "suite-row-done");
    CondVar row_done;
    std::vector<char> done(names.size(), 0);

    ThreadPool pool(jobs < names.size() ? jobs : names.size());
    for (std::size_t i = 0; i < names.size(); ++i) {
        pool.submit([&, i] {
            SuiteRow row;
            try {
                const SystemConfig cfg =
                    opts.configFor ? opts.configFor(names[i], config)
                                   : config;
                row = runSuiteCell(names[i], factory, cfg,
                                   serialized);
            } catch (const std::exception &e) {
                // runSuiteCell already captures fatal/user errors;
                // this is the last-resort net (e.g. bad_alloc) that
                // keeps the pool's no-throw requirement.
                row.workload = names[i];
                row.status = Status::internal("suite cell failed: ",
                                              e.what());
            }
            report.rows[i] = std::move(row);
            {
                MutexLock lock(mtx);
                done[i] = 1;
            }
            row_done.notifyAll();
        });
    }

    // Contract point 3: completion delivery on the calling thread, in
    // names order, as soon as each prefix row is finished.
    for (std::size_t i = 0; i < names.size(); ++i) {
        {
            MutexLock lock(mtx);
            row_done.wait(
                mtx, [&]() CCM_REQUIRES(mtx) { return done[i] != 0; });
        }
        if (opts.onRowDone)
            opts.onRowDone(report.rows[i]);
    }
    pool.waitIdle();
    return report;
}

} // namespace ccm
