#include "sim/sharded.hh"

#include <chrono>
#include <utility>

#include "cache/cache.hh"
#include "cache/geometry.hh"
#include "common/logging.hh"
#include "common/sync.hh"
#include "common/thread_pool.hh"
#include "mct/shadow.hh"
#include "obs/metrics.hh"
#include "trace/vector_trace.hh"

namespace ccm
{

namespace
{

/** Microseconds each shard spent merging into the shared result. */
obs::Histogram &
shardMergeHistogram()
{
    static obs::Histogram &h =
        obs::MetricsRegistry::global().histogram(
            "ccm_shard_merge_us",
            "Per-shard merge time of sharded classification results");
    return h;
}

/** One shard's private output, prior to the merge. */
struct ShardState
{
    MemStats mem;
    SetHistograms heat;
    std::vector<obs::IntervalSample> intervals;
};

/**
 * Simulate shard @p shard of @p num_shards over the whole span.
 * Every memory reference advances the global reference counter (and
 * the interval-window clock); only references whose set the shard
 * owns touch the private cache/MCT.
 */
ShardState
runShard(const MemRecord *records, std::size_t count,
         const ShardedClassifyConfig &cfg, unsigned shard,
         unsigned num_shards)
{
    CacheGeometry geom(cfg.cacheBytes, cfg.assoc, cfg.lineBytes);
    Cache cache(geom);
    ShadowDirectory mct(geom.numSets(), cfg.mctDepth, cfg.mctTagBits);

    ShardState out;
    MemStats cur;      // running shard-local counters
    MemStats lastSnap; // counters at the last window boundary
    Count globalRef = 0;
    Count lastBoundary = 0;

    auto emitWindow = [&](Count upto) {
        obs::IntervalSample s;
        s.firstRef = lastBoundary + 1;
        s.lastRef = upto;
        s.delta = cur.minus(lastSnap);
        out.intervals.push_back(s);
        lastSnap = cur;
        lastBoundary = upto;
    };

    for (std::size_t i = 0; i < count; ++i) {
        const MemRecord &r = records[i];
        if (!r.isMem())
            continue;
        ++globalRef;

        const ByteAddr addr = r.dataAddr();
        const SetIndex set = geom.setOf(addr);
        if (set.value() % num_shards == shard) {
            ++cur.accesses;
            if (r.isStore())
                ++cur.stores;
            else
                ++cur.loads;

            if (cache.access(addr, r.isStore())) {
                ++cur.l1Hits;
            } else {
                ++cur.l1Misses;
                const Tag tag = geom.tagOf(addr);
                const MissClass cls = mct.classify(set, tag);
                if (isConflict(cls))
                    ++cur.conflictMisses;
                else
                    ++cur.capacityMisses;
                FillResult ev =
                    cache.fill(addr, isConflict(cls), r.isStore());
                if (ev.valid)
                    mct.recordEviction(set, geom.tagOf(ev.lineAddr));
            }
        }
        // Window boundaries are global-reference indices, so every
        // shard emits the same window sequence (zero deltas included)
        // and the merge is a plain window-index-wise sum.
        if (cfg.interval != 0 && globalRef % cfg.interval == 0)
            emitWindow(globalRef);
    }
    if (cfg.interval != 0 && globalRef > lastBoundary)
        emitWindow(globalRef);

    out.mem = cur;
    out.heat.sets = geom.numSets();
    out.heat.l1Misses = cache.setMissHistogram();
    out.heat.l1Evictions = cache.setEvictionHistogram();
    out.heat.mctLookups = mct.setLookupHistogram();
    out.heat.mctConflicts = mct.setConflictHistogram();
    return out;
}

/** Counter-wise sum of @p src into @p dst. */
void
addStats(MemStats &dst, const MemStats &src)
{
    MemStats::forEachField([&](const char *, Count MemStats::*f) {
        dst.*f += src.*f;
    });
}

/** Element-wise sum (dst adopts src's size on first merge). */
void
addHistogram(std::vector<Count> &dst, const std::vector<Count> &src)
{
    if (dst.empty()) {
        dst = src;
        return;
    }
    for (std::size_t i = 0; i < dst.size() && i < src.size(); ++i)
        dst[i] += src[i];
}

/**
 * Fold one shard's output into the shared result.  Every operation
 * here is a commutative sum over disjoint or index-aligned state, so
 * the completion order of shards cannot change the merged bytes.
 */
void
mergeShard(ShardedClassifyResult &res, ShardState &&s)
{
    addStats(res.mem, s.mem);
    res.heat.sets = s.heat.sets;
    addHistogram(res.heat.l1Misses, s.heat.l1Misses);
    addHistogram(res.heat.l1Evictions, s.heat.l1Evictions);
    addHistogram(res.heat.mctLookups, s.heat.mctLookups);
    addHistogram(res.heat.mctConflicts, s.heat.mctConflicts);

    if (res.intervals.empty()) {
        res.intervals = std::move(s.intervals);
    } else {
        if (res.intervals.size() != s.intervals.size()) {
            ccm_panic("shard interval series disagree: ",
                      res.intervals.size(), " vs ",
                      s.intervals.size(), " windows");
        }
        for (std::size_t w = 0; w < s.intervals.size(); ++w) {
            MemStats sum = res.intervals[w].delta;
            addStats(sum, s.intervals[w].delta);
            res.intervals[w].delta = sum;
        }
    }
}

} // namespace

ShardedClassifyResult
runShardedClassify(const MemRecord *records, std::size_t count,
                   const ShardedClassifyConfig &cfg)
{
    const unsigned shards = cfg.shards == 0 ? 1 : cfg.shards;

    ShardedClassifyResult res;
    res.shards = shards;
    res.interval = cfg.interval;

    if (shards == 1) {
        // The inline path runs the identical worker body, so K > 1
        // has a bit-exact sequential reference by construction.
        mergeShard(res, runShard(records, count, cfg, 0, 1));
    } else {
        Mutex mergeMu(LockRank::ShardMerge, "shard-merge");
        obs::Histogram &mergeUs = shardMergeHistogram();

        ThreadPool pool(shards);
        for (unsigned k = 0; k < shards; ++k) {
            pool.submit([&, k] {
                ShardState s =
                    runShard(records, count, cfg, k, shards);
                const auto t0 = std::chrono::steady_clock::now();
                {
                    MutexLock lock(mergeMu);
                    mergeShard(res, std::move(s));
                }
                mergeUs.observe(static_cast<std::uint64_t>(
                    std::chrono::duration_cast<
                        std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count()));
            });
        }
        pool.waitIdle();
    }

    res.references = res.mem.accesses;
    res.misses = res.mem.l1Misses;
    res.missRate = safeRatio(res.misses, res.references);
    return res;
}

ShardedClassifyResult
runShardedClassify(TraceSource &trace,
                   const ShardedClassifyConfig &cfg)
{
    VectorTrace captured = VectorTrace::capture(trace);
    return runShardedClassify(captured.records().data(),
                              captured.records().size(), cfg);
}

} // namespace ccm
