/**
 * @file
 * Set-sharded classification: the raw-speed path for the cache + MCT
 * classify pipeline (no timing model, no oracle).
 *
 * A set-indexed cache never moves a line between sets, and the MCT is
 * likewise per-set state, so the classify pipeline factors exactly
 * along the set index: shard k simulates only the references whose
 * set satisfies set % K == k, against a private Cache + shadow
 * directory, and no other shard can observe or perturb it.  Every
 * shard scans the full record stream (the scan is cheap; simulation
 * is not) so that all shards agree on the global reference count that
 * drives interval-window boundaries.
 *
 * Merge contract (mirrors the suite runner's delivery contract,
 * docs/PERFORMANCE.md "Sharded classification"):
 *  1. every merged quantity is a commutative, associative sum —
 *     counter-wise for MemStats, element-wise for heat histograms,
 *     window-index-wise for interval deltas — so merge order cannot
 *     change the result;
 *  2. workers merge under one LockRank::ShardMerge mutex, taken only
 *     inside pool tasks (below ThreadPool's own leaf lock ordering
 *     concerns: the pool lock is released while tasks run);
 *  3. the output for any K is bit-identical to shards == 1, which
 *     runs the very same worker body inline — enforced by tests and
 *     the ci.sh sharded-determinism gate.
 *
 * What sharding deliberately drops: the oracle (a global fully
 * associative LRU whose verdicts depend on the interleaved stream)
 * and the timing model (MSHR/bus contention couple sets).  Both stay
 * sequential-only; --shards composes with the suite-level --jobs
 * knob, not with --run timing mode.
 */

#ifndef CCM_SIM_SHARDED_HH
#define CCM_SIM_SHARDED_HH

#include <cstddef>
#include <vector>

#include "common/status.hh"
#include "common/types.hh"
#include "hierarchy/memstats.hh"
#include "obs/interval.hh"
#include "trace/record.hh"
#include "trace/source.hh"

namespace ccm
{

/** Parameters of one sharded classification run. */
struct ShardedClassifyConfig
{
    std::size_t cacheBytes = 16 * 1024;
    unsigned assoc = 1;
    unsigned lineBytes = 64;
    /** Stored-tag width; 0 = full tag. */
    unsigned mctTagBits = 0;
    /** Evicted tags remembered per set (1 = the paper's MCT). */
    unsigned mctDepth = 1;

    /**
     * Shard count K.  0 and 1 both mean "run the worker inline on the
     * calling thread"; K > number of sets is allowed (the surplus
     * shards own no sets and contribute zero to every sum).
     */
    unsigned shards = 1;

    /**
     * Interval-sample window in memory references; 0 = no interval
     * series.  Boundaries are *global* reference indices, so the
     * merged series is window-aligned with a sequential run.
     */
    Count interval = 0;
};

/** Everything one sharded classification run produces. */
struct ShardedClassifyResult
{
    Count references = 0; ///< memory references simulated
    Count misses = 0;     ///< L1 misses (== mem.l1Misses)
    double missRate = 0.0;

    /**
     * Classify-path counters on the MemStats schema (accesses, loads,
     * stores, l1Hits, l1Misses, conflictMisses, capacityMisses; the
     * timing-only counters stay zero).
     */
    MemStats mem;

    /** Per-set activity, summed across shards (disjoint by design). */
    SetHistograms heat;

    /**
     * Interval series (empty when cfg.interval == 0).  Oracle
     * agreement is empty: the sharded path runs no oracle.
     */
    std::vector<obs::IntervalSample> intervals;

    /** Window length the series was sampled at (cfg.interval). */
    Count interval = 0;

    unsigned shards = 1; ///< shard count actually used
};

/**
 * Classify @p count records (all shards read the same span) on
 * cfg.shards workers.  The span must stay valid for the duration.
 */
ShardedClassifyResult runShardedClassify(
    const MemRecord *records, std::size_t count,
    const ShardedClassifyConfig &cfg);

/**
 * Convenience: capture @p trace (reset first) into memory, then run
 * the span overload.  Callers that already hold decoded records
 * (TraceFileReader::records(), VectorTrace::records()) should use
 * the span overload directly and skip the capture copy.
 */
ShardedClassifyResult runShardedClassify(
    TraceSource &trace, const ShardedClassifyConfig &cfg);

} // namespace ccm

#endif // CCM_SIM_SHARDED_HH
