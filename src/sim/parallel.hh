/**
 * @file
 * Parallel suite execution: fan the (workload, config) cells of a
 * suite sweep over a fixed-size worker pool (common/thread_pool.hh).
 *
 * Every cell of the paper's evaluation cross-product — 16 workloads ×
 * {victim, prefetch, exclusion, pseudo-associative, AMB} × filter
 * variants — is an independent deterministic simulation, so the sweep
 * parallelizes without touching the simulation layers.  The runner
 * preserves the sequential contract exactly:
 *
 *  - row order matches @p names;
 *  - per-row failure isolation (a throwing cell becomes an errored
 *    SuiteRow; the rest of the suite completes);
 *  - bit-identical stats vs. runSuite — a row can differ from its
 *    sequential twin only in SuiteRow::wallSeconds (tested in
 *    tests/test_parallel.cc).
 *
 * ## Hook-delivery thread-safety contract
 *
 * Observability attaches through callbacks, and the runner makes
 * their threading explicit so obs sinks need no locking of their own
 * (docs/OBSERVABILITY.md "Hooks under --jobs"):
 *
 *  1. `instrument` (SuiteInstrument) calls are **mutually excluded**:
 *     at most one executes at any time, on the worker thread that is
 *     about to run the row.  Instruments may therefore mutate shared
 *     containers (e.g. a name→sampler map) without locking.
 *  2. Hooks an instrument attaches to a machine (access hooks, MCT
 *     lookup hooks) fire **only on the single worker thread running
 *     that row** — per-row observer state is single-threaded.
 *     Observers shared across rows are the one thing that would need
 *     their own synchronization; prefer per-row observers.
 *  3. `onRowDone` fires on the **calling thread**, in `names` order,
 *     as rows complete — the serialized completion channel for
 *     streaming output or cross-row aggregation.
 */

#ifndef CCM_SIM_PARALLEL_HH
#define CCM_SIM_PARALLEL_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "sim/experiment.hh"

namespace ccm
{

/** How a parallel sweep runs and reports. */
struct ParallelSuiteOptions
{
    /**
     * Worker threads.  1 (the default) executes on the calling
     * thread — exactly the sequential runSuite; 0 means one worker
     * per hardware thread (resolveJobCount).
     */
    std::size_t jobs = 1;

    /** Per-row instrumentation; serialized (contract point 1). */
    SuiteInstrument instrument;

    /**
     * Row-completion callback, delivered on the calling thread in
     * names order (contract point 3).  The row passed is the one
     * that ends up in the report.
     */
    std::function<void(const SuiteRow &)> onRowDone;

    /**
     * Per-workload configuration override: called once per row with
     * the workload name and the sweep's base config, returning the
     * config that row actually runs.  This is how --auto-size applies
     * MRC-derived geometry per workload (src/sample/recommend.hh).
     * Must be pure (it may run concurrently under --jobs); absent
     * means every row runs the base config.
     */
    std::function<SystemConfig(const std::string &,
                               const SystemConfig &)>
        configFor;
};

/**
 * runSuite over a worker pool.  With opts.jobs == 1 this is
 * byte-for-byte the sequential sweep (plus onRowDone delivery); with
 * more workers, rows compute concurrently and the report is
 * identical except for wallSeconds.
 */
SuiteReport runSuiteParallel(const std::vector<std::string> &names,
                             const SuiteTraceFactory &factory,
                             const SystemConfig &config,
                             const ParallelSuiteOptions &opts = {});

} // namespace ccm

#endif // CCM_SIM_PARALLEL_HH
