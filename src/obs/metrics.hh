/**
 * @file
 * Process-wide metrics registry: named counters, gauges, and fixed
 * log2-bucket latency histograms with derived p50/p95/p99, rendered
 * as Prometheus text exposition or a kind:"metrics" ccm-stats JSON
 * document (docs/OBSERVABILITY.md "Metrics").
 *
 * Telemetry is strictly observational — nothing in here feeds back
 * into simulation results — and the hot path is lock-free: updates
 * are relaxed atomic adds on instruments whose addresses are stable
 * for the registry's lifetime.  The LockRank::ObsMetrics mutex is
 * taken only to register a new instrument or to render, both of
 * which happen off the classify path, so a caller may hold any
 * lower-ranked lock (it is the highest rank but ObsSpans — see
 * docs/STATIC_ANALYSIS.md).
 *
 * Renders are racy by design: a snapshot taken while writers are
 * active may be mid-update by a few counts.  Every individual load
 * is atomic, totals are monotone, and a quiesced registry renders
 * exact values — which is what the tests pin down.
 */

#ifndef CCM_OBS_METRICS_HH
#define CCM_OBS_METRICS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/sync.hh"
#include "obs/json.hh"

namespace ccm::obs
{

/** What a registered instrument is. */
enum class MetricType
{
    Counter,
    Gauge,
    Histogram,
};

/** Stable lower-case name ("counter", "gauge", "histogram"). */
const char *toString(MetricType type);

/** Monotonically increasing event count. */
class Counter
{
  public:
    void
    inc(std::uint64_t delta = 1)
    {
        v_.fetch_add(delta, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> v_{0};
};

/** Point-in-time level (queue depth, active streams, generation). */
class Gauge
{
  public:
    void
    set(std::int64_t value)
    {
        v_.store(value, std::memory_order_relaxed);
    }

    void
    add(std::int64_t delta)
    {
        v_.fetch_add(delta, std::memory_order_relaxed);
    }

    std::int64_t
    value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::int64_t> v_{0};
};

/**
 * Fixed log2-bucket histogram of non-negative samples (latencies in
 * microseconds, sizes).  Bucket i holds samples whose bit width is i:
 * bucket 0 = {0}, bucket i = [2^(i-1), 2^i - 1] — 65 buckets cover
 * all of uint64 with no configuration and a branch-free index
 * (std::bit_width), so observe() is two relaxed adds.
 */
class Histogram
{
  public:
    static constexpr std::size_t kBuckets = 65;

    void
    observe(std::uint64_t sample)
    {
        buckets_[bucketIndex(sample)].fetch_add(
            1, std::memory_order_relaxed);
        sum_.fetch_add(sample, std::memory_order_relaxed);
    }

    /** Index of the bucket holding @p sample (its bit width). */
    static std::size_t bucketIndex(std::uint64_t sample);

    /** Smallest value bucket @p i can hold. */
    static std::uint64_t bucketLo(std::size_t i);

    /** Largest value bucket @p i can hold (inclusive). */
    static std::uint64_t bucketHi(std::size_t i);

    /** A consistent-enough copy of the bucket counts (see file doc). */
    struct Snapshot
    {
        std::uint64_t count = 0;
        std::uint64_t sum = 0;
        std::array<std::uint64_t, kBuckets> buckets{};

        /**
         * Quantile estimate for @p q in (0,1]: find the bucket of the
         * rank-ceil(q*count) sample and interpolate linearly from the
         * bucket's lower to its upper bound by the sample's position
         * within it.  Deterministic, so goldens can pin it down; 0.0
         * for an empty histogram.
         */
        double percentile(double q) const;
    };

    Snapshot snapshot() const;

  private:
    std::atomic<std::uint64_t> sum_{0};
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/**
 * Named instrument registry.  counter()/gauge()/histogram() return a
 * reference that stays valid for the registry's lifetime — callers
 * look an instrument up once and keep the reference, so steady-state
 * updates never touch the registry lock.  Re-registering an existing
 * name returns the same instrument; registering it as a different
 * type is a ccm_panic (a programmer error, not input).
 *
 * Names must match the Prometheus charset
 * ([a-zA-Z_:][a-zA-Z0-9_:]*); the convention is
 * ccm_<layer>_<what>_<unit> with counters suffixed _total.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** The process-wide registry every subsystem registers into. */
    static MetricsRegistry &global();

    Counter &counter(std::string_view name, std::string_view help)
        CCM_EXCLUDES(mu);
    Gauge &gauge(std::string_view name, std::string_view help)
        CCM_EXCLUDES(mu);
    Histogram &histogram(std::string_view name, std::string_view help)
        CCM_EXCLUDES(mu);

    /** Registered instrument count (tests). */
    std::size_t size() const CCM_EXCLUDES(mu);

    /**
     * Prometheus text exposition (version 0.0.4): # HELP / # TYPE
     * per metric, cumulative _bucket{le="..."} / _sum / _count rows
     * for histograms (empty buckets above the highest occupied one
     * are elided; the +Inf bucket is always present).
     */
    std::string prometheusText() const CCM_EXCLUDES(mu);

    /**
     * The "metrics" array of a kind:"metrics" document: one object
     * per instrument in registration order, histograms carrying
     * count/sum/p50/p95/p99 and cumulative {le, count} buckets
     * (obs::metricsDocument wraps this in the schema header).
     */
    JsonValue metricsJson() const CCM_EXCLUDES(mu);

  private:
    struct Entry
    {
        std::string name;
        std::string help;
        MetricType type;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    Entry &findOrCreate(std::string_view name, std::string_view help,
                        MetricType type) CCM_EXCLUDES(mu);

    mutable Mutex mu{LockRank::ObsMetrics, "obs-metrics"};
    /** Stable addresses: entries are never erased or reallocated. */
    std::vector<std::unique_ptr<Entry>> entries_ CCM_GUARDED_BY(mu);
};

} // namespace ccm::obs

#endif // CCM_OBS_METRICS_HH
