/**
 * @file
 * Classification event tracing: a rate-limitable recorder of
 * individual MCT lookups (set, stored tag, incoming tag, verdict,
 * oracle agreement when an oracle is present).  Off by default —
 * nothing in the hot path unless a trace is attached.
 *
 * The recorder plugs into MissClassificationTable/ShadowDirectory
 * lookup hooks for the table-side fields and (in classification runs)
 * into a ClassifyObserver for the oracle verdict, which is annotated
 * onto the most recently recorded event.
 */

#ifndef CCM_OBS_EVENTS_HH
#define CCM_OBS_EVENTS_HH

#include <cstddef>
#include <vector>

#include "mct/classify_run.hh"
#include "mct/mct.hh"
#include "obs/interval.hh"

namespace ccm::obs
{

/** Rate limiting and capacity for an event trace. */
struct EventTraceOptions
{
    /** Record every Nth lookup (1 = all). */
    Count sampleEvery = 1;
    /** Stop recording (but keep counting) past this many events. */
    std::size_t maxEvents = 4096;
};

/** One recorded classification event. */
struct ClassifyEvent
{
    /** 1-based reference index when known, 0 otherwise. */
    Count ref = 0;
    std::size_t set = 0;
    Addr storedTag = 0;
    bool storedValid = false;
    Addr incomingTag = 0;
    MissClass verdict = MissClass::Capacity;
    /** Oracle verdict, when an oracle was watching. */
    bool oracleKnown = false;
    MissClass oracle = MissClass::Capacity;

    /** MCT/oracle agreement; meaningless unless oracleKnown. */
    bool
    agrees() const
    {
        return isConflict(verdict) == isConflict(oracle);
    }
};

/** Bounded, rate-limited recorder of MCT lookup events. */
class ClassifyEventTrace
{
  public:
    explicit ClassifyEventTrace(EventTraceOptions options = {})
        : opts(options)
    {
        if (opts.sampleEvery == 0)
            opts.sampleEvery = 1;
    }

    /** The hook to install via setLookupHook (captures this). */
    MctLookupHook
    hook()
    {
        return [this](const MctLookupEvent &e) { onLookup(e); };
    }

    /** Advance the reference index events are stamped with. */
    void noteReference() { ++refIndex; }

    /** Attach the oracle verdict to the most recent recorded event. */
    void
    annotateOracle(MissClass oracle)
    {
        if (lastRecorded && !events_.empty()) {
            events_.back().oracleKnown = true;
            events_.back().oracle = oracle;
        }
    }

    const std::vector<ClassifyEvent> &events() const { return events_; }

    /** Total lookups observed (recorded or not). */
    Count seen() const { return seen_; }

    /** Lookups skipped by rate limiting or the event cap. */
    Count dropped() const { return seen_ - recorded_; }

    Count recorded() const { return recorded_; }

    const EventTraceOptions &options() const { return opts; }

  private:
    void
    onLookup(const MctLookupEvent &e)
    {
        ++seen_;
        lastRecorded = false;
        if ((seen_ - 1) % opts.sampleEvery != 0)
            return;
        if (events_.size() >= opts.maxEvents)
            return;
        ClassifyEvent ev;
        ev.ref = refIndex;
        ev.set = e.set.value();
        ev.storedTag = e.storedTag;
        ev.storedValid = e.storedValid;
        ev.incomingTag = e.incomingTag.value();
        ev.verdict = e.verdict;
        events_.push_back(ev);
        ++recorded_;
        lastRecorded = true;
    }

    EventTraceOptions opts;
    Count seen_ = 0;
    Count recorded_ = 0;
    Count refIndex = 0;
    bool lastRecorded = false;
    std::vector<ClassifyEvent> events_;
};

/**
 * Ready-made ClassifyObserver wiring an IntervalSampler and/or an
 * event trace into classifyRun (either may be null):
 *
 *   IntervalSampler sampler(10'000);
 *   ClassifyEventTrace trace;
 *   ClassifyObservation watch(&sampler, &trace);
 *   cfg.observer = &watch;
 *   cfg.lookupHook = trace.hook();
 *   auto res = classifyRun(src, cfg);
 *   sampler.finishClassify();
 */
class ClassifyObservation : public ClassifyObserver
{
  public:
    ClassifyObservation(IntervalSampler *sampler,
                        ClassifyEventTrace *trace)
        : sampler_(sampler), trace_(trace)
    {
    }

    void
    onReference(bool miss) override
    {
        if (trace_)
            trace_->noteReference();
        if (sampler_) {
            sampler_->onClassifiedReference(miss);
            if (!miss)
                sampler_->onClassifiedTick();
        }
    }

    void
    onMiss(SetIndex, Tag, MissClass mct, MissClass oracle) override
    {
        if (sampler_)
            sampler_->onClassifiedMiss(mct, oracle);
        if (trace_)
            trace_->annotateOracle(oracle);
    }

  private:
    IntervalSampler *sampler_;
    ClassifyEventTrace *trace_;
};

} // namespace ccm::obs

#endif // CCM_OBS_EVENTS_HH
