/**
 * @file
 * Mutex-guarded live-stats publication cell: the bridge between a
 * simulation thread that produces MemStats snapshots mid-run and the
 * observer threads (control socket, stats document builders) that
 * read them while the run is in flight.
 *
 * The sim thread calls publish() at its snapshot cadence; readers
 * call snapshot() and get a consistent copy (stats + the optional
 * rolling-window JSON taken under one lock).  This is the one
 * concurrency primitive in the observability layer, and it carries
 * the full capability-annotation contract of src/common/sync.hh:
 * every field is CCM_GUARDED_BY the cell's LockRank::ObsLive mutex,
 * so a build with Clang thread-safety analysis proves no reader ever
 * touches a half-written snapshot.
 */

#ifndef CCM_OBS_LIVE_HH
#define CCM_OBS_LIVE_HH

#include "common/sync.hh"
#include "hierarchy/memstats.hh"
#include "obs/json.hh"

namespace ccm::obs
{

/** One publish/read cell for in-flight run statistics. */
class LiveStatsCell
{
  public:
    /** Consistent copy of everything published so far. */
    struct Snapshot
    {
        MemStats stats;
        JsonValue window;
        bool haveWindow = false;
    };

    /** Publish counters only (no interval window configured). */
    void
    publish(const MemStats &stats) CCM_EXCLUDES(mu)
    {
        MutexLock lock(mu);
        stats_ = stats;
    }

    /** Publish counters plus the current rolling-window section. */
    void
    publish(const MemStats &stats, JsonValue window, bool have_window)
        CCM_EXCLUDES(mu)
    {
        MutexLock lock(mu);
        stats_ = stats;
        window_ = std::move(window);
        haveWindow_ = have_window;
    }

    /** Copy out the latest published state, atomically. */
    Snapshot
    snapshot() const CCM_EXCLUDES(mu)
    {
        MutexLock lock(mu);
        return Snapshot{stats_, window_, haveWindow_};
    }

  private:
    mutable Mutex mu{LockRank::ObsLive, "obs-live-stats"};
    MemStats stats_ CCM_GUARDED_BY(mu);
    JsonValue window_ CCM_GUARDED_BY(mu);
    bool haveWindow_ CCM_GUARDED_BY(mu) = false;
};

} // namespace ccm::obs

#endif // CCM_OBS_LIVE_HH
