/**
 * @file
 * Interval time-series sampling: snapshot delta-counters every N
 * memory references during a run, producing miss-rate /
 * conflict-fraction / MCT-accuracy series instead of one end-of-run
 * aggregate.  Interval-resolved statistics are what make cache
 * studies analyzable (Byrne 2018; Bueno et al. 2024) — conflict
 * misses cluster in phases, and aggregates hide that.
 *
 * Two feeding modes share one sampler:
 *  - timing runs: attach via MemorySystem::setAccessHook and call
 *    onAccess() with the live MemStats; finish(finalStats) flushes
 *    the residual window.
 *  - classification runs: feed onClassifiedReference()/onClassifiedMiss()
 *    (e.g. from a ClassifyObserver) and call finishClassify(); the
 *    sampler synthesizes the reference/miss counters internally and
 *    additionally tracks per-interval oracle agreement.
 *
 * Invariant either way: the counter-wise sum of every sample's delta
 * equals the final aggregate counters (tested in test_obs).
 */

#ifndef CCM_OBS_INTERVAL_HH
#define CCM_OBS_INTERVAL_HH

#include <vector>

#include "hierarchy/memstats.hh"
#include "mct/accuracy.hh"
#include "mct/miss_class.hh"

namespace ccm::obs
{

/** One sampling window: [firstRef, lastRef] and its counter deltas. */
struct IntervalSample
{
    Count firstRef = 0;   ///< 1-based, inclusive
    Count lastRef = 0;    ///< 1-based, inclusive
    /** Counter deltas over the window (derived ratios apply). */
    MemStats delta;
    /** Oracle-agreement deltas (classification runs; else empty). */
    AccuracyScorer accuracy;
};

/** Snapshots delta-counters every N references. */
class IntervalSampler
{
  public:
    /** @param every window length in memory references (>= 1) */
    explicit IntervalSampler(Count every)
        : every_(every == 0 ? 1 : every), nextBoundary(every_)
    {
    }

    Count every() const { return every_; }

    /**
     * Cap retained samples at @p max_samples, turning the sampler
     * into a rolling window: once full, emitting a new sample
     * discards the oldest (counted in droppedSamples()).  0 restores
     * the unbounded default.  Long-running consumers (the ccm-serve
     * streams) need this — an unbounded series on an endless stream
     * is an unbounded allocation.
     *
     * Note the sum-of-deltas == aggregate invariant only holds while
     * droppedSamples() == 0; validateStatsDoc skips the check for
     * rolling documents that declare drops.
     */
    void
    setRollingCapacity(std::size_t max_samples)
    {
        rollingCap = max_samples;
        trimToCap();
    }

    /** Samples discarded off the front of the rolling window. */
    Count droppedSamples() const { return dropped; }

    // ---- Timing-run channel ----------------------------------------

    /**
     * Observe the live counters after one access (wire to
     * MemorySystem::setAccessHook).  Emits a sample whenever
     * cur.accesses crosses a window boundary.
     */
    void
    onAccess(const MemStats &cur)
    {
        if (cur.accesses >= nextBoundary)
            emit(cur);
    }

    /** Flush the final partial window against the run's end state. */
    void
    finish(const MemStats &final_stats)
    {
        if (final_stats.accesses > lastSnap.accesses)
            emit(final_stats);
    }

    // ---- Classification-run channel --------------------------------

    /** One memory reference; @p miss is the real cache's outcome. */
    void
    onClassifiedReference(bool miss)
    {
        ++internal.accesses;
        if (miss)
            ++internal.l1Misses;
    }

    /** One classified miss, with both verdicts. */
    void
    onClassifiedMiss(MissClass mct, MissClass oracle)
    {
        if (isConflict(mct))
            ++internal.conflictMisses;
        else
            ++internal.capacityMisses;
        acc.record(mct, oracle);
        // Boundary check here (not onClassifiedReference) so a miss's
        // accuracy lands in the same window as the miss itself.
        if (internal.accesses >= nextBoundary)
            emit(internal);
    }

    /** Hit-path boundary check; call after onClassifiedReference. */
    void
    onClassifiedTick()
    {
        if (internal.accesses >= nextBoundary)
            emit(internal);
    }

    /** Flush the final partial window of a classification run. */
    void
    finishClassify()
    {
        if (internal.accesses > lastSnap.accesses)
            emit(internal);
    }

    const std::vector<IntervalSample> &samples() const
    {
        return samples_;
    }

  private:
    void
    emit(const MemStats &cur)
    {
        IntervalSample s;
        s.firstRef = lastSnap.accesses + 1;
        s.lastRef = cur.accesses;
        s.delta = cur.minus(lastSnap);
        s.accuracy = acc.minus(lastAcc);
        samples_.push_back(s);
        trimToCap();
        lastSnap = cur;
        lastAcc = acc;
        nextBoundary = cur.accesses + every_;
    }

    void
    trimToCap()
    {
        if (rollingCap == 0)
            return;
        while (samples_.size() > rollingCap) {
            samples_.erase(samples_.begin());
            ++dropped;
        }
    }

    Count every_;
    std::size_t rollingCap = 0; ///< 0 = keep every sample
    Count dropped = 0;          ///< samples evicted by the cap
    Count nextBoundary;       ///< next emit at or after this many refs
    MemStats lastSnap;        ///< counters at the last boundary
    MemStats internal;        ///< classification-channel counters
    AccuracyScorer acc;       ///< running oracle agreement
    AccuracyScorer lastAcc;   ///< agreement at the last boundary
    std::vector<IntervalSample> samples_;
};

} // namespace ccm::obs

#endif // CCM_OBS_INTERVAL_HH
