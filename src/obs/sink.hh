/**
 * @file
 * Stats sink: one schema-versioned document path from simulation
 * results (MemStats, SimResult, MCT accuracy, per-set heatmaps,
 * interval series, event traces) to text, JSON, or CSV output.
 *
 * Everything serializes through a JsonValue document built by the
 * builders below; the text and CSV writers are flattenings of that
 * same document, so the three formats can never disagree about names
 * or values.  Field names come from MemStats::forEachField /
 * forEachDerived — the sink never invents counter names.
 *
 * Schema (docs/OBSERVABILITY.md): every document carries
 *   "schema": "ccm-stats", "schema_version": kStatsSchemaVersion,
 *   "kind": "run" | "suite"
 * and validateStatsDoc() checks structural invariants (including
 * sum-of-interval-deltas == final aggregates) for both the tests and
 * `ccm-report --check`.
 */

#ifndef CCM_OBS_SINK_HH
#define CCM_OBS_SINK_HH

#include <functional>
#include <string>
#include <string_view>

#include "common/status.hh"
#include "common/table.hh"
#include "mct/accuracy.hh"
#include "obs/events.hh"
#include "obs/interval.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "sample/engine.hh"
#include "sim/experiment.hh"
#include "sim/sharded.hh"

namespace ccm::obs
{

/** Version stamped into every document; bump on breaking changes. */
inline constexpr std::uint64_t kStatsSchemaVersion = 1;

/** Document identifier stamped into every document. */
inline constexpr const char *kStatsSchemaName = "ccm-stats";

/** Output encodings the sink can write. */
enum class StatsFormat
{
    Text, ///< flattened "path value" lines
    Json, ///< the document itself
    Csv,  ///< flattened "path,value" lines with a header row
};

/** @return "text" / "json" / "csv". */
const char *toString(StatsFormat f);

/** Parse a --stats-format argument ("text" | "json" | "csv"). */
Expected<StatsFormat> parseStatsFormat(std::string_view name);

// ---- Section builders ---------------------------------------------

/** {"counters": {...}, "derived": {...}} via forEachField/Derived. */
JsonValue memStatsToJson(const MemStats &stats);

/** {"cycles", "instructions", "mem_refs", "ipc"}. */
JsonValue simResultToJson(const SimResult &sim);

/** Confusion matrix + accuracy percentages. */
JsonValue accuracyToJson(const AccuracyScorer &scorer);

/**
 * Heatmap section: per-set arrays plus a "top_sets" digest of the
 * @p top_sets busiest sets by L1 misses (ties broken by set index).
 */
JsonValue setHistogramsToJson(const SetHistograms &heat,
                              std::size_t top_sets = 8);

/** Interval time-series section: {"every", "samples": [...]}. */
JsonValue intervalsToJson(const IntervalSampler &sampler);

/**
 * Same section from a bare sample vector (the merged series of a
 * sharded classification run, which never owns a sampler).
 */
JsonValue intervalSamplesToJson(
    Count every, const std::vector<IntervalSample> &samples);

/** Event-trace section: rate-limit totals + the recorded events. */
JsonValue eventsToJson(const ClassifyEventTrace &trace);

// ---- Document builders --------------------------------------------

/**
 * Build a kind:"run" document for one finished timing run.
 * @p intervals and @p events are optional sections (nullptr = omit;
 * an empty sampler/trace is also omitted).  Callers may set() extra
 * top-level fields (e.g. "config") afterwards.
 */
JsonValue runDocument(const std::string &workload, const RunOutput &out,
                      const IntervalSampler *intervals = nullptr,
                      const ClassifyEventTrace *events = nullptr);

/**
 * Build a kind:"suite" document.  Errored rows become
 * {"workload", "error"} stubs; @p intervals_for (optional) maps a
 * workload name to its sampler, nullptr meaning none.
 */
JsonValue suiteDocument(
    const SuiteReport &report,
    const std::function<const IntervalSampler *(const std::string &)>
        &intervals_for = {});

/**
 * One row of a classify sweep (the sharded fast path's analogue of
 * SuiteRow): a result, or why this workload's run failed.
 */
struct ClassifyRow
{
    std::string workload;
    Status status;
    ShardedClassifyResult out; ///< meaningful only when status.isOk()
    /** Wall time for this row; the one nondeterministic field. */
    double wallSeconds = 0.0;

    bool ok() const { return status.isOk(); }
};

/**
 * Build a kind:"classify" document for one sharded classification
 * run.  Deliberately omits the shard count: like --jobs, --shards is
 * an execution knob, and the document is byte-identical for every K
 * (the ci.sh sharded-determinism gate diffs exactly these bytes).
 */
JsonValue classifyDocument(const std::string &workload,
                           const ShardedClassifyResult &out);

/**
 * Build a kind:"classify-suite" document: the same rows/summary shape
 * as kind:"suite", with classify bodies and no sim section.
 */
JsonValue classifySuiteDocument(const std::vector<ClassifyRow> &rows);

/**
 * Build a kind:"sample" document for one sampling analysis
 * (src/sample): the sampling parameters, the miss-ratio curve, the
 * geometry recommendation, the interval reconstruction with its
 * per-stat error bars, and — when the report carries exact
 * references — predicted-vs-exact error columns.  The wall_seconds_*
 * fields are the only nondeterministic ones (same strip pattern as
 * every other document's wall_seconds).
 */
JsonValue sampleDocument(const std::string &workload,
                         const sample::SampleReport &rep);

/** {"headers": [...], "rows": [[...], ...]} from a result table. */
JsonValue tableToJson(const TextTable &table);

/**
 * Build a kind:"bench" document wrapping one result table of a
 * benchmark binary (the figure/table rows it prints).
 */
JsonValue benchDocument(const std::string &bench_name,
                        const TextTable &table,
                        const std::string &note = "");

/**
 * Build a kind:"metrics" document from @p registry (default: the
 * process-wide registry): the schema header plus a "metrics" array as
 * rendered by MetricsRegistry::metricsJson().  Served by the daemon's
 * `metrics json` control command and rendered by ccm-report.
 */
JsonValue metricsDocument(
    const MetricsRegistry &registry = MetricsRegistry::global());

/**
 * Bare document header ({"schema", "schema_version", "kind"}) for a
 * producer that assembles its own body — the ccm-serve daemon builds
 * kind:"serve" documents this way (section shapes documented in
 * docs/SERVING.md and enforced by validateStatsDoc).
 */
JsonValue statsDocumentHeader(const std::string &kind);

/**
 * Write @p bench_name's result table as BENCH_<bench_name>.json into
 * $CCM_BENCH_JSON_DIR (falling back to the working directory), so a
 * bench run leaves a machine-readable record next to its stdout.
 * @return the path written, or why it couldn't be.
 */
Expected<std::string> writeBenchJson(const std::string &bench_name,
                                     const TextTable &table,
                                     const std::string &note = "");

// ---- Writers ------------------------------------------------------

/** Write @p doc to @p os in @p format. */
void writeDocument(std::ostream &os, const JsonValue &doc,
                   StatsFormat format);

/** writeDocument to @p path ("-" = stdout). */
Status writeDocumentToFile(const std::string &path, const JsonValue &doc,
                           StatsFormat format);

// ---- Validation ---------------------------------------------------

/**
 * Check that @p doc is a well-formed ccm-stats document: schema name
 * and version, kind, required sections, heatmap array lengths, and —
 * when an intervals section is present — that the counter-wise sum of
 * every sample's deltas equals the aggregate counters.  Suite
 * documents are checked row by row.
 */
Status validateStatsDoc(const JsonValue &doc);

} // namespace ccm::obs

#endif // CCM_OBS_SINK_HH
