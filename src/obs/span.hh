/**
 * @file
 * Span tracing: named, timed phases (a suite row, a serve stream, a
 * control request) recorded as Chrome trace-event JSON, loadable in
 * Perfetto / chrome://tracing (docs/OBSERVABILITY.md "Spans").
 *
 * Tracing is off by default and costs one relaxed atomic load per
 * span when disabled.  `--trace-spans <file>` on ccm-sim / ccm-serve
 * enables the global tracer; each completed span appends one complete
 * "X" (duration) event under LockRank::ObsSpans — the highest rank,
 * so a span may end while the caller holds any other lock.  The
 * buffer is bounded (kMaxEvents); overflow increments a drop counter
 * reported in the flushed file rather than growing without bound.
 *
 * Like the metrics layer, spans are strictly observational: nothing
 * here feeds back into simulation results.
 */

#ifndef CCM_OBS_SPAN_HH
#define CCM_OBS_SPAN_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hh"
#include "common/sync.hh"

namespace ccm::obs
{

/**
 * Collects completed spans and writes them as one Chrome trace-event
 * JSON document ({"traceEvents": [...]}).  Disabled until
 * enableToFile() succeeds; record() is a no-op while disabled.
 */
class SpanTracer
{
  public:
    /** Buffer cap; further spans are counted as dropped. */
    static constexpr std::size_t kMaxEvents = 1u << 18;

    SpanTracer();

    SpanTracer(const SpanTracer &) = delete;
    SpanTracer &operator=(const SpanTracer &) = delete;

    /** The process-wide tracer the --trace-spans flags enable. */
    static SpanTracer &global();

    /**
     * Start tracing and remember @p path for flush().  The file is
     * created (truncated) immediately so an unwritable path fails the
     * flag parse, not the exit path.
     */
    Status enableToFile(const std::string &path) CCM_EXCLUDES(mu);

    /** True once enableToFile() succeeded (one relaxed load). */
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Microseconds since tracer construction (span timestamps). */
    std::uint64_t nowMicros() const;

    /**
     * Append one completed span.  @p begin_us / @p end_us come from
     * nowMicros(); @p cat groups spans in the viewer ("suite",
     * "serve", "control", ...).  No-op while disabled.
     */
    void record(std::string_view name, std::string_view cat,
                std::uint64_t begin_us, std::uint64_t end_us)
        CCM_EXCLUDES(mu);

    /** Buffered span count (tests). */
    std::size_t size() const CCM_EXCLUDES(mu);

    /** Spans rejected because the buffer was full. */
    std::uint64_t
    dropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

    /**
     * Render the buffered spans as a trace-event JSON string —
     * {"traceEvents": [{"name","cat","ph":"X","ts","dur","pid","tid"},
     * ...]} plus a "ccm" metadata object carrying the drop count.
     */
    std::string traceJson() const CCM_EXCLUDES(mu);

    /**
     * Write traceJson() to the path given to enableToFile().  Safe to
     * call when disabled (returns ok, writes nothing).  Does not clear
     * the buffer, so flushing twice writes the same spans plus any
     * recorded in between.
     */
    Status flush() const CCM_EXCLUDES(mu);

  private:
    struct Event
    {
        std::string name;
        std::string cat;
        std::uint64_t ts_us;
        std::uint64_t dur_us;
        int tid;
    };

    std::atomic<bool> enabled_{false};
    std::atomic<std::uint64_t> dropped_{0};
    std::uint64_t epochNanos_;

    mutable Mutex mu{LockRank::ObsSpans, "obs-spans"};
    std::string path_ CCM_GUARDED_BY(mu);
    std::vector<Event> events_ CCM_GUARDED_BY(mu);
};

/**
 * RAII span: captures nowMicros() at construction and records the
 * span at destruction.  When the tracer is disabled the constructor
 * is one relaxed load and the destructor does nothing.
 */
class ScopedSpan
{
  public:
    ScopedSpan(SpanTracer &tracer, std::string name, std::string cat)
        : tracer_(tracer), name_(std::move(name)), cat_(std::move(cat)),
          begin_(tracer_.enabled() ? tracer_.nowMicros() : 0)
    {
    }

    /** Span on the global tracer. */
    ScopedSpan(std::string name, std::string cat)
        : ScopedSpan(SpanTracer::global(), std::move(name),
                     std::move(cat))
    {
    }

    ~ScopedSpan()
    {
        if (tracer_.enabled())
            tracer_.record(name_, cat_, begin_, tracer_.nowMicros());
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    SpanTracer &tracer_;
    std::string name_;
    std::string cat_;
    std::uint64_t begin_;
};

} // namespace ccm::obs

#endif // CCM_OBS_SPAN_HH
