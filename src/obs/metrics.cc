#include "obs/metrics.hh"

#include <bit>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/logging.hh"

namespace ccm::obs
{

namespace
{

bool
validMetricName(std::string_view name)
{
    if (name.empty())
        return false;
    auto head = [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
               c == '_' || c == ':';
    };
    if (!head(name.front()))
        return false;
    for (char c : name) {
        if (!head(c) && !(c >= '0' && c <= '9'))
            return false;
    }
    return true;
}

/** Help strings are one exposition line: escape per the format. */
std::string
escapeHelp(const std::string &help)
{
    std::string out;
    out.reserve(help.size());
    for (char c : help) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

} // namespace

const char *
toString(MetricType type)
{
    switch (type) {
      case MetricType::Counter: return "counter";
      case MetricType::Gauge: return "gauge";
      case MetricType::Histogram: return "histogram";
    }
    return "?";
}

std::size_t
Histogram::bucketIndex(std::uint64_t sample)
{
    return static_cast<std::size_t>(std::bit_width(sample));
}

std::uint64_t
Histogram::bucketLo(std::size_t i)
{
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
}

std::uint64_t
Histogram::bucketHi(std::size_t i)
{
    if (i == 0)
        return 0;
    if (i >= 64)
        return std::numeric_limits<std::uint64_t>::max();
    return (std::uint64_t{1} << i) - 1;
}

double
Histogram::Snapshot::percentile(double q) const
{
    if (count == 0)
        return 0.0;
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count)));
    if (rank < 1)
        rank = 1;
    if (rank > count)
        rank = count;

    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        if (buckets[i] == 0)
            continue;
        if (cum + buckets[i] < rank) {
            cum += buckets[i];
            continue;
        }
        const double lo = static_cast<double>(bucketLo(i));
        const double hi = static_cast<double>(bucketHi(i));
        const double pos = static_cast<double>(rank - cum);
        const double n = static_cast<double>(buckets[i]);
        return lo + (hi - lo) * pos / n;
    }
    return 0.0; // unreachable for a consistent snapshot
}

Histogram::Snapshot
Histogram::snapshot() const
{
    Snapshot s;
    s.sum = sum_.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kBuckets; ++i) {
        s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
        s.count += s.buckets[i];
    }
    return s;
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

MetricsRegistry::Entry &
MetricsRegistry::findOrCreate(std::string_view name,
                              std::string_view help, MetricType type)
{
    if (!validMetricName(name))
        ccm_panic("invalid metric name '", name,
                  "' (want [a-zA-Z_:][a-zA-Z0-9_:]*)");

    MutexLock lock(mu);
    for (const auto &e : entries_) {
        if (e->name != name)
            continue;
        if (e->type != type)
            ccm_panic("metric '", name, "' re-registered as ",
                      toString(type), " but is a ",
                      toString(e->type));
        return *e;
    }
    auto e = std::make_unique<Entry>();
    e->name = std::string(name);
    e->help = std::string(help);
    e->type = type;
    switch (type) {
      case MetricType::Counter:
        e->counter = std::make_unique<Counter>();
        break;
      case MetricType::Gauge:
        e->gauge = std::make_unique<Gauge>();
        break;
      case MetricType::Histogram:
        e->histogram = std::make_unique<Histogram>();
        break;
    }
    entries_.push_back(std::move(e));
    return *entries_.back();
}

Counter &
MetricsRegistry::counter(std::string_view name, std::string_view help)
{
    return *findOrCreate(name, help, MetricType::Counter).counter;
}

Gauge &
MetricsRegistry::gauge(std::string_view name, std::string_view help)
{
    return *findOrCreate(name, help, MetricType::Gauge).gauge;
}

Histogram &
MetricsRegistry::histogram(std::string_view name, std::string_view help)
{
    return *findOrCreate(name, help, MetricType::Histogram).histogram;
}

std::size_t
MetricsRegistry::size() const
{
    MutexLock lock(mu);
    return entries_.size();
}

std::string
MetricsRegistry::prometheusText() const
{
    std::ostringstream os;
    MutexLock lock(mu);
    for (const auto &e : entries_) {
        os << "# HELP " << e->name << " " << escapeHelp(e->help)
           << "\n";
        os << "# TYPE " << e->name << " " << toString(e->type)
           << "\n";
        switch (e->type) {
          case MetricType::Counter:
            os << e->name << " " << e->counter->value() << "\n";
            break;
          case MetricType::Gauge:
            os << e->name << " " << e->gauge->value() << "\n";
            break;
          case MetricType::Histogram: {
            const Histogram::Snapshot s = e->histogram->snapshot();
            std::size_t top = 0;
            for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
                if (s.buckets[i] > 0)
                    top = i;
            }
            std::uint64_t cum = 0;
            for (std::size_t i = 0; i <= top && s.count > 0; ++i) {
                cum += s.buckets[i];
                os << e->name << "_bucket{le=\""
                   << Histogram::bucketHi(i) << "\"} " << cum << "\n";
            }
            os << e->name << "_bucket{le=\"+Inf\"} " << s.count
               << "\n";
            os << e->name << "_sum " << s.sum << "\n";
            os << e->name << "_count " << s.count << "\n";
            break;
          }
        }
    }
    return os.str();
}

JsonValue
MetricsRegistry::metricsJson() const
{
    JsonValue arr = JsonValue::array();
    MutexLock lock(mu);
    for (const auto &e : entries_) {
        JsonValue m = JsonValue::object();
        m.set("name", JsonValue::str(e->name));
        m.set("type", JsonValue::str(toString(e->type)));
        m.set("help", JsonValue::str(e->help));
        switch (e->type) {
          case MetricType::Counter:
            m.set("value", JsonValue::uint(e->counter->value()));
            break;
          case MetricType::Gauge:
            m.set("value", JsonValue::integer(e->gauge->value()));
            break;
          case MetricType::Histogram: {
            const Histogram::Snapshot s = e->histogram->snapshot();
            m.set("count", JsonValue::uint(s.count));
            m.set("sum", JsonValue::uint(s.sum));
            m.set("p50", JsonValue::real(s.percentile(0.50)));
            m.set("p95", JsonValue::real(s.percentile(0.95)));
            m.set("p99", JsonValue::real(s.percentile(0.99)));
            JsonValue buckets = JsonValue::array();
            std::uint64_t cum = 0;
            for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
                if (s.buckets[i] == 0)
                    continue;
                cum += s.buckets[i];
                JsonValue b = JsonValue::object();
                b.set("le", JsonValue::uint(Histogram::bucketHi(i)));
                b.set("count", JsonValue::uint(cum));
                buckets.push(std::move(b));
            }
            m.set("buckets", std::move(buckets));
            break;
          }
        }
        arr.push(std::move(m));
    }
    return arr;
}

} // namespace ccm::obs
