#include "obs/span.hh"

#include <chrono>
#include <fstream>

#include "common/log.hh"
#include "obs/json.hh"

namespace ccm::obs
{

namespace
{

std::uint64_t
steadyNanos()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

SpanTracer::SpanTracer() : epochNanos_(steadyNanos()) {}

SpanTracer &
SpanTracer::global()
{
    static SpanTracer tracer;
    return tracer;
}

Status
SpanTracer::enableToFile(const std::string &path)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return Status::ioError("cannot open trace file '", path,
                               "' for writing");
    MutexLock lock(mu);
    path_ = path;
    events_.reserve(1024);
    enabled_.store(true, std::memory_order_relaxed);
    return Status::ok();
}

std::uint64_t
SpanTracer::nowMicros() const
{
    return (steadyNanos() - epochNanos_) / 1000;
}

void
SpanTracer::record(std::string_view name, std::string_view cat,
                   std::uint64_t begin_us, std::uint64_t end_us)
{
    if (!enabled())
        return;
    const std::uint64_t dur =
        end_us >= begin_us ? end_us - begin_us : 0;
    MutexLock lock(mu);
    if (events_.size() >= kMaxEvents) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    events_.push_back(Event{std::string(name), std::string(cat),
                            begin_us, dur, logThreadId()});
}

std::size_t
SpanTracer::size() const
{
    MutexLock lock(mu);
    return events_.size();
}

std::string
SpanTracer::traceJson() const
{
    JsonValue doc = JsonValue::object();
    JsonValue rows = JsonValue::array();
    {
        MutexLock lock(mu);
        for (const Event &e : events_) {
            JsonValue row = JsonValue::object();
            row.set("name", JsonValue::str(e.name));
            row.set("cat", JsonValue::str(e.cat));
            row.set("ph", JsonValue::str("X"));
            row.set("ts", JsonValue::uint(e.ts_us));
            row.set("dur", JsonValue::uint(e.dur_us));
            row.set("pid", JsonValue::uint(1));
            row.set("tid",
                    JsonValue::uint(static_cast<std::uint64_t>(e.tid)));
            rows.push(std::move(row));
        }
    }
    doc.set("traceEvents", std::move(rows));
    JsonValue meta = JsonValue::object();
    meta.set("dropped_spans", JsonValue::uint(dropped()));
    doc.set("ccm", std::move(meta));
    return doc.toString();
}

Status
SpanTracer::flush() const
{
    if (!enabled())
        return Status::ok();
    std::string path;
    {
        MutexLock lock(mu);
        path = path_;
    }
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return Status::ioError("cannot open trace file '", path,
                               "' for writing");
    out << traceJson() << "\n";
    if (!out.good())
        return Status::ioError("short write to trace file '", path,
                               "'");
    return Status::ok();
}

} // namespace ccm::obs
