#include "obs/sink.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <numeric>

namespace ccm::obs
{

const char *
toString(StatsFormat f)
{
    switch (f) {
      case StatsFormat::Text: return "text";
      case StatsFormat::Json: return "json";
      case StatsFormat::Csv: return "csv";
    }
    return "?";
}

Expected<StatsFormat>
parseStatsFormat(std::string_view name)
{
    if (name == "text")
        return StatsFormat::Text;
    if (name == "json")
        return StatsFormat::Json;
    if (name == "csv")
        return StatsFormat::Csv;
    return Status::badConfig("unknown stats format '", name,
                             "' (expected text, json or csv)");
}

// ---- Section builders ---------------------------------------------

namespace
{

JsonValue
countersJson(const MemStats &stats)
{
    JsonValue counters = JsonValue::object();
    MemStats::forEachField([&](const char *name, Count MemStats::*f) {
        counters.set(name, JsonValue::uint(stats.*f));
    });
    return counters;
}

JsonValue
derivedJson(const MemStats &stats)
{
    JsonValue derived = JsonValue::object();
    stats.forEachDerived([&](const char *name, double value) {
        derived.set(name, JsonValue::real(value));
    });
    return derived;
}

} // namespace

JsonValue
memStatsToJson(const MemStats &stats)
{
    JsonValue mem = JsonValue::object();
    mem.set("counters", countersJson(stats));
    mem.set("derived", derivedJson(stats));
    return mem;
}

JsonValue
simResultToJson(const SimResult &sim)
{
    JsonValue v = JsonValue::object();
    v.set("cycles", JsonValue::uint(sim.cycles));
    v.set("instructions", JsonValue::uint(sim.instructions));
    v.set("mem_refs", JsonValue::uint(sim.memRefs));
    v.set("ipc", JsonValue::real(sim.ipc));
    return v;
}

JsonValue
accuracyToJson(const AccuracyScorer &scorer)
{
    JsonValue v = JsonValue::object();
    JsonValue matrix = JsonValue::object();
    matrix.set("conflict_as_conflict",
               JsonValue::uint(scorer.conflictAsConflict()));
    matrix.set("conflict_as_capacity",
               JsonValue::uint(scorer.conflictAsCapacity()));
    matrix.set("capacity_as_conflict",
               JsonValue::uint(scorer.capacityAsConflict()));
    matrix.set("capacity_as_capacity",
               JsonValue::uint(scorer.capacityAsCapacity()));
    v.set("matrix", std::move(matrix));
    v.set("total_misses", JsonValue::uint(scorer.totalMisses()));
    v.set("compulsory_misses",
          JsonValue::uint(scorer.compulsoryMisses()));
    v.set("conflict_accuracy_pct",
          JsonValue::real(scorer.conflictAccuracy()));
    v.set("capacity_accuracy_pct",
          JsonValue::real(scorer.capacityAccuracy()));
    v.set("overall_accuracy_pct",
          JsonValue::real(scorer.overallAccuracy()));
    v.set("conflict_fraction",
          JsonValue::real(scorer.conflictFraction()));
    return v;
}

namespace
{

JsonValue
countArray(const std::vector<Count> &values)
{
    JsonValue a = JsonValue::array();
    for (Count c : values)
        a.push(JsonValue::uint(c));
    return a;
}

Count
setCount(const std::vector<Count> &values, std::size_t i)
{
    return i < values.size() ? values[i] : 0;
}

} // namespace

JsonValue
setHistogramsToJson(const SetHistograms &heat, std::size_t top_sets)
{
    JsonValue v = JsonValue::object();
    v.set("sets", JsonValue::uint(heat.sets));
    v.set("l1_misses", countArray(heat.l1Misses));
    v.set("l1_evictions", countArray(heat.l1Evictions));
    v.set("mct_lookups", countArray(heat.mctLookups));
    v.set("mct_conflicts", countArray(heat.mctConflicts));

    // Busiest sets by L1 misses, ties broken by set index.
    std::vector<std::size_t> order(heat.sets);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  Count ma = setCount(heat.l1Misses, a);
                  Count mb = setCount(heat.l1Misses, b);
                  return ma != mb ? ma > mb : a < b;
              });
    if (order.size() > top_sets)
        order.resize(top_sets);

    JsonValue top = JsonValue::array();
    for (std::size_t s : order) {
        if (setCount(heat.l1Misses, s) == 0)
            break; // idle sets aren't "hot"
        JsonValue row = JsonValue::object();
        row.set("set", JsonValue::uint(s));
        row.set("l1_misses", JsonValue::uint(setCount(heat.l1Misses, s)));
        row.set("l1_evictions",
                JsonValue::uint(setCount(heat.l1Evictions, s)));
        row.set("mct_lookups",
                JsonValue::uint(setCount(heat.mctLookups, s)));
        row.set("mct_conflicts",
                JsonValue::uint(setCount(heat.mctConflicts, s)));
        top.push(std::move(row));
    }
    v.set("top_sets", std::move(top));
    return v;
}

namespace
{

JsonValue
intervalSampleRows(const std::vector<IntervalSample> &samples)
{
    JsonValue out = JsonValue::array();
    for (const IntervalSample &s : samples) {
        JsonValue row = JsonValue::object();
        row.set("first_ref", JsonValue::uint(s.firstRef));
        row.set("last_ref", JsonValue::uint(s.lastRef));
        row.set("counters", countersJson(s.delta));
        row.set("derived", derivedJson(s.delta));
        if (s.accuracy.totalMisses() > 0)
            row.set("accuracy", accuracyToJson(s.accuracy));
        out.push(std::move(row));
    }
    return out;
}

} // namespace

JsonValue
intervalsToJson(const IntervalSampler &sampler)
{
    JsonValue v = JsonValue::object();
    v.set("every", JsonValue::uint(sampler.every()));
    // Only rolling-window samplers (setRollingCapacity) ever drop;
    // the field is omitted otherwise so batch documents are
    // byte-stable against pre-rolling consumers.
    if (sampler.droppedSamples() > 0)
        v.set("dropped_samples",
              JsonValue::uint(sampler.droppedSamples()));
    v.set("samples", intervalSampleRows(sampler.samples()));
    return v;
}

JsonValue
intervalSamplesToJson(Count every,
                      const std::vector<IntervalSample> &samples)
{
    JsonValue v = JsonValue::object();
    v.set("every", JsonValue::uint(every));
    v.set("samples", intervalSampleRows(samples));
    return v;
}

JsonValue
eventsToJson(const ClassifyEventTrace &trace)
{
    JsonValue v = JsonValue::object();
    v.set("sample_every", JsonValue::uint(trace.options().sampleEvery));
    v.set("max_events", JsonValue::uint(trace.options().maxEvents));
    v.set("seen", JsonValue::uint(trace.seen()));
    v.set("recorded", JsonValue::uint(trace.recorded()));
    v.set("dropped", JsonValue::uint(trace.dropped()));

    Count known = 0;
    Count agree = 0;
    JsonValue list = JsonValue::array();
    for (const ClassifyEvent &e : trace.events()) {
        JsonValue row = JsonValue::object();
        row.set("ref", JsonValue::uint(e.ref));
        row.set("set", JsonValue::uint(e.set));
        row.set("stored_valid", JsonValue::boolean(e.storedValid));
        row.set("stored_tag", JsonValue::uint(e.storedTag));
        row.set("incoming_tag", JsonValue::uint(e.incomingTag));
        row.set("verdict", JsonValue::str(toString(e.verdict)));
        if (e.oracleKnown) {
            row.set("oracle", JsonValue::str(toString(e.oracle)));
            row.set("agree", JsonValue::boolean(e.agrees()));
            ++known;
            if (e.agrees())
                ++agree;
        }
        list.push(std::move(row));
    }
    JsonValue agreement = JsonValue::object();
    agreement.set("with_oracle", JsonValue::uint(known));
    agreement.set("agreeing", JsonValue::uint(agree));
    v.set("agreement", std::move(agreement));
    v.set("events", std::move(list));
    return v;
}

// ---- Document builders --------------------------------------------

namespace
{

JsonValue
documentHeader(const char *kind)
{
    JsonValue doc = JsonValue::object();
    doc.set("schema", JsonValue::str(kStatsSchemaName));
    doc.set("schema_version", JsonValue::uint(kStatsSchemaVersion));
    doc.set("kind", JsonValue::str(kind));
    return doc;
}

void
fillRunBody(JsonValue &doc, const std::string &workload,
            const RunOutput &out, const IntervalSampler *intervals,
            const ClassifyEventTrace *events)
{
    doc.set("workload", JsonValue::str(workload));
    doc.set("sim", simResultToJson(out.sim));
    doc.set("mem", memStatsToJson(out.mem));
    if (!out.heat.empty())
        doc.set("heatmap", setHistogramsToJson(out.heat));
    if (intervals && !intervals->samples().empty())
        doc.set("intervals", intervalsToJson(*intervals));
    if (events && events->seen() > 0)
        doc.set("events", eventsToJson(*events));
}

} // namespace

JsonValue
runDocument(const std::string &workload, const RunOutput &out,
            const IntervalSampler *intervals,
            const ClassifyEventTrace *events)
{
    JsonValue doc = documentHeader("run");
    fillRunBody(doc, workload, out, intervals, events);
    return doc;
}

JsonValue
suiteDocument(
    const SuiteReport &report,
    const std::function<const IntervalSampler *(const std::string &)>
        &intervals_for)
{
    JsonValue doc = documentHeader("suite");
    JsonValue rows = JsonValue::array();
    double wall_total = 0.0;
    for (const SuiteRow &r : report.rows) {
        JsonValue row = JsonValue::object();
        if (r.ok()) {
            const IntervalSampler *iv =
                intervals_for ? intervals_for(r.workload) : nullptr;
            fillRunBody(row, r.workload, r.out, iv, nullptr);
        } else {
            row.set("workload", JsonValue::str(r.workload));
            row.set("error", JsonValue::str(r.status.toString()));
        }
        // The one nondeterministic field in the document: everything
        // else is byte-identical across --jobs settings.
        row.set("wall_seconds", JsonValue::real(r.wallSeconds));
        wall_total += r.wallSeconds;
        rows.push(std::move(row));
    }
    doc.set("rows", std::move(rows));
    JsonValue summary = JsonValue::object();
    summary.set("runs", JsonValue::uint(report.rows.size()));
    summary.set("errored", JsonValue::uint(report.failures()));
    summary.set("wall_seconds_total", JsonValue::real(wall_total));
    doc.set("summary", std::move(summary));
    return doc;
}

namespace
{

/** Shared body of kind:"classify" docs and classify-suite rows. */
void
fillClassifyBody(JsonValue &doc, const std::string &workload,
                 const ShardedClassifyResult &out)
{
    doc.set("workload", JsonValue::str(workload));
    JsonValue cls = JsonValue::object();
    cls.set("references", JsonValue::uint(out.references));
    cls.set("misses", JsonValue::uint(out.misses));
    cls.set("miss_rate_pct", JsonValue::real(out.missRate * 100.0));
    doc.set("classify", std::move(cls));
    doc.set("mem", memStatsToJson(out.mem));
    if (!out.heat.empty())
        doc.set("heatmap", setHistogramsToJson(out.heat));
    if (!out.intervals.empty())
        doc.set("intervals",
                intervalSamplesToJson(out.interval, out.intervals));
}

} // namespace

JsonValue
classifyDocument(const std::string &workload,
                 const ShardedClassifyResult &out)
{
    JsonValue doc = documentHeader("classify");
    fillClassifyBody(doc, workload, out);
    return doc;
}

JsonValue
classifySuiteDocument(const std::vector<ClassifyRow> &rows)
{
    JsonValue doc = documentHeader("classify-suite");
    JsonValue out_rows = JsonValue::array();
    double wall_total = 0.0;
    for (const ClassifyRow &r : rows) {
        JsonValue row = JsonValue::object();
        if (r.ok()) {
            fillClassifyBody(row, r.workload, r.out);
        } else {
            row.set("workload", JsonValue::str(r.workload));
            row.set("error", JsonValue::str(r.status.toString()));
        }
        // As in suite documents: wall_seconds is nondeterministic
        // (ci strips it before byte-diffs), and so is the throughput
        // derived from it — the same records_per_sec metric the BENCH
        // documents report, so suite and bench outputs agree.
        row.set("wall_seconds", JsonValue::real(r.wallSeconds));
        if (r.ok()) {
            const double rps =
                r.wallSeconds > 0.0
                    ? static_cast<double>(r.out.references) /
                          r.wallSeconds
                    : 0.0;
            row.set("records_per_sec", JsonValue::real(rps));
        }
        wall_total += r.wallSeconds;
        out_rows.push(std::move(row));
    }
    doc.set("rows", std::move(out_rows));
    JsonValue summary = JsonValue::object();
    summary.set("runs", JsonValue::uint(rows.size()));
    std::uint64_t errored = 0;
    for (const ClassifyRow &r : rows)
        if (!r.ok())
            ++errored;
    summary.set("errored", JsonValue::uint(errored));
    summary.set("wall_seconds_total", JsonValue::real(wall_total));
    doc.set("summary", std::move(summary));
    return doc;
}

JsonValue
sampleDocument(const std::string &workload,
               const sample::SampleReport &rep)
{
    JsonValue doc = documentHeader("sample");
    doc.set("workload", JsonValue::str(workload));

    JsonValue sampling = JsonValue::object();
    sampling.set("rate_configured",
                 JsonValue::real(rep.mrc.configuredRate));
    sampling.set("rate_final", JsonValue::real(rep.mrc.finalRate));
    sampling.set("seed", JsonValue::uint(rep.mrc.seed));
    sampling.set("variant",
                 JsonValue::str(sample::toString(rep.mrc.variant)));
    sampling.set("rate_corrected",
                 JsonValue::boolean(rep.mrc.rateCorrected));
    sampling.set("threshold_halvings",
                 JsonValue::uint(rep.mrc.thresholdHalvings));
    sampling.set("min_lines_boost",
                 JsonValue::boolean(rep.mrc.minLinesBoost));
    sampling.set("total_refs", JsonValue::uint(rep.mrc.totalRefs));
    sampling.set("sampled_refs",
                 JsonValue::uint(rep.mrc.sampledRefs));
    sampling.set("lines_sampled",
                 JsonValue::uint(rep.mrc.linesSampled));
    doc.set("sampling", std::move(sampling));

    JsonValue mrc = JsonValue::object();
    mrc.set("line_bytes", JsonValue::uint(rep.mrc.lineBytes));
    JsonValue points = JsonValue::array();
    for (std::size_t i = 0; i < rep.mrc.points.size(); ++i) {
        const sample::MrcPoint &p = rep.mrc.points[i];
        JsonValue pt = JsonValue::object();
        pt.set("capacity_bytes", JsonValue::uint(p.capacityBytes));
        pt.set("bank_lines", JsonValue::uint(p.bankLines));
        pt.set("sampled_misses", JsonValue::uint(p.sampledMisses));
        pt.set("miss_ratio", JsonValue::real(p.missRatio));
        if (rep.hasExact && i < rep.exactMrc.points.size()) {
            const double exact = rep.exactMrc.points[i].missRatio;
            pt.set("exact_miss_ratio", JsonValue::real(exact));
            pt.set("abs_error",
                   JsonValue::real(std::fabs(p.missRatio - exact)));
        }
        points.push(std::move(pt));
    }
    mrc.set("points", std::move(points));
    doc.set("mrc", std::move(mrc));

    const sample::GeometryRecommendation &rec = rep.recommendation;
    JsonValue r = JsonValue::object();
    r.set("buf_entries", JsonValue::uint(rec.bufEntries));
    r.set("victim_conflicts",
          JsonValue::boolean(rec.victimConflicts));
    r.set("prefetch_capacity",
          JsonValue::boolean(rec.prefetchCapacity));
    r.set("exclude_capacity",
          JsonValue::boolean(rec.excludeCapacity));
    r.set("mr_at_l1", JsonValue::real(rec.missRatioAtL1));
    r.set("gain_2x", JsonValue::real(rec.gainDouble));
    r.set("gain_4x", JsonValue::real(rec.gainQuad));
    r.set("mr_at_max", JsonValue::real(rec.missRatioAtMax));
    r.set("rationale", JsonValue::str(rec.rationale));
    doc.set("recommendation", std::move(r));

    if (rep.hasIntervals) {
        const sample::IntervalResult &ivl = rep.intervals;
        JsonValue sec = JsonValue::object();
        sec.set("windows", JsonValue::uint(ivl.windows));
        sec.set("clusters", JsonValue::uint(ivl.clusters));
        sec.set("window_refs", JsonValue::uint(ivl.windowRefs));
        sec.set("total_refs", JsonValue::uint(ivl.totalRefs));
        sec.set("replayed_refs", JsonValue::uint(ivl.replayedRefs));
        sec.set("confidence", JsonValue::real(ivl.confidence));

        JsonValue reps = JsonValue::array();
        for (const sample::RepresentativeWindow &w : ivl.reps) {
            JsonValue row = JsonValue::object();
            row.set("window_index", JsonValue::uint(w.windowIndex));
            row.set("weight", JsonValue::real(w.weight));
            row.set("cluster_size", JsonValue::uint(w.clusterSize));
            row.set("first_ref", JsonValue::uint(w.firstRef));
            row.set("last_ref", JsonValue::uint(w.lastRef));
            row.set("refs", JsonValue::uint(w.refs));
            row.set("rel_spread", JsonValue::real(w.relSpread));
            reps.push(std::move(row));
        }
        sec.set("representatives", std::move(reps));

        JsonValue stats = JsonValue::array();
        for (const sample::StatEstimate &est : ivl.stats) {
            JsonValue row = JsonValue::object();
            row.set("name", JsonValue::str(est.name));
            row.set("predicted", JsonValue::real(est.predicted));
            row.set("error_bar", JsonValue::real(est.errorBar));
            if (rep.hasExact) {
                Count exact_v = 0;
                MemStats::forEachField(
                    [&](const char *name, Count MemStats::*f) {
                        if (est.name == name)
                            exact_v = rep.exactClassify.mem.*f;
                    });
                row.set("exact", JsonValue::uint(exact_v));
                row.set("abs_error",
                        JsonValue::real(std::fabs(
                            est.predicted -
                            static_cast<double>(exact_v))));
            }
            stats.push(std::move(row));
        }
        sec.set("stats", std::move(stats));
        doc.set("intervals", std::move(sec));
    }

    if (rep.hasExact) {
        JsonValue err = JsonValue::object();
        err.set("mrc_mae", JsonValue::real(rep.mrcMae));
        err.set("mrc_max_error", JsonValue::real(rep.mrcMaxError));
        err.set("max_stat_rel_error",
                JsonValue::real(rep.maxStatRelError));
        doc.set("error", std::move(err));
    }

    doc.set("wall_seconds_sampled",
            JsonValue::real(rep.wallSecondsSampled));
    if (rep.hasExact)
        doc.set("wall_seconds_exact",
                JsonValue::real(rep.wallSecondsExact));
    return doc;
}

JsonValue
statsDocumentHeader(const std::string &kind)
{
    return documentHeader(kind.c_str());
}

JsonValue
metricsDocument(const MetricsRegistry &registry)
{
    JsonValue doc = documentHeader("metrics");
    doc.set("metrics", registry.metricsJson());
    return doc;
}

JsonValue
tableToJson(const TextTable &table)
{
    JsonValue v = JsonValue::object();
    JsonValue headers = JsonValue::array();
    for (std::size_t c = 0; c < table.cols(); ++c)
        headers.push(JsonValue::str(table.header(c)));
    v.set("headers", std::move(headers));
    JsonValue rows = JsonValue::array();
    for (std::size_t r = 0; r < table.rows(); ++r) {
        JsonValue row = JsonValue::array();
        for (std::size_t c = 0; c < table.cols(); ++c)
            row.push(JsonValue::str(table.cell(r, c)));
        rows.push(std::move(row));
    }
    v.set("rows", std::move(rows));
    return v;
}

JsonValue
benchDocument(const std::string &bench_name, const TextTable &table,
              const std::string &note)
{
    JsonValue doc = documentHeader("bench");
    doc.set("bench", JsonValue::str(bench_name));
    if (!note.empty())
        doc.set("note", JsonValue::str(note));
    doc.set("table", tableToJson(table));
    return doc;
}

Expected<std::string>
writeBenchJson(const std::string &bench_name, const TextTable &table,
               const std::string &note)
{
    std::string dir = ".";
    // Bench harnesses are single-threaded and nothing in this process
    // calls setenv, so the lookup cannot race a mutation.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    if (const char *env = std::getenv("CCM_BENCH_JSON_DIR"))
        dir = env;
    std::string path = dir + "/BENCH_" + bench_name + ".json";
    Status s = writeDocumentToFile(path, benchDocument(bench_name,
                                                       table, note),
                                   StatsFormat::Json);
    if (!s.isOk())
        return s;
    return path;
}

// ---- Writers ------------------------------------------------------

namespace
{

/** One-line rendering of a scalar (strings unquoted). */
std::string
scalarText(const JsonValue &v)
{
    if (v.isString())
        return v.asString();
    std::string s = v.toString();
    while (!s.empty() && s.back() == '\n')
        s.pop_back();
    return s;
}

template <typename Fn>
void
flatten(const JsonValue &v, const std::string &path, Fn &&fn)
{
    if (v.isObject()) {
        for (const auto &[key, child] : v.members()) {
            flatten(child, path.empty() ? key : path + "." + key, fn);
        }
    } else if (v.isArray()) {
        std::size_t i = 0;
        for (const JsonValue &child : v.elements()) {
            flatten(child, path + "." + std::to_string(i), fn);
            ++i;
        }
    } else {
        fn(path, v);
    }
}

std::string
csvQuote(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

void
writeDocument(std::ostream &os, const JsonValue &doc, StatsFormat format)
{
    switch (format) {
      case StatsFormat::Json:
        doc.write(os);
        return;
      case StatsFormat::Text:
        flatten(doc, "", [&](const std::string &path, const JsonValue &v) {
            os << path << " " << scalarText(v) << "\n";
        });
        return;
      case StatsFormat::Csv:
        os << "stat,value\n";
        flatten(doc, "", [&](const std::string &path, const JsonValue &v) {
            os << csvQuote(path) << "," << csvQuote(scalarText(v))
               << "\n";
        });
        return;
    }
}

Status
writeDocumentToFile(const std::string &path, const JsonValue &doc,
                    StatsFormat format)
{
    if (path == "-") {
        writeDocument(std::cout, doc, format);
        return Status::ok();
    }
    std::ofstream os(path);
    if (!os)
        return Status::ioError("cannot open '", path, "' for writing");
    writeDocument(os, doc, format);
    os.flush();
    if (!os)
        return Status::ioError("write to '", path, "' failed");
    return Status::ok();
}

// ---- Validation ---------------------------------------------------

namespace
{

Status
checkHeatmap(const JsonValue &heat)
{
    if (!heat.isObject())
        return Status::badConfig("heatmap is not an object");
    const std::uint64_t sets = heat.at("sets").asU64();
    for (const char *key :
         {"l1_misses", "l1_evictions", "mct_lookups", "mct_conflicts"}) {
        const JsonValue &arr = heat.at(key);
        if (!arr.isArray())
            return Status::badConfig("heatmap.", key,
                                     " is not an array");
        if (arr.size() != sets)
            return Status::badConfig(
                "heatmap.", key, " has ", arr.size(),
                " entries but heatmap.sets is ", sets);
    }
    if (!heat.at("top_sets").isArray())
        return Status::badConfig("heatmap.top_sets is not an array");
    return Status::ok();
}

Status
checkIntervals(const JsonValue &intervals, const JsonValue *counters)
{
    if (!intervals.isObject())
        return Status::badConfig("intervals is not an object");
    const JsonValue &samples = intervals.at("samples");
    if (!samples.isArray())
        return Status::badConfig("intervals.samples is not an array");

    // A rolling window (ccm-serve) declares how many leading samples
    // it discarded; the retained tail must still be contiguous, it
    // just no longer starts at ref 1.
    const bool rolling = intervals.at("dropped_samples").asU64() > 0;

    // Windows must tile [first, last] contiguously...
    std::uint64_t prev_last = 0;
    bool have_prev = false;
    for (const JsonValue &s : samples.elements()) {
        const std::uint64_t first = s.at("first_ref").asU64();
        const std::uint64_t last = s.at("last_ref").asU64();
        if (!have_prev) {
            if (!rolling && first != 1)
                return Status::badConfig(
                    "interval windows do not start at ref 1");
            have_prev = true;
        } else if (first != prev_last + 1) {
            return Status::badConfig(
                "interval windows are not contiguous at ref ", first);
        }
        if (last < first)
            return Status::badConfig("interval window ends (", last,
                                     ") before it starts (", first,
                                     ")");
        prev_last = last;
    }

    // ... and the counter-wise sum of the deltas must equal the final
    // aggregates.  This is the invariant that makes the time series
    // trustworthy: nothing sampled twice, nothing lost.  A rolling
    // window that has dropped samples can no longer satisfy it, and a
    // live document with no aggregates yet has nothing to sum to.
    if (rolling || !counters)
        return Status::ok();
    for (const auto &[name, aggregate] : counters->members()) {
        std::uint64_t sum = 0;
        for (const JsonValue &s : samples.elements())
            sum += s.at("counters").at(name).asU64();
        if (sum != aggregate.asU64())
            return Status::badConfig(
                "interval deltas for '", name, "' sum to ", sum,
                " but the aggregate is ", aggregate.asU64());
    }
    return Status::ok();
}

Status
checkEvents(const JsonValue &events)
{
    if (!events.isObject())
        return Status::badConfig("events is not an object");
    const JsonValue &list = events.at("events");
    if (!list.isArray())
        return Status::badConfig("events.events is not an array");
    const std::uint64_t recorded = events.at("recorded").asU64();
    const std::uint64_t seen = events.at("seen").asU64();
    if (list.size() != recorded)
        return Status::badConfig("events.recorded is ", recorded,
                                 " but ", list.size(),
                                 " events are present");
    if (recorded > seen)
        return Status::badConfig("events.recorded exceeds events.seen");
    return Status::ok();
}

Status
checkRunBody(const JsonValue &doc)
{
    if (!doc.at("workload").isString())
        return Status::badConfig("missing workload name");
    const JsonValue &mem = doc.at("mem");
    if (!mem.isObject())
        return Status::badConfig("missing mem section");
    const JsonValue &counters = mem.at("counters");
    if (!counters.isObject() || counters.size() == 0)
        return Status::badConfig("missing mem.counters");
    if (!mem.at("derived").isObject())
        return Status::badConfig("missing mem.derived");

    if (const JsonValue *heat = doc.get("heatmap")) {
        Status s = checkHeatmap(*heat);
        if (!s.isOk())
            return s;
    }
    if (const JsonValue *intervals = doc.get("intervals")) {
        Status s = checkIntervals(*intervals, &counters);
        if (!s.isOk())
            return s;
    }
    if (const JsonValue *events = doc.get("events")) {
        Status s = checkEvents(*events);
        if (!s.isOk())
            return s;
    }
    return Status::ok();
}

/** Run-body invariants plus the classify summary block. */
Status
checkClassifyBody(const JsonValue &doc)
{
    Status s = checkRunBody(doc);
    if (!s.isOk())
        return s;
    const JsonValue &cls = doc.at("classify");
    if (!cls.isObject())
        return Status::badConfig("missing classify section");
    for (const char *key : {"references", "misses"}) {
        if (!cls.at(key).isNumber())
            return Status::badConfig("classify.", key,
                                     " is missing or not a number");
    }
    return Status::ok();
}

bool
knownStreamState(const std::string &state)
{
    return state == "admitted" || state == "running" ||
           state == "draining" || state == "done" ||
           state == "failed";
}

/**
 * kind:"serve" documents (docs/SERVING.md): a daemon summary plus one
 * entry per stream.  Live documents carry partial counters; finished
 * streams carry the same sim/mem/heatmap sections as a batch run row,
 * and failed streams carry their Status string.
 */
Status
checkServeBody(const JsonValue &doc)
{
    const JsonValue &daemon = doc.at("daemon");
    if (!daemon.isObject())
        return Status::badConfig("missing daemon section");
    for (const char *key : {"streams_total", "streams_active",
                            "streams_done", "streams_failed",
                            "records_total"}) {
        if (!daemon.at(key).isNumber())
            return Status::badConfig("daemon.", key,
                                     " is missing or not a number");
    }

    const JsonValue &streams = doc.at("streams");
    if (!streams.isArray())
        return Status::badConfig("missing streams array");

    std::uint64_t active = 0, done = 0, failed = 0;
    std::size_t i = 0;
    for (const JsonValue &s : streams.elements()) {
        const std::string ctx = "stream " + std::to_string(i);
        if (!s.at("name").isString())
            return Status::badConfig(ctx, ": missing name");
        const std::string &state = s.at("state").asString();
        if (!knownStreamState(state))
            return Status::badConfig(ctx, ": unknown state '", state,
                                     "'");
        if (!s.at("records").isNumber())
            return Status::badConfig(ctx, ": missing records count");
        if (state == "failed") {
            ++failed;
            if (!s.at("error").isString())
                return Status::badConfig(
                    ctx, ": failed stream carries no error");
        } else if (state == "done") {
            ++done;
            const JsonValue &mem = s.at("mem");
            if (!mem.isObject() || !mem.at("counters").isObject() ||
                !mem.at("derived").isObject())
                return Status::badConfig(
                    ctx, ": done stream has no mem section");
        } else {
            ++active;
        }
        if (const JsonValue *heat = s.get("heatmap")) {
            Status st = checkHeatmap(*heat);
            if (!st.isOk())
                return st.withContext(ctx);
        }
        if (const JsonValue *window = s.get("window")) {
            const JsonValue *counters =
                state == "done" ? s.at("mem").get("counters")
                                : nullptr;
            Status st = checkIntervals(*window, counters);
            if (!st.isOk())
                return st.withContext(ctx + " window");
        }
        ++i;
    }

    // Active streams are always present in the array; finished ones
    // may have been evicted by report retention, so their array
    // counts only bound the daemon totals from below.
    if (active != daemon.at("streams_active").asU64())
        return Status::badConfig(
            "daemon.streams_active is ",
            daemon.at("streams_active").asU64(), " but ", active,
            " active streams are listed");
    if (done > daemon.at("streams_done").asU64())
        return Status::badConfig(
            "more done streams listed than daemon.streams_done");
    if (failed > daemon.at("streams_failed").asU64())
        return Status::badConfig(
            "more failed streams listed than daemon.streams_failed");
    return Status::ok();
}

/**
 * kind:"metrics" documents (docs/OBSERVABILITY.md): one entry per
 * instrument with a known type; histograms carry count/sum and
 * cumulative, non-decreasing {le, count} buckets whose final count
 * matches the histogram count.
 */
Status
checkMetricsBody(const JsonValue &doc)
{
    const JsonValue &metrics = doc.at("metrics");
    if (!metrics.isArray())
        return Status::badConfig("missing metrics array");

    std::size_t i = 0;
    for (const JsonValue &m : metrics.elements()) {
        const std::string ctx = "metric " + std::to_string(i);
        if (!m.at("name").isString())
            return Status::badConfig(ctx, ": missing name");
        const std::string ctxn = "metric '" + m.at("name").asString() +
                                 "'";
        const std::string &type = m.at("type").asString();
        if (type == "counter" || type == "gauge") {
            if (!m.at("value").isNumber())
                return Status::badConfig(ctxn, ": missing value");
        } else if (type == "histogram") {
            for (const char *key :
                 {"count", "sum", "p50", "p95", "p99"}) {
                if (!m.at(key).isNumber())
                    return Status::badConfig(ctxn, ": ", key,
                                             " is missing or not a "
                                             "number");
            }
            const JsonValue &buckets = m.at("buckets");
            if (!buckets.isArray())
                return Status::badConfig(ctxn,
                                         ": missing buckets array");
            std::uint64_t prev_le = 0, prev_count = 0;
            bool first = true;
            for (const JsonValue &b : buckets.elements()) {
                if (!b.at("le").isNumber() ||
                    !b.at("count").isNumber())
                    return Status::badConfig(
                        ctxn, ": malformed bucket row");
                const std::uint64_t le = b.at("le").asU64();
                const std::uint64_t count = b.at("count").asU64();
                if (!first &&
                    (le <= prev_le || count < prev_count))
                    return Status::badConfig(
                        ctxn, ": buckets are not cumulative");
                prev_le = le;
                prev_count = count;
                first = false;
            }
            if (prev_count != m.at("count").asU64())
                return Status::badConfig(
                    ctxn, ": bucket counts sum to ", prev_count,
                    " but count is ", m.at("count").asU64());
        } else {
            return Status::badConfig(ctxn, ": unknown type '", type,
                                     "'");
        }
        ++i;
    }
    return Status::ok();
}

/**
 * kind:"sample" documents (docs/OBSERVABILITY.md): sampling
 * parameters, a non-empty monotone non-increasing miss-ratio curve
 * over strictly ascending capacities, a geometry recommendation,
 * and — when the interval pillar ran — per-stat estimates that all
 * carry error bars and representative weights that sum to 1.
 */
Status
checkSampleBody(const JsonValue &doc)
{
    if (!doc.at("workload").isString())
        return Status::badConfig("missing workload name");

    const JsonValue &sampling = doc.at("sampling");
    if (!sampling.isObject())
        return Status::badConfig("missing sampling section");
    for (const char *key :
         {"rate_configured", "rate_final", "total_refs",
          "sampled_refs", "lines_sampled"}) {
        if (!sampling.at(key).isNumber())
            return Status::badConfig("sampling.", key,
                                     " is missing or not a number");
    }
    const double rate = sampling.at("rate_final").asDouble();
    if (!(rate > 0.0) || rate > 1.0)
        return Status::badConfig("sampling.rate_final ", rate,
                                 " out of (0, 1]");

    const JsonValue &mrc = doc.at("mrc");
    if (!mrc.isObject())
        return Status::badConfig("missing mrc section");
    const JsonValue &points = mrc.at("points");
    if (!points.isArray() || points.size() == 0)
        return Status::badConfig("mrc.points is missing or empty");
    std::uint64_t prev_cap = 0;
    double prev_mr = 2.0;
    bool first = true;
    for (const JsonValue &p : points.elements()) {
        const std::uint64_t cap = p.at("capacity_bytes").asU64();
        const double mr = p.at("miss_ratio").asDouble();
        if (mr < 0.0 || mr > 1.0)
            return Status::badConfig("mrc miss_ratio ", mr,
                                     " out of [0, 1]");
        if (!first) {
            if (cap <= prev_cap)
                return Status::badConfig(
                    "mrc capacities are not strictly ascending at ",
                    cap);
            // LRU inclusion makes the curve non-increasing; allow
            // float-rounding slack only.
            if (mr > prev_mr + 1e-9)
                return Status::badConfig(
                    "mrc miss_ratio rises from ", prev_mr, " to ",
                    mr, " at capacity ", cap);
        }
        prev_cap = cap;
        prev_mr = mr;
        first = false;
    }

    if (!doc.at("recommendation").isObject())
        return Status::badConfig("missing recommendation section");

    if (const JsonValue *ivl = doc.get("intervals")) {
        for (const char *key :
             {"windows", "clusters", "window_refs", "confidence"}) {
            if (!ivl->at(key).isNumber())
                return Status::badConfig(
                    "intervals.", key, " is missing or not a number");
        }
        const JsonValue &reps = ivl->at("representatives");
        if (!reps.isArray() || reps.size() == 0)
            return Status::badConfig(
                "intervals.representatives is missing or empty");
        double weight_sum = 0.0;
        for (const JsonValue &w : reps.elements())
            weight_sum += w.at("weight").asDouble();
        if (std::fabs(weight_sum - 1.0) > 1e-6)
            return Status::badConfig(
                "representative weights sum to ", weight_sum,
                ", not 1");
        const JsonValue &stats = ivl->at("stats");
        if (!stats.isArray() || stats.size() == 0)
            return Status::badConfig(
                "intervals.stats is missing or empty");
        for (const JsonValue &s : stats.elements()) {
            if (!s.at("name").isString())
                return Status::badConfig(
                    "interval stat row without a name");
            const std::string ctx =
                "stat '" + s.at("name").asString() + "'";
            // Error bars are the point of the reconstruction — a
            // document without them does not validate.
            for (const char *key : {"predicted", "error_bar"}) {
                if (!s.at(key).isNumber())
                    return Status::badConfig(
                        ctx, ": ", key,
                        " is missing or not a number");
            }
        }
    }
    return Status::ok();
}

} // namespace

Status
validateStatsDoc(const JsonValue &doc)
{
    if (!doc.isObject())
        return Status::badConfig("stats document is not a JSON object");
    if (doc.at("schema").asString() != kStatsSchemaName)
        return Status::badConfig("not a ", kStatsSchemaName,
                                 " document");
    const std::uint64_t version = doc.at("schema_version").asU64();
    if (version != kStatsSchemaVersion)
        return Status::unsupported("schema_version ", version,
                                   " (this build understands ",
                                   kStatsSchemaVersion, ")");

    const std::string &kind = doc.at("kind").asString();
    if (kind == "run")
        return checkRunBody(doc).withContext("run document");
    // Classify documents share the run-body schema minus the sim
    // section (which checkRunBody never required) plus a "classify"
    // summary block.
    if (kind == "classify")
        return checkClassifyBody(doc).withContext("classify document");
    if (kind == "serve")
        return checkServeBody(doc).withContext("serve document");
    if (kind == "metrics")
        return checkMetricsBody(doc).withContext("metrics document");
    if (kind == "sample")
        return checkSampleBody(doc).withContext("sample document");
    if (kind == "bench") {
        const JsonValue &table = doc.at("table");
        const JsonValue &headers = table.at("headers");
        if (!headers.isArray() || headers.size() == 0)
            return Status::badConfig(
                "bench document: missing table.headers");
        const JsonValue &rows = table.at("rows");
        if (!rows.isArray())
            return Status::badConfig(
                "bench document: missing table.rows");
        std::size_t i = 0;
        for (const JsonValue &row : rows.elements()) {
            if (!row.isArray() || row.size() != headers.size())
                return Status::badConfig(
                    "bench document: row ", i, " has ", row.size(),
                    " cells but there are ", headers.size(),
                    " headers");
            ++i;
        }
        return Status::ok();
    }
    if (kind == "suite" || kind == "classify-suite") {
        const JsonValue &rows = doc.at("rows");
        if (!rows.isArray())
            return Status::badConfig("suite document: missing rows");
        std::uint64_t errored = 0;
        std::size_t i = 0;
        for (const JsonValue &row : rows.elements()) {
            if (row.get("error")) {
                ++errored;
            } else {
                Status s = kind == "classify-suite"
                               ? checkClassifyBody(row)
                               : checkRunBody(row);
                if (!s.isOk())
                    return s.withContext("suite row " +
                                         std::to_string(i));
            }
            ++i;
        }
        const JsonValue *summary = doc.get("summary");
        if (!summary)
            return Status::badConfig("suite document: missing summary");
        if (summary->at("runs").asU64() != rows.size())
            return Status::badConfig(
                "suite summary.runs disagrees with rows");
        if (summary->at("errored").asU64() != errored)
            return Status::badConfig(
                "suite summary.errored disagrees with rows");
        return Status::ok();
    }
    return Status::badConfig("unknown document kind '", kind, "'");
}

} // namespace ccm::obs
