#include "obs/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace ccm::obs
{

JsonValue
JsonValue::boolean(bool b)
{
    JsonValue v;
    v.kind_ = Kind::Bool;
    v.boolVal = b;
    return v;
}

JsonValue
JsonValue::uint(std::uint64_t u)
{
    JsonValue v;
    v.kind_ = Kind::Uint;
    v.uintVal = u;
    return v;
}

JsonValue
JsonValue::integer(std::int64_t i)
{
    if (i >= 0)
        return uint(static_cast<std::uint64_t>(i));
    JsonValue v;
    v.kind_ = Kind::Int;
    v.intVal = i;
    return v;
}

JsonValue
JsonValue::real(double d)
{
    JsonValue v;
    v.kind_ = Kind::Double;
    v.dblVal = d;
    return v;
}

JsonValue
JsonValue::str(std::string s)
{
    JsonValue v;
    v.kind_ = Kind::String;
    v.strVal = std::move(s);
    return v;
}

JsonValue
JsonValue::array()
{
    JsonValue v;
    v.kind_ = Kind::Array;
    return v;
}

JsonValue
JsonValue::object()
{
    JsonValue v;
    v.kind_ = Kind::Object;
    return v;
}

bool
JsonValue::asBool(bool fallback) const
{
    return kind_ == Kind::Bool ? boolVal : fallback;
}

std::uint64_t
JsonValue::asU64(std::uint64_t fallback) const
{
    switch (kind_) {
      case Kind::Uint:
        return uintVal;
      case Kind::Int:
        return intVal < 0 ? fallback
                          : static_cast<std::uint64_t>(intVal);
      case Kind::Double:
        return dblVal < 0 ? fallback
                          : static_cast<std::uint64_t>(dblVal);
      default:
        return fallback;
    }
}

std::int64_t
JsonValue::asI64(std::int64_t fallback) const
{
    switch (kind_) {
      case Kind::Uint:
        return static_cast<std::int64_t>(uintVal);
      case Kind::Int:
        return intVal;
      case Kind::Double:
        return static_cast<std::int64_t>(dblVal);
      default:
        return fallback;
    }
}

double
JsonValue::asDouble(double fallback) const
{
    switch (kind_) {
      case Kind::Uint:
        return static_cast<double>(uintVal);
      case Kind::Int:
        return static_cast<double>(intVal);
      case Kind::Double:
        return dblVal;
      default:
        return fallback;
    }
}

JsonValue &
JsonValue::set(std::string key, JsonValue v)
{
    if (kind_ != Kind::Object) {
        *this = object();
    }
    for (auto &m : objVal) {
        if (m.first == key) {
            m.second = std::move(v);
            return *this;
        }
    }
    objVal.emplace_back(std::move(key), std::move(v));
    return *this;
}

const JsonValue *
JsonValue::get(std::string_view key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &m : objVal) {
        if (m.first == key)
            return &m.second;
    }
    return nullptr;
}

const JsonValue &
JsonValue::at(std::string_view key) const
{
    static const JsonValue nullSentinel;
    const JsonValue *v = get(key);
    return v ? *v : nullSentinel;
}

JsonValue &
JsonValue::push(JsonValue v)
{
    if (kind_ != Kind::Array) {
        *this = array();
    }
    arrVal.push_back(std::move(v));
    return *this;
}

std::size_t
JsonValue::size() const
{
    if (kind_ == Kind::Array)
        return arrVal.size();
    if (kind_ == Kind::Object)
        return objVal.size();
    return 0;
}

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace
{

void
writeDouble(std::ostream &os, double d)
{
    if (!std::isfinite(d)) {
        os << "null";   // JSON has no NaN/Inf
        return;
    }
    // Round-trip-exact formatting; strip to a compact form.
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    double back = std::strtod(buf, nullptr);
    if (back == d) {
        // Try shorter representations for readability.
        for (int prec = 6; prec < 17; ++prec) {
            char shorter[40];
            std::snprintf(shorter, sizeof(shorter), "%.*g", prec, d);
            if (std::strtod(shorter, nullptr) == d) {
                os << shorter;
                return;
            }
        }
    }
    os << buf;
}

} // namespace

void
JsonValue::writeIndented(std::ostream &os, unsigned depth) const
{
    auto indent = [&](unsigned d) {
        for (unsigned i = 0; i < d; ++i)
            os << "  ";
    };

    switch (kind_) {
      case Kind::Null:
        os << "null";
        break;
      case Kind::Bool:
        os << (boolVal ? "true" : "false");
        break;
      case Kind::Uint:
        os << uintVal;
        break;
      case Kind::Int:
        os << intVal;
        break;
      case Kind::Double:
        writeDouble(os, dblVal);
        break;
      case Kind::String:
        os << '"' << jsonEscape(strVal) << '"';
        break;
      case Kind::Array: {
        if (arrVal.empty()) {
            os << "[]";
            break;
        }
        // Scalar-only arrays print on one line (heatmap rows).
        bool flat = true;
        for (const auto &e : arrVal) {
            if (e.isArray() || e.isObject()) {
                flat = false;
                break;
            }
        }
        os << '[';
        bool first = true;
        for (const auto &e : arrVal) {
            if (!first)
                os << (flat ? ", " : ",");
            if (!flat) {
                os << '\n';
                indent(depth + 1);
            }
            e.writeIndented(os, depth + 1);
            first = false;
        }
        if (!flat) {
            os << '\n';
            indent(depth);
        }
        os << ']';
        break;
      }
      case Kind::Object: {
        if (objVal.empty()) {
            os << "{}";
            break;
        }
        os << "{";
        bool first = true;
        for (const auto &m : objVal) {
            if (!first)
                os << ",";
            os << '\n';
            indent(depth + 1);
            os << '"' << jsonEscape(m.first) << "\": ";
            m.second.writeIndented(os, depth + 1);
            first = false;
        }
        os << '\n';
        indent(depth);
        os << '}';
        break;
      }
    }
}

void
JsonValue::write(std::ostream &os) const
{
    writeIndented(os, 0);
    os << "\n";
}

std::string
JsonValue::toString() const
{
    std::string out;
    {
        std::ostringstream ss;
        write(ss);
        out = ss.str();
    }
    return out;
}

// ---- Parser --------------------------------------------------------

namespace
{

/** Recursive-descent JSON parser over a string_view cursor. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : s(text) {}

    Expected<JsonValue>
    parseDocument()
    {
        skipWs();
        JsonValue v;
        Status st = parseValue(v, 0);
        if (!st.isOk())
            return st;
        skipWs();
        if (pos != s.size())
            return fail("trailing characters after JSON value");
        return v;
    }

  private:
    static constexpr unsigned maxDepth = 64;

    Status
    fail(const std::string &what) const
    {
        return Status::badConfig("json parse error at offset ",
                                 std::to_string(pos), ": ", what);
    }

    void
    skipWs()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                s[pos] == '\r')) {
            ++pos;
        }
    }

    bool
    consume(char c)
    {
        if (pos < s.size() && s[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    consumeWord(std::string_view w)
    {
        if (s.substr(pos, w.size()) == w) {
            pos += w.size();
            return true;
        }
        return false;
    }

    Status
    parseValue(JsonValue &out, unsigned depth)
    {
        if (depth > maxDepth)
            return fail("nesting too deep");
        skipWs();
        if (pos >= s.size())
            return fail("unexpected end of input");
        char c = s[pos];
        if (c == '{')
            return parseObject(out, depth);
        if (c == '[')
            return parseArray(out, depth);
        if (c == '"')
            return parseString(out);
        if (c == 't') {
            if (!consumeWord("true"))
                return fail("bad literal");
            out = JsonValue::boolean(true);
            return Status::ok();
        }
        if (c == 'f') {
            if (!consumeWord("false"))
                return fail("bad literal");
            out = JsonValue::boolean(false);
            return Status::ok();
        }
        if (c == 'n') {
            if (!consumeWord("null"))
                return fail("bad literal");
            out = JsonValue::null();
            return Status::ok();
        }
        return parseNumber(out);
    }

    Status
    parseObject(JsonValue &out, unsigned depth)
    {
        ++pos;   // '{'
        out = JsonValue::object();
        skipWs();
        if (consume('}'))
            return Status::ok();
        for (;;) {
            skipWs();
            JsonValue key;
            if (pos >= s.size() || s[pos] != '"')
                return fail("expected object key");
            Status st = parseString(key);
            if (!st.isOk())
                return st;
            skipWs();
            if (!consume(':'))
                return fail("expected ':'");
            JsonValue val;
            st = parseValue(val, depth + 1);
            if (!st.isOk())
                return st;
            out.set(key.asString(), std::move(val));
            skipWs();
            if (consume(','))
                continue;
            if (consume('}'))
                return Status::ok();
            return fail("expected ',' or '}'");
        }
    }

    Status
    parseArray(JsonValue &out, unsigned depth)
    {
        ++pos;   // '['
        out = JsonValue::array();
        skipWs();
        if (consume(']'))
            return Status::ok();
        for (;;) {
            JsonValue val;
            Status st = parseValue(val, depth + 1);
            if (!st.isOk())
                return st;
            out.push(std::move(val));
            skipWs();
            if (consume(','))
                continue;
            if (consume(']'))
                return Status::ok();
            return fail("expected ',' or ']'");
        }
    }

    Status
    parseString(JsonValue &out)
    {
        ++pos;   // '"'
        std::string str;
        while (pos < s.size()) {
            char c = s[pos];
            if (c == '"') {
                ++pos;
                out = JsonValue::str(std::move(str));
                return Status::ok();
            }
            if (c == '\\') {
                ++pos;
                if (pos >= s.size())
                    return fail("unterminated escape");
                char e = s[pos];
                switch (e) {
                  case '"':
                    str += '"';
                    break;
                  case '\\':
                    str += '\\';
                    break;
                  case '/':
                    str += '/';
                    break;
                  case 'b':
                    str += '\b';
                    break;
                  case 'f':
                    str += '\f';
                    break;
                  case 'n':
                    str += '\n';
                    break;
                  case 'r':
                    str += '\r';
                    break;
                  case 't':
                    str += '\t';
                    break;
                  case 'u': {
                    if (pos + 4 >= s.size())
                        return fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = s[pos + 1 +
                                   static_cast<std::size_t>(i)];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |=
                                static_cast<unsigned>(h - 'a') + 10u;
                        else if (h >= 'A' && h <= 'F')
                            code |=
                                static_cast<unsigned>(h - 'A') + 10u;
                        else
                            return fail("bad \\u escape");
                    }
                    pos += 4;
                    // UTF-8-encode the BMP code point (no surrogate
                    // pairing — the stats schema never emits any).
                    if (code < 0x80) {
                        str += static_cast<char>(code);
                    } else if (code < 0x800) {
                        str += static_cast<char>(0xC0u | (code >> 6));
                        str += static_cast<char>(0x80u |
                                                 (code & 0x3Fu));
                    } else {
                        str += static_cast<char>(0xE0u | (code >> 12));
                        str += static_cast<char>(
                            0x80u | ((code >> 6) & 0x3Fu));
                        str += static_cast<char>(0x80u |
                                                 (code & 0x3Fu));
                    }
                    break;
                  }
                  default:
                    return fail("unknown escape");
                }
                ++pos;
                continue;
            }
            str += c;
            ++pos;
        }
        return fail("unterminated string");
    }

    Status
    parseNumber(JsonValue &out)
    {
        std::size_t start = pos;
        bool negative = consume('-');
        bool isDouble = false;
        while (pos < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[pos])) ||
                s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E' ||
                s[pos] == '+' || s[pos] == '-')) {
            if (s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E')
                isDouble = true;
            ++pos;
        }
        if (pos == start + (negative ? 1u : 0u))
            return fail("bad number");
        std::string tok(s.substr(start, pos - start));
        if (isDouble) {
            out = JsonValue::real(std::strtod(tok.c_str(), nullptr));
        } else if (negative) {
            out = JsonValue::integer(
                std::strtoll(tok.c_str(), nullptr, 10));
        } else {
            out = JsonValue::uint(
                std::strtoull(tok.c_str(), nullptr, 10));
        }
        return Status::ok();
    }

    std::string_view s;
    std::size_t pos = 0;
};

} // namespace

Expected<JsonValue>
JsonValue::parse(std::string_view text)
{
    return Parser(text).parseDocument();
}

} // namespace ccm::obs
