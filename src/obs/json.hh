/**
 * @file
 * Minimal JSON document model for the observability layer: an
 * insertion-ordered value tree, a pretty-printing writer, and a
 * recursive-descent parser.
 *
 * This is deliberately small — just enough for the stats schema
 * (docs/OBSERVABILITY.md): objects preserve insertion order so dumps
 * are stable and diffable, unsigned 64-bit integers round-trip exactly
 * (counters exceed 2^53), and parse errors come back as Status rather
 * than exceptions so ccm-report can triage bad files with exit codes.
 */

#ifndef CCM_OBS_JSON_HH
#define CCM_OBS_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.hh"

namespace ccm::obs
{

/** One JSON value: null, bool, integer, double, string, array, object. */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Uint,    ///< unsigned 64-bit integer (counters, addresses)
        Int,     ///< negative integers only (parser normalizes)
        Double,
        String,
        Array,
        Object,
    };

    JsonValue() = default;

    // Scalar constructors.  Integral construction is explicit per
    // width so -Wconversion stays quiet at call sites.
    static JsonValue null() { return JsonValue(); }
    static JsonValue boolean(bool b);
    static JsonValue uint(std::uint64_t u);
    static JsonValue integer(std::int64_t i);
    static JsonValue real(double d);
    static JsonValue str(std::string s);
    static JsonValue array();
    static JsonValue object();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const
    {
        return kind_ == Kind::Uint || kind_ == Kind::Int ||
               kind_ == Kind::Double;
    }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool asBool(bool fallback = false) const;
    std::uint64_t asU64(std::uint64_t fallback = 0) const;
    std::int64_t asI64(std::int64_t fallback = 0) const;
    double asDouble(double fallback = 0.0) const;
    const std::string &asString() const { return strVal; }

    // ---- Object access ---------------------------------------------
    /** Set @p key (append or overwrite); converts this to an object. */
    JsonValue &set(std::string key, JsonValue v);

    /** Member lookup; nullptr when absent or not an object. */
    const JsonValue *get(std::string_view key) const;

    /** get(), but a Null sentinel instead of nullptr. */
    const JsonValue &at(std::string_view key) const;

    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return objVal;
    }

    // ---- Array access ----------------------------------------------
    /** Append an element; converts this to an array. */
    JsonValue &push(JsonValue v);

    const std::vector<JsonValue> &elements() const { return arrVal; }

    /** Array/object element count; 0 for scalars. */
    std::size_t size() const;

    // ---- Serialization ---------------------------------------------
    /** Pretty-print with 2-space indentation and a trailing newline. */
    void write(std::ostream &os) const;

    /** write() to a string. */
    std::string toString() const;

    /** Parse @p text; trailing non-whitespace is an error. */
    static Expected<JsonValue> parse(std::string_view text);

  private:
    void writeIndented(std::ostream &os, unsigned depth) const;

    Kind kind_ = Kind::Null;
    bool boolVal = false;
    std::uint64_t uintVal = 0;
    std::int64_t intVal = 0;
    double dblVal = 0.0;
    std::string strVal;
    std::vector<JsonValue> arrVal;
    std::vector<std::pair<std::string, JsonValue>> objVal;
};

/** JSON string escaping (quotes not included). */
std::string jsonEscape(std::string_view s);

} // namespace ccm::obs

#endif // CCM_OBS_JSON_HH
