/**
 * @file
 * Next-line prefetcher (paper §5.2): on a cache miss to line L,
 * prefetch line L+1 into the assist buffer (unless already present in
 * the cache or buffer).  On a prefetch-buffer hit, the line moves into
 * the cache and the next line is prefetched.
 *
 * With miss-classification filtering, the prefetch is suppressed when
 * the configured conflict filter fires — conflict misses are poorly
 * predicted by a next-line pattern, so skipping them raises accuracy
 * ~25% while barely affecting coverage.
 *
 * This object only computes *what* to prefetch and keeps the
 * accuracy/coverage accounting; the memory system decides whether the
 * prefetch can be issued (MSHR/bus availability) and owns the buffer.
 */

#ifndef CCM_PREFETCH_NEXTLINE_HH
#define CCM_PREFETCH_NEXTLINE_HH

#include <optional>

#include "common/addr_types.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace ccm
{

/** Next-line prefetch address generator with accounting. */
class NextLinePrefetcher
{
  public:
    /** @param line_bytes cache line size */
    explicit NextLinePrefetcher(unsigned line_bytes);

    /**
     * Address to prefetch in response to a demand miss (or a prefetch
     * buffer hit) on @p line_addr.
     */
    LineAddr nextLine(LineAddr line_addr) const;

    // Accounting (driven by the memory system) ----------------------
    void countIssued() { ++nIssued; }
    void countDropped() { ++nDropped; }
    void countFiltered() { ++nFiltered; }
    void countUseful() { ++nUseful; }

    Count issued() const { return nIssued; }
    Count dropped() const { return nDropped; }
    Count filtered() const { return nFiltered; }
    Count useful() const { return nUseful; }

    /** Useful / issued — the paper's prefetch accuracy. */
    double accuracy() const { return safeRatio(nUseful, nIssued); }

    void clearStats();

  private:
    unsigned lineBytes;
    Count nIssued = 0;    ///< prefetches sent to the memory system
    Count nDropped = 0;   ///< suppressed: MSHRs full
    Count nFiltered = 0;  ///< suppressed: conflict-miss filter
    Count nUseful = 0;    ///< prefetched lines that served a hit
};

} // namespace ccm

#endif // CCM_PREFETCH_NEXTLINE_HH
