#include "prefetch/rpt.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace ccm
{

RptPrefetcher::RptPrefetcher(std::size_t entries)
    : table(entries), mask(entries - 1)
{
    if (!isPowerOfTwo(entries))
        ccm_fatal("RPT entries must be a power of two: ", entries);
}

std::optional<ByteAddr>
RptPrefetcher::observe(ByteAddr pc, ByteAddr addr)
{
    Entry &e = table[indexOf(pc)];

    if (!e.valid || e.tag != pc.value()) {
        e.valid = true;
        e.tag = pc.value();
        e.prevAddr = addr.value();
        e.stride = 0;
        e.state = State::Initial;
        return std::nullopt;
    }

    std::int64_t new_stride =
        static_cast<std::int64_t>(addr.value()) -
        static_cast<std::int64_t>(e.prevAddr);
    bool correct = new_stride == e.stride;

    switch (e.state) {
      case State::Initial:
        e.state = correct ? State::Steady : State::Transient;
        break;
      case State::Transient:
        e.state = correct ? State::Steady : State::NoPred;
        break;
      case State::Steady:
        if (!correct)
            e.state = State::Initial;
        break;
      case State::NoPred:
        if (correct)
            e.state = State::Transient;
        break;
    }

    if (!correct)
        e.stride = new_stride;
    e.prevAddr = addr.value();

    if (e.state == State::Steady && e.stride != 0) {
        ++nPred;
        return ByteAddr{static_cast<Addr>(
            static_cast<std::int64_t>(addr.value()) + e.stride)};
    }
    return std::nullopt;
}

RptPrefetcher::State
RptPrefetcher::stateFor(ByteAddr pc) const
{
    const Entry &e = table[indexOf(pc)];
    if (!e.valid || e.tag != pc.value())
        return State::Initial;
    return e.state;
}

void
RptPrefetcher::clear()
{
    for (auto &e : table)
        e = Entry{};
    nPred = 0;
}

} // namespace ccm
