#include "prefetch/nextline.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace ccm
{

NextLinePrefetcher::NextLinePrefetcher(unsigned line_bytes)
    : lineBytes(line_bytes)
{
    if (!isPowerOfTwo(line_bytes))
        ccm_fatal("line size must be a power of two: ", line_bytes);
}

LineAddr
NextLinePrefetcher::nextLine(LineAddr line_addr) const
{
    return LineAddr{(line_addr.value() & ~Addr{lineBytes - 1u}) +
                    lineBytes};
}

void
NextLinePrefetcher::clearStats()
{
    nIssued = nDropped = nFiltered = nUseful = 0;
}

} // namespace ccm
