/**
 * @file
 * Chen & Baer reference prediction table (RPT) stride prefetcher —
 * the more sophisticated comparator the paper examined alongside the
 * next-line prefetcher (§5.2).  Unlike the next-line scheme + MCT,
 * the RPT must be read and updated on *every* memory access.
 *
 * Classic four-state design: each entry, indexed/tagged by load PC,
 * tracks the previous address and a stride with an
 * initial / transient / steady / no-prediction state machine.
 * A prefetch of (addr + stride) is suggested in steady state.
 */

#ifndef CCM_PREFETCH_RPT_HH
#define CCM_PREFETCH_RPT_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/addr_types.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace ccm
{

/** Reference prediction table stride prefetcher. */
class RptPrefetcher
{
  public:
    /** Entry state machine (Chen & Baer, 1995). */
    enum class State : std::uint8_t
    {
        Initial,
        Transient,
        Steady,
        NoPred,
    };

    /**
     * @param entries table size (power of two, direct-mapped by PC)
     */
    explicit RptPrefetcher(std::size_t entries = 512);

    /**
     * Observe a memory access and, if the entry is confident, return
     * the address to prefetch.
     *
     * @param pc the load/store instruction address
     * @param addr the effective address
     * @return predicted next address, if in steady state
     */
    std::optional<ByteAddr> observe(ByteAddr pc, ByteAddr addr);

    /** Peek at an entry's state (testing). */
    State stateFor(ByteAddr pc) const;

    Count predictions() const { return nPred; }
    void clear();

  private:
    struct Entry
    {
        Addr tag = 0;
        Addr prevAddr = 0;
        std::int64_t stride = 0;
        State state = State::Initial;
        bool valid = false;
    };

    std::size_t indexOf(ByteAddr pc) const
    {
        return static_cast<std::size_t>(pc.value() >> 2) & mask;
    }

    std::vector<Entry> table;
    std::size_t mask;
    Count nPred = 0;
};

} // namespace ccm

#endif // CCM_PREFETCH_RPT_HH
