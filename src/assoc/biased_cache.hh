/**
 * @file
 * MCT-biased replacement for set-associative caches — the first
 * "other application" of paper §5.6 (also the use Stone/Pomerene
 * suggested for the shadow directory): bias the replacement algorithm
 * against lines that entered on capacity misses, so streaming data
 * "moves out of the cache set quickly once it is no longer being
 * used" while conflict-miss lines are retained.
 *
 * Policy: on a miss, evict the LRU line among those whose conflict
 * bit is clear; only when every line in the set is marked conflict
 * does plain LRU run (and the survivor set keeps its bits).  The
 * incoming line's bit comes from the MCT, exactly as in §3.
 */

#ifndef CCM_ASSOC_BIASED_CACHE_HH
#define CCM_ASSOC_BIASED_CACHE_HH

#include "cache/cache.hh"
#include "common/stats.hh"
#include "mct/mct.hh"

namespace ccm
{

/** Outcome of one biased-cache access. */
struct BiasedAccess
{
    bool hit = false;
    /** For misses: the MCT classification of the miss. */
    bool wasConflict = false;
    /** For misses: whether the bias overrode the plain-LRU choice. */
    bool biasApplied = false;
    bool evictedValid = false;
    LineAddr evictedLineAddr{};
    bool evictedDirty = false;
};

/** Set-associative cache with optional MCT-biased replacement. */
class BiasedAssocCache
{
  public:
    /**
     * @param geometry any associativity >= 2 is interesting
     * @param use_bias false = plain LRU baseline
     * @param mct_tag_bits stored-tag width (0 = full)
     */
    BiasedAssocCache(const CacheGeometry &geometry, bool use_bias,
                     unsigned mct_tag_bits = 0);

    /** Access @p addr, filling on a miss. */
    BiasedAccess access(ByteAddr addr, bool is_store);

    const CacheGeometry &geometry() const { return cache.geometry(); }

    Count hits() const { return nHits; }
    Count misses() const { return nMisses; }
    Count accesses() const { return nHits + nMisses; }
    double missRate() const { return safeRatio(nMisses, accesses()); }
    /** Misses where the bias changed the LRU victim. */
    Count biasOverrides() const { return nOverrides; }

    void clear();

  private:
    WayIndex chooseVictim(SetIndex set, bool &bias_applied) const;

    Cache cache;
    bool useBias;
    MissClassificationTable mct;

    Count nHits = 0;
    Count nMisses = 0;
    Count nOverrides = 0;
};

} // namespace ccm

#endif // CCM_ASSOC_BIASED_CACHE_HH
