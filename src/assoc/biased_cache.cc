#include "assoc/biased_cache.hh"

#include "common/logging.hh"

namespace ccm
{

BiasedAssocCache::BiasedAssocCache(const CacheGeometry &geometry,
                                   bool use_bias,
                                   unsigned mct_tag_bits)
    : cache(geometry), useBias(use_bias),
      mct(geometry.numSets(), mct_tag_bits)
{
}

unsigned
BiasedAssocCache::chooseVictim(std::size_t set,
                               bool &bias_applied) const
{
    const CacheGeometry &g = cache.geometry();
    bias_applied = false;

    // Free way first.
    for (unsigned w = 0; w < g.assoc(); ++w) {
        if (!cache.lineAt(set, w).valid)
            return w;
    }

    // Plain LRU victim for reference.
    unsigned lru = 0;
    for (unsigned w = 1; w < g.assoc(); ++w) {
        if (cache.lineAt(set, w).lastUse <
            cache.lineAt(set, lru).lastUse)
            lru = w;
    }
    if (!useBias)
        return lru;

    // Biased: LRU among capacity-miss (unmarked) lines.
    bool found = false;
    unsigned victim = 0;
    for (unsigned w = 0; w < g.assoc(); ++w) {
        const CacheLine &l = cache.lineAt(set, w);
        if (l.conflictBit)
            continue;
        if (!found || l.lastUse < cache.lineAt(set, victim).lastUse) {
            victim = w;
            found = true;
        }
    }
    if (!found)
        return lru;       // every line protected: plain LRU
    bias_applied = victim != lru;
    return victim;
}

BiasedAccess
BiasedAssocCache::access(Addr addr, bool is_store)
{
    BiasedAccess out;
    if (cache.access(addr, is_store)) {
        ++nHits;
        out.hit = true;
        return out;
    }
    ++nMisses;

    const CacheGeometry &g = cache.geometry();
    const std::size_t set = g.setIndex(addr);
    const Addr tag = g.tag(addr);

    out.wasConflict = mct.isConflictMiss(set, tag);

    bool bias_applied = false;
    unsigned way = chooseVictim(set, bias_applied);
    out.biasApplied = bias_applied;
    if (bias_applied)
        ++nOverrides;

    FillResult ev = cache.fillWay(addr, way, out.wasConflict,
                                  is_store);
    if (ev.valid) {
        out.evictedValid = true;
        out.evictedLineAddr = ev.lineAddr;
        out.evictedDirty = ev.dirty;
        mct.recordEviction(set, g.tag(ev.lineAddr));
    }
    return out;
}

void
BiasedAssocCache::clear()
{
    cache.clear();
    mct.clear();
    nHits = nMisses = nOverrides = 0;
}

} // namespace ccm
