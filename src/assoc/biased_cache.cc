#include "assoc/biased_cache.hh"

#include "common/logging.hh"

namespace ccm
{

BiasedAssocCache::BiasedAssocCache(const CacheGeometry &geometry,
                                   bool use_bias,
                                   unsigned mct_tag_bits)
    : cache(geometry), useBias(use_bias),
      mct(geometry.numSets(), mct_tag_bits)
{
}

WayIndex
BiasedAssocCache::chooseVictim(SetIndex set,
                               bool &bias_applied) const
{
    const CacheGeometry &g = cache.geometry();
    bias_applied = false;

    // Free way first.
    for (unsigned w = 0; w < g.assoc(); ++w) {
        if (!cache.lineAt(set, WayIndex{w}).valid)
            return WayIndex{w};
    }

    // Plain LRU victim for reference.
    unsigned lru = 0;
    for (unsigned w = 1; w < g.assoc(); ++w) {
        if (cache.lineAt(set, WayIndex{w}).lastUse <
            cache.lineAt(set, WayIndex{lru}).lastUse)
            lru = w;
    }
    if (!useBias)
        return WayIndex{lru};

    // Biased: LRU among capacity-miss (unmarked) lines.
    bool found = false;
    unsigned victim = 0;
    for (unsigned w = 0; w < g.assoc(); ++w) {
        const CacheLine &l = cache.lineAt(set, WayIndex{w});
        if (l.conflictBit)
            continue;
        if (!found ||
            l.lastUse < cache.lineAt(set, WayIndex{victim}).lastUse) {
            victim = w;
            found = true;
        }
    }
    if (!found)
        return WayIndex{lru};  // every line protected: plain LRU
    bias_applied = victim != lru;
    return WayIndex{victim};
}

BiasedAccess
BiasedAssocCache::access(ByteAddr addr, bool is_store)
{
    BiasedAccess out;
    if (cache.access(addr, is_store)) {
        ++nHits;
        out.hit = true;
        return out;
    }
    ++nMisses;

    const CacheGeometry &g = cache.geometry();
    const SetIndex set = g.setOf(addr);
    const Tag tag = g.tagOf(addr);

    out.wasConflict = mct.isConflictMiss(set, tag);

    bool bias_applied = false;
    WayIndex way = chooseVictim(set, bias_applied);
    out.biasApplied = bias_applied;
    if (bias_applied)
        ++nOverrides;

    FillResult ev = cache.fillWay(addr, way, out.wasConflict,
                                  is_store);
    if (ev.valid) {
        out.evictedValid = true;
        out.evictedLineAddr = ev.lineAddr;
        out.evictedDirty = ev.dirty;
        mct.recordEviction(set, g.tagOf(ev.lineAddr));
    }
    return out;
}

void
BiasedAssocCache::clear()
{
    cache.clear();
    mct.clear();
    nHits = nMisses = nOverrides = 0;
}

} // namespace ccm
