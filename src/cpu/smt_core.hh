/**
 * @file
 * Simultaneous-multithreading core timing model.
 *
 * The paper's host simulator, SMTSIM, is an SMT processor simulator,
 * and §5.6 argues the paper's techniques "apply to an even greater
 * extent with multithreaded caches".  This model makes that claim
 * measurable: N hardware contexts share the fetch/issue bandwidth,
 * the load/store units and the entire memory system (hence the L1,
 * the MCT and the assist buffer).
 *
 * Fetch follows the ICOUNT-style policy of Tullsen et al.: each
 * cycle, ready threads are served in order of fewest instructions in
 * the window, which naturally throttles threads blocked on misses.
 */

#ifndef CCM_CPU_SMT_CORE_HH
#define CCM_CPU_SMT_CORE_HH

#include <vector>

#include "cpu/core.hh"

namespace ccm
{

/** Results of one SMT run. */
struct SmtResult
{
    Cycle cycles = 0;
    Count totalInstructions = 0;
    double throughputIpc = 0.0;          ///< all threads combined
    std::vector<Count> perThreadInstrs;  ///< committed per context
};

/** N-context SMT core sharing one memory system. */
class SmtCore
{
  public:
    /**
     * @param config per-core width/window parameters; the reorder
     *        window is partitioned evenly between contexts
     * @param threads hardware contexts (>= 1)
     */
    SmtCore(const CoreConfig &config, unsigned threads);

    /**
     * Run every trace (reset first) to completion against the shared
     * memory system; the run ends when all traces are drained.
     */
    SmtResult run(const std::vector<TraceSource *> &traces,
                  MemorySystem &mem);

  private:
    CoreConfig cfg;
    unsigned nThreads;
};

} // namespace ccm

#endif // CCM_CPU_SMT_CORE_HH
