#include "cpu/core.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"
#include "common/random.hh"
#include "trace/batch_reader.hh"

namespace ccm
{

SimResult
Core::run(TraceSource &trace, MemorySystem &mem)
{
    trace.reset();

    // Pull records in batches: the per-record virtual next() call is
    // the hottest dispatch in a timing run (docs/PERFORMANCE.md).
    BatchReader reader(trace);

    // Deterministic wrong-path generator (squashed speculative
    // loads; see CoreConfig::wrongPathRate).
    Pcg32 wp_rng(0xbadb07);
    Addr last_mem_addr = 0;

    // Ring buffer of completion cycles: the reorder window.
    std::vector<Cycle> rob(cfg.robSize, 0);
    std::size_t head = 0;
    std::size_t count = 0;

    Cycle now = cfg.pipelineFill;   // fill the 7-stage front end
    Count instrs = 0;
    Count mem_refs = 0;
    Cycle last_load_complete = 0;

    MemRecord rec;
    bool have = reader.next(rec);

    while (have || count > 0) {
        // In-order retire, up to retireWidth per cycle.
        unsigned retired = 0;
        while (count > 0 && retired < cfg.retireWidth &&
               rob[head] <= now) {
            head = (head + 1) % cfg.robSize;
            --count;
            ++retired;
        }

        // Fetch/dispatch, bounded by width, window space, and
        // load/store units.
        unsigned dispatched = 0;
        unsigned lsu_used = 0;
        while (have && dispatched < cfg.fetchWidth &&
               count < cfg.robSize) {
            Cycle complete;
            if (rec.isMem()) {
                if (lsu_used >= cfg.loadStoreUnits)
                    break;
                ++lsu_used;
                Cycle issue = now;
                if (rec.dependsOnPrevLoad)
                    issue = std::max(issue, last_load_complete);
                AccessResult r = mem.access(
                    rec.pcAddr(), rec.dataAddr(), rec.isStore(),
                    issue);
                ++mem_refs;
                last_mem_addr = rec.addr;
                if (rec.isStore()) {
                    // Store buffer: retire without waiting for data.
                    complete = now + 1;
                } else {
                    complete = r.ready;
                    last_load_complete = r.ready;
                }
            } else {
                complete = now + 1;
                // Branch-mispredict wrong path: a burst of squashed
                // speculative loads near the recent access region —
                // they disturb the caches and the MCT but never
                // enter the window.
                if (cfg.wrongPathRate != 0 &&
                    wp_rng.below(cfg.wrongPathRate) == 0) {
                    for (unsigned w = 0; w < cfg.wrongPathBurst;
                         ++w) {
                        Addr wild = last_mem_addr +
                                    (Addr(wp_rng.below(256)) -
                                     128) * 64;
                        mem.access(ByteAddr{rec.pc ^ 0x4},
                                   ByteAddr{wild}, false, now);
                    }
                }
            }
            rob[(head + count) % cfg.robSize] = complete;
            ++count;
            ++instrs;
            ++dispatched;
            have = reader.next(rec);
        }

        // Advance time; when the window is blocked, jump straight to
        // the head's completion instead of idling cycle by cycle.
        bool blocked = count > 0 && rob[head] > now &&
                       (count == cfg.robSize || !have);
        if (blocked)
            now = rob[head];
        else
            ++now;
    }

    SimResult res;
    res.cycles = now;
    res.instructions = instrs;
    res.memRefs = mem_refs;
    res.ipc = res.cycles == 0
                  ? 0.0
                  : static_cast<double>(instrs) /
                        static_cast<double>(res.cycles);
    return res;
}

} // namespace ccm
