#include "cpu/smt_core.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"
#include "trace/batch_reader.hh"

namespace ccm
{

namespace
{

/** Per-context execution state. */
struct Context
{
    std::vector<Cycle> rob;   ///< completion cycles, ring buffer
    std::size_t head = 0;
    std::size_t count = 0;
    Cycle lastLoadComplete = 0;
    MemRecord pending;        ///< next record to dispatch
    bool havePending = false;
    bool drained = false;
    Count instrs = 0;
};

} // namespace

SmtCore::SmtCore(const CoreConfig &config, unsigned threads)
    : cfg(config), nThreads(threads)
{
    if (threads == 0)
        ccm_fatal("SMT core needs at least one context");
    if (cfg.robSize / threads == 0)
        ccm_fatal("window too small for ", threads, " contexts");
}

SmtResult
SmtCore::run(const std::vector<TraceSource *> &traces,
             MemorySystem &mem)
{
    if (traces.size() != nThreads)
        ccm_fatal("expected ", nThreads, " traces, got ",
                  traces.size());

    const std::size_t window = cfg.robSize / nThreads;
    std::vector<Context> ctx(nThreads);
    // One batch-buffered reader per hardware context (the contexts'
    // traces are independent streams).
    std::vector<BatchReader> readers;
    readers.reserve(nThreads);
    for (unsigned t = 0; t < nThreads; ++t) {
        ctx[t].rob.assign(window, 0);
        traces[t]->reset();
        readers.emplace_back(*traces[t]);
        ctx[t].havePending = readers[t].next(ctx[t].pending);
        ctx[t].drained = !ctx[t].havePending;
    }

    Cycle now = cfg.pipelineFill;
    std::vector<unsigned> order(nThreads);

    auto all_done = [&]() {
        for (const auto &c : ctx) {
            if (!c.drained || c.count > 0)
                return false;
        }
        return true;
    };

    while (!all_done()) {
        // ---- retire: shared width, round-robin over contexts ----
        unsigned retired = 0;
        for (unsigned t = 0; t < nThreads && retired < cfg.retireWidth;
             ++t) {
            Context &c = ctx[t];
            while (c.count > 0 && retired < cfg.retireWidth &&
                   c.rob[c.head] <= now) {
                c.head = (c.head + 1) % window;
                --c.count;
                ++retired;
            }
        }

        // ---- fetch/dispatch: ICOUNT order ----
        std::iota(order.begin(), order.end(), 0u);
        std::sort(order.begin(), order.end(),
                  [&](unsigned a, unsigned b) {
                      return ctx[a].count < ctx[b].count;
                  });

        unsigned dispatched = 0;
        unsigned lsu_used = 0;
        for (unsigned t : order) {
            Context &c = ctx[t];
            while (c.havePending && dispatched < cfg.fetchWidth &&
                   c.count < window) {
                Cycle complete;
                MemRecord &rec = c.pending;
                if (rec.isMem()) {
                    if (lsu_used >= cfg.loadStoreUnits)
                        break;
                    ++lsu_used;
                    Cycle issue = now;
                    if (rec.dependsOnPrevLoad)
                        issue = std::max(issue, c.lastLoadComplete);
                    AccessResult r =
                        mem.access(rec.pcAddr(), rec.dataAddr(),
                                   rec.isStore(), issue);
                    if (rec.isStore()) {
                        complete = now + 1;
                    } else {
                        complete = r.ready;
                        c.lastLoadComplete = r.ready;
                    }
                } else {
                    complete = now + 1;
                }
                c.rob[(c.head + c.count) % window] = complete;
                ++c.count;
                ++c.instrs;
                ++dispatched;
                c.havePending = readers[t].next(c.pending);
                if (!c.havePending)
                    c.drained = true;
            }
        }

        // ---- advance time, fast-forwarding global stalls ----
        bool can_progress = dispatched > 0;
        if (!can_progress) {
            // Jump to the earliest completion that unblocks someone.
            Cycle next_event = 0;
            for (const auto &c : ctx) {
                if (c.count > 0) {
                    Cycle head_done = c.rob[c.head];
                    if (next_event == 0 || head_done < next_event)
                        next_event = head_done;
                }
            }
            now = std::max(now + 1, next_event);
        } else {
            ++now;
        }
    }

    SmtResult res;
    res.cycles = now;
    res.perThreadInstrs.resize(nThreads);
    for (unsigned t = 0; t < nThreads; ++t) {
        res.perThreadInstrs[t] = ctx[t].instrs;
        res.totalInstructions += ctx[t].instrs;
    }
    res.throughputIpc =
        res.cycles == 0
            ? 0.0
            : double(res.totalInstructions) / double(res.cycles);
    return res;
}

} // namespace ccm
