/**
 * @file
 * Trace-driven out-of-order core timing model.
 *
 * Stands in for SMTSIM's emulation-driven pipeline (see DESIGN.md):
 * 8-wide fetch/dispatch/retire, a reorder window sized to the paper's
 * two 32-entry instruction queues, four load/store units, in-order
 * retirement.  Loads complete when the memory system delivers their
 * data; pointer-chasing loads (dependsOnPrevLoad) cannot issue before
 * the previous load completes; stores retire without waiting.  This
 * captures the first-order effect the paper's speedups ride on: how
 * much miss latency an out-of-order window can overlap.
 */

#ifndef CCM_CPU_CORE_HH
#define CCM_CPU_CORE_HH

#include "common/types.hh"
#include "hierarchy/memsys.hh"
#include "trace/source.hh"

namespace ccm
{

/** Core width/window parameters (defaults = paper §4). */
struct CoreConfig
{
    unsigned fetchWidth = 8;    ///< instructions fetched per cycle
    unsigned retireWidth = 8;   ///< instructions retired per cycle
    unsigned robSize = 64;      ///< 2 x 32-entry instruction queues
    unsigned loadStoreUnits = 4;
    Cycle pipelineFill = 7;     ///< 7-stage front end

    /**
     * Wrong-path modelling (SMTSIM "models execution and memory
     * access along wrong paths following branch mispredictions").
     * With probability 1/wrongPathRate per instruction, a burst of
     * speculative loads near recently-seen addresses is issued to the
     * memory system — polluting caches and the MCT — before being
     * squashed (they never retire).  0 disables.
     */
    unsigned wrongPathRate = 0;
    unsigned wrongPathBurst = 4;   ///< wrong-path loads per event
};

/** Outcome of one timing run. */
struct SimResult
{
    Cycle cycles = 0;
    Count instructions = 0;
    Count memRefs = 0;
    double ipc = 0.0;
};

/** The out-of-order core model. */
class Core
{
  public:
    explicit Core(const CoreConfig &config) : cfg(config) {}

    /**
     * Run @p trace (reset first) to completion against @p mem.
     */
    SimResult run(TraceSource &trace, MemorySystem &mem);

  private:
    CoreConfig cfg;
};

} // namespace ccm

#endif // CCM_CPU_CORE_HH
