/**
 * @file
 * Unit tests for MCT-biased replacement in set-associative caches
 * (§5.6 application).
 */

#include <gtest/gtest.h>

#include "assoc/biased_cache.hh"

namespace ccm
{
namespace
{

/** 2 sets x 2 ways x 64B. */
CacheGeometry
geom2w()
{
    return CacheGeometry(256, 2, 64);
}

ByteAddr
mkAddr(const CacheGeometry &g, std::size_t set, Addr t)
{
    return g.recompose(Tag{t}, SetIndex{set}).asByte();
}

TEST(Biased, HitMissBasics)
{
    BiasedAssocCache c(geom2w(), true);
    EXPECT_FALSE(c.access(ByteAddr{0x0}, false).hit);
    EXPECT_TRUE(c.access(ByteAddr{0x0}, false).hit);
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
    EXPECT_NEAR(c.missRate(), 0.5, 1e-12);
}

TEST(Biased, ConflictClassificationFollowsMct)
{
    CacheGeometry g = geom2w();
    BiasedAssocCache c(g, true);
    ByteAddr a = mkAddr(g, 0, 1), b = mkAddr(g, 0, 2),
             d = mkAddr(g, 0, 3);
    c.access(a, false);
    c.access(b, false);
    BiasedAccess res = c.access(d, false);   // evicts a (LRU)
    EXPECT_FALSE(res.wasConflict);
    ASSERT_TRUE(res.evictedValid);
    EXPECT_EQ(res.evictedLineAddr, g.lineOf(a));
    // a's re-miss matches the recorded eviction: conflict.
    res = c.access(a, false);
    EXPECT_TRUE(res.wasConflict);
}

TEST(Biased, BiasEvictsCapacityLineOverLruConflictLine)
{
    CacheGeometry g = geom2w();
    BiasedAssocCache c(g, true);
    ByteAddr a = mkAddr(g, 0, 1), b = mkAddr(g, 0, 2),
             d = mkAddr(g, 0, 3);

    // Get a resident WITH its conflict bit: fill, evict, refill.
    c.access(a, false);
    c.access(b, false);
    c.access(d, false);      // evicts a
    c.access(a, false);      // conflict: a back with bit set,
                             // evicting b (LRU); set = {d, a}
    // Touch a so d is LRU... actually make a the LRU to force the
    // interesting case: touch d.
    c.access(d, false);      // hit; a is now LRU but has the bit
    BiasedAccess res = c.access(mkAddr(g, 0, 4), false);
    ASSERT_TRUE(res.evictedValid);
    // Plain LRU would evict a; the bias protects it and evicts d.
    EXPECT_EQ(res.evictedLineAddr, g.lineOf(d));
    EXPECT_TRUE(res.biasApplied);
    EXPECT_EQ(c.biasOverrides(), 1u);
    EXPECT_TRUE(c.access(a, false).hit);
}

TEST(Biased, UnbiasedBaselineUsesPlainLru)
{
    CacheGeometry g = geom2w();
    BiasedAssocCache c(g, false);
    ByteAddr a = mkAddr(g, 0, 1), b = mkAddr(g, 0, 2),
             d = mkAddr(g, 0, 3);
    c.access(a, false);
    c.access(b, false);
    c.access(d, false);
    c.access(a, false);
    c.access(d, false);
    BiasedAccess res = c.access(mkAddr(g, 0, 4), false);
    ASSERT_TRUE(res.evictedValid);
    EXPECT_EQ(res.evictedLineAddr, g.lineOf(a));  // plain LRU
    EXPECT_EQ(c.biasOverrides(), 0u);
}

TEST(Biased, AllProtectedFallsBackToLru)
{
    CacheGeometry g = geom2w();
    BiasedAssocCache c(g, true);
    ByteAddr a = mkAddr(g, 0, 1), b = mkAddr(g, 0, 2);
    // Make both residents conflict-marked: ping them in.
    c.access(a, false);
    c.access(b, false);
    c.access(mkAddr(g, 0, 3), false);    // evict a
    c.access(a, false);                  // conflict; bit set
    c.access(b, false);                  // hit or conflict refill
    // Force b to also be conflict-marked.
    c.access(mkAddr(g, 0, 5), false);
    c.access(b, false);
    // Now a miss must still find a victim (plain LRU among all).
    BiasedAccess res = c.access(mkAddr(g, 0, 6), false);
    EXPECT_TRUE(res.evictedValid);
}

TEST(Biased, StreamingThroughConflictSetIsCheapWithBias)
{
    // A protected hot pair + a stream: with bias, stream lines evict
    // each other, not the pair.
    CacheGeometry g = geom2w();
    BiasedAssocCache c(g, true);
    ByteAddr a = mkAddr(g, 0, 1), b = mkAddr(g, 0, 2);
    c.access(a, false);
    c.access(b, false);
    c.access(mkAddr(g, 0, 9), false);   // evict a
    c.access(a, false);                 // a back, conflict bit
    // Stream 10 single-use lines through the set.
    for (Addr t = 20; t < 30; ++t)
        c.access(mkAddr(g, 0, t), false);
    // a survived the stream.
    EXPECT_TRUE(c.access(a, false).hit);
}

TEST(Biased, ClearResets)
{
    BiasedAssocCache c(geom2w(), true);
    c.access(ByteAddr{0x0}, false);
    c.clear();
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_FALSE(c.access(ByteAddr{0x0}, false).hit);
}

} // namespace
} // namespace ccm
