/**
 * @file
 * Tests for the statistical sampling engine (src/sample): the SHARDS
 * miss-ratio-curve profiler, the representative-interval selector,
 * the geometry recommendation, the top-level analysis entry point,
 * and the kind:"sample" observability document.
 *
 * The load-bearing properties:
 *  - rate 1.0 is *exact*: the profiler's per-capacity miss counts
 *    must equal a brute-force FaLru simulation at each capacity;
 *  - everything is deterministic for a fixed (records, config);
 *  - k == #windows interval replay reconstructs the whole-trace
 *    classify counters exactly (every window replayed, weights tile);
 *  - the degenerate-footprint guard re-runs tiny-footprint traces at
 *    a boosted rate instead of shipping a vacuous curve.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cache/fa_lru.hh"
#include "obs/sink.hh"
#include "sample/engine.hh"
#include "sample/intervals.hh"
#include "sample/mrc.hh"
#include "sample/recommend.hh"
#include "sim/sharded.hh"
#include "trace/vector_trace.hh"
#include "workloads/registry.hh"

namespace
{

using namespace ccm;
using namespace ccm::sample;

std::vector<MemRecord>
captureRecords(const std::string &name, std::size_t refs)
{
    auto wl = makeWorkload(name, refs, 42);
    EXPECT_NE(wl, nullptr) << name;
    return VectorTrace::capture(*wl).records();
}

/** Brute-force misses of a fully-associative LRU of @p lines. */
Count
faLruMisses(const std::vector<MemRecord> &recs, std::size_t lines)
{
    const CacheGeometry geom(64, 1, 64);
    FaLru fa(lines);
    Count misses = 0;
    for (const MemRecord &r : recs) {
        if (!r.isMem())
            continue;
        const LineAddr line = geom.lineOf(r.dataAddr());
        if (!fa.touchOrInsert(line))
            ++misses;
    }
    return misses;
}

TEST(SampleMrc, RateOneMatchesBruteForcePerCapacity)
{
    const auto recs = captureRecords("tomcatv", 50'000);

    MrcConfig cfg;
    cfg.rate = 1.0;
    auto mrc = buildMrc(recs.data(), recs.size(), cfg);
    ASSERT_TRUE(mrc.ok()) << mrc.status().toString();

    for (const MrcPoint &p : mrc.value().points) {
        SCOPED_TRACE(p.capacityBytes);
        EXPECT_EQ(p.bankLines, p.capacityLines); // no scaling at 1.0
        EXPECT_EQ(p.sampledMisses,
                  faLruMisses(recs, p.capacityLines));
        EXPECT_NEAR(p.missRatio,
                    double(p.sampledMisses) /
                        double(mrc.value().totalRefs),
                    1e-12);
    }
}

TEST(SampleMrc, CurveIsMonotoneNonIncreasing)
{
    const auto recs = captureRecords("gcc", 80'000);
    MrcConfig cfg;
    cfg.rate = 0.05;
    cfg.minSampledLines = 0; // observe the raw 5% pass
    auto mrc = buildMrc(recs.data(), recs.size(), cfg);
    ASSERT_TRUE(mrc.ok());
    const auto &pts = mrc.value().points;
    for (std::size_t i = 1; i < pts.size(); ++i)
        EXPECT_LE(pts[i].missRatio, pts[i - 1].missRatio + 1e-12);
}

TEST(SampleMrc, DeterministicAcrossRuns)
{
    const auto recs = captureRecords("perl", 60'000);
    MrcConfig cfg;
    cfg.rate = 0.02;
    cfg.windowRefs = 5'000;
    auto a = buildMrc(recs.data(), recs.size(), cfg);
    auto b = buildMrc(recs.data(), recs.size(), cfg);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value().sampledRefs, b.value().sampledRefs);
    EXPECT_EQ(a.value().linesSampled, b.value().linesSampled);
    ASSERT_EQ(a.value().points.size(), b.value().points.size());
    for (std::size_t i = 0; i < a.value().points.size(); ++i) {
        EXPECT_EQ(a.value().points[i].sampledMisses,
                  b.value().points[i].sampledMisses);
        EXPECT_EQ(a.value().points[i].missRatio,
                  b.value().points[i].missRatio);
    }
    ASSERT_EQ(a.value().windows.size(), b.value().windows.size());
    for (std::size_t w = 0; w < a.value().windows.size(); ++w)
        EXPECT_EQ(a.value().windows[w].sampledMisses,
                  b.value().windows[w].sampledMisses);
}

TEST(SampleMrc, SeedSelectsADifferentSampleSet)
{
    const auto recs = captureRecords("vortex", 60'000);
    MrcConfig cfg;
    cfg.rate = 0.05;
    cfg.minSampledLines = 0;
    auto a = buildMrc(recs.data(), recs.size(), cfg);
    cfg.seed = 1234;
    auto b = buildMrc(recs.data(), recs.size(), cfg);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    // Different seeds sample different line sets; identical counts
    // for every point would mean the seed is ignored.
    EXPECT_NE(a.value().sampledRefs, b.value().sampledRefs);
}

TEST(SampleMrc, FixedSizeVariantHalvesAndBoundsTracking)
{
    const auto recs = captureRecords("gcc", 200'000);
    MrcConfig cfg;
    cfg.rate = 1.0; // start exact so halving must engage
    cfg.variant = ShardsVariant::FixedSize;
    cfg.maxSampledLines = 64;
    cfg.minSampledLines = 0;
    auto mrc = buildMrc(recs.data(), recs.size(), cfg);
    ASSERT_TRUE(mrc.ok());
    EXPECT_GT(mrc.value().thresholdHalvings, 0u);
    EXPECT_LT(mrc.value().finalRate, 1.0);
    // Each halving exactly halves the admission threshold.
    EXPECT_NEAR(mrc.value().finalRate,
                mrc.value().configuredRate /
                    std::pow(2.0, mrc.value().thresholdHalvings),
                1e-9);
    // Weighted mass still estimates the full reference count.
    EXPECT_GT(mrc.value().weightedRefs, 0.0);
}

TEST(SampleMrc, RateCorrectionPinsTotalMass)
{
    const auto recs = captureRecords("swim", 100'000);
    MrcConfig cfg;
    cfg.rate = 0.02;
    cfg.minSampledLines = 0;
    auto corrected = buildMrc(recs.data(), recs.size(), cfg);
    cfg.rateCorrection = false;
    auto raw = buildMrc(recs.data(), recs.size(), cfg);
    ASSERT_TRUE(corrected.ok());
    ASSERT_TRUE(raw.ok());
    // Same sample set either way; only the estimate mapping differs.
    EXPECT_EQ(corrected.value().sampledRefs, raw.value().sampledRefs);
    EXPECT_TRUE(corrected.value().rateCorrected);
    EXPECT_FALSE(raw.value().rateCorrected);
}

TEST(SampleMrc, MinLinesGuardBoostsTinyFootprints)
{
    // A synthetic loop over a handful of lines: at 1% the sample
    // would hold almost nothing, so the guard must re-run boosted.
    std::vector<MemRecord> recs;
    MemRecord r;
    r.type = RecordType::Load;
    for (std::size_t i = 0; i < 200'000; ++i) {
        r.pc = 64 * (i % 7);
        r.addr = 64 * (i % 100); // 100-line footprint
        recs.push_back(r);
    }

    MrcConfig cfg;
    cfg.rate = 0.01;
    auto mrc = buildMrc(recs.data(), recs.size(), cfg);
    ASSERT_TRUE(mrc.ok());
    EXPECT_TRUE(mrc.value().minLinesBoost);
    EXPECT_GT(mrc.value().finalRate, cfg.rate);
    EXPECT_LE(mrc.value().finalRate,
              std::max(cfg.rate, cfg.maxBoostedRate) + 1e-12);

    // With the guard off the same pass ships the vacuous sample.
    cfg.minSampledLines = 0;
    auto raw = buildMrc(recs.data(), recs.size(), cfg);
    ASSERT_TRUE(raw.ok());
    EXPECT_FALSE(raw.value().minLinesBoost);
    EXPECT_LT(raw.value().linesSampled, 16u);
}

TEST(SampleMrc, WindowsTileTheWholeTrace)
{
    const auto recs = captureRecords("li", 64'000);
    MrcConfig cfg;
    cfg.rate = 0.05;
    cfg.windowRefs = 10'000;
    auto mrc = buildMrc(recs.data(), recs.size(), cfg);
    ASSERT_TRUE(mrc.ok());
    const auto &ws = mrc.value().windows;
    ASSERT_FALSE(ws.empty());
    Count covered = 0;
    Count expect_first = 1;
    for (const WindowSignature &w : ws) {
        EXPECT_EQ(w.firstRef, expect_first);
        EXPECT_GE(w.lastRef, w.firstRef);
        covered += w.lastRef - w.firstRef + 1;
        expect_first = w.lastRef + 1;
        EXPECT_LE(w.sampledUniqueLines, w.sampledRefs);
        EXPECT_LE(w.sampledNewLines, w.sampledUniqueLines);
    }
    EXPECT_EQ(covered, mrc.value().totalRefs);
}

TEST(SampleIntervals, AllWindowsReplayedIsExact)
{
    const auto recs = captureRecords("mgrid", 60'000);
    MrcConfig mcfg;
    mcfg.rate = 0.05;
    mcfg.windowRefs = 10'000;
    auto mrc = buildMrc(recs.data(), recs.size(), mcfg);
    ASSERT_TRUE(mrc.ok());

    ShardedClassifyConfig ccfg;
    IntervalConfig icfg;
    icfg.k = mrc.value().windows.size(); // replay everything
    icfg.warmupRefs = 0;
    auto res = reconstructFromIntervals(recs.data(), recs.size(),
                                        mrc.value(), ccfg, icfg);
    ASSERT_TRUE(res.ok()) << res.status().toString();

    const ShardedClassifyResult exact =
        runShardedClassify(recs.data(), recs.size(), ccfg);

    // Every window is its own cluster with weight refs/total, so the
    // reconstruction is the exact whole-trace count, stat by stat.
    double wsum = 0.0;
    for (const auto &rep : res.value().reps)
        wsum += rep.weight;
    EXPECT_NEAR(wsum, 1.0, 1e-9);
    const auto *misses = res.value().find("l1_misses");
    ASSERT_NE(misses, nullptr);
    EXPECT_NEAR(misses->predicted, double(exact.mem.l1Misses),
                double(exact.mem.l1Misses) * 1e-9 + 1e-6);
    const auto *accesses = res.value().find("accesses");
    ASSERT_NE(accesses, nullptr);
    EXPECT_NEAR(accesses->predicted, double(exact.mem.accesses),
                1e-6);
}

TEST(SampleIntervals, DeterministicSelection)
{
    const auto recs = captureRecords("applu", 120'000);
    MrcConfig mcfg;
    mcfg.rate = 0.05;
    mcfg.windowRefs = 10'000;
    auto mrc = buildMrc(recs.data(), recs.size(), mcfg);
    ASSERT_TRUE(mrc.ok());

    ShardedClassifyConfig ccfg;
    IntervalConfig icfg;
    icfg.k = 3;
    auto a = reconstructFromIntervals(recs.data(), recs.size(),
                                      mrc.value(), ccfg, icfg);
    auto b = reconstructFromIntervals(recs.data(), recs.size(),
                                      mrc.value(), ccfg, icfg);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a.value().reps.size(), b.value().reps.size());
    for (std::size_t i = 0; i < a.value().reps.size(); ++i) {
        EXPECT_EQ(a.value().reps[i].windowIndex,
                  b.value().reps[i].windowIndex);
        EXPECT_EQ(a.value().reps[i].weight,
                  b.value().reps[i].weight);
    }
    for (std::size_t i = 0; i < a.value().stats.size(); ++i)
        EXPECT_EQ(a.value().stats[i].predicted,
                  b.value().stats[i].predicted);
}

TEST(SampleIntervals, ColdStartWindowIsPinnedAsRepresentative)
{
    const auto recs = captureRecords("turb3d", 120'000);
    MrcConfig mcfg;
    mcfg.rate = 0.05;
    mcfg.windowRefs = 10'000;
    auto mrc = buildMrc(recs.data(), recs.size(), mcfg);
    ASSERT_TRUE(mrc.ok());

    ShardedClassifyConfig ccfg;
    IntervalConfig icfg;
    icfg.k = 4;
    auto res = reconstructFromIntervals(recs.data(), recs.size(),
                                        mrc.value(), ccfg, icfg);
    ASSERT_TRUE(res.ok());
    // Window 0 carries the cold-start first-touch misses no steady
    // phase resembles; it must survive as its own singleton cluster.
    bool window0 = false;
    for (const auto &rep : res.value().reps) {
        if (rep.windowIndex == 0) {
            window0 = true;
            EXPECT_EQ(rep.clusterSize, 1u);
        }
    }
    EXPECT_TRUE(window0);
}

TEST(SampleRecommend, SteeperCurvesGetDeeperBuffers)
{
    MrcResult mrc;
    auto point = [&](std::size_t kb, double ratio) {
        MrcPoint p;
        p.capacityBytes = kb * 1024;
        p.capacityLines = p.capacityBytes / 64;
        p.missRatio = ratio;
        mrc.points.push_back(p);
    };
    // Flat curve: shallow buffer, no assist.
    point(16, 0.10);
    point(32, 0.099);
    point(64, 0.098);
    auto flat = recommendGeometry(mrc, 16 * 1024);
    EXPECT_EQ(flat.bufEntries, 4u);
    EXPECT_FALSE(flat.useAssist());

    // Steep knee right past 16KB: deep buffer, victim partition.
    mrc.points.clear();
    point(16, 0.30);
    point(32, 0.05);
    point(64, 0.04);
    auto steep = recommendGeometry(mrc, 16 * 1024);
    EXPECT_EQ(steep.bufEntries, 32u);
    EXPECT_TRUE(steep.victimConflicts);
    EXPECT_TRUE(steep.excludeCapacity); // gain4x 0.26 > 0.05
    EXPECT_FALSE(steep.prefetchCapacity);

    // Still missing hard at the top of the grid: prefetch indicated.
    mrc.points.clear();
    point(16, 0.5);
    point(32, 0.5);
    point(64, 0.45);
    auto stream = recommendGeometry(mrc, 16 * 1024);
    EXPECT_TRUE(stream.prefetchCapacity);
    EXPECT_FALSE(stream.rationale.empty());
}

TEST(SampleEngine, EndToEndWithExactComparison)
{
    const auto recs = captureRecords("compress", 100'000);
    SampleRunConfig cfg;
    cfg.mrc.rate = 0.05;
    cfg.intervals = 4;
    cfg.compareExact = true;
    auto rep = runSampleAnalysis(recs.data(), recs.size(), cfg);
    ASSERT_TRUE(rep.ok()) << rep.status().toString();

    EXPECT_TRUE(rep.value().hasIntervals);
    EXPECT_TRUE(rep.value().hasExact);
    EXPECT_GE(rep.value().mrcMaxError, rep.value().mrcMae);
    EXPECT_GT(rep.value().wallSecondsSampled, 0.0);
    EXPECT_GT(rep.value().wallSecondsExact, 0.0);
    // The exact reference really is exact.
    EXPECT_EQ(rep.value().exactMrc.finalRate, 1.0);

    // The document round-trips through the validator and carries
    // the error bars the acceptance criteria require.
    obs::JsonValue doc = obs::sampleDocument("compress", rep.value());
    Status valid = obs::validateStatsDoc(doc);
    EXPECT_TRUE(valid.isOk()) << valid.toString();
    const obs::JsonValue *stats =
        doc.at("intervals").get("stats");
    ASSERT_NE(stats, nullptr);
    ASSERT_FALSE(stats->elements().empty());
    for (const auto &s : stats->elements()) {
        EXPECT_NE(s.get("error_bar"), nullptr);
        EXPECT_NE(s.get("predicted"), nullptr);
    }
    const obs::JsonValue *sampling = doc.get("sampling");
    ASSERT_NE(sampling, nullptr);
    EXPECT_NE(sampling->get("min_lines_boost"), nullptr);
}

TEST(SampleEngine, RejectsBadConfigs)
{
    const auto recs = captureRecords("go", 10'000);
    SampleRunConfig cfg;
    cfg.mrc.rate = 0.0;
    EXPECT_FALSE(runSampleAnalysis(recs.data(), recs.size(), cfg).ok());
    cfg.mrc.rate = 1.5;
    EXPECT_FALSE(runSampleAnalysis(recs.data(), recs.size(), cfg).ok());
    cfg.mrc.rate = 0.5;
    cfg.mrc.capacitiesBytes = {32 * 1024, 16 * 1024}; // not ascending
    EXPECT_FALSE(runSampleAnalysis(recs.data(), recs.size(), cfg).ok());
}

} // namespace
