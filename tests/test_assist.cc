/**
 * @file
 * Unit tests for the cache-assist buffer: lookup, LRU replacement,
 * per-source accounting, wasted-prefetch tracking, and entry
 * transitions.
 */

#include <gtest/gtest.h>

#include "assist/buffer.hh"

namespace ccm
{
namespace
{

TEST(AssistBuffer, InsertAndFind)
{
    AssistBuffer b(4);
    EXPECT_EQ(b.find(LineAddr{0x40}), nullptr);
    b.insert(LineAddr{0x40}, BufSource::Victim, false, false, 0);
    BufEntry *e = b.find(LineAddr{0x40});
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->lineAddr, LineAddr{0x40});
    EXPECT_EQ(e->source, BufSource::Victim);
    EXPECT_EQ(b.occupancy(), 1u);
}

TEST(AssistBuffer, LruEvictionOrder)
{
    AssistBuffer b(2);
    b.insert(LineAddr{0x40}, BufSource::Victim, false, false, 0);
    b.insert(LineAddr{0x80}, BufSource::Victim, false, false, 0);
    // Touch 0x40 so 0x80 becomes LRU.
    b.recordHit(*b.find(LineAddr{0x40}));
    BufEvicted ev = b.insert(LineAddr{0xC0}, BufSource::Victim, false, false, 0);
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.lineAddr, LineAddr{0x80});
    EXPECT_NE(b.find(LineAddr{0x40}), nullptr);
}

TEST(AssistBuffer, InvalidSlotsUsedFirst)
{
    AssistBuffer b(3);
    b.insert(LineAddr{0x40}, BufSource::Victim, false, false, 0);
    EXPECT_FALSE(b.insert(LineAddr{0x80}, BufSource::Victim, false, false, 0)
                     .valid);
    EXPECT_FALSE(b.insert(LineAddr{0xC0}, BufSource::Victim, false, false, 0)
                     .valid);
    EXPECT_TRUE(b.insert(LineAddr{0x100}, BufSource::Victim, false, false, 0)
                    .valid);
}

TEST(AssistBuffer, EraseFreesSlot)
{
    AssistBuffer b(1);
    b.insert(LineAddr{0x40}, BufSource::Bypass, false, true, 0);
    EXPECT_TRUE(b.erase(LineAddr{0x40}));
    EXPECT_FALSE(b.erase(LineAddr{0x40}));
    EXPECT_EQ(b.occupancy(), 0u);
    EXPECT_FALSE(b.insert(LineAddr{0x80}, BufSource::Victim, false, false, 0)
                     .valid);
}

TEST(AssistBuffer, EvictionReportsDirtyAndSource)
{
    AssistBuffer b(1);
    b.insert(LineAddr{0x40}, BufSource::Bypass, true, true, 0);
    BufEvicted ev = b.insert(LineAddr{0x80}, BufSource::Victim, false, false, 0);
    ASSERT_TRUE(ev.valid);
    EXPECT_TRUE(ev.dirty);
    EXPECT_EQ(ev.source, BufSource::Bypass);
    EXPECT_FALSE(ev.wasUsed);
}

TEST(AssistBuffer, HitAccountingPerSource)
{
    AssistBuffer b(4);
    b.insert(LineAddr{0x40}, BufSource::Victim, false, false, 0);
    b.insert(LineAddr{0x80}, BufSource::Prefetch, false, false, 0);
    b.insert(LineAddr{0xC0}, BufSource::Bypass, false, false, 0);
    b.recordHit(*b.find(LineAddr{0x40}));
    b.recordHit(*b.find(LineAddr{0x40}));
    b.recordHit(*b.find(LineAddr{0x80}));
    EXPECT_EQ(b.hits(BufSource::Victim), 2u);
    EXPECT_EQ(b.hits(BufSource::Prefetch), 1u);
    EXPECT_EQ(b.hits(BufSource::Bypass), 0u);
    EXPECT_EQ(b.totalHits(), 3u);
}

TEST(AssistBuffer, InsertionAccountingPerSource)
{
    AssistBuffer b(8);
    b.insert(LineAddr{0x40}, BufSource::Victim, false, false, 0);
    b.insert(LineAddr{0x80}, BufSource::Victim, false, false, 0);
    b.insert(LineAddr{0xC0}, BufSource::Prefetch, false, false, 0);
    EXPECT_EQ(b.insertions(BufSource::Victim), 2u);
    EXPECT_EQ(b.insertions(BufSource::Prefetch), 1u);
    EXPECT_EQ(b.fills(), 3u);
}

TEST(AssistBuffer, WastedPrefetchCountedOnUnusedEviction)
{
    AssistBuffer b(1);
    b.insert(LineAddr{0x40}, BufSource::Prefetch, false, false, 0);
    b.insert(LineAddr{0x80}, BufSource::Victim, false, false, 0);  // evicts
    EXPECT_EQ(b.wastedPrefetches(), 1u);
}

TEST(AssistBuffer, UsedPrefetchNotWasted)
{
    AssistBuffer b(1);
    b.insert(LineAddr{0x40}, BufSource::Prefetch, false, false, 0);
    b.recordHit(*b.find(LineAddr{0x40}));
    b.insert(LineAddr{0x80}, BufSource::Victim, false, false, 0);
    EXPECT_EQ(b.wastedPrefetches(), 0u);
}

TEST(AssistBuffer, EvictedVictimNotCountedAsWastedPrefetch)
{
    AssistBuffer b(1);
    b.insert(LineAddr{0x40}, BufSource::Victim, false, false, 0);
    b.insert(LineAddr{0x80}, BufSource::Victim, false, false, 0);
    EXPECT_EQ(b.wastedPrefetches(), 0u);
}

TEST(AssistBuffer, SourceTransitionKeepsEntry)
{
    // The AMB re-marks a prefetched line as an exclusion line on a
    // hit (§5.5); the entry object supports in-place transition.
    AssistBuffer b(2);
    b.insert(LineAddr{0x40}, BufSource::Prefetch, false, false, 0);
    BufEntry *e = b.find(LineAddr{0x40});
    b.recordHit(*e);
    e->source = BufSource::Bypass;
    EXPECT_EQ(b.find(LineAddr{0x40})->source, BufSource::Bypass);
    // Its later eviction is not a wasted prefetch.
    b.insert(LineAddr{0x80}, BufSource::Victim, false, false, 0);
    b.insert(LineAddr{0xC0}, BufSource::Victim, false, false, 0);
    EXPECT_EQ(b.wastedPrefetches(), 0u);
}

TEST(AssistBuffer, ReadyCycleStored)
{
    AssistBuffer b(2);
    b.insert(LineAddr{0x40}, BufSource::Prefetch, false, false, 123);
    EXPECT_EQ(b.find(LineAddr{0x40})->ready, 123u);
}

TEST(AssistBuffer, ConflictBitStored)
{
    AssistBuffer b(2);
    b.insert(LineAddr{0x40}, BufSource::Victim, true, false, 0);
    EXPECT_TRUE(b.find(LineAddr{0x40})->conflictBit);
}

TEST(AssistBuffer, FlushInvalidatesButKeepsStats)
{
    AssistBuffer b(2);
    b.insert(LineAddr{0x40}, BufSource::Victim, false, false, 0);
    b.recordHit(*b.find(LineAddr{0x40}));
    b.flush();
    EXPECT_EQ(b.occupancy(), 0u);
    EXPECT_EQ(b.find(LineAddr{0x40}), nullptr);
    EXPECT_EQ(b.totalHits(), 1u);
    b.clearStats();
    EXPECT_EQ(b.totalHits(), 0u);
    EXPECT_EQ(b.fills(), 0u);
}

TEST(AssistBuffer, FifoIgnoresHitRecency)
{
    AssistBuffer b(2, BufRepl::Fifo);
    b.insert(LineAddr{0x40}, BufSource::Victim, false, false, 0);
    b.insert(LineAddr{0x80}, BufSource::Victim, false, false, 0);
    // Touch the older entry: FIFO still evicts it first.
    b.recordHit(*b.find(LineAddr{0x40}));
    BufEvicted ev = b.insert(LineAddr{0xC0}, BufSource::Victim, false, false, 0);
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.lineAddr, LineAddr{0x40});
}

TEST(AssistBuffer, LruRespectsHitRecency)
{
    AssistBuffer b(2, BufRepl::Lru);
    b.insert(LineAddr{0x40}, BufSource::Victim, false, false, 0);
    b.insert(LineAddr{0x80}, BufSource::Victim, false, false, 0);
    b.recordHit(*b.find(LineAddr{0x40}));
    BufEvicted ev = b.insert(LineAddr{0xC0}, BufSource::Victim, false, false, 0);
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.lineAddr, LineAddr{0x80});
}

TEST(AssistBufferDeath, ZeroEntriesRejected)
{
    EXPECT_DEATH(AssistBuffer{0}, "at least one");
}

TEST(AssistBufferDeath, DoubleInsertPanics)
{
    AssistBuffer b(2);
    b.insert(LineAddr{0x40}, BufSource::Victim, false, false, 0);
    EXPECT_DEATH(b.insert(LineAddr{0x40}, BufSource::Victim, false, false, 0),
                 "resident");
}

/** Paper sizes: 8 and 16 entries behave identically modulo capacity. */
class AssistBufferSize : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(AssistBufferSize, HoldsExactlyCapacity)
{
    unsigned n = GetParam();
    AssistBuffer b(n);
    for (unsigned i = 0; i < n; ++i)
        EXPECT_FALSE(
            b.insert(LineAddr{0x1000 + i * 64}, BufSource::Victim, false,
                     false, 0)
                .valid);
    EXPECT_EQ(b.occupancy(), n);
    EXPECT_TRUE(
        b.insert(LineAddr{0x1000 + n * 64}, BufSource::Victim, false, false, 0)
            .valid);
    EXPECT_EQ(b.occupancy(), n);
}

INSTANTIATE_TEST_SUITE_P(PaperSizes, AssistBufferSize,
                         ::testing::Values(1, 8, 16));

} // namespace
} // namespace ccm
