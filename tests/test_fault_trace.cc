/**
 * @file
 * The corrupted-trace matrix: every on-disk defect class against the
 * tolerant reader, the probe, and the fault-injection decorator.
 *
 * File damage (bad magic, partial tails, mid-file garbage) is staged
 * by writing raw bytes; record-level dirt (bit flips, drops,
 * duplicates, truncation) comes from FaultInjectingSource.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "trace/fault_trace.hh"
#include "trace/file_trace.hh"
#include "trace/vector_trace.hh"

namespace ccm
{
namespace
{

class CorruptTraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        path = ::testing::TempDir() + "ccm_fault_" + info->name() +
               ".bin";
    }

    void TearDown() override { std::remove(path.c_str()); }

    void
    writeBytes(const std::vector<std::uint8_t> &bytes)
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        if (!bytes.empty()) {
            ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
                      bytes.size());
        }
        std::fclose(f);
    }

    static std::vector<std::uint8_t>
    header(std::uint32_t version = 1)
    {
        std::vector<std::uint8_t> h = {'C', 'C', 'M', 'T',
                                       'R', 'A', 'C', 'E'};
        for (int i = 0; i < 4; ++i)
            h.push_back((version >> (8 * i)) & 0xff);
        for (int i = 0; i < 4; ++i)
            h.push_back(0);
        return h;
    }

    /**
     * One packed record with every pc/addr byte nonzero, so garbage
     * resync can never find a false record boundary inside it.
     */
    static std::vector<std::uint8_t>
    record(std::uint8_t fill, std::uint8_t type = 1)
    {
        std::vector<std::uint8_t> r(24, 0);
        for (int i = 0; i < 16; ++i)
            r[i] = fill;
        r[16] = type;
        r[17] = 0;
        return r;
    }

    static void
    append(std::vector<std::uint8_t> &to,
           const std::vector<std::uint8_t> &bytes)
    {
        to.insert(to.end(), bytes.begin(), bytes.end());
    }

    std::string path;
};

TEST_F(CorruptTraceTest, ZeroLengthFile)
{
    writeBytes({});
    EXPECT_EQ(probeTraceFile(path), TraceDefect::ZeroLength);

    auto rd = TraceFileReader::open(path);
    ASSERT_FALSE(rd.ok());
    EXPECT_EQ(rd.status().code(), ErrorCode::CorruptTrace);
    EXPECT_NE(rd.status().message().find("empty trace file"),
              std::string::npos);
}

TEST_F(CorruptTraceTest, TruncatedHeader)
{
    writeBytes({'C', 'C', 'M', 'T', 'R', 'A', 'C', 'E'});
    EXPECT_EQ(probeTraceFile(path), TraceDefect::TruncatedHeader);

    auto rd = TraceFileReader::open(path);
    ASSERT_FALSE(rd.ok());
    EXPECT_EQ(rd.status().code(), ErrorCode::CorruptTrace);
    EXPECT_NE(rd.status().message().find("truncated trace header"),
              std::string::npos);
}

TEST_F(CorruptTraceTest, BadMagic)
{
    std::vector<std::uint8_t> bytes(16, 'X');
    writeBytes(bytes);
    EXPECT_EQ(probeTraceFile(path), TraceDefect::BadMagic);

    auto rd = TraceFileReader::open(path);
    ASSERT_FALSE(rd.ok());
    EXPECT_EQ(rd.status().code(), ErrorCode::CorruptTrace);
}

TEST_F(CorruptTraceTest, UnsupportedVersion)
{
    writeBytes(header(99));
    EXPECT_EQ(probeTraceFile(path), TraceDefect::BadVersion);

    auto rd = TraceFileReader::open(path);
    ASSERT_FALSE(rd.ok());
    EXPECT_EQ(rd.status().code(), ErrorCode::Unsupported);
}

TEST_F(CorruptTraceTest, MissingFileIsIoError)
{
    auto rd = TraceFileReader::open(path + ".does-not-exist");
    ASSERT_FALSE(rd.ok());
    EXPECT_EQ(rd.status().code(), ErrorCode::IoError);
    EXPECT_EQ(probeTraceFile(path + ".does-not-exist"),
              TraceDefect::IoError);
}

TEST_F(CorruptTraceTest, DirectoryIsIoErrorNotZeroLength)
{
    // fopen("rb") on a directory succeeds on Linux; the first fread
    // then fails with EISDIR. That is an I/O problem, not an empty
    // trace.
    auto rd = TraceFileReader::open(::testing::TempDir());
    ASSERT_FALSE(rd.ok());
    EXPECT_EQ(rd.status().code(), ErrorCode::IoError);
    EXPECT_EQ(probeTraceFile(::testing::TempDir()),
              TraceDefect::IoError);
}

TEST_F(CorruptTraceTest, CleanFileProbesClean)
{
    auto bytes = header();
    append(bytes, record(0x11));
    append(bytes, record(0x22, 2));
    writeBytes(bytes);

    TraceReadStats stats;
    EXPECT_EQ(probeTraceFile(path, &stats), TraceDefect::None);
    EXPECT_TRUE(stats.clean());
    EXPECT_EQ(stats.recordsRead, 2u);
    EXPECT_EQ(stats.resyncEvents, 0u);
    EXPECT_EQ(stats.bytesSkipped, 0u);
    EXPECT_FALSE(stats.truncatedTail);
}

TEST_F(CorruptTraceTest, PartialTailStrictFails)
{
    auto bytes = header();
    append(bytes, record(0x11));
    bytes.resize(bytes.size() - 5); // chop the record
    writeBytes(bytes);

    EXPECT_EQ(probeTraceFile(path), TraceDefect::PartialTail);

    auto rd = TraceFileReader::open(path);
    ASSERT_FALSE(rd.ok());
    EXPECT_EQ(rd.status().code(), ErrorCode::CorruptTrace);
    EXPECT_NE(rd.status().message().find("partial record"),
              std::string::npos);
}

TEST_F(CorruptTraceTest, PartialTailToleratedIsEndOfTrace)
{
    auto bytes = header();
    append(bytes, record(0x11));
    append(bytes, record(0x22));
    bytes.resize(bytes.size() - 7);
    writeBytes(bytes);

    TraceReadOptions opts;
    opts.tolerateTruncatedTail = true;
    opts.quiet = true;
    auto rd = TraceFileReader::open(path, opts);
    ASSERT_TRUE(rd.ok()) << rd.status().toString();
    EXPECT_EQ(rd.value()->size(), 1u);

    const TraceReadStats &stats = rd.value()->readStats();
    EXPECT_TRUE(stats.truncatedTail);
    EXPECT_EQ(stats.firstDefect, TraceDefect::PartialTail);
    EXPECT_EQ(stats.bytesSkipped, 17u);

    MemRecord r;
    ASSERT_TRUE(rd.value()->next(r));
    EXPECT_EQ(r.addr, 0x1111111111111111u);
}

TEST_F(CorruptTraceTest, MidFileGarbageStrictFails)
{
    auto bytes = header();
    append(bytes, record(0x11));
    append(bytes, std::vector<std::uint8_t>(24, 0xFF));
    append(bytes, record(0x22));
    writeBytes(bytes);

    EXPECT_EQ(probeTraceFile(path), TraceDefect::MidFileGarbage);

    auto rd = TraceFileReader::open(path); // budget defaults to 0
    ASSERT_FALSE(rd.ok());
    EXPECT_EQ(rd.status().code(), ErrorCode::CorruptTrace);
    EXPECT_NE(rd.status().message().find("garbage"),
              std::string::npos);
}

TEST_F(CorruptTraceTest, MidFileGarbageResyncsWithinBudget)
{
    auto bytes = header();
    append(bytes, record(0x11));
    append(bytes, std::vector<std::uint8_t>(24, 0xFF));
    append(bytes, record(0x22, 2));
    writeBytes(bytes);

    TraceReadOptions opts;
    opts.corruptionBudget = 1;
    opts.quiet = true;
    auto rd = TraceFileReader::open(path, opts);
    ASSERT_TRUE(rd.ok()) << rd.status().toString();
    EXPECT_EQ(rd.value()->size(), 2u);

    const TraceReadStats &stats = rd.value()->readStats();
    EXPECT_EQ(stats.resyncEvents, 1u);
    EXPECT_EQ(stats.bytesSkipped, 24u);
    EXPECT_EQ(stats.firstDefect, TraceDefect::MidFileGarbage);

    // Resync landed exactly on the next true record.
    MemRecord r;
    ASSERT_TRUE(rd.value()->next(r));
    EXPECT_EQ(r.addr, 0x1111111111111111u);
    ASSERT_TRUE(rd.value()->next(r));
    EXPECT_EQ(r.addr, 0x2222222222222222u);
    EXPECT_TRUE(r.isStore());
}

TEST_F(CorruptTraceTest, CorruptionBudgetIsEnforced)
{
    auto bytes = header();
    append(bytes, record(0x11));
    append(bytes, std::vector<std::uint8_t>(24, 0xFF));
    append(bytes, record(0x22));
    append(bytes, std::vector<std::uint8_t>(24, 0xFF));
    append(bytes, record(0x33));
    writeBytes(bytes);

    TraceReadOptions opts;
    opts.corruptionBudget = 1;
    opts.quiet = true;
    auto rd = TraceFileReader::open(path, opts);
    ASSERT_FALSE(rd.ok());
    EXPECT_NE(rd.status().message().find("budget exhausted"),
              std::string::npos);

    opts.corruptionBudget = 2;
    auto rd2 = TraceFileReader::open(path, opts);
    ASSERT_TRUE(rd2.ok()) << rd2.status().toString();
    EXPECT_EQ(rd2.value()->size(), 3u);
    EXPECT_EQ(rd2.value()->readStats().resyncEvents, 2u);
}

TEST_F(CorruptTraceTest, RepairProducesCleanTrace)
{
    auto bytes = header();
    append(bytes, record(0x11));
    append(bytes, std::vector<std::uint8_t>(24, 0xFF));
    append(bytes, record(0x22));
    bytes.resize(bytes.size() - 3); // and a truncated tail
    writeBytes(bytes);

    TraceReadOptions opts;
    opts.corruptionBudget = ~std::size_t{0};
    opts.tolerateTruncatedTail = true;
    opts.quiet = true;
    std::vector<MemRecord> records;
    TraceReadStats stats;
    ASSERT_TRUE(loadTraceFile(path, opts, records, stats).isOk());
    EXPECT_EQ(records.size(), 1u);

    std::string repaired = path + ".repaired";
    {
        auto w = TraceFileWriter::create(repaired);
        ASSERT_TRUE(w.ok());
        for (const auto &r : records)
            ASSERT_TRUE(w.value()->writeChecked(r).isOk());
        ASSERT_TRUE(w.value()->close().isOk());
    }
    EXPECT_EQ(probeTraceFile(repaired), TraceDefect::None);
    std::remove(repaired.c_str());
}

TEST_F(CorruptTraceTest, DefectNamesAreStable)
{
    EXPECT_STREQ(traceDefectName(TraceDefect::None), "none");
    EXPECT_STREQ(traceDefectName(TraceDefect::IoError), "io-error");
    EXPECT_STREQ(traceDefectName(TraceDefect::ZeroLength),
                 "zero-length");
    EXPECT_STREQ(traceDefectName(TraceDefect::TruncatedHeader),
                 "truncated-header");
    EXPECT_STREQ(traceDefectName(TraceDefect::BadMagic), "bad-magic");
    EXPECT_STREQ(traceDefectName(TraceDefect::BadVersion),
                 "bad-version");
    EXPECT_STREQ(traceDefectName(TraceDefect::PartialTail),
                 "partial-tail");
    EXPECT_STREQ(traceDefectName(TraceDefect::MidFileGarbage),
                 "mid-file-garbage");
}

// ---- FaultInjectingSource -----------------------------------------

VectorTrace
cleanTrace(std::size_t n)
{
    VectorTrace t;
    t.setName("clean");
    for (std::size_t i = 0; i < n; ++i)
        t.pushLoad(0x10000 + i * 64);
    return t;
}

std::vector<MemRecord>
drain(TraceSource &src)
{
    std::vector<MemRecord> out;
    MemRecord r;
    while (src.next(r))
        out.push_back(r);
    return out;
}

TEST(FaultInjectingSource, NoFaultsIsPassthrough)
{
    VectorTrace t = cleanTrace(50);
    FaultInjectingSource f(t, FaultPlan{});
    auto dirty = drain(f);
    ASSERT_EQ(dirty.size(), 50u);
    for (std::size_t i = 0; i < dirty.size(); ++i)
        EXPECT_EQ(dirty[i].addr, 0x10000u + i * 64);
    EXPECT_EQ(f.stats().bitFlips, 0u);
    EXPECT_EQ(f.stats().drops, 0u);
    EXPECT_EQ(f.name(), "clean+faults");
}

TEST(FaultInjectingSource, DropRateOneDropsEverything)
{
    VectorTrace t = cleanTrace(30);
    FaultPlan plan;
    plan.dropRate = 1.0;
    FaultInjectingSource f(t, plan);
    EXPECT_TRUE(drain(f).empty());
    EXPECT_EQ(f.stats().drops, 30u);
}

TEST(FaultInjectingSource, DuplicateRateOneDoublesTheTrace)
{
    VectorTrace t = cleanTrace(10);
    FaultPlan plan;
    plan.duplicateRate = 1.0;
    FaultInjectingSource f(t, plan);
    auto dirty = drain(f);
    ASSERT_EQ(dirty.size(), 20u);
    for (std::size_t i = 0; i < dirty.size(); i += 2)
        EXPECT_EQ(dirty[i].addr, dirty[i + 1].addr);
    EXPECT_EQ(f.stats().duplicates, 10u);
}

TEST(FaultInjectingSource, TruncationEndsTheStreamEarly)
{
    VectorTrace t = cleanTrace(100);
    FaultPlan plan;
    plan.truncateAfter = 25;
    FaultInjectingSource f(t, plan);
    EXPECT_EQ(drain(f).size(), 25u);
    EXPECT_TRUE(f.stats().truncated);

    // Truncation at/after the end is not truncation.
    VectorTrace t2 = cleanTrace(10);
    plan.truncateAfter = 10;
    FaultInjectingSource f2(t2, plan);
    EXPECT_EQ(drain(f2).size(), 10u);
    EXPECT_FALSE(f2.stats().truncated);
}

TEST(FaultInjectingSource, BitFlipsTouchExactlyOneBit)
{
    VectorTrace t = cleanTrace(40);
    FaultPlan plan;
    plan.bitFlipRate = 1.0;
    FaultInjectingSource f(t, plan);
    auto dirty = drain(f);
    ASSERT_EQ(dirty.size(), 40u);
    EXPECT_EQ(f.stats().bitFlips, 40u);
    for (std::size_t i = 0; i < dirty.size(); ++i) {
        Addr cleanAddr = 0x10000 + i * 64;
        Addr cleanPc = t.at(i).pc;
        std::uint64_t diff = (dirty[i].addr ^ cleanAddr) |
                             (dirty[i].pc ^ cleanPc);
        // Exactly one bit across pc|addr differs, types untouched.
        EXPECT_EQ(__builtin_popcountll(dirty[i].addr ^ cleanAddr) +
                      __builtin_popcountll(dirty[i].pc ^ cleanPc),
                  1)
            << "record " << i;
        EXPECT_NE(diff, 0u);
        EXPECT_EQ(dirty[i].type, RecordType::Load);
    }
}

TEST(FaultInjectingSource, DeterministicAcrossReset)
{
    VectorTrace t = cleanTrace(200);
    FaultPlan plan;
    plan.seed = 7;
    plan.bitFlipRate = 0.1;
    plan.dropRate = 0.1;
    plan.duplicateRate = 0.1;
    FaultInjectingSource f(t, plan);

    auto first = drain(f);
    FaultStats firstStats = f.stats();
    f.reset();
    auto second = drain(f);

    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].addr, second[i].addr);
        EXPECT_EQ(first[i].pc, second[i].pc);
    }
    EXPECT_EQ(f.stats().bitFlips, firstStats.bitFlips);
    EXPECT_EQ(f.stats().drops, firstStats.drops);
    EXPECT_EQ(f.stats().duplicates, firstStats.duplicates);

    // Some faults actually fired on a 200-record trace at 10% rates.
    EXPECT_GT(firstStats.bitFlips + firstStats.drops +
                  firstStats.duplicates,
              0u);
}

TEST(FaultInjectingSource, DifferentSeedsDiffer)
{
    VectorTrace t = cleanTrace(200);
    FaultPlan a;
    a.seed = 1;
    a.dropRate = 0.5;
    FaultPlan b = a;
    b.seed = 2;

    FaultInjectingSource fa(t, a);
    auto da = drain(fa);
    t.reset();
    FaultInjectingSource fb(t, b);
    auto db = drain(fb);

    bool differ = da.size() != db.size();
    for (std::size_t i = 0; !differ && i < da.size(); ++i)
        differ = da[i].addr != db[i].addr;
    EXPECT_TRUE(differ);
}

TEST(FaultInjectingSource, InvalidRatesAreFatal)
{
    VectorTrace t = cleanTrace(1);
    FaultPlan plan;
    plan.dropRate = 1.5;
    EXPECT_DEATH(FaultInjectingSource(t, plan), "within");
}

TEST(FaultInjectingSource, DirtyTraceStillSimulatesRoundTrip)
{
    // A dirty trace written to disk and read back strictly is still a
    // structurally valid trace: faults corrupt content, not format.
    VectorTrace t = cleanTrace(100);
    FaultPlan plan;
    plan.seed = 3;
    plan.bitFlipRate = 0.2;
    plan.dropRate = 0.1;
    plan.duplicateRate = 0.1;
    FaultInjectingSource f(t, plan);

    std::string path = ::testing::TempDir() + "ccm_dirty_rt.bin";
    std::size_t n;
    {
        TraceFileWriter w(path);
        n = w.writeAll(f);
    }
    TraceFileReader rd(path);
    EXPECT_EQ(rd.size(), n);
    EXPECT_EQ(probeTraceFile(path), TraceDefect::None);
    std::remove(path.c_str());
}

} // namespace
} // namespace ccm
