/**
 * @file
 * Tests for the experiment driver: the named §5 configurations,
 * speedup math, determinism, and the stats dump format.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <stdexcept>

#include "sim/experiment.hh"
#include "trace/vector_trace.hh"
#include "workloads/registry.hh"

namespace ccm
{
namespace
{

TEST(Configs, BaselineMatchesPaperSection4)
{
    SystemConfig cfg = baselineConfig();
    EXPECT_EQ(cfg.mem.l1Bytes, 16u * 1024);
    EXPECT_EQ(cfg.mem.l1Assoc, 1u);
    EXPECT_EQ(cfg.mem.lineBytes, 64u);
    EXPECT_EQ(cfg.mem.l1Banks, 8u);
    EXPECT_EQ(cfg.mem.l2Bytes, 1024u * 1024);
    EXPECT_EQ(cfg.mem.l2Assoc, 2u);
    EXPECT_EQ(cfg.mem.l2Latency, 20u);
    EXPECT_EQ(cfg.mem.memLatency, 100u);
    EXPECT_EQ(cfg.mem.mshrs, 16u);
    EXPECT_EQ(cfg.mem.bufEntries, 8u);
    EXPECT_EQ(cfg.mem.mode, AssistMode::None);
    EXPECT_EQ(cfg.core.fetchWidth, 8u);
    EXPECT_EQ(cfg.core.robSize, 64u);
    EXPECT_EQ(cfg.core.loadStoreUnits, 4u);
    EXPECT_EQ(cfg.core.pipelineFill, 7u);
}

TEST(Configs, VictimConfigSetsPolicy)
{
    SystemConfig cfg = victimConfig(true, false, ConflictFilter::And);
    EXPECT_EQ(cfg.mem.mode, AssistMode::VictimCache);
    EXPECT_TRUE(cfg.mem.victim.filterSwaps);
    EXPECT_FALSE(cfg.mem.victim.filterFills);
    EXPECT_EQ(cfg.mem.victim.filter, ConflictFilter::And);
}

TEST(Configs, ExcludeUsesSixteenEntries)
{
    // "The Johnson algorithm ... did poorly with an 8-entry buffer,
    // which is why we use the slightly larger structure here."
    SystemConfig cfg = excludeConfig(ExcludeAlgo::Mat);
    EXPECT_EQ(cfg.mem.bufEntries, 16u);
    EXPECT_EQ(cfg.mem.exclude.algo, ExcludeAlgo::Mat);
}

TEST(Configs, AmbPresetsComposeComponents)
{
    SystemConfig cfg = ambConfig(true, false, true, 16);
    EXPECT_EQ(cfg.mem.mode, AssistMode::Amb);
    EXPECT_TRUE(cfg.mem.amb.victimConflicts);
    EXPECT_FALSE(cfg.mem.amb.prefetchCapacity);
    EXPECT_TRUE(cfg.mem.amb.excludeCapacity);
    EXPECT_EQ(cfg.mem.bufEntries, 16u);
}

TEST(Configs, SingleBestVariants)
{
    EXPECT_TRUE(ambSingleVict().mem.victim.filterSwaps);
    EXPECT_TRUE(ambSingleVict().mem.victim.filterFills);
    EXPECT_TRUE(ambSinglePref().mem.prefetch.filtered);
    EXPECT_EQ(ambSingleExcl().mem.exclude.algo,
              ExcludeAlgo::Capacity);
}

TEST(Configs, TwoWayAndPseudo)
{
    EXPECT_EQ(twoWayConfig().mem.l1Assoc, 2u);
    EXPECT_EQ(pseudoConfig(true).mem.mode, AssistMode::PseudoAssoc);
    EXPECT_TRUE(pseudoConfig(true).mem.pseudoUseMct);
    EXPECT_FALSE(pseudoConfig(false).mem.pseudoUseMct);
}

TEST(Experiment, SpeedupMath)
{
    RunOutput base, test;
    base.sim.cycles = 200;
    test.sim.cycles = 100;
    EXPECT_DOUBLE_EQ(speedup(base, test), 2.0);
    test.sim.cycles = 0;
    EXPECT_DOUBLE_EQ(speedup(base, test), 0.0);
}

TEST(Experiment, RunTimingDeterministic)
{
    auto wl = makeWorkload("perl", 5000, 3);
    VectorTrace t = VectorTrace::capture(*wl);
    RunOutput a = runTiming(t, ambConfig(true, true, true));
    RunOutput b = runTiming(t, ambConfig(true, true, true));
    EXPECT_EQ(a.sim.cycles, b.sim.cycles);
    EXPECT_EQ(a.mem.excluded, b.mem.excluded);
    EXPECT_EQ(a.mem.prefIssued, b.mem.prefIssued);
}

TEST(Experiment, StatsDumpFormat)
{
    auto wl = makeWorkload("go", 2000, 3);
    VectorTrace t = VectorTrace::capture(*wl);
    RunOutput r = runTiming(t, victimConfig(false, false));
    std::ostringstream os;
    r.mem.dump(os, "test");
    std::string s = os.str();
    EXPECT_NE(s.find("test.accesses 2000"), std::string::npos);
    EXPECT_NE(s.find("test.l1_hits "), std::string::npos);
    EXPECT_NE(s.find("test.swaps "), std::string::npos);
    // Derived ratios ride along with the raw counters.
    EXPECT_NE(s.find("test.l1_hit_rate_pct "), std::string::npos);
    EXPECT_NE(s.find("test.miss_rate_pct "), std::string::npos);
    // One line per counter plus one per derived ratio, all prefixed.
    std::size_t counters = 0;
    MemStats::forEachField([&](const char *, Count MemStats::*) {
        ++counters;
    });
    std::size_t derived = 0;
    r.mem.forEachDerived([&](const char *, double) { ++derived; });
    std::size_t lines = 0, pos = 0;
    while ((pos = s.find('\n', pos)) != std::string::npos) {
        ++lines;
        ++pos;
    }
    EXPECT_EQ(lines, counters + derived);
}

TEST(Experiment, TryRunTimingMatchesRunTiming)
{
    auto wl = makeWorkload("go", 3000, 5);
    VectorTrace t = VectorTrace::capture(*wl);
    RunOutput direct = runTiming(t, baselineConfig());
    Expected<RunOutput> checked = tryRunTiming(t, baselineConfig());
    ASSERT_TRUE(checked.ok());
    EXPECT_EQ(checked.value().sim.cycles, direct.sim.cycles);
    EXPECT_EQ(checked.value().mem.l1Misses, direct.mem.l1Misses);
}

TEST(Experiment, TryRunTimingReportsBadConfigInsteadOfDying)
{
    auto wl = makeWorkload("go", 1000, 5);
    VectorTrace t = VectorTrace::capture(*wl);
    SystemConfig cfg = baselineConfig();
    cfg.mem.l1Bytes = 15000; // not a power of two
    Expected<RunOutput> r = tryRunTiming(t, cfg);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), ErrorCode::BadConfig);
    EXPECT_NE(r.status().message().find("power of two"),
              std::string::npos);
}

TEST(Suite, CompletesDespiteOneFailingWorkload)
{
    std::vector<std::string> names = {"go", "gcc", "perl"};
    auto factory = [](const std::string &name)
        -> Expected<std::unique_ptr<TraceSource>> {
        if (name == "gcc")
            return Status::corruptTrace("bad trace magic in gcc.bin");
        return makeWorkloadChecked(name, 2000, 3);
    };
    SuiteReport report =
        runSuite(names, factory, baselineConfig());

    ASSERT_EQ(report.rows.size(), 3u);
    EXPECT_EQ(report.failures(), 1u);
    EXPECT_FALSE(report.allOk());

    // Row order matches the request, and the healthy runs completed.
    EXPECT_EQ(report.rows[0].workload, "go");
    EXPECT_TRUE(report.rows[0].ok());
    EXPECT_GT(report.rows[0].out.sim.cycles, 0u);
    EXPECT_TRUE(report.rows[2].ok());
    EXPECT_GT(report.rows[2].out.sim.cycles, 0u);

    const SuiteRow *bad = report.row("gcc");
    ASSERT_NE(bad, nullptr);
    EXPECT_FALSE(bad->ok());
    EXPECT_EQ(bad->status.code(), ErrorCode::CorruptTrace);
    // Context names the workload, outermost first.
    EXPECT_NE(bad->status.message().find("workload 'gcc'"),
              std::string::npos);
}

TEST(Suite, UnknownWorkloadBecomesErroredRow)
{
    SuiteReport report = runSuite({"go", "nonesuch"}, 2000, 3,
                                  baselineConfig());
    ASSERT_EQ(report.rows.size(), 2u);
    EXPECT_TRUE(report.rows[0].ok());
    EXPECT_FALSE(report.rows[1].ok());
    EXPECT_EQ(report.rows[1].status.code(), ErrorCode::NotFound);
}

TEST(Suite, ThrowingFactoryIsIsolated)
{
    auto factory = [](const std::string &name)
        -> Expected<std::unique_ptr<TraceSource>> {
        if (name == "go")
            throw std::runtime_error("factory exploded");
        return makeWorkloadChecked(name, 1000, 3);
    };
    SuiteReport report =
        runSuite({"go", "perl"}, factory, baselineConfig());
    EXPECT_FALSE(report.rows[0].ok());
    EXPECT_EQ(report.rows[0].status.code(), ErrorCode::Internal);
    EXPECT_TRUE(report.rows[1].ok());
}

TEST(Suite, FullSuiteSweepAllOk)
{
    SuiteReport report =
        runSuite(workloadNames(), 1000, 3, baselineConfig());
    EXPECT_EQ(report.rows.size(), 16u);
    EXPECT_TRUE(report.allOk());
}

TEST(Experiment, RunOutputCarriesBothViews)
{
    auto wl = makeWorkload("swim", 4000, 1);
    VectorTrace t = VectorTrace::capture(*wl);
    RunOutput r = runTiming(t, baselineConfig());
    EXPECT_EQ(r.sim.memRefs, 4000u);
    EXPECT_EQ(r.mem.accesses, 4000u);
    EXPECT_GT(r.sim.cycles, 0u);
}

} // namespace
} // namespace ccm
