/**
 * @file
 * Tests for the experiment driver: the named §5 configurations,
 * speedup math, determinism, and the stats dump format.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/experiment.hh"
#include "trace/vector_trace.hh"
#include "workloads/registry.hh"

namespace ccm
{
namespace
{

TEST(Configs, BaselineMatchesPaperSection4)
{
    SystemConfig cfg = baselineConfig();
    EXPECT_EQ(cfg.mem.l1Bytes, 16u * 1024);
    EXPECT_EQ(cfg.mem.l1Assoc, 1u);
    EXPECT_EQ(cfg.mem.lineBytes, 64u);
    EXPECT_EQ(cfg.mem.l1Banks, 8u);
    EXPECT_EQ(cfg.mem.l2Bytes, 1024u * 1024);
    EXPECT_EQ(cfg.mem.l2Assoc, 2u);
    EXPECT_EQ(cfg.mem.l2Latency, 20u);
    EXPECT_EQ(cfg.mem.memLatency, 100u);
    EXPECT_EQ(cfg.mem.mshrs, 16u);
    EXPECT_EQ(cfg.mem.bufEntries, 8u);
    EXPECT_EQ(cfg.mem.mode, AssistMode::None);
    EXPECT_EQ(cfg.core.fetchWidth, 8u);
    EXPECT_EQ(cfg.core.robSize, 64u);
    EXPECT_EQ(cfg.core.loadStoreUnits, 4u);
    EXPECT_EQ(cfg.core.pipelineFill, 7u);
}

TEST(Configs, VictimConfigSetsPolicy)
{
    SystemConfig cfg = victimConfig(true, false, ConflictFilter::And);
    EXPECT_EQ(cfg.mem.mode, AssistMode::VictimCache);
    EXPECT_TRUE(cfg.mem.victim.filterSwaps);
    EXPECT_FALSE(cfg.mem.victim.filterFills);
    EXPECT_EQ(cfg.mem.victim.filter, ConflictFilter::And);
}

TEST(Configs, ExcludeUsesSixteenEntries)
{
    // "The Johnson algorithm ... did poorly with an 8-entry buffer,
    // which is why we use the slightly larger structure here."
    SystemConfig cfg = excludeConfig(ExcludeAlgo::Mat);
    EXPECT_EQ(cfg.mem.bufEntries, 16u);
    EXPECT_EQ(cfg.mem.exclude.algo, ExcludeAlgo::Mat);
}

TEST(Configs, AmbPresetsComposeComponents)
{
    SystemConfig cfg = ambConfig(true, false, true, 16);
    EXPECT_EQ(cfg.mem.mode, AssistMode::Amb);
    EXPECT_TRUE(cfg.mem.amb.victimConflicts);
    EXPECT_FALSE(cfg.mem.amb.prefetchCapacity);
    EXPECT_TRUE(cfg.mem.amb.excludeCapacity);
    EXPECT_EQ(cfg.mem.bufEntries, 16u);
}

TEST(Configs, SingleBestVariants)
{
    EXPECT_TRUE(ambSingleVict().mem.victim.filterSwaps);
    EXPECT_TRUE(ambSingleVict().mem.victim.filterFills);
    EXPECT_TRUE(ambSinglePref().mem.prefetch.filtered);
    EXPECT_EQ(ambSingleExcl().mem.exclude.algo,
              ExcludeAlgo::Capacity);
}

TEST(Configs, TwoWayAndPseudo)
{
    EXPECT_EQ(twoWayConfig().mem.l1Assoc, 2u);
    EXPECT_EQ(pseudoConfig(true).mem.mode, AssistMode::PseudoAssoc);
    EXPECT_TRUE(pseudoConfig(true).mem.pseudoUseMct);
    EXPECT_FALSE(pseudoConfig(false).mem.pseudoUseMct);
}

TEST(Experiment, SpeedupMath)
{
    RunOutput base, test;
    base.sim.cycles = 200;
    test.sim.cycles = 100;
    EXPECT_DOUBLE_EQ(speedup(base, test), 2.0);
    test.sim.cycles = 0;
    EXPECT_DOUBLE_EQ(speedup(base, test), 0.0);
}

TEST(Experiment, RunTimingDeterministic)
{
    auto wl = makeWorkload("perl", 5000, 3);
    VectorTrace t = VectorTrace::capture(*wl);
    RunOutput a = runTiming(t, ambConfig(true, true, true));
    RunOutput b = runTiming(t, ambConfig(true, true, true));
    EXPECT_EQ(a.sim.cycles, b.sim.cycles);
    EXPECT_EQ(a.mem.excluded, b.mem.excluded);
    EXPECT_EQ(a.mem.prefIssued, b.mem.prefIssued);
}

TEST(Experiment, StatsDumpFormat)
{
    auto wl = makeWorkload("go", 2000, 3);
    VectorTrace t = VectorTrace::capture(*wl);
    RunOutput r = runTiming(t, victimConfig(false, false));
    std::ostringstream os;
    r.mem.dump(os, "test");
    std::string s = os.str();
    EXPECT_NE(s.find("test.accesses 2000"), std::string::npos);
    EXPECT_NE(s.find("test.l1_hits "), std::string::npos);
    EXPECT_NE(s.find("test.swaps "), std::string::npos);
    // One line per counter, all prefixed.
    std::size_t lines = 0, pos = 0;
    while ((pos = s.find('\n', pos)) != std::string::npos) {
        ++lines;
        ++pos;
    }
    EXPECT_EQ(lines, 25u);
}

TEST(Experiment, RunOutputCarriesBothViews)
{
    auto wl = makeWorkload("swim", 4000, 1);
    VectorTrace t = VectorTrace::capture(*wl);
    RunOutput r = runTiming(t, baselineConfig());
    EXPECT_EQ(r.sim.memRefs, 4000u);
    EXPECT_EQ(r.mem.accesses, 4000u);
    EXPECT_GT(r.sim.cycles, 0u);
}

} // namespace
} // namespace ccm
