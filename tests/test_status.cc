/**
 * @file
 * Unit tests for the recoverable-error subsystem: Status, Expected,
 * context chaining, and the scoped fatal-to-throw guard.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/status.hh"

namespace ccm
{
namespace
{

TEST(Status, DefaultIsOk)
{
    Status s;
    EXPECT_TRUE(s.isOk());
    EXPECT_EQ(s.code(), ErrorCode::Ok);
    EXPECT_EQ(s.message(), "");
    EXPECT_EQ(s.toString(), "ok");
}

TEST(Status, FactoriesSetCodeAndMessage)
{
    Status s = Status::badConfig("size must be ", 64);
    EXPECT_FALSE(s.isOk());
    EXPECT_EQ(s.code(), ErrorCode::BadConfig);
    EXPECT_EQ(s.message(), "size must be 64");

    EXPECT_EQ(Status::corruptTrace("x").code(),
              ErrorCode::CorruptTrace);
    EXPECT_EQ(Status::ioError("x").code(), ErrorCode::IoError);
    EXPECT_EQ(Status::notFound("x").code(), ErrorCode::NotFound);
    EXPECT_EQ(Status::unsupported("x").code(),
              ErrorCode::Unsupported);
    EXPECT_EQ(Status::internal("x").code(), ErrorCode::Internal);
    EXPECT_EQ(Status::aborted("x").code(), ErrorCode::Aborted);
    EXPECT_EQ(Status::unavailable("x").code(),
              ErrorCode::Unavailable);
}

TEST(Status, CodeNamesAreStable)
{
    EXPECT_STREQ(errorCodeName(ErrorCode::Ok), "ok");
    EXPECT_STREQ(errorCodeName(ErrorCode::BadConfig), "bad-config");
    EXPECT_STREQ(errorCodeName(ErrorCode::CorruptTrace),
                 "corrupt-trace");
    EXPECT_STREQ(errorCodeName(ErrorCode::IoError), "io-error");
    EXPECT_STREQ(errorCodeName(ErrorCode::NotFound), "not-found");
    EXPECT_STREQ(errorCodeName(ErrorCode::Unsupported),
                 "unsupported");
    EXPECT_STREQ(errorCodeName(ErrorCode::Internal), "internal");
    EXPECT_STREQ(errorCodeName(ErrorCode::Aborted), "aborted");
    EXPECT_STREQ(errorCodeName(ErrorCode::Unavailable),
                 "unavailable");
}

TEST(Status, ToStringCombinesCodeAndMessage)
{
    Status s = Status::corruptTrace("bad magic");
    EXPECT_EQ(s.toString(), "corrupt-trace: bad magic");
}

TEST(Status, ContextChainsOutermostFirst)
{
    Status s = Status::corruptTrace("bad trace magic in gcc.bin");
    Status wrapped =
        s.withContext("workload 'gcc'").withContext("loading suite");
    EXPECT_EQ(wrapped.code(), ErrorCode::CorruptTrace);
    EXPECT_EQ(wrapped.message(),
              "loading suite: workload 'gcc': "
              "bad trace magic in gcc.bin");
}

TEST(Status, ContextOnOkIsNoop)
{
    Status s = Status::ok().withContext("ctx");
    EXPECT_TRUE(s.isOk());
    EXPECT_EQ(s.message(), "");
}

TEST(Expected, HoldsValue)
{
    Expected<int> e(42);
    ASSERT_TRUE(e.ok());
    EXPECT_TRUE(e.status().isOk());
    EXPECT_EQ(e.value(), 42);
    EXPECT_EQ(e.valueOr(7), 42);
}

TEST(Expected, HoldsError)
{
    Expected<int> e(Status::notFound("no such thing"));
    ASSERT_FALSE(e.ok());
    EXPECT_EQ(e.status().code(), ErrorCode::NotFound);
    EXPECT_EQ(e.valueOr(7), 7);
}

TEST(Expected, TakeMovesValueOut)
{
    Expected<std::unique_ptr<int>> e(std::make_unique<int>(5));
    ASSERT_TRUE(e.ok());
    std::unique_ptr<int> p = e.take();
    ASSERT_TRUE(p);
    EXPECT_EQ(*p, 5);
}

TEST(Expected, ValueOnErrorPanics)
{
    Expected<int> e(Status::internal("boom"));
    EXPECT_DEATH(e.value(), "Expected::value");
}

TEST(FatalIfError, DiesWithMessage)
{
    EXPECT_DEATH(fatalIfError(Status::badConfig("cannot cope")),
                 "cannot cope");
    fatalIfError(Status::ok()); // no-op
}

TEST(ScopedFatalThrow, ConvertsFatalToException)
{
    bool caught = false;
    try {
        ScopedFatalThrow guard;
        ccm_fatal("recoverable ", 123);
    } catch (const FatalError &e) {
        caught = true;
        EXPECT_STREQ(e.what(), "recoverable 123");
    }
    EXPECT_TRUE(caught);
}

TEST(ScopedFatalThrow, RestoresExitBehaviourAfterScope)
{
    {
        ScopedFatalThrow guard;
    }
    EXPECT_DEATH(ccm_fatal("really dies"), "really dies");
}

TEST(ScopedFatalThrow, Nests)
{
    ScopedFatalThrow outer;
    {
        ScopedFatalThrow inner;
    }
    // The outer guard must still be active.
    EXPECT_THROW(ccm_fatal("still recoverable"), FatalError);
}

} // namespace
} // namespace ccm
