/**
 * @file
 * Unit tests for CacheGeometry: address decomposition, derived sizes,
 * and validation, swept over the paper's cache configurations.
 */

#include <gtest/gtest.h>

#include "cache/geometry.hh"

namespace ccm
{
namespace
{

TEST(Geometry, PaperDefaultL1)
{
    CacheGeometry g(16 * 1024, 1, 64);
    EXPECT_EQ(g.numSets(), 256u);
    EXPECT_EQ(g.numLines(), 256u);
    EXPECT_EQ(g.offsetBits(), 6u);
    EXPECT_EQ(g.setBits(), 8u);
}

TEST(Geometry, PaperL2)
{
    CacheGeometry g(1024 * 1024, 2, 64);
    EXPECT_EQ(g.numSets(), 8192u);
    EXPECT_EQ(g.numLines(), 16384u);
}

TEST(Geometry, LineAddrClearsOffset)
{
    CacheGeometry g(16 * 1024, 1, 64);
    EXPECT_EQ(g.lineAddr(0x12345), 0x12340u);
    EXPECT_EQ(g.lineAddr(0x12340), 0x12340u);
    EXPECT_EQ(g.lineAddr(0x1237F), 0x12340u);
}

TEST(Geometry, SetIndexWraps)
{
    CacheGeometry g(16 * 1024, 1, 64);
    // Addresses 16KB apart map to the same set.
    EXPECT_EQ(g.setIndex(0x100), g.setIndex(0x100 + 16 * 1024));
    EXPECT_NE(g.setIndex(0x100), g.setIndex(0x100 + 8 * 1024));
}

TEST(Geometry, TagDistinguishesAliases)
{
    CacheGeometry g(16 * 1024, 1, 64);
    Addr a = 0x100;
    Addr b = a + 16 * 1024;
    EXPECT_EQ(g.setIndex(a), g.setIndex(b));
    EXPECT_NE(g.tag(a), g.tag(b));
}

TEST(Geometry, BuildLineAddrInvertsDecomposition)
{
    CacheGeometry g(64 * 1024, 2, 64);
    for (Addr a : {Addr{0}, Addr{0x40}, Addr{0xdeadbe80},
                   Addr{0x123456789ABCC0}}) {
        Addr line = g.lineAddr(a);
        EXPECT_EQ(g.buildLineAddr(g.tag(a), g.setIndex(a)), line);
    }
}

TEST(Geometry, Describe)
{
    EXPECT_EQ(CacheGeometry(16 * 1024, 1, 64).describe(),
              "16KB/1way/64B");
    EXPECT_EQ(CacheGeometry(1024 * 1024, 2, 64).describe(),
              "1024KB/2way/64B");
    EXPECT_EQ(CacheGeometry(512, 1, 64).describe(), "512B/1way/64B");
}

TEST(Geometry, ValidateRejectsWithoutDying)
{
    EXPECT_TRUE(CacheGeometry::validate(16 * 1024, 1, 64).isOk());
    Status s = CacheGeometry::validate(15000, 1, 64);
    ASSERT_FALSE(s.isOk());
    EXPECT_EQ(s.code(), ErrorCode::BadConfig);
    EXPECT_NE(s.message().find("power of two"), std::string::npos);
    EXPECT_FALSE(CacheGeometry::validate(16 * 1024, 1, 60).isOk());
    EXPECT_FALSE(CacheGeometry::validate(16 * 1024, 0, 64).isOk());
    // 128B cache, 1 way, 64B lines -> 2 sets: fine.  3-way doesn't
    // divide the capacity.
    EXPECT_FALSE(CacheGeometry::validate(128, 3, 64).isOk());
}

TEST(Geometry, MakeReturnsGeometryOrStatus)
{
    auto g = CacheGeometry::make(16 * 1024, 2, 64);
    ASSERT_TRUE(g.ok());
    EXPECT_EQ(g.value().numSets(), 128u);

    auto bad = CacheGeometry::make(15000, 1, 64);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), ErrorCode::BadConfig);
}

TEST(GeometryDeath, RejectsNonPowerOfTwoSize)
{
    EXPECT_DEATH(CacheGeometry(15000, 1, 64), "power of two");
}

TEST(GeometryDeath, RejectsNonPowerOfTwoLine)
{
    EXPECT_DEATH(CacheGeometry(16 * 1024, 1, 60), "power of two");
}

TEST(GeometryDeath, RejectsZeroAssoc)
{
    EXPECT_DEATH(CacheGeometry(16 * 1024, 0, 64), "associativity");
}

/** Parameterized sweep over the paper's Figure 1 configurations. */
class GeometrySweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, unsigned>>
{
};

TEST_P(GeometrySweep, InvariantsHold)
{
    auto [bytes, assoc] = GetParam();
    CacheGeometry g(bytes, assoc, 64);
    EXPECT_EQ(g.numSets() * g.assoc() * g.lineBytes(), bytes);
    EXPECT_EQ(g.sizeBytes(), bytes);

    // Every address's (tag, set) round-trips to its line address.
    for (Addr a = 0; a < 4 * bytes; a += 4096 + 64) {
        EXPECT_EQ(g.buildLineAddr(g.tag(a), g.setIndex(a)),
                  g.lineAddr(a));
        EXPECT_LT(g.setIndex(a), g.numSets());
    }
}

INSTANTIATE_TEST_SUITE_P(
    Fig1Configs, GeometrySweep,
    ::testing::Combine(::testing::Values(std::size_t{16 * 1024},
                                         std::size_t{64 * 1024},
                                         std::size_t{1024 * 1024}),
                       ::testing::Values(1u, 2u, 4u, 8u)));

} // namespace
} // namespace ccm
