/**
 * @file
 * Unit tests for CacheGeometry: typed address decomposition, derived
 * sizes, and validation, swept over the paper's cache configurations.
 */

#include <gtest/gtest.h>

#include "cache/geometry.hh"

namespace ccm
{
namespace
{

TEST(Geometry, PaperDefaultL1)
{
    CacheGeometry g(16 * 1024, 1, 64);
    EXPECT_EQ(g.numSets(), 256u);
    EXPECT_EQ(g.numLines(), 256u);
    EXPECT_EQ(g.offsetBits(), 6u);
    EXPECT_EQ(g.setBits(), 8u);
}

TEST(Geometry, PaperL2)
{
    CacheGeometry g(1024 * 1024, 2, 64);
    EXPECT_EQ(g.numSets(), 8192u);
    EXPECT_EQ(g.numLines(), 16384u);
}

TEST(Geometry, LineOfClearsOffset)
{
    CacheGeometry g(16 * 1024, 1, 64);
    EXPECT_EQ(g.lineOf(ByteAddr{0x12345}), LineAddr{0x12340});
    EXPECT_EQ(g.lineOf(ByteAddr{0x12340}), LineAddr{0x12340});
    EXPECT_EQ(g.lineOf(ByteAddr{0x1237F}), LineAddr{0x12340});
}

TEST(Geometry, SetOfWraps)
{
    CacheGeometry g(16 * 1024, 1, 64);
    // Addresses 16KB apart map to the same set.
    EXPECT_EQ(g.setOf(ByteAddr{0x100}),
              g.setOf(ByteAddr{0x100 + 16 * 1024}));
    EXPECT_NE(g.setOf(ByteAddr{0x100}),
              g.setOf(ByteAddr{0x100 + 8 * 1024}));
}

TEST(Geometry, TagDistinguishesAliases)
{
    CacheGeometry g(16 * 1024, 1, 64);
    ByteAddr a{0x100};
    ByteAddr b{0x100 + 16 * 1024};
    EXPECT_EQ(g.setOf(a), g.setOf(b));
    EXPECT_NE(g.tagOf(a), g.tagOf(b));
}

TEST(Geometry, RecomposeInvertsDecomposition)
{
    CacheGeometry g(64 * 1024, 2, 64);
    for (Addr raw : {Addr{0}, Addr{0x40}, Addr{0xdeadbe80},
                     Addr{0x123456789ABCC0}}) {
        ByteAddr a{raw};
        EXPECT_EQ(g.recompose(g.tagOf(a), g.setOf(a)), g.lineOf(a));
    }
}

TEST(Geometry, LineAndByteViewsAgree)
{
    CacheGeometry g(16 * 1024, 4, 64);
    ByteAddr a{0xABCDE7};
    LineAddr line = g.lineOf(a);
    // Decomposing the line address gives the same set and tag as
    // decomposing the byte address it came from.
    EXPECT_EQ(g.setOf(line), g.setOf(a));
    EXPECT_EQ(g.tagOf(line), g.tagOf(a));
    // A line address round-trips through its byte view unchanged.
    EXPECT_EQ(g.lineOf(line.asByte()), line);
}

TEST(Geometry, NextLineOfAdvancesOneLine)
{
    CacheGeometry g(16 * 1024, 1, 64);
    LineAddr line = g.lineOf(ByteAddr{0x1000});
    EXPECT_EQ(g.nextLineOf(line), LineAddr{0x1040});
}

TEST(Geometry, Describe)
{
    EXPECT_EQ(CacheGeometry(16 * 1024, 1, 64).describe(),
              "16KB/1way/64B");
    EXPECT_EQ(CacheGeometry(1024 * 1024, 2, 64).describe(),
              "1024KB/2way/64B");
    EXPECT_EQ(CacheGeometry(512, 1, 64).describe(), "512B/1way/64B");
}

TEST(Geometry, ValidateRejectsWithoutDying)
{
    EXPECT_TRUE(CacheGeometry::validate(16 * 1024, 1, 64).isOk());
    Status s = CacheGeometry::validate(15000, 1, 64);
    ASSERT_FALSE(s.isOk());
    EXPECT_EQ(s.code(), ErrorCode::BadConfig);
    EXPECT_NE(s.message().find("power of two"), std::string::npos);
    EXPECT_FALSE(CacheGeometry::validate(16 * 1024, 1, 60).isOk());
    EXPECT_FALSE(CacheGeometry::validate(16 * 1024, 0, 64).isOk());
    // 128B cache, 1 way, 64B lines -> 2 sets: fine.  3-way doesn't
    // divide the capacity.
    EXPECT_FALSE(CacheGeometry::validate(128, 3, 64).isOk());
}

TEST(Geometry, MakeReturnsGeometryOrStatus)
{
    auto g = CacheGeometry::make(16 * 1024, 2, 64);
    ASSERT_TRUE(g.ok());
    EXPECT_EQ(g.value().numSets(), 128u);

    auto bad = CacheGeometry::make(15000, 1, 64);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), ErrorCode::BadConfig);
}

TEST(GeometryDeath, RejectsNonPowerOfTwoSize)
{
    EXPECT_DEATH(CacheGeometry(15000, 1, 64), "power of two");
}

TEST(GeometryDeath, RejectsNonPowerOfTwoLine)
{
    EXPECT_DEATH(CacheGeometry(16 * 1024, 1, 60), "power of two");
}

TEST(GeometryDeath, RejectsZeroAssoc)
{
    EXPECT_DEATH(CacheGeometry(16 * 1024, 0, 64), "associativity");
}

/**
 * Parameterized sweep: size x associativity x line size, covering the
 * paper's Figure 1 configurations and more.
 */
class GeometrySweep
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, unsigned, std::size_t>>
{
};

TEST_P(GeometrySweep, InvariantsHold)
{
    auto [bytes, assoc, line_bytes] = GetParam();
    CacheGeometry g(bytes, assoc, line_bytes);
    EXPECT_EQ(g.numSets() * g.assoc() * g.lineBytes(), bytes);
    EXPECT_EQ(g.sizeBytes(), bytes);

    // Round-trip property, on an address grid that is deliberately
    // NOT line-aligned: recompose(tagOf(a), setOf(a)) == lineOf(a),
    // the set index is in range, and the line/byte views of the same
    // address decompose identically.
    for (Addr raw = 0; raw < 4 * bytes; raw += 4096 + 64) {
        ByteAddr a{raw};
        LineAddr line = g.lineOf(a);
        EXPECT_EQ(g.recompose(g.tagOf(a), g.setOf(a)), line);
        EXPECT_LT(g.setOf(a).value(), g.numSets());
        EXPECT_EQ(g.setOf(line), g.setOf(a));
        EXPECT_EQ(g.tagOf(line), g.tagOf(a));
        EXPECT_EQ(g.lineOf(line.asByte()), line);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Fig1Configs, GeometrySweep,
    ::testing::Combine(::testing::Values(std::size_t{16 * 1024},
                                         std::size_t{64 * 1024},
                                         std::size_t{1024 * 1024}),
                       ::testing::Values(1u, 2u, 4u, 8u),
                       ::testing::Values(std::size_t{32},
                                         std::size_t{64},
                                         std::size_t{128})));

} // namespace
} // namespace ccm
