/**
 * @file
 * Tests for the out-of-order core timing model: width limits, window
 * blocking, load/store unit limits, dependent-load serialization.
 */

#include <gtest/gtest.h>

#include "cpu/core.hh"
#include "trace/vector_trace.hh"
#include "workloads/registry.hh"

namespace ccm
{
namespace
{

MemSysConfig
fastMem()
{
    MemSysConfig cfg;
    cfg.l1Bytes = 1024;
    cfg.l2Bytes = 64 * 1024;
    return cfg;
}

TEST(Core, EmptyTraceFinishesImmediately)
{
    VectorTrace t;
    MemorySystem mem(fastMem());
    Core core(CoreConfig{});
    SimResult r = core.run(t, mem);
    EXPECT_EQ(r.instructions, 0u);
}

TEST(Core, IpcBoundedByWidth)
{
    VectorTrace t;
    t.pushNonMem(10000);
    MemorySystem mem(fastMem());
    CoreConfig cfg;
    Core core(cfg);
    SimResult r = core.run(t, mem);
    EXPECT_EQ(r.instructions, 10000u);
    EXPECT_LE(r.ipc, double(cfg.fetchWidth));
    // Pure ALU code should sustain nearly full width.
    EXPECT_GT(r.ipc, 0.9 * cfg.fetchWidth);
}

TEST(Core, NarrowerCoreIsSlower)
{
    VectorTrace t;
    t.pushNonMem(10000);
    CoreConfig wide, narrow;
    narrow.fetchWidth = narrow.retireWidth = 2;
    MemorySystem m1(fastMem()), m2(fastMem());
    SimResult rw = Core(wide).run(t, m1);
    SimResult rn = Core(narrow).run(t, m2);
    EXPECT_GT(rn.cycles, rw.cycles);
    EXPECT_LE(rn.ipc, 2.05);
}

TEST(Core, MemRefsCounted)
{
    VectorTrace t;
    t.pushLoad(0x40);
    t.pushStore(0x80);
    t.pushNonMem(3);
    MemorySystem mem(fastMem());
    SimResult r = Core(CoreConfig{}).run(t, mem);
    EXPECT_EQ(r.memRefs, 2u);
    EXPECT_EQ(r.instructions, 5u);
    EXPECT_EQ(mem.stats().accesses, 2u);
}

TEST(Core, MissLatencyShowsUpInCycles)
{
    // A single cold load costs ~memLatency; a hot one doesn't.
    VectorTrace cold;
    cold.pushLoad(0x40);
    MemorySystem m1(fastMem());
    SimResult rc = Core(CoreConfig{}).run(cold, m1);
    EXPECT_GT(rc.cycles, 100u);

    VectorTrace hot;
    hot.pushLoad(0x40);
    hot.pushLoad(0x40);
    MemorySystem m2(fastMem());
    SimResult rh = Core(CoreConfig{}).run(hot, m2);
    // Second load hits; total stays ~one miss.
    EXPECT_LT(rh.cycles, rc.cycles + 10);
}

TEST(Core, IndependentMissesOverlap)
{
    // 8 cold loads to distinct lines: the window and MSHRs overlap
    // them, so total time is far less than 8 serial misses.
    VectorTrace t;
    for (int i = 0; i < 8; ++i)
        t.pushLoad(0x1000 + i * 0x40);
    MemorySystem mem(fastMem());
    SimResult r = Core(CoreConfig{}).run(t, mem);
    EXPECT_LT(r.cycles, 4 * 100u);
}

TEST(Core, DependentLoadsSerialize)
{
    // The same 8 cold loads, but each depends on the previous one:
    // no overlap is possible.
    VectorTrace t;
    for (int i = 0; i < 8; ++i) {
        MemRecord rec;
        rec.pc = i * 4;
        rec.addr = 0x1000 + i * 0x40;
        rec.type = RecordType::Load;
        rec.dependsOnPrevLoad = i > 0;
        t.push(rec);
    }
    MemorySystem mem(fastMem());
    SimResult r = Core(CoreConfig{}).run(t, mem);
    EXPECT_GT(r.cycles, 7 * 100u);
}

TEST(Core, StoresDontBlockRetirement)
{
    // Cold stores retire via the store buffer: total time is far
    // less than the serialized miss latency.
    VectorTrace t;
    for (int i = 0; i < 32; ++i)
        t.pushStore(0x1000 + i * 0x40);
    MemorySystem mem(fastMem());
    SimResult r = Core(CoreConfig{}).run(t, mem);
    EXPECT_LT(r.cycles, 32 * 50u);
}

TEST(Core, LsuLimitThrottlesMemOps)
{
    // All-memory traces can't exceed loadStoreUnits IPC even when
    // everything hits.
    VectorTrace t;
    for (int i = 0; i < 4000; ++i)
        t.pushLoad(0x40);   // same line: hits after first
    CoreConfig cfg;
    MemorySystem mem(fastMem());
    SimResult r = Core(cfg).run(t, mem);
    EXPECT_LE(r.ipc, double(cfg.loadStoreUnits) + 0.05);
}

TEST(Core, RobLimitsMissOverlap)
{
    // With a 4-entry window, at most ~4 misses overlap.
    VectorTrace t;
    for (int i = 0; i < 16; ++i)
        t.pushLoad(0x1000 + i * 0x40);
    CoreConfig tiny;
    tiny.robSize = 4;
    MemorySystem m1(fastMem());
    SimResult small = Core(tiny).run(t, m1);

    CoreConfig big;
    MemorySystem m2(fastMem());
    SimResult large = Core(big).run(t, m2);
    EXPECT_GT(small.cycles, large.cycles);
}

TEST(Core, DeterministicAcrossRuns)
{
    auto wl = makeWorkload("compress", 5000, 9);
    VectorTrace t = VectorTrace::capture(*wl);
    MemorySystem m1(fastMem()), m2(fastMem());
    SimResult a = Core(CoreConfig{}).run(t, m1);
    SimResult b = Core(CoreConfig{}).run(t, m2);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(m1.stats().l1Misses, m2.stats().l1Misses);
}

TEST(Core, PipelineFillAddsStartupCycles)
{
    VectorTrace t;
    t.pushNonMem(1);
    CoreConfig cfg;
    MemorySystem mem(fastMem());
    SimResult r = Core(cfg).run(t, mem);
    EXPECT_GE(r.cycles, cfg.pipelineFill);
}

} // namespace
} // namespace ccm
