/**
 * @file
 * End-to-end tests of the Figure 1/2 measurement path: classifyRun on
 * hand-crafted traces with known conflict/capacity behaviour.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "mct/classify_run.hh"
#include "trace/vector_trace.hh"

namespace ccm
{
namespace
{

/** Two lines one cache-size apart, accessed alternately. */
VectorTrace
pingPongTrace(std::size_t cache_bytes, int iterations)
{
    VectorTrace t({}, {});
    t.setName("pingpong");
    for (int i = 0; i < iterations; ++i) {
        t.pushLoad(0x1000);
        t.pushLoad(0x1000 + cache_bytes);
    }
    return t;
}

/** Sequential sweep over @p lines distinct lines, repeated. */
VectorTrace
streamTrace(std::size_t lines, int passes)
{
    VectorTrace t({}, {});
    t.setName("stream");
    for (int p = 0; p < passes; ++p)
        for (std::size_t i = 0; i < lines; ++i)
            t.pushLoad(0x100000 + i * 64);
    return t;
}

TEST(ClassifyRun, PingPongIsAllConflictAndFullyIdentified)
{
    ClassifyConfig cfg;
    cfg.cacheBytes = 1024;
    VectorTrace t = pingPongTrace(cfg.cacheBytes, 100);
    ClassifyResult res = classifyRun(t, cfg);

    EXPECT_EQ(res.references, 200u);
    EXPECT_EQ(res.misses, 200u);        // DM aliasing: all miss
    // Oracle: all but the first two misses are conflicts.
    EXPECT_EQ(res.scorer.oracleConflicts(), 198u);
    EXPECT_EQ(res.scorer.compulsoryMisses(), 2u);
    // MCT: the warmup miss of each line is capacity, everything after
    // matches the just-evicted tag.
    EXPECT_GT(res.scorer.conflictAccuracy(), 99.0);
    EXPECT_DOUBLE_EQ(res.scorer.capacityAccuracy(), 100.0);
}

TEST(ClassifyRun, StreamingIsAllCapacity)
{
    ClassifyConfig cfg;
    cfg.cacheBytes = 1024;  // 16 lines
    VectorTrace t = streamTrace(64, 5);  // 4x the cache, 5 passes
    ClassifyResult res = classifyRun(t, cfg);

    EXPECT_EQ(res.misses, res.references);  // distinct sets, no reuse
    EXPECT_EQ(res.scorer.oracleConflicts(), 0u);
    // The MCT agrees: nothing matches the last-evicted tag.
    EXPECT_DOUBLE_EQ(res.scorer.capacityAccuracy(), 100.0);
}

TEST(ClassifyRun, ThreeCycleInDmIsMissedByMct)
{
    // A, B, C aliased in one set, accessed cyclically: the oracle
    // calls the steady-state misses conflicts (a fully-associative
    // cache holds all three), but a one-entry MCT never matches — the
    // "needs more associativity than one extra way" case from §3.
    ClassifyConfig cfg;
    cfg.cacheBytes = 1024;
    VectorTrace t({}, {});
    for (int i = 0; i < 100; ++i) {
        t.pushLoad(0x1000);
        t.pushLoad(0x1000 + 1024);
        t.pushLoad(0x1000 + 2048);
    }
    ClassifyResult res = classifyRun(t, cfg);
    EXPECT_EQ(res.scorer.oracleConflicts(), 297u);
    EXPECT_LT(res.scorer.conflictAccuracy(), 1.0);
}

TEST(ClassifyRun, ThreeCycleInTwoWayIsCaughtByMct)
{
    // The same 3-cycle against a 2-way cache: now it's a conflict
    // *near*-miss (one extra way would catch it), and the MCT
    // identifies it.
    ClassifyConfig cfg;
    cfg.cacheBytes = 1024;
    cfg.assoc = 2;
    VectorTrace t({}, {});
    for (int i = 0; i < 100; ++i) {
        t.pushLoad(0x1000);
        t.pushLoad(0x1000 + 1024);
        t.pushLoad(0x1000 + 2048);
    }
    ClassifyResult res = classifyRun(t, cfg);
    EXPECT_GT(res.scorer.oracleConflicts(), 290u);
    EXPECT_GT(res.scorer.conflictAccuracy(), 98.0);
}

TEST(ClassifyRun, PairAbsorbedByTwoWay)
{
    // The pairwise ping-pong produces no misses at all (after warmup)
    // in a 2-way cache.
    ClassifyConfig cfg;
    cfg.cacheBytes = 1024;
    cfg.assoc = 2;
    VectorTrace t = pingPongTrace(1024, 100);
    ClassifyResult res = classifyRun(t, cfg);
    EXPECT_EQ(res.misses, 2u);  // the two compulsory misses
}

TEST(ClassifyRun, FewTagBitsInflateConflicts)
{
    // With a 1-bit stored tag, about half of random capacity misses
    // false-match: capacity accuracy drops, conflict accuracy can
    // only rise (Figure 2's left edge).  Random line addresses avoid
    // the deterministic parity artifacts of sequential streams (the
    // working-set sensitivity the paper warns about in §3).
    VectorTrace t({}, {});
    Pcg32 rng(11);
    for (int i = 0; i < 2000; ++i) {
        Addr line = (static_cast<Addr>(rng.next()) << 14) |
                    (rng.next() & 0x3FFF);
        t.pushLoad(line & ~Addr{63});
    }
    ClassifyConfig full, one;
    full.cacheBytes = one.cacheBytes = 1024;
    one.mctTagBits = 1;
    ClassifyResult rf = classifyRun(t, full);
    ClassifyResult r1 = classifyRun(t, one);
    EXPECT_GT(rf.scorer.capacityAccuracy(),
              r1.scorer.capacityAccuracy());
    EXPECT_NEAR(r1.scorer.capacityAccuracy(), 50.0, 10.0);
    EXPECT_GT(rf.scorer.capacityAccuracy(), 95.0);
}

TEST(ClassifyRun, NonMemRecordsIgnored)
{
    VectorTrace t({}, {});
    t.pushNonMem(50);
    t.pushLoad(0x40);
    ClassifyConfig cfg;
    ClassifyResult res = classifyRun(t, cfg);
    EXPECT_EQ(res.references, 1u);
}

TEST(ClassifyRun, MissRateMatchesCounts)
{
    VectorTrace t({}, {});
    t.pushLoad(0x40);
    t.pushLoad(0x40);
    t.pushLoad(0x40);
    t.pushLoad(0x80);
    ClassifyConfig cfg;
    ClassifyResult res = classifyRun(t, cfg);
    EXPECT_EQ(res.misses, 2u);
    EXPECT_DOUBLE_EQ(res.missRate, 0.5);
}

TEST(ClassifyRun, ReplayableTraceGivesIdenticalResults)
{
    VectorTrace t = pingPongTrace(16 * 1024, 500);
    ClassifyConfig cfg;
    ClassifyResult a = classifyRun(t, cfg);
    ClassifyResult b = classifyRun(t, cfg);
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.scorer.totalMisses(), b.scorer.totalMisses());
    EXPECT_DOUBLE_EQ(a.scorer.conflictAccuracy(),
                     b.scorer.conflictAccuracy());
}

} // namespace
} // namespace ccm
