/**
 * @file
 * Unit tests for the prefetchers: next-line address generation and
 * accounting, and the Chen & Baer RPT state machine.
 */

#include <gtest/gtest.h>

#include "prefetch/nextline.hh"
#include "prefetch/rpt.hh"

namespace ccm
{
namespace
{

// ---- next-line -----------------------------------------------------

TEST(NextLine, NextLineAddress)
{
    NextLinePrefetcher p(64);
    EXPECT_EQ(p.nextLine(LineAddr{0x0}), LineAddr{0x40});
    EXPECT_EQ(p.nextLine(LineAddr{0x40}), LineAddr{0x80});
    // Mid-line addresses round down first.
    EXPECT_EQ(p.nextLine(LineAddr{0x7F}), LineAddr{0x80});
    EXPECT_EQ(p.nextLine(LineAddr{0x123456}), LineAddr{0x123480});
}

TEST(NextLine, OtherLineSizes)
{
    NextLinePrefetcher p(32);
    EXPECT_EQ(p.nextLine(LineAddr{0x20}), LineAddr{0x40});
    NextLinePrefetcher q(128);
    EXPECT_EQ(q.nextLine(LineAddr{0x100}), LineAddr{0x180});
}

TEST(NextLine, AccountingAndAccuracy)
{
    NextLinePrefetcher p(64);
    p.countIssued();
    p.countIssued();
    p.countIssued();
    p.countUseful();
    p.countDropped();
    p.countFiltered();
    EXPECT_EQ(p.issued(), 3u);
    EXPECT_EQ(p.useful(), 1u);
    EXPECT_EQ(p.dropped(), 1u);
    EXPECT_EQ(p.filtered(), 1u);
    EXPECT_NEAR(p.accuracy(), 1.0 / 3.0, 1e-12);
    p.clearStats();
    EXPECT_EQ(p.issued(), 0u);
    EXPECT_DOUBLE_EQ(p.accuracy(), 0.0);
}

TEST(NextLineDeath, BadLineSize)
{
    EXPECT_DEATH(NextLinePrefetcher{60}, "power of two");
}

// ---- RPT -----------------------------------------------------------

using State = RptPrefetcher::State;

TEST(Rpt, FirstObservationPredictsNothing)
{
    RptPrefetcher rpt(64);
    EXPECT_FALSE(rpt.observe(ByteAddr{0x400}, ByteAddr{0x1000}).has_value());
    EXPECT_EQ(rpt.stateFor(ByteAddr{0x400}), State::Initial);
}

TEST(Rpt, SteadyStridepredictsNext)
{
    RptPrefetcher rpt(64);
    rpt.observe(ByteAddr{0x400}, ByteAddr{0x1000});
    // Second access: stride 0x40 doesn't match initial stride 0 ->
    // transient; third matching stride -> steady & predicting.
    EXPECT_FALSE(rpt.observe(ByteAddr{0x400}, ByteAddr{0x1040}).has_value());
    auto p = rpt.observe(ByteAddr{0x400}, ByteAddr{0x1080});
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(*p, ByteAddr{0x10C0});
    EXPECT_EQ(rpt.stateFor(ByteAddr{0x400}), State::Steady);
    EXPECT_EQ(rpt.predictions(), 1u);
}

TEST(Rpt, ZeroStrideNeverPredicts)
{
    RptPrefetcher rpt(64);
    for (int i = 0; i < 5; ++i)
        EXPECT_FALSE(rpt.observe(ByteAddr{0x400}, ByteAddr{0x1000}).has_value());
    // Steady at stride 0, but a zero-stride prefetch is pointless.
}

TEST(Rpt, NegativeStrideWorks)
{
    RptPrefetcher rpt(64);
    rpt.observe(ByteAddr{0x400}, ByteAddr{0x2000});
    rpt.observe(ByteAddr{0x400}, ByteAddr{0x1FC0});
    auto p = rpt.observe(ByteAddr{0x400}, ByteAddr{0x1F80});
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(*p, ByteAddr{0x1F40});
}

TEST(Rpt, StrideChangeLeavesSteady)
{
    RptPrefetcher rpt(64);
    rpt.observe(ByteAddr{0x400}, ByteAddr{0x1000});
    rpt.observe(ByteAddr{0x400}, ByteAddr{0x1040});
    rpt.observe(ByteAddr{0x400}, ByteAddr{0x1080});  // steady
    EXPECT_FALSE(rpt.observe(ByteAddr{0x400}, ByteAddr{0x5000}).has_value());
    EXPECT_EQ(rpt.stateFor(ByteAddr{0x400}), State::Initial);
}

TEST(Rpt, IrregularGoesToNoPred)
{
    RptPrefetcher rpt(64);
    rpt.observe(ByteAddr{0x400}, ByteAddr{0x1000});
    rpt.observe(ByteAddr{0x400}, ByteAddr{0x2000});   // initial -> transient (new stride)
    rpt.observe(ByteAddr{0x400}, ByteAddr{0x9000});   // transient -> nopred
    EXPECT_EQ(rpt.stateFor(ByteAddr{0x400}), State::NoPred);
    EXPECT_FALSE(rpt.observe(ByteAddr{0x400}, ByteAddr{0x12345678}).has_value());
}

TEST(Rpt, NoPredRecoversViaConsistentStride)
{
    RptPrefetcher rpt(64);
    rpt.observe(ByteAddr{0x400}, ByteAddr{0x1000});
    rpt.observe(ByteAddr{0x400}, ByteAddr{0x2000});
    rpt.observe(ByteAddr{0x400}, ByteAddr{0x9000});   // nopred, stride updated each miss
    rpt.observe(ByteAddr{0x400}, ByteAddr{0x9040});   // stride 0x40 recorded, nopred
    rpt.observe(ByteAddr{0x400}, ByteAddr{0x9080});   // correct -> transient
    auto p = rpt.observe(ByteAddr{0x400}, ByteAddr{0x90C0});  // correct -> steady
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(*p, ByteAddr{0x9100});
}

TEST(Rpt, DistinctPcsTrackedIndependently)
{
    RptPrefetcher rpt(64);
    rpt.observe(ByteAddr{0x400}, ByteAddr{0x1000});
    rpt.observe(ByteAddr{0x404}, ByteAddr{0x9000});
    rpt.observe(ByteAddr{0x400}, ByteAddr{0x1040});
    rpt.observe(ByteAddr{0x404}, ByteAddr{0x9100});
    rpt.observe(ByteAddr{0x400}, ByteAddr{0x1080});
    auto p = rpt.observe(ByteAddr{0x404}, ByteAddr{0x9200});
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(*p, ByteAddr{0x9300});   // pc 0x404 strides 0x100
    EXPECT_EQ(rpt.stateFor(ByteAddr{0x400}), State::Steady);
}

TEST(Rpt, TableConflictResetsEntry)
{
    RptPrefetcher rpt(16);   // pcs 16*4 bytes apart collide
    rpt.observe(ByteAddr{0x400}, ByteAddr{0x1000});
    rpt.observe(ByteAddr{0x400}, ByteAddr{0x1040});
    rpt.observe(ByteAddr{0x400}, ByteAddr{0x1080});  // steady
    // A different pc mapping to the same entry steals it.
    rpt.observe(ByteAddr{0x400 + 16 * 4}, ByteAddr{0x7000});
    EXPECT_EQ(rpt.stateFor(ByteAddr{0x400 + 16 * 4}), State::Initial);
    // The original pc must retrain.
    EXPECT_FALSE(rpt.observe(ByteAddr{0x400}, ByteAddr{0x10C0}).has_value());
}

TEST(Rpt, ClearForgets)
{
    RptPrefetcher rpt(64);
    rpt.observe(ByteAddr{0x400}, ByteAddr{0x1000});
    rpt.observe(ByteAddr{0x400}, ByteAddr{0x1040});
    rpt.observe(ByteAddr{0x400}, ByteAddr{0x1080});
    rpt.clear();
    EXPECT_EQ(rpt.predictions(), 0u);
    EXPECT_EQ(rpt.stateFor(ByteAddr{0x400}), State::Initial);
}

TEST(RptDeath, NonPowerOfTwoEntries)
{
    EXPECT_DEATH(RptPrefetcher{100}, "power of two");
}

/** Strides sweep: RPT locks onto any constant stride. */
class RptStride : public ::testing::TestWithParam<std::int64_t>
{
};

TEST_P(RptStride, LocksOn)
{
    std::int64_t stride = GetParam();
    RptPrefetcher rpt(64);
    Addr a = 0x800000;
    rpt.observe(ByteAddr{0x10}, ByteAddr{a});
    a += stride;
    rpt.observe(ByteAddr{0x10}, ByteAddr{a});
    for (int i = 0; i < 5; ++i) {
        a += stride;
        auto p = rpt.observe(ByteAddr{0x10}, ByteAddr{a});
        ASSERT_TRUE(p.has_value()) << "iteration " << i;
        EXPECT_EQ(*p, ByteAddr{a + stride});
    }
}

INSTANTIATE_TEST_SUITE_P(Strides, RptStride,
                         ::testing::Values(8, 64, 512, 4096, -64,
                                           -8192));

} // namespace
} // namespace ccm
