/**
 * @file
 * Unit tests for the synthetic instruction-fetch streams used by the
 * I-cache extension bench.
 */

#include <gtest/gtest.h>

#include "mct/classify_run.hh"
#include "workloads/code_stream.hh"

namespace ccm
{
namespace
{

TEST(CodeStream, EmitsSequentialPcs)
{
    CodeStreamWorkload w("t", {{0x1000, 4}}, {0}, 10);
    w.reset();
    MemRecord r;
    std::vector<Addr> pcs;
    while (w.next(r)) {
        EXPECT_EQ(r.pc, r.addr);   // I-fetch: address == pc
        EXPECT_TRUE(r.isLoad());
        pcs.push_back(r.pc);
    }
    ASSERT_EQ(pcs.size(), 10u);
    // 4-instruction function wraps: 0x1000..0x100C, 0x1000...
    EXPECT_EQ(pcs[0], 0x1000u);
    EXPECT_EQ(pcs[3], 0x100Cu);
    EXPECT_EQ(pcs[4], 0x1000u);
}

TEST(CodeStream, CallSequenceAlternates)
{
    CodeStreamWorkload w("t", {{0x1000, 2}, {0x8000, 2}}, {0, 1}, 8);
    w.reset();
    MemRecord r;
    std::vector<Addr> pcs;
    while (w.next(r))
        pcs.push_back(r.pc);
    std::vector<Addr> expect = {0x1000, 0x1004, 0x8000, 0x8004,
                                0x1000, 0x1004, 0x8000, 0x8004};
    EXPECT_EQ(pcs, expect);
}

TEST(CodeStream, ResetReplays)
{
    CodeStreamWorkload w = CodeStreamWorkload::mixed(1000);
    w.reset();
    MemRecord r;
    std::vector<Addr> a, b;
    while (w.next(r))
        a.push_back(r.addr);
    w.reset();
    while (w.next(r))
        b.push_back(r.addr);
    EXPECT_EQ(a, b);
}

TEST(CodeStream, HotLoopFitsInCache)
{
    CodeStreamWorkload w = CodeStreamWorkload::hotLoop(100000);
    ClassifyConfig cfg;
    ClassifyResult res = classifyRun(w, cfg);
    EXPECT_LT(res.missRate, 0.001);
}

TEST(CodeStream, CollidingCallsAreConflicts)
{
    CodeStreamWorkload w = CodeStreamWorkload::collidingCalls(100000);
    ClassifyConfig cfg;
    ClassifyResult res = classifyRun(w, cfg);
    EXPECT_GT(res.missRate, 0.05);
    EXPECT_GT(res.scorer.conflictFraction(), 0.95);
    EXPECT_GT(res.scorer.conflictAccuracy(), 99.0);
}

TEST(CodeStream, HugeCodeIsCapacity)
{
    CodeStreamWorkload w = CodeStreamWorkload::hugeCode(100000);
    ClassifyConfig cfg;
    ClassifyResult res = classifyRun(w, cfg);
    EXPECT_GT(res.missRate, 0.05);
    EXPECT_LT(res.scorer.conflictFraction(), 0.01);
}

TEST(CodeStreamDeath, Validation)
{
    EXPECT_DEATH(CodeStreamWorkload("x", {}, {0}, 10), "functions");
    EXPECT_DEATH(CodeStreamWorkload("x", {{0, 1}}, {5}, 10),
                 "references function");
}

} // namespace
} // namespace ccm
