/**
 * @file
 * Tests for the SMT core model: context isolation, shared bandwidth,
 * ICOUNT fairness, and consistency with the single-thread core.
 */

#include <gtest/gtest.h>

#include "cpu/smt_core.hh"
#include "trace/vector_trace.hh"
#include "workloads/registry.hh"

namespace ccm
{
namespace
{

MemSysConfig
fastMem()
{
    MemSysConfig cfg;
    cfg.l1Bytes = 1024;
    cfg.l2Bytes = 64 * 1024;
    return cfg;
}

VectorTrace
nonMem(std::size_t n)
{
    VectorTrace t;
    t.pushNonMem(n);
    return t;
}

TEST(Smt, SingleContextMatchesCoreModel)
{
    auto wl = makeWorkload("compress", 3000, 5);
    VectorTrace t = VectorTrace::capture(*wl);

    MemorySystem m1(fastMem());
    SimResult solo = Core(CoreConfig{}).run(t, m1);

    MemorySystem m2(fastMem());
    SmtCore smt(CoreConfig{}, 1);
    t.reset();
    std::vector<TraceSource *> traces = {&t};
    SmtResult res = smt.run(traces, m2);

    EXPECT_EQ(res.totalInstructions, solo.instructions);
    // Same model, same window: cycle counts agree closely.
    double ratio = double(res.cycles) / double(solo.cycles);
    EXPECT_NEAR(ratio, 1.0, 0.05);
}

TEST(Smt, AllInstructionsCommit)
{
    VectorTrace a = nonMem(5000);
    VectorTrace b = nonMem(3000);
    MemorySystem mem(fastMem());
    SmtCore smt(CoreConfig{}, 2);
    std::vector<TraceSource *> traces = {&a, &b};
    SmtResult res = smt.run(traces, mem);
    EXPECT_EQ(res.perThreadInstrs[0], 5000u);
    EXPECT_EQ(res.perThreadInstrs[1], 3000u);
    EXPECT_EQ(res.totalInstructions, 8000u);
}

TEST(Smt, ThroughputBoundedByWidth)
{
    VectorTrace a = nonMem(10000);
    VectorTrace b = nonMem(10000);
    MemorySystem mem(fastMem());
    CoreConfig cfg;
    SmtCore smt(cfg, 2);
    std::vector<TraceSource *> traces = {&a, &b};
    SmtResult res = smt.run(traces, mem);
    EXPECT_LE(res.throughputIpc, double(cfg.fetchWidth) + 0.01);
    EXPECT_GT(res.throughputIpc, 0.9 * cfg.fetchWidth);
}

TEST(Smt, TwoThreadsShareBandwidthFairly)
{
    // Two identical ALU-bound threads finish together with similar
    // commit counts along the way (ICOUNT fairness).
    VectorTrace a = nonMem(8000);
    VectorTrace b = nonMem(8000);
    MemorySystem mem(fastMem());
    SmtCore smt(CoreConfig{}, 2);
    std::vector<TraceSource *> traces = {&a, &b};
    SmtResult res = smt.run(traces, mem);
    EXPECT_EQ(res.perThreadInstrs[0], res.perThreadInstrs[1]);
}

TEST(Smt, MemoryBoundThreadDoesNotStarveAluThread)
{
    // Thread A: dependent cold misses (latency-bound).  Thread B:
    // pure ALU.  Total throughput should stay well above what A
    // alone achieves — B fills the issue slots A leaves idle.
    VectorTrace a;
    for (int i = 0; i < 200; ++i) {
        MemRecord r;
        r.pc = i * 4;
        r.addr = 0x100000 + Addr(i) * 0x1000;
        r.type = RecordType::Load;
        r.dependsOnPrevLoad = i > 0;
        a.push(r);
    }
    VectorTrace b = nonMem(20000);

    MemorySystem m1(fastMem());
    SimResult a_solo = Core(CoreConfig{}).run(a, m1);

    MemorySystem m2(fastMem());
    SmtCore smt(CoreConfig{}, 2);
    a.reset();
    std::vector<TraceSource *> traces = {&a, &b};
    SmtResult res = smt.run(traces, m2);

    double a_solo_ipc =
        double(a_solo.instructions) / double(a_solo.cycles);
    EXPECT_GT(res.throughputIpc, 10 * a_solo_ipc);
}

TEST(Smt, SharedCacheInterferenceCostsCycles)
{
    // Two threads ping-ponging disjoint lines of the same set run
    // slower than the same threads on disjoint sets.
    auto mk = [](Addr base) {
        VectorTrace t;
        for (int i = 0; i < 2000; ++i)
            t.pushLoad(base + (i % 2) * 16 * 1024);  // 2-line ping
        return t;
    };
    VectorTrace a1 = mk(0x00040), b1 = mk(0x00040);   // same set!
    VectorTrace a2 = mk(0x00040), b2 = mk(0x00080);   // disjoint

    MemSysConfig mcfg = fastMem();
    mcfg.l1Bytes = 16 * 1024;

    MemorySystem m1(mcfg);
    SmtCore s1(CoreConfig{}, 2);
    std::vector<TraceSource *> t1 = {&a1, &b1};
    Cycle shared_set = s1.run(t1, m1).cycles;

    MemorySystem m2(mcfg);
    SmtCore s2(CoreConfig{}, 2);
    std::vector<TraceSource *> t2 = {&a2, &b2};
    Cycle disjoint = s2.run(t2, m2).cycles;

    EXPECT_GT(shared_set, disjoint);
}

TEST(Smt, Deterministic)
{
    auto w1 = makeWorkload("go", 3000, 1);
    auto w2 = makeWorkload("li", 3000, 2);
    VectorTrace a = VectorTrace::capture(*w1);
    VectorTrace b = VectorTrace::capture(*w2);

    auto run = [&]() {
        MemorySystem mem(fastMem());
        SmtCore smt(CoreConfig{}, 2);
        a.reset();
        b.reset();
        std::vector<TraceSource *> traces = {&a, &b};
        return smt.run(traces, mem).cycles;
    };
    EXPECT_EQ(run(), run());
}

TEST(SmtDeath, BadConfig)
{
    EXPECT_DEATH(SmtCore(CoreConfig{}, 0), "at least one");
    CoreConfig tiny;
    tiny.robSize = 4;
    EXPECT_DEATH(SmtCore(tiny, 8), "window too small");
}

TEST(SmtDeath, TraceCountMismatch)
{
    SmtCore smt(CoreConfig{}, 2);
    MemorySystem mem(fastMem());
    VectorTrace a = nonMem(10);
    std::vector<TraceSource *> traces = {&a};
    EXPECT_DEATH(smt.run(traces, mem), "expected 2 traces");
}

} // namespace
} // namespace ccm
