/**
 * @file
 * Unit tests for the MSHR file and the occupancy resource pools.
 */

#include <gtest/gtest.h>

#include "hierarchy/mshr.hh"
#include "hierarchy/resource.hh"

namespace ccm
{
namespace
{

// ---- MshrFile -------------------------------------------------------

TEST(Mshr, AllocateAndMerge)
{
    MshrFile m(4);
    m.allocate(LineAddr{0x40}, 100);
    auto ready = m.inFlight(LineAddr{0x40});
    ASSERT_TRUE(ready.has_value());
    EXPECT_EQ(*ready, 100u);
    EXPECT_FALSE(m.inFlight(LineAddr{0x80}).has_value());
    EXPECT_EQ(m.occupancy(), 1u);
}

TEST(Mshr, ExpireRetiresCompleted)
{
    MshrFile m(4);
    m.allocate(LineAddr{0x40}, 100);
    m.allocate(LineAddr{0x80}, 200);
    m.expire(99);
    EXPECT_EQ(m.occupancy(), 2u);
    m.expire(100);
    EXPECT_EQ(m.occupancy(), 1u);
    EXPECT_FALSE(m.inFlight(LineAddr{0x40}).has_value());
    m.expire(500);
    EXPECT_EQ(m.occupancy(), 0u);
}

TEST(Mshr, FullAndEarliest)
{
    MshrFile m(2);
    EXPECT_FALSE(m.full());
    EXPECT_EQ(m.earliestReady(), 0u);
    m.allocate(LineAddr{0x40}, 150);
    m.allocate(LineAddr{0x80}, 120);
    EXPECT_TRUE(m.full());
    EXPECT_EQ(m.earliestReady(), 120u);
}

TEST(Mshr, PaperCapacity)
{
    MshrFile m(16);
    for (unsigned i = 0; i < 16; ++i)
        m.allocate(LineAddr{i * 64}, 100 + i);
    EXPECT_TRUE(m.full());
    m.expire(100);
    EXPECT_FALSE(m.full());
    EXPECT_EQ(m.occupancy(), 15u);
}

TEST(Mshr, ClearEmpties)
{
    MshrFile m(4);
    m.allocate(LineAddr{0x40}, 10);
    m.clear();
    EXPECT_EQ(m.occupancy(), 0u);
}

TEST(Mshr, ValidateRejectsWithoutDying)
{
    EXPECT_TRUE(MshrFile::validate(16).isOk());
    EXPECT_EQ(MshrFile::validate(0).code(), ErrorCode::BadConfig);
}

TEST(MshrDeath, ZeroEntriesRejected)
{
    EXPECT_DEATH(MshrFile{0}, "at least one");
}

TEST(MshrDeath, AllocateWhileFullPanics)
{
    MshrFile m(1);
    m.allocate(LineAddr{0x40}, 10);
    EXPECT_DEATH(m.allocate(LineAddr{0x80}, 20), "full");
}

// ---- ResourcePool ---------------------------------------------------

TEST(Resource, FreeUnitStartsImmediately)
{
    ResourcePool p(2);
    EXPECT_EQ(p.acquire(10, 3), 10u);
}

TEST(Resource, PicksEarliestFreeUnit)
{
    ResourcePool p(2);
    p.acquire(0, 10);   // unit busy until 10
    p.acquire(0, 4);    // second unit until 4
    // Third request at t=0 waits for the unit freeing at 4.
    EXPECT_EQ(p.acquire(0, 1), 4u);
}

TEST(Resource, SerializesOnSingleUnit)
{
    ResourcePool p(1);
    EXPECT_EQ(p.acquire(0, 5), 0u);
    EXPECT_EQ(p.acquire(0, 5), 5u);
    EXPECT_EQ(p.acquire(3, 5), 10u);
    EXPECT_EQ(p.acquire(100, 5), 100u);
}

TEST(Resource, AcquireUnitTargetsSpecificUnit)
{
    ResourcePool p(4);
    EXPECT_EQ(p.acquireUnit(2, 0, 10), 0u);
    EXPECT_EQ(p.acquireUnit(2, 0, 1), 10u);   // same bank: waits
    EXPECT_EQ(p.acquireUnit(3, 0, 1), 0u);    // other bank: free
}

TEST(Resource, ResetFrees)
{
    ResourcePool p(1);
    p.acquire(0, 100);
    p.reset();
    EXPECT_EQ(p.acquire(0, 1), 0u);
}

TEST(Resource, UnitsAccessor)
{
    EXPECT_EQ(ResourcePool(8).units(), 8u);
}

} // namespace
} // namespace ccm
