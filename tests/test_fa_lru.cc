/**
 * @file
 * Unit + property tests for the fully-associative LRU structure used
 * by the oracle classifier and the assist buffers.
 */

#include <gtest/gtest.h>

#include <list>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "cache/fa_lru.hh"
#include "common/random.hh"

namespace ccm
{
namespace
{

TEST(FaLru, InsertAndContains)
{
    FaLru f(4);
    EXPECT_FALSE(f.contains(LineAddr{0x40}));
    EXPECT_FALSE(f.insert(LineAddr{0x40}).has_value());
    EXPECT_TRUE(f.contains(LineAddr{0x40}));
    EXPECT_EQ(f.size(), 1u);
}

TEST(FaLru, EvictsLruWhenFull)
{
    FaLru f(3);
    f.insert(LineAddr{1});
    f.insert(LineAddr{2});
    f.insert(LineAddr{3});
    EXPECT_TRUE(f.full());
    auto ev = f.insert(LineAddr{4});
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(*ev, LineAddr{1});
    EXPECT_FALSE(f.contains(LineAddr{1}));
    EXPECT_TRUE(f.contains(LineAddr{4}));
}

TEST(FaLru, TouchMovesToMru)
{
    FaLru f(3);
    f.insert(LineAddr{1});
    f.insert(LineAddr{2});
    f.insert(LineAddr{3});
    EXPECT_TRUE(f.touch(LineAddr{1}));          // 1 now MRU; 2 is LRU
    auto ev = f.insert(LineAddr{4});
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(*ev, LineAddr{2});
    EXPECT_TRUE(f.contains(LineAddr{1}));
}

TEST(FaLru, TouchMissReturnsFalse)
{
    FaLru f(2);
    EXPECT_FALSE(f.touch(LineAddr{42}));
}

TEST(FaLru, EraseFreesSlot)
{
    FaLru f(2);
    f.insert(LineAddr{1});
    f.insert(LineAddr{2});
    EXPECT_TRUE(f.erase(LineAddr{1}));
    EXPECT_FALSE(f.erase(LineAddr{1}));
    EXPECT_FALSE(f.insert(LineAddr{3}).has_value());  // no eviction needed
    EXPECT_TRUE(f.contains(LineAddr{2}));
    EXPECT_TRUE(f.contains(LineAddr{3}));
}

TEST(FaLru, LruLineReportsOldest)
{
    FaLru f(3);
    EXPECT_FALSE(f.lruLine().has_value());
    f.insert(LineAddr{10});
    f.insert(LineAddr{20});
    EXPECT_EQ(*f.lruLine(), LineAddr{10});
    f.touch(LineAddr{10});
    EXPECT_EQ(*f.lruLine(), LineAddr{20});
}

TEST(FaLru, ClearEmpties)
{
    FaLru f(2);
    f.insert(LineAddr{1});
    f.clear();
    EXPECT_EQ(f.size(), 0u);
    EXPECT_FALSE(f.contains(LineAddr{1}));
}

TEST(FaLruDeath, ZeroCapacityRejected)
{
    EXPECT_DEATH(FaLru{0}, "capacity");
}

TEST(FaLruDeath, DoubleInsertPanics)
{
    FaLru f(2);
    f.insert(LineAddr{1});
    EXPECT_DEATH(f.insert(LineAddr{1}), "resident");
}

/**
 * Property test: FaLru behaves identically to a reference
 * std::list-based LRU model under a random operation mix, for several
 * capacities.
 */
class FaLruProperty : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(FaLruProperty, MatchesReferenceModel)
{
    const std::size_t cap = GetParam();
    FaLru f(cap);

    std::list<LineAddr> ref;  // front = MRU
    auto ref_contains = [&](LineAddr a) {
        for (LineAddr x : ref)
            if (x == a)
                return true;
        return false;
    };

    Pcg32 rng(2024);
    for (int step = 0; step < 20000; ++step) {
        LineAddr a{rng.below(static_cast<std::uint32_t>(cap * 3))};
        switch (rng.below(3)) {
          case 0: {  // access (touch-or-insert)
            bool hit = f.touch(a);
            EXPECT_EQ(hit, ref_contains(a));
            if (hit) {
                ref.remove(a);
                ref.push_front(a);
            } else {
                auto ev = f.insert(a);
                if (ref.size() == cap) {
                    ASSERT_TRUE(ev.has_value());
                    EXPECT_EQ(*ev, ref.back());
                    ref.pop_back();
                } else {
                    EXPECT_FALSE(ev.has_value());
                }
                ref.push_front(a);
            }
            break;
          }
          case 1: {  // erase
            bool had = ref_contains(a);
            EXPECT_EQ(f.erase(a), had);
            if (had)
                ref.remove(a);
            break;
          }
          default: {  // read-only checks
            EXPECT_EQ(f.contains(a), ref_contains(a));
            EXPECT_EQ(f.size(), ref.size());
            if (!ref.empty()) {
                EXPECT_EQ(*f.lruLine(), ref.back());
            }
            break;
          }
        }
        ASSERT_LE(f.size(), cap);
    }
}

INSTANTIATE_TEST_SUITE_P(Capacities, FaLruProperty,
                         ::testing::Values(1, 2, 8, 64, 256));

/**
 * O(1)-per-op reference model: the std::list + iterator-map LRU the
 * flat implementation replaced.  Mirrors the FaLru API exactly so a
 * long random run can compare outcomes op for op.
 */
class ListLru
{
  public:
    explicit ListLru(std::size_t num_lines) : cap(num_lines) {}

    bool contains(LineAddr a) const { return map.count(a.value()) > 0; }

    bool
    touch(LineAddr a)
    {
        auto it = map.find(a.value());
        if (it == map.end())
            return false;
        lru.splice(lru.begin(), lru, it->second);
        return true;
    }

    std::optional<LineAddr>
    insert(LineAddr a)
    {
        std::optional<LineAddr> evicted;
        if (map.size() == cap) {
            evicted = LineAddr{lru.back()};
            map.erase(lru.back());
            lru.pop_back();
        }
        lru.push_front(a.value());
        map[a.value()] = lru.begin();
        return evicted;
    }

    bool
    touchOrInsert(LineAddr a)
    {
        if (touch(a))
            return true;
        insert(a);
        return false;
    }

    bool
    erase(LineAddr a)
    {
        auto it = map.find(a.value());
        if (it == map.end())
            return false;
        lru.erase(it->second);
        map.erase(it);
        return true;
    }

    std::optional<LineAddr>
    lruLine() const
    {
        if (lru.empty())
            return std::nullopt;
        return LineAddr{lru.back()};
    }

    std::size_t size() const { return map.size(); }

  private:
    std::size_t cap;
    std::list<Addr> lru;  // front = MRU
    std::unordered_map<Addr, std::list<Addr>::iterator> map;
};

/**
 * Long-run equivalence: one million mixed touch / touchOrInsert /
 * insert / erase operations against the reference model, at the
 * oracle's capacity, with an address universe four times the
 * capacity so the full/recycle path (and its backward-shift table
 * deletions) runs constantly.
 */
TEST(FaLruProperty, MillionOpEquivalenceAgainstListReference)
{
    constexpr std::size_t cap = 256;
    FaLru f(cap);
    ListLru ref(cap);

    Pcg32 rng(424242);
    for (std::size_t step = 0; step < 1'000'000; ++step) {
        LineAddr a{Addr(rng.below(4 * cap)) * 64};
        switch (rng.below(8)) {
          case 0: {  // separate touch-then-insert access
            const bool hit = f.touch(a);
            ASSERT_EQ(hit, ref.touch(a)) << "step " << step;
            if (!hit) {
                auto ev = f.insert(a);
                auto rev = ref.insert(a);
                ASSERT_EQ(ev.has_value(), rev.has_value())
                    << "step " << step;
                if (ev.has_value()) {
                    ASSERT_EQ(*ev, *rev) << "step " << step;
                }
            }
            break;
          }
          case 1: {  // erase
            ASSERT_EQ(f.erase(a), ref.erase(a)) << "step " << step;
            break;
          }
          case 2: {  // read-only agreement
            ASSERT_EQ(f.contains(a), ref.contains(a))
                << "step " << step;
            ASSERT_EQ(f.size(), ref.size()) << "step " << step;
            ASSERT_EQ(f.lruLine().has_value(),
                      ref.lruLine().has_value())
                << "step " << step;
            if (f.lruLine().has_value()) {
                ASSERT_EQ(*f.lruLine(), *ref.lruLine())
                    << "step " << step;
            }
            break;
          }
          default: {  // combined access — the oracle's hot path
            ASSERT_EQ(f.touchOrInsert(a), ref.touchOrInsert(a))
                << "step " << step;
            break;
          }
        }
    }
    EXPECT_EQ(f.size(), ref.size());
}

} // namespace
} // namespace ccm
