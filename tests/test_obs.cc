/**
 * @file
 * Observability layer: JSON model, the stats document schema, interval
 * delta-correctness, per-set heatmaps, event tracing, and the
 * StatGroup/MemStats naming unification.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "hierarchy/memsys.hh"
#include "mct/classify_run.hh"
#include "obs/events.hh"
#include "obs/interval.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "obs/sink.hh"
#include "sim/experiment.hh"
#include "trace/vector_trace.hh"
#include "workloads/registry.hh"

using namespace ccm;
using obs::JsonValue;

namespace
{

/** A small real timing run with observers attached. */
RunOutput
observedRun(obs::IntervalSampler *sampler,
            obs::ClassifyEventTrace *events,
            const SystemConfig &cfg = baselineConfig(),
            std::size_t refs = 5000)
{
    auto wl = makeWorkload("go", refs, 7);
    VectorTrace trace = VectorTrace::capture(*wl);
    RunOutput r = runTiming(trace, cfg, [&](MemorySystem &mem) {
        mem.setAccessHook(
            [sampler, events](const AccessResult &, const MemStats &st) {
                if (events)
                    events->noteReference();
                if (sampler)
                    sampler->onAccess(st);
            });
        if (events)
            mem.mct().setLookupHook(events->hook());
    });
    if (sampler)
        sampler->finish(r.mem);
    return r;
}

/**
 * Alternating same-set, different-tag loads: with a direct-mapped
 * cache every access past the second is a miss whose evicted tag
 * matches the incoming one — the canonical conflict pattern.
 */
VectorTrace
pingPongTrace(std::size_t pairs, std::size_t cache_bytes = 16 * 1024)
{
    VectorTrace t("pingpong", {});
    for (std::size_t i = 0; i < pairs; ++i) {
        t.pushLoad(0);
        t.pushLoad(static_cast<Addr>(cache_bytes));
    }
    return t;
}

} // namespace

// ---- JSON model ----------------------------------------------------

TEST(ObsJson, ScalarRoundTrip)
{
    JsonValue doc = JsonValue::object();
    doc.set("u", JsonValue::uint(18446744073709551615ull));
    doc.set("i", JsonValue::integer(-42));
    doc.set("d", JsonValue::real(0.1));
    doc.set("b", JsonValue::boolean(true));
    doc.set("n", JsonValue::null());
    doc.set("s", JsonValue::str("hi \"there\"\n\tü"));

    auto parsed = JsonValue::parse(doc.toString());
    ASSERT_TRUE(parsed.ok()) << parsed.status().toString();
    const JsonValue &p = parsed.value();
    EXPECT_EQ(p.at("u").asU64(), 18446744073709551615ull);
    EXPECT_EQ(p.at("i").asI64(), -42);
    EXPECT_DOUBLE_EQ(p.at("d").asDouble(), 0.1);
    EXPECT_TRUE(p.at("b").asBool());
    EXPECT_TRUE(p.at("n").isNull());
    EXPECT_EQ(p.at("s").asString(), "hi \"there\"\n\tü");
    // A second serialize must be byte-identical (stable ordering).
    EXPECT_EQ(p.toString(), doc.toString());
}

TEST(ObsJson, ParseErrorsAreStatusNotDeath)
{
    for (const char *bad :
         {"", "{", "[1,]", "{\"a\":}", "tru", "\"\\q\"", "1 2",
          "{\"a\":1,}"}) {
        auto r = JsonValue::parse(bad);
        EXPECT_FALSE(r.ok()) << "accepted: " << bad;
    }
}

TEST(ObsJson, ObjectSetOverwritesInPlace)
{
    JsonValue o = JsonValue::object();
    o.set("a", JsonValue::uint(1));
    o.set("b", JsonValue::uint(2));
    o.set("a", JsonValue::uint(3));
    ASSERT_EQ(o.size(), 2u);
    EXPECT_EQ(o.members()[0].first, "a");
    EXPECT_EQ(o.at("a").asU64(), 3u);
}

// ---- Schema golden -------------------------------------------------

TEST(ObsSchema, RunDocumentGolden)
{
    obs::IntervalSampler sampler(1000);
    RunOutput r = observedRun(&sampler, nullptr);
    JsonValue doc = obs::runDocument("go", r, &sampler);

    // Golden header: these are the pinned on-disk values.  If this
    // test breaks, readers of old files break too — bump
    // kStatsSchemaVersion instead of silently changing the schema.
    EXPECT_EQ(doc.at("schema").asString(), "ccm-stats");
    EXPECT_EQ(doc.at("schema_version").asU64(), 1u);
    EXPECT_EQ(doc.at("kind").asString(), "run");
    EXPECT_EQ(doc.at("workload").asString(), "go");

    // Required sections, by their exact names.
    for (const char *key : {"sim", "mem", "heatmap", "intervals"})
        EXPECT_TRUE(doc.at(key).isObject()) << key;
    for (const char *key : {"cycles", "instructions", "mem_refs", "ipc"})
        EXPECT_FALSE(doc.at("sim").at(key).isNull()) << key;

    // Every MemStats counter and derived ratio appears under its
    // canonical name.
    const JsonValue &counters = doc.at("mem").at("counters");
    MemStats::forEachField([&](const char *name, Count MemStats::*) {
        EXPECT_FALSE(counters.at(name).isNull()) << name;
    });
    const JsonValue &derived = doc.at("mem").at("derived");
    r.mem.forEachDerived([&](const char *name, double) {
        EXPECT_FALSE(derived.at(name).isNull()) << name;
    });

    // And the whole thing validates.
    Status s = obs::validateStatsDoc(doc);
    EXPECT_TRUE(s.isOk()) << s.toString();

    // It still validates after a JSON round trip (on-disk form).
    auto reparsed = JsonValue::parse(doc.toString());
    ASSERT_TRUE(reparsed.ok());
    EXPECT_TRUE(obs::validateStatsDoc(reparsed.value()).isOk());
}

TEST(ObsSchema, ValidatorRejectsTampering)
{
    obs::IntervalSampler sampler(1000);
    RunOutput r = observedRun(&sampler, nullptr);
    JsonValue doc = obs::runDocument("go", r, &sampler);

    JsonValue wrong_version = doc;
    wrong_version.set("schema_version", JsonValue::uint(99));
    EXPECT_EQ(obs::validateStatsDoc(wrong_version).code(),
              ErrorCode::Unsupported);

    JsonValue wrong_schema = doc;
    wrong_schema.set("schema", JsonValue::str("not-stats"));
    EXPECT_FALSE(obs::validateStatsDoc(wrong_schema).isOk());

    // Lost counters: the interval deltas no longer sum to the
    // aggregates.
    JsonValue torn = doc;
    JsonValue mem = torn.at("mem");
    JsonValue counters = mem.at("counters");
    counters.set("accesses",
                 JsonValue::uint(counters.at("accesses").asU64() + 1));
    mem.set("counters", std::move(counters));
    torn.set("mem", std::move(mem));
    Status s = obs::validateStatsDoc(torn);
    ASSERT_FALSE(s.isOk());
    EXPECT_NE(s.message().find("accesses"), std::string::npos);
}

// ---- Interval sampling ---------------------------------------------

TEST(ObsInterval, TimingDeltasSumToAggregates)
{
    obs::IntervalSampler sampler(700); // deliberately not a divisor
    RunOutput r = observedRun(&sampler, nullptr, victimConfig(true, true));

    ASSERT_GE(sampler.samples().size(), 2u);

    // Counter-wise: sum of every window's delta == final aggregate.
    MemStats sum;
    for (const auto &s : sampler.samples()) {
        MemStats::forEachField([&](const char *, Count MemStats::*f) {
            sum.*f += s.delta.*f;
        });
    }
    MemStats::forEachField([&](const char *name, Count MemStats::*f) {
        EXPECT_EQ(sum.*f, r.mem.*f) << name;
    });

    // Windows tile [1, accesses] contiguously.
    Count prev_last = 0;
    for (const auto &s : sampler.samples()) {
        EXPECT_EQ(s.firstRef, prev_last + 1);
        EXPECT_GE(s.lastRef, s.firstRef);
        prev_last = s.lastRef;
    }
    EXPECT_EQ(prev_last, r.mem.accesses);
}

TEST(ObsInterval, RollingWindowBoundsSamplesAndValidates)
{
    obs::IntervalSampler sampler(500);
    sampler.setRollingCapacity(4);
    RunOutput r = observedRun(&sampler, nullptr);

    // The window is bounded and the overflow is declared, not hidden.
    EXPECT_LE(sampler.samples().size(), 4u);
    EXPECT_GT(sampler.droppedSamples(), 0u);

    // The retained tail is still contiguous and ends at the last ref.
    const auto &samples = sampler.samples();
    for (std::size_t i = 1; i < samples.size(); ++i)
        EXPECT_EQ(samples[i].firstRef, samples[i - 1].lastRef + 1);
    EXPECT_EQ(samples.back().lastRef, r.mem.accesses);

    // dropped_samples rides along in the JSON, and a run document
    // carrying a rolling window still validates (the sum-of-deltas
    // invariant is skipped for documents that declare drops).
    JsonValue iv = obs::intervalsToJson(sampler);
    EXPECT_EQ(iv.at("dropped_samples").asU64(),
              sampler.droppedSamples());
    JsonValue doc = obs::runDocument("go", r, &sampler);
    Status s = obs::validateStatsDoc(doc);
    EXPECT_TRUE(s.isOk()) << s.toString();
}

TEST(ObsInterval, ClassifyChannelTracksAccuracy)
{
    VectorTrace trace = pingPongTrace(50);
    obs::IntervalSampler sampler(13);
    obs::ClassifyObservation watch(&sampler, nullptr);
    ClassifyConfig cfg;
    cfg.observer = &watch;
    ClassifyResult res = classifyRun(trace, cfg);
    sampler.finishClassify();

    Count refs = 0, misses = 0, scored = 0;
    for (const auto &s : sampler.samples()) {
        refs += s.delta.accesses;
        misses += s.delta.l1Misses;
        scored += s.accuracy.totalMisses();
    }
    EXPECT_EQ(refs, res.references);
    EXPECT_EQ(misses, res.misses);
    EXPECT_EQ(scored, res.scorer.totalMisses());
}

// ---- Per-set heatmaps ----------------------------------------------

TEST(ObsHeatmap, HistogramTotalsMatchAggregates)
{
    RunOutput r = observedRun(nullptr, nullptr);
    ASSERT_FALSE(r.heat.empty());
    EXPECT_EQ(r.heat.l1Misses.size(), r.heat.sets);

    Count miss_sum = 0, evict_sum = 0, lookup_sum = 0, conf_sum = 0;
    for (std::size_t s = 0; s < r.heat.sets; ++s) {
        miss_sum += r.heat.l1Misses[s];
        evict_sum += r.heat.l1Evictions[s];
        lookup_sum += r.heat.mctLookups[s];
        conf_sum += r.heat.mctConflicts[s];
    }
    EXPECT_EQ(miss_sum, r.mem.l1Misses);
    EXPECT_LE(evict_sum, miss_sum); // cold fills don't evict
    EXPECT_EQ(lookup_sum, r.mem.conflictMisses + r.mem.capacityMisses);
    EXPECT_EQ(conf_sum, r.mem.conflictMisses);
}

TEST(ObsHeatmap, PingPongConcentratesInOneSet)
{
    VectorTrace trace = pingPongTrace(100);
    RunOutput r = runTiming(trace, baselineConfig());
    ASSERT_FALSE(r.heat.empty());
    // All the traffic maps to set 0; every other set stays cold.
    EXPECT_GT(r.heat.l1Misses[0], 0u);
    for (std::size_t s = 1; s < r.heat.sets; ++s)
        EXPECT_EQ(r.heat.l1Misses[s], 0u) << "set " << s;

    JsonValue heat = obs::setHistogramsToJson(r.heat);
    ASSERT_GE(heat.at("top_sets").size(), 1u);
    EXPECT_EQ(heat.at("top_sets").elements()[0].at("set").asU64(), 0u);
}

// ---- Event tracing -------------------------------------------------

TEST(ObsEvents, CountsAndVerdictsUnderKnownConflictTrace)
{
    constexpr std::size_t pairs = 10;
    VectorTrace trace = pingPongTrace(pairs);
    obs::ClassifyEventTrace events;
    obs::ClassifyObservation watch(nullptr, &events);
    ClassifyConfig cfg;
    cfg.observer = &watch;
    cfg.lookupHook = events.hook();
    ClassifyResult res = classifyRun(trace, cfg);

    // Every access misses, every miss is one MCT lookup.
    ASSERT_EQ(res.misses, 2 * pairs);
    EXPECT_EQ(events.seen(), res.misses);
    EXPECT_EQ(events.recorded(), res.misses);
    EXPECT_EQ(events.dropped(), 0u);

    // First two lookups find an empty table; after that the evicted
    // tag always matches the incoming one.
    const auto &evs = events.events();
    ASSERT_EQ(evs.size(), 2 * pairs);
    EXPECT_FALSE(evs[0].storedValid);
    EXPECT_EQ(evs[0].verdict, MissClass::Capacity);
    EXPECT_FALSE(evs[1].storedValid);
    for (std::size_t i = 2; i < evs.size(); ++i) {
        EXPECT_TRUE(evs[i].storedValid) << i;
        EXPECT_EQ(evs[i].verdict, MissClass::Conflict) << i;
        EXPECT_EQ(evs[i].set, 0u);
        EXPECT_EQ(evs[i].storedTag, evs[i].incomingTag) << i;
        // classifyRun wires the oracle verdict back onto the event.
        EXPECT_TRUE(evs[i].oracleKnown) << i;
        EXPECT_TRUE(evs[i].agrees()) << i;
    }
    // Events are stamped with their 1-based reference index.
    EXPECT_EQ(evs[0].ref, 1u);
    EXPECT_EQ(evs.back().ref, 2 * pairs);
}

TEST(ObsEvents, RateLimitAndCap)
{
    VectorTrace trace = pingPongTrace(30); // 60 lookups
    obs::EventTraceOptions opt;
    opt.sampleEvery = 3;
    opt.maxEvents = 5;
    obs::ClassifyEventTrace events(opt);
    ClassifyConfig cfg;
    cfg.lookupHook = events.hook();
    classifyRun(trace, cfg);

    EXPECT_EQ(events.seen(), 60u);
    EXPECT_EQ(events.recorded(), 5u);
    EXPECT_EQ(events.dropped(), 55u);
    EXPECT_EQ(events.events().size(), 5u);
}

// ---- StatGroup unification -----------------------------------------

TEST(ObsStats, ExternalCountersShareOneNamingMechanism)
{
    MemStats stats;
    stats.accesses = 10;
    stats.l1Misses = 3;

    StatGroup group("mem");
    group.addExternal("probe", &stats.l1Misses);
    Counter &owned = group.add("owned");
    ++owned;
    stats.registerCounters(group);

    std::size_t n_fields = 0;
    MemStats::forEachField(
        [&](const char *, Count MemStats::*) { ++n_fields; });
    EXPECT_EQ(group.numStats(), n_fields + 2);

    // External counters track live mutations of the owner...
    stats.l1Misses = 7;
    StatSnapshot snap = group.snapshot();
    ASSERT_EQ(snap.size(), n_fields + 2);
    EXPECT_EQ(snap[0].name, "probe");
    EXPECT_EQ(snap[0].value, 7u);
    EXPECT_EQ(snap[1].name, "owned");
    EXPECT_EQ(snap[1].value, 1u);
    EXPECT_EQ(snap[2].name, "accesses");
    EXPECT_EQ(snap[2].value, 10u);

    // ... and resetAll touches only owned storage.
    group.resetAll();
    StatSnapshot after = group.snapshot();
    EXPECT_EQ(after[0].value, 7u);
    EXPECT_EQ(after[1].value, 0u);
    EXPECT_EQ(after[2].value, 10u);
}

// ---- Writers -------------------------------------------------------

TEST(ObsSink, TextAndCsvAreFlattenedViews)
{
    obs::IntervalSampler sampler(2500);
    RunOutput r = observedRun(&sampler, nullptr);
    JsonValue doc = obs::runDocument("go", r, &sampler);

    std::ostringstream text;
    obs::writeDocument(text, doc, obs::StatsFormat::Text);
    EXPECT_NE(text.str().find("schema ccm-stats"), std::string::npos);
    EXPECT_NE(text.str().find("mem.counters.accesses 5000"),
              std::string::npos);
    EXPECT_NE(text.str().find("intervals.samples.0.first_ref 1"),
              std::string::npos);

    std::ostringstream csv;
    obs::writeDocument(csv, doc, obs::StatsFormat::Csv);
    EXPECT_EQ(csv.str().rfind("stat,value\n", 0), 0u);
    EXPECT_NE(csv.str().find("mem.counters.accesses,5000"),
              std::string::npos);
}

TEST(ObsSink, SuiteDocumentRecordsErrorRows)
{
    SuiteReport report = runSuite(
        {"go", "no-such-workload"},
        [&](const std::string &name)
            -> Expected<std::unique_ptr<TraceSource>> {
            return makeWorkloadChecked(name, 2000, 3);
        },
        baselineConfig());
    ASSERT_EQ(report.failures(), 1u);

    JsonValue doc = obs::suiteDocument(report);
    Status s = obs::validateStatsDoc(doc);
    EXPECT_TRUE(s.isOk()) << s.toString();
    EXPECT_EQ(doc.at("summary").at("errored").asU64(), 1u);
    const JsonValue &bad = doc.at("rows").elements()[1];
    EXPECT_EQ(bad.at("workload").asString(), "no-such-workload");
    EXPECT_TRUE(bad.at("error").isString());
}

TEST(ObsSink, BenchDocumentValidates)
{
    TextTable t({"policy", "speedup"});
    std::size_t r0 = t.addRow("base");
    t.setNum(r0, 1, 1.0, 3);
    JsonValue doc = obs::benchDocument("unit_test", t, "note");
    Status s = obs::validateStatsDoc(doc);
    EXPECT_TRUE(s.isOk()) << s.toString();
    EXPECT_EQ(doc.at("table").at("headers").size(), 2u);
    EXPECT_EQ(doc.at("table").at("rows").size(), 1u);
}

// ---- Metrics: histogram bucket math --------------------------------

TEST(ObsMetrics, HistogramBucketBoundaries)
{
    using H = obs::Histogram;
    // Bucket i holds samples of bit width i: {0}, {1}, [2,3], [4,7]...
    EXPECT_EQ(H::bucketIndex(0), 0u);
    EXPECT_EQ(H::bucketIndex(1), 1u);
    EXPECT_EQ(H::bucketIndex(2), 2u);
    EXPECT_EQ(H::bucketIndex(3), 2u);
    EXPECT_EQ(H::bucketIndex(4), 3u);
    EXPECT_EQ(H::bucketIndex(7), 3u);
    EXPECT_EQ(H::bucketIndex(8), 4u);
    EXPECT_EQ(H::bucketIndex(~std::uint64_t{0}), 64u);

    EXPECT_EQ(H::bucketLo(0), 0u);
    EXPECT_EQ(H::bucketHi(0), 0u);
    EXPECT_EQ(H::bucketLo(64), std::uint64_t{1} << 63);
    EXPECT_EQ(H::bucketHi(64), ~std::uint64_t{0});

    // Every bucket's bounds map back into that bucket, and buckets
    // tile the uint64 range with no gap or overlap.
    for (std::size_t i = 0; i < H::kBuckets; ++i) {
        EXPECT_EQ(H::bucketIndex(H::bucketLo(i)), i) << i;
        EXPECT_EQ(H::bucketIndex(H::bucketHi(i)), i) << i;
        if (i > 0)
            EXPECT_EQ(H::bucketLo(i), H::bucketHi(i - 1) + 1) << i;
    }
}

TEST(ObsMetrics, HistogramPercentileGoldens)
{
    obs::Histogram h;
    // Empty: every percentile is 0 by definition.
    EXPECT_DOUBLE_EQ(h.snapshot().percentile(0.5), 0.0);

    // Five samples of 10 land in bucket 4 ([8,15]).  rank =
    // ceil(q*5), interpolated lo + (hi-lo)*rank/n within the bucket.
    for (int i = 0; i < 5; ++i)
        h.observe(10);
    obs::Histogram::Snapshot s = h.snapshot();
    EXPECT_EQ(s.count, 5u);
    EXPECT_EQ(s.sum, 50u);
    EXPECT_DOUBLE_EQ(s.percentile(0.50), 8.0 + 7.0 * 3.0 / 5.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.99), 15.0);
    EXPECT_DOUBLE_EQ(s.percentile(1.00), 15.0);

    // Uniform 1..100: p50's rank-50 sample sits in bucket 6 ([32,63],
    // 32 samples, 31 before it), 19 deep.
    obs::Histogram u;
    for (std::uint64_t v = 1; v <= 100; ++v)
        u.observe(v);
    obs::Histogram::Snapshot us = u.snapshot();
    EXPECT_EQ(us.count, 100u);
    EXPECT_DOUBLE_EQ(us.percentile(0.50),
                     32.0 + (63.0 - 32.0) * 19.0 / 32.0);

    // A single zero sample collapses to the point bucket.
    obs::Histogram z;
    z.observe(0);
    EXPECT_DOUBLE_EQ(z.snapshot().percentile(0.5), 0.0);
}

// ---- Metrics: registry ---------------------------------------------

TEST(ObsMetrics, RegistryReturnsStableInstruments)
{
    obs::MetricsRegistry reg;
    obs::Counter &a = reg.counter("t_hits_total", "hits");
    obs::Counter &b = reg.counter("t_hits_total", "hits");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(reg.size(), 1u);
    a.inc();
    b.inc(2);
    EXPECT_EQ(a.value(), 3u);

    obs::Gauge &g = reg.gauge("t_depth", "depth");
    g.set(5);
    g.add(-7);
    EXPECT_EQ(g.value(), -2);
    EXPECT_EQ(reg.size(), 2u);

    // Re-registering a name as a different type — or registering a
    // name outside the Prometheus charset — is a programmer error:
    // ccm_panic, which aborts (it is a bug, not input).
    EXPECT_DEATH(reg.gauge("t_hits_total", "no"), "re-registered");
    EXPECT_DEATH(reg.counter("bad name", "no"), "invalid metric name");
}

TEST(ObsMetrics, PrometheusExpositionGolden)
{
    obs::MetricsRegistry reg;
    reg.counter("t_requests_total", "Total requests").inc(3);
    reg.gauge("t_depth", "Queue depth").set(-2);
    obs::Histogram &h = reg.histogram("t_lat_us", "Latency");
    h.observe(0);
    h.observe(5);
    h.observe(5);
    h.observe(100);

    // Pinned byte-for-byte: Prometheus text exposition v0.0.4 with
    // cumulative buckets up to the highest occupied one, then +Inf.
    EXPECT_EQ(reg.prometheusText(),
              "# HELP t_requests_total Total requests\n"
              "# TYPE t_requests_total counter\n"
              "t_requests_total 3\n"
              "# HELP t_depth Queue depth\n"
              "# TYPE t_depth gauge\n"
              "t_depth -2\n"
              "# HELP t_lat_us Latency\n"
              "# TYPE t_lat_us histogram\n"
              "t_lat_us_bucket{le=\"0\"} 1\n"
              "t_lat_us_bucket{le=\"1\"} 1\n"
              "t_lat_us_bucket{le=\"3\"} 1\n"
              "t_lat_us_bucket{le=\"7\"} 3\n"
              "t_lat_us_bucket{le=\"15\"} 3\n"
              "t_lat_us_bucket{le=\"31\"} 3\n"
              "t_lat_us_bucket{le=\"63\"} 3\n"
              "t_lat_us_bucket{le=\"127\"} 4\n"
              "t_lat_us_bucket{le=\"+Inf\"} 4\n"
              "t_lat_us_sum 110\n"
              "t_lat_us_count 4\n");
}

TEST(ObsMetrics, MetricsDocumentValidatesAndRejectsTampering)
{
    obs::MetricsRegistry reg;
    reg.counter("t_total", "a counter").inc(7);
    obs::Histogram &h = reg.histogram("t_us", "a histogram");
    h.observe(1);
    h.observe(1000);

    JsonValue doc = obs::metricsDocument(reg);
    EXPECT_EQ(doc.at("kind").asString(), "metrics");
    Status ok = obs::validateStatsDoc(doc);
    EXPECT_TRUE(ok.isOk()) << ok.toString();

    // Survives the on-disk round trip.
    auto reparsed = JsonValue::parse(doc.toString());
    ASSERT_TRUE(reparsed.ok());
    EXPECT_TRUE(obs::validateStatsDoc(reparsed.value()).isOk());

    // An unknown instrument type is rejected...
    JsonValue bad_type = doc;
    JsonValue metrics = bad_type.at("metrics");
    JsonValue first = metrics.elements()[0];
    first.set("type", JsonValue::str("bogus"));
    JsonValue patched = JsonValue::array();
    patched.push(std::move(first));
    patched.push(metrics.elements()[1]);
    bad_type.set("metrics", std::move(patched));
    EXPECT_FALSE(obs::validateStatsDoc(bad_type).isOk());

    // ... and so is a histogram whose buckets disagree with count.
    JsonValue torn = doc;
    JsonValue arr = torn.at("metrics");
    JsonValue hist = arr.elements()[1];
    hist.set("count", JsonValue::uint(hist.at("count").asU64() + 1));
    JsonValue arr2 = JsonValue::array();
    arr2.push(arr.elements()[0]);
    arr2.push(std::move(hist));
    torn.set("metrics", std::move(arr2));
    EXPECT_FALSE(obs::validateStatsDoc(torn).isOk());
}

TEST(ObsMetrics, RegistryConcurrencyIsRaceFree)
{
    // TSan gate: concurrent registration of the same names plus hot
    // instrument updates from many threads.
    obs::MetricsRegistry reg;
    constexpr int kThreads = 8;
    constexpr std::uint64_t kPerThread = 10000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&reg] {
            obs::Counter &c = reg.counter("t_conc_total", "x");
            obs::Histogram &h = reg.histogram("t_conc_us", "x");
            for (std::uint64_t i = 0; i < kPerThread; ++i) {
                c.inc();
                h.observe(i & 1023);
            }
            (void)reg.prometheusText(); // render while racing
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(reg.size(), 2u);
    obs::Counter &c = reg.counter("t_conc_total", "x");
    EXPECT_EQ(c.value(), kThreads * kPerThread);
    obs::Histogram::Snapshot s =
        reg.histogram("t_conc_us", "x").snapshot();
    EXPECT_EQ(s.count, kThreads * kPerThread);
}

// ---- Span tracing --------------------------------------------------

TEST(ObsSpan, DisabledTracerRecordsNothing)
{
    obs::SpanTracer tracer;
    EXPECT_FALSE(tracer.enabled());
    tracer.record("x", "test", 0, 1);
    {
        obs::ScopedSpan span(tracer, "scoped", "test");
    }
    EXPECT_EQ(tracer.size(), 0u);
    EXPECT_EQ(tracer.dropped(), 0u);
    EXPECT_TRUE(tracer.flush().isOk()); // no path: a clean no-op
}

TEST(ObsSpan, TraceJsonIsWellFormedChromeTraceEvents)
{
    const std::string path =
        ::testing::TempDir() + "ccm_spans_test.json";
    obs::SpanTracer tracer;
    ASSERT_TRUE(tracer.enableToFile(path).isOk());
    ASSERT_TRUE(tracer.enabled());

    const std::uint64_t t0 = tracer.nowMicros();
    tracer.record("alpha", "suite", t0, t0 + 25);
    {
        obs::ScopedSpan span(tracer, "beta", "serve");
    }
    EXPECT_EQ(tracer.size(), 2u);

    auto parsed = obs::JsonValue::parse(tracer.traceJson());
    ASSERT_TRUE(parsed.ok()) << parsed.status().toString();
    const JsonValue &doc = parsed.value();
    const JsonValue &events = doc.at("traceEvents");
    ASSERT_TRUE(events.isArray());
    ASSERT_EQ(events.size(), 2u);
    for (const auto &e : events.elements()) {
        EXPECT_TRUE(e.at("name").isString());
        EXPECT_TRUE(e.at("cat").isString());
        EXPECT_EQ(e.at("ph").asString(), "X");
        EXPECT_TRUE(e.at("ts").isNumber());
        EXPECT_TRUE(e.at("dur").isNumber());
        EXPECT_FALSE(e.at("pid").isNull());
        EXPECT_FALSE(e.at("tid").isNull());
    }
    EXPECT_EQ(events.elements()[0].at("name").asString(), "alpha");
    EXPECT_EQ(events.elements()[0].at("dur").asU64(), 25u);
    EXPECT_EQ(doc.at("ccm").at("dropped_spans").asU64(), 0u);

    // flush() writes the same document to the enable-time path and
    // is non-destructive.
    ASSERT_TRUE(tracer.flush().isOk());
    std::ifstream in(path);
    std::stringstream file;
    file << in.rdbuf();
    auto reread = obs::JsonValue::parse(file.str());
    ASSERT_TRUE(reread.ok()) << reread.status().toString();
    EXPECT_EQ(reread.value().at("traceEvents").size(), 2u);
    EXPECT_EQ(tracer.size(), 2u);
    std::remove(path.c_str());
}
