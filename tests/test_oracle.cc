/**
 * @file
 * Unit tests for the classic-definition (Hill) oracle classifier and
 * the accuracy scorer.
 */

#include <gtest/gtest.h>

#include "mct/accuracy.hh"
#include "mct/oracle.hh"

namespace ccm
{
namespace
{

TEST(Oracle, FirstTouchIsCompulsory)
{
    OracleClassifier o(4);
    EXPECT_EQ(o.observe(LineAddr{0x40}, true), MissClass::Compulsory);
}

TEST(Oracle, RecentLineMissIsConflict)
{
    OracleClassifier o(4);
    o.observe(LineAddr{0x40}, true);   // compulsory; now in FA model
    // The real cache misses 0x40 again while the FA model still holds
    // it: a conflict miss.
    EXPECT_EQ(o.observe(LineAddr{0x40}, true), MissClass::Conflict);
}

TEST(Oracle, EvictedFromFaIsCapacity)
{
    OracleClassifier o(2);   // tiny FA model
    o.observe(LineAddr{0x000}, true);
    o.observe(LineAddr{0x040}, true);
    o.observe(LineAddr{0x080}, true);  // evicts 0x000 from the FA model
    EXPECT_EQ(o.observe(LineAddr{0x000}, true), MissClass::Capacity);
}

TEST(Oracle, HitsStillUpdateFaRecency)
{
    OracleClassifier o(2);
    o.observe(LineAddr{0x000}, true);
    o.observe(LineAddr{0x040}, true);
    o.observe(LineAddr{0x000}, false);  // real-cache hit refreshes 0x000
    o.observe(LineAddr{0x080}, true);   // evicts 0x040 (LRU), not 0x000
    EXPECT_EQ(o.observe(LineAddr{0x000}, true), MissClass::Conflict);
    EXPECT_EQ(o.observe(LineAddr{0x040}, true), MissClass::Capacity);
}

TEST(Oracle, FaOccupancyBounded)
{
    OracleClassifier o(3);
    for (Addr a = 0; a < 100 * 64; a += 64)
        o.observe(LineAddr{a}, true);
    EXPECT_LE(o.faOccupancy(), 3u);
}

TEST(Oracle, ClearForgetsSeenSet)
{
    OracleClassifier o(4);
    o.observe(LineAddr{0x40}, true);
    o.clear();
    EXPECT_EQ(o.observe(LineAddr{0x40}, true), MissClass::Compulsory);
}

TEST(Oracle, WorkingSetLargerThanFaIsCapacity)
{
    // Cyclic sweep over twice the FA capacity: after warmup, every
    // miss is a capacity miss (the defining anti-conflict pattern).
    OracleClassifier o(8);
    for (int pass = 0; pass < 3; ++pass) {
        for (Addr a = 0; a < 16 * 64; a += 64) {
            MissClass c = o.observe(LineAddr{a}, true);
            if (pass > 0) {
                EXPECT_EQ(c, MissClass::Capacity);
            }
        }
    }
}

// ---- AccuracyScorer ------------------------------------------------

TEST(Accuracy, PerfectAgreement)
{
    AccuracyScorer s;
    s.record(MissClass::Conflict, MissClass::Conflict);
    s.record(MissClass::Capacity, MissClass::Capacity);
    EXPECT_DOUBLE_EQ(s.conflictAccuracy(), 100.0);
    EXPECT_DOUBLE_EQ(s.capacityAccuracy(), 100.0);
    EXPECT_DOUBLE_EQ(s.overallAccuracy(), 100.0);
}

TEST(Accuracy, ConfusionMatrixMath)
{
    AccuracyScorer s;
    // 3 oracle conflicts: 2 identified, 1 missed.
    s.record(MissClass::Conflict, MissClass::Conflict);
    s.record(MissClass::Conflict, MissClass::Conflict);
    s.record(MissClass::Capacity, MissClass::Conflict);
    // 2 oracle capacities: 1 identified, 1 wrongly conflict.
    s.record(MissClass::Capacity, MissClass::Capacity);
    s.record(MissClass::Conflict, MissClass::Capacity);

    EXPECT_NEAR(s.conflictAccuracy(), 200.0 / 3.0, 1e-9);
    EXPECT_DOUBLE_EQ(s.capacityAccuracy(), 50.0);
    EXPECT_DOUBLE_EQ(s.overallAccuracy(), 60.0);
    EXPECT_EQ(s.oracleConflicts(), 3u);
    EXPECT_EQ(s.oracleCapacities(), 2u);
    EXPECT_EQ(s.totalMisses(), 5u);
    EXPECT_DOUBLE_EQ(s.conflictFraction(), 0.6);
}

TEST(Accuracy, CompulsoryGroupsWithCapacity)
{
    AccuracyScorer s;
    s.record(MissClass::Capacity, MissClass::Compulsory);
    EXPECT_EQ(s.oracleCapacities(), 1u);
    EXPECT_EQ(s.compulsoryMisses(), 1u);
    EXPECT_DOUBLE_EQ(s.capacityAccuracy(), 100.0);
}

TEST(Accuracy, EmptyScorerIsZeroNotNan)
{
    AccuracyScorer s;
    EXPECT_DOUBLE_EQ(s.conflictAccuracy(), 0.0);
    EXPECT_DOUBLE_EQ(s.capacityAccuracy(), 0.0);
    EXPECT_DOUBLE_EQ(s.overallAccuracy(), 0.0);
}

TEST(Accuracy, MergePoolsCounts)
{
    AccuracyScorer a, b;
    a.record(MissClass::Conflict, MissClass::Conflict);
    b.record(MissClass::Capacity, MissClass::Conflict);
    b.record(MissClass::Capacity, MissClass::Capacity);
    a.merge(b);
    EXPECT_EQ(a.totalMisses(), 3u);
    EXPECT_DOUBLE_EQ(a.conflictAccuracy(), 50.0);
    EXPECT_DOUBLE_EQ(a.capacityAccuracy(), 100.0);
}

TEST(Accuracy, ClearResets)
{
    AccuracyScorer s;
    s.record(MissClass::Conflict, MissClass::Conflict);
    s.clear();
    EXPECT_EQ(s.totalMisses(), 0u);
}

} // namespace
} // namespace ccm
