/**
 * @file
 * Unit tests for src/common: bit utilities, the PCG32 generator, the
 * statistics helpers and the text-table formatter.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/addr_types.hh"
#include "common/bitutil.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/table.hh"

namespace ccm
{
namespace
{

// ---- address-domain types -----------------------------------------

// The deliberate domain mix-up IS the test: every cross-domain
// conversion that used to be a silent off-by-offsetBits bug must now
// fail to compile.  is_convertible checks exactly "would an implicit
// pass compile", so these asserts are the negative compile tests.
static_assert(!std::is_convertible_v<ByteAddr, LineAddr>,
              "byte->line must go through CacheGeometry::lineOf");
static_assert(!std::is_convertible_v<LineAddr, ByteAddr>,
              "line->byte must be explicit (LineAddr::asByte)");
static_assert(!std::is_convertible_v<Tag, SetIndex>);
static_assert(!std::is_convertible_v<SetIndex, Tag>);
static_assert(!std::is_convertible_v<Tag, LineAddr>);
static_assert(!std::is_convertible_v<WayIndex, SetIndex>);
static_assert(!std::is_convertible_v<Addr, ByteAddr>,
              "raw integers never silently enter a domain");
static_assert(!std::is_convertible_v<Addr, Tag>);
static_assert(!std::is_convertible_v<ByteAddr, Addr>,
              "leaving a domain requires .value()");
// ...and the wrappers must stay free: same size as the raw integer,
// trivially copyable, so they vanish at -O1.
static_assert(sizeof(ByteAddr) == sizeof(Addr));
static_assert(sizeof(LineAddr) == sizeof(Addr));
static_assert(std::is_trivially_copyable_v<ByteAddr>);

TEST(AddrTypes, ValueRoundTrips)
{
    EXPECT_EQ(ByteAddr{0xDEAD}.value(), 0xDEADu);
    EXPECT_EQ(Tag{42}.value(), 42u);
    EXPECT_EQ(SetIndex{7}.value(), 7u);
    EXPECT_EQ(WayIndex{3}.value(), 3u);
}

TEST(AddrTypes, ComparisonsWithinDomain)
{
    EXPECT_EQ(ByteAddr{5}, ByteAddr{5});
    EXPECT_NE(ByteAddr{5}, ByteAddr{6});
    EXPECT_LT(LineAddr{0x40}, LineAddr{0x80});
    EXPECT_GE(Tag{9}, Tag{9});
}

TEST(AddrTypes, AdvancedByDisplacesBytes)
{
    EXPECT_EQ(ByteAddr{0x100}.advancedBy(0x40), ByteAddr{0x140});
}

TEST(AddrTypes, LineAsByteKeepsValue)
{
    EXPECT_EQ(LineAddr{0x12340}.asByte(), ByteAddr{0x12340});
}

TEST(AddrTypes, HashableInUnorderedContainers)
{
    EXPECT_EQ(std::hash<LineAddr>{}(LineAddr{0x40}),
              std::hash<LineAddr>{}(LineAddr{0x40}));
    EXPECT_EQ(std::hash<Tag>{}(Tag{1}), std::hash<Tag>{}(Tag{1}));
}

TEST(AddrTypes, InvalidSentinels)
{
    EXPECT_EQ(invalidByteAddr.value(), invalidAddr);
    EXPECT_EQ(invalidLineAddr.value(), invalidAddr);
    EXPECT_NE(invalidLineAddr, LineAddr{0});
}

// ---- bitutil ------------------------------------------------------

TEST(BitUtil, PowerOfTwoDetection)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(64));
    EXPECT_FALSE(isPowerOfTwo(65));
    EXPECT_TRUE(isPowerOfTwo(std::uint64_t{1} << 63));
    EXPECT_FALSE(isPowerOfTwo((std::uint64_t{1} << 63) + 1));
}

TEST(BitUtil, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(64), 6u);
    EXPECT_EQ(floorLog2(16 * 1024), 14u);
    EXPECT_EQ(floorLog2(std::uint64_t{1} << 40), 40u);
}

TEST(BitUtil, FloorLog2RoundsDown)
{
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(63), 5u);
    EXPECT_EQ(floorLog2(65), 6u);
}

TEST(BitUtil, LowMask)
{
    EXPECT_EQ(lowMask(0), 0u);
    EXPECT_EQ(lowMask(1), 1u);
    EXPECT_EQ(lowMask(8), 0xFFu);
    EXPECT_EQ(lowMask(64), ~std::uint64_t{0});
    EXPECT_EQ(lowMask(65), ~std::uint64_t{0});
}

TEST(BitUtil, BitField)
{
    EXPECT_EQ(bitField(0xABCD, 0, 4), 0xDu);
    EXPECT_EQ(bitField(0xABCD, 4, 4), 0xCu);
    EXPECT_EQ(bitField(0xABCD, 8, 8), 0xABu);
    EXPECT_EQ(bitField(~std::uint64_t{0}, 10, 3), 0x7u);
}

// ---- Pcg32 --------------------------------------------------------

TEST(Pcg32, DeterministicForSameSeed)
{
    Pcg32 a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Pcg32, DifferentSeedsDiffer)
{
    Pcg32 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 5);
}

TEST(Pcg32, DifferentStreamsDiffer)
{
    Pcg32 a(7, 1), b(7, 2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 5);
}

TEST(Pcg32, BelowStaysInRange)
{
    Pcg32 g(42);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(g.below(17), 17u);
}

TEST(Pcg32, BelowCoversRange)
{
    Pcg32 g(42);
    bool seen[8] = {};
    for (int i = 0; i < 1000; ++i)
        seen[g.below(8)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Pcg32, UniformInUnitInterval)
{
    Pcg32 g(42);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = g.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Pcg32, ChanceMatchesProbability)
{
    Pcg32 g(42);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += g.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

// ---- stats --------------------------------------------------------

TEST(Stats, CounterIncrements)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 5;
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, SafeRatioHandlesZeroDenominator)
{
    EXPECT_DOUBLE_EQ(safeRatio(5, 0), 0.0);
    EXPECT_DOUBLE_EQ(safeRatio(1, 2), 0.5);
}

TEST(Stats, PctScales)
{
    EXPECT_DOUBLE_EQ(pct(1, 4), 25.0);
    EXPECT_DOUBLE_EQ(pct(0, 0), 0.0);
}

TEST(Stats, GroupRegistersAndDumps)
{
    StatGroup g("l1");
    Counter &hits = g.add("hits");
    Counter &misses = g.add("misses");
    ++hits;
    ++hits;
    ++misses;
    std::ostringstream os;
    g.dump(os);
    EXPECT_EQ(os.str(), "l1.hits 2\nl1.misses 1\n");
    g.resetAll();
    EXPECT_EQ(hits.value(), 0u);
    EXPECT_EQ(misses.value(), 0u);
}

// ---- TextTable ----------------------------------------------------

TEST(TextTable, AlignsColumns)
{
    TextTable t({"name", "v"});
    auto r = t.addRow("x");
    t.setNum(r, 1, 1.5, 1);
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("1.5"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TextTable, NumericPrecision)
{
    TextTable t({"r", "v"});
    auto r = t.addRow("a");
    t.setNum(r, 1, 3.14159, 3);
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("3.142"), std::string::npos);
}

TEST(TextTable, RowAndColCounts)
{
    TextTable t({"a", "b", "c"});
    EXPECT_EQ(t.cols(), 3u);
    EXPECT_EQ(t.rows(), 0u);
    t.addRow("r1");
    t.addRow("r2");
    EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTableDeath, OutOfRangeCellPanics)
{
    TextTable t({"a", "b"});
    t.addRow("r");
    EXPECT_DEATH(t.set(0, 5, "x"), "out of range");
    EXPECT_DEATH(t.set(3, 0, "x"), "out of range");
}

} // namespace
} // namespace ccm
