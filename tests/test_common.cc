/**
 * @file
 * Unit tests for src/common: bit utilities, the PCG32 generator, the
 * statistics helpers, the text-table formatter, the capability-
 * annotated synchronization layer (including the runtime lock-rank
 * checker), the signal-safe shutdown latch, and the seedable
 * spatial-sampling hash (uniformity property tests).  The sync and
 * shutdown tests run under the tsan preset in CI.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <sstream>
#include <thread>
#include <vector>

#include <poll.h>

#include "common/addr_types.hh"
#include "common/bitutil.hh"
#include "common/log.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/sample_hash.hh"
#include "common/shutdown.hh"
#include "common/stats.hh"
#include "common/sync.hh"
#include "common/table.hh"

namespace ccm
{
namespace
{

// ---- address-domain types -----------------------------------------

// The deliberate domain mix-up IS the test: every cross-domain
// conversion that used to be a silent off-by-offsetBits bug must now
// fail to compile.  is_convertible checks exactly "would an implicit
// pass compile", so these asserts are the negative compile tests.
static_assert(!std::is_convertible_v<ByteAddr, LineAddr>,
              "byte->line must go through CacheGeometry::lineOf");
static_assert(!std::is_convertible_v<LineAddr, ByteAddr>,
              "line->byte must be explicit (LineAddr::asByte)");
static_assert(!std::is_convertible_v<Tag, SetIndex>);
static_assert(!std::is_convertible_v<SetIndex, Tag>);
static_assert(!std::is_convertible_v<Tag, LineAddr>);
static_assert(!std::is_convertible_v<WayIndex, SetIndex>);
static_assert(!std::is_convertible_v<Addr, ByteAddr>,
              "raw integers never silently enter a domain");
static_assert(!std::is_convertible_v<Addr, Tag>);
static_assert(!std::is_convertible_v<ByteAddr, Addr>,
              "leaving a domain requires .value()");
// ...and the wrappers must stay free: same size as the raw integer,
// trivially copyable, so they vanish at -O1.
static_assert(sizeof(ByteAddr) == sizeof(Addr));
static_assert(sizeof(LineAddr) == sizeof(Addr));
static_assert(std::is_trivially_copyable_v<ByteAddr>);

TEST(AddrTypes, ValueRoundTrips)
{
    EXPECT_EQ(ByteAddr{0xDEAD}.value(), 0xDEADu);
    EXPECT_EQ(Tag{42}.value(), 42u);
    EXPECT_EQ(SetIndex{7}.value(), 7u);
    EXPECT_EQ(WayIndex{3}.value(), 3u);
}

TEST(AddrTypes, ComparisonsWithinDomain)
{
    EXPECT_EQ(ByteAddr{5}, ByteAddr{5});
    EXPECT_NE(ByteAddr{5}, ByteAddr{6});
    EXPECT_LT(LineAddr{0x40}, LineAddr{0x80});
    EXPECT_GE(Tag{9}, Tag{9});
}

TEST(AddrTypes, AdvancedByDisplacesBytes)
{
    EXPECT_EQ(ByteAddr{0x100}.advancedBy(0x40), ByteAddr{0x140});
}

TEST(AddrTypes, LineAsByteKeepsValue)
{
    EXPECT_EQ(LineAddr{0x12340}.asByte(), ByteAddr{0x12340});
}

TEST(AddrTypes, HashableInUnorderedContainers)
{
    EXPECT_EQ(std::hash<LineAddr>{}(LineAddr{0x40}),
              std::hash<LineAddr>{}(LineAddr{0x40}));
    EXPECT_EQ(std::hash<Tag>{}(Tag{1}), std::hash<Tag>{}(Tag{1}));
}

TEST(AddrTypes, InvalidSentinels)
{
    EXPECT_EQ(invalidByteAddr.value(), invalidAddr);
    EXPECT_EQ(invalidLineAddr.value(), invalidAddr);
    EXPECT_NE(invalidLineAddr, LineAddr{0});
}

// ---- bitutil ------------------------------------------------------

TEST(BitUtil, PowerOfTwoDetection)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(64));
    EXPECT_FALSE(isPowerOfTwo(65));
    EXPECT_TRUE(isPowerOfTwo(std::uint64_t{1} << 63));
    EXPECT_FALSE(isPowerOfTwo((std::uint64_t{1} << 63) + 1));
}

TEST(BitUtil, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(64), 6u);
    EXPECT_EQ(floorLog2(16 * 1024), 14u);
    EXPECT_EQ(floorLog2(std::uint64_t{1} << 40), 40u);
}

TEST(BitUtil, FloorLog2RoundsDown)
{
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(63), 5u);
    EXPECT_EQ(floorLog2(65), 6u);
}

TEST(BitUtil, LowMask)
{
    EXPECT_EQ(lowMask(0), 0u);
    EXPECT_EQ(lowMask(1), 1u);
    EXPECT_EQ(lowMask(8), 0xFFu);
    EXPECT_EQ(lowMask(64), ~std::uint64_t{0});
    EXPECT_EQ(lowMask(65), ~std::uint64_t{0});
}

TEST(BitUtil, BitField)
{
    EXPECT_EQ(bitField(0xABCD, 0, 4), 0xDu);
    EXPECT_EQ(bitField(0xABCD, 4, 4), 0xCu);
    EXPECT_EQ(bitField(0xABCD, 8, 8), 0xABu);
    EXPECT_EQ(bitField(~std::uint64_t{0}, 10, 3), 0x7u);
}

// ---- Pcg32 --------------------------------------------------------

TEST(Pcg32, DeterministicForSameSeed)
{
    Pcg32 a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Pcg32, DifferentSeedsDiffer)
{
    Pcg32 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 5);
}

TEST(Pcg32, DifferentStreamsDiffer)
{
    Pcg32 a(7, 1), b(7, 2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 5);
}

TEST(Pcg32, BelowStaysInRange)
{
    Pcg32 g(42);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(g.below(17), 17u);
}

TEST(Pcg32, BelowCoversRange)
{
    Pcg32 g(42);
    bool seen[8] = {};
    for (int i = 0; i < 1000; ++i)
        seen[g.below(8)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Pcg32, UniformInUnitInterval)
{
    Pcg32 g(42);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = g.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Pcg32, ChanceMatchesProbability)
{
    Pcg32 g(42);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += g.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

// ---- stats --------------------------------------------------------

TEST(Stats, CounterIncrements)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 5;
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, SafeRatioHandlesZeroDenominator)
{
    EXPECT_DOUBLE_EQ(safeRatio(5, 0), 0.0);
    EXPECT_DOUBLE_EQ(safeRatio(1, 2), 0.5);
}

TEST(Stats, PctScales)
{
    EXPECT_DOUBLE_EQ(pct(1, 4), 25.0);
    EXPECT_DOUBLE_EQ(pct(0, 0), 0.0);
}

TEST(Stats, GroupRegistersAndDumps)
{
    StatGroup g("l1");
    Counter &hits = g.add("hits");
    Counter &misses = g.add("misses");
    ++hits;
    ++hits;
    ++misses;
    std::ostringstream os;
    g.dump(os);
    EXPECT_EQ(os.str(), "l1.hits 2\nl1.misses 1\n");
    g.resetAll();
    EXPECT_EQ(hits.value(), 0u);
    EXPECT_EQ(misses.value(), 0u);
}

// ---- TextTable ----------------------------------------------------

TEST(TextTable, AlignsColumns)
{
    TextTable t({"name", "v"});
    auto r = t.addRow("x");
    t.setNum(r, 1, 1.5, 1);
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("1.5"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TextTable, NumericPrecision)
{
    TextTable t({"r", "v"});
    auto r = t.addRow("a");
    t.setNum(r, 1, 3.14159, 3);
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("3.142"), std::string::npos);
}

TEST(TextTable, RowAndColCounts)
{
    TextTable t({"a", "b", "c"});
    EXPECT_EQ(t.cols(), 3u);
    EXPECT_EQ(t.rows(), 0u);
    t.addRow("r1");
    t.addRow("r2");
    EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTableDeath, OutOfRangeCellPanics)
{
    TextTable t({"a", "b"});
    t.addRow("r");
    EXPECT_DEATH(t.set(0, 5, "x"), "out of range");
    EXPECT_DEATH(t.set(3, 0, "x"), "out of range");
}

// ---- capability-annotated sync layer -------------------------------

TEST(Sync, MutexLockProvidesMutualExclusion)
{
    Mutex mu;
    long counter = 0;
    std::vector<std::thread> threads;
    threads.reserve(4);
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < 10'000; ++i) {
                MutexLock lock(mu);
                ++counter;
            }
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(counter, 40'000);
}

TEST(Sync, TryLockReportsContention)
{
    Mutex mu;
    ASSERT_TRUE(mu.tryLock());
    std::thread other([&] { EXPECT_FALSE(mu.tryLock()); });
    other.join();
    mu.unlock();
    ASSERT_TRUE(mu.tryLock());
    mu.unlock();
}

TEST(Sync, CondVarHandsOffThroughPredicate)
{
    Mutex mu;
    CondVar cv;
    int stage = 0;

    std::thread consumer([&] {
        MutexLock lock(mu);
        cv.wait(mu, [&]() CCM_REQUIRES(mu) { return stage == 1; });
        stage = 2;
        cv.notifyAll();
    });

    {
        MutexLock lock(mu);
        stage = 1;
    }
    cv.notifyAll();
    {
        MutexLock lock(mu);
        cv.wait(mu, [&]() CCM_REQUIRES(mu) { return stage == 2; });
        EXPECT_EQ(stage, 2);
    }
    consumer.join();
}

TEST(Sync, CondVarWaitForTimesOutHonestly)
{
    Mutex mu;
    CondVar cv;
    MutexLock lock(mu);
    const bool satisfied =
        cv.waitFor(mu, std::chrono::milliseconds(5),
                   [&]() CCM_REQUIRES(mu) { return false; });
    EXPECT_FALSE(satisfied);
}

TEST(Sync, SharedMutexAdmitsConcurrentReaders)
{
    SharedMutex mu;
    std::atomic<int> readers{0};

    // Two readers must be able to hold the shared side at once; each
    // waits until it has seen the other before releasing.
    auto reader = [&] {
        ReaderLock lock(mu);
        ++readers;
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(10);
        while (readers.load() < 2 &&
               std::chrono::steady_clock::now() < deadline)
            std::this_thread::yield();
        EXPECT_EQ(readers.load(), 2);
    };
    std::thread a(reader), b(reader);
    a.join();
    b.join();

    // And the writer side still excludes.
    long value = 0;
    std::vector<std::thread> writers;
    writers.reserve(2);
    for (int t = 0; t < 2; ++t) {
        writers.emplace_back([&] {
            for (int i = 0; i < 10'000; ++i) {
                WriterLock lock(mu);
                ++value;
            }
        });
    }
    for (auto &th : writers)
        th.join();
    EXPECT_EQ(value, 20'000);
}

// ---- runtime lock-rank checker -------------------------------------

TEST(SyncLockRank, AscendingAcquisitionIsLegal)
{
    Mutex low(LockRank::ServeDaemon, "rank-test-low");
    Mutex high(LockRank::ServeQueue, "rank-test-high");
    MutexLock a(low);
    MutexLock b(high); // 10 -> 50: fine
    SUCCEED();
}

TEST(SyncLockRank, InversionIsCaughtDeterministically)
{
    if (!lockRankChecksEnabled())
        GTEST_SKIP() << "built without CCM_LOCK_RANK_CHECK";

    Mutex low(LockRank::ServeDaemon, "rank-test-low");
    Mutex high(LockRank::ServeQueue, "rank-test-high");

    ScopedFatalThrow guard;
    MutexLock a(high);
    // The deliberate inversion: acquiring rank 10 while holding rank
    // 50 must die on the spot — no deadlock, no second thread needed.
    EXPECT_THROW(MutexLock b(low), FatalError);

    // The checker fired *before* touching the lock, so the held-rank
    // state is intact and a legal follow-up still works.
    Mutex higher(LockRank::ThreadPool, "rank-test-higher");
    MutexLock c(higher);
}

TEST(SyncLockRank, SameRankReacquisitionIsAnInversion)
{
    if (!lockRankChecksEnabled())
        GTEST_SKIP() << "built without CCM_LOCK_RANK_CHECK";

    // Two locks of the same rank held together would allow an AB/BA
    // deadlock between two threads; the checker treats "equal" as
    // inverted, which also catches same-mutex self-deadlock.
    Mutex a(LockRank::ServeStream, "rank-test-a");
    Mutex b(LockRank::ServeStream, "rank-test-b");
    ScopedFatalThrow guard;
    MutexLock la(a);
    EXPECT_THROW(MutexLock lb(b), FatalError);
}

TEST(SyncLockRank, UnrankedMutexesAreExempt)
{
    Mutex ranked(LockRank::ThreadPool, "rank-test-ranked");
    Mutex unranked; // LockRank::Unranked
    MutexLock a(ranked);
    MutexLock b(unranked); // below rank 80, but exempt
    SUCCEED();
}

TEST(SyncLockRank, RanksAreHeldPerThread)
{
    if (!lockRankChecksEnabled())
        GTEST_SKIP() << "built without CCM_LOCK_RANK_CHECK";

    // One thread holding a high rank must not poison another thread's
    // acquisitions: the held-rank stack is thread-local.
    Mutex high(LockRank::ThreadPool, "rank-test-high");
    Mutex low(LockRank::ServeDaemon, "rank-test-low");
    MutexLock a(high);
    std::thread other([&] {
        MutexLock b(low);
        SUCCEED();
    });
    other.join();
}

// ---- shutdown latch -------------------------------------------------

TEST(ShutdownLatch, StopAndReloadLatchIndependently)
{
    ShutdownLatch latch;
    EXPECT_FALSE(latch.stopRequested());
    EXPECT_FALSE(latch.takeReloadRequest());

    latch.requestReload();
    EXPECT_FALSE(latch.stopRequested());
    EXPECT_TRUE(latch.takeReloadRequest());
    EXPECT_FALSE(latch.takeReloadRequest()); // consumed

    latch.requestStop();
    EXPECT_TRUE(latch.stopRequested());
}

TEST(ShutdownLatch, ConcurrentArmAndNotifyIsRaceFree)
{
    // Producers hammer requestStop/requestReload while a consumer
    // drains the wake pipe and consumes reload requests — the daemon
    // main loop under signal pressure, compressed.  TSan holds the
    // whistle; the assertions hold the counts.
    ShutdownLatch latch;
    const int reloads = 200;
    std::atomic<int> taken{0};

    std::thread stopper([&] {
        for (int i = 0; i < 100; ++i)
            latch.requestStop();
    });
    std::thread reloader([&] {
        for (int i = 0; i < reloads; ++i)
            latch.requestReload();
    });
    std::thread consumer([&] {
        // The reload flag stays latched until consumed, so at least
        // one take must succeed; drain until that and the stop have
        // both been observed.
        while (taken.load() == 0 || !latch.stopRequested()) {
            latch.drainWake();
            if (latch.takeReloadRequest())
                ++taken;
            std::this_thread::yield();
        }
    });
    stopper.join();
    reloader.join();
    consumer.join();

    EXPECT_TRUE(latch.stopRequested());
    EXPECT_GE(taken.load(), 1);
    EXPECT_LE(taken.load(), reloads);
}

TEST(ShutdownLatch, TakeReloadIsExactlyOncePerRequest)
{
    ShutdownLatch latch;
    latch.requestReload();

    std::atomic<int> winners{0};
    std::vector<std::thread> racers;
    racers.reserve(4);
    for (int t = 0; t < 4; ++t) {
        racers.emplace_back([&] {
            if (latch.takeReloadRequest())
                ++winners;
        });
    }
    for (auto &th : racers)
        th.join();
    EXPECT_EQ(winners.load(), 1);
}

TEST(ShutdownLatch, SighupDuringSigtermDrainIsNotLost)
{
    // The daemon's shutdown sequence: SIGTERM latches the stop, the
    // main loop starts draining, and a SIGHUP lands in the middle of
    // the drain.  The reload must still be observed exactly once, the
    // stop must stay latched, and wakeFd() must stay readable after
    // drainWake() so every poller keeps waking up.
    ShutdownLatch latch;
    ASSERT_TRUE(
        latch.installSignalHandlers(SIGTERM, 0, SIGHUP).isOk());

    ASSERT_EQ(::raise(SIGTERM), 0); // synchronous on this thread
    EXPECT_TRUE(latch.stopRequested());
    latch.drainWake(); // mid-drain...

    ASSERT_EQ(::raise(SIGHUP), 0); // ...the reload arrives
    latch.drainWake();

    EXPECT_TRUE(latch.takeReloadRequest());
    EXPECT_FALSE(latch.takeReloadRequest());
    EXPECT_TRUE(latch.stopRequested());

    // A latched stop keeps the wake fd readable through any number of
    // drains (this is what lets late-joining pollers notice it).
    pollfd pf{};
    pf.fd = latch.wakeFd();
    pf.events = POLLIN;
    EXPECT_EQ(::poll(&pf, 1, 0), 1);
    EXPECT_NE(pf.revents & POLLIN, 0);
}

TEST(ShutdownLatch, SecondLatchCannotStealTheHandlers)
{
    ShutdownLatch first;
    ASSERT_TRUE(first.installSignalHandlers(SIGTERM).isOk());
    ShutdownLatch second;
    EXPECT_FALSE(second.installSignalHandlers(SIGTERM).isOk());
    // `second` must not have hijacked routing: SIGTERM still lands in
    // `first`.
    ASSERT_EQ(::raise(SIGTERM), 0);
    EXPECT_TRUE(first.stopRequested());
    EXPECT_FALSE(second.stopRequested());
}

} // namespace

// ---- Structured logging --------------------------------------------

TEST(Log, LevelNamesRoundTrip)
{
    for (LogLevel l : {LogLevel::Trace, LogLevel::Debug,
                       LogLevel::Info, LogLevel::Warn,
                       LogLevel::Error, LogLevel::Off}) {
        auto parsed = parseLogLevel(toString(l));
        ASSERT_TRUE(parsed.ok()) << toString(l);
        EXPECT_EQ(parsed.value(), l);
    }
    EXPECT_FALSE(parseLogLevel("loud").ok());
    EXPECT_FALSE(parseLogLevel("").ok());
    EXPECT_FALSE(parseLogLevel("INFO").ok()); // lower-case contract
}

TEST(Log, ThresholdGatesLevels)
{
    const LogLevel saved = logThreshold();
    setLogThreshold(LogLevel::Warn);
    EXPECT_FALSE(logEnabled(LogLevel::Trace));
    EXPECT_FALSE(logEnabled(LogLevel::Info));
    EXPECT_TRUE(logEnabled(LogLevel::Warn));
    EXPECT_TRUE(logEnabled(LogLevel::Error));
    setLogThreshold(LogLevel::Off);
    EXPECT_FALSE(logEnabled(LogLevel::Error));
    // Off is a threshold, never a message level.
    EXPECT_FALSE(logEnabled(LogLevel::Off));
    setLogThreshold(saved);
}

TEST(Log, ThreadIdsAreDenseAndStable)
{
    const int mine = logThreadId();
    EXPECT_GE(mine, 0);
    EXPECT_EQ(logThreadId(), mine); // stable within a thread

    int other = -1;
    std::thread t([&other] { other = logThreadId(); });
    t.join();
    EXPECT_GE(other, 0);
    EXPECT_NE(other, mine);
}

TEST(Log, UptimeIsMonotonic)
{
    const double a = logUptimeSeconds();
    const double b = logUptimeSeconds();
    EXPECT_GE(a, 0.0);
    EXPECT_GE(b, a);
}

// ---- sample hash / sampling predicate -----------------------------

TEST(SampleHash, DeterministicAcrossInstances)
{
    SampleHash a(9), b(9);
    for (std::uint64_t v = 0; v < 4096; ++v)
        EXPECT_EQ(a.mix(v * 64), b.mix(v * 64));
}

TEST(SampleHash, BucketsUniformOverStridedLines)
{
    // Workload generators emit line populations with power-of-two
    // strides; an identity (or weak) hash aliases whole strides into
    // a handful of buckets.  Property: for every stride, the bucket
    // histogram over 256 coarse bins passes a chi-square flatness
    // check (255 dof: mean 255, sigma ~22.6; 360 is > 4 sigma, and
    // the inputs are fixed so the test is deterministic).
    constexpr int kBins = 256;
    constexpr std::uint64_t kLines = 1 << 16;
    for (std::uint64_t stride : {std::uint64_t{1}, std::uint64_t{2},
                                 std::uint64_t{16},
                                 std::uint64_t{1024}}) {
        const auto pred = SamplingPredicate::make(1.0, 4).value();
        std::vector<std::uint64_t> bins(kBins, 0);
        for (std::uint64_t i = 0; i < kLines; ++i) {
            const auto b = pred.bucketOf(LineAddr(i * stride));
            ++bins[b * kBins / SamplingPredicate::kModulus];
        }
        const double expect =
            static_cast<double>(kLines) / kBins;
        double chi2 = 0.0;
        for (auto n : bins) {
            const double d = static_cast<double>(n) - expect;
            chi2 += d * d / expect;
        }
        EXPECT_LT(chi2, 360.0) << "stride " << stride;
    }
}

TEST(SamplingPredicate, SampledFractionTracksRate)
{
    // The admitted fraction of a large strided line population must
    // match the configured rate within binomial noise at every rate
    // the engine supports (0.1% .. 100%).
    constexpr std::uint64_t kLines = 1 << 18;
    for (double rate : {0.001, 0.01, 0.1, 0.5, 1.0}) {
        const auto pred = SamplingPredicate::make(rate, 42).value();
        std::uint64_t hits = 0;
        for (std::uint64_t i = 0; i < kLines; ++i)
            hits += pred.sampled(LineAddr(i * 8)) ? 1 : 0;
        const double got =
            static_cast<double>(hits) / static_cast<double>(kLines);
        // 5 sigma of binomial noise, floored at 10% relative.
        const double sigma =
            std::sqrt(rate * (1.0 - rate) /
                      static_cast<double>(kLines));
        const double tol = std::max(5.0 * sigma, 0.1 * rate);
        EXPECT_NEAR(got, rate, tol) << "rate " << rate;
        EXPECT_NEAR(pred.rate(), rate, 1.0 / (1 << 24));
    }
}

TEST(SamplingPredicate, SeedsSelectIndependentSampleSets)
{
    // Different seeds must pick statistically independent line sets:
    // the overlap of two rate-R samples is ~R^2 of the population,
    // not ~R (which a seed-insensitive hash would give).
    constexpr std::uint64_t kLines = 1 << 17;
    constexpr double kRate = 0.05;
    const auto a = SamplingPredicate::make(kRate, 1).value();
    const auto b = SamplingPredicate::make(kRate, 2).value();
    std::uint64_t both = 0, inA = 0;
    for (std::uint64_t i = 0; i < kLines; ++i) {
        const LineAddr line(i * 4);
        const bool sa = a.sampled(line);
        inA += sa ? 1 : 0;
        both += (sa && b.sampled(line)) ? 1 : 0;
    }
    const double expected = kRate * kRate * kLines; // ~328
    EXPECT_GT(static_cast<double>(both), expected * 0.5);
    EXPECT_LT(static_cast<double>(both), expected * 2.0);
    // And the overlap is far below the seed-insensitive outcome inA.
    EXPECT_LT(both * 4, inA);
}

TEST(SamplingPredicate, LoweringThresholdShrinksTheSampleSet)
{
    // SHARDS-adj correctness hinges on monotone eviction: after the
    // threshold drops, the surviving set is a strict subset (a line's
    // bucket is fixed, so no line can re-enter).  Raising is refused.
    constexpr std::uint64_t kLines = 1 << 15;
    auto pred = SamplingPredicate::make(0.2, 7).value();
    std::vector<bool> before(kLines);
    for (std::uint64_t i = 0; i < kLines; ++i)
        before[i] = pred.sampled(LineAddr(i));

    const auto origThr = pred.threshold();
    pred.lowerThreshold(origThr / 2);
    EXPECT_EQ(pred.threshold(), origThr / 2);
    for (std::uint64_t i = 0; i < kLines; ++i) {
        if (pred.sampled(LineAddr(i)))
            EXPECT_TRUE(before[i]) << "line " << i << " re-entered";
    }

    pred.lowerThreshold(origThr); // raise attempt: refused
    EXPECT_EQ(pred.threshold(), origThr / 2);
    pred.lowerThreshold(0); // zero would admit nothing: refused
    EXPECT_EQ(pred.threshold(), origThr / 2);
}

} // namespace ccm
