/**
 * @file
 * Unit tests for the k-deep shadow directory (the MCT
 * generalization).
 */

#include <gtest/gtest.h>

#include "mct/shadow.hh"

namespace ccm
{
namespace
{

TEST(Shadow, DepthOneMatchesMctSemantics)
{
    ShadowDirectory sd(4, 1);
    EXPECT_EQ(sd.classify(SetIndex{0}, Tag{0x1}), MissClass::Capacity);
    sd.recordEviction(SetIndex{0}, Tag{0x1});
    EXPECT_EQ(sd.classify(SetIndex{0}, Tag{0x1}), MissClass::Conflict);
    sd.recordEviction(SetIndex{0}, Tag{0x2});
    EXPECT_EQ(sd.classify(SetIndex{0}, Tag{0x1}), MissClass::Capacity);
    EXPECT_EQ(sd.classify(SetIndex{0}, Tag{0x2}), MissClass::Conflict);
}

TEST(Shadow, DeeperDirectoryRemembersMore)
{
    ShadowDirectory sd(4, 3);
    sd.recordEviction(SetIndex{0}, Tag{0x1});
    sd.recordEviction(SetIndex{0}, Tag{0x2});
    sd.recordEviction(SetIndex{0}, Tag{0x3});
    EXPECT_TRUE(sd.isConflictMiss(SetIndex{0}, Tag{0x1}));
    EXPECT_TRUE(sd.isConflictMiss(SetIndex{0}, Tag{0x2}));
    EXPECT_TRUE(sd.isConflictMiss(SetIndex{0}, Tag{0x3}));
    EXPECT_FALSE(sd.isConflictMiss(SetIndex{0}, Tag{0x4}));
    // A fourth eviction pushes the oldest out.
    sd.recordEviction(SetIndex{0}, Tag{0x4});
    EXPECT_FALSE(sd.isConflictMiss(SetIndex{0}, Tag{0x1}));
    EXPECT_TRUE(sd.isConflictMiss(SetIndex{0}, Tag{0x4}));
}

TEST(Shadow, MatchDepthReportsPosition)
{
    ShadowDirectory sd(2, 4);
    sd.recordEviction(SetIndex{1}, Tag{0xA});
    sd.recordEviction(SetIndex{1}, Tag{0xB});
    sd.recordEviction(SetIndex{1}, Tag{0xC});
    EXPECT_EQ(sd.matchDepth(SetIndex{1}, Tag{0xC}), 1u);   // most recent
    EXPECT_EQ(sd.matchDepth(SetIndex{1}, Tag{0xB}), 2u);
    EXPECT_EQ(sd.matchDepth(SetIndex{1}, Tag{0xA}), 3u);
    EXPECT_EQ(sd.matchDepth(SetIndex{1}, Tag{0xD}), 0u);
    EXPECT_EQ(sd.matchDepth(SetIndex{0}, Tag{0xA}), 0u);   // other set
}

TEST(Shadow, ReEvictionMovesToFront)
{
    ShadowDirectory sd(1, 3);
    sd.recordEviction(SetIndex{0}, Tag{0x1});
    sd.recordEviction(SetIndex{0}, Tag{0x2});
    sd.recordEviction(SetIndex{0}, Tag{0x1});   // 0x1 re-evicted: front, no dup
    EXPECT_EQ(sd.matchDepth(SetIndex{0}, Tag{0x1}), 1u);
    EXPECT_EQ(sd.matchDepth(SetIndex{0}, Tag{0x2}), 2u);
    // Room still for a third distinct tag.
    sd.recordEviction(SetIndex{0}, Tag{0x3});
    EXPECT_TRUE(sd.isConflictMiss(SetIndex{0}, Tag{0x2}));
}

TEST(Shadow, PartialTagsMask)
{
    ShadowDirectory sd(1, 2, 4);
    sd.recordEviction(SetIndex{0}, Tag{0xAB});
    EXPECT_TRUE(sd.isConflictMiss(SetIndex{0}, Tag{0xFB}));   // low nibble matches
    EXPECT_FALSE(sd.isConflictMiss(SetIndex{0}, Tag{0xAC}));
}

TEST(Shadow, StorageBits)
{
    EXPECT_EQ(ShadowDirectory(256, 2, 10).storageBits(),
              256u * 2u * 11u);
    EXPECT_EQ(ShadowDirectory(4, 1, 0).storageBits(), 4u * 65u);
}

TEST(Shadow, ClearForgets)
{
    ShadowDirectory sd(2, 2);
    sd.recordEviction(SetIndex{0}, Tag{0x1});
    sd.clear();
    EXPECT_FALSE(sd.isConflictMiss(SetIndex{0}, Tag{0x1}));
}

TEST(Shadow, ValidateRejectsWithoutDying)
{
    EXPECT_TRUE(ShadowDirectory::validate(4, 2, 12).isOk());
    EXPECT_EQ(ShadowDirectory::validate(0, 1, 0).code(),
              ErrorCode::BadConfig);
    EXPECT_EQ(ShadowDirectory::validate(4, 0, 0).code(),
              ErrorCode::BadConfig);
    EXPECT_EQ(ShadowDirectory::validate(4, 1, 70).code(),
              ErrorCode::BadConfig);
}

TEST(ShadowDeath, BadParams)
{
    EXPECT_DEATH(ShadowDirectory(0, 1), "at least one");
    EXPECT_DEATH(ShadowDirectory(4, 0), "depth");
    EXPECT_DEATH(ShadowDirectory(4, 1, 70), "out of range");
}

/** Depth sweep: a cyclic pattern of k+1 tags in one set is fully
 *  identified at depth k+... precisely, depth >= k. */
class ShadowCycle : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ShadowCycle, CycleOfDepthPlusOneTagsNeedsDepth)
{
    unsigned k = GetParam();   // cycle length
    // Simulate a DM set receiving a round-robin of k distinct tags:
    // each miss on tag t evicts the previous resident.
    auto run = [&](unsigned depth) {
        ShadowDirectory sd(1, depth);
        unsigned caught = 0, total = 0;
        Addr resident = 0;     // tag currently "in the cache"
        bool has_resident = false;
        for (int i = 0; i < 100; ++i) {
            Addr tag = 1 + (i % k);
            if (has_resident && resident == tag)
                continue;      // would be a hit
            ++total;
            if (i >= int(k) && sd.isConflictMiss(SetIndex{0}, Tag{tag}))
                ++caught;
            if (has_resident)
                sd.recordEviction(SetIndex{0}, Tag{resident});
            resident = tag;
            has_resident = true;
        }
        return std::pair<unsigned, unsigned>(caught, total);
    };

    // Depth k-1 catches the whole cycle; depth k-2 catches none of
    // it (each tag was evicted exactly k-1 evictions ago).
    auto [caught_hi, total_hi] = run(k - 1);
    EXPECT_GT(caught_hi, 80u);
    (void)total_hi;
    if (k >= 3) {
        auto [caught_lo, total_lo] = run(k - 2);
        (void)total_lo;
        EXPECT_EQ(caught_lo, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(CycleLengths, ShadowCycle,
                         ::testing::Values(2, 3, 4, 6, 8));

} // namespace
} // namespace ccm
